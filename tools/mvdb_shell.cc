// mvdb_shell — an interactive shell over the MarkoView engine.
//
// A small REPL for exploring MVDBs: generate the synthetic DBLP workload or
// define tables/views in datalog, compile, and query interactively.
//
//   $ ./build/tools/mvdb_shell
//   mvdb> load dblp 1000
//   mvdb> compile
//   mvdb> query Q(aid) :- Student(aid,y), Advisor(aid,a), Author(a,n), n = "author292".
//   mvdb> topk 3 Q(aid) :- Student(aid,y), Advisor(aid,a1), Author(a1,n), n = "author292".
//   mvdb> stats
//   mvdb> help
//
// Also usable non-interactively:  echo "..." | mvdb_shell  or
// mvdb_shell script.mv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mvindex/index_io.h"
#include "query/parser.h"
#include "util/timer.h"

namespace mvdb {
namespace {

class Shell {
 public:
  /// Startup actions from CLI flags, executed before the REPL: generate the
  /// DBLP instance, then open a persisted index and/or save one.
  bool Startup(int dblp_authors, const std::string& load_path,
               const std::string& save_path) {
    if (dblp_authors > 0) {
      Load("dblp " + std::to_string(dblp_authors));
    }
    if (mvdb_ == nullptr && (!load_path.empty() || !save_path.empty())) {
      std::printf("--load/--save need a database; pass --dblp=N too\n");
      return false;
    }
    if (!load_path.empty()) {
      LoadIndex(load_path);
      if (!engine_->compiled()) return false;  // surface startup failures
    }
    if (!save_path.empty()) {
      SaveCmd(save_path);
      if (!engine_->compiled()) return false;
    }
    return true;
  }

  int Run(std::istream& in, bool interactive) {
    std::string line;
    if (interactive) std::printf("mvdb shell — 'help' for commands\n");
    while (true) {
      if (interactive) {
        std::printf("mvdb> ");
        std::fflush(stdout);
      }
      if (!std::getline(in, line)) break;
      if (!Dispatch(line) ) break;
    }
    return 0;
  }

 private:
  /// Returns false to quit.
  bool Dispatch(const std::string& line) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    if (cmd.empty() || cmd[0] == '%') return true;
    std::string rest;
    std::getline(is, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") return Help();
    if (cmd == "load") return Load(rest);
    if (cmd == "compile") return CompileCmd();
    if (cmd == "save") return SaveCmd(rest);
    if (cmd == "tables") return Tables();
    if (cmd == "stats") return Stats();
    if (cmd == "backend") return SetBackend(rest);
    if (cmd == "query") return QueryCmd(rest, 0);
    if (cmd == "topk") return TopK(rest);
    if (cmd == "upsert") return DeltaCmd(rest, /*is_delete=*/false);
    if (cmd == "delete") return DeltaCmd(rest, /*is_delete=*/true);
    std::printf("unknown command '%s'; try 'help'\n", cmd.c_str());
    return true;
  }

  bool Help() {
    std::printf(
        "  load dblp <n>      generate the synthetic DBLP MVDB (n authors)\n"
        "  compile            translate views and build the MV-index\n"
        "  save <path>        persist the compiled MV-index (compiles first)\n"
        "  load index <path>  open a persisted MV-index (mmap'd; instant)\n"
        "  tables             list tables with cardinalities\n"
        "  stats              MV-index statistics\n"
        "  backend <b>        cc | topdown | reuse | brute | safeplan\n"
        "  query <rule.>      evaluate a UCQ, e.g. query Q(x) :- R(x), S(x,y).\n"
        "  topk <k> <rule.>   top-k most probable answers\n"
        "  upsert <tbl> <v...> [w]  insert or reweight a base tuple (delta\n"
        "                     maintenance; values are ints or strings)\n"
        "  delete <tbl> <v...>      tombstone a base tuple (weight -> 0)\n"
        "  quit               leave\n");
    return true;
  }

  bool Load(const std::string& args) {
    std::istringstream is(args);
    std::string what;
    is >> what;
    if (what == "index") {
      std::string path;
      is >> path;
      return LoadIndex(path);
    }
    int n = 1000;
    is >> n;
    if (what != "dblp") {
      std::printf("usage: load dblp <n>  |  load index <path>\n");
      return true;
    }
    dblp::DblpConfig cfg;
    cfg.num_authors = n > 0 ? n : 1000;
    Timer t;
    dblp::DblpStats stats;
    auto mvdb = dblp::BuildDblpMvdb(cfg, &stats);
    if (!mvdb.ok()) {
      std::printf("error: %s\n", mvdb.status().ToString().c_str());
      return true;
    }
    mvdb_ = std::move(mvdb).value();
    engine_ = std::make_unique<QueryEngine>(mvdb_.get());
    std::printf("loaded DBLP(%d): %zu pubs, %zu Student^p, %zu Advisor^p, "
                "%zu Affiliation^p tuples in %.2f s\n",
                cfg.num_authors, stats.pubs, stats.student, stats.advisor,
                stats.affiliation, t.Seconds());
    return true;
  }

  bool CompileCmd() {
    if (!Ready(false)) return true;
    Timer t;
    const Status st = engine_->Compile();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return true;
    }
    // Every query from here on plans once per shape and reuses the template.
    engine_->EnablePlanCache(64);
    std::printf("compiled in %.2f s: MV-index %zu nodes, %zu blocks, "
                "P0(not W) log-magnitude %.2f\n",
                t.Seconds(), engine_->index().size(),
                engine_->index().blocks().size(),
                engine_->index().ProbNotWScaled().LogMagnitude());
    return true;
  }

  bool SaveCmd(const std::string& path) {
    if (path.empty()) {
      std::printf("usage: save <path>\n");
      return true;
    }
    if (!Ready(true)) return true;
    Timer t;
    const Status st = engine_->SaveIndex(path);
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return true;
    }
    std::printf("saved MV-index (%zu nodes, %zu blocks) to %s in %.2f s\n",
                engine_->index().size(), engine_->index().blocks().size(),
                path.c_str(), t.Seconds());
    return true;
  }

  bool LoadIndex(const std::string& path) {
    if (path.empty()) {
      std::printf("usage: load index <path>\n");
      return true;
    }
    if (mvdb_ == nullptr) {
      std::printf("load the database first (the index file holds the "
                  "compilation, not the data); try 'load dblp 1000'\n");
      return true;
    }
    // Stand the replacement up on the side and swap only after OpenIndex
    // succeeds: a bad file (stale, corrupt, foreign) reports its typed
    // Status and the current engine keeps serving untouched.
    auto candidate = std::make_unique<QueryEngine>(mvdb_.get());
    Timer t;
    const Status st = candidate->OpenIndex(path);
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      if (engine_->compiled()) {
        std::printf("keeping the currently loaded index\n");
      }
      return true;
    }
    engine_ = std::move(candidate);
    engine_->EnablePlanCache(64);
    std::printf("opened MV-index %s (mmap'd): %zu nodes, %zu blocks in "
                "%.3f s\n",
                path.c_str(), engine_->index().size(),
                engine_->index().blocks().size(), t.Seconds());
    return true;
  }

  bool Tables() {
    if (!Ready(false)) return true;
    const Database& db = mvdb_->db();
    for (const std::string& name : db.table_names()) {
      const Table* t = db.Find(name);
      std::printf("  %-20s %8zu tuples  %s\n", name.c_str(), t->size(),
                  t->probabilistic() ? "probabilistic" : "deterministic");
    }
    return true;
  }

  bool Stats() {
    if (!Ready(true)) return true;
    std::printf("  MV-index: %zu nodes, %zu blocks, width %zu\n",
                engine_->index().size(), engine_->index().blocks().size(),
                engine_->index().flat().Width());
    std::printf("  format: v%u, block_local annotations\n",
                kIndexFormatVersion);
    const MvIndexRepairStats& rs = engine_->index().last_repair_stats();
    if (rs.valid) {
      std::printf("  last repair: %zu dirty block%s, %zu nodes replayed — "
                  "replay %.3f ms, reprobe %.3f ms, products %.3f ms\n",
                  rs.dirty_blocks, rs.dirty_blocks == 1 ? "" : "s",
                  rs.replayed_nodes, rs.replay_seconds * 1e3,
                  rs.reprobe_seconds * 1e3, rs.products_seconds * 1e3);
    } else {
      std::printf("  last repair: none (no weight delta since compile/load)\n");
    }
    std::printf("  W inversion-free: %s\n",
                engine_->w_inversion_free() ? "yes" : "no");
    std::printf("  W: %s\n", ToString(mvdb_->W()).c_str());
    const PlanCacheStats pc = engine_->plan_cache_stats();
    std::printf("  plan cache: %zu/%zu entries, %llu hits, %llu misses "
                "(hit rate %.0f%%), %llu evictions\n",
                pc.size, pc.capacity,
                static_cast<unsigned long long>(pc.hits),
                static_cast<unsigned long long>(pc.misses),
                100.0 * pc.HitRate(),
                static_cast<unsigned long long>(pc.evictions));
    return true;
  }

  bool SetBackend(const std::string& name) {
    if (name == "cc") backend_ = Backend::kMvIndexCC;
    else if (name == "topdown") backend_ = Backend::kMvIndex;
    else if (name == "reuse") backend_ = Backend::kObddReuse;
    else if (name == "brute") backend_ = Backend::kBruteForce;
    else if (name == "safeplan") backend_ = Backend::kSafePlan;
    else {
      std::printf("backends: cc | topdown | reuse | brute | safeplan\n");
      return true;
    }
    std::printf("backend set to %s\n", name.c_str());
    return true;
  }

  bool QueryCmd(const std::string& text, size_t k) {
    if (!Ready(true)) return true;
    auto q = ParseUcq(text, &mvdb_->db().dict());
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return true;
    }
    const PlanCacheStats before = engine_->plan_cache_stats();
    Timer t;
    auto answers = (k == 0) ? engine_->Query(*q, backend_)
                            : engine_->QueryTopK(*q, k, backend_);
    const double ms = t.Millis();
    const PlanCacheStats after = engine_->plan_cache_stats();
    if (!answers.ok()) {
      std::printf("error: %s\n", answers.status().ToString().c_str());
      return true;
    }
    for (const auto& a : *answers) {
      std::string head;
      for (size_t i = 0; i < a.head.size(); ++i) {
        if (i) head += ", ";
        // Values are untyped int64s (dictionary ids and plain integers share
        // one namespace), so print the raw value; use the Author table to
        // resolve names in your queries instead.
        head += std::to_string(a.head[i]);
      }
      std::printf("  (%s)  P = %.6f\n", head.c_str(), a.prob);
    }
    const char* plan = after.hits > before.hits      ? "cached plan"
                       : after.misses > before.misses ? "planned fresh"
                                                      : "no cache";
    std::printf("%zu answer(s) in %.3f ms (%s; cache hit rate %.0f%%)\n",
                answers->size(), ms, plan, 100.0 * after.HitRate());
    return true;
  }

  /// Integer tokens pass through; anything else (optionally double-quoted)
  /// interns as a dictionary string — the same namespace query constants
  /// live in.
  Value ParseValue(const std::string& tok) {
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() && *end == '\0') return static_cast<Value>(v);
    std::string s = tok;
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
      s = s.substr(1, s.size() - 2);
    }
    return mvdb_->db().Str(s);
  }

  bool DeltaCmd(const std::string& args, bool is_delete) {
    if (!Ready(true)) return true;
    std::istringstream is(args);
    std::string table;
    is >> table;
    const Table* t = mvdb_->db().Find(table);
    if (t == nullptr) {
      std::printf("unknown table '%s'; see 'tables'\n", table.c_str());
      return true;
    }
    std::vector<std::string> toks;
    std::string tok;
    while (is >> tok) toks.push_back(tok);
    const size_t arity = t->arity();
    const size_t max_toks = arity + (is_delete ? 0 : 1);
    if (toks.size() < arity || toks.size() > max_toks) {
      std::printf("usage: %s %s <%zu values>%s\n",
                  is_delete ? "delete" : "upsert", table.c_str(), arity,
                  is_delete ? "" : " [weight]");
      return true;
    }
    DeltaOp op;
    op.table = table;
    for (size_t i = 0; i < arity; ++i) op.values.push_back(ParseValue(toks[i]));
    if (is_delete) {
      op.kind = DeltaOp::Kind::kDelete;
    } else {
      if (toks.size() > arity) op.weight = std::strtod(toks[arity].c_str(), nullptr);
      RowId row;
      op.kind = t->FindRow(op.values, &row) ? DeltaOp::Kind::kUpdateWeight
                                            : DeltaOp::Kind::kInsert;
    }
    Timer timer;
    const Status st = engine_->ApplyDelta({op});
    const double ms = timer.Millis();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      if (st.code() != StatusCode::kNotFound &&
          st.code() != StatusCode::kAlreadyExists &&
          st.code() != StatusCode::kInvalidArgument) {
        std::printf("the database may have advanced past the index; "
                    "'compile' on a fresh shell to rebuild\n");
      }
      return true;
    }
    const char* verb = is_delete ? "deleted"
                       : op.kind == DeltaOp::Kind::kInsert ? "inserted"
                                                           : "reweighted";
    std::printf("%s %s tuple in %.3f ms (index maintained incrementally)\n",
                verb, table.c_str(), ms);
    return true;
  }

  bool TopK(const std::string& args) {
    std::istringstream is(args);
    size_t k = 0;
    is >> k;
    std::string rest;
    std::getline(is, rest);
    if (k == 0) {
      std::printf("usage: topk <k> <rule.>\n");
      return true;
    }
    return QueryCmd(rest, k);
  }

  bool Ready(bool needs_compile) {
    if (mvdb_ == nullptr) {
      std::printf("no database loaded; try 'load dblp 1000'\n");
      return false;
    }
    if (needs_compile && !engine_->compiled()) {
      CompileCmd();
    }
    return true;
  }

  std::unique_ptr<Mvdb> mvdb_;
  std::unique_ptr<QueryEngine> engine_;
  Backend backend_ = Backend::kMvIndexCC;
};

}  // namespace
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::Shell shell;
  // Flags handle index persistence non-interactively:
  //   mvdb_shell --dblp=1000 --save=dblp.mvidx      # compile once, persist
  //   mvdb_shell --dblp=1000 --load=dblp.mvidx      # instant mmap'd start
  std::string script;
  int dblp_authors = 0;
  std::string load_path, save_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dblp=", 7) == 0) {
      dblp_authors = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--load=", 7) == 0) {
      load_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--save=", 7) == 0) {
      save_path = argv[i] + 7;
    } else if (argv[i][0] != '-') {
      script = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: mvdb_shell [script.mv] [--dblp=N] "
                   "[--save=PATH] [--load=PATH]\n");
      return 2;
    }
  }
  if (!shell.Startup(dblp_authors, load_path, save_path)) return 1;
  if (!script.empty()) {
    std::ifstream file(script);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script.c_str());
      return 1;
    }
    return shell.Run(file, /*interactive=*/false);
  }
  return shell.Run(std::cin, /*interactive=*/true);
}
