// Copyright 2026 The MarkoView Authors.
//
// MV-index inspector. Two modes:
//
// Build mode (the original build-parity diagnostic): compiles the DBLP
// MV-index and dumps everything the offline pipeline produced — block keys,
// chain roots, level ranges, extended-range block probabilities, the full
// flat layout node by node, and P0(NOT W). Two dumps can be diffed to
// verify that builds are bit-identical, e.g. the serial vs the sharded
// pipeline, or the same build across commits:
//
//   dump_index 1500 --threads=1 > a.txt
//   dump_index 1500 --threads=4 > b.txt
//   diff a.txt b.txt            # must be empty
//
// Optionally persists the compiled index: dump_index 1500 --save=PATH
//
// File mode (--load=PATH): routes through the persistent-format reader
// (mvindex/index_io.*) instead of compiling — prints the header (format
// version + annotation scheme), the section table, per-block stats, and
// with --verify recomputes every section checksum, exiting non-zero on any
// mismatch (the CI integrity gate). --quiet suppresses the per-node dump
// in either mode.
//
//   dump_index --load=dblp.mvidx --verify         # exit 0 iff intact
//
// Migrate mode (--migrate=PATH): rewrites a v2 index file as format v3
// offline — block-local annotations recomputed from the file's topology —
// so a persisted 1M-author index survives the format bump without a
// rebuild. In-place by default; --save=OUT writes elsewhere. A v3 input is
// validated and copied through byte-identically (idempotent).
//
//   dump_index --migrate=dblp.mvidx               # upgrade in place
//   dump_index --migrate=old.mvidx --save=new.mvidx

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mvindex/index_io.h"

namespace {

const char* kSectionNames[mvdb::kNumIndexSections] = {
    "var_order", "level_probs", "levels",    "edges",
    "prob_under", "block_dir",  "key_blob",
};

const char* SchemeName(uint32_t scheme) {
  switch (scheme) {
    case mvdb::kAnnotationSchemeGlobalSuffix: return "global_suffix";
    case mvdb::kAnnotationSchemeBlockLocal: return "block_local";
    default: return "unknown";
  }
}

/// The shared tail of both modes: block directory + flat node dump.
void DumpIndex(const mvdb::MvIndex& idx, bool quiet) {
  using mvdb::FlatId;
  using mvdb::MvBlock;
  std::printf("flat_size %zu root %d\n", idx.flat().size(), idx.flat().root());
  std::printf("prob_not_w %s\n", idx.ProbNotWScaled().ToString().c_str());
  for (const MvBlock& b : idx.blocks()) {
    std::printf("block %s %d %d %d %s\n", b.key.c_str(), b.chain_root,
                b.first_level, b.last_level, b.prob.ToString().c_str());
  }
  if (quiet) return;
  for (size_t u = 0; u < idx.flat().size(); ++u) {
    const FlatId id = static_cast<FlatId>(u);
    std::printf("n %zu %d %d %d %s\n", u, idx.flat().level(id),
                idx.flat().lo(id), idx.flat().hi(id),
                idx.flat().prob_under_scaled(id).ToString().c_str());
  }
}

int FileMode(const std::string& path, bool verify, bool quiet) {
  using namespace mvdb;
  auto reader = IndexFileReader::OpenMapped(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  const IndexFileHeader& h = reader->header();
  std::printf("file %s\n", path.c_str());
  std::printf("format_version %u\n", h.format_version);
  std::printf("annotation_scheme %u (%s)\n", h.annotation_scheme,
              SchemeName(h.annotation_scheme));
  std::printf("num_nodes %" PRIu64 " num_levels %" PRIu64
              " num_blocks %" PRIu64 " root %" PRId64 "\n",
              h.num_nodes, h.num_levels, h.num_blocks, h.root);
  std::printf("var_order_digest %016" PRIx64 " file_bytes %" PRIu64 "\n",
              h.var_order_digest, h.file_bytes);
  for (uint32_t s = 0; s < kNumIndexSections; ++s) {
    const SectionEntry& e = reader->section(static_cast<IndexSection>(s));
    std::printf("section %-11s offset %" PRIu64 " length %" PRIu64
                " checksum %016" PRIx64 "\n",
                kSectionNames[s], e.offset, e.length, e.checksum);
  }
  if (verify) {
    const Status st = reader->VerifyChecksums();
    if (!st.ok()) {
      std::fprintf(stderr, "VERIFY FAILED: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("verify OK (all section checksums match)\n");
  }

  // Load against a manager reconstructed from the file's own order, so the
  // dump works without the source database (block/flat dump only needs the
  // arrays, and the digest check is a self-check here by construction).
  auto order = ReadIndexVarOrder(path);
  if (!order.ok()) {
    std::fprintf(stderr, "%s\n", order.status().ToString().c_str());
    return 1;
  }
  BddManager mgr(std::move(order).value());
  auto idx = MvIndex::LoadMapped(path, &mgr);
  if (!idx.ok()) {
    std::fprintf(stderr, "%s\n", idx.status().ToString().c_str());
    return 1;
  }
  DumpIndex(**idx, quiet);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvdb;
  dblp::DblpConfig cfg;
  cfg.include_affiliation = true;
  cfg.num_authors = 1500;
  CompileOptions copts;
  std::string save_path;
  std::string load_path;
  std::string migrate_path;
  bool verify = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      copts.num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc &&
               argv[i + 1][0] != '-') {
      copts.num_threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--save=", 7) == 0) {
      save_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--load=", 7) == 0) {
      load_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--migrate=", 10) == 0) {
      migrate_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] != '-') {
      cfg.num_authors = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\n"
                   "usage: dump_index [authors] [--threads=N] [--save=PATH]\n"
                   "       dump_index --load=PATH [--verify] [--quiet]\n"
                   "       dump_index --migrate=PATH [--save=OUT]\n",
                   argv[i]);
      return 2;
    }
  }

  if (!migrate_path.empty()) {
    const std::string out = save_path.empty() ? migrate_path : save_path;
    const Status st = MigrateIndexFile(migrate_path, out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "migrated %s -> %s (format v%u, %s annotations)\n",
                 migrate_path.c_str(), out.c_str(), kIndexFormatVersion,
                 SchemeName(kAnnotationSchemeBlockLocal));
    return 0;
  }

  if (!load_path.empty()) {
    return FileMode(load_path, verify, quiet);
  }

  auto mv = dblp::BuildDblpMvdb(cfg, nullptr);
  if (!mv.ok()) {
    std::fprintf(stderr, "%s\n", mv.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine(mv->get());
  auto st = engine.Compile(copts);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (!save_path.empty()) {
    const Status saved = engine.SaveIndex(save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved index to %s\n", save_path.c_str());
  }
  // The in-memory compile is by construction the current format generation.
  std::printf("format_version %u\n", kIndexFormatVersion);
  std::printf("annotation_scheme %u (%s)\n", kAnnotationSchemeBlockLocal,
              SchemeName(kAnnotationSchemeBlockLocal));
  DumpIndex(engine.index(), quiet);
  return 0;
}
