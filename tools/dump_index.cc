// Copyright 2026 The MarkoView Authors.
//
// Build-parity diagnostic: compiles the DBLP MV-index and dumps everything
// the offline pipeline produced — block keys, chain roots, level ranges,
// extended-range block probabilities, the full flat layout node by node
// (level, lo, hi, probUnder), and P0(NOT W). Two dumps can be diffed to
// verify that builds are bit-identical, e.g. the serial vs the sharded
// pipeline, or the same build across commits:
//
//   dump_index 1500 --threads=1 > a.txt
//   dump_index 1500 --threads=4 > b.txt
//   diff a.txt b.txt            # must be empty

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/engine.h"
#include "dblp/dblp.h"

int main(int argc, char** argv) {
  using namespace mvdb;
  dblp::DblpConfig cfg;
  cfg.include_affiliation = true;
  cfg.num_authors = 1500;
  CompileOptions copts;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      copts.num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc &&
               argv[i + 1][0] != '-') {
      copts.num_threads = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-') {
      cfg.num_authors = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: dump_index [authors] "
                   "[--threads=N]\n",
                   argv[i]);
      return 2;
    }
  }
  auto mv = dblp::BuildDblpMvdb(cfg, nullptr);
  if (!mv.ok()) {
    std::fprintf(stderr, "%s\n", mv.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine(mv->get());
  auto st = engine.Compile(copts);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const MvIndex& idx = engine.index();
  std::printf("flat_size %zu root %d\n", idx.flat().size(), idx.flat().root());
  std::printf("prob_not_w %s\n", idx.ProbNotWScaled().ToString().c_str());
  for (const MvBlock& b : idx.blocks()) {
    std::printf("block %s %d %d %d %s\n", b.key.c_str(), b.chain_root,
                b.first_level, b.last_level, b.prob.ToString().c_str());
  }
  for (size_t u = 0; u < idx.flat().size(); ++u) {
    const FlatId id = static_cast<FlatId>(u);
    std::printf("n %zu %d %d %d %s\n", u, idx.flat().level(id),
                idx.flat().lo(id), idx.flat().hi(id),
                idx.flat().prob_under_scaled(id).ToString().c_str());
  }
  return 0;
}
