// Copyright 2026 The MarkoView Authors.
//
// Serve-start bench: how fast can a server go from "process started" to
// "first answer served" when the MV-index is loaded from the persistent
// format (mvindex/index_io.*) instead of recompiled?
//
// For each scale it stands the engine up three ways over the same
// translated MVDB and times each:
//
//   rebuild — QueryEngine::Compile: the full offline pipeline (the only
//             option before the persistent format existed);
//   load    — OpenIndex{mapped=false, verify=true}: read + checksum the
//             whole file, copy the arrays into owned storage;
//   mmap    — OpenIndex{mapped=true, verify=false}: map the file PROT_READ
//             and serve straight off the page cache (the instant-start
//             path; integrity is the writer's checksums + dump_index
//             --verify in CI).
//
// Each mode then answers one students-of-advisor query so the row captures
// first-query latency too (for mmap this includes the page faults the lazy
// start deferred). The three answers must agree bit for bit — any mismatch
// exits non-zero. One BENCH_JSON line per (scale, mode) cell; the summary
// line reports the mmap-vs-rebuild speedup that BENCHMARKS.md tracks.
//
// Usage: bench_load_start [scale ...] [--threads=N]   # build shards, default 4
//   bench_load_start                  # sweep {10000, 50000, 200000}
//   bench_load_start 1000000          # the paper-scale 1M-author index

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mvindex/index_io.h"

namespace mvdb {
namespace bench {
namespace {

int g_threads = 4;

struct StartCell {
  const char* mode;
  double start_s = 0;       ///< engine stand-up: Compile or OpenIndex
  double first_query_ms = 0;
  double answer = 0;        ///< probability bits, compared across modes
};

double FirstAnswer(QueryEngine* engine, const Ucq& q) {
  auto rows = Unwrap(engine->Query(q));
  MVDB_CHECK(!rows.empty());
  return rows[0].prob;
}

StartCell RunMode(const char* mode, Mvdb* mvdb, const Ucq& q,
                  const std::string& path) {
  StartCell cell;
  cell.mode = mode;
  auto engine = std::make_unique<QueryEngine>(mvdb);
  Timer t;
  if (std::strcmp(mode, "rebuild") == 0) {
    CompileOptions copts;
    copts.num_threads = g_threads;
    Die(engine->Compile(copts));
  } else {
    QueryEngine::OpenIndexOptions oopts;
    oopts.mapped = std::strcmp(mode, "mmap") == 0;
    oopts.verify_checksums = !oopts.mapped;
    Die(engine->OpenIndex(path, oopts));
  }
  cell.start_s = t.Seconds();
  Timer q_t;
  cell.answer = FirstAnswer(engine.get(), q);
  cell.first_query_ms = q_t.Seconds() * 1e3;
  return cell;
}

void RunScale(int scale) {
  PrintFigureHeader("serve-start", "persistent index vs rebuild");
  dblp::DblpConfig cfg;
  cfg.num_authors = scale;
  cfg.include_affiliation = true;
  cfg.num_threads = g_threads;
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(cfg, nullptr));
  Timer translate_t;
  Die(mvdb->Translate());
  const double translate_s = translate_t.Seconds();

  const Value senior = SomeAdvisorPair(*mvdb).advisor;
  const Ucq q = dblp::StudentsOfAdvisorQuery(
      mvdb.get(), dblp::AuthorName(static_cast<int>(senior)));

  // One compile to produce the index file (also the "rebuild" timing would
  // measure a warm allocator; run rebuild first so every mode is warm-ish
  // and the comparison is start-path work, not malloc noise).
  const std::string path = "/tmp/bench_load_start_" + std::to_string(scale) +
                           ".mvidx";
  StartCell rebuild = RunMode("rebuild", mvdb.get(), q, path);
  {
    QueryEngine saver(mvdb.get());
    CompileOptions copts;
    copts.num_threads = g_threads;
    Timer save_t;
    Die(saver.SaveIndex(path, copts));
    std::printf("  save %.3fs\n", save_t.Seconds());
  }
  uint64_t file_bytes = 0;
  {
    auto reader = IndexFileReader::OpenMapped(path);
    Die(reader.status());
    file_bytes = reader->header().file_bytes;
  }

  StartCell load = RunMode("load", mvdb.get(), q, path);
  StartCell mmap = RunMode("mmap", mvdb.get(), q, path);

  std::printf("  scale %d translate %.3fs file %.1f MB\n", scale, translate_s,
              file_bytes / (1024.0 * 1024.0));
  for (const StartCell& c : {rebuild, load, mmap}) {
    std::printf("  %-7s start %8.3fs  first-query %7.3fms\n", c.mode,
                c.start_s, c.first_query_ms);
    JsonLine("load_start")
        .Field("scale", scale)
        .Field("mode", std::string(c.mode))
        .Field("start_s", c.start_s)
        .Field("first_query_ms", c.first_query_ms)
        .Field("file_mb", file_bytes / (1024.0 * 1024.0))
        .Field("threads", g_threads)
        .Emit();
  }
  const double speedup = rebuild.start_s / (mmap.start_s > 0 ? mmap.start_s
                                                             : 1e-9);
  std::printf("  mmap start is %.0fx faster than rebuild\n", speedup);
  JsonLine("load_start_speedup")
      .Field("scale", scale)
      .Field("speedup", speedup)
      .Emit();

  // The whole point is bit-identical serving: all three stand-up paths must
  // produce the same probability for the same query.
  if (std::memcmp(&rebuild.answer, &load.answer, sizeof(double)) != 0 ||
      std::memcmp(&rebuild.answer, &mmap.answer, sizeof(double)) != 0) {
    std::fprintf(stderr, "MISMATCH: answers differ across start modes\n");
    std::exit(1);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  using namespace mvdb::bench;
  g_threads = ParseThreadsFlag(&argc, argv);
  std::vector<int> scales;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      scales.push_back(std::atoi(argv[i]));
    } else {
      std::fprintf(stderr, "usage: bench_load_start [scale ...] [--threads=N]\n");
      return 2;
    }
  }
  if (scales.empty()) scales = {10000, 50000, 200000};
  for (int scale : scales) RunScale(scale);
  return 0;
}
