// Ablation: the attribute-permutation choice pi (Section 4.2's heuristic).
//
// DESIGN.md ("Variable order") calls out the order as the decisive choice for
// OBDD size: separator-bearing attributes must come first in pi so that the
// per-separator-value blocks are contiguous in Pi and concatenation
// applies. This ablation builds the V1 constraint's OBDD under
//   (a) separator-first pi (the paper's heuristic),
//   (b) separator-LAST pi (adversarial),
// and reports sizes, construction times, and how often the builder had to
// fall back to apply-based synthesis.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/parser.h"

namespace mvdb {
namespace bench {
namespace {

Ucq V1Constraint(Database* db) {
  // V1's body over base tables (NV dropped for the ablation: we compare
  // construction, not semantics).
  return Unwrap(ParseUcq(
      "W :- Advisor(a1,a2), Student(a1,y), Wrote(a1,p), Wrote(a2,p), "
      "Pub(p,t,y).",
      &db->dict()));
}

struct Outcome {
  size_t nodes;
  double seconds;
  size_t concats;
  size_t syntheses;
};

Outcome BuildWithPi(const Database& db, const Ucq& w, const OrderSpec& spec) {
  BddManager mgr(BuildVariableOrder(db, spec));
  ConObddBuilder builder(db, &mgr);
  Timer t;
  const NodeId f = Unwrap(builder.Build(w));
  return Outcome{mgr.CountNodes(f), t.Seconds(), builder.concat_count(),
                 builder.synthesis_count()};
}

void PrintSeries() {
  std::printf("%-8s | %34s | %34s\n", "",
              "separator-first pi (paper)", "separator-last pi (adversarial)");
  std::printf("%-8s | %10s %10s %12s | %10s %10s %12s\n", "aid", "nodes",
              "time(s)", "synth steps", "nodes", "time(s)", "synth steps");
  for (int n : {20, 40, 60, 80}) {
    auto mvdb = Unwrap(dblp::BuildDblpMvdb(SweepConfig(n), nullptr));
    Database& db = mvdb->db();
    Ucq w = V1Constraint(&db);

    OrderSpec good;  // identity: aid1 is already first everywhere
    Outcome a = BuildWithPi(db, w, good);

    OrderSpec bad;
    bad.pi["Advisor"] = {1, 0};  // sort Advisor by the *advisor* column
    bad.pi["Student"] = {1, 0};  // sort Student by year
    Outcome b = BuildWithPi(db, w, bad);

    std::printf("%-8d | %10zu %10.4f %12zu | %10zu %10.4f %12zu\n", n,
                a.nodes, a.seconds, a.syntheses, b.nodes, b.seconds,
                b.syntheses);
  }
  std::printf("\nWith the separator attribute first, blocks are contiguous "
              "and the build concatenates;\nwith it last, ranges interleave "
              "and the builder falls back to synthesis (larger, slower).\n");
}

void BM_SeparatorFirst(benchmark::State& state) {
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(SweepConfig(60), nullptr));
  Database& db = mvdb->db();
  Ucq w = V1Constraint(&db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildWithPi(db, w, OrderSpec{}).nodes);
  }
}
BENCHMARK(BM_SeparatorFirst)->Unit(benchmark::kMillisecond);

void BM_SeparatorLast(benchmark::State& state) {
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(SweepConfig(60), nullptr));
  Database& db = mvdb->db();
  Ucq w = V1Constraint(&db);
  OrderSpec bad;
  bad.pi["Advisor"] = {1, 0};
  bad.pi["Student"] = {1, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildWithPi(db, w, bad).nodes);
  }
}
BENCHMARK(BM_SeparatorLast)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::PrintFigureHeader(
      "Ablation A", "variable-order (pi) choice for OBDD construction");
  mvdb::bench::PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
