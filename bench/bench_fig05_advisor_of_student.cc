// Figure 5: Alchemy vs MarkoViews, query "find the advisor of student X",
// sweeping the aid domain 1000..10000.
//
// Paper shape (log-scale y): Alchemy-total in the tens-to-hundreds of
// seconds, Alchemy-sampling within a factor ~5 of the augmented OBDD, and
// the MV-index flat around a millisecond.

#include <benchmark/benchmark.h>

#include "bench_fig56_common.h"

namespace mvdb {
namespace bench {
namespace {

void BM_MvIndexQuery(benchmark::State& state) {
  Workload w = MakeWorkload(SweepConfig(static_cast<int>(state.range(0))));
  const AdvisorPair pair = SomeAdvisorPair(*w.mvdb);
  Ucq q = MakeFigureQuery(w.mvdb.get(), QueryDirection::kAdvisorOfStudent, pair);
  for (auto _ : state) {
    auto result = w.engine->Query(q, Backend::kMvIndexCC);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MvIndexQuery)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::PrintFigureHeader(
      "Figure 5", "Alchemy vs MarkoViews — advisor of a student");
  mvdb::bench::RunFigure56(mvdb::bench::QueryDirection::kAdvisorOfStudent);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
