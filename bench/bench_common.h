// Copyright 2026 The MarkoView Authors.
//
// Shared helpers for the benchmark harness. Every binary regenerates one
// table or figure from the paper's evaluation (Section 5): it prints the
// same rows/series the paper plots, then runs google-benchmark
// micro-kernels for the figure's hot operation. Absolute numbers differ
// from the paper's 2008-era testbed; the *shape* (who wins, growth rates,
// where the crossover falls) is what bench/BENCHMARKS.md tracks.

#ifndef MVDB_BENCH_BENCH_COMMON_H_
#define MVDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "obdd/conobdd.h"
#include "obdd/order.h"
#include "query/analysis.h"
#include "query/eval.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mvdb {
namespace bench {

/// The paper's aid-domain sweep: 1000 .. 10000 (Figures 4-9).
inline std::vector<int> AidDomainSweep() {
  return {1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000};
}

inline void PrintFigureHeader(const char* figure, const char* title) {
  std::printf("\n==== %s: %s ====\n", figure, title);
}

inline void Die(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> so) {
  Die(so.status());
  return std::move(so).value();
}

/// DBLP workload with V1 + V2 only (the configuration of the paper's
/// Alchemy comparison and the Figures 4-9 sweeps).
inline dblp::DblpConfig SweepConfig(int num_authors) {
  dblp::DblpConfig cfg;
  cfg.num_authors = num_authors;
  cfg.include_affiliation = false;
  return cfg;
}

/// Compiled engine bundle reused across benchmark iterations.
struct Workload {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
};

inline Workload MakeWorkload(const dblp::DblpConfig& cfg,
                             const CompileOptions& copts = {}) {
  Workload w;
  w.mvdb = Unwrap(dblp::BuildDblpMvdb(cfg, nullptr));
  w.engine = std::make_unique<QueryEngine>(w.mvdb.get());
  Die(w.engine->Compile(copts));
  return w;
}

/// Strips a `--threads=N` (or `--threads N`) flag from argv before
/// google-benchmark sees it (it rejects unknown flags) and returns N.
/// Missing or malformed values fall back to 1 — the serial offline
/// pipeline — never to the "one per hardware thread" meaning of 0.
inline int ParseThreadsFlag(int* argc, char** argv) {
  int threads = 1;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      // Consume the value only if the next token isn't another flag.
      if (i + 1 < *argc && argv[i + 1][0] != '-') threads = std::atoi(argv[++i]);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return threads >= 1 ? threads : 1;
}

/// One-line machine-readable result record: prints
/// `BENCH_JSON {"bench":"...",...}` so a driver can scrape stdout into
/// BENCH_*.json files and track the perf trajectory across PRs.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    body_ = "{\"bench\":\"" + bench + "\"";
  }
  JsonLine& Field(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return Raw(key, buf);
  }
  JsonLine& Field(const std::string& key, size_t v) {
    return Raw(key, std::to_string(v));
  }
  JsonLine& Field(const std::string& key, int v) {
    return Raw(key, std::to_string(v));
  }
  JsonLine& Field(const std::string& key, const std::string& v) {
    return Raw(key, "\"" + v + "\"");
  }
  void Emit() { std::printf("BENCH_JSON %s}\n", body_.c_str()); }

 private:
  JsonLine& Raw(const std::string& key, const std::string& value) {
    body_ += ",\"" + key + "\":" + value;
    return *this;
  }
  std::string body_;
};

/// A (student, advisor) pair present in the Advisor table, for the
/// Figures 5/6/10 queries.
struct AdvisorPair {
  Value student;
  Value advisor;
};

inline AdvisorPair SomeAdvisorPair(const Mvdb& mvdb, size_t index = 0) {
  const Table* advisor = mvdb.db().Find("Advisor");
  MVDB_CHECK_GT(advisor->size(), index);
  return AdvisorPair{advisor->At(static_cast<RowId>(index), 0),
                     advisor->At(static_cast<RowId>(index), 1)};
}

/// "Augmented OBDD" evaluation as in Figures 5-6: construct the OBDD of W
/// from scratch (structure-driven, no index reuse) and evaluate
/// P0(Q v W) / Eq. 5 against it. Returns the answer probability; the caller
/// times the whole thing.
inline double EvalByFreshObdd(const Mvdb& mvdb, const Ucq& boolean_q) {
  const Database& db = mvdb.db();
  const Ucq& w = mvdb.W();
  auto is_prob = [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };
  OrderSpec spec;
  if (auto sep = FindSeparator(w, is_prob); sep.has_value()) {
    for (const auto& [sym, pos] : sep->position) {
      std::vector<size_t> perm = {pos};
      const Table* t = db.Find(sym);
      for (size_t p = 0; p < t->arity(); ++p) {
        if (p != pos) perm.push_back(p);
      }
      spec.pi[sym] = std::move(perm);
    }
  }
  BddManager mgr(BuildVariableOrder(db, spec));
  ConObddBuilder builder(db, &mgr);
  const NodeId w_bdd = Unwrap(builder.Build(w));
  const Lineage q_lin = Unwrap(EvalBoolean(db, boolean_q));
  const NodeId q_bdd = mgr.FromLineageSynthesis(q_lin);
  const auto probs = db.VarProbs();
  // P0(Q v W) - P0(W) = P0(Q ^ NOT W): the direct conjunction avoids both
  // the catastrophic cancellation of the subtraction and double-range
  // overflow (extended-range arithmetic, util/scaled_double.h).
  const NodeId not_w = mgr.Not(w_bdd);
  const ScaledDouble num = mgr.ProbScaled(mgr.And(q_bdd, not_w), probs);
  const ScaledDouble denom = mgr.ProbScaled(not_w, probs);
  return (num / denom).ToDouble();
}

}  // namespace bench
}  // namespace mvdb

#endif  // MVDB_BENCH_BENCH_COMMON_H_
