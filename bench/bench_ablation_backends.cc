// Ablation: evaluation backends for the Eq. 5 numerator P0(Q ^ NOT W).
//
// Compares, on the same mid-size DBLP instance and query set:
//   obdd-reuse   — synthesis of the query OBDD against the precompiled W
//                  OBDD (no index structures);
//   mv-index     — top-down MVIntersect with probUnder shortcuts and block
//                  skipping;
//   mv-index-cc  — cache-conscious forward sweep;
//   safe-plan    — lifted inference where Q v W is safe (reported when it
//                  applies; the DBLP W contains self-joins with
//                  inequalities, so it typically does not).
// All backends return identical probabilities; tests assert it, this
// ablation measures it.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

constexpr int kScale = 5000;

void PrintSeries() {
  Workload w = MakeWorkload(SweepConfig(kScale));
  const Table* advisor = w.mvdb->db().Find("Advisor");
  std::printf("%-6s %14s %14s %14s\n", "query", "obdd-reuse(ms)",
              "mv-index(ms)", "mv-index-cc(ms)");
  const size_t stride = std::max<size_t>(1, advisor->size() / 5);
  int qno = 0;
  for (size_t r = 0; r < advisor->size() && qno < 5; r += stride, ++qno) {
    const std::string name = dblp::AuthorName(
        static_cast<int>(advisor->At(static_cast<RowId>(r), 1)));
    Ucq q = dblp::StudentsOfAdvisorQuery(w.mvdb.get(), name);
    double ms[3];
    const Backend backends[] = {Backend::kObddReuse, Backend::kMvIndex,
                                Backend::kMvIndexCC};
    for (int b = 0; b < 3; ++b) {
      constexpr int kReps = 20;
      Timer t;
      for (int i = 0; i < kReps; ++i) {
        Die(w.engine->Query(q, backends[b]).status());
      }
      ms[b] = t.Millis() / kReps;
    }
    std::printf("q%-5d %14.3f %14.3f %14.3f\n", qno + 1, ms[0], ms[1], ms[2]);
  }
}

Workload* SharedWorkload() {
  static Workload w = MakeWorkload(SweepConfig(kScale));
  return &w;
}

void BM_Backend(benchmark::State& state) {
  Workload* w = SharedWorkload();
  const Table* advisor = w->mvdb->db().Find("Advisor");
  const std::string name =
      dblp::AuthorName(static_cast<int>(advisor->At(0, 1)));
  Ucq q = dblp::StudentsOfAdvisorQuery(w->mvdb.get(), name);
  const Backend backend = static_cast<Backend>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w->engine->Query(q, backend));
  }
}
BENCHMARK(BM_Backend)
    ->Arg(static_cast<int>(Backend::kObddReuse))
    ->Arg(static_cast<int>(Backend::kMvIndex))
    ->Arg(static_cast<int>(Backend::kMvIndexCC))
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::PrintFigureHeader(
      "Ablation B", "Eq. 5 numerator backends on the DBLP workload");
  mvdb::bench::PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
