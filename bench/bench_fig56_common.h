// Copyright 2026 The MarkoView Authors.
//
// Shared driver for Figures 5 and 6: Alchemy (MC-SAT, our implementation)
// vs the augmented OBDD vs the MV-index, over the aid-domain sweep.
//
// Four series per figure, exactly as the paper plots them:
//   alchemy-total    — grounding (view materialization into MLN features)
//                      plus MC-SAT sampling;
//   alchemy-sampling — MC-SAT sampling only (the paper calls this "a better
//                      measure ... on the total probabilistic inference
//                      time" since Alchemy's grounding is notoriously slow);
//   augmented-obdd   — build the OBDD of W from scratch and evaluate
//                      P0(Q v W) against it (exact, but pays construction
//                      per query);
//   mv-index         — offline-compiled MV-index, online CC-MVIntersect.
//
// Expected shape (paper): the two Alchemy lines and augmented-obdd grow
// with the data; mv-index stays flat at fractions of a millisecond.

#ifndef MVDB_BENCH_BENCH_FIG56_COMMON_H_
#define MVDB_BENCH_BENCH_FIG56_COMMON_H_

#include "bench_common.h"
#include "mln/mln.h"

namespace mvdb {
namespace bench {

enum class QueryDirection { kAdvisorOfStudent, kStudentsOfAdvisor };

inline Ucq MakeFigureQuery(Mvdb* mvdb, QueryDirection dir,
                           const AdvisorPair& pair) {
  if (dir == QueryDirection::kAdvisorOfStudent) {
    return dblp::AdvisorOfStudentQuery(
        mvdb, dblp::AuthorName(static_cast<int>(pair.student)));
  }
  return dblp::StudentsOfAdvisorQuery(
      mvdb, dblp::AuthorName(static_cast<int>(pair.advisor)));
}

inline void RunFigure56(QueryDirection dir) {
  std::printf("%-10s %16s %18s %16s %14s\n", "aid", "alchemy-total(s)",
              "alchemy-sampling(s)", "augmented-obdd(s)", "mv-index(s)");
  for (int n : AidDomainSweep()) {
    const dblp::DblpConfig cfg = SweepConfig(n);

    // --- Alchemy stand-in: ground the MLN, run MC-SAT -------------------
    Timer ground_timer;
    auto mln_mvdb = Unwrap(dblp::BuildDblpMvdb(cfg, nullptr));
    Die(mln_mvdb->Translate());
    GroundMln mln = Unwrap(mln_mvdb->ToGroundMln());
    const double ground_s = ground_timer.Seconds();

    const AdvisorPair pair = SomeAdvisorPair(*mln_mvdb);
    Ucq query = MakeFigureQuery(mln_mvdb.get(), dir, pair);
    // Ground the head to a Boolean query for the samplers: take the first
    // answer tuple.
    AnswerMap answers;
    Die(Eval(mln_mvdb->db(), query, EvalOptions{}, &answers));
    MVDB_CHECK(!answers.empty());
    const Lineage q_lineage = answers.begin()->second.lineage;

    SamplerOptions opts;
    opts.num_samples = 60;
    opts.burn_in = 10;
    opts.walk_prob = 1.0;  // pure WalkSAT moves: greedy scans are O(|M|)
    McSat sampler(mln, opts);
    Timer sample_timer;
    auto sampled = sampler.EstimateQueryProb(q_lineage);
    const double sampling_s = sample_timer.Seconds();
    Die(sampled.status());

    // --- Augmented OBDD: construct W's OBDD per query -------------------
    Ucq bool_query = query;
    bool_query.head_vars.clear();  // existential head: Boolean version
    Timer obdd_timer;
    const double obdd_answer = EvalByFreshObdd(*mln_mvdb, bool_query);
    const double obdd_s = obdd_timer.Seconds();
    benchmark::DoNotOptimize(obdd_answer);

    // --- MV-index: offline compile excluded, online query timed ---------
    Workload w = MakeWorkload(cfg);
    Ucq q2 = MakeFigureQuery(w.mvdb.get(), dir, pair);
    Timer index_timer;
    auto result = w.engine->Query(q2, Backend::kMvIndexCC);
    const double index_s = index_timer.Seconds();
    Die(result.status());

    std::printf("%-10d %16.4f %18.4f %16.4f %14.6f\n", n,
                ground_s + sampling_s, sampling_s, obdd_s, index_s);
  }
}

}  // namespace bench
}  // namespace mvdb

#endif  // MVDB_BENCH_BENCH_FIG56_COMMON_H_
