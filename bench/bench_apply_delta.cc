// Copyright 2026 The MarkoView Authors.
//
// Incremental-maintenance bench (ISSUE 9): how fast does the compiled
// MV-index absorb a single-author base delta, compared to the full rebuild
// that was the only option before?
//
// Per scale it compiles the DBLP index once, then times
//
//   weight  — QueryEngine::ApplyDelta of one Student weight move: the
//             in-place annotation repair path (MvIndex::ApplyWeightDelta).
//             The acceptance bar is the paper-scale one: at 1M authors a
//             single-author upsert must land well under 10ms;
//   delete  — one tombstone (weight -> 0), same repair path;
//   insert  — one brand-new Student tuple: the structural path (view
//             maintenance, order splice, dirty-block recompile, restitch).
//             Reported honestly — it re-partitions W and re-extracts the
//             clean chain, so it is 100-1000x the weight path, yet still
//             far below the full rebuild it replaces;
//   rebuild — a cold Compile over the mutated MVDB, the baseline every
//             delta row is divided by.
//
// Small scales also run the differential gate inline: the incrementally
// maintained index must hash bit-identical to the cold rebuild (the same
// invariant tests/delta_maintenance_test.cc pins; at 1M the extra compile
// would dominate the bench, so the gate runs where it is cheap).
//
// Usage: bench_apply_delta [scale ...] [--threads=N]   # default 4
//   bench_apply_delta                  # sweep {10000, 50000}
//   bench_apply_delta 1000000          # the paper-scale acceptance row

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

int g_threads = 4;

void FnvMix(uint64_t v, uint64_t* h) { *h = (*h ^ v) * 1099511628211ULL; }

/// Flat topology + block directory + P0(NOT W) — the differential gate.
uint64_t HashIndex(const MvIndex& index) {
  uint64_t h = 1469598103934665603ULL;
  const FlatObdd& flat = index.flat();
  FnvMix(static_cast<uint64_t>(static_cast<int64_t>(flat.root())), &h);
  FnvMix(flat.size(), &h);
  for (FlatId u = 0; u < static_cast<FlatId>(flat.size()); ++u) {
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.level(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.lo(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.hi(u))), &h);
  }
  for (const MvBlock& b : index.blocks()) {
    FnvMix(b.prob.mantissa_bits(), &h);
    FnvMix(static_cast<uint64_t>(b.prob.exponent_word()), &h);
  }
  const double not_w = index.ProbNotW();
  uint64_t bits;
  std::memcpy(&bits, &not_w, sizeof(bits));
  FnvMix(bits, &h);
  return h;
}

std::vector<Value> RowValues(const Table* t, size_t r) {
  std::vector<Value> v;
  for (size_t c = 0; c < t->arity(); ++c) {
    v.push_back(t->At(static_cast<RowId>(r), c));
  }
  return v;
}

struct LatencyStats {
  double p50_ms = 0, max_ms = 0;
};

LatencyStats Summarize(std::vector<double>* ms) {
  LatencyStats s;
  if (ms->empty()) return s;
  std::sort(ms->begin(), ms->end());
  s.p50_ms = (*ms)[ms->size() / 2];
  s.max_ms = ms->back();
  return s;
}

/// Per-op repair-phase samples (MvIndex::last_repair_stats), so the
/// headline p50 is attributable: annotation replay vs block reprobe vs
/// product-array rebuild.
struct PhaseSamples {
  std::vector<double> replay_ms, reprobe_ms, products_ms;

  void Record(const MvIndexRepairStats& rs) {
    if (!rs.valid) return;
    replay_ms.push_back(rs.replay_seconds * 1e3);
    reprobe_ms.push_back(rs.reprobe_seconds * 1e3);
    products_ms.push_back(rs.products_seconds * 1e3);
  }
};

void EmitRow(int scale, const char* op, const LatencyStats& s, size_t count,
             PhaseSamples* phases = nullptr) {
  std::printf("  %-7s p50 %9.3f ms   max %9.3f ms   (%zu ops)\n", op, s.p50_ms,
              s.max_ms, count);
  JsonLine line("apply_delta");
  line.Field("scale", scale)
      .Field("op", std::string(op))
      .Field("p50_ms", s.p50_ms)
      .Field("max_ms", s.max_ms)
      .Field("count", count)
      .Field("threads", g_threads);
  if (phases != nullptr && !phases->replay_ms.empty()) {
    const LatencyStats replay = Summarize(&phases->replay_ms);
    const LatencyStats reprobe = Summarize(&phases->reprobe_ms);
    const LatencyStats products = Summarize(&phases->products_ms);
    std::printf("          repair split p50: replay %.3f ms, reprobe %.3f ms, "
                "products %.3f ms\n",
                replay.p50_ms, reprobe.p50_ms, products.p50_ms);
    line.Field("replay_p50_ms", replay.p50_ms)
        .Field("reprobe_p50_ms", reprobe.p50_ms)
        .Field("products_p50_ms", products.p50_ms);
  }
  line.Emit();
}

void RunScale(int scale) {
  PrintFigureHeader("apply-delta", "incremental MV-index maintenance");
  dblp::DblpConfig cfg;
  cfg.num_authors = scale;
  cfg.include_affiliation = true;
  cfg.num_threads = g_threads;
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(cfg, nullptr));
  auto engine = std::make_unique<QueryEngine>(mvdb.get());
  CompileOptions copts;
  copts.num_threads = g_threads;
  Timer compile_t;
  Die(engine->Compile(copts));
  const double compile_s = compile_t.Seconds();
  std::printf("  scale %d compiled in %.3fs (%zu nodes, %zu blocks)\n", scale,
              compile_s, engine->index().size(),
              engine->index().blocks().size());

  const Table* student = mvdb->db().Find("Student");
  MVDB_CHECK(student != nullptr && student->size() >= 64);

  // Honest row selection: a Student tuple outside every view derivation has
  // no chain node at its variable's level, so its weight delta is a
  // table-entry overwrite (microseconds) — timing those would flatter the
  // headline. The acceptance row times tuples that DO appear in the chain
  // (full probUnder repair + block reprobe + prefix rebuild), sampled
  // across the whole chain so the p50 reflects a typical repair span, not
  // a lucky early or late block.
  std::vector<size_t> chain_rows;
  for (size_t r = 0; r < student->size(); ++r) {
    const VarId v = student->var(static_cast<RowId>(r));
    if (!engine->manager().has_var(v)) continue;
    const auto [begin, end] =
        engine->index().flat().NodesAtLevel(engine->manager().level_of_var(v));
    if (begin != end) chain_rows.push_back(r);
  }
  MVDB_CHECK(chain_rows.size() >= 40) << "workload has too few lineage rows";
  const size_t chain_stride = chain_rows.size() / 21;

  // Single-author weight upserts: 16 distinct lineage Student rows, one
  // ApplyDelta each (never the same row twice — a repeated weight is a
  // no-op and would flatter the numbers).
  std::vector<DeltaOp> applied;  // replayed for the differential gate
  std::vector<double> weight_ms;
  PhaseSamples weight_phases;
  for (size_t i = 0; i < 16; ++i) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::kUpdateWeight;
    op.table = "Student";
    op.values = RowValues(student, chain_rows[i * chain_stride]);
    op.weight = 0.6 + 0.1 * static_cast<double>(i);
    Timer t;
    Die(engine->ApplyDelta({op}));
    weight_ms.push_back(t.Seconds() * 1e3);
    weight_phases.Record(engine->index().last_repair_stats());
    applied.push_back(std::move(op));
  }
  EmitRow(scale, "weight", Summarize(&weight_ms), weight_ms.size(),
          &weight_phases);

  // Tombstone deletes: same repair path, weight -> 0.
  std::vector<double> delete_ms;
  PhaseSamples delete_phases;
  for (size_t i = 0; i < 4; ++i) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::kDelete;
    op.table = "Student";
    op.values = RowValues(student, chain_rows[i * chain_stride + 1]);
    Timer t;
    Die(engine->ApplyDelta({op}));
    delete_ms.push_back(t.Seconds() * 1e3);
    delete_phases.Record(engine->index().last_repair_stats());
    applied.push_back(std::move(op));
  }
  EmitRow(scale, "delete", Summarize(&delete_ms), delete_ms.size(),
          &delete_phases);

  // Structural inserts: brand-new Student tuples under fresh aids.
  Value fresh_aid = 0;
  for (size_t r = 0; r < student->size(); ++r) {
    fresh_aid = std::max(fresh_aid, student->At(static_cast<RowId>(r), 0));
  }
  fresh_aid += 1000;
  std::vector<double> insert_ms;
  for (size_t i = 0; i < 4; ++i) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::kInsert;
    op.table = "Student";
    op.values = {fresh_aid + static_cast<Value>(i), 2001};
    op.weight = 0.9;
    Timer t;
    Die(engine->ApplyDelta({op}));
    insert_ms.push_back(t.Seconds() * 1e3);
    applied.push_back(std::move(op));
  }
  const LatencyStats insert_stats = Summarize(&insert_ms);
  EmitRow(scale, "insert", insert_stats, insert_ms.size());

  // Baseline: the full rebuild every delta replaces.
  auto rebuilt = std::make_unique<QueryEngine>(mvdb.get());
  Timer rebuild_t;
  Die(rebuilt->Compile(copts));
  const double rebuild_s = rebuild_t.Seconds();
  std::printf("  rebuild %.3fs  -> weight-delta speedup %.0fx\n", rebuild_s,
              rebuild_s * 1e3 /
                  (weight_ms.empty() || weight_ms[weight_ms.size() / 2] <= 0
                       ? 1e-3
                       : weight_ms[weight_ms.size() / 2]));
  JsonLine("apply_delta_rebuild")
      .Field("scale", scale)
      .Field("rebuild_s", rebuild_s)
      .Field("threads", g_threads)
      .Emit();

  // Differential gate: the rebuild above ran over the mutated MVDB, so the
  // incrementally maintained index must match it bit for bit.
  if (HashIndex(engine->index()) != HashIndex(rebuilt->index())) {
    std::fprintf(stderr,
                 "MISMATCH: incremental index diverged from rebuild\n");
    std::exit(1);
  }
  std::printf("  differential gate: ok (incremental == rebuild)\n");
}

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  using namespace mvdb::bench;
  g_threads = ParseThreadsFlag(&argc, argv);
  std::vector<int> scales;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      scales.push_back(std::atoi(argv[i]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_apply_delta [scale ...] [--threads=N]\n");
      return 2;
    }
  }
  if (scales.empty()) scales = {10000, 50000};
  for (int scale : scales) RunScale(scale);
  return 0;
}
