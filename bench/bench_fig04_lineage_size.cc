// Figure 4: lineage size of the MarkoViews (the number of tuples involved
// in the constraints, i.e. the distinct variables of Phi_W) as the aid
// domain grows from 1000 to 10000.
//
// Paper shape: roughly linear growth, ~10K tuples at aid = 10000 with the
// V1 + V2 feature set.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

void PrintSeries() {
  std::printf("%-12s %14s %14s %14s\n", "aid domain", "lineage size",
              "clauses", "literals");
  for (int n : AidDomainSweep()) {
    Workload w = MakeWorkload(SweepConfig(n));
    const Lineage* lin = Unwrap(w.engine->WLineage());
    std::printf("%-12d %14zu %14zu %14zu\n", n, lin->NumDistinctVars(),
                lin->size(), lin->NumLiterals());
  }
}

void BM_WLineage(benchmark::State& state) {
  Workload w = MakeWorkload(SweepConfig(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    Lineage lin = Unwrap(EvalBoolean(w.mvdb->db(), w.mvdb->W()));
    benchmark::DoNotOptimize(lin);
  }
}
BENCHMARK(BM_WLineage)->Arg(1000)->Arg(5000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::PrintFigureHeader("Figure 4", "lineage size of W per dataset");
  mvdb::bench::PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
