// Figure 11: scalability to the full dataset — 10 queries of the form
// "find the affiliation of author Y" (the V3 workload), CC-MVIntersect
// over the precompiled MV-index.
//
// Paper shape: all queries below ~6 ms.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

int g_scale = 50000;
int g_threads = 1;

void RunTenQueries() {
  dblp::DblpConfig cfg;
  cfg.num_authors = g_scale;
  cfg.include_affiliation = true;
  cfg.num_prolific_pairs = 12;

  CompileOptions copts;
  copts.num_threads = g_threads;
  copts.reserve_hint = static_cast<size_t>(g_scale) * 16;
  Timer build_timer;
  Workload w = MakeWorkload(cfg, copts);
  const double build_s = build_timer.Seconds();
  std::printf("full scale: %d authors, MV-index %zu nodes, compiled in %.1f s "
              "(%d threads)\n\n",
              g_scale, w.engine->index().size(), build_s, g_threads);
  JsonLine("fig11_build")
      .Field("authors", g_scale)
      .Field("threads", g_threads)
      .Field("build_s", build_s)
      .Field("flat_nodes", w.engine->index().size())
      .Emit();

  const Table* aff = w.mvdb->db().Find("Affiliation");
  if (aff->size() == 0) {
    std::printf("no Affiliation tuples at this scale\n");
    return;
  }
  // One shared query shape: the first query plans, the other nine hit.
  w.engine->EnablePlanCache(64);

  std::printf("%-6s %-14s %10s %10s  %s\n", "query", "author", "answers",
              "time(ms)", "plan");
  const size_t stride = std::max<size_t>(1, aff->size() / 10);
  int qno = 0;
  for (size_t r = 0; r < aff->size() && qno < 10; r += stride, ++qno) {
    const Value aid = aff->At(static_cast<RowId>(r), 0);
    const std::string name = dblp::AuthorName(static_cast<int>(aid));
    Ucq q = dblp::AffiliationOfAuthorQuery(w.mvdb.get(), name);
    const PlanCacheStats before = w.engine->plan_cache_stats();
    Timer t;
    auto answers = w.engine->Query(q, Backend::kMvIndexCC);
    const double ms = t.Millis();
    Die(answers.status());
    const bool hit = w.engine->plan_cache_stats().hits > before.hits;
    std::printf("q%-5d %-14s %10zu %10.3f  %s\n", qno + 1, name.c_str(),
                answers->size(), ms, hit ? "cached" : "planned");
  }
  const PlanCacheStats pc = w.engine->plan_cache_stats();
  std::printf("\nplan cache: %llu hits / %llu misses (hit rate %.0f%%)\n",
              static_cast<unsigned long long>(pc.hits),
              static_cast<unsigned long long>(pc.misses), 100.0 * pc.HitRate());
  JsonLine("fig11_plan_cache")
      .Field("authors", g_scale)
      .Field("cache_hits", static_cast<size_t>(pc.hits))
      .Field("cache_misses", static_cast<size_t>(pc.misses))
      .Field("hit_rate", pc.HitRate())
      .Emit();
}

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::g_threads = mvdb::bench::ParseThreadsFlag(&argc, argv);
  if (argc > 1 && argv[1][0] != '-') {
    mvdb::bench::g_scale = std::atoi(argv[1]);
  }
  mvdb::bench::PrintFigureHeader(
      "Figure 11", "querying affiliations of an author, full dataset");
  mvdb::bench::RunTenQueries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
