// Figure 9: MVIntersect vs CC-MVIntersect on the worst-case query — a
// 20-tuple lineage spread across the entire MV-index, forcing a complete
// traversal (all block-skipping shortcuts useless).
//
// Paper shape: both linear in the index size, the cache-conscious variant
// ~2x faster.

#include <benchmark/benchmark.h>

#include <string_view>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

/// --classic-intersect: run the sweeps with the branch-light fast walk
/// disabled (MvIndex::set_use_fast_intersect(false)) for A/B numbers on the
/// same binary. Results are bit-identical either way; only timing moves.
bool g_classic_intersect = false;

/// A query lineage of ~20 Advisor tuples spaced evenly across the index's
/// variable range — the paper's "worst case scenario: it forced the system
/// to traverse entire MV-index".
Lineage WorstCaseLineage(const Mvdb& mvdb) {
  const Table* advisor = mvdb.db().Find("Advisor");
  Lineage q;
  const size_t n = advisor->size();
  const size_t stride = std::max<size_t>(1, n / 20);
  Clause clause;
  for (size_t r = 0; r < n; r += stride) {
    // One disjunct per tuple: DNF over spread-out variables.
    q.AddClause({advisor->var(static_cast<RowId>(r))});
  }
  (void)clause;
  return q;
}

void PrintSeries() {
  std::printf("%-12s %14s %16s %20s %18s %12s\n", "aid domain", "index nodes",
              "mvintersect(s)", "cc-mvintersect(s)", "cc-batch8/q(s)",
              "agree");
  for (int n : AidDomainSweep()) {
    Workload w = MakeWorkload(SweepConfig(n));
    w.engine->mutable_index().set_use_fast_intersect(!g_classic_intersect);
    const Lineage q = WorstCaseLineage(*w.mvdb);
    const NodeId qb = w.engine->manager().FromLineageSynthesis(q);

    // Compare final Eq. 5 probabilities: the raw numerators leave double
    // range by design (extended-range arithmetic; the ratio is ordinary).
    const ScaledDouble denom = w.engine->index().ProbNotWScaled();
    constexpr int kReps = 200;
    Timer td_timer;
    ScaledDouble td_num;
    for (int i = 0; i < kReps; ++i) {
      td_num = w.engine->index().MVIntersectScaled(qb);
    }
    const double td_s = td_timer.Seconds() / kReps;
    const double td = (td_num / denom).ToDouble();

    Timer cc_timer;
    ScaledDouble cc_num;
    for (int i = 0; i < kReps; ++i) {
      cc_num = w.engine->index().CCMVIntersectScaled(qb);
    }
    const double cc_s = cc_timer.Seconds() / kReps;
    const double cc = (cc_num / denom).ToDouble();

    // Serving-layer amortization: 8 in-flight copies of the worst-case
    // query share a single pass over the flat chain.
    const std::vector<CcQuery> batch(8, CcQuery{&w.engine->manager(), qb});
    CcSweepScratch scratch;
    std::vector<ScaledDouble> out;
    Timer batch_timer;
    for (int i = 0; i < kReps / 8; ++i) {
      w.engine->index().CCMVIntersectBatchScaled(batch, &scratch, &out);
    }
    const double batch_s = batch_timer.Seconds() / (kReps / 8) / 8;
    const double bt = (out.back() / denom).ToDouble();

    const bool agree =
        std::abs(td - cc) <= 1e-9 * std::max(1.0, std::abs(td)) && bt == cc;
    std::printf("%-12d %14zu %16.6f %20.6f %18.6f %12s\n", n,
                w.engine->index().size(), td_s, cc_s, batch_s,
                agree ? "yes" : "NO");
    JsonLine("fig09_intersect")
        .Field("aid_domain", n)
        .Field("flat_nodes", w.engine->index().size())
        .Field("mvintersect_s", td_s)
        .Field("cc_mvintersect_s", cc_s)
        .Field("cc_batch8_per_query_s", batch_s)
        .Emit();
  }
}

void BM_MVIntersect(benchmark::State& state) {
  Workload w = MakeWorkload(SweepConfig(static_cast<int>(state.range(0))));
  w.engine->mutable_index().set_use_fast_intersect(!g_classic_intersect);
  const Lineage q = WorstCaseLineage(*w.mvdb);
  const NodeId qb = w.engine->manager().FromLineageSynthesis(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.engine->index().MVIntersectScaled(qb));
  }
}
BENCHMARK(BM_MVIntersect)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_CCMVIntersect(benchmark::State& state) {
  Workload w = MakeWorkload(SweepConfig(static_cast<int>(state.range(0))));
  w.engine->mutable_index().set_use_fast_intersect(!g_classic_intersect);
  const Lineage q = WorstCaseLineage(*w.mvdb);
  const NodeId qb = w.engine->manager().FromLineageSynthesis(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.engine->index().CCMVIntersectScaled(qb));
  }
}
BENCHMARK(BM_CCMVIntersect)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// The serving layer's batched sweep: 8 concurrent worst-case queries share
/// one forward pass over the flat chain instead of eight. Compare against
/// 8x BM_CCMVIntersect at the same Arg to read the amortization.
void BM_CCMVIntersectBatch8(benchmark::State& state) {
  Workload w = MakeWorkload(SweepConfig(static_cast<int>(state.range(0))));
  w.engine->mutable_index().set_use_fast_intersect(!g_classic_intersect);
  const Lineage q = WorstCaseLineage(*w.mvdb);
  const NodeId qb = w.engine->manager().FromLineageSynthesis(q);
  const std::vector<CcQuery> batch(8, CcQuery{&w.engine->manager(), qb});
  CcSweepScratch scratch;
  std::vector<ScaledDouble> out;
  for (auto _ : state) {
    w.engine->index().CCMVIntersectBatchScaled(batch, &scratch, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CCMVIntersectBatch8)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--classic-intersect") {
      mvdb::bench::g_classic_intersect = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  mvdb::bench::PrintFigureHeader(
      "Figure 9", "MVIntersect vs CC-MVIntersect, worst-case query");
  mvdb::bench::PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
