// Figure 9: MVIntersect vs CC-MVIntersect on the worst-case query — a
// 20-tuple lineage spread across the entire MV-index, forcing a complete
// traversal (all block-skipping shortcuts useless).
//
// Paper shape: both linear in the index size, the cache-conscious variant
// ~2x faster.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

/// A query lineage of ~20 Advisor tuples spaced evenly across the index's
/// variable range — the paper's "worst case scenario: it forced the system
/// to traverse entire MV-index".
Lineage WorstCaseLineage(const Mvdb& mvdb) {
  const Table* advisor = mvdb.db().Find("Advisor");
  Lineage q;
  const size_t n = advisor->size();
  const size_t stride = std::max<size_t>(1, n / 20);
  Clause clause;
  for (size_t r = 0; r < n; r += stride) {
    // One disjunct per tuple: DNF over spread-out variables.
    q.AddClause({advisor->var(static_cast<RowId>(r))});
  }
  (void)clause;
  return q;
}

void PrintSeries() {
  std::printf("%-12s %14s %16s %20s %12s\n", "aid domain", "index nodes",
              "mvintersect(s)", "cc-mvintersect(s)", "agree");
  for (int n : AidDomainSweep()) {
    Workload w = MakeWorkload(SweepConfig(n));
    const Lineage q = WorstCaseLineage(*w.mvdb);
    const NodeId qb = w.engine->manager().FromLineageSynthesis(q);

    // Compare final Eq. 5 probabilities: the raw numerators leave double
    // range by design (extended-range arithmetic; the ratio is ordinary).
    const ScaledDouble denom = w.engine->index().ProbNotWScaled();
    constexpr int kReps = 200;
    Timer td_timer;
    ScaledDouble td_num;
    for (int i = 0; i < kReps; ++i) {
      td_num = w.engine->index().MVIntersectScaled(qb);
    }
    const double td_s = td_timer.Seconds() / kReps;
    const double td = (td_num / denom).ToDouble();

    Timer cc_timer;
    ScaledDouble cc_num;
    for (int i = 0; i < kReps; ++i) {
      cc_num = w.engine->index().CCMVIntersectScaled(qb);
    }
    const double cc_s = cc_timer.Seconds() / kReps;
    const double cc = (cc_num / denom).ToDouble();

    std::printf("%-12d %14zu %16.6f %20.6f %12s\n", n, w.engine->index().size(),
                td_s, cc_s, std::abs(td - cc) <= 1e-9 * std::max(1.0, std::abs(td)) ? "yes" : "NO");
  }
}

void BM_MVIntersect(benchmark::State& state) {
  Workload w = MakeWorkload(SweepConfig(static_cast<int>(state.range(0))));
  const Lineage q = WorstCaseLineage(*w.mvdb);
  const NodeId qb = w.engine->manager().FromLineageSynthesis(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.engine->index().MVIntersectScaled(qb));
  }
}
BENCHMARK(BM_MVIntersect)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_CCMVIntersect(benchmark::State& state) {
  Workload w = MakeWorkload(SweepConfig(static_cast<int>(state.range(0))));
  const Lineage q = WorstCaseLineage(*w.mvdb);
  const NodeId qb = w.engine->manager().FromLineageSynthesis(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.engine->index().CCMVIntersectScaled(qb));
  }
}
BENCHMARK(BM_CCMVIntersect)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::PrintFigureHeader(
      "Figure 9", "MVIntersect vs CC-MVIntersect, worst-case query");
  mvdb::bench::PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
