// Serving throughput: QPS and tail latency of the concurrent serving layer
// (src/serve/) on the Figure 10/11 query mix — students-of-advisor and
// affiliation-of-author against the full-scale synthetic DBLP.
//
// Sweeps client concurrency (closed-loop clients, one outstanding request
// each) with the plan cache on and off; each cell reports QPS, p50 and p99
// latency, batching and cache counters as one BENCH_JSON line. The paper
// serves queries one at a time (Figures 10/11, <6 ms each); this harness
// measures what the same index sustains under concurrent load.
//
//   bench_serve_qps [scale] [--threads=N]   # N = server workers, default 4

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "serve/server.h"

namespace mvdb {
namespace bench {
namespace {

int g_scale = 50000;
int g_threads = 4;

/// The Figure 10/11 mix: 10 students-of-advisor + 10 affiliation-of-author
/// queries, pre-parsed once (parsing interns into the dictionary, which is
/// not thread-safe; serving takes parsed Ucqs).
std::vector<Ucq> MakeQueryMix(const Workload& w) {
  std::vector<Ucq> mix;
  const Table* advisor = w.mvdb->db().Find("Advisor");
  const size_t astride = std::max<size_t>(1, advisor->size() / 10);
  for (size_t r = 0, n = 0; r < advisor->size() && n < 10; r += astride, ++n) {
    const Value senior = advisor->At(static_cast<RowId>(r), 1);
    mix.push_back(dblp::StudentsOfAdvisorQuery(
        w.mvdb.get(), dblp::AuthorName(static_cast<int>(senior))));
  }
  const Table* aff = w.mvdb->db().Find("Affiliation");
  const size_t fstride = std::max<size_t>(1, aff->size() / 10);
  for (size_t r = 0, n = 0; r < aff->size() && n < 10; r += fstride, ++n) {
    const Value aid = aff->At(static_cast<RowId>(r), 0);
    mix.push_back(dblp::AffiliationOfAuthorQuery(
        w.mvdb.get(), dblp::AuthorName(static_cast<int>(aid))));
  }
  MVDB_CHECK(!mix.empty());
  return mix;
}

struct CellResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t completed = 0;
  size_t errors = 0;
};

double Percentile(std::vector<double>* ms, double p) {
  if (ms->empty()) return 0;
  const size_t k = std::min(ms->size() - 1,
                            static_cast<size_t>(p * (ms->size() - 1) + 0.5));
  std::nth_element(ms->begin(), ms->begin() + k, ms->end());
  return (*ms)[k];
}

/// Closed loop: each client keeps exactly one request outstanding, cycling
/// through the mix from a staggered offset so concurrent clients hit
/// different (and sometimes the same) shapes.
CellResult RunCell(Server* server, const std::vector<Ucq>& mix, int clients,
                   int reps_per_client) {
  std::vector<std::vector<double>> lat(clients);
  std::atomic<size_t> errors{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(reps_per_client);
      for (int i = 0; i < reps_per_client; ++i) {
        ServeRequest req;
        req.query = mix[(c + i) % mix.size()];
        Timer t;
        const ServeResult res = server->Submit(std::move(req)).get();
        lat[c].push_back(t.Millis());
        if (!res.status.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = wall.Seconds();

  CellResult cell;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  cell.completed = all.size() - errors.load();
  cell.errors = errors.load();
  cell.qps = wall_s > 0 ? all.size() / wall_s : 0;
  cell.p50_ms = Percentile(&all, 0.50);
  cell.p99_ms = Percentile(&all, 0.99);
  return cell;
}

void RunSweep() {
  dblp::DblpConfig cfg;
  cfg.num_authors = g_scale;
  cfg.include_affiliation = true;

  CompileOptions copts;
  copts.num_threads = g_threads;
  copts.reserve_hint = static_cast<size_t>(g_scale) * 16;
  Timer build_timer;
  Workload w = MakeWorkload(cfg, copts);
  std::printf("full scale: %d authors, MV-index %zu nodes, compiled in %.1f s; "
              "%d server workers\n\n",
              g_scale, w.engine->index().size(), build_timer.Seconds(),
              g_threads);
  const std::vector<Ucq> mix = MakeQueryMix(w);

  std::printf("%-7s %-8s %10s %10s %10s %10s %9s\n", "cache", "clients", "qps",
              "p50(ms)", "p99(ms)", "batched", "hit rate");
  for (const bool use_cache : {false, true}) {
    for (const int clients : {1, 2, 4, 8, 16}) {
      ServeOptions opts;
      opts.num_threads = g_threads;
      opts.use_plan_cache = use_cache;
      auto server = Unwrap(w.engine->Serve(opts));
      // Warm one request per shape so the sweep measures steady state, not
      // first-plan cost (the cold plan is fig10/11's "planned" row).
      for (const Ucq& q : mix) {
        ServeRequest req;
        req.query = q;
        Die(server->Execute(req).status);
      }
      const int reps = std::max(40, 400 / clients);
      const CellResult cell = RunCell(server.get(), mix, clients, reps);
      const ServerStats stats = server->stats();
      const PlanCacheStats pc = server->plan_cache_stats();
      server->Shutdown();
      if (cell.errors > 0) {
        std::fprintf(stderr, "bench error: %zu serving errors\n", cell.errors);
        std::exit(1);
      }
      std::printf("%-7s %-8d %10.0f %10.3f %10.3f %10zu %8.0f%%\n",
                  use_cache ? "on" : "off", clients, cell.qps, cell.p50_ms,
                  cell.p99_ms, static_cast<size_t>(stats.batched_requests),
                  100.0 * pc.HitRate());
      JsonLine("serve_qps")
          .Field("authors", g_scale)
          .Field("server_threads", g_threads)
          .Field("plan_cache", use_cache ? 1 : 0)
          .Field("clients", clients)
          .Field("requests", cell.completed)
          .Field("qps", cell.qps)
          .Field("p50_ms", cell.p50_ms)
          .Field("p99_ms", cell.p99_ms)
          .Field("batches", static_cast<size_t>(stats.batches))
          .Field("batched_requests",
                 static_cast<size_t>(stats.batched_requests))
          .Field("cache_hit_rate", pc.HitRate())
          .Emit();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  // ParseThreadsFlag falls back to 1 when the flag is absent; this bench
  // wants a small pool by default, so detect presence first.
  bool has_threads_flag = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads", 9) == 0) has_threads_flag = true;
  }
  const int threads = mvdb::bench::ParseThreadsFlag(&argc, argv);
  mvdb::bench::g_threads = has_threads_flag ? threads : 4;
  if (argc > 1 && argv[1][0] != '-') {
    mvdb::bench::g_scale = std::atoi(argv[1]);
  }
  mvdb::bench::PrintFigureHeader(
      "Serving", "QPS / tail latency under concurrent load (Fig. 10/11 mix)");
  mvdb::bench::RunSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
