// Table 1 (the size table embedded in Fig. 1): cardinalities of the base
// tables, derived views, probabilistic tables and MarkoViews.
//
// The paper's real-DBLP numbers (1M authors): Author 1M, Wrote 4.5M,
// Pub 1.7M, HomePage 18.7K, Student^p 6M, Advisor^p .25M, Affiliation^p
// .27M, V1 .25M, V2 .38M, V3 1.5K. Our synthetic generator reproduces the
// proportional shape at configurable scale.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

void PrintDatasetTable(int num_authors) {
  dblp::DblpConfig cfg;
  cfg.num_authors = num_authors;
  dblp::DblpStats stats;
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(cfg, &stats));
  Die(mvdb->Translate());
  dblp::CollectViewStats(*mvdb, &stats);
  std::printf("\n-- scale: %d authors --\n", num_authors);
  std::printf("%-22s %10s\n", "table", "# tuples");
  std::printf("%-22s %10zu\n", "Author(aid,name)", stats.authors);
  std::printf("%-22s %10zu\n", "Wrote(aid,pid)", stats.wrote);
  std::printf("%-22s %10zu\n", "Pub(pid,title,year)", stats.pubs);
  std::printf("%-22s %10zu\n", "HomePage(aid,url)", stats.homepages);
  std::printf("%-22s %10zu\n", "FirstPub(aid,year)", stats.first_pub);
  std::printf("%-22s %10zu\n", "DBLPAffiliation", stats.dblp_affiliation);
  std::printf("%-22s %10zu\n", "Student^p", stats.student);
  std::printf("%-22s %10zu\n", "Advisor^p", stats.advisor);
  std::printf("%-22s %10zu\n", "Affiliation^p", stats.affiliation);
  std::printf("%-22s %10zu\n", "V1 (advisor corr.)", stats.v1);
  std::printf("%-22s %10zu\n", "V2 (denial)", stats.v2);
  std::printf("%-22s %10zu\n", "V3 (affiliation)", stats.v3);
}

void BM_GenerateDblp(benchmark::State& state) {
  dblp::DblpConfig cfg;
  cfg.num_authors = static_cast<int>(state.range(0));
  for (auto _ : state) {
    dblp::DblpStats stats;
    auto mvdb = dblp::BuildDblpMvdb(cfg, &stats);
    benchmark::DoNotOptimize(mvdb);
  }
  state.counters["authors"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GenerateDblp)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_TranslateViews(benchmark::State& state) {
  dblp::DblpConfig cfg;
  cfg.num_authors = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto mvdb = Unwrap(dblp::BuildDblpMvdb(cfg, nullptr));
    state.ResumeTiming();
    Die(mvdb->Translate());
  }
}
BENCHMARK(BM_TranslateViews)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::PrintFigureHeader(
      "Table 1 (Fig. 1)", "dataset and MarkoView cardinalities");
  for (int scale : {1000, 10000, 50000}) {
    mvdb::bench::PrintDatasetTable(scale);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
