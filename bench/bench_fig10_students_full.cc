// Figure 10: scalability to the full dataset — 10 queries of the form
// "find all students of advisor X" against the full-scale synthetic DBLP,
// evaluated with CC-MVIntersect over the precompiled MV-index.
//
// Paper shape: every query under 5 ms, many under 1 ms (their full DBLP is
// 1M authors with a 1.38M-node index; our default full scale is 50K
// authors — pass a different scale as argv[1]).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

int g_scale = 50000;
int g_threads = 1;

void RunTenQueries() {
  dblp::DblpConfig cfg;
  cfg.num_authors = g_scale;
  cfg.include_affiliation = true;

  CompileOptions copts;
  copts.num_threads = g_threads;
  copts.reserve_hint = static_cast<size_t>(g_scale) * 16;
  Timer build_timer;
  Workload w = MakeWorkload(cfg, copts);
  const double build_s = build_timer.Seconds();
  std::printf("full scale: %d authors, MV-index %zu nodes / %zu blocks, "
              "compiled in %.1f s (%d threads)\n\n",
              g_scale, w.engine->index().size(), w.engine->index().blocks().size(),
              build_s, g_threads);
  JsonLine("fig10_build")
      .Field("authors", g_scale)
      .Field("threads", g_threads)
      .Field("build_s", build_s)
      .Field("flat_nodes", w.engine->index().size())
      .Field("blocks", w.engine->index().blocks().size())
      .Emit();

  // All 10 queries share one shape: q1 plans it, q2..q10 reuse the cached
  // template and skip planning entirely.
  w.engine->EnablePlanCache(64);

  const Table* advisor = w.mvdb->db().Find("Advisor");
  std::printf("%-6s %-14s %10s %10s  %s\n", "query", "advisor", "answers",
              "time(ms)", "plan");
  const size_t stride = std::max<size_t>(1, advisor->size() / 10);
  int qno = 0;
  for (size_t r = 0; r < advisor->size() && qno < 10; r += stride, ++qno) {
    const Value senior = advisor->At(static_cast<RowId>(r), 1);
    const std::string name = dblp::AuthorName(static_cast<int>(senior));
    Ucq q = dblp::StudentsOfAdvisorQuery(w.mvdb.get(), name);
    const PlanCacheStats before = w.engine->plan_cache_stats();
    Timer t;
    auto answers = w.engine->Query(q, Backend::kMvIndexCC);
    const double ms = t.Millis();
    Die(answers.status());
    const bool hit = w.engine->plan_cache_stats().hits > before.hits;
    std::printf("q%-5d %-14s %10zu %10.3f  %s\n", qno + 1, name.c_str(),
                answers->size(), ms, hit ? "cached" : "planned");
  }
  const PlanCacheStats pc = w.engine->plan_cache_stats();
  std::printf("\nplan cache: %llu hits / %llu misses (hit rate %.0f%%)\n",
              static_cast<unsigned long long>(pc.hits),
              static_cast<unsigned long long>(pc.misses), 100.0 * pc.HitRate());
  JsonLine("fig10_plan_cache")
      .Field("authors", g_scale)
      .Field("cache_hits", static_cast<size_t>(pc.hits))
      .Field("cache_misses", static_cast<size_t>(pc.misses))
      .Field("hit_rate", pc.HitRate())
      .Emit();
}

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::g_threads = mvdb::bench::ParseThreadsFlag(&argc, argv);
  if (argc > 1 && argv[1][0] != '-') {
    mvdb::bench::g_scale = std::atoi(argv[1]);
  }
  mvdb::bench::PrintFigureHeader(
      "Figure 10", "querying students of an advisor, full dataset");
  mvdb::bench::RunTenQueries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
