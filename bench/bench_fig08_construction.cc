// Figure 8: OBDD construction time — native-CUDD-style synthesis vs the
// MarkoView structure-driven construction (concatenation), on the V2
// feature, sweeping aid1 1000..10000.
//
// Both constructions run inside the same hash-consed manager with the same
// variable order, so they provably return the *same* OBDD (the paper
// verified size equality); only the work differs: synthesis pays a
// pairwise apply per clause (O(|G1||G2|) steps), concatenation redirects
// sinks. Paper shape: two orders of magnitude apart, both roughly linear.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mvindex/mv_index.h"
#include "query/parser.h"

namespace mvdb {
namespace bench {
namespace {

int g_threads = 1;

Ucq V2Constraint(Database* db) {
  return Unwrap(ParseUcq(
      "W :- Advisor(a,b), Advisor(a,c), b != c.", &db->dict()));
}

void PrintSeries() {
  std::printf("%-12s %16s %16s %16s %12s %14s\n", "aid1 domain",
              "cudd-synth(s)", "mv-construct(s)", "mv-sharded(s)", "same obdd",
              "apply steps");
  for (int n : AidDomainSweep()) {
    auto mvdb = Unwrap(dblp::BuildDblpMvdb(SweepConfig(n), nullptr));
    Database& db = mvdb->db();
    Ucq w = V2Constraint(&db);

    // CUDD-style: compute the lineage, then synthesize clause by clause.
    BddManager synth_mgr(BuildDefaultOrder(db));
    const Lineage lineage = Unwrap(EvalBoolean(db, w));
    Timer synth_timer;
    const NodeId synth = synth_mgr.FromLineageSynthesis(lineage);
    const double synth_s = synth_timer.Seconds();
    const size_t apply_steps = synth_mgr.apply_steps();

    // MarkoView construction: separator decomposition + concatenation.
    BddManager con_mgr(BuildDefaultOrder(db));
    ConObddBuilder builder(db, &con_mgr);
    Timer con_timer;
    const NodeId con = Unwrap(builder.Build(w));
    const double con_s = con_timer.Seconds();

    // The same constraint through the sharded block pipeline (partition,
    // per-shard compile, stitched flat emission) — the full offline path of
    // the MV-index under --threads.
    BddManager mv_mgr(BuildDefaultOrder(db));
    const auto probs = db.VarProbs();
    MvIndexBuildOptions opts;
    opts.num_threads = g_threads;
    Timer mv_timer;
    auto index = Unwrap(MvIndex::Build(db, w, &mv_mgr, probs, opts));
    const double mv_s = mv_timer.Seconds();

    const bool same_size =
        synth_mgr.CountNodes(synth) == con_mgr.CountNodes(con) &&
        con_mgr.CountNodes(con) == index->size() + 2;  // + the two sinks
    std::printf("%-12d %16.4f %16.4f %16.4f %12s %14zu\n", n, synth_s, con_s,
                mv_s, same_size ? "yes" : "NO", apply_steps);
    JsonLine("fig08_construction")
        .Field("aid_domain", n)
        .Field("threads", g_threads)
        .Field("synthesis_s", synth_s)
        .Field("concat_s", con_s)
        .Field("sharded_s", mv_s)
        .Field("apply_steps", apply_steps)
        .Field("same_obdd", same_size ? 1 : 0)
        .Emit();
  }
}

void BM_SynthesisConstruction(benchmark::State& state) {
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(
      SweepConfig(static_cast<int>(state.range(0))), nullptr));
  Database& db = mvdb->db();
  const Lineage lineage = Unwrap(EvalBoolean(db, V2Constraint(&db)));
  for (auto _ : state) {
    BddManager mgr(BuildDefaultOrder(db));
    benchmark::DoNotOptimize(mgr.FromLineageSynthesis(lineage));
  }
}
BENCHMARK(BM_SynthesisConstruction)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_ConcatConstruction(benchmark::State& state) {
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(
      SweepConfig(static_cast<int>(state.range(0))), nullptr));
  Database& db = mvdb->db();
  Ucq w = V2Constraint(&db);
  for (auto _ : state) {
    BddManager mgr(BuildDefaultOrder(db));
    ConObddBuilder builder(db, &mgr);
    benchmark::DoNotOptimize(Unwrap(builder.Build(w)));
  }
}
BENCHMARK(BM_ConcatConstruction)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::g_threads = mvdb::bench::ParseThreadsFlag(&argc, argv);
  mvdb::bench::PrintFigureHeader(
      "Figure 8", "OBDD construction: CUDD-style synthesis vs MV concat");
  std::printf("sharded column: --threads=%d\n", mvdb::bench::g_threads);
  mvdb::bench::PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
