// Figure 6: Alchemy vs MarkoViews, query "find all students of advisor Y",
// sweeping the aid domain 1000..10000. Same series as Figure 5, converse
// query direction.

#include <benchmark/benchmark.h>

#include "bench_fig56_common.h"

namespace mvdb {
namespace bench {
namespace {

void BM_MvIndexQuery(benchmark::State& state) {
  Workload w = MakeWorkload(SweepConfig(static_cast<int>(state.range(0))));
  const AdvisorPair pair = SomeAdvisorPair(*w.mvdb);
  Ucq q = MakeFigureQuery(w.mvdb.get(), QueryDirection::kStudentsOfAdvisor, pair);
  for (auto _ : state) {
    auto result = w.engine->Query(q, Backend::kMvIndexCC);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MvIndexQuery)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::PrintFigureHeader(
      "Figure 6", "Alchemy vs MarkoViews — all students of an advisor");
  mvdb::bench::RunFigure56(mvdb::bench::QueryDirection::kStudentsOfAdvisor);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
