// Offline scaling bench (beyond the paper's figures): MV-index build time
// as a function of dataset size and compilation shards. The paper's nearest
// target is the 1M-author DBLP index (1.38M nodes, Section 5); this bench
// tracks how far the sharded pipeline pushes the build along that axis.
//
// For each (authors, threads) cell it reports wall-clock build time, the
// per-phase split (translate / order / partition / compile / stitch /
// import — the full offline pipeline including the front-end), peak shard
// manager nodes, bytes/node of both the shard node stores (open-addressed
// unique table + direct-mapped op caches) and the flat layout, the op-cache
// bytes returned by the end-of-compile ClearOpCaches shrinks, and the process peak
// RSS — and checks that every threaded build is bit-identical to the serial
// one (same block count, same node-by-node flat layout via an FNV digest,
// same extended-range P0(NOT W)). The dataset itself is generated with the
// cell's thread count, so the parity gate covers generator and partition
// parallelism too. Any MISMATCH makes the process exit non-zero.
//
// Usage: bench_build_scale [authors ...] [--threads=1,2,4] [--scale-sweep]
//                          [--no-templates] [--repeat N]
//   bench_build_scale                      # sweep {10000, 50000} x {1,2,4}
//   bench_build_scale --scale-sweep        # {10000,50000,100000,200000,500000}
//                                          # x {1,4}: the 1M-author trajectory
//   bench_build_scale 500000 --threads=4   # one large cell
//   bench_build_scale --no-templates       # classic per-block planning (the
//                                          # CompileOptions escape hatch) for
//                                          # template-on/off A-B runs
//   bench_build_scale --classic-kernels    # all four hot-path kernel
//                                          # hatches off (fused translate,
//                                          # radix order, pre-sorted
//                                          # synthesis, fast intersect) for
//                                          # PR-7 A/B runs
//   bench_build_scale --repeat 5           # build every cell 5 times; the
//                                          # table and phase split show the
//                                          # fastest run, the JSON adds
//                                          # build_s_min / build_s_median,
//                                          # and the parity gate also checks
//                                          # repeat-to-repeat determinism

#include <sys/resource.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

namespace mvdb {
namespace bench {
namespace {

struct BuildResult {
  double total_s = 0;
  MvIndexBuildStats stats;
  size_t blocks = 0;
  ScaledDouble prob_not_w;
  uint64_t layout_hash = 0;  ///< FNV-1a over the flat topology, node by node
  // Timing spread across --repeat runs of this cell (equal to total_s when
  // the cell ran once). The representative run is the fastest one.
  int repeat = 1;
  double total_min_s = 0;
  double total_median_s = 0;
};

/// Hashes the stitched layout (levels, edges, root) so parity detects any
/// node-level divergence, not just size/probability drift.
uint64_t HashLayout(const FlatObdd& flat) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](int32_t v) {
    h = (h ^ static_cast<uint32_t>(v)) * 1099511628211ULL;
  };
  mix(flat.root());
  for (FlatId u = 0; u < static_cast<FlatId>(flat.size()); ++u) {
    mix(flat.level(u));
    mix(flat.lo(u));
    mix(flat.hi(u));
  }
  return h;
}

bool g_parity_failed = false;
bool g_use_templates = true;
bool g_classic_kernels = false;
int g_repeat = 1;

/// Peak resident set of this process so far, in MiB (Linux ru_maxrss is in
/// KiB). Monotone across cells; meaningful for the largest cell of a sweep.
double PeakRssMb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

BuildResult BuildOnce(int authors, int threads) {
  dblp::DblpConfig cfg;
  cfg.num_authors = authors;
  cfg.include_affiliation = true;
  // Generate with the cell's thread count: the parity check then also
  // covers the generator's per-entity RNG streams.
  cfg.num_threads = threads;
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(cfg, nullptr));
  QueryEngine engine(mvdb.get());
  CompileOptions copts;
  copts.num_threads = threads;
  copts.use_plan_templates = g_use_templates;
  if (g_classic_kernels) {
    copts.use_fused_translate = false;
    copts.use_radix_order = false;
    copts.use_presorted_synthesis = false;
    copts.use_fast_intersect = false;
  }
  // The chain is ~14 nodes per author at this workload shape; hint the
  // shard managers so the unique tables do not rehash mid-build.
  copts.reserve_hint = static_cast<size_t>(authors) * 16;
  Timer t;
  Die(engine.Compile(copts));
  BuildResult r;
  r.total_s = t.Seconds();
  r.stats = engine.index().build_stats();
  r.blocks = engine.index().blocks().size();
  r.prob_not_w = engine.index().ProbNotWScaled();
  r.layout_hash = HashLayout(engine.index().flat());
  return r;
}

/// Builds the cell g_repeat times. Timing noise goes into min/median; the
/// returned (fastest) run supplies the stats and phase split. Repeats must
/// reproduce the serial-vs-threaded invariant run to run — any layout or
/// probability drift across repeats is nondeterminism and fails the
/// parity gate.
BuildResult BuildRepeated(int authors, int threads) {
  std::vector<BuildResult> runs;
  runs.reserve(static_cast<size_t>(g_repeat));
  for (int i = 0; i < g_repeat; ++i) runs.push_back(BuildOnce(authors, threads));
  size_t best = 0;
  std::vector<double> totals;
  totals.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    totals.push_back(runs[i].total_s);
    if (runs[i].total_s < runs[best].total_s) best = i;
    if (runs[i].layout_hash != runs[0].layout_hash ||
        runs[i].blocks != runs[0].blocks ||
        !(runs[i].prob_not_w == runs[0].prob_not_w)) {
      std::fprintf(stderr,
                   "MISMATCH: repeat %zu of authors=%d threads=%d diverged "
                   "from repeat 0\n",
                   i, authors, threads);
      g_parity_failed = true;
    }
  }
  std::sort(totals.begin(), totals.end());
  BuildResult r = runs[best];
  r.repeat = g_repeat;
  r.total_min_s = totals.front();
  r.total_median_s = totals[totals.size() / 2];  // upper median for even N
  return r;
}

void ReportCell(int authors, int threads, const BuildResult& r,
                const BuildResult* serial_ref, bool is_ref) {
  // Parity vs the serial reference is only meaningful when one was built in
  // this sweep (serial cells are the reference; threaded cells without a
  // preceding threads=1 run report "n/a" and omit the JSON field).
  const char* parity = "ref";
  if (!is_ref) {
    parity = serial_ref == nullptr ? "n/a"
             : (r.blocks == serial_ref->blocks &&
                r.stats.flat_nodes == serial_ref->stats.flat_nodes &&
                r.layout_hash == serial_ref->layout_hash &&
                r.prob_not_w == serial_ref->prob_not_w)
                 ? "ok"
                 : "MISMATCH";
    if (std::strcmp(parity, "MISMATCH") == 0) g_parity_failed = true;
  }
  const double bytes_per_node =
      r.stats.flat_nodes == 0
          ? 0.0
          : static_cast<double>(r.stats.flat_bytes) /
                static_cast<double>(r.stats.flat_nodes);
  // Construction-side footprint: shard node stores (node vectors +
  // open-addressed unique tables + op caches) per manager node at peak.
  const double mgr_bytes_per_node =
      r.stats.peak_manager_nodes == 0
          ? 0.0
          : static_cast<double>(r.stats.peak_manager_bytes) /
                static_cast<double>(r.stats.peak_manager_nodes);
  const double rss_mb = PeakRssMb();
  std::printf(
      "%-9d %-8d %9.2f %9.2f %9.2f %9.2f %9.2f %10zu %10zu %8.1f %8.1f %8.0f "
      "%8s\n",
      authors, threads, r.total_s, r.stats.translate_seconds,
      r.stats.order_seconds, r.stats.compile_seconds,
      r.stats.stitch_seconds + r.stats.import_seconds,
      r.stats.peak_manager_nodes, r.stats.flat_nodes, bytes_per_node,
      mgr_bytes_per_node, rss_mb, parity);
  if (r.repeat > 1) {
    std::printf("          repeat=%d  min=%.2fs  median=%.2fs\n", r.repeat,
                r.total_min_s, r.total_median_s);
  }
  JsonLine json("build_scale");
  json.Field("authors", authors)
      .Field("threads", threads)
      .Field("build_s", r.total_s)
      .Field("total_s", r.stats.total_seconds)
      .Field("translate_s", r.stats.translate_seconds)
      .Field("order_s", r.stats.order_seconds)
      .Field("partition_s", r.stats.partition_seconds)
      .Field("compile_s", r.stats.compile_seconds)
      .Field("stitch_s", r.stats.stitch_seconds)
      .Field("import_s", r.stats.import_seconds)
      .Field("use_templates", g_use_templates ? 1 : 0)
      .Field("classic_kernels", g_classic_kernels ? 1 : 0)
      .Field("plan_templates", r.stats.plan_templates)
      .Field("template_blocks", r.stats.template_blocks)
      .Field("template_plan_s", r.stats.template_plan_seconds)
      .Field("blocks", r.blocks)
      .Field("peak_manager_nodes", r.stats.peak_manager_nodes)
      .Field("peak_manager_bytes", r.stats.peak_manager_bytes)
      .Field("manager_bytes_per_node", mgr_bytes_per_node)
      .Field("op_cache_freed_bytes", r.stats.op_cache_freed_bytes)
      .Field("flat_nodes", r.stats.flat_nodes)
      .Field("bytes_per_node", bytes_per_node)
      .Field("peak_rss_mb", rss_mb);
  if (r.repeat > 1) {
    json.Field("repeat", r.repeat)
        .Field("build_s_min", r.total_min_s)
        .Field("build_s_median", r.total_median_s);
  }
  if (!is_ref && serial_ref != nullptr) {
    json.Field("parity", std::strcmp(parity, "ok") == 0 ? 1 : 0);
  }
  json.Emit();
}

void RunSweep(const std::vector<int>& authors_sweep,
              const std::vector<int>& threads_sweep) {
  std::printf("%-9s %-8s %9s %9s %9s %9s %9s %10s %10s %8s %8s %8s %8s\n",
              "authors", "threads", "build(s)", "translate", "order",
              "compile", "stitch", "peak nodes", "flat", "B/node", "mgrB/nd",
              "rss(MB)", "parity");
  for (int authors : authors_sweep) {
    const BuildResult* ref = nullptr;
    BuildResult serial;
    for (int threads : threads_sweep) {
      // threads passes through untouched: 1 is the serial reference, <= 0
      // means one shard per hardware thread (MvIndexBuildOptions semantics);
      // the reported thread count is the shards actually used.
      const BuildResult r = BuildRepeated(authors, threads);
      const bool is_ref = (threads == 1);
      if (is_ref) {
        serial = r;
        ref = &serial;
      }
      ReportCell(authors, r.stats.shards, r, is_ref ? nullptr : ref, is_ref);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  std::vector<int> authors;
  std::vector<int> threads;
  auto parse_thread_list = [&threads](const char* p) {
    while (*p != '\0') {
      threads.push_back(std::atoi(p));
      while (*p != '\0' && *p != ',') ++p;
      if (*p == ',') ++p;
    }
  };
  bool scale_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      parse_thread_list(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc &&
               argv[i + 1][0] != '-') {
      parse_thread_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale-sweep") == 0) {
      scale_sweep = true;
    } else if (std::strcmp(argv[i], "--no-templates") == 0) {
      mvdb::bench::g_use_templates = false;
    } else if (std::strcmp(argv[i], "--classic-kernels") == 0) {
      mvdb::bench::g_classic_kernels = true;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      mvdb::bench::g_repeat = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc &&
               argv[i + 1][0] != '-') {
      mvdb::bench::g_repeat = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-') {
      authors.push_back(std::atoi(argv[i]));
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_build_scale [authors ...] "
                   "[--threads=1,2,4] [--scale-sweep] [--no-templates] "
                   "[--classic-kernels] [--repeat N]\n",
                   argv[i]);
      return 2;
    }
  }
  if (scale_sweep) {
    // The 1M-author trajectory (ROADMAP): half-decade steps up to 500K.
    // Explicitly listed author counts take precedence over the preset.
    if (authors.empty()) {
      authors = {10000, 50000, 100000, 200000, 500000};
    } else {
      std::fprintf(stderr,
                   "note: explicit author counts given; ignoring the "
                   "--scale-sweep preset scales\n");
    }
    if (threads.empty()) threads = {1, 4};
  }
  if (authors.empty()) authors = {10000, 50000};
  if (threads.empty()) threads = {1, 2, 4};
  if (mvdb::bench::g_repeat < 1) mvdb::bench::g_repeat = 1;
  mvdb::bench::PrintFigureHeader(
      "Build scale", "sharded MV-index compilation, authors x threads");
  mvdb::bench::RunSweep(authors, threads);
  // Scripted acceptance runs gate on the exit code, not on scraping the
  // parity column.
  return mvdb::bench::g_parity_failed ? 1 : 0;
}
