// Figure 7: size of the OBDD of the V2 feature (one advisor per person) as
// the aid1 domain grows from 1000 to 10000.
//
// Paper shape: linear growth (V2 has a separator — aid1 — so the OBDD is a
// concatenation of per-advisee blocks; ~2.2K nodes at aid1 = 10000).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/parser.h"

namespace mvdb {
namespace bench {
namespace {

/// W restricted to the V2 view: the denial body itself (NV dropped).
Ucq V2Constraint(Database* db) {
  return Unwrap(ParseUcq(
      "W :- Advisor(a,b), Advisor(a,c), b != c.", &db->dict()));
}

void PrintSeries() {
  std::printf("%-12s %12s %12s %12s\n", "aid1 domain", "obdd size", "width",
              "advisor^p");
  for (int n : AidDomainSweep()) {
    auto mvdb = Unwrap(dblp::BuildDblpMvdb(SweepConfig(n), nullptr));
    Database& db = mvdb->db();
    Ucq w = V2Constraint(&db);
    BddManager mgr(BuildDefaultOrder(db));
    ConObddBuilder builder(db, &mgr);
    const NodeId f = Unwrap(builder.Build(w));
    FlatObdd flat(mgr, f, db.VarProbs());
    std::printf("%-12d %12zu %12zu %12zu\n", n, mgr.CountNodes(f),
                flat.Width(), db.Find("Advisor")->size());
  }
}

void BM_ConObddV2(benchmark::State& state) {
  auto mvdb = Unwrap(dblp::BuildDblpMvdb(
      SweepConfig(static_cast<int>(state.range(0))), nullptr));
  Database& db = mvdb->db();
  Ucq w = V2Constraint(&db);
  for (auto _ : state) {
    BddManager mgr(BuildDefaultOrder(db));
    ConObddBuilder builder(db, &mgr);
    benchmark::DoNotOptimize(Unwrap(builder.Build(w)));
  }
  state.counters["advisors"] =
      static_cast<double>(db.Find("Advisor")->size());
}
BENCHMARK(BM_ConObddV2)->Arg(1000)->Arg(5000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mvdb

int main(int argc, char** argv) {
  mvdb::bench::PrintFigureHeader("Figure 7", "OBDD size of V2 vs aid1 domain");
  mvdb::bench::PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
