// Quickstart: the paper's running Example 1 (Sections 2.5 and 3.1),
// end to end.
//
// Two probabilistic tuples R(a) and S(a) with weights w1, w2, and one
// MarkoView V(x)[w] :- R(x), S(x) correlating them. We translate the MVDB
// to its associated tuple-independent database (Definition 5), compile the
// MV-index, and evaluate queries with Eq. 5 — checking the closed-form
// answers from the paper along the way.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "core/mvdb.h"
#include "query/parser.h"

using namespace mvdb;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Value_(StatusOr<T> so) {
  Check(so.status());
  return std::move(so).value();
}

}  // namespace

int main() {
  const double w1 = 2.0, w2 = 3.0, w = 0.25;

  // --- 1. Build the MVDB ---------------------------------------------
  Mvdb db;
  Check(db.db().CreateTable("R", {"x"}, /*probabilistic=*/true).status());
  Check(db.db().CreateTable("S", {"x"}, /*probabilistic=*/true).status());
  db.db().InsertProbabilistic("R", {1}, w1);
  db.db().InsertProbabilistic("S", {1}, w2);

  // The MarkoView, in the paper's datalog notation. A weight w < 1 is a
  // negative correlation; try w = 2.5 for a positive one.
  Ucq view_def = Value_(ParseUcq("V(x) :- R(x), S(x).", &db.db().dict()));
  Check(db.AddView(MarkoView::Constant("V", std::move(view_def), w)));

  // --- 2. Translate to the associated INDB (Definition 5) --------------
  Check(db.Translate());
  std::printf("MarkoView weight w = %.3f translates to NV weight (1-w)/w = %.3f\n",
              w, db.db().var_weight(db.view_tuples()[0][0].nv_var));
  std::printf("Constraint query W:  %s\n\n", ToString(db.W()).c_str());

  // --- 3. Compile the MV-index and query (Eq. 5) -----------------------
  QueryEngine engine(&db);
  Check(engine.Compile());
  std::printf("P0(not W) = %.6f (denominator of Eq. 5)\n", engine.ProbNotW());
  std::printf("MV-index: %zu nodes in %zu block(s)\n\n", engine.index().size(),
              engine.index().blocks().size());

  struct Expected {
    const char* text;
    double value;
  };
  const double z = 1 + w1 + w2 + w * w1 * w2;
  const Expected queries[] = {
      // P(R v S) = (w1 + w2 + w w1 w2) / Z -- worked out in Section 3.1.
      {"Q :- R(x). Q :- S(x).", (w1 + w2 + w * w1 * w2) / z},
      // P(R ^ S) = w w1 w2 / Z.
      {"Q :- R(x), S(x).", w * w1 * w2 / z},
      // P(R) = (w1 + w w1 w2) / Z.
      {"Q :- R(x).", (w1 + w * w1 * w2) / z},
  };
  for (const auto& [text, expected] : queries) {
    Ucq q = Value_(ParseUcq(text, &db.db().dict()));
    const double p = Value_(engine.QueryBoolean(q, Backend::kMvIndexCC));
    std::printf("%-28s P = %.6f (closed form %.6f)\n", text, p, expected);
  }

  // --- 4. The same probabilities from the MLN semantics (Definition 4) --
  GroundMln mln = Value_(db.ToGroundMln());
  std::printf("\nMLN partition function Z = %.3f (closed form %.3f)\n",
              mln.ExactPartition(), z);
  std::printf("\nAll three agree: MarkoViews are a (restricted) MLN whose\n"
              "queries reduce exactly to a tuple-independent database.\n");
  return 0;
}
