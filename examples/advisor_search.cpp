// Advisor search on the synthetic DBLP database — the paper's running
// example (Fig. 2): "find all students advised by X".
//
// Demonstrates the full pipeline at a realistic scale: generate the DBLP
// workload with the V1/V2/V3 MarkoViews of Fig. 1, compile the MV-index
// offline, then answer name-constant queries online in microseconds, with
// every backend agreeing.
//
// Usage:  ./build/examples/advisor_search [num_authors]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "util/timer.h"

using namespace mvdb;

int main(int argc, char** argv) {
  dblp::DblpConfig cfg;
  cfg.num_authors = argc > 1 ? std::atoi(argv[1]) : 1000;

  std::printf("Generating synthetic DBLP with %d authors...\n", cfg.num_authors);
  dblp::DblpStats stats;
  auto mvdb = dblp::BuildDblpMvdb(cfg, &stats);
  if (!mvdb.ok()) {
    std::fprintf(stderr, "%s\n", mvdb.status().ToString().c_str());
    return 1;
  }
  std::printf("  Author %zu | Wrote %zu | Pub %zu | Student^p %zu | "
              "Advisor^p %zu | Affiliation^p %zu\n",
              stats.authors, stats.wrote, stats.pubs, stats.student,
              stats.advisor, stats.affiliation);

  Timer compile_timer;
  QueryEngine engine(mvdb->get());
  auto st = engine.Compile();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  dblp::CollectViewStats(**mvdb, &stats);
  std::printf("  V1 %zu tuples | V2 %zu (denial) | V3 %zu\n", stats.v1,
              stats.v2, stats.v3);
  std::printf("Compiled MV-index in %.2f s: %zu nodes, %zu blocks, "
              "W inversion-free: %s\n\n",
              compile_timer.Seconds(), engine.index().size(),
              engine.index().blocks().size(),
              engine.w_inversion_free() ? "yes" : "no");

  // Pick the three advisors with the most students.
  const Table* advisor = (*mvdb)->db().Find("Advisor");
  std::map<Value, int> num_students;
  for (size_t r = 0; r < advisor->size(); ++r) {
    ++num_students[advisor->At(static_cast<RowId>(r), 1)];
  }
  std::vector<std::pair<int, Value>> ranked;
  for (const auto& [aid, n] : num_students) ranked.push_back({n, aid});
  std::sort(ranked.rbegin(), ranked.rend());

  for (size_t i = 0; i < 3 && i < ranked.size(); ++i) {
    const std::string name = dblp::AuthorName(static_cast<int>(ranked[i].second));
    Ucq q = dblp::StudentsOfAdvisorQuery(mvdb->get(), name);
    Timer t;
    auto answers = engine.Query(q, Backend::kMvIndexCC);
    const double ms = t.Millis();
    if (!answers.ok()) {
      std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
      return 1;
    }
    std::printf("Students of %s (%zu answers, %.3f ms):\n", name.c_str(),
                answers->size(), ms);
    for (const auto& a : *answers) {
      std::printf("  %-12s P = %.4f\n",
                  dblp::AuthorName(static_cast<int>(a.head[0])).c_str(), a.prob);
    }
  }

  // Show the correlation at work: the V2 denial view makes two advisor
  // claims for the same student compete.
  std::printf("\nNote: probabilities reflect the MarkoViews — V1 boosts "
              "pairs with many co-publications,\nV2 (a hard constraint) "
              "suppresses students that would otherwise have two advisors.\n");
  return 0;
}
