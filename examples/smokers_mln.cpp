// The classic "smokers" Markov Logic Network, expressed with MarkoViews.
//
// MLN folklore uses the feature  Friends(x,y) ^ Smokes(x) => Smokes(y)  to
// model peer pressure. As Section 2.5 discusses, MarkoViews express
// positive UCQ features; the peer-pressure effect is captured by the view
//
//     Peer(x,y)[w] :- Friends(x,y), Smokes(x), Smokes(y).   (w > 1)
//
// which rewards worlds where friends smoke *together*. This example builds
// the network, answers marginal queries exactly through the MVDB engine,
// and cross-checks them against brute-force MLN enumeration and MC-SAT —
// three semantics, one answer.
//
// Usage:  ./build/examples/smokers_mln

#include <cstdio>

#include "core/engine.h"
#include "mln/mln.h"
#include "query/eval.h"
#include "query/parser.h"

using namespace mvdb;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // People: 1=Anna, 2=Bob, 3=Carol, 4=Dave. Anna-Bob and Bob-Carol are
  // friends; Dave is a loner. Everyone smokes with prior odds 1 (p = 0.5),
  // except Anna, a likely smoker (odds 4).
  Mvdb db;
  Check(db.db().CreateTable("Friends", {"x", "y"}, false).status());
  Check(db.db().CreateTable("Smokes", {"x"}, true).status());
  db.db().InsertDeterministic("Friends", {1, 2});
  db.db().InsertDeterministic("Friends", {2, 3});
  db.db().InsertProbabilistic("Smokes", {1}, 4.0);
  db.db().InsertProbabilistic("Smokes", {2}, 1.0);
  db.db().InsertProbabilistic("Smokes", {3}, 1.0);
  db.db().InsertProbabilistic("Smokes", {4}, 1.0);

  // Peer pressure: weight 3 rewards co-smoking friend pairs.
  Ucq peer = *ParseUcq("Peer(x,y) :- Friends(x,y), Smokes(x), Smokes(y).",
                       &db.db().dict());
  Check(db.AddView(MarkoView::Constant("Peer", std::move(peer), 3.0)));

  QueryEngine engine(&db);
  Check(engine.Compile());
  GroundMln mln = std::move(db.ToGroundMln()).value();
  SamplerOptions opts;
  opts.num_samples = 40000;
  McSat mcsat(mln, opts);

  const char* names[] = {"", "Anna", "Bob", "Carol", "Dave"};
  std::printf("%-8s %12s %14s %10s\n", "person", "P(smokes)", "brute-force",
              "MC-SAT");
  for (int person = 1; person <= 4; ++person) {
    char text[64];
    std::snprintf(text, sizeof(text), "Q :- Smokes(%d).", person);
    Ucq q = *ParseUcq(text, &db.db().dict());
    const double exact = std::move(engine.QueryBoolean(q)).value();
    const Lineage lin = std::move(EvalBoolean(db.db(), q)).value();
    const double enumerated = std::move(mln.ExactQueryProb(lin)).value();
    const double sampled = std::move(mcsat.EstimateQueryProb(lin)).value();
    std::printf("%-8s %12.4f %14.4f %10.4f\n", names[person], exact,
                enumerated, sampled);
  }

  // Conditional flavor: joint smoking of friends vs strangers.
  Ucq both_friends = *ParseUcq("Q :- Smokes(1), Smokes(2).", &db.db().dict());
  Ucq both_strangers = *ParseUcq("Q :- Smokes(1), Smokes(4).", &db.db().dict());
  std::printf("\nP(Anna & Bob smoke)  = %.4f   (friends: positively correlated)\n",
              std::move(engine.QueryBoolean(both_friends)).value());
  std::printf("P(Anna & Dave smoke) = %.4f   (strangers: independent)\n",
              std::move(engine.QueryBoolean(both_strangers)).value());
  std::printf("\nBob's smoking probability exceeds Carol's and Dave's: he has\n"
              "two smoking friends pulling him up — peer pressure, inferred\n"
              "exactly by safe-plan-grade machinery, not sampling.\n");
  return 0;
}
