// Affiliation analysis — the paper's V3 scenario (Fig. 1 / Fig. 11):
// inferring author affiliations from recent co-publication, with the
// MarkoView "if two people published a lot together recently, their
// affiliations are very likely the same" adding positive correlations.
//
// The example contrasts the marginal probability of an Affiliation tuple
// *with* and *without* the MarkoViews, showing how V3 lifts the
// probability of co-affiliation for prolific pairs.
//
// Usage:  ./build/examples/affiliation_analysis [num_authors]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "query/parser.h"
#include "util/timer.h"

using namespace mvdb;

int main(int argc, char** argv) {
  dblp::DblpConfig cfg;
  cfg.num_authors = argc > 1 ? std::atoi(argv[1]) : 800;
  cfg.num_prolific_pairs = 4;

  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  if (!mvdb.ok()) {
    std::fprintf(stderr, "%s\n", mvdb.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine(mvdb->get());
  if (auto st = engine.Compile(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  Database& db = (*mvdb)->db();

  // All authors with inferred affiliations.
  const Table* aff = db.Find("Affiliation");
  if (aff->size() == 0) {
    std::printf("no inferred affiliations generated; increase num_authors\n");
    return 0;
  }

  std::printf("%zu inferred Affiliation tuples; querying each author's "
              "affiliation distribution:\n\n", aff->size());
  std::set<Value> authors;
  for (size_t r = 0; r < aff->size(); ++r) {
    authors.insert(aff->At(static_cast<RowId>(r), 0));
  }

  size_t shown = 0;
  for (Value aid : authors) {
    if (++shown > 6) break;
    const std::string name = dblp::AuthorName(static_cast<int>(aid));
    Ucq q = dblp::AffiliationOfAuthorQuery(mvdb->get(), name);
    Timer t;
    auto with_views = engine.Query(q, Backend::kMvIndexCC);
    const double ms = t.Millis();
    if (!with_views.ok()) {
      std::fprintf(stderr, "%s\n", with_views.status().ToString().c_str());
      return 1;
    }
    std::printf("%s (%.3f ms):\n", name.c_str(), ms);
    for (const auto& a : *with_views) {
      // The prior (tuple-independent) marginal, for contrast: the tuple's
      // own weight without any MarkoView correlations.
      RowId row = 0;
      double prior = 0;
      const std::vector<Value> key = {aid, a.head[0]};
      if (aff->FindRow(key, &row)) {
        prior = WeightToProb(db.var_weight(aff->var(row)));
      }
      std::printf("  %-24s P = %.4f (independent prior %.4f)\n",
                  db.dict().Lookup(a.head[0]).c_str(), a.prob, prior);
    }
  }

  std::printf(
      "\nFor members of prolific pairs, V3's positive correlation pushes the\n"
      "co-affiliation probability above the independent prior; for everyone\n"
      "else the MarkoViews leave the marginal (nearly) untouched.\n");
  return 0;
}
