#include "mln/map_inference.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace mvdb {

double LogWorldWeight(const GroundMln& mln, const std::vector<bool>& world) {
  double log_w = 0.0;
  const auto& tw = mln.tuple_weights();
  for (size_t v = 0; v < mln.num_vars(); ++v) {
    if (world[v]) {
      if (tw[v] == 0.0) return -HUGE_VAL;
      if (tw[v] != kCertainWeight) log_w += std::log(tw[v]);
    } else if (tw[v] == kCertainWeight) {
      return -HUGE_VAL;
    }
  }
  for (const MlnFeature& f : mln.features()) {
    const bool sat = f.formula.Eval(world);
    if (sat) {
      if (f.weight == 0.0) return -HUGE_VAL;
      if (f.weight != kCertainWeight) log_w += std::log(f.weight);
    } else if (f.weight == kCertainWeight) {
      return -HUGE_VAL;
    }
  }
  return log_w;
}

StatusOr<MapResult> ExactMap(const GroundMln& mln) {
  MVDB_CHECK_LE(mln.num_vars(), 24u) << "exact MAP limited to 24 variables";
  const uint64_t n = uint64_t{1} << mln.num_vars();
  MapResult best;
  best.log_weight = -HUGE_VAL;
  std::vector<bool> world(mln.num_vars(), false);
  for (uint64_t mask = 0; mask < n; ++mask) {
    for (size_t v = 0; v < mln.num_vars(); ++v) world[v] = (mask >> v) & 1;
    const double lw = LogWorldWeight(mln, world);
    if (lw > best.log_weight) {
      best.log_weight = lw;
      best.world = world;
    }
  }
  if (best.log_weight == -HUGE_VAL) {
    return Status::Internal("no possible world: hard constraints contradict");
  }
  return best;
}

namespace {

/// Penalty of a world: sum over dissatisfied "preferences". Each feature
/// prefers satisfaction when weight > 1 (penalty ln w if violated) and
/// dissatisfaction when weight < 1 (penalty -ln w = ln 1/w if satisfied).
/// Hard features (0 / infinity) get a large constant penalty.
class Objective {
 public:
  static constexpr double kHardPenalty = 1e9;

  explicit Objective(const GroundMln& mln) : mln_(mln) {}

  double Penalty(const std::vector<bool>& world) const {
    double penalty = 0.0;
    const auto& tw = mln_.tuple_weights();
    for (size_t v = 0; v < mln_.num_vars(); ++v) {
      penalty += VarPenalty(tw[v], world[v]);
    }
    for (const MlnFeature& f : mln_.features()) {
      penalty += FeaturePenalty(f, f.formula.Eval(world));
    }
    return penalty;
  }

  static double VarPenalty(double w, bool value) {
    if (w == kCertainWeight) return value ? 0.0 : kHardPenalty;
    if (w == 0.0) return value ? kHardPenalty : 0.0;
    const double lw = std::log(w);
    if (lw > 0) return value ? 0.0 : lw;    // prefers true
    if (lw < 0) return value ? -lw : 0.0;   // prefers false
    return 0.0;
  }

  static double FeaturePenalty(const MlnFeature& f, bool sat) {
    if (f.weight == kCertainWeight) return sat ? 0.0 : kHardPenalty;
    if (f.weight == 0.0) return sat ? kHardPenalty : 0.0;
    const double lw = std::log(f.weight);
    if (lw > 0) return sat ? 0.0 : lw;
    if (lw < 0) return sat ? -lw : 0.0;
    return 0.0;
  }

 private:
  const GroundMln& mln_;
};

}  // namespace

StatusOr<MapResult> MaxWalkSat(const GroundMln& mln,
                               const MaxWalkSatOptions& options) {
  if (mln.num_vars() == 0) {
    return MapResult{{}, 0.0};
  }
  Rng rng(options.seed);
  Objective objective(mln);

  // Per-variable feature index for incremental penalty deltas.
  std::vector<std::vector<size_t>> features_of_var(mln.num_vars());
  const auto& features = mln.features();
  for (size_t i = 0; i < features.size(); ++i) {
    for (VarId v : features[i].formula.Vars()) {
      features_of_var[static_cast<size_t>(v)].push_back(i);
    }
  }
  auto flip_delta = [&](std::vector<bool>* world, VarId v) {
    double before = Objective::VarPenalty(mln.tuple_weights()[static_cast<size_t>(v)],
                                          (*world)[static_cast<size_t>(v)]);
    for (size_t i : features_of_var[static_cast<size_t>(v)]) {
      before += Objective::FeaturePenalty(features[i], features[i].formula.Eval(*world));
    }
    (*world)[static_cast<size_t>(v)] = !(*world)[static_cast<size_t>(v)];
    double after = Objective::VarPenalty(mln.tuple_weights()[static_cast<size_t>(v)],
                                         (*world)[static_cast<size_t>(v)]);
    for (size_t i : features_of_var[static_cast<size_t>(v)]) {
      after += Objective::FeaturePenalty(features[i], features[i].formula.Eval(*world));
    }
    (*world)[static_cast<size_t>(v)] = !(*world)[static_cast<size_t>(v)];
    return after - before;
  };

  MapResult best;
  best.log_weight = -HUGE_VAL;
  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<bool> world(mln.num_vars());
    for (size_t v = 0; v < world.size(); ++v) world[v] = rng.Chance(0.5);
    double penalty = objective.Penalty(world);
    double best_penalty = penalty;
    std::vector<bool> best_world = world;
    const int flips = options.max_flips / options.restarts;
    for (int flip = 0; flip < flips; ++flip) {
      VarId v;
      if (rng.Uniform() < options.noise) {
        v = static_cast<VarId>(rng.Below(mln.num_vars()));
      } else {
        // Greedy among a small random sample of variables.
        double best_delta = HUGE_VAL;
        v = static_cast<VarId>(rng.Below(mln.num_vars()));
        for (int s = 0; s < 8; ++s) {
          const VarId cand = static_cast<VarId>(rng.Below(mln.num_vars()));
          const double d = flip_delta(&world, cand);
          if (d < best_delta) {
            best_delta = d;
            v = cand;
          }
        }
      }
      penalty += flip_delta(&world, v);
      world[static_cast<size_t>(v)] = !world[static_cast<size_t>(v)];
      if (penalty < best_penalty) {
        best_penalty = penalty;
        best_world = world;
        if (best_penalty == 0.0) break;  // all preferences satisfied
      }
    }
    const double lw = LogWorldWeight(mln, best_world);
    if (lw > best.log_weight) {
      best.log_weight = lw;
      best.world = std::move(best_world);
    }
  }
  if (best.log_weight == -HUGE_VAL) {
    return Status::Internal(
        "MaxWalkSAT found no world satisfying the hard constraints");
  }
  return best;
}

}  // namespace mvdb
