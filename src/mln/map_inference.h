// Copyright 2026 The MarkoView Authors.
//
// MAP inference for ground MLNs: the most likely world arg max_I Phi(I)
// (Section 2.3 distinguishes MAP from marginal inference; the paper focuses
// on the latter but notes "our solutions easily generalize to solve the MAP
// inference problem as well"). Two solvers:
//
//   * ExactMap         — exhaustive enumeration (<= 24 variables), the test
//                        oracle;
//   * MaxWalkSat       — the standard local-search MAP solver (Kautz,
//                        Selman & Jiang), minimizing the sum of violated
//                        feature penalties with hard constraints treated as
//                        infinitely heavy.
//
// Weights are multiplicative (odds), as everywhere in this repository; the
// optimization objective is the log-weight sum.

#ifndef MVDB_MLN_MAP_INFERENCE_H_
#define MVDB_MLN_MAP_INFERENCE_H_

#include <vector>

#include "mln/mln.h"
#include "util/status.h"

namespace mvdb {

/// A MAP solution: the world and its log weight log Phi(I).
struct MapResult {
  std::vector<bool> world;
  double log_weight;
};

/// Exhaustive MAP; CHECK-fails beyond 24 variables. Internal error when no
/// world has positive weight (contradictory hard constraints).
StatusOr<MapResult> ExactMap(const GroundMln& mln);

/// Log of Phi(I) for one world; -infinity when a hard constraint is
/// violated.
double LogWorldWeight(const GroundMln& mln, const std::vector<bool>& world);

/// MaxWalkSAT options.
struct MaxWalkSatOptions {
  int max_flips = 100000;
  int restarts = 3;
  double noise = 0.2;     ///< probability of a random (non-greedy) move
  uint64_t seed = 99;
};

/// Local-search MAP. Returns the best world found across restarts; with
/// contradictory hard constraints returns Internal.
StatusOr<MapResult> MaxWalkSat(const GroundMln& mln,
                               const MaxWalkSatOptions& options);

}  // namespace mvdb

#endif  // MVDB_MLN_MAP_INFERENCE_H_
