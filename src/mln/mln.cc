#include "mln/mln.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace mvdb {

GroundMln::GroundMln(size_t num_vars, std::vector<double> tuple_weights)
    : num_vars_(num_vars), tuple_weights_(std::move(tuple_weights)) {
  MVDB_CHECK_EQ(num_vars_, tuple_weights_.size());
}

void GroundMln::AddFeature(Lineage formula, double weight) {
  MVDB_CHECK_GE(weight, 0.0) << "MLN feature weights are non-negative odds";
  features_.push_back(MlnFeature{std::move(formula), weight});
}

double GroundMln::WorldWeight(const std::vector<bool>& world) const {
  double w = 1.0;
  for (size_t v = 0; v < num_vars_; ++v) {
    const double tw = tuple_weights_[v];
    if (world[v]) {
      if (tw == 0.0) return 0.0;  // impossible tuple present
      if (tw == kCertainWeight) continue;
      w *= tw;
    } else if (tw == kCertainWeight) {
      return 0.0;  // certain tuple absent
    }
  }
  for (const MlnFeature& f : features_) {
    const bool sat = f.formula.Eval(world);
    if (!sat) {
      if (f.weight == kCertainWeight) return 0.0;  // hard feature violated
      continue;
    }
    if (f.weight == 0.0) return 0.0;  // denial feature satisfied
    if (f.weight != kCertainWeight) w *= f.weight;
  }
  return w;
}

double GroundMln::ExactPartition() const {
  MVDB_CHECK_LE(num_vars_, 24u) << "exact MLN inference limited to 24 variables";
  const uint64_t n = uint64_t{1} << num_vars_;
  std::vector<bool> world(num_vars_, false);
  double z = 0.0;
  for (uint64_t mask = 0; mask < n; ++mask) {
    for (size_t v = 0; v < num_vars_; ++v) world[v] = (mask >> v) & 1;
    z += WorldWeight(world);
  }
  return z;
}

StatusOr<double> GroundMln::ExactQueryProb(const Lineage& query) const {
  MVDB_CHECK_LE(num_vars_, 24u) << "exact MLN inference limited to 24 variables";
  const uint64_t n = uint64_t{1} << num_vars_;
  std::vector<bool> world(num_vars_, false);
  double z = 0.0;
  double phi_q = 0.0;
  for (uint64_t mask = 0; mask < n; ++mask) {
    for (size_t v = 0; v < num_vars_; ++v) world[v] = (mask >> v) & 1;
    const double w = WorldWeight(world);
    z += w;
    if (query.Eval(world)) phi_q += w;
  }
  if (z == 0.0) {
    return Status::Internal("partition function is zero: no possible world");
  }
  return phi_q / z;
}

// ---------------------------------------------------------------------------
// MC-SAT
// ---------------------------------------------------------------------------

McSat::McSat(const GroundMln& mln, const SamplerOptions& opts)
    : mln_(mln), opts_(opts), rng_(opts.seed) {
  // Split features into hard constraints and soft slice candidates. A soft
  // feature with weight w > 1 (log-weight ln w > 0) rewards satisfaction:
  // when satisfied, MC-SAT keeps it with probability 1 - e^{-ln w} = 1-1/w.
  // A weight w < 1 is equivalent to the negated feature with weight 1/w.
  for (const MlnFeature& f : mln_.features()) {
    if (f.weight == kCertainWeight) {
      hard_.push_back(Constraint{&f.formula, true});
    } else if (f.weight == 0.0) {
      hard_.push_back(Constraint{&f.formula, false});
    } else if (f.weight > 1.0) {
      soft_.push_back(SoftSlice{&f.formula, true, 1.0 - 1.0 / f.weight});
    } else if (f.weight < 1.0) {
      soft_.push_back(SoftSlice{&f.formula, false, 1.0 - f.weight});
    }
    // weight == 1: indifferent, never constrains.
  }
  const auto& tw = mln_.tuple_weights();
  for (size_t v = 0; v < tw.size(); ++v) {
    const VarId var = static_cast<VarId>(v);
    if (tw[v] == kCertainWeight) {
      hard_vars_.push_back({var, true});
    } else if (tw[v] == 0.0) {
      hard_vars_.push_back({var, false});
    } else if (tw[v] > 1.0) {
      soft_vars_.push_back(SoftVar{var, true, 1.0 - 1.0 / tw[v]});
    } else if (tw[v] < 1.0) {
      soft_vars_.push_back(SoftVar{var, false, 1.0 - tw[v]});
    }
  }
}

bool McSat::Satisfied(const Constraint& c, const std::vector<bool>& x) const {
  return c.formula->Eval(x) == c.must_hold;
}

bool McSat::SampleSat(const std::vector<Constraint>& constraints,
                      std::vector<bool>* x) {
  // Pin hard variables first; they are never flipped.
  std::vector<bool> pinned(mln_.num_vars(), false);
  for (const auto& [v, val] : hard_vars_) {
    (*x)[static_cast<size_t>(v)] = val;
    pinned[static_cast<size_t>(v)] = true;
  }

  // Incremental WalkSAT state: per-variable constraint index, plus the set
  // of unsatisfied constraints with O(1) insert/remove (swap-with-last).
  std::unordered_map<VarId, std::vector<size_t>> constraints_of_var;
  for (size_t i = 0; i < constraints.size(); ++i) {
    for (VarId v : constraints[i].formula->Vars()) {
      constraints_of_var[v].push_back(i);
    }
  }
  std::vector<size_t> unsat;                        // indices of violated
  std::vector<int> pos(constraints.size(), -1);     // position in `unsat`
  auto set_state = [&](size_t i, bool sat) {
    if (!sat && pos[i] < 0) {
      pos[i] = static_cast<int>(unsat.size());
      unsat.push_back(i);
    } else if (sat && pos[i] >= 0) {
      const size_t last = unsat.back();
      unsat[static_cast<size_t>(pos[i])] = last;
      pos[last] = pos[i];
      unsat.pop_back();
      pos[i] = -1;
    }
  };
  for (size_t i = 0; i < constraints.size(); ++i) {
    set_state(i, Satisfied(constraints[i], *x));
  }
  auto flip_var = [&](VarId v) {
    (*x)[static_cast<size_t>(v)] = !(*x)[static_cast<size_t>(v)];
    auto it = constraints_of_var.find(v);
    if (it == constraints_of_var.end()) return;
    for (size_t i : it->second) set_state(i, Satisfied(constraints[i], *x));
  };

  for (int flip = 0; flip < opts_.sample_sat_max_flips; ++flip) {
    if (unsat.empty()) return true;
    ++total_flips_;
    const Constraint& con = constraints[unsat[rng_.Below(unsat.size())]];
    std::vector<VarId> vars = con.formula->Vars();
    std::erase_if(vars, [&](VarId v) { return pinned[static_cast<size_t>(v)]; });
    if (vars.empty()) return false;  // hard conflict on pinned variables
    if (rng_.Uniform() < opts_.walk_prob) {
      flip_var(vars[rng_.Below(vars.size())]);
    } else {
      // Greedy move: flip the variable minimizing the violation count,
      // evaluated incrementally (flip, measure, flip back).
      size_t best_cost = SIZE_MAX;
      VarId best_var = vars[0];
      for (VarId v : vars) {
        flip_var(v);
        const size_t c = unsat.size();
        flip_var(v);
        if (c < best_cost) {
          best_cost = c;
          best_var = v;
        }
      }
      flip_var(best_var);
    }
  }
  return unsat.empty();
}

bool McSat::Step(std::vector<bool>* x) {
  // Build the slice: all hard constraints plus each satisfied soft feature
  // with its inclusion probability (Poon & Domingos 2006).
  std::vector<Constraint> slice = hard_;
  for (const SoftSlice& s : soft_) {
    if (s.formula->Eval(*x) == s.must_hold && rng_.Uniform() < s.include_prob) {
      slice.push_back(Constraint{s.formula, s.must_hold});
    }
  }
  // Single-variable soft features join the slice as pinned-value singleton
  // constraints, realized by sampling a required value.
  std::vector<std::pair<VarId, bool>> var_pins;
  for (const SoftVar& s : soft_vars_) {
    if ((*x)[static_cast<size_t>(s.var)] == s.must_value &&
        rng_.Uniform() < s.include_prob) {
      var_pins.push_back({s.var, s.must_value});
    }
  }
  // Start SampleSAT from a random state (near-uniform slice sampling).
  std::vector<bool> fresh(mln_.num_vars());
  for (size_t v = 0; v < fresh.size(); ++v) fresh[v] = rng_.Chance(0.5);
  for (const auto& [v, val] : var_pins) fresh[static_cast<size_t>(v)] = val;
  // Represent the var pins as constraints via temporary singleton lineages.
  std::vector<Lineage> pin_storage;
  pin_storage.reserve(var_pins.size());
  std::vector<Constraint> all = slice;
  for (const auto& [v, val] : var_pins) {
    Lineage single;
    single.AddClause({v});
    pin_storage.push_back(std::move(single));
    all.push_back(Constraint{&pin_storage.back(), val});
  }
  if (!SampleSat(all, &fresh)) return false;
  *x = std::move(fresh);
  return true;
}

StatusOr<double> McSat::EstimateQueryProb(const Lineage& query) {
  std::vector<bool> x(mln_.num_vars());
  for (size_t v = 0; v < x.size(); ++v) x[v] = rng_.Chance(0.5);
  // Find an initial state satisfying the hard constraints.
  if (!SampleSat(hard_, &x)) {
    return Status::Internal("MC-SAT: no state satisfying hard constraints found");
  }
  size_t hits = 0;
  size_t kept = 0;
  for (int i = 0; i < opts_.burn_in + opts_.num_samples; ++i) {
    if (!Step(&x)) continue;  // resampling failed; keep previous state
    if (i < opts_.burn_in) continue;
    ++kept;
    if (query.Eval(x)) ++hits;
  }
  if (kept == 0) return Status::Internal("MC-SAT produced no samples");
  return static_cast<double>(hits) / static_cast<double>(kept);
}

StatusOr<std::vector<double>> McSat::EstimateMarginals() {
  std::vector<bool> x(mln_.num_vars());
  for (size_t v = 0; v < x.size(); ++v) x[v] = rng_.Chance(0.5);
  if (!SampleSat(hard_, &x)) {
    return Status::Internal("MC-SAT: no state satisfying hard constraints found");
  }
  std::vector<double> counts(mln_.num_vars(), 0.0);
  size_t kept = 0;
  for (int i = 0; i < opts_.burn_in + opts_.num_samples; ++i) {
    if (!Step(&x)) continue;
    if (i < opts_.burn_in) continue;
    ++kept;
    for (size_t v = 0; v < x.size(); ++v) counts[v] += x[v] ? 1.0 : 0.0;
  }
  if (kept == 0) return Status::Internal("MC-SAT produced no samples");
  for (double& c : counts) c /= static_cast<double>(kept);
  return counts;
}

// ---------------------------------------------------------------------------
// Gibbs
// ---------------------------------------------------------------------------

GibbsSampler::GibbsSampler(const GroundMln& mln, const SamplerOptions& opts)
    : mln_(mln), opts_(opts), rng_(opts.seed) {
  features_of_var_.resize(mln_.num_vars());
  const auto& features = mln_.features();
  for (size_t i = 0; i < features.size(); ++i) {
    for (VarId v : features[i].formula.Vars()) {
      features_of_var_[static_cast<size_t>(v)].push_back(i);
    }
  }
}

double GibbsSampler::ConditionalOn(const std::vector<bool>& x, VarId v) const {
  // P(X_v = 1 | rest) = w1 / (w0 + w1) with w_b = product of weights of
  // features touching v under X_v = b, times the tuple weight for b = 1.
  std::vector<bool> y = x;
  double w1 = mln_.tuple_weights()[static_cast<size_t>(v)];
  double w0 = 1.0;
  const auto& features = mln_.features();
  y[static_cast<size_t>(v)] = true;
  for (size_t i : features_of_var_[static_cast<size_t>(v)]) {
    if (features[i].formula.Eval(y)) w1 *= features[i].weight;
  }
  y[static_cast<size_t>(v)] = false;
  for (size_t i : features_of_var_[static_cast<size_t>(v)]) {
    if (features[i].formula.Eval(y)) w0 *= features[i].weight;
  }
  return w1 / (w0 + w1);
}

StatusOr<double> GibbsSampler::EstimateQueryProb(const Lineage& query) {
  for (const MlnFeature& f : mln_.features()) {
    if (f.weight == 0.0 || f.weight == kCertainWeight) {
      return Status::InvalidArgument(
          "Gibbs sampling requires soft features only (use MC-SAT)");
    }
  }
  for (double w : mln_.tuple_weights()) {
    if (w == 0.0 || w == kCertainWeight) {
      return Status::InvalidArgument(
          "Gibbs sampling requires soft tuple weights only (use MC-SAT)");
    }
  }
  std::vector<bool> x(mln_.num_vars());
  for (size_t v = 0; v < x.size(); ++v) x[v] = rng_.Chance(0.5);
  size_t hits = 0;
  size_t kept = 0;
  for (int i = 0; i < opts_.burn_in + opts_.num_samples; ++i) {
    for (size_t v = 0; v < x.size(); ++v) {
      x[v] = rng_.Uniform() < ConditionalOn(x, static_cast<VarId>(v));
    }
    if (i < opts_.burn_in) continue;
    ++kept;
    if (query.Eval(x)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(kept);
}

}  // namespace mvdb
