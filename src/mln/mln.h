// Copyright 2026 The MarkoView Authors.
//
// Ground Markov Logic Networks (Section 2.3). An MVDB *is* a restricted MLN
// (Definition 4): one single-tuple feature per probabilistic tuple plus one
// grounded-UCQ feature per MarkoView output tuple. This module implements
// that semantics directly:
//
//   * exact inference by world enumeration (Phi / Z of Eq. 1-2) — the
//     ground-truth oracle the Theorem 1 property tests compare against;
//   * MC-SAT (Poon & Domingos 2006), the sampling algorithm Alchemy runs in
//     the paper's Figures 5-6 — our stand-in for the closed-source Alchemy
//     binary, grounded over the same features;
//   * Gibbs sampling for soft-only networks (a secondary baseline).
//
// Weights are multiplicative (odds) as everywhere in this repository:
// a world's weight is the product of the weights of the satisfied features
// (Eq. 1). Weight 0 is a hard "must not hold", weight infinity a hard
// "must hold".

#ifndef MVDB_MLN_MLN_H_
#define MVDB_MLN_MLN_H_

#include <vector>

#include "prob/lineage.h"
#include "relational/types.h"
#include "util/rng.h"
#include "util/status.h"

namespace mvdb {

/// One grounded feature: a Boolean formula (positive DNF over tuple
/// variables) with a multiplicative weight.
struct MlnFeature {
  Lineage formula;
  double weight;
};

/// A ground MLN over Boolean variables 0..num_vars-1.
class GroundMln {
 public:
  /// `tuple_weights[v]` is the weight of the single-tuple feature of
  /// variable v (Definition 4's first feature set).
  GroundMln(size_t num_vars, std::vector<double> tuple_weights);

  /// Adds a view feature (Definition 4's second feature set).
  void AddFeature(Lineage formula, double weight);

  size_t num_vars() const { return num_vars_; }
  const std::vector<double>& tuple_weights() const { return tuple_weights_; }
  const std::vector<MlnFeature>& features() const { return features_; }

  /// Weight Phi(I) of one world (Eq. 1), including the single-tuple
  /// features. Hard violations yield 0.
  double WorldWeight(const std::vector<bool>& world) const;

  /// Exact partition function Z (Eq. 2) by enumeration. CHECK-fails beyond
  /// 24 variables.
  double ExactPartition() const;

  /// Exact P(query) = sum of Phi over worlds satisfying the query, over Z
  /// (Definition 1). CHECK-fails beyond 24 variables; Internal error if
  /// Z = 0 (no possible world).
  StatusOr<double> ExactQueryProb(const Lineage& query) const;

 private:
  size_t num_vars_;
  std::vector<double> tuple_weights_;
  std::vector<MlnFeature> features_;
};

/// Options for the samplers.
struct SamplerOptions {
  int burn_in = 200;
  int num_samples = 2000;
  int sample_sat_max_flips = 10000;
  double walk_prob = 0.5;   ///< SampleSAT: random-walk vs greedy move mix
  uint64_t seed = 42;
};

/// MC-SAT marginal/query inference (handles hard + soft features).
class McSat {
 public:
  McSat(const GroundMln& mln, const SamplerOptions& opts);

  /// Estimated P(query) from MC-SAT samples. Returns Internal error if no
  /// state satisfying the hard constraints could be found.
  StatusOr<double> EstimateQueryProb(const Lineage& query);

  /// Estimated marginals of every variable (diagnostics / tests).
  StatusOr<std::vector<double>> EstimateMarginals();

  /// Number of flips performed across all SampleSAT calls (cost metric).
  size_t total_flips() const { return total_flips_; }

 private:
  /// A slice constraint: `formula` must evaluate to `must_hold`.
  struct Constraint {
    const Lineage* formula;
    bool must_hold;
  };

  bool Satisfied(const Constraint& c, const std::vector<bool>& x) const;
  /// WalkSAT/SampleSAT: mutates x toward satisfying all constraints.
  bool SampleSat(const std::vector<Constraint>& constraints, std::vector<bool>* x);
  /// One MC-SAT round: build the slice from the current state, resample.
  bool Step(std::vector<bool>* x);

  const GroundMln& mln_;
  SamplerOptions opts_;
  Rng rng_;
  std::vector<Constraint> hard_;
  // Soft features, pre-split: (formula, must_hold, inclusion probability).
  struct SoftSlice {
    const Lineage* formula;
    bool must_hold;
    double include_prob;
  };
  std::vector<SoftSlice> soft_;
  // Single-variable soft weights: var -> (must_value, include_prob).
  struct SoftVar {
    VarId var;
    bool must_value;
    double include_prob;
  };
  std::vector<SoftVar> soft_vars_;
  std::vector<std::pair<VarId, bool>> hard_vars_;  // pinned variables
  size_t total_flips_ = 0;
};

/// Gibbs sampler for networks without hard constraints (weight 0/infinity
/// features are rejected with InvalidArgument).
class GibbsSampler {
 public:
  GibbsSampler(const GroundMln& mln, const SamplerOptions& opts);
  StatusOr<double> EstimateQueryProb(const Lineage& query);

 private:
  double ConditionalOn(const std::vector<bool>& x, VarId v) const;

  const GroundMln& mln_;
  SamplerOptions opts_;
  Rng rng_;
  std::vector<std::vector<size_t>> features_of_var_;
};

}  // namespace mvdb

#endif  // MVDB_MLN_MLN_H_
