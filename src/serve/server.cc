#include "serve/server.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "query/analysis.h"
#include "util/logging.h"

namespace mvdb {
namespace {

/// Clamps values that are within floating-point noise of [0, 1] (same rule
/// as the engine's Query path — serving must emit the same bits).
double ClampProb(double p) {
  if (p < 0.0 && p > -1e-9) return 0.0;
  if (p > 1.0 && p < 1.0 + 1e-9) return 1.0;
  return p;
}

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

int NumWorkers(int requested) {
  return requested > 0
             ? requested
             : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

Server::Server(const Database* db, const MvIndex* index,
               const ServeOptions& options)
    : db_(db),
      index_(index),
      options_(options),
      order_(index->manager().order()),
      denom_(index->ProbNotWScaled()) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  max_inflight_ =
      options_.max_inflight > 0
          ? options_.max_inflight
          : options_.queue_capacity + static_cast<size_t>(NumWorkers(
                                          options_.num_threads)) *
                                          options_.max_batch;
  if (options_.use_plan_cache) {
    plan_cache_ = std::make_unique<PlanCache>(options_.plan_cache_capacity);
  }
  // Every lazy table index the eval path can probe becomes a pure read
  // before any worker exists.
  db_->WarmIndexes();
  if (options_.start_workers) Start();
}

Server::~Server() { Shutdown(); }

void Server::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopping_) return;
    started_ = true;
  }
  const int n = NumWorkers(options_.num_threads);
  pool_.Start(n);
  for (int i = 0; i < n; ++i) {
    pool_.Submit([this] { WorkerLoop(); });
  }
}

std::future<ServeResult> Server::Submit(ServeRequest req) {
  Pending p;
  p.req = std::move(req);
  p.submitted_at = Clock::now();
  const double ms = p.req.deadline_ms < 0.0 ? options_.default_deadline_ms
                                            : p.req.deadline_ms;
  if (ms > 0.0) {
    p.has_deadline = true;
    p.deadline = p.submitted_at +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(ms));
  }
  std::future<ServeResult> fut = p.promise.get_future();

  Status reject = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.rejected_shutdown;
      reject = Status::Unavailable("server is shutting down");
    } else if (p.has_deadline && Clock::now() >= p.deadline) {
      ++stats_.deadline_exceeded;
      reject = Status::DeadlineExceeded("deadline expired before admission");
    } else if (inflight_ >= max_inflight_) {
      ++stats_.shed_inflight;
      reject = Status::Unavailable("inflight limit reached");
    } else if (queue_.size() >= options_.queue_capacity) {
      ++stats_.shed_queue_full;
      reject = Status::Unavailable("request queue full");
    } else {
      ++inflight_;
      queue_.push_back(std::move(p));
      stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    }
  }
  if (!reject.ok()) {
    ServeResult res;
    res.status = reject;
    p.promise.set_value(std::move(res));
    return fut;
  }
  cv_.notify_one();
  return fut;
}

ServeResult Server::Execute(const ServeRequest& req) {
  WorkerState state;
  std::vector<Pending> batch(1);
  batch[0].req = req;
  batch[0].submitted_at = Clock::now();
  std::future<ServeResult> fut = batch[0].promise.get_future();
  ExecuteBatch(&batch, &state, /*admitted=*/false);
  return fut.get();
}

void Server::WorkerLoop() {
  WorkerState state;
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock,
               [this] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (queue_.empty()) return;  // stopping_ && drained
      const size_t take = std::min(options_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++executing_;
    }
    ExecuteBatch(&batch, &state);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
    }
    cv_.notify_all();  // wake a Pause() waiting for the drain
  }
}

void Server::EvalRequest(const Ucq& q, WorkerState* state, EvalOutcome* out) {
  AnswerMap answers;
  const EvalOptions eopts{};  // serial per request; concurrency across requests
  if (plan_cache_ != nullptr) {
    const UcqSignature sig = ComputeUcqSignature(q);
    bool hit = false;
    auto tmpl = plan_cache_->GetOrPlan(*db_, q, sig, eopts, &hit);
    if (!tmpl.ok()) {
      out->status = tmpl.status();
      return;
    }
    out->cache_hit = hit;
    // PR-5 invariant: Plan + Execute(own slots) is bit-identical to Eval,
    // so the cache can only change planning cost, never answers.
    out->status = (*tmpl)->Execute(sig.slots, &state->eval, &answers);
  } else {
    out->status = Eval(*db_, q, eopts, &answers);
  }
  if (!out->status.ok()) return;

  // Fresh per-request manager sharing the immutable VarOrder: NodeIds (and
  // with them every downstream hash-map iteration order in the CC sweep)
  // depend only on this request's canonical lineages — the serving
  // bit-identity invariant.
  out->qmgr = std::make_unique<BddManager>(order_);
  out->heads.reserve(answers.size());
  out->roots.reserve(answers.size());
  for (const auto& [head, info] : answers) {
    out->heads.push_back(head);
    out->roots.push_back(out->qmgr->FromLineageSynthesis(info.lineage));
  }
}

void Server::ExecuteBatch(std::vector<Pending>* batch, WorkerState* state,
                          bool admitted) {
  const Clock::time_point dequeued_at = Clock::now();
  const size_t n = batch->size();
  std::vector<EvalOutcome> outcomes(n);
  std::vector<CcQuery> roots;

  // Phase 1: deadline check + relational eval + per-request OBDD synthesis.
  for (size_t i = 0; i < n; ++i) {
    Pending& p = (*batch)[i];
    if (p.has_deadline && Clock::now() >= p.deadline) {
      outcomes[i].status =
          Status::DeadlineExceeded("deadline expired before execution");
      continue;
    }
    EvalRequest(p.req.query, state, &outcomes[i]);
    if (outcomes[i].status.ok()) {
      for (const NodeId r : outcomes[i].roots) {
        roots.push_back(CcQuery{outcomes[i].qmgr.get(), r});
      }
    }
  }

  // Phase 2: one batched CC sweep answers every tuple of every request.
  std::vector<ScaledDouble> nums;
  if (!roots.empty()) {
    index_->CCMVIntersectBatchScaled(roots, &state->sweep, &nums);
  }

  // Phase 3: assemble Eq. 5 ratios.
  const Clock::time_point done_at = Clock::now();
  uint64_t completed = 0, failed = 0, deadline_exceeded = 0;
  size_t cursor = 0;
  std::vector<ServeResult> results(n);
  for (size_t i = 0; i < n; ++i) {
    EvalOutcome& oc = outcomes[i];
    ServeResult& res = results[i];
    res.status = oc.status;
    res.plan_cache_hit = oc.cache_hit;
    res.queue_ms = MsBetween((*batch)[i].submitted_at, dequeued_at);
    res.exec_ms = MsBetween(dequeued_at, done_at);
    if (oc.status.ok()) {
      if (denom_.IsZero()) {
        res.status = Status::Internal(
            "P0(NOT W) = 0: the MVDB admits no possible world");
      } else {
        res.answers.reserve(oc.heads.size());
        for (size_t j = 0; j < oc.heads.size(); ++j) {
          res.answers.push_back(AnswerProb{
              std::move(oc.heads[j]),
              ClampProb((nums[cursor + j] / denom_).ToDouble())});
        }
        cursor += oc.heads.size();
      }
    }
    if (res.status.ok()) {
      ++completed;
    } else if (res.status.code() == StatusCode::kDeadlineExceeded) {
      ++deadline_exceeded;
    } else {
      ++failed;
    }
  }

  // Account BEFORE completing the promises, so a caller that observed a
  // future complete sees stats that already include it.
  if (admitted) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ -= n;
    ++stats_.batches;
    if (n > 1) stats_.batched_requests += n;
    stats_.completed += completed;
    stats_.failed += failed;
    stats_.deadline_exceeded += deadline_exceeded;
  }
  for (size_t i = 0; i < n; ++i) {
    (*batch)[i].promise.set_value(std::move(results[i]));
  }
}

void Server::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  MVDB_CHECK(!paused_) << "Server::Pause while already paused";
  paused_ = true;
  cv_.wait(lock, [this] { return executing_ == 0; });
}

void Server::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MVDB_CHECK(paused_) << "Server::Resume without a matching Pause";
    // No batch is executing, so the snapshot swap races with nothing.
    order_ = index_->manager().order();
    denom_ = index_->ProbNotWScaled();
    db_->WarmIndexes();
    paused_ = false;
  }
  cv_.notify_all();
}

void Server::InvalidatePlans() {
  if (plan_cache_ != nullptr) {
    plan_cache_ = std::make_unique<PlanCache>(options_.plan_cache_capacity);
  }
}

void Server::Shutdown() {
  std::deque<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    if (!started_) orphans.swap(queue_);
  }
  cv_.notify_all();
  // Workers drain the remaining queue (the wait predicate admits work until
  // it is empty), then exit; the pool joins them.
  pool_.Shutdown();
  if (!orphans.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ -= orphans.size();
    stats_.rejected_shutdown += orphans.size();
  }
  for (Pending& p : orphans) {
    ServeResult res;
    res.status = Status::Unavailable("server shut down before execution");
    p.promise.set_value(std::move(res));
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

PlanCacheStats Server::plan_cache_stats() const {
  return plan_cache_ != nullptr ? plan_cache_->stats() : PlanCacheStats{};
}

}  // namespace mvdb
