// Copyright 2026 The MarkoView Authors.
//
// Online serving layer over a compiled MV-index. The index's flat chain is
// immutable at serve time, so concurrent reads need no locks; everything
// mutable is per-request or per-worker:
//
//   plan cache    — repeated query shapes skip the cost-based planner
//                   (serve/plan_cache.h);
//   scheduler     — a fixed-size worker pool (util/parallel.h ThreadPool)
//                   behind a bounded queue, with per-request deadlines, an
//                   inflight limiter, and queue-full shedding that returns
//                   typed Status (kDeadlineExceeded / kUnavailable) instead
//                   of blocking the caller;
//   batched sweep — a worker drains up to max_batch requests at once and
//                   answers all of their tuples in ONE CC-MVIntersect pass
//                   over the flat chain (MvIndex::CCMVIntersectBatchScaled).
//
// Bit-identity invariant: every request's query OBDDs are synthesized into
// a fresh private BddManager (sharing the index's immutable VarOrder), so
// the NodeIds — and hence every hash-map iteration order downstream in the
// sweep — depend only on the request itself, never on scheduling, batching,
// or cache state. serve_concurrency_test pins this with golden hashes.

#ifndef MVDB_SERVE_SERVER_H_
#define MVDB_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "mvindex/mv_index.h"
#include "obdd/manager.h"
#include "query/ast.h"
#include "query/eval.h"
#include "relational/database.h"
#include "serve/plan_cache.h"
#include "util/parallel.h"
#include "util/status.h"

namespace mvdb {

struct ServeOptions {
  /// Worker threads executing requests. <= 0 = one per hardware thread.
  int num_threads = 4;
  /// Admission bound on queued (not yet dequeued) requests; submits beyond
  /// it are shed with kUnavailable.
  size_t queue_capacity = 1024;
  /// Admission bound on requests admitted but not yet completed. 0 derives
  /// queue_capacity + worker slots (i.e. only the queue bound sheds).
  size_t max_inflight = 0;
  /// Max requests one worker drains per dequeue; their answer tuples share
  /// one batched CC sweep. 1 disables cross-request batching.
  size_t max_batch = 8;
  /// Escape hatch mirroring MvIndexBuildOptions::use_plan_templates: off
  /// re-plans every request. Results are bit-identical either way.
  bool use_plan_cache = true;
  size_t plan_cache_capacity = 128;
  /// Deadline applied to requests that don't carry their own. 0 = none.
  double default_deadline_ms = 0.0;
  /// Tests set false to control worker startup (Server::Start) explicitly —
  /// e.g. to fill the queue deterministically before any dequeue.
  bool start_workers = true;
};

struct ServeRequest {
  /// Pre-parsed query. Parsing interns constants into the Database dict, so
  /// requests must be built before concurrent submission.
  Ucq query;
  /// Relative deadline from Submit(). < 0 = use ServeOptions default;
  /// 0 = no deadline. Checked at admission and again at dequeue — an
  /// expired request completes with kDeadlineExceeded without executing.
  double deadline_ms = -1.0;
};

struct ServeResult {
  Status status;
  std::vector<AnswerProb> answers;  ///< Eq. 5 probability per answer tuple
  bool plan_cache_hit = false;
  double queue_ms = 0.0;  ///< admission -> dequeue
  double exec_ms = 0.0;   ///< dequeue -> completion (shared batch time)
};

/// Lifetime counters (snapshot). Every submitted request lands in exactly
/// one of completed / failed / deadline_exceeded / shed_* / rejected_shutdown.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;           ///< finished with OK status
  uint64_t failed = 0;              ///< finished with a non-OK eval status
  uint64_t deadline_exceeded = 0;   ///< expired at admission or dequeue
  uint64_t shed_queue_full = 0;
  uint64_t shed_inflight = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t batches = 0;             ///< worker dequeues
  uint64_t batched_requests = 0;    ///< requests sharing a multi-request batch
  size_t max_queue_depth = 0;
};

/// One serving instance over a compiled index. `db` and `index` must
/// outlive the server and must not be mutated while it serves (the engine's
/// Serve() warms all table indexes first, making the eval path read-only).
class Server {
 public:
  Server(const Database* db, const MvIndex* index, const ServeOptions& options);
  ~Server();  // Shutdown()

  /// Spawns the worker pool. Idempotent; called from the constructor unless
  /// options.start_workers was false.
  void Start();

  /// Enqueues a request; never blocks. The future always completes: with
  /// answers, or with a typed error (kUnavailable when shed or shut down,
  /// kDeadlineExceeded when expired).
  std::future<ServeResult> Submit(ServeRequest req);

  /// Synchronous in-caller execution — the serial reference path. Bypasses
  /// the queue, deadlines, and admission; runs as a batch of one, which by
  /// the batching invariant is bit-identical to any concurrent schedule.
  ServeResult Execute(const ServeRequest& req);

  /// Stops admission, drains every queued request (workers finish them; if
  /// none were started, queued requests complete with kUnavailable), joins.
  /// Idempotent.
  void Shutdown();

  /// Quiesces the worker pool for an index/database mutation: blocks until
  /// every dequeued batch has completed, then keeps workers parked on the
  /// dequeue condition. Admission stays open — requests queue up and are
  /// served after Resume(). Callers must not Pause() twice without an
  /// intervening Resume(), must not Shutdown() while paused, and must not
  /// call Execute() concurrently (it bypasses the queue and the pause).
  void Pause();

  /// Re-reads the serving snapshot the constructor took from the index —
  /// the shared VarOrder and the Eq. 5 denominator P0(NOT W) — re-warms the
  /// database's lazy table indexes, and unparks the workers. Every request
  /// dequeued afterwards sees the post-mutation index consistently.
  void Resume();

  /// Drops every cached plan (no-op when the cache is disabled). Only
  /// needed for structural mutations: plans are value-independent, so
  /// weight-only deltas keep the cache warm. Call between Pause() and
  /// Resume() — workers read the cache pointer without a lock.
  void InvalidatePlans();

  ServerStats stats() const;
  /// Zeroed stats when the cache is disabled.
  PlanCacheStats plan_cache_stats() const;
  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    ServeRequest req;
    Clock::time_point submitted_at;
    Clock::time_point deadline;
    bool has_deadline = false;
    std::promise<ServeResult> promise;
  };

  /// Per-worker reusable state: eval scratch + sweep scratch.
  struct WorkerState {
    EvalScratch eval;
    CcSweepScratch sweep;
  };

  /// Relational eval + per-request OBDD synthesis (no sweep yet).
  struct EvalOutcome {
    Status status;
    bool cache_hit = false;
    std::unique_ptr<BddManager> qmgr;  ///< fresh per-request manager
    std::vector<std::vector<Value>> heads;
    std::vector<NodeId> roots;  ///< one per head, in qmgr
  };

  void EvalRequest(const Ucq& q, WorkerState* state, EvalOutcome* out);
  void ExecuteBatch(std::vector<Pending>* batch, WorkerState* state,
                    bool admitted = true);
  void WorkerLoop();

  const Database* db_;
  const MvIndex* index_;
  ServeOptions options_;
  size_t max_inflight_;
  std::shared_ptr<const VarOrder> order_;
  ScaledDouble denom_;  ///< P0(NOT W), shared by every request
  std::unique_ptr<PlanCache> plan_cache_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  size_t inflight_ = 0;   ///< admitted, not yet completed (includes queued)
  size_t executing_ = 0;  ///< batches dequeued, not yet completed — what
                          ///< Pause() drains; waiting on inflight_ instead
                          ///< would deadlock against the paused queue
  bool started_ = false;
  bool stopping_ = false;
  bool paused_ = false;
  ServerStats stats_;
};

}  // namespace mvdb

#endif  // MVDB_SERVE_SERVER_H_
