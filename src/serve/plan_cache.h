// Copyright 2026 The MarkoView Authors.
//
// Online plan cache: PlanTemplates keyed by structural UCQ signature
// (query/analysis.h). PR 5 compiled one template per *block* shape offline;
// this is the serving-side counterpart — repeated query shapes skip the
// cost-based planner entirely and bind their constants into a shared
// immutable template. Correctness leans on the PR-5 invariant that
// Eval(q) == Plan(shape) + Execute(slots) bit-for-bit, so a cache hit can
// never change an answer, only the planning cost.

#ifndef MVDB_SERVE_PLAN_CACHE_H_
#define MVDB_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "query/analysis.h"
#include "query/ast.h"
#include "query/eval.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// Counters for the cache's whole lifetime. A snapshot, not a live view.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          ///< lookups that had to plan
  uint64_t evictions = 0;       ///< LRU entries dropped at capacity
  uint64_t plan_failures = 0;   ///< failed plans (never cached)
  size_t size = 0;
  size_t capacity = 0;
  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Thread-safe LRU cache of compiled PlanTemplates keyed by UcqSignature::key
/// (the structural shape: constants abstracted into slots, so
/// StudentsOfAdvisor("Ullman") and StudentsOfAdvisor("Widom") share one
/// entry). Planning happens under the cache mutex — at most one thread plans
/// a given shape and every other requester reuses the result; execution
/// (PlanTemplate::Execute with per-thread scratch) happens outside, fully
/// concurrent. Plans depend on table statistics, so one cache serves one
/// immutable post-compile Database.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity);

  /// Returns the template for `sig.key`, planning q's abstracted shape on a
  /// miss. `opts` is consulted only when planning (callers of one cache must
  /// agree on it). `was_hit`, if non-null, reports whether this lookup hit.
  /// Failed plans are not cached and count as plan_failures.
  StatusOr<std::shared_ptr<const PlanTemplate>> GetOrPlan(
      const Database& db, const Ucq& q, const UcqSignature& sig,
      const EvalOptions& opts, bool* was_hit = nullptr);

  PlanCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const PlanTemplate> tmpl;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace mvdb

#endif  // MVDB_SERVE_PLAN_CACHE_H_
