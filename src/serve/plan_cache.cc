#include "serve/plan_cache.h"

#include <utility>

namespace mvdb {

PlanCache::PlanCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  stats_.capacity = capacity_;
}

StatusOr<std::shared_ptr<const PlanTemplate>> PlanCache::GetOrPlan(
    const Database& db, const Ucq& q, const UcqSignature& sig,
    const EvalOptions& opts, bool* was_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(sig.key);
  if (it != index_.end()) {
    ++stats_.hits;
    if (was_hit != nullptr) *was_hit = true;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    return it->second->tmpl;
  }

  ++stats_.misses;
  if (was_hit != nullptr) *was_hit = false;
  auto planned = PlanTemplate::Plan(db, q, opts);
  if (!planned.ok()) {
    ++stats_.plan_failures;
    return planned.status();
  }
  // Warm now, under the mutex: every later Execute against this template —
  // from any worker — then only reads shared table indexes.
  (*planned)->WarmIndexes();
  std::shared_ptr<const PlanTemplate> tmpl = std::move(planned).value();

  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{sig.key, tmpl});
  index_.emplace(lru_.front().key, lru_.begin());
  return tmpl;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out = stats_;
  out.size = lru_.size();
  out.capacity = capacity_;
  return out;
}

}  // namespace mvdb
