#include "dblp/dblp.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "query/parser.h"
#include "util/flat_hash.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace mvdb {
namespace dblp {
namespace {

// Publication ids live in their own integer namespace so that separator
// domains never mix author ids with paper ids.
constexpr Value kPidBase = 10'000'000;

// Per-entity RNG streams. Every random decision is drawn from a generator
// seeded by (config seed, stream tag, entity id) instead of one sequential
// stream, so the planning loops below can shard entities over threads in
// any order: the plans — and hence the emitted tables — are bit-identical
// for every thread count (dblp_determinism_test pins this).
enum class Stream : uint64_t {
  kRole = 1,      // Author roles: advisor flag + first publication year
  kCluster = 2,   // advisor/student co-publication clusters (Wrote/Pub)
  kSolo = 3,      // random solo papers (Wrote/Pub)
  kHomePage = 4,  // HomePage + DBLPAffiliation
  kProlific = 5,  // planted V3 prolific pairs
};

Rng StreamRng(uint64_t seed, Stream stream, uint64_t id) {
  return Rng(Mix64(seed ^ (static_cast<uint64_t>(stream) << 56)) ^
             Mix64(id * 0x9e3779b97f4a7c15ULL + 1));
}

/// Planning chunk: coarse enough to amortize the work-queue atomic, fine
/// enough to balance million-author plans across workers.
constexpr size_t kPlanChunk = 1024;

/// Everything one advisor's cluster contributes, planned ahead of emission.
/// Year entries are offsets from the (later-assigned) student's first
/// publication year, because which junior becomes the student is only known
/// once all advisors' student counts are fixed.
struct StudentPlan {
  std::vector<uint8_t> year_offsets;       ///< one co-publication per entry
  int adv2 = -1;                           ///< second advisor aid, or -1
  std::vector<uint8_t> adv2_year_offsets;  ///< threshold+1 co-publications
};
struct ClusterPlan {
  std::vector<StudentPlan> students;
};

/// Serial emission state: pid allocation and the co-authorship record the
/// probabilistic tables are derived from. Emission order is fixed (clusters,
/// solo papers, prolific pairs), which pins every pid.
struct Emitter {
  Database* db = nullptr;
  Value next_pid = kPidBase;
  // Co-authorship: unordered pair -> publication years (one entry per pid).
  std::map<std::pair<int, int>, std::vector<std::pair<Value, int>>> copubs;

  Value AddPub(int year) {
    const Value pid = next_pid++;
    db->InsertDeterministic("Pub", {pid, pid, year});  // title == pid
    return pid;
  }

  void AddWrote(int aid, Value pid) {
    db->InsertDeterministic("Wrote", {aid, pid});
  }

  void AddCopub(int a, int b, int year) {
    const Value pid = AddPub(year);
    AddWrote(a, pid);
    AddWrote(b, pid);
    const auto key = std::minmax(a, b);
    copubs[{key.first, key.second}].push_back({pid, year});
  }
};

}  // namespace

std::string AuthorName(int aid) { return "author" + std::to_string(aid); }

StatusOr<std::unique_ptr<Mvdb>> BuildDblpMvdb(const DblpConfig& config,
                                              DblpStats* stats) {
  auto mvdb = std::make_unique<Mvdb>();
  Database& db = mvdb->db();

  // --- Schema ---------------------------------------------------------
  MVDB_RETURN_NOT_OK(db.CreateTable("Author", {"aid", "name"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("Wrote", {"aid", "pid"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("Pub", {"pid", "title", "year"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("HomePage", {"aid", "url"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("FirstPub", {"aid", "year"}, false).status());
  MVDB_RETURN_NOT_OK(
      db.CreateTable("DBLPAffiliation", {"aid", "inst"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("Student", {"aid", "year"}, true).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("Advisor", {"aid1", "aid2"}, true).status());
  MVDB_RETURN_NOT_OK(
      db.CreateTable("Affiliation", {"aid", "inst"}, true).status());

  const int n = config.num_authors;
  const int threads = config.num_threads;
  const size_t nn = static_cast<size_t>(n);

  // --- Plan: roles and first-publication years (Stream::kRole) ----------
  // Advisors publish early (window ends before 2000); students publish from
  // 2000 on, so advisor windows never overlap student windows.
  std::vector<int> first_pub(nn + 1, 0);  // per aid (1-based; [0] unused)
  std::vector<uint8_t> is_advisor(nn + 1, 0);
  std::vector<std::string> names(nn + 1);
  ParallelForChunked(threads, nn, kPlanChunk, [&](size_t i) {
    const int aid = static_cast<int>(i) + 1;
    Rng rng = StreamRng(config.seed, Stream::kRole, static_cast<uint64_t>(aid));
    const bool advisor = rng.Uniform() < config.advisor_fraction;
    is_advisor[i + 1] = advisor ? 1 : 0;
    first_pub[i + 1] = static_cast<int>(advisor ? rng.Range(1985, 1992)
                                                : rng.Range(2000, 2008));
    names[i + 1] = AuthorName(aid);
  });

  std::vector<int> advisors, juniors;
  for (int aid = 1; aid <= n; ++aid) {
    db.InsertDeterministic("Author",
                           {aid, db.Str(names[static_cast<size_t>(aid)])});
    (is_advisor[static_cast<size_t>(aid)] ? advisors : juniors).push_back(aid);
  }
  names.clear();
  names.shrink_to_fit();

  // --- Plan: advisor/student clusters (Stream::kCluster) ----------------
  // Plans are drawn per advisor; student identities are assigned at
  // emission by walking the junior list in advisor order, exactly like the
  // old sequential cursor. Plans for students the junior pool cannot supply
  // are simply never emitted.
  std::vector<ClusterPlan> cluster_plans(advisors.size());
  ParallelForChunked(threads, advisors.size(), 64, [&](size_t ai) {
    const int adv = advisors[ai];
    Rng rng =
        StreamRng(config.seed, Stream::kCluster, static_cast<uint64_t>(adv));
    const int num_students =
        1 + static_cast<int>(rng.Below(
                static_cast<uint64_t>(config.max_students_per_advisor)));
    cluster_plans[ai].students.resize(static_cast<size_t>(num_students));
    for (StudentPlan& sp : cluster_plans[ai].students) {
      const int k = static_cast<int>(
          rng.Range(config.min_copubs, config.max_copubs));
      sp.year_offsets.resize(static_cast<size_t>(k));
      for (uint8_t& o : sp.year_offsets) o = static_cast<uint8_t>(rng.Below(5));
      // Occasionally a second advisor, so the V2 denial view has work to do.
      if (rng.Uniform() < 0.15 && advisors.size() > 1) {
        const int adv2 = advisors[rng.Below(advisors.size())];
        if (adv2 != adv) {
          sp.adv2 = adv2;
          sp.adv2_year_offsets.resize(
              static_cast<size_t>(config.advisor_copub_threshold) + 1);
          for (uint8_t& o : sp.adv2_year_offsets) {
            o = static_cast<uint8_t>(rng.Below(5));
          }
        }
      }
    }
  });

  // --- Plan: solo papers (Stream::kSolo) and home pages (kHomePage) -----
  const size_t rpp = static_cast<size_t>(
      std::max(0, config.random_papers_per_author));
  std::vector<uint8_t> solo_offsets(nn * rpp);
  std::vector<int> home_inst_no(nn + 1, -1);  // institute number or -1
  ParallelForChunked(threads, nn, kPlanChunk, [&](size_t i) {
    const uint64_t aid = i + 1;
    Rng solo = StreamRng(config.seed, Stream::kSolo, aid);
    for (size_t p = 0; p < rpp; ++p) {
      solo_offsets[i * rpp + p] = static_cast<uint8_t>(solo.Below(8));
    }
    Rng home = StreamRng(config.seed, Stream::kHomePage, aid);
    if (home.Uniform() < config.homepage_fraction) {
      home_inst_no[i + 1] = static_cast<int>(
          home.Below(static_cast<uint64_t>(config.num_institutes)));
    }
  });

  // --- Emit: co-publication clusters ------------------------------------
  Emitter em;
  em.db = &db;
  size_t junior_cursor = 0;
  for (size_t ai = 0; ai < advisors.size(); ++ai) {
    const int adv = advisors[ai];
    for (const StudentPlan& sp : cluster_plans[ai].students) {
      if (junior_cursor >= juniors.size()) break;
      const int student = juniors[junior_cursor++];
      const int fp = first_pub[static_cast<size_t>(student)];
      for (uint8_t o : sp.year_offsets) em.AddCopub(student, adv, fp + o);
      if (sp.adv2 >= 0) {
        for (uint8_t o : sp.adv2_year_offsets) {
          em.AddCopub(student, sp.adv2, fp + o);
        }
      }
    }
  }
  cluster_plans.clear();
  cluster_plans.shrink_to_fit();

  // --- Emit: random solo papers -----------------------------------------
  for (int aid = 1; aid <= n; ++aid) {
    for (size_t p = 0; p < rpp; ++p) {
      const int year = first_pub[static_cast<size_t>(aid)] +
                       solo_offsets[(static_cast<size_t>(aid) - 1) * rpp + p];
      const Value pid = em.AddPub(year);
      em.AddWrote(aid, pid);
    }
  }
  solo_offsets.clear();
  solo_offsets.shrink_to_fit();

  // --- Emit: home pages and declared affiliations -----------------------
  std::vector<int64_t> homepage_inst(nn + 1, -1);  // interned inst id or -1
  for (int aid = 1; aid <= n; ++aid) {
    const int inst_no = home_inst_no[static_cast<size_t>(aid)];
    if (inst_no < 0) continue;
    const Value inst = db.Str("www.inst" + std::to_string(inst_no) + ".edu");
    const Value url =
        db.Str("www.inst" + std::to_string(inst_no) + ".edu/~a" +
               std::to_string(aid));
    homepage_inst[static_cast<size_t>(aid)] = inst;
    db.InsertDeterministic("HomePage", {aid, url});
    db.InsertDeterministic("DBLPAffiliation", {aid, inst});
  }

  // --- Emit: prolific pairs feeding V3 (Stream::kProlific) --------------
  // Two authors without home pages who both co-publish recently with an
  // institute "hub" (giving them inferred affiliations) and prolifically
  // with each other (pushing V3's count(pid) over the threshold). Small and
  // inherently sequential (candidates depend on earlier picks): one stream.
  if (config.include_affiliation && n >= 8) {
    Rng rng = StreamRng(config.seed, Stream::kProlific, 0);
    for (int pair_no = 0; pair_no < config.num_prolific_pairs; ++pair_no) {
      // Deterministically pick distinct junior authors without home pages.
      int u = -1, v = -1, hub = -1;
      for (int tries = 0; tries < 200 && (u < 0 || v < 0 || hub < 0); ++tries) {
        const int cand = static_cast<int>(rng.Range(1, n));
        if (hub < 0 && homepage_inst[static_cast<size_t>(cand)] >= 0) {
          hub = cand;
          continue;
        }
        if (homepage_inst[static_cast<size_t>(cand)] >= 0) continue;
        if (is_advisor[static_cast<size_t>(cand)]) continue;
        if (u < 0 && cand != v) u = cand;
        else if (v < 0 && cand != u) v = cand;
      }
      if (u < 0 || v < 0 || hub < 0) break;
      // Recent hub co-publications (year > 2005) -> inferred affiliation.
      for (int p = 0; p < 3; ++p) {
        em.AddCopub(u, hub, 2006 + static_cast<int>(rng.Below(4)));
        em.AddCopub(v, hub, 2006 + static_cast<int>(rng.Below(4)));
      }
      // Prolific recent co-publication between u and v (year > 2004).
      for (int p = 0; p <= config.v3_copub_threshold; ++p) {
        em.AddCopub(u, v, 2005 + static_cast<int>(rng.Below(5)));
      }
    }
  }

  // --- Derived views -----------------------------------------------------
  for (int aid = 1; aid <= n; ++aid) {
    db.InsertDeterministic("FirstPub",
                           {aid, first_pub[static_cast<size_t>(aid)]});
  }

  // --- Probabilistic tables (Fig. 1 weight expressions) ------------------
  // Student(aid, year)[exp(1 - .15 (year - year'))], year' - 1 <= year <=
  // year' + 5: only 7 distinct weights, one per window offset.
  std::array<double, 7> student_w;
  for (int j = 0; j < 7; ++j) student_w[static_cast<size_t>(j)] =
      std::exp(1.0 - 0.15 * (j - 1));
  for (int aid = 1; aid <= n; ++aid) {
    const int fp = first_pub[static_cast<size_t>(aid)];
    for (int j = 0; j < 7; ++j) {
      db.InsertProbabilistic("Student", {aid, fp - 1 + j},
                             student_w[static_cast<size_t>(j)]);
    }
  }

  auto in_student_window = [&first_pub](int aid, int year) {
    const int fp = first_pub[static_cast<size_t>(aid)];
    return year >= fp - 1 && year <= fp + 5;
  };

  // Advisor(aid1, aid2)[exp(.25 count(pid))]: co-publications while aid1 was
  // a student and aid2 was not, count > threshold. The window counting is
  // sharded over the co-authorship pairs; rows are emitted in pair order.
  using CopubEntry = decltype(em.copubs)::value_type;
  std::vector<const CopubEntry*> copub_entries;
  copub_entries.reserve(em.copubs.size());
  for (const auto& entry : em.copubs) copub_entries.push_back(&entry);

  std::vector<std::array<int, 2>> window_counts(copub_entries.size());
  ParallelForChunked(threads, copub_entries.size(), 256, [&](size_t i) {
    const auto& [pair, pubs] = *copub_entries[i];
    for (int dir = 0; dir < 2; ++dir) {
      const int a = dir == 0 ? pair.first : pair.second;
      const int b = dir == 0 ? pair.second : pair.first;
      int count = 0;
      for (const auto& [pid, year] : pubs) {
        if (in_student_window(a, year) && !in_student_window(b, year)) ++count;
      }
      window_counts[i][static_cast<size_t>(dir)] = count;
    }
  });
  size_t advisor_rows = 0;
  for (size_t i = 0; i < copub_entries.size(); ++i) {
    const auto& pair = copub_entries[i]->first;
    for (int dir = 0; dir < 2; ++dir) {
      const int count = window_counts[i][static_cast<size_t>(dir)];
      if (count > config.advisor_copub_threshold) {
        const int a = dir == 0 ? pair.first : pair.second;
        const int b = dir == 0 ? pair.second : pair.first;
        db.InsertProbabilistic("Advisor", {a, b}, std::exp(0.25 * count));
        ++advisor_rows;
      }
    }
  }

  // Affiliation(aid, inst)[exp(.1 count(pid))]: recent co-publication with
  // affiliated authors, for authors without a declared affiliation. Each
  // pair contributes its own pids, so per-(author, institute) counts are
  // sums of the sharded per-pair recent-pub counts.
  if (config.include_affiliation) {
    std::vector<std::array<int, 2>> recent_counts(copub_entries.size());
    ParallelForChunked(threads, copub_entries.size(), 256, [&](size_t i) {
      const auto& [pair, pubs] = *copub_entries[i];
      for (int dir = 0; dir < 2; ++dir) {
        const int a = dir == 0 ? pair.first : pair.second;
        const int b = dir == 0 ? pair.second : pair.first;
        int count = 0;
        if (homepage_inst[static_cast<size_t>(a)] < 0 &&
            homepage_inst[static_cast<size_t>(b)] >= 0) {
          for (const auto& [pid, year] : pubs) {
            if (year > 2005) ++count;
          }
        }
        recent_counts[i][static_cast<size_t>(dir)] = count;
      }
    });
    std::map<std::pair<int, Value>, int64_t> affiliation_counts;
    for (size_t i = 0; i < copub_entries.size(); ++i) {
      const auto& pair = copub_entries[i]->first;
      for (int dir = 0; dir < 2; ++dir) {
        const int count = recent_counts[i][static_cast<size_t>(dir)];
        if (count == 0) continue;
        const int a = dir == 0 ? pair.first : pair.second;
        const int b = dir == 0 ? pair.second : pair.first;
        affiliation_counts[{a, homepage_inst[static_cast<size_t>(b)]}] += count;
      }
    }
    for (const auto& [key, count] : affiliation_counts) {
      db.InsertProbabilistic("Affiliation", {key.first, key.second},
                             std::exp(0.1 * static_cast<double>(count)));
    }
  }

  // --- MarkoViews --------------------------------------------------------
  Interner* dict = &db.dict();
  MVDB_ASSIGN_OR_RETURN(
      Ucq v1_def,
      ParseUcq("V1(aid1,aid2) :- Advisor(aid1,aid2), Student(aid1,year), "
               "Wrote(aid1,pid), Wrote(aid2,pid), Pub(pid,title,year).",
               dict));
  int v1_pid = -1;
  for (int i = 0; i < v1_def.num_vars(); ++i) {
    if (v1_def.var_names[static_cast<size_t>(i)] == "pid") v1_pid = i;
  }
  MVDB_RETURN_NOT_OK(mvdb->AddView(MarkoView(
      "V1", std::move(v1_def), v1_pid,
      [](std::span<const Value>, int64_t count) {
        return static_cast<double>(count) / 2.0;
      })));

  MVDB_ASSIGN_OR_RETURN(
      Ucq v2_def,
      ParseUcq("V2(aid1,aid2,aid3) :- Advisor(aid1,aid2), Advisor(aid1,aid3), "
               "aid2 != aid3.",
               dict));
  MVDB_RETURN_NOT_OK(
      mvdb->AddView(MarkoView::Constant("V2", std::move(v2_def), 0.0)));

  if (config.include_affiliation) {
    MVDB_ASSIGN_OR_RETURN(
        Ucq v3_def,
        ParseUcq("V3(aid1,aid2,inst) :- Affiliation(aid1,inst), "
                 "Affiliation(aid2,inst), Wrote(aid1,pid), Wrote(aid2,pid), "
                 "Pub(pid,title,year), year > 2004, aid1 != aid2.",
                 dict));
    int v3_pid = -1;
    for (int i = 0; i < v3_def.num_vars(); ++i) {
      if (v3_def.var_names[static_cast<size_t>(i)] == "pid") v3_pid = i;
    }
    const int threshold = config.v3_copub_threshold;
    MVDB_RETURN_NOT_OK(mvdb->AddView(MarkoView(
        "V3", std::move(v3_def), v3_pid,
        [threshold](std::span<const Value>, int64_t count) {
          // The paper's count(pid) > 30 gate: below the threshold the tuple
          // induces no feature (weight 1 = independence).
          return count > threshold ? static_cast<double>(count) / 5.0 : 1.0;
        })));
  }

  if (stats != nullptr) {
    stats->authors = db.Find("Author")->size();
    stats->wrote = db.Find("Wrote")->size();
    stats->pubs = db.Find("Pub")->size();
    stats->homepages = db.Find("HomePage")->size();
    stats->first_pub = db.Find("FirstPub")->size();
    stats->dblp_affiliation = db.Find("DBLPAffiliation")->size();
    stats->student = db.Find("Student")->size();
    stats->advisor = advisor_rows;
    stats->affiliation =
        config.include_affiliation ? db.Find("Affiliation")->size() : 0;
  }
  return mvdb;
}

void CollectViewStats(const Mvdb& mvdb, DblpStats* stats) {
  const auto& tuples = mvdb.view_tuples();
  for (size_t i = 0; i < mvdb.views().size(); ++i) {
    const std::string& name = mvdb.views()[i].name();
    if (name == "V1") stats->v1 = tuples[i].size();
    if (name == "V2") stats->v2 = tuples[i].size();
    if (name == "V3") stats->v3 = tuples[i].size();
  }
}

namespace {

Ucq MustParse(const std::string& text, Interner* dict) {
  auto result = ParseUcq(text, dict);
  MVDB_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace

Ucq StudentsOfAdvisorQuery(Mvdb* mvdb, const std::string& advisor_name) {
  return MustParse(
      "Q(aid) :- Student(aid,y), Advisor(aid,a1), Author(aid,n), "
      "Author(a1,n1), n1 = \"" + advisor_name + "\".",
      &mvdb->db().dict());
}

Ucq AdvisorOfStudentQuery(Mvdb* mvdb, const std::string& student_name) {
  return MustParse(
      "Q(a1) :- Student(aid,y), Advisor(aid,a1), Author(aid,n), "
      "Author(a1,n1), n = \"" + student_name + "\".",
      &mvdb->db().dict());
}

Ucq AffiliationOfAuthorQuery(Mvdb* mvdb, const std::string& author_name) {
  return MustParse(
      "Q(inst) :- Affiliation(aid,inst), Author(aid,n), n = \"" +
          author_name + "\".",
      &mvdb->db().dict());
}

}  // namespace dblp
}  // namespace mvdb
