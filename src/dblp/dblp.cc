#include "dblp/dblp.h"

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "query/parser.h"
#include "util/logging.h"
#include "util/rng.h"

namespace mvdb {
namespace dblp {
namespace {

// Publication ids live in their own integer namespace so that separator
// domains never mix author ids with paper ids.
constexpr Value kPidBase = 10'000'000;

struct Generator {
  const DblpConfig& cfg;
  Rng rng;
  Database* db;

  std::vector<int> first_pub;          // per aid (1-based; [0] unused)
  std::vector<bool> is_advisor;
  std::vector<int64_t> homepage_inst;  // interned inst id or -1
  Value next_pid = kPidBase;

  // Co-authorship: unordered pair -> publication years (one entry per pid).
  std::map<std::pair<int, int>, std::vector<std::pair<Value, int>>> copubs;

  explicit Generator(const DblpConfig& c, Database* d)
      : cfg(c), rng(c.seed), db(d) {}

  Value AddPub(int year) {
    const Value pid = next_pid++;
    db->InsertDeterministic("Pub", {pid, pid, year});  // title == pid
    return pid;
  }

  void AddWrote(int aid, Value pid) {
    db->InsertDeterministic("Wrote", {aid, pid});
  }

  void AddCopub(int a, int b, int year) {
    const Value pid = AddPub(year);
    AddWrote(a, pid);
    AddWrote(b, pid);
    const auto key = std::minmax(a, b);
    copubs[{key.first, key.second}].push_back({pid, year});
  }

  bool InStudentWindow(int aid, int year) const {
    const int fp = first_pub[static_cast<size_t>(aid)];
    return year >= fp - 1 && year <= fp + 5;
  }
};

}  // namespace

std::string AuthorName(int aid) { return "author" + std::to_string(aid); }

StatusOr<std::unique_ptr<Mvdb>> BuildDblpMvdb(const DblpConfig& config,
                                              DblpStats* stats) {
  auto mvdb = std::make_unique<Mvdb>();
  Database& db = mvdb->db();

  // --- Schema ---------------------------------------------------------
  MVDB_RETURN_NOT_OK(db.CreateTable("Author", {"aid", "name"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("Wrote", {"aid", "pid"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("Pub", {"pid", "title", "year"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("HomePage", {"aid", "url"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("FirstPub", {"aid", "year"}, false).status());
  MVDB_RETURN_NOT_OK(
      db.CreateTable("DBLPAffiliation", {"aid", "inst"}, false).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("Student", {"aid", "year"}, true).status());
  MVDB_RETURN_NOT_OK(db.CreateTable("Advisor", {"aid1", "aid2"}, true).status());
  MVDB_RETURN_NOT_OK(
      db.CreateTable("Affiliation", {"aid", "inst"}, true).status());

  Generator gen(config, &db);
  const int n = config.num_authors;
  gen.first_pub.assign(static_cast<size_t>(n) + 1, 0);
  gen.is_advisor.assign(static_cast<size_t>(n) + 1, false);
  gen.homepage_inst.assign(static_cast<size_t>(n) + 1, -1);

  // --- Authors, roles, first-publication years -------------------------
  // Advisors publish early (window ends before 2000); students publish from
  // 2000 on, so advisor windows never overlap student windows.
  std::vector<int> advisors, juniors;
  for (int aid = 1; aid <= n; ++aid) {
    db.InsertDeterministic("Author", {aid, db.Str(AuthorName(aid))});
    const bool advisor = gen.rng.Uniform() < config.advisor_fraction;
    gen.is_advisor[static_cast<size_t>(aid)] = advisor;
    if (advisor) {
      gen.first_pub[static_cast<size_t>(aid)] =
          static_cast<int>(gen.rng.Range(1985, 1992));
      advisors.push_back(aid);
    } else {
      gen.first_pub[static_cast<size_t>(aid)] =
          static_cast<int>(gen.rng.Range(2000, 2008));
      juniors.push_back(aid);
    }
  }

  // --- Advisor/student co-publication clusters -------------------------
  size_t junior_cursor = 0;
  for (int adv : advisors) {
    const int num_students =
        1 + static_cast<int>(gen.rng.Below(
                static_cast<uint64_t>(config.max_students_per_advisor)));
    for (int s = 0; s < num_students && junior_cursor < juniors.size(); ++s) {
      const int student = juniors[junior_cursor++];
      const int fp = gen.first_pub[static_cast<size_t>(student)];
      const int k = static_cast<int>(
          gen.rng.Range(config.min_copubs, config.max_copubs));
      for (int p = 0; p < k; ++p) {
        gen.AddCopub(student, adv, fp + static_cast<int>(gen.rng.Below(5)));
      }
      // Occasionally a second advisor, so the V2 denial view has work to do.
      if (gen.rng.Uniform() < 0.15 && advisors.size() > 1) {
        int adv2 = advisors[gen.rng.Below(advisors.size())];
        if (adv2 != adv) {
          for (int p = 0; p <= config.advisor_copub_threshold; ++p) {
            gen.AddCopub(student, adv2, fp + static_cast<int>(gen.rng.Below(5)));
          }
        }
      }
    }
  }

  // --- Random solo papers ----------------------------------------------
  for (int aid = 1; aid <= n; ++aid) {
    for (int p = 0; p < config.random_papers_per_author; ++p) {
      const int year = gen.first_pub[static_cast<size_t>(aid)] +
                       static_cast<int>(gen.rng.Below(8));
      const Value pid = gen.AddPub(year);
      gen.AddWrote(aid, pid);
    }
  }

  // --- Home pages and declared affiliations ----------------------------
  for (int aid = 1; aid <= n; ++aid) {
    if (gen.rng.Uniform() >= config.homepage_fraction) continue;
    const int inst_no = static_cast<int>(gen.rng.Below(
        static_cast<uint64_t>(config.num_institutes)));
    const Value inst = db.Str("www.inst" + std::to_string(inst_no) + ".edu");
    const Value url =
        db.Str("www.inst" + std::to_string(inst_no) + ".edu/~a" +
               std::to_string(aid));
    gen.homepage_inst[static_cast<size_t>(aid)] = inst;
    db.InsertDeterministic("HomePage", {aid, url});
    db.InsertDeterministic("DBLPAffiliation", {aid, inst});
  }

  // --- Prolific pairs feeding V3 ----------------------------------------
  // Two authors without home pages who both co-publish recently with an
  // institute "hub" (giving them inferred affiliations) and prolifically
  // with each other (pushing V3's count(pid) over the threshold).
  if (config.include_affiliation && n >= 8) {
    for (int pair_no = 0; pair_no < config.num_prolific_pairs; ++pair_no) {
      // Deterministically pick distinct junior authors without home pages.
      int u = -1, v = -1, hub = -1;
      for (int tries = 0; tries < 200 && (u < 0 || v < 0 || hub < 0); ++tries) {
        const int cand = static_cast<int>(gen.rng.Range(1, n));
        if (hub < 0 && gen.homepage_inst[static_cast<size_t>(cand)] >= 0) {
          hub = cand;
          continue;
        }
        if (gen.homepage_inst[static_cast<size_t>(cand)] >= 0) continue;
        if (gen.is_advisor[static_cast<size_t>(cand)]) continue;
        if (u < 0 && cand != v) u = cand;
        else if (v < 0 && cand != u) v = cand;
      }
      if (u < 0 || v < 0 || hub < 0) break;
      // Recent hub co-publications (year > 2005) -> inferred affiliation.
      for (int p = 0; p < 3; ++p) {
        gen.AddCopub(u, hub, 2006 + static_cast<int>(gen.rng.Below(4)));
        gen.AddCopub(v, hub, 2006 + static_cast<int>(gen.rng.Below(4)));
      }
      // Prolific recent co-publication between u and v (year > 2004).
      for (int p = 0; p <= config.v3_copub_threshold; ++p) {
        gen.AddCopub(u, v, 2005 + static_cast<int>(gen.rng.Below(5)));
      }
    }
  }

  // --- Derived views -----------------------------------------------------
  for (int aid = 1; aid <= n; ++aid) {
    db.InsertDeterministic("FirstPub",
                           {aid, gen.first_pub[static_cast<size_t>(aid)]});
  }

  // --- Probabilistic tables (Fig. 1 weight expressions) ------------------
  // Student(aid, year)[exp(1 - .15 (year - year'))], year' - 1 <= year <=
  // year' + 5.
  for (int aid = 1; aid <= n; ++aid) {
    const int fp = gen.first_pub[static_cast<size_t>(aid)];
    for (int year = fp - 1; year <= fp + 5; ++year) {
      const double w = std::exp(1.0 - 0.15 * (year - fp));
      db.InsertProbabilistic("Student", {aid, year}, w);
    }
  }

  // Advisor(aid1, aid2)[exp(.25 count(pid))]: co-publications while aid1 was
  // a student and aid2 was not, count > threshold.
  size_t advisor_rows = 0;
  for (const auto& [pair, pubs] : gen.copubs) {
    for (const auto& [a, b] : {pair, std::make_pair(pair.second, pair.first)}) {
      int count = 0;
      for (const auto& [pid, year] : pubs) {
        if (gen.InStudentWindow(a, year) && !gen.InStudentWindow(b, year)) {
          ++count;
        }
      }
      if (count > config.advisor_copub_threshold) {
        db.InsertProbabilistic("Advisor", {a, b}, std::exp(0.25 * count));
        ++advisor_rows;
      }
    }
  }

  // Affiliation(aid, inst)[exp(.1 count(pid))]: recent co-publication with
  // affiliated authors, for authors without a declared affiliation.
  std::map<std::pair<int, Value>, std::set<Value>> affiliation_pids;
  if (config.include_affiliation) {
    for (const auto& [pair, pubs] : gen.copubs) {
      for (const auto& [a, b] : {pair, std::make_pair(pair.second, pair.first)}) {
        if (gen.homepage_inst[static_cast<size_t>(a)] >= 0) continue;
        const int64_t inst = gen.homepage_inst[static_cast<size_t>(b)];
        if (inst < 0) continue;
        for (const auto& [pid, year] : pubs) {
          if (year > 2005) affiliation_pids[{a, inst}].insert(pid);
        }
      }
    }
    for (const auto& [key, pids] : affiliation_pids) {
      db.InsertProbabilistic("Affiliation", {key.first, key.second},
                             std::exp(0.1 * static_cast<double>(pids.size())));
    }
  }

  // --- MarkoViews --------------------------------------------------------
  Interner* dict = &db.dict();
  MVDB_ASSIGN_OR_RETURN(
      Ucq v1_def,
      ParseUcq("V1(aid1,aid2) :- Advisor(aid1,aid2), Student(aid1,year), "
               "Wrote(aid1,pid), Wrote(aid2,pid), Pub(pid,title,year).",
               dict));
  int v1_pid = -1;
  for (int i = 0; i < v1_def.num_vars(); ++i) {
    if (v1_def.var_names[static_cast<size_t>(i)] == "pid") v1_pid = i;
  }
  MVDB_RETURN_NOT_OK(mvdb->AddView(MarkoView(
      "V1", std::move(v1_def), v1_pid,
      [](std::span<const Value>, int64_t count) {
        return static_cast<double>(count) / 2.0;
      })));

  MVDB_ASSIGN_OR_RETURN(
      Ucq v2_def,
      ParseUcq("V2(aid1,aid2,aid3) :- Advisor(aid1,aid2), Advisor(aid1,aid3), "
               "aid2 != aid3.",
               dict));
  MVDB_RETURN_NOT_OK(
      mvdb->AddView(MarkoView::Constant("V2", std::move(v2_def), 0.0)));

  if (config.include_affiliation) {
    MVDB_ASSIGN_OR_RETURN(
        Ucq v3_def,
        ParseUcq("V3(aid1,aid2,inst) :- Affiliation(aid1,inst), "
                 "Affiliation(aid2,inst), Wrote(aid1,pid), Wrote(aid2,pid), "
                 "Pub(pid,title,year), year > 2004, aid1 != aid2.",
                 dict));
    int v3_pid = -1;
    for (int i = 0; i < v3_def.num_vars(); ++i) {
      if (v3_def.var_names[static_cast<size_t>(i)] == "pid") v3_pid = i;
    }
    const int threshold = config.v3_copub_threshold;
    MVDB_RETURN_NOT_OK(mvdb->AddView(MarkoView(
        "V3", std::move(v3_def), v3_pid,
        [threshold](std::span<const Value>, int64_t count) {
          // The paper's count(pid) > 30 gate: below the threshold the tuple
          // induces no feature (weight 1 = independence).
          return count > threshold ? static_cast<double>(count) / 5.0 : 1.0;
        })));
  }

  if (stats != nullptr) {
    stats->authors = db.Find("Author")->size();
    stats->wrote = db.Find("Wrote")->size();
    stats->pubs = db.Find("Pub")->size();
    stats->homepages = db.Find("HomePage")->size();
    stats->first_pub = db.Find("FirstPub")->size();
    stats->dblp_affiliation = db.Find("DBLPAffiliation")->size();
    stats->student = db.Find("Student")->size();
    stats->advisor = advisor_rows;
    stats->affiliation =
        config.include_affiliation ? db.Find("Affiliation")->size() : 0;
  }
  return mvdb;
}

void CollectViewStats(const Mvdb& mvdb, DblpStats* stats) {
  const auto& tuples = mvdb.view_tuples();
  for (size_t i = 0; i < mvdb.views().size(); ++i) {
    const std::string& name = mvdb.views()[i].name();
    if (name == "V1") stats->v1 = tuples[i].size();
    if (name == "V2") stats->v2 = tuples[i].size();
    if (name == "V3") stats->v3 = tuples[i].size();
  }
}

namespace {

Ucq MustParse(const std::string& text, Interner* dict) {
  auto result = ParseUcq(text, dict);
  MVDB_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace

Ucq StudentsOfAdvisorQuery(Mvdb* mvdb, const std::string& advisor_name) {
  return MustParse(
      "Q(aid) :- Student(aid,y), Advisor(aid,a1), Author(aid,n), "
      "Author(a1,n1), n1 = \"" + advisor_name + "\".",
      &mvdb->db().dict());
}

Ucq AdvisorOfStudentQuery(Mvdb* mvdb, const std::string& student_name) {
  return MustParse(
      "Q(a1) :- Student(aid,y), Advisor(aid,a1), Author(aid,n), "
      "Author(a1,n1), n = \"" + student_name + "\".",
      &mvdb->db().dict());
}

Ucq AffiliationOfAuthorQuery(Mvdb* mvdb, const std::string& author_name) {
  return MustParse(
      "Q(inst) :- Affiliation(aid,inst), Author(aid,n), n = \"" +
          author_name + "\".",
      &mvdb->db().dict());
}

}  // namespace dblp
}  // namespace mvdb
