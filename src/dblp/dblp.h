// Copyright 2026 The MarkoView Authors.
//
// Synthetic DBLP workload (Fig. 1). The paper runs on a DBLP snapshot we do
// not have; this generator reproduces the *statistical shape* the
// experiments depend on instead (see DESIGN.md, "DBLP substitution
// table"):
//
//   * base tables Author(aid,name), Wrote(aid,pid), Pub(pid,title,year),
//     HomePage(aid,url) with planted advisor/student co-authorship clusters;
//   * derived views FirstPub(aid,year), DBLPAffiliation(aid,inst);
//   * probabilistic tables Student / Advisor / Affiliation with exactly the
//     weight expressions of Fig. 1 (exp(1-.15(year-year')),
//     exp(.25*count(pid)), exp(.1*count(pid)));
//   * MarkoViews V1 (advisor/co-publication correlation, weight count/2),
//     V2 (denial: one advisor per person, weight 0), V3 (common affiliation
//     for prolific pairs, weight count/5 above a threshold).
//
// The scale knob is `num_authors` — the paper's "aid domain", swept from
// 1000 to 10000 in Figures 4-9 and large for Figures 10-11.
//
// Generation is a plan/emit pipeline: all random decisions are drawn from
// per-entity RNG streams (seeded by entity id, never by draw order) in
// thread-sharded planning passes, then the tables are emitted in one fixed
// serial order. Output is therefore bit-identical for every `num_threads`.

#ifndef MVDB_DBLP_DBLP_H_
#define MVDB_DBLP_DBLP_H_

#include <memory>
#include <string>

#include "core/mvdb.h"
#include "util/status.h"

namespace mvdb {
namespace dblp {

struct DblpConfig {
  int num_authors = 1000;          ///< the "aid domain" scale knob
  double advisor_fraction = 0.10;  ///< share of authors who advise students
  int max_students_per_advisor = 3;
  int min_copubs = 3;              ///< papers per advisor/student pair (min)
  int max_copubs = 6;              ///< papers per advisor/student pair (max)
  int random_papers_per_author = 1;
  int num_institutes = 12;
  double homepage_fraction = 0.06; ///< share of authors with a known page
  /// V3's count(pid) > threshold; the paper uses 30 on real DBLP, scaled
  /// down by default so planted prolific pairs stay cheap to generate.
  int v3_copub_threshold = 5;
  int num_prolific_pairs = 4;      ///< pairs planted to exceed the threshold
  /// Advisor probabilistic table requires count(pid) > this (paper: 2).
  int advisor_copub_threshold = 2;
  bool include_affiliation = true; ///< generate Affiliation + V3 machinery
  uint64_t seed = 7;
  /// Worker threads for the generator's planning phases. Every random
  /// decision comes from a per-entity RNG stream (seeded by the entity id,
  /// not by draw order), so the generated MVDB is bit-identical for every
  /// thread count — dblp_determinism_test asserts {1,2,8} agree and pins
  /// the default-config dataset with a golden hash. <= 0 = one per
  /// hardware thread.
  int num_threads = 1;
};

/// Cardinalities of everything generated — the Table 1 / Fig. 1 report.
struct DblpStats {
  size_t authors = 0, wrote = 0, pubs = 0, homepages = 0;
  size_t first_pub = 0, dblp_affiliation = 0;
  size_t student = 0, advisor = 0, affiliation = 0;
  size_t v1 = 0, v2 = 0, v3 = 0;
};

/// Builds the full MVDB: base tables, probabilistic tables, and the three
/// MarkoViews (registered but not yet translated — call
/// mvdb->Translate() or compile through QueryEngine). `stats`, if non-null,
/// receives the cardinalities *excluding* view sizes (those are known after
/// translation; use CollectViewStats).
StatusOr<std::unique_ptr<Mvdb>> BuildDblpMvdb(const DblpConfig& config,
                                              DblpStats* stats);

/// Fills in v1/v2/v3 sizes after translation.
void CollectViewStats(const Mvdb& mvdb, DblpStats* stats);

/// The paper's Fig. 2(a) query: students advised by the author with this
/// name — Q(aid) :- Student(aid,y), Advisor(aid,a1), Author(aid,n),
/// Author(a1,n1), n1 = name. (Our Student carries the year attribute, which
/// is projected out existentially.)
Ucq StudentsOfAdvisorQuery(Mvdb* mvdb, const std::string& advisor_name);

/// Fig. 5's converse query: the advisor of the named student.
Ucq AdvisorOfStudentQuery(Mvdb* mvdb, const std::string& student_name);

/// Fig. 11's query: affiliations of the named author.
Ucq AffiliationOfAuthorQuery(Mvdb* mvdb, const std::string& author_name);

/// Name of author `aid` as generated ("author<aid>").
std::string AuthorName(int aid);

}  // namespace dblp
}  // namespace mvdb

#endif  // MVDB_DBLP_DBLP_H_
