#include "relational/database.h"

namespace mvdb {

StatusOr<Table*> Database::CreateTable(const std::string& name,
                                       std::vector<std::string> attrs,
                                       bool probabilistic) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(attrs), probabilistic);
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  order_.push_back(name);
  return ptr;
}

const Table* Database::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::FindMutable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

RowId Database::InsertDeterministic(const std::string& table,
                                    std::span<const Value> row) {
  Table* t = FindMutable(table);
  MVDB_CHECK(t != nullptr) << "no such table: " << table;
  MVDB_CHECK(!t->probabilistic())
      << "InsertDeterministic on probabilistic table " << table;
  return t->AppendRow(row, kCertainWeight, kNoVar);
}

VarId Database::InsertProbabilistic(const std::string& table,
                                    std::span<const Value> row, double weight) {
  Table* t = FindMutable(table);
  MVDB_CHECK(t != nullptr) << "no such table: " << table;
  MVDB_CHECK(t->probabilistic())
      << "InsertProbabilistic on deterministic table " << table;
  VarId v = static_cast<VarId>(var_weights_.size());
  RowId r = t->AppendRow(row, weight, v);
  var_weights_.push_back(weight);
  var_tuples_.push_back(TupleRef{t, r});
  return v;
}

void Database::set_var_weight(VarId v, double w) {
  MVDB_CHECK_GE(v, 0);
  MVDB_CHECK_LT(static_cast<size_t>(v), var_weights_.size());
  var_weights_[static_cast<size_t>(v)] = w;
}

void Database::WarmIndexes() const {
  for (const std::string& name : order_) {
    const Table* t = Find(name);
    if (t != nullptr) t->WarmIndexes();
  }
}

std::vector<double> Database::VarProbs() const {
  std::vector<double> probs(var_weights_.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    probs[i] = WeightToProb(var_weights_[i]);
  }
  return probs;
}

}  // namespace mvdb
