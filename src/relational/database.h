// Copyright 2026 The MarkoView Authors.
//
// Database: a named collection of deterministic and probabilistic tables,
// the global Boolean-variable registry (VarId -> tuple, weight), and the
// string dictionary. This is the "tuple-independent database" substrate
// (Definition 2): the pair (Tup0, w0). MVDBs (src/core) are built on top by
// adding MarkoViews.

#ifndef MVDB_RELATIONAL_DATABASE_H_
#define MVDB_RELATIONAL_DATABASE_H_

#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/table.h"
#include "relational/types.h"
#include "util/interner.h"
#include "util/logging.h"
#include "util/status.h"

namespace mvdb {

/// Identifies one probabilistic tuple: which table, which row.
struct TupleRef {
  const Table* table = nullptr;
  RowId row = 0;
};

/// A tuple-independent probabilistic database (INDB).
///
/// Weights follow Definition 2: each probabilistic tuple t has a real weight
/// w0(t); its marginal probability is w0/(1+w0). Weights may be negative
/// (Section 3.3) — this is essential for the MVDB->INDB translation.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates a table. Fails if the name exists.
  StatusOr<Table*> CreateTable(const std::string& name,
                               std::vector<std::string> attrs,
                               bool probabilistic);

  /// Returns the table or nullptr.
  const Table* Find(const std::string& name) const;
  Table* FindMutable(const std::string& name);

  /// Appends a deterministic row.
  RowId InsertDeterministic(const std::string& table, std::span<const Value> row);
  RowId InsertDeterministic(const std::string& table,
                            std::initializer_list<Value> row) {
    return InsertDeterministic(table, std::span<const Value>(row.begin(), row.size()));
  }

  /// Appends a probabilistic row with the given weight (odds). Allocates and
  /// returns its Boolean variable id.
  VarId InsertProbabilistic(const std::string& table, std::span<const Value> row,
                            double weight);
  VarId InsertProbabilistic(const std::string& table,
                            std::initializer_list<Value> row, double weight) {
    return InsertProbabilistic(table, std::span<const Value>(row.begin(), row.size()),
                               weight);
  }

  /// Number of Boolean variables allocated so far.
  size_t num_vars() const { return var_weights_.size(); }

  /// Weight of variable v.
  double var_weight(VarId v) const { return var_weights_[static_cast<size_t>(v)]; }

  /// Overrides the weight of variable v (used by the translation when a view
  /// weight is updated, and by tests).
  void set_var_weight(VarId v, double w);

  /// Marginal probability of variable v; may lie outside [0,1] for
  /// translated NV variables (Section 3.3).
  double var_prob(VarId v) const { return WeightToProb(var_weight(v)); }

  /// The probabilistic tuple owning variable v.
  const TupleRef& var_tuple(VarId v) const { return var_tuples_[static_cast<size_t>(v)]; }

  /// Vector of marginal probabilities indexed by VarId — the input the
  /// probability evaluators (brute force, OBDD, safe plan) consume.
  std::vector<double> VarProbs() const;

  /// All table names, in creation order.
  const std::vector<std::string>& table_names() const { return order_; }

  /// Eagerly builds every table's per-column hash indexes so subsequent
  /// Probe() calls are read-only (see Table::WarmIndexes) — required before
  /// evaluating queries from multiple threads.
  void WarmIndexes() const;

  /// String dictionary shared by all tables.
  Interner& dict() { return dict_; }
  const Interner& dict() const { return dict_; }

  /// Convenience: intern a string constant into a Value.
  Value Str(std::string_view s) { return dict_.Intern(s); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> order_;
  std::vector<double> var_weights_;
  std::vector<TupleRef> var_tuples_;
  Interner dict_;
};

}  // namespace mvdb

#endif  // MVDB_RELATIONAL_DATABASE_H_
