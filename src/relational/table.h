// Copyright 2026 The MarkoView Authors.
//
// In-memory table: flat row store with per-column hash indexes, plus the
// probabilistic annotations (per-tuple weight and Boolean variable id) that
// make a relation a "probabilistic table" in the sense of Section 2.1.

#ifndef MVDB_RELATIONAL_TABLE_H_
#define MVDB_RELATIONAL_TABLE_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/types.h"
#include "util/logging.h"

namespace mvdb {

/// One relation instance. Rows are stored in a single flat Value vector with
/// stride = arity (cache-friendly scans). A table is either deterministic
/// (every tuple certain, no variables) or probabilistic (each tuple carries a
/// weight and a VarId).
class Table {
 public:
  /// `attrs` are attribute names, purely for printing and for binding
  /// permutations pi by name.
  Table(std::string name, std::vector<std::string> attrs, bool probabilistic)
      : name_(std::move(name)),
        attrs_(std::move(attrs)),
        probabilistic_(probabilistic) {
    MVDB_CHECK_GT(attrs_.size(), 0u);
  }

  const std::string& name() const { return name_; }
  size_t arity() const { return attrs_.size(); }
  const std::vector<std::string>& attrs() const { return attrs_; }
  bool probabilistic() const { return probabilistic_; }
  size_t size() const { return data_.size() / arity(); }

  /// Appends a row. For probabilistic tables the caller (Database) supplies
  /// the weight and the freshly allocated variable id; deterministic tables
  /// pass kCertainWeight / kNoVar. Invalidates indexes.
  RowId AppendRow(std::span<const Value> row, double weight, VarId var) {
    MVDB_CHECK_EQ(row.size(), arity());
    RowId id = static_cast<RowId>(size());
    data_.insert(data_.end(), row.begin(), row.end());
    if (probabilistic_) {
      weights_.push_back(weight);
      vars_.push_back(var);
    }
    indexes_.clear();
    return id;
  }

  /// Read access to one row.
  std::span<const Value> Row(RowId r) const {
    return std::span<const Value>(data_.data() + static_cast<size_t>(r) * arity(),
                                  arity());
  }

  Value At(RowId r, size_t col) const {
    MVDB_DCHECK(col < arity());
    return data_[static_cast<size_t>(r) * arity() + col];
  }

  /// Weight of tuple r (kCertainWeight for deterministic tables).
  double weight(RowId r) const {
    return probabilistic_ ? weights_[r] : kCertainWeight;
  }

  /// Boolean variable of tuple r (kNoVar for deterministic tables).
  VarId var(RowId r) const { return probabilistic_ ? vars_[r] : kNoVar; }

  /// Rows whose column `col` equals `v`. Builds the hash index on first use.
  /// NOT thread-safe on the building path — call WarmIndexes() before
  /// probing from multiple threads.
  const std::vector<RowId>& Probe(size_t col, Value v) const;

  /// Eagerly builds every per-column hash index. After this, Probe() is a
  /// pure lookup and safe to call concurrently (until the next AppendRow).
  /// The parallel MV-index build warms all tables before fanning out.
  void WarmIndexes() const;

  /// Sorted distinct values of a column (the column's active domain).
  std::vector<Value> DistinctValues(size_t col) const;

  /// Looks up a full row; returns true and sets *out if present.
  bool FindRow(std::span<const Value> row, RowId* out) const;

 private:
  /// Builds (if absent) and returns the per-column hash index.
  const std::unordered_map<Value, std::vector<RowId>>& EnsureIndex(
      size_t col) const;

  std::string name_;
  std::vector<std::string> attrs_;
  bool probabilistic_;
  std::vector<Value> data_;       // flat, stride = arity
  std::vector<double> weights_;   // parallel to rows iff probabilistic
  std::vector<VarId> vars_;       // parallel to rows iff probabilistic

  // Lazily built per-column hash indexes: indexes_[col][value] -> row ids.
  mutable std::unordered_map<size_t,
                             std::unordered_map<Value, std::vector<RowId>>>
      indexes_;
  static const std::vector<RowId> kEmptyRows;
};

}  // namespace mvdb

#endif  // MVDB_RELATIONAL_TABLE_H_
