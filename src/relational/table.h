// Copyright 2026 The MarkoView Authors.
//
// In-memory table: flat row store with per-column hash-grouped join indexes,
// plus the probabilistic annotations (per-tuple weight and Boolean variable
// id) that make a relation a "probabilistic table" in the sense of
// Section 2.1.

#ifndef MVDB_RELATIONAL_TABLE_H_
#define MVDB_RELATIONAL_TABLE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "relational/types.h"
#include "util/logging.h"

namespace mvdb {

/// One relation instance. Rows are stored in a single flat Value vector with
/// stride = arity (cache-friendly scans). A table is either deterministic
/// (every tuple certain, no variables) or probabilistic (each tuple carries a
/// weight and a VarId).
///
/// Probes go through per-column *hash-grouped* indexes — the build side of a
/// classic hash join, laid out flat: one open-addressed value table mapping
/// each distinct value to a [begin, end) range of a single row-id array
/// grouped by value. Building is two linear passes (count, scatter); probing
/// is one hash lookup returning a contiguous span. No per-value heap
/// allocations, unlike a map-of-vectors layout, which at DBLP scale spent
/// the translation phase in malloc.
class Table {
 public:
  /// `attrs` are attribute names, purely for printing and for binding
  /// permutations pi by name.
  Table(std::string name, std::vector<std::string> attrs, bool probabilistic)
      : name_(std::move(name)),
        attrs_(std::move(attrs)),
        probabilistic_(probabilistic) {
    MVDB_CHECK_GT(attrs_.size(), 0u);
  }

  const std::string& name() const { return name_; }
  size_t arity() const { return attrs_.size(); }
  const std::vector<std::string>& attrs() const { return attrs_; }
  bool probabilistic() const { return probabilistic_; }
  size_t size() const { return data_.size() / arity(); }

  /// Appends a row. For probabilistic tables the caller (Database) supplies
  /// the weight and the freshly allocated variable id; deterministic tables
  /// pass kCertainWeight / kNoVar. Invalidates indexes.
  RowId AppendRow(std::span<const Value> row, double weight, VarId var) {
    MVDB_CHECK_EQ(row.size(), arity());
    RowId id = static_cast<RowId>(size());
    data_.insert(data_.end(), row.begin(), row.end());
    if (probabilistic_) {
      weights_.push_back(weight);
      vars_.push_back(var);
    }
    for (auto& idx : indexes_) idx.reset();
    return id;
  }

  /// Read access to one row.
  std::span<const Value> Row(RowId r) const {
    return std::span<const Value>(data_.data() + static_cast<size_t>(r) * arity(),
                                  arity());
  }

  Value At(RowId r, size_t col) const {
    MVDB_DCHECK(col < arity());
    return data_[static_cast<size_t>(r) * arity() + col];
  }

  /// Weight of tuple r (kCertainWeight for deterministic tables).
  double weight(RowId r) const {
    return probabilistic_ ? weights_[r] : kCertainWeight;
  }

  /// Boolean variable of tuple r (kNoVar for deterministic tables).
  VarId var(RowId r) const { return probabilistic_ ? vars_[r] : kNoVar; }

  /// Rows whose column `col` equals `v`, ascending. Builds the hash-grouped
  /// index on first use. NOT thread-safe on the building path — call
  /// WarmIndexes() (or probe/plan once serially) before probing from
  /// multiple threads.
  std::span<const RowId> Probe(size_t col, Value v) const;

  /// Number of distinct values in column `col` — the fan-out statistic the
  /// cost-based join planner divides by. Builds the index on first use (the
  /// same structure a subsequent probe on that column needs anyway).
  size_t DistinctCount(size_t col) const;

  /// Eagerly builds every per-column index. After this, Probe() and
  /// DistinctCount() are pure lookups and safe to call concurrently (until
  /// the next AppendRow). The parallel pipeline warms all tables before
  /// fanning out.
  void WarmIndexes() const;

  /// Eagerly builds the index of one column (same concurrency contract as
  /// WarmIndexes; the planner warms exactly the columns its plan probes).
  void WarmIndex(size_t col) const { EnsureIndex(col); }

  /// Sorted distinct values of a column (the column's active domain).
  std::vector<Value> DistinctValues(size_t col) const;

  /// Looks up a full row; returns true and sets *out if present.
  bool FindRow(std::span<const Value> row, RowId* out) const;

  /// Selects the hardened index build (bounded-probe partitioning with
  /// growth on clustering, run cache for skewed keys, counting scratch
  /// reused across columns); false falls back to the legacy two-pass
  /// build. Probe/DistinctCount results are identical on both paths
  /// (table_skew_test pins it). Flipping drops already-built indexes.
  void set_use_fast_index_build(bool on) {
    use_fast_index_build_ = on;
    for (auto& idx : indexes_) idx.reset();
  }

 private:
  /// Hash-grouped index of one column: `row_ids` holds every row id grouped
  /// by column value (ascending within a group); `starts[s] .. starts[s+1]`
  /// delimits the group of the distinct value in slot s. `slots` is an
  /// open-addressed (linear probing, power-of-two) map from value to slot:
  /// entry = slot index or kEmptySlot.
  struct ColumnIndex {
    std::vector<Value> slot_values;   // distinct values, first-occurrence order
    std::vector<uint32_t> starts;     // size distinct+1, prefix offsets
    std::vector<RowId> row_ids;       // size() rows grouped by value
    std::vector<uint32_t> slots;      // open-addressed value -> slot
    uint32_t mask = 0;                // slots.size() - 1
    uint32_t max_probe = 0;           // max insert displacement; bounds Find

    static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

    /// Slot of `v` or kEmptySlot. Probes at most max_probe + 1 positions:
    /// every resident value sits within max_probe of its home slot, so a
    /// longer walk can only prove absence it already knows.
    uint32_t Find(Value v) const;
    size_t distinct() const { return slot_values.size(); }
  };

  /// Builds (if absent) and returns the per-column index.
  const ColumnIndex& EnsureIndex(size_t col) const;
  /// The hardened build: run cache for skewed keys, displacement-bounded
  /// probing with capacity growth when clustering exceeds the bound, and
  /// the per-row slot scratch reused across columns.
  void BuildIndexFast(ColumnIndex* idx, size_t col) const;
  /// The legacy two-pass build kept verbatim as the parity baseline.
  void BuildIndexLegacy(ColumnIndex* idx, size_t col) const;

  std::string name_;
  std::vector<std::string> attrs_;
  bool probabilistic_;
  std::vector<Value> data_;       // flat, stride = arity
  std::vector<double> weights_;   // parallel to rows iff probabilistic
  std::vector<VarId> vars_;       // parallel to rows iff probabilistic

  // Lazily built per-column indexes, slot = column (the planner consults
  // DistinctCount per candidate column on every tiny grounded block query,
  // so the lookup must be an array access, not a hash probe).
  mutable std::vector<std::unique_ptr<ColumnIndex>> indexes_;
  // slot_of_row scratch shared across column builds (same concurrency
  // contract as the builds themselves: serial, or behind WarmIndexes).
  mutable std::vector<uint32_t> index_scratch_;
  bool use_fast_index_build_ = true;
};

}  // namespace mvdb

#endif  // MVDB_RELATIONAL_TABLE_H_
