#include "relational/table.h"

#include <algorithm>

#include "util/flat_hash.h"

namespace mvdb {

namespace {

/// Insert displacement past which the fast build doubles the slot table
/// instead of probing on — the hybrid-hash bounded-probe partitioning rule.
/// At load factor <= 1/2 a cluster this long means pathological hashing,
/// not ordinary collisions.
constexpr uint32_t kProbeLimit = 64;

}  // namespace

uint32_t Table::ColumnIndex::Find(Value v) const {
  if (slots.empty()) return kEmptySlot;
  uint32_t pos = static_cast<uint32_t>(Mix64(static_cast<uint64_t>(v))) & mask;
  for (uint32_t d = 0; d <= max_probe; ++d) {
    const uint32_t s = slots[pos];
    if (s == kEmptySlot) return kEmptySlot;
    if (slot_values[s] == v) return s;
    pos = (pos + 1) & mask;
  }
  return kEmptySlot;
}

const Table::ColumnIndex& Table::EnsureIndex(size_t col) const {
  if (indexes_.empty()) indexes_.resize(arity());
  if (indexes_[col] != nullptr) return *indexes_[col];
  indexes_[col] = std::make_unique<ColumnIndex>();
  ColumnIndex& idx = *indexes_[col];
  if (use_fast_index_build_) {
    BuildIndexFast(&idx, col);
  } else {
    BuildIndexLegacy(&idx, col);
  }
  return idx;
}

void Table::BuildIndexLegacy(ColumnIndex* out, size_t col) const {
  ColumnIndex& idx = *out;
  const size_t n = size();

  // Open-addressed capacity: power of two, load factor <= 1/2.
  size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  idx.slots.assign(cap, ColumnIndex::kEmptySlot);
  idx.mask = static_cast<uint32_t>(cap - 1);
  // The legacy path never tracked displacements; the whole table is the
  // (trivially correct) probe bound.
  idx.max_probe = idx.mask;

  // Pass 1: assign each distinct value a slot (first-occurrence order) and
  // count group sizes into `starts` (shifted by one for the exclusive scan).
  std::vector<uint32_t>& counts = idx.starts;
  counts.reserve(n / 4 + 2);
  counts.push_back(0);
  const size_t stride = arity();
  const Value* column = data_.data() + col;
  std::vector<uint32_t> slot_of_row(n);
  for (size_t r = 0; r < n; ++r) {
    const Value v = column[r * stride];
    uint32_t pos = static_cast<uint32_t>(Mix64(static_cast<uint64_t>(v))) &
                   idx.mask;
    while (true) {
      const uint32_t s = idx.slots[pos];
      if (s == ColumnIndex::kEmptySlot) {
        const uint32_t fresh = static_cast<uint32_t>(idx.slot_values.size());
        idx.slots[pos] = fresh;
        idx.slot_values.push_back(v);
        counts.push_back(1);
        slot_of_row[r] = fresh;
        break;
      }
      if (idx.slot_values[s] == v) {
        ++counts[s + 1];
        slot_of_row[r] = s;
        break;
      }
      pos = (pos + 1) & idx.mask;
    }
  }

  // Exclusive scan turns counts into group start offsets.
  for (size_t s = 1; s < counts.size(); ++s) counts[s] += counts[s - 1];

  // Pass 2: scatter row ids into their groups. Scanning rows in order keeps
  // each group ascending, so Probe results match the old layout exactly.
  idx.row_ids.resize(n);
  std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    idx.row_ids[cursor[slot_of_row[r]]++] = static_cast<RowId>(r);
  }
}

void Table::BuildIndexFast(ColumnIndex* out, size_t col) const {
  ColumnIndex& idx = *out;
  const size_t n = size();

  size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  idx.slots.assign(cap, ColumnIndex::kEmptySlot);
  idx.mask = static_cast<uint32_t>(cap - 1);

  std::vector<uint32_t>& counts = idx.starts;
  counts.clear();
  counts.reserve(n / 4 + 2);
  counts.push_back(0);
  const size_t stride = arity();
  const Value* column = data_.data() + col;

  // Counting scratch reused across columns and rebuilds; the only per-build
  // allocation left is the index's own storage.
  std::vector<uint32_t>& slot_of_row = index_scratch_;
  slot_of_row.resize(n);

  // Repositions every assigned slot in a doubled table. Slot ids (and with
  // them starts/row_ids, i.e. everything Probe returns) are untouched —
  // only the value -> slot positions move.
  auto grow = [&idx]() {
    const size_t cap2 = (static_cast<size_t>(idx.mask) + 1) * 2;
    idx.slots.assign(cap2, ColumnIndex::kEmptySlot);
    idx.mask = static_cast<uint32_t>(cap2 - 1);
    idx.max_probe = 0;
    for (uint32_t s = 0; s < idx.slot_values.size(); ++s) {
      uint32_t pos = static_cast<uint32_t>(
                         Mix64(static_cast<uint64_t>(idx.slot_values[s]))) &
                     idx.mask;
      uint32_t d = 0;
      while (idx.slots[pos] != ColumnIndex::kEmptySlot) {
        pos = (pos + 1) & idx.mask;
        ++d;
      }
      idx.slots[pos] = s;
      if (d > idx.max_probe) idx.max_probe = d;
    }
  };

  // Run cache: skewed/sorted columns repeat one value in long stretches —
  // the dominant DBLP translate-join shape — and skip the hash entirely.
  Value prev_v = 0;
  uint32_t prev_s = ColumnIndex::kEmptySlot;
  idx.max_probe = 0;
  for (size_t r = 0; r < n; ++r) {
    const Value v = column[r * stride];
    if (prev_s != ColumnIndex::kEmptySlot && v == prev_v) {
      ++counts[prev_s + 1];
      slot_of_row[r] = prev_s;
      continue;
    }
    uint32_t assigned = 0;
    while (true) {
      uint32_t pos = static_cast<uint32_t>(Mix64(static_cast<uint64_t>(v))) &
                     idx.mask;
      uint32_t d = 0;
      bool done = false;
      while (d <= kProbeLimit) {
        const uint32_t s = idx.slots[pos];
        if (s == ColumnIndex::kEmptySlot) {
          const uint32_t fresh = static_cast<uint32_t>(idx.slot_values.size());
          idx.slots[pos] = fresh;
          idx.slot_values.push_back(v);
          counts.push_back(1);
          assigned = fresh;
          if (d > idx.max_probe) idx.max_probe = d;
          done = true;
          break;
        }
        if (idx.slot_values[s] == v) {
          ++counts[s + 1];
          assigned = s;
          done = true;
          break;
        }
        pos = (pos + 1) & idx.mask;
        ++d;
      }
      if (done) break;
      grow();  // cluster past the probe bound: repartition at 2x capacity
    }
    slot_of_row[r] = assigned;
    prev_v = v;
    prev_s = assigned;
  }

  for (size_t s = 1; s < counts.size(); ++s) counts[s] += counts[s - 1];

  idx.row_ids.resize(n);
  std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    idx.row_ids[cursor[slot_of_row[r]]++] = static_cast<RowId>(r);
  }
}

std::span<const RowId> Table::Probe(size_t col, Value v) const {
  MVDB_CHECK_LT(col, arity());
  const ColumnIndex& idx = EnsureIndex(col);
  const uint32_t s = idx.Find(v);
  if (s == ColumnIndex::kEmptySlot) return {};
  return std::span<const RowId>(idx.row_ids.data() + idx.starts[s],
                                idx.starts[s + 1] - idx.starts[s]);
}

size_t Table::DistinctCount(size_t col) const {
  MVDB_CHECK_LT(col, arity());
  return EnsureIndex(col).distinct();
}

void Table::WarmIndexes() const {
  // Every column gets an index entry — including on empty tables, whose
  // first Probe would otherwise still mutate indexes_ concurrently.
  for (size_t col = 0; col < arity(); ++col) EnsureIndex(col);
}

std::vector<Value> Table::DistinctValues(size_t col) const {
  std::vector<Value> values;
  const size_t n = size();
  values.reserve(n);
  for (size_t r = 0; r < n; ++r) values.push_back(At(static_cast<RowId>(r), col));
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

bool Table::FindRow(std::span<const Value> row, RowId* out) const {
  MVDB_CHECK_EQ(row.size(), arity());
  // Probe on the first column, then verify the remainder.
  for (RowId r : Probe(0, row[0])) {
    bool match = true;
    for (size_t c = 1; c < arity(); ++c) {
      if (At(r, c) != row[c]) { match = false; break; }
    }
    if (match) {
      *out = r;
      return true;
    }
  }
  return false;
}

}  // namespace mvdb
