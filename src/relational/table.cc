#include "relational/table.h"

#include <algorithm>

namespace mvdb {

const std::vector<RowId> Table::kEmptyRows;

const std::unordered_map<Value, std::vector<RowId>>& Table::EnsureIndex(
    size_t col) const {
  auto it = indexes_.find(col);
  if (it == indexes_.end()) {
    auto& idx = indexes_[col];
    const size_t n = size();
    idx.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      idx[At(static_cast<RowId>(r), col)].push_back(static_cast<RowId>(r));
    }
    it = indexes_.find(col);
  }
  return it->second;
}

const std::vector<RowId>& Table::Probe(size_t col, Value v) const {
  MVDB_CHECK_LT(col, arity());
  const auto& idx = EnsureIndex(col);
  auto hit = idx.find(v);
  return hit == idx.end() ? kEmptyRows : hit->second;
}

void Table::WarmIndexes() const {
  // Every column gets an index entry — including on empty tables, whose
  // first Probe would otherwise still mutate indexes_ concurrently.
  for (size_t col = 0; col < arity(); ++col) EnsureIndex(col);
}

std::vector<Value> Table::DistinctValues(size_t col) const {
  std::vector<Value> values;
  const size_t n = size();
  values.reserve(n);
  for (size_t r = 0; r < n; ++r) values.push_back(At(static_cast<RowId>(r), col));
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

bool Table::FindRow(std::span<const Value> row, RowId* out) const {
  MVDB_CHECK_EQ(row.size(), arity());
  // Probe on the first column, then verify the remainder.
  for (RowId r : Probe(0, row[0])) {
    bool match = true;
    for (size_t c = 1; c < arity(); ++c) {
      if (At(r, c) != row[c]) { match = false; break; }
    }
    if (match) {
      *out = r;
      return true;
    }
  }
  return false;
}

}  // namespace mvdb
