// Copyright 2026 The MarkoView Authors.
//
// Base value types shared by every layer of the system.
//
// All column values are dictionary-encoded int64s (see util/interner.h), so
// the active domain is an ordered set of integers — the property that the
// paper's variable-order construction (Section 4.2) is defined over.

#ifndef MVDB_RELATIONAL_TYPES_H_
#define MVDB_RELATIONAL_TYPES_H_

#include <cstdint>
#include <limits>

namespace mvdb {

/// A column value: either a small integer (year, count) or an interned
/// string id (author name, institute). Comparisons are plain integer order.
using Value = int64_t;

/// Row index within one table.
using RowId = uint32_t;

/// Boolean random variable id. Every *probabilistic* tuple in the database
/// owns exactly one VarId (Section 2.1: the variable X_t). Deterministic
/// tuples have kNoVar.
using VarId = int32_t;

inline constexpr VarId kNoVar = -1;

/// Weight of a certain (deterministic) tuple: w = infinity, i.e. p = 1.
inline constexpr double kCertainWeight = std::numeric_limits<double>::infinity();

/// Converts an MLN-style weight (odds) to a probability: p = w / (1 + w)
/// (Definition 2). Negative weights — which arise for translated NV tuples
/// with w0 = (1-w)/w when the MarkoView weight w exceeds 1 — yield
/// probabilities outside [0,1]; Section 3.3 shows all exact inference rules
/// remain valid for them, and all our evaluators honor that.
inline double WeightToProb(double w) {
  if (w == kCertainWeight) return 1.0;
  return w / (1.0 + w);
}

/// Inverse of WeightToProb: w = p / (1 - p).
inline double ProbToWeight(double p) {
  if (p == 1.0) return kCertainWeight;
  return p / (1.0 - p);
}

}  // namespace mvdb

#endif  // MVDB_RELATIONAL_TYPES_H_
