#include "safeplan/lifted.h"
#include <bit>

#include <algorithm>
#include <set>

#include "query/analysis.h"
#include "query/eval.h"
#include "util/logging.h"

namespace mvdb {
namespace {

class LiftedEvaluator {
 public:
  LiftedEvaluator(const Database& db, const std::vector<double>& probs)
      : db_(db), probs_(probs) {
    is_prob_ = [this](const std::string& rel) {
      const Table* t = db_.Find(rel);
      return t != nullptr && t->probabilistic();
    };
  }

  StatusOr<double> EvalUcq(const Ucq& q) {
    // Validate relations up front (clearer errors than deep inside).
    for (const auto& cq : q.disjuncts) {
      for (const Atom& a : cq.atoms) {
        const Table* t = db_.Find(a.relation);
        if (t == nullptr) return Status::NotFound("no such table: " + a.relation);
        if (t->arity() != a.args.size()) {
          return Status::InvalidArgument("arity mismatch on " + a.relation);
        }
        if (a.negated) {
          return Status::UnsafeQuery(
              "lifted inference does not support negated atoms (the UCQ "
              "dichotomy of [8] excludes negation); use an OBDD backend");
        }
      }
    }
    return EvalUnion(q);
  }

 private:
  /// Probability of a Boolean UCQ.
  StatusOr<double> EvalUnion(const Ucq& q) {
    // Deterministic-only disjuncts are certain or impossible.
    Ucq pruned = q;
    for (size_t d = 0; d < q.disjuncts.size(); ++d) {
      if (HasProbAtom(q.disjuncts[d], is_prob_)) continue;
      Ucq single = q;
      single.disjuncts = {q.disjuncts[d]};
      MVDB_ASSIGN_OR_RETURN(Lineage lin, EvalBoolean(db_, single));
      if (lin.IsTrue()) return 1.0;
    }
    std::erase_if(pruned.disjuncts, [&](const ConjunctiveQuery& cq) {
      return !HasProbAtom(cq, is_prob_);
    });
    if (pruned.disjuncts.empty()) return 0.0;

    // Rule 1: independent union over symbol-disjoint groups.
    const auto groups = IndependentUnionComponents(pruned, is_prob_);
    if (groups.size() > 1) {
      double not_any = 1.0;
      for (const auto& g : groups) {
        Ucq sub = pruned;
        sub.disjuncts.clear();
        for (size_t d : g) sub.disjuncts.push_back(pruned.disjuncts[d]);
        MVDB_ASSIGN_OR_RETURN(double p, EvalUnion(sub));
        not_any *= (1.0 - p);
      }
      return 1.0 - not_any;
    }

    // Rule 2: inclusion–exclusion over the disjuncts of one dependent group.
    const size_t m = pruned.disjuncts.size();
    if (m == 1) return EvalCq(pruned, pruned.disjuncts[0]);
    if (m > 20) {
      return Status::UnsafeQuery("inclusion-exclusion over " +
                                 std::to_string(m) + " disjuncts is infeasible");
    }
    double total = 0.0;
    for (uint32_t mask = 1; mask < (1u << m); ++mask) {
      Ucq conj = pruned;
      ConjunctiveQuery merged;
      for (size_t d = 0; d < m; ++d) {
        if (!((mask >> d) & 1)) continue;
        // Rename this disjunct's variables apart before conjoining.
        std::unordered_map<int, int> remap;
        auto rename = [&](Term t) -> Term {
          if (!t.is_var()) return t;
          auto [it, inserted] = remap.emplace(t.var, 0);
          if (inserted) {
            it->second = conj.AddVar(
                conj.var_names[static_cast<size_t>(t.var)] + "#" + std::to_string(d));
          }
          return Term::Var(it->second);
        };
        for (const Atom& a : pruned.disjuncts[d].atoms) {
          Atom out;
          out.relation = a.relation;
          out.negated = a.negated;
          for (const Term& t : a.args) out.args.push_back(rename(t));
          merged.atoms.push_back(std::move(out));
        }
        for (const Comparison& c : pruned.disjuncts[d].comparisons) {
          merged.comparisons.push_back(
              Comparison{rename(c.lhs), c.op, rename(c.rhs)});
        }
      }
      MVDB_ASSIGN_OR_RETURN(double p, EvalCq(conj, merged));
      total += (std::popcount(mask) % 2 == 1) ? p : -p;
    }
    return total;
  }

  /// Probability of a single (possibly disconnected) conjunctive query.
  /// `ctx` supplies variable names; `cq` is the query itself.
  StatusOr<double> EvalCq(const Ucq& ctx, const ConjunctiveQuery& raw_cq) {
    // Minimize first: inclusion-exclusion conjunctions routinely contain
    // subsumed atoms (e.g. (R(x) ^ S(x)) ^ R(x')), which would otherwise
    // block the separator rule.
    const ConjunctiveQuery cq = MinimizeCq(raw_cq);
    // Rule 3: independent join over connected components, after dropping
    // redundant components — a component implied (via homomorphism) by
    // another contributes nothing to the conjunction. This minimization is
    // what makes inclusion–exclusion conjunctions like
    // (R(x) ^ S(x)) ^ R(x') evaluable (the paper's reliance on [8]).
    auto comps = ConnectedComponents(cq, is_prob_);
    if (comps.size() > 1) {
      std::vector<ConjunctiveQuery> kept;
      for (auto& c : comps) {
        bool redundant = false;
        for (const auto& k : kept) {
          if (MapsInto(c, k)) { redundant = true; break; }
        }
        if (redundant) continue;
        std::erase_if(kept, [&](const ConjunctiveQuery& k) {
          return MapsInto(k, c);
        });
        kept.push_back(std::move(c));
      }
      comps = std::move(kept);
    }
    if (comps.size() > 1) {
      double prod = 1.0;
      for (auto& comp : comps) {
        MVDB_ASSIGN_OR_RETURN(double p, EvalComponent(ctx, comp));
        prod *= p;
      }
      return prod;
    }
    return EvalComponent(ctx, comps[0]);
  }

  /// Probability of one connected conjunctive query.
  StatusOr<double> EvalComponent(const Ucq& ctx, const ConjunctiveQuery& cq) {
    if (!HasProbAtom(cq, is_prob_)) {
      // Pure deterministic constraint: certain or impossible.
      Ucq single = ctx;
      single.disjuncts = {cq};
      MVDB_ASSIGN_OR_RETURN(Lineage lin, EvalBoolean(db_, single));
      return lin.IsTrue() ? 1.0 : 0.0;
    }

    // Ground leaf: every probabilistic atom fully ground.
    bool prob_ground = true;
    for (const Atom& a : cq.atoms) {
      if (!is_prob_(a.relation)) continue;
      for (const Term& t : a.args) {
        if (t.is_var()) { prob_ground = false; break; }
      }
      if (!prob_ground) break;
    }
    if (prob_ground) return EvalGroundLeaf(ctx, cq);

    // Rule 4: separator grounding.
    Ucq single = ctx;
    single.disjuncts = {cq};
    const auto sep = FindSeparator(single, is_prob_);
    if (!sep.has_value() || sep->var_of_disjunct[0] < 0) {
      return Status::UnsafeQuery("no separator variable in " + ToString(single));
    }
    const int z = sep->var_of_disjunct[0];
    // Domain: intersect the column values of every atom containing z
    // (probabilistic atoms at the separator position; deterministic atoms
    // at any position where z occurs).
    std::vector<Value> domain;
    bool first = true;
    for (const Atom& a : cq.atoms) {
      std::vector<size_t> positions;
      if (is_prob_(a.relation)) {
        positions.push_back(sep->position.at(a.relation));
      } else {
        for (size_t i = 0; i < a.args.size(); ++i) {
          if (a.args[i].is_var() && a.args[i].var == z) positions.push_back(i);
        }
        if (positions.empty()) continue;
      }
      std::vector<Value> col = AtomColumnDomain(a, positions[0]);
      if (first) {
        domain = std::move(col);
        first = false;
      } else {
        std::vector<Value> merged;
        std::set_intersection(domain.begin(), domain.end(), col.begin(),
                              col.end(), std::back_inserter(merged));
        domain = std::move(merged);
      }
      if (domain.empty()) break;
    }
    double not_any = 1.0;
    for (Value a : domain) {
      Ucq sub = single;
      SubstituteInDisjunct(&sub, 0, z, a);
      MVDB_ASSIGN_OR_RETURN(double p, EvalCq(sub, sub.disjuncts[0]));
      not_any *= (1.0 - p);
    }
    return 1.0 - not_any;
  }

  /// Leaf: all probabilistic atoms ground. P = prod of distinct tuple
  /// marginals, gated by satisfiability of the deterministic residue.
  StatusOr<double> EvalGroundLeaf(const Ucq& ctx, const ConjunctiveQuery& cq) {
    std::set<VarId> tuples;
    ConjunctiveQuery residue;
    residue.comparisons = cq.comparisons;
    for (const Atom& a : cq.atoms) {
      if (!is_prob_(a.relation)) {
        residue.atoms.push_back(a);
        continue;
      }
      const Table* t = db_.Find(a.relation);
      std::vector<Value> row;
      row.reserve(a.args.size());
      for (const Term& arg : a.args) row.push_back(arg.constant);
      RowId r;
      if (!t->FindRow(row, &r)) return 0.0;  // impossible tuple
      tuples.insert(t->var(r));
    }
    // Ground comparisons involving only constants are checked by the
    // evaluator; comparisons with variables belong to the residue.
    if (!residue.atoms.empty() || !residue.comparisons.empty()) {
      Ucq single = ctx;
      if (residue.atoms.empty()) {
        // Pure comparisons: evaluate directly.
        for (const Comparison& c : residue.comparisons) {
          if (!c.lhs.is_var() && !c.rhs.is_var()) {
            if (!Comparison::Apply(c.op, c.lhs.constant, c.rhs.constant)) {
              return 0.0;
            }
          } else {
            return Status::InvalidArgument(
                "comparison variable not bound by any atom");
          }
        }
      } else {
        single.disjuncts = {residue};
        MVDB_ASSIGN_OR_RETURN(Lineage lin, EvalBoolean(db_, single));
        if (!lin.IsTrue()) return 0.0;
      }
    }
    double prod = 1.0;
    for (VarId v : tuples) prod *= probs_[static_cast<size_t>(v)];
    return prod;
  }

  /// Distinct values of `pos` among rows compatible with the atom's ground
  /// arguments.
  std::vector<Value> AtomColumnDomain(const Atom& atom, size_t pos) {
    const Table* t = db_.Find(atom.relation);
    int probe_col = -1;
    Value probe_val = 0;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (!atom.args[i].is_var()) {
        probe_col = static_cast<int>(i);
        probe_val = atom.args[i].constant;
        break;
      }
    }
    std::vector<Value> out;
    auto consider = [&](RowId r) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (!atom.args[i].is_var() && t->At(r, i) != atom.args[i].constant) return;
      }
      out.push_back(t->At(r, pos));
    };
    if (probe_col >= 0) {
      for (RowId r : t->Probe(static_cast<size_t>(probe_col), probe_val)) {
        consider(r);
      }
    } else {
      const size_t n = t->size();
      for (size_t r = 0; r < n; ++r) consider(static_cast<RowId>(r));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  const Database& db_;
  const std::vector<double>& probs_;
  IsProbFn is_prob_;
};

}  // namespace

StatusOr<double> LiftedProb(const Database& db, const Ucq& q,
                            const std::vector<double>& var_probs) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("LiftedProb requires a Boolean query");
  }
  LiftedEvaluator eval(db, var_probs);
  return eval.EvalUcq(q);
}

bool IsSafe(const Database& db, const Ucq& q) {
  const std::vector<double> probs = db.VarProbs();
  auto result = LiftedProb(db, q, probs);
  return result.ok();
}

}  // namespace mvdb
