// Copyright 2026 The MarkoView Authors.
//
// Lifted (safe-plan) inference for UCQs over tuple-independent databases —
// the Dalvi–Suciu R-algorithm the paper leans on for tractability detection
// ("the set of tractable UCQ over INDB is already known [8]"; Theorem 1's
// corollary: MVDB query evaluation is PTIME whenever Q v W and W are safe).
//
// The recursion applies, in order:
//   1. independent union      P(Q1 v Q2) = 1 - (1-P(Q1))(1-P(Q2))
//                             when the disjuncts share no probabilistic
//                             relation symbol;
//   2. inclusion–exclusion    P(v_i Qi) = sum_S (-1)^{|S|+1} P(^_{i in S} Qi)
//                             (a conjunction of CQs is again a CQ after
//                             renaming apart);
//   3. independent join       P(Q1 ^ Q2) = P(Q1) P(Q2) over connected
//                             components;
//   4. separator grounding    P(Q) = 1 - prod_a (1 - P(Q[a/z])) for a
//                             separator variable z (tuple-disjoint, hence
//                             independent, ground instances);
//   5. ground leaf            product of the marginals of the (distinct)
//                             ground probabilistic tuples.
// If no rule applies the query is reported UNSAFE (e.g. the H0 query
// R(x),S(x,y),T(y), which is #P-hard).
//
// Completeness caveat: the textbook dichotomy additionally requires query
// minimization and cancellation detection in step 2; we implement the core
// rules, which cover all safe queries arising in this repository (and report
// UnsafeQuery otherwise — never a wrong probability).

#ifndef MVDB_SAFEPLAN_LIFTED_H_
#define MVDB_SAFEPLAN_LIFTED_H_

#include "query/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// Exact P(Q) for a Boolean UCQ over the tuple-independent database, or
/// StatusCode::kUnsafeQuery if the lifted rules do not apply. `var_probs`
/// is indexed by VarId and may contain values outside [0,1] (Section 3.3's
/// negative probabilities are handled by the same arithmetic).
StatusOr<double> LiftedProb(const Database& db, const Ucq& q,
                            const std::vector<double>& var_probs);

/// Structure-only safety check: true if LiftedProb would succeed. Runs the
/// same recursion with the database's schema but does not compute numbers.
bool IsSafe(const Database& db, const Ucq& q);

}  // namespace mvdb

#endif  // MVDB_SAFEPLAN_LIFTED_H_
