// Copyright 2026 The MarkoView Authors.
//
// Hash64: a 64-bit non-cryptographic hash (the XXH64 construction) used for
// on-disk integrity checksums in the persistent MV-index format
// (mvindex/index_io.*). The format stores one checksum per section plus a
// header checksum, so truncation and bit flips are detected with a typed
// Status instead of a crash or a silently wrong answer.
//
// Stability contract: these checksums are persisted, so the function must
// never change for a given kIndexFormatVersion — changing it IS a format
// change and requires a version bump.

#ifndef MVDB_UTIL_HASH64_H_
#define MVDB_UTIL_HASH64_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace mvdb {
namespace hash_internal {

inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace hash_internal

/// XXH64 of `len` bytes at `data`. Byte-oriented: the result depends on the
/// in-memory byte image, which is exactly what the index file stores (the
/// loader refuses foreign-endian files, so no per-field swapping is needed).
inline uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace hash_internal;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + len;
  uint64_t h;
  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* const limit = end - 32;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace mvdb

#endif  // MVDB_UTIL_HASH64_H_
