// Copyright 2026 The MarkoView Authors.
//
// Minimal fork/join parallelism for the offline pipeline. The MV-index
// blocks are variable-disjoint (Section 4), so block compilation is
// embarrassingly parallel: workers pull task indexes from a shared atomic
// counter (dynamic load balancing — separator blocks vary in size) and
// write results into per-task slots, which keeps the output order
// deterministic regardless of scheduling.

#ifndef MVDB_UTIL_PARALLEL_H_
#define MVDB_UTIL_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mvdb {

/// Number of workers to actually spawn for `num_tasks` tasks when the caller
/// asked for `requested` threads. `requested <= 0` means one per hardware
/// thread; the result is always in [1, num_tasks] (and 1 when there is
/// nothing to parallelize), and absurd requests are capped well below the
/// point where std::thread construction starts throwing.
inline int EffectiveThreads(int requested, size_t num_tasks) {
  if (num_tasks <= 1) return 1;
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  size_t n = requested > 0 ? static_cast<size_t>(requested) : hw;
  n = std::min({n, num_tasks, std::max<size_t>(8 * hw, 64)});
  return static_cast<int>(n);
}

/// Runs fn(worker_index, task_index) for every task in [0, num_tasks) on
/// `num_threads` workers (the calling thread is worker 0). With
/// num_threads <= 1 this degenerates to a plain serial loop — no threads are
/// spawned and no atomics are touched, so the serial fallback is exactly the
/// pre-parallel code path. `fn` must not throw.
template <typename Fn>
void ParallelFor(int num_threads, size_t num_tasks, Fn&& fn) {
  if (num_threads <= 1 || num_tasks <= 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(0, i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&](int w) {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < num_tasks;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(w, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads - 1));
  for (int w = 1; w < num_threads; ++w) threads.emplace_back(worker, w);
  worker(0);
  for (std::thread& t : threads) t.join();
}

/// Runs fn(index) for every index in [0, n), handing workers `chunk`-sized
/// contiguous ranges so fine-grained loops (one RNG draw per entity, one
/// substitution per separator value) don't pay one atomic fetch per element.
/// Results must go to per-index slots; then the output is deterministic.
template <typename Fn>
void ParallelForChunked(int num_threads, size_t n, size_t chunk, Fn&& fn) {
  const size_t num_chunks = (n + chunk - 1) / chunk;
  ParallelFor(EffectiveThreads(num_threads, num_chunks), num_chunks,
              [&](int, size_t c) {
                const size_t lo = c * chunk;
                const size_t hi = std::min(n, lo + chunk);
                for (size_t i = lo; i < hi; ++i) fn(i);
              });
}

/// Persistent fixed-size worker pool, the long-lived complement of the
/// fork/join ParallelFor above: ParallelFor spawns-and-joins per call (right
/// for the offline build's few large phases), while a serving layer needs
/// threads that outlive any one request. Tasks are arbitrary closures run in
/// FIFO order by the first free worker. Start/Submit/Shutdown are
/// thread-safe; Shutdown (and the destructor) drains every queued task
/// before joining, so submitted work is never silently dropped.
class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool() { Shutdown(); }
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Spawns `num_threads` workers (<= 0 = one per hardware thread). No-op if
  /// already started.
  void Start(int num_threads) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!workers_.empty() || stopping_) return;
    const int n = num_threads > 0
                      ? num_threads
                      : static_cast<int>(
                            std::max(1u, std::thread::hardware_concurrency()));
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Enqueues a task. Returns false (task dropped) after Shutdown began.
  bool Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return false;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  /// Stops accepting tasks, lets the workers drain the queue, and joins
  /// them. Idempotent; safe to call with no workers started (queued tasks
  /// are then run on the calling thread — nothing is dropped).
  void Shutdown() {
    std::deque<std::function<void()>> orphans;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
      if (workers_.empty()) orphans.swap(tasks_);
    }
    cv_.notify_all();
    for (std::function<void()>& t : orphans) t();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  size_t num_workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ && drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace mvdb

#endif  // MVDB_UTIL_PARALLEL_H_
