// Copyright 2026 The MarkoView Authors.
//
// Deterministic, fast pseudo-random number generator (xoshiro256**) used by
// the synthetic DBLP generator, the MC-SAT / Gibbs samplers, and the
// property-based tests. A fixed seed makes every experiment reproducible
// run-to-run, which the benchmark harness relies on.

#ifndef MVDB_UTIL_RNG_H_
#define MVDB_UTIL_RNG_H_

#include <cstdint>

namespace mvdb {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation
/// adapted). Not cryptographic; excellent statistical quality for simulation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli draw with success probability p.
  bool Chance(double p) { return Uniform() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace mvdb

#endif  // MVDB_UTIL_RNG_H_
