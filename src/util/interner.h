// Copyright 2026 The MarkoView Authors.
//
// String interner: maps strings (author names, paper titles, institute URLs,
// relation names) to dense int32 ids so that the relational engine can store
// every column as int64 values. Interning is what lets us treat the active
// domain as an ordered set of integers, which Section 4.2's variable-order
// construction requires.

#ifndef MVDB_UTIL_INTERNER_H_
#define MVDB_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace mvdb {

/// Bidirectional string <-> id dictionary. Ids are dense and start at 0.
/// Not thread-safe; the engine is single-threaded like the paper's prototype.
class Interner {
 public:
  /// Returns the id for `s`, inserting it if new.
  int64_t Intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    int64_t id = static_cast<int64_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `s` or -1 if it was never interned.
  int64_t Find(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    return it == ids_.end() ? -1 : it->second;
  }

  /// Reverse lookup. Precondition: 0 <= id < size().
  const std::string& Lookup(int64_t id) const {
    MVDB_CHECK_GE(id, 0);
    MVDB_CHECK_LT(static_cast<size_t>(id), strings_.size());
    return strings_[static_cast<size_t>(id)];
  }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int64_t> ids_;
};

}  // namespace mvdb

#endif  // MVDB_UTIL_INTERNER_H_
