#include "util/status.h"

namespace mvdb {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnsafeQuery: return "UnsafeQuery";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kUnimplemented: return "Unimplemented";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mvdb
