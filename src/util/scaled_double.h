// Copyright 2026 The MarkoView Authors.
//
// Extended-range floating point: a double mantissa with an explicit 64-bit
// binary exponent.
//
// Why this exists: Eq. 5 evaluates P0(Q ^ NOT W) / P0(NOT W), and P0(NOT W)
// is a product of one factor per MarkoView block — thousands of factors at
// DBLP scale. With the translation's negative probabilities the factors are
// not even bounded by 1, so the product routinely leaves double range in
// both directions (the ratio itself is a perfectly ordinary probability:
// the huge common factor cancels). Every OBDD/MV-index probability
// computation therefore runs in ScaledDouble and converts to double only
// after the final division.
//
// The representation keeps the mantissa normalized to [0.5, 1) in magnitude
// (or exactly 0), so precision is that of a double while the exponent range
// is effectively unbounded. Signs are carried by the mantissa, which keeps
// the negative-probability arithmetic of Section 3.3 untouched.

#ifndef MVDB_UTIL_SCALED_DOUBLE_H_
#define MVDB_UTIL_SCALED_DOUBLE_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace mvdb {

class ScaledDouble {
 public:
  constexpr ScaledDouble() = default;
  ScaledDouble(double v) {  // NOLINT(runtime/explicit): numeric literal use
    int exp = 0;
    mantissa_ = std::frexp(v, &exp);
    exponent_ = exp;
  }

  static ScaledDouble Zero() { return ScaledDouble(); }
  static ScaledDouble One() { return ScaledDouble(1.0); }

  bool IsZero() const { return mantissa_ == 0.0; }
  bool IsNegative() const { return mantissa_ < 0.0; }

  /// Conversion to double; silently under/overflows outside double range
  /// (callers convert only final, in-range results).
  double ToDouble() const {
    if (mantissa_ == 0.0) return 0.0;
    if (exponent_ > 2000) return mantissa_ > 0 ? HUGE_VAL : -HUGE_VAL;
    if (exponent_ < -2000) return 0.0;
    return std::ldexp(mantissa_, static_cast<int>(exponent_));
  }

  /// Natural logarithm of the magnitude; -inf for zero.
  double LogMagnitude() const {
    if (mantissa_ == 0.0) return -HUGE_VAL;
    return std::log(std::fabs(mantissa_)) +
           static_cast<double>(exponent_) * 0.6931471805599453;
  }

  ScaledDouble operator*(const ScaledDouble& o) const {
    ScaledDouble r;
    r.mantissa_ = mantissa_ * o.mantissa_;
    r.exponent_ = exponent_ + o.exponent_;
    r.Normalize();
    return r;
  }

  ScaledDouble operator/(const ScaledDouble& o) const {
    ScaledDouble r;
    r.mantissa_ = mantissa_ / o.mantissa_;  // division by zero -> inf/nan,
    r.exponent_ = exponent_ - o.exponent_;  // surfaced to the caller
    r.Normalize();
    return r;
  }

  ScaledDouble operator+(const ScaledDouble& o) const {
    if (IsZero()) return o;
    if (o.IsZero()) return *this;
    const ScaledDouble* big = this;
    const ScaledDouble* small = &o;
    if (big->exponent_ < small->exponent_) std::swap(big, small);
    const int64_t diff = big->exponent_ - small->exponent_;
    if (diff > 100) return *big;  // beyond double precision: negligible
    ScaledDouble r;
    r.mantissa_ =
        big->mantissa_ + std::ldexp(small->mantissa_, -static_cast<int>(diff));
    r.exponent_ = big->exponent_;
    r.Normalize();
    return r;
  }

  ScaledDouble operator-(const ScaledDouble& o) const { return *this + o.Negated(); }

  ScaledDouble Negated() const {
    ScaledDouble r = *this;
    r.mantissa_ = -r.mantissa_;
    return r;
  }

  ScaledDouble& operator+=(const ScaledDouble& o) { return *this = *this + o; }
  ScaledDouble& operator*=(const ScaledDouble& o) { return *this = *this * o; }

  /// Exact equality (normalized representation is canonical).
  bool operator==(const ScaledDouble& o) const {
    return mantissa_ == o.mantissa_ && (exponent_ == o.exponent_ || IsZero());
  }

  std::string ToString() const {
    return std::to_string(mantissa_) + "*2^" + std::to_string(exponent_);
  }

  /// Raw IEEE-754 mantissa bits + scale word, for bit-exact serialization
  /// (mvindex/index_io.*). The normalized representation is canonical, so
  /// FromRaw(mantissa_bits(), exponent_word()) reproduces the value bit for
  /// bit — no text conversion, no re-normalization, no rounding anywhere.
  uint64_t mantissa_bits() const {
    uint64_t bits;
    std::memcpy(&bits, &mantissa_, sizeof(bits));
    return bits;
  }
  int64_t exponent_word() const { return exponent_; }
  static ScaledDouble FromRaw(uint64_t mantissa_bits, int64_t exponent) {
    ScaledDouble r;
    std::memcpy(&r.mantissa_, &mantissa_bits, sizeof(r.mantissa_));
    r.exponent_ = exponent;
    return r;
  }

 private:
  void Normalize() {
    if (mantissa_ == 0.0 || !std::isfinite(mantissa_)) {
      if (mantissa_ == 0.0) exponent_ = 0;
      return;
    }
    int exp = 0;
    mantissa_ = std::frexp(mantissa_, &exp);
    exponent_ += exp;
  }

  double mantissa_ = 0.0;   // 0 or magnitude in [0.5, 1)
  int64_t exponent_ = 0;    // binary exponent
};

// The persistent index format memcpy's / maps whole ScaledDouble arrays as
// raw {IEEE-754 mantissa, scale word} pairs; pin the layout those sections
// depend on (a change here is a format change — bump kIndexFormatVersion).
static_assert(std::is_trivially_copyable_v<ScaledDouble>);
static_assert(sizeof(ScaledDouble) == 16);

}  // namespace mvdb

#endif  // MVDB_UTIL_SCALED_DOUBLE_H_
