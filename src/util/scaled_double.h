// Copyright 2026 The MarkoView Authors.
//
// Extended-range floating point: a double mantissa with an explicit 64-bit
// binary exponent.
//
// Why this exists: Eq. 5 evaluates P0(Q ^ NOT W) / P0(NOT W), and P0(NOT W)
// is a product of one factor per MarkoView block — thousands of factors at
// DBLP scale. With the translation's negative probabilities the factors are
// not even bounded by 1, so the product routinely leaves double range in
// both directions (the ratio itself is a perfectly ordinary probability:
// the huge common factor cancels). Every OBDD/MV-index probability
// computation therefore runs in ScaledDouble and converts to double only
// after the final division.
//
// The representation keeps the mantissa normalized to [0.5, 1) in magnitude
// (or exactly 0), so precision is that of a double while the exponent range
// is effectively unbounded. Signs are carried by the mantissa, which keeps
// the negative-probability arithmetic of Section 3.3 untouched.

#ifndef MVDB_UTIL_SCALED_DOUBLE_H_
#define MVDB_UTIL_SCALED_DOUBLE_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace mvdb {

class ScaledDouble {
 public:
  constexpr ScaledDouble() = default;
  ScaledDouble(double v) {  // NOLINT(runtime/explicit): numeric literal use
    mantissa_ = FrexpFast(v, &exponent_);
  }

  static ScaledDouble Zero() { return ScaledDouble(); }
  static ScaledDouble One() { return ScaledDouble(1.0); }

  bool IsZero() const { return mantissa_ == 0.0; }
  bool IsNegative() const { return mantissa_ < 0.0; }

  /// Conversion to double; silently under/overflows outside double range
  /// (callers convert only final, in-range results).
  double ToDouble() const {
    if (mantissa_ == 0.0) return 0.0;
    if (exponent_ > 2000) return mantissa_ > 0 ? HUGE_VAL : -HUGE_VAL;
    if (exponent_ < -2000) return 0.0;
    return std::ldexp(mantissa_, static_cast<int>(exponent_));
  }

  /// Natural logarithm of the magnitude; -inf for zero.
  double LogMagnitude() const {
    if (mantissa_ == 0.0) return -HUGE_VAL;
    return std::log(std::fabs(mantissa_)) +
           static_cast<double>(exponent_) * 0.6931471805599453;
  }

  ScaledDouble operator*(const ScaledDouble& o) const {
    ScaledDouble r;
    r.mantissa_ = mantissa_ * o.mantissa_;
    r.exponent_ = exponent_ + o.exponent_;
    r.Normalize();
    return r;
  }

  ScaledDouble operator/(const ScaledDouble& o) const {
    ScaledDouble r;
    r.mantissa_ = mantissa_ / o.mantissa_;  // division by zero -> inf/nan,
    r.exponent_ = exponent_ - o.exponent_;  // surfaced to the caller
    r.Normalize();
    return r;
  }

  ScaledDouble operator+(const ScaledDouble& o) const {
    if (IsZero()) return o;
    if (o.IsZero()) return *this;
    const ScaledDouble* big = this;
    const ScaledDouble* small = &o;
    if (big->exponent_ < small->exponent_) std::swap(big, small);
    const int64_t diff = big->exponent_ - small->exponent_;
    if (diff > 100) return *big;  // beyond double precision: negligible
    ScaledDouble r;
    r.mantissa_ = big->mantissa_ + LdexpDownFast(small->mantissa_, diff);
    r.exponent_ = big->exponent_;
    r.Normalize();
    return r;
  }

  ScaledDouble operator-(const ScaledDouble& o) const { return *this + o.Negated(); }

  ScaledDouble Negated() const {
    ScaledDouble r = *this;
    r.mantissa_ = -r.mantissa_;
    return r;
  }

  ScaledDouble& operator+=(const ScaledDouble& o) { return *this = *this + o; }
  ScaledDouble& operator*=(const ScaledDouble& o) { return *this = *this * o; }

  /// Exact equality (normalized representation is canonical).
  bool operator==(const ScaledDouble& o) const {
    return mantissa_ == o.mantissa_ && (exponent_ == o.exponent_ || IsZero());
  }

  std::string ToString() const {
    return std::to_string(mantissa_) + "*2^" + std::to_string(exponent_);
  }

  /// Raw IEEE-754 mantissa bits + scale word, for bit-exact serialization
  /// (mvindex/index_io.*). The normalized representation is canonical, so
  /// FromRaw(mantissa_bits(), exponent_word()) reproduces the value bit for
  /// bit — no text conversion, no re-normalization, no rounding anywhere.
  uint64_t mantissa_bits() const {
    uint64_t bits;
    std::memcpy(&bits, &mantissa_, sizeof(bits));
    return bits;
  }
  int64_t exponent_word() const { return exponent_; }
  static ScaledDouble FromRaw(uint64_t mantissa_bits, int64_t exponent) {
    ScaledDouble r;
    std::memcpy(&r.mantissa_, &mantissa_bits, sizeof(r.mantissa_));
    r.exponent_ = exponent;
    return r;
  }

 private:
  /// std::frexp, minus the libm call on the hot path: frexp of a finite
  /// normal double is exact — mantissa bits are untouched, only the
  /// exponent field moves — so exponent-field arithmetic IS the full
  /// computation. Zeros, subnormals, infinities and NaNs (biased exponent
  /// 0 or 0x7ff) defer to std::frexp, so every input decomposes exactly as
  /// before; this is a pure speedup, never a value change. It matters
  /// because the annotation recurrences (mvindex/flat_obdd.cc) run a
  /// handful of normalizations per OBDD node, and delta repair replays
  /// them over millions of nodes inside a single-digit-ms budget.
  static double FrexpFast(double v, int64_t* exp) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    const uint64_t biased = (bits >> 52) & 0x7ff;
    if (biased == 0 || biased == 0x7ff) {  // zero/subnormal/inf/nan
      int e = 0;
      const double m = std::frexp(v, &e);
      *exp = e;
      return m;
    }
    *exp = static_cast<int64_t>(biased) - 1022;
    bits = (bits & ~(0x7ffULL << 52)) | (1022ULL << 52);
    double m;
    std::memcpy(&m, &bits, sizeof(m));
    return m;
  }

  /// std::ldexp(m, -diff) for the aligned-addition path: a canonical
  /// nonzero mantissa has |m| in [0.5, 1) (biased exponent 1022) and
  /// diff <= 100, so the scaled value stays normal and the exponent-field
  /// subtraction is exact. Anything that could go subnormal (biased
  /// exponent <= diff, e.g. values built through FromRaw) or is inf/NaN
  /// falls back to std::ldexp for its correct rounding.
  static double LdexpDownFast(double m, int64_t diff) {
    uint64_t bits;
    std::memcpy(&bits, &m, sizeof(bits));
    const uint64_t biased = (bits >> 52) & 0x7ff;
    if (biased <= static_cast<uint64_t>(diff) || biased == 0x7ff) {
      return std::ldexp(m, -static_cast<int>(diff));
    }
    bits -= static_cast<uint64_t>(diff) << 52;
    double r;
    std::memcpy(&r, &bits, sizeof(r));
    return r;
  }

  void Normalize() {
    if (mantissa_ == 0.0 || !std::isfinite(mantissa_)) {
      if (mantissa_ == 0.0) exponent_ = 0;
      return;
    }
    int64_t exp = 0;
    mantissa_ = FrexpFast(mantissa_, &exp);
    exponent_ += exp;
  }

  double mantissa_ = 0.0;   // 0 or magnitude in [0.5, 1)
  int64_t exponent_ = 0;    // binary exponent
};

// The persistent index format memcpy's / maps whole ScaledDouble arrays as
// raw {IEEE-754 mantissa, scale word} pairs; pin the layout those sections
// depend on (a change here is a format change — bump kIndexFormatVersion).
static_assert(std::is_trivially_copyable_v<ScaledDouble>);
static_assert(sizeof(ScaledDouble) == 16);

}  // namespace mvdb

#endif  // MVDB_UTIL_SCALED_DOUBLE_H_
