// Copyright 2026 The MarkoView Authors.
//
// Cache-conscious hash containers for the OBDD node store (Section 4.3's
// storage argument applied to the *construction* side). Two pieces:
//
//  * FlatIdTable — an open-addressed, linear-probing hash set of 32-bit
//    payload indices. The table stores only the indices; the keys live in
//    the caller's flat payload array (for BddManager: the node vector), so
//    a unique table costs 4 bytes per slot on top of the nodes themselves
//    instead of one heap-allocated bucket node per entry. Capacity is a
//    power of two and the load factor is capped at 3/4, which keeps linear
//    probe chains short without robin-hood bookkeeping.
//
//  * DirectMappedCache — a fixed-size, direct-mapped, *lossy* memo table in
//    the style of CUDD's computed table. An insert simply overwrites
//    whatever occupied the slot. Losing an entry never loses correctness
//    for hash-consed DAG algorithms: recomputing an evicted result walks
//    the same reduced structure and returns the identical node id — the
//    cache only trades recomputation for bounded memory.
//
// Both containers are single-threaded, matching BddManager (the sharded
// MV-index build gives every shard a private manager).

#ifndef MVDB_UTIL_FLAT_HASH_H_
#define MVDB_UTIL_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace mvdb {

/// Finalizer of splitmix64 — a full-avalanche 64-bit mixer. Callers use it
/// to pre-mix FlatIdTable hashes (the table masks to the low bits and does
/// not re-mix); DirectMappedCache applies it internally to its packed keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Open-addressed hash set of 32-bit ids whose keys are stored externally.
/// The caller supplies, per operation, a predicate `matches(id)` comparing
/// the probe key against the stored id's key, and `hash_of(id)` recomputing
/// a stored id's hash (needed when the table rehashes). Ids must be
/// < 0xFFFFFFFF (the empty-slot sentinel). Hashes must arrive *pre-mixed*
/// (e.g. through Mix64): the power-of-two mask keeps only the low bits, and
/// the table does not re-mix on its hot path.
class FlatIdTable {
 public:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(uint32_t); }

  /// Drops every entry but keeps the allocation.
  void Clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without exceeding the 3/4 load cap.
  template <typename HashOf>
  void Reserve(size_t n, HashOf&& hash_of) {
    size_t cap = kMinCapacity;
    while (cap * 3 / 4 < n) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap, hash_of);
  }

  /// Returns the id of the entry for which `matches` holds, or kEmpty.
  template <typename Matches>
  uint32_t Find(uint64_t hash, Matches&& matches) const {
    if (slots_.empty()) return kEmpty;
    const size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const uint32_t id = slots_[i];
      if (id == kEmpty) return kEmpty;
      if (matches(id)) return id;
    }
  }

  /// Returns the matching stored id, or inserts `fresh` and returns it.
  /// `fresh` must not already be in the table.
  template <typename Matches, typename HashOf>
  uint32_t FindOrInsert(uint64_t hash, uint32_t fresh, Matches&& matches,
                        HashOf&& hash_of) {
    if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(std::max<size_t>(kMinCapacity, slots_.size() * 2), hash_of);
    }
    const size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const uint32_t id = slots_[i];
      if (id == kEmpty) {
        slots_[i] = fresh;
        ++size_;
        return fresh;
      }
      if (matches(id)) return id;
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  template <typename HashOf>
  void Rehash(size_t new_capacity, HashOf&& hash_of) {
    MVDB_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(new_capacity, kEmpty);
    const size_t mask = new_capacity - 1;
    for (uint32_t id : old) {
      if (id == kEmpty) continue;
      size_t i = hash_of(id) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = id;
    }
  }

  std::vector<uint32_t> slots_;
  size_t size_ = 0;
};

/// Fixed-size direct-mapped lossy cache: 64-bit key -> 32-bit value. The
/// slot for a key is Mix64(key) masked to the (power-of-two) table size; an
/// insert overwrites the slot unconditionally. `kEmptyKey` must never be
/// used as a real key (BddManager's op encoding guarantees the top two key
/// bits are < 3, so all-ones cannot occur).
class DirectMappedCache {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;
  /// 2^14 entries * 16 bytes = 256 KiB per manager at rest.
  static constexpr size_t kDefaultEntries = size_t{1} << 14;
  /// Growth cap: 2^20 entries = 16 MiB. A lossy cache does not need
  /// capacity proportional to the workload, only to the live working set.
  static constexpr size_t kMaxEntries = size_t{1} << 20;

  DirectMappedCache() { Resize(kDefaultEntries); }

  size_t entries() const { return table_.size(); }
  size_t MemoryBytes() const { return table_.capacity() * sizeof(Entry); }

  bool Lookup(uint64_t key, int32_t* value) const {
    const Entry& e = table_[Mix64(key) & mask_];
    if (e.key != key) return false;
    *value = e.value;
    return true;
  }

  void Insert(uint64_t key, int32_t value) {
    table_[Mix64(key) & mask_] = Entry{key, value};
  }

  /// Grows (never shrinks) toward one slot per expected memo entry, clamped
  /// to kMaxEntries. Growing discards current contents — callers reserve
  /// up front, before the build issues operations.
  void ReserveEntries(size_t n) {
    size_t cap = entries();
    while (cap < n && cap < kMaxEntries) cap <<= 1;
    if (cap != entries()) Resize(cap);
  }

  /// Drops every entry and returns the allocation to the default footprint.
  /// Returns the number of bytes freed (0 when already at the default).
  size_t ShrinkToDefault() {
    const size_t before = MemoryBytes();
    if (entries() != kDefaultEntries) {
      table_.clear();
      table_.shrink_to_fit();
      Resize(kDefaultEntries);
    } else {
      std::fill(table_.begin(), table_.end(), Entry{kEmptyKey, 0});
    }
    return before > MemoryBytes() ? before - MemoryBytes() : 0;
  }

 private:
  struct Entry {
    uint64_t key;
    int32_t value;
  };

  void Resize(size_t n) {
    MVDB_DCHECK((n & (n - 1)) == 0);
    table_.assign(n, Entry{kEmptyKey, 0});
    table_.shrink_to_fit();
    mask_ = n - 1;
  }

  std::vector<Entry> table_;
  uint64_t mask_ = 0;
};

}  // namespace mvdb

#endif  // MVDB_UTIL_FLAT_HASH_H_
