// Copyright 2026 The MarkoView Authors.
//
// CHECK macros for internal invariants (crash with a message on violation)
// and a minimal leveled logger. Modeled after the glog subset used by Arrow
// and RocksDB: CHECK failures are programming errors, not recoverable
// conditions — recoverable conditions return Status (see util/status.h).

#ifndef MVDB_UTIL_LOGGING_H_
#define MVDB_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mvdb {
namespace internal {

/// Accumulates a message and aborts the process when destroyed.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "FATAL " << file << ":" << line << "] ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mvdb

#define MVDB_CHECK(cond)                                      \
  if (!(cond))                                                \
  ::mvdb::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define MVDB_CHECK_EQ(a, b) MVDB_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVDB_CHECK_NE(a, b) MVDB_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVDB_CHECK_LT(a, b) MVDB_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVDB_CHECK_LE(a, b) MVDB_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVDB_CHECK_GT(a, b) MVDB_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVDB_CHECK_GE(a, b) MVDB_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Debug-only check: compiled out in release except the condition evaluation
/// is skipped entirely.
#ifndef NDEBUG
#define MVDB_DCHECK(cond) MVDB_CHECK(cond)
#else
#define MVDB_DCHECK(cond) \
  while (false) MVDB_CHECK(cond)
#endif

#endif  // MVDB_UTIL_LOGGING_H_
