// Copyright 2026 The MarkoView Authors.
//
// MmapFile: RAII read-only memory mapping of a whole file. The persistent
// MV-index loader (mvindex/index_io.*) maps the index file PROT_READ /
// MAP_SHARED, so N serving processes opening the same index share one
// physical copy of the pages through the kernel page cache — the
// specialized-engines-over-shared-data split the serving layer is built
// around. The mapping is immutable for its lifetime; FlatObdd's span-backed
// storage mode points its SoA bases straight into it.

#ifndef MVDB_UTIL_MMAP_FILE_H_
#define MVDB_UTIL_MMAP_FILE_H_

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "util/status.h"

namespace mvdb {

class MmapFile {
 public:
  /// Maps `path` read-only. Fails with NotFound when the file does not
  /// exist and InvalidArgument for anything unmappable (empty file,
  /// directory, permission problems) — loaders surface these as typed
  /// Status, never aborting.
  static StatusOr<MmapFile> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      const int err = errno;
      if (err == ENOENT) {
        return Status::NotFound("cannot open " + path + ": " +
                                std::strerror(err));
      }
      return Status::InvalidArgument("cannot open " + path + ": " +
                                     std::strerror(err));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
      ::close(fd);
      return Status::InvalidArgument("cannot map " + path +
                                     ": not a non-empty regular file");
    }
    const size_t size = static_cast<size_t>(st.st_size);
    void* data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    // The mapping pins the pages; the descriptor is no longer needed.
    ::close(fd);
    if (data == MAP_FAILED) {
      return Status::InvalidArgument("mmap failed for " + path + ": " +
                                     std::strerror(errno));
    }
    return MmapFile(data, size);
  }

  MmapFile(MmapFile&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  MmapFile& operator=(MmapFile&& o) noexcept {
    if (this != &o) {
      Reset();
      std::swap(data_, o.data_);
      std::swap(size_, o.size_);
    }
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile() { Reset(); }

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

 private:
  MmapFile(void* data, size_t size) : data_(data), size_(size) {}

  void Reset() {
    if (data_ != nullptr) {
      ::munmap(data_, size_);
      data_ = nullptr;
      size_ = 0;
    }
  }

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace mvdb

#endif  // MVDB_UTIL_MMAP_FILE_H_
