// Copyright 2026 The MarkoView Authors.
// Licensed under the Apache License, Version 2.0.
//
// Arrow/RocksDB-style Status and StatusOr error handling. The library avoids
// exceptions on hot paths; fallible public operations return Status or
// StatusOr<T>, and internal invariants use the CHECK macros in logging.h.

#ifndef MVDB_UTIL_STATUS_H_
#define MVDB_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace mvdb {

/// Coarse error taxonomy, modeled after arrow::StatusCode.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsafeQuery,    ///< Lifted inference failed: the query is provably unsafe.
  kParseError,     ///< Datalog parser rejected the input.
  kInternal,
  kDeadlineExceeded,  ///< Request deadline passed before (or during) execution.
  kUnavailable,       ///< Serving layer shed the request (queue full, shutdown).
  kFailedPrecondition,  ///< Caller state does not admit the operation (e.g.
                        ///< patching a file whose topology diverged).
  kUnimplemented,  ///< Valid request outside the implemented fast path (e.g.
                   ///< a delta that changes W's disjunct structure).
};

/// Lightweight status object: OK is cheap (no allocation); errors carry a
/// code and a message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status UnsafeQuery(std::string msg) {
    return Status(StatusCode::kUnsafeQuery, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad arity".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or an error Status. Minimal analogue of arrow::Result.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mvdb

/// Propagate a non-OK Status from an expression (Arrow's ARROW_RETURN_NOT_OK).
#define MVDB_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::mvdb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assign the value of a StatusOr expression or propagate its error.
#define MVDB_ASSIGN_OR_RETURN(lhs, expr)         \
  auto MVDB_CONCAT_(_so_, __LINE__) = (expr);    \
  if (!MVDB_CONCAT_(_so_, __LINE__).ok())        \
    return MVDB_CONCAT_(_so_, __LINE__).status();\
  lhs = std::move(MVDB_CONCAT_(_so_, __LINE__)).value()

#define MVDB_CONCAT_INNER_(a, b) a##b
#define MVDB_CONCAT_(a, b) MVDB_CONCAT_INNER_(a, b)

#endif  // MVDB_UTIL_STATUS_H_
