// Copyright 2026 The MarkoView Authors.
//
// Wall-clock stopwatch used by the benchmark harness to report per-phase
// timings (construction time, sampling time, query time) in the same units
// the paper plots (seconds, log scale).

#ifndef MVDB_UTIL_TIMER_H_
#define MVDB_UTIL_TIMER_H_

#include <chrono>

namespace mvdb {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mvdb

#endif  // MVDB_UTIL_TIMER_H_
