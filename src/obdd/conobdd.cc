#include "obdd/conobdd.h"

#include <algorithm>
#include <set>

#include "query/eval.h"
#include "util/logging.h"

namespace mvdb {
namespace {

/// Distinct values at column `pos` among the rows compatible with the
/// atom's ground arguments (an index probe keeps nested separator
/// decompositions linear instead of rescanning whole columns).
std::vector<Value> AtomColumnDomain(const Database& db, const Atom& atom,
                                    size_t pos) {
  const Table* t = db.Find(atom.relation);
  MVDB_CHECK(t != nullptr);
  int probe_col = -1;
  Value probe_val = 0;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (!atom.args[i].is_var()) {
      probe_col = static_cast<int>(i);
      probe_val = atom.args[i].constant;
      break;
    }
  }
  std::vector<Value> out;
  auto consider = [&](RowId r) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (!atom.args[i].is_var() && t->At(r, i) != atom.args[i].constant) return;
    }
    out.push_back(t->At(r, pos));
  };
  if (probe_col >= 0) {
    for (RowId r : t->Probe(static_cast<size_t>(probe_col), probe_val)) consider(r);
  } else {
    const size_t n = t->size();
    for (size_t r = 0; r < n; ++r) consider(static_cast<RowId>(r));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Builds a sub-UCQ keeping only the listed disjuncts.
Ucq SubUcq(const Ucq& q, const std::vector<size_t>& disjuncts) {
  Ucq out = q;
  out.disjuncts.clear();
  for (size_t d : disjuncts) out.disjuncts.push_back(q.disjuncts[d]);
  return out;
}

}  // namespace

StatusOr<NodeId> ConObddBuilder::Build(const Ucq& boolean_query) {
  if (!boolean_query.IsBoolean()) {
    return Status::InvalidArgument("ConObdd requires a Boolean query");
  }
  MVDB_ASSIGN_OR_RETURN(ConResult r, BuildUcq(boolean_query));
  return r.id;
}

ConResult ConObddBuilder::CombineOr(const ConResult& a,
                                    const ConResult& b) {
  ConResult out;
  out.min_level = std::min(a.min_level, b.min_level);
  out.max_level = std::max(a.max_level, b.max_level);
  if (a.id == BddManager::kFalse) { out.id = b.id; return out; }
  if (b.id == BddManager::kFalse) { out.id = a.id; return out; }
  if (a.id == BddManager::kTrue || b.id == BddManager::kTrue) {
    out.id = BddManager::kTrue;
    return out;
  }
  if (a.max_level < b.min_level) {
    out.id = mgr_->ConcatOr(a.id, b.id);
    ++concat_count_;
  } else if (b.max_level < a.min_level) {
    out.id = mgr_->ConcatOr(b.id, a.id);
    ++concat_count_;
  } else {
    out.id = mgr_->Or(a.id, b.id);
    ++synthesis_count_;
  }
  return out;
}

ConResult ConObddBuilder::CombineAnd(const ConResult& a,
                                     const ConResult& b) {
  ConResult out;
  out.min_level = std::min(a.min_level, b.min_level);
  out.max_level = std::max(a.max_level, b.max_level);
  if (a.id == BddManager::kTrue) { out.id = b.id; return out; }
  if (b.id == BddManager::kTrue) { out.id = a.id; return out; }
  if (a.id == BddManager::kFalse || b.id == BddManager::kFalse) {
    out.id = BddManager::kFalse;
    return out;
  }
  if (a.max_level < b.min_level) {
    out.id = mgr_->ConcatAnd(a.id, b.id);
    ++concat_count_;
  } else if (b.max_level < a.min_level) {
    out.id = mgr_->ConcatAnd(b.id, a.id);
    ++concat_count_;
  } else {
    out.id = mgr_->And(a.id, b.id);
    ++synthesis_count_;
  }
  return out;
}

ConResult ConObddBuilder::FromLineage(const Lineage& lineage) {
  ConResult out;
  if (lineage.IsTrue()) {
    out.id = BddManager::kTrue;
    return out;
  }
  if (lineage.IsFalse()) {
    out.id = BddManager::kFalse;
    return out;
  }
  if (mgr_->scratch_synthesis()) {
    // One pass: the synthesis already touches every literal's level, so it
    // widens the range in place of the separate walk below.
    out.id = mgr_->FromLineageSynthesisRanged(lineage, &out.min_level,
                                              &out.max_level);
  } else {
    out.id = mgr_->FromLineageSynthesis(lineage);
    // min/max over every variable mentioned (positive and negated literals)
    // without materializing the sorted Vars() vector.
    auto widen = [&](const std::vector<Clause>& clauses) {
      for (const Clause& c : clauses) {
        for (VarId v : c) {
          const int32_t l = mgr_->level_of_var(v);
          out.min_level = std::min(out.min_level, l);
          out.max_level = std::max(out.max_level, l);
        }
      }
    };
    widen(lineage.clauses());
    widen(lineage.neg_clauses());
  }
  // A single clause is a chain built directly, no apply: concatenation-grade.
  if (lineage.size() > 1) {
    ++synthesis_count_;
  } else {
    ++concat_count_;
  }
  return out;
}

StatusOr<ConResult> ConObddBuilder::BuildFallback(const Ucq& q) {
  MVDB_ASSIGN_OR_RETURN(Lineage lineage, EvalBoolean(db_, q));
  return FromLineage(lineage);
}

StatusOr<ConResult> ConObddBuilder::BuildUcq(const Ucq& q) {
  // Separate disjuncts with no probabilistic atoms: each is deterministically
  // true or false on I_poss; a true one makes the whole query true.
  Ucq pruned = q;
  for (size_t d = 0; d < q.disjuncts.size(); ++d) {
    if (HasProbAtom(q.disjuncts[d], is_prob_)) continue;
    Ucq single = SubUcq(q, {d});
    MVDB_ASSIGN_OR_RETURN(Lineage lin, EvalBoolean(db_, single));
    if (lin.IsTrue()) {
      ConResult out;
      out.id = BddManager::kTrue;
      return out;
    }
  }
  std::erase_if(pruned.disjuncts, [&](const ConjunctiveQuery& cq) {
    return !HasProbAtom(cq, is_prob_);
  });
  if (pruned.disjuncts.empty()) return ConResult{};  // false

  // R1: independent unions concatenate.
  const auto groups = IndependentUnionComponents(pruned, is_prob_);
  if (groups.size() > 1) {
    std::vector<ConResult> parts;
    for (const auto& g : groups) {
      MVDB_ASSIGN_OR_RETURN(ConResult r, BuildUcq(SubUcq(pruned, g)));
      parts.push_back(r);
    }
    std::sort(parts.begin(), parts.end(),
              [](const ConResult& a, const ConResult& b) {
                return a.min_level < b.min_level;
              });
    // Fold right-to-left: ConcatOr(f, g) rebuilds f only, so folding from
    // the back rebuilds each part once (linear) instead of rebuilding the
    // growing chain at every step (quadratic).
    ConResult acc = parts.back();
    for (size_t i = parts.size() - 1; i-- > 0;) acc = CombineOr(parts[i], acc);
    return acc;
  }

  // R2: a single CQ splits into independent join components.
  if (pruned.disjuncts.size() == 1) {
    auto comps = ConnectedComponents(pruned.disjuncts[0], is_prob_);
    if (comps.size() > 1) {
      std::vector<ConResult> parts;
      for (auto& comp : comps) {
        Ucq sub = pruned;
        sub.disjuncts = {std::move(comp)};
        // Deterministic-only components are constraints: true keeps the
        // conjunction, false kills it.
        if (!HasProbAtom(sub.disjuncts[0], is_prob_)) {
          MVDB_ASSIGN_OR_RETURN(Lineage lin, EvalBoolean(db_, sub));
          if (!lin.IsTrue()) return ConResult{};  // false conjunct
          continue;
        }
        MVDB_ASSIGN_OR_RETURN(ConResult r, BuildUcq(sub));
        parts.push_back(r);
      }
      if (parts.empty()) {
        ConResult out;
        out.id = BddManager::kTrue;
        return out;
      }
      std::sort(parts.begin(), parts.end(),
                [](const ConResult& a, const ConResult& b) {
                  return a.min_level < b.min_level;
                });
      // Right-to-left fold: each part rebuilt once (see CombineOr above).
      ConResult acc = parts.back();
      for (size_t i = parts.size() - 1; i-- > 0;) {
        acc = CombineAnd(parts[i], acc);
      }
      return acc;
    }
  }

  // R3: separator decomposition over the active domain.
  if (auto sep = FindSeparator(pruned, is_prob_); sep.has_value()) {
    // Only decompose if at least one disjunct still has a variable to ground
    // (all-ground queries go to the fallback).
    bool any_var = false;
    for (int v : sep->var_of_disjunct) any_var |= (v >= 0);
    if (any_var) {
      // Collect candidate separator values: per disjunct, intersect the
      // distinct values of the separator column across its probabilistic
      // atoms; union across disjuncts.
      std::set<Value> domain;
      for (size_t d = 0; d < pruned.disjuncts.size(); ++d) {
        const int z = sep->var_of_disjunct[d];
        if (z < 0) continue;
        std::vector<Value> values;
        bool first = true;
        for (const Atom& a : pruned.disjuncts[d].atoms) {
          if (!is_prob_(a.relation)) continue;
          const size_t pos = sep->position.at(a.relation);
          std::vector<Value> col = AtomColumnDomain(db_, a, pos);
          if (first) {
            values = std::move(col);
            first = false;
          } else {
            std::vector<Value> merged;
            std::set_intersection(values.begin(), values.end(), col.begin(),
                                  col.end(), std::back_inserter(merged));
            values = std::move(merged);
          }
        }
        domain.insert(values.begin(), values.end());
      }
      std::vector<ConResult> blocks;
      blocks.reserve(domain.size());
      for (Value a : domain) {
        Ucq sub = pruned;
        for (size_t d = 0; d < sub.disjuncts.size(); ++d) {
          const int z = sep->var_of_disjunct[d];
          if (z >= 0) SubstituteInDisjunct(&sub, d, z, a);
        }
        MVDB_ASSIGN_OR_RETURN(ConResult r, BuildUcq(sub));
        if (r.id == BddManager::kTrue) return r;
        if (r.id != BddManager::kFalse) blocks.push_back(r);
      }
      if (blocks.empty()) return ConResult{};  // false
      // Domain values ascend, and the separator-first order makes block
      // ranges ascend with them; fold right-to-left so each block is
      // rebuilt at most once (Proposition 1's linear bound).
      ConResult acc = blocks.back();
      for (size_t i = blocks.size() - 1; i-- > 0;) {
        acc = CombineOr(blocks[i], acc);
      }
      return acc;
    }
  }

  // R4: residual subquery — classic synthesis on its lineage.
  return BuildFallback(pruned);
}

// ---------------------------------------------------------------------------
// ConObddTemplate: the plan-once / execute-per-block form of BuildUcq.
// ---------------------------------------------------------------------------

/// One mirrored BuildUcq invocation. `det_checks` replays the
/// deterministic-disjunct prune (value-dependent truth, so evaluated per
/// binding); the kind records which rule the signature selects.
struct ConObddTemplateNode {
  enum class Kind {
    kFalse,    ///< no probabilistic disjunct survives the prune
    kLeaf,     ///< R4 residual: prepared join plans + lineage synthesis
    kOrFold,   ///< R1 independent unions
    kAndFold,  ///< R2 independent join components
    kGeneric,  ///< R3 separator decomposition: domain is value-dependent,
               ///< so the grounded residual runs the classic recursion
  };

  /// R2 child: either a probabilistic sub-node or a deterministic-only
  /// component check (false kills the conjunction, true is dropped).
  struct Child {
    std::unique_ptr<ConObddTemplateNode> sub;
    std::unique_ptr<const PlanTemplate> det;
  };

  Kind kind = Kind::kFalse;
  std::vector<std::unique_ptr<const PlanTemplate>> det_checks;
  std::unique_ptr<const PlanTemplate> leaf;
  std::vector<Child> children;
  Ucq generic;  ///< abstracted residual for kGeneric
};

ConObddTemplate::ConObddTemplate() = default;
ConObddTemplate::~ConObddTemplate() = default;

Status ConObddTemplate::PlanNode(const Database& db, const IsProbFn& is_prob,
                                 const Ucq& q, ConObddTemplateNode* out) {
  // Deterministic-only disjuncts: truth is binding-dependent, so record a
  // prepared plan per disjunct (evaluated in disjunct order at execution).
  for (size_t d = 0; d < q.disjuncts.size(); ++d) {
    if (HasProbAtom(q.disjuncts[d], is_prob)) continue;
    MVDB_ASSIGN_OR_RETURN(
        std::unique_ptr<const PlanTemplate> check,
        PlanTemplate::PlanAbstracted(db, SubUcq(q, {d}), EvalOptions{}));
    out->det_checks.push_back(std::move(check));
  }
  Ucq pruned = q;
  std::erase_if(pruned.disjuncts, [&](const ConjunctiveQuery& cq) {
    return !HasProbAtom(cq, is_prob);
  });
  if (pruned.disjuncts.empty()) {
    out->kind = ConObddTemplateNode::Kind::kFalse;
    return Status::OK();
  }

  // R1: independent unions — the grouping is a function of the relation
  // symbols alone, hence of the signature.
  const auto groups = IndependentUnionComponents(pruned, is_prob);
  if (groups.size() > 1) {
    out->kind = ConObddTemplateNode::Kind::kOrFold;
    for (const auto& g : groups) {
      ConObddTemplateNode::Child child;
      child.sub = std::make_unique<ConObddTemplateNode>();
      MVDB_RETURN_NOT_OK(PlanNode(db, is_prob, SubUcq(pruned, g),
                                  child.sub.get()));
      out->children.push_back(std::move(child));
    }
    return Status::OK();
  }

  // R2: join components. Unifiable() compares abstracted constants by slot
  // id, which is exactly value equality for every binding of the signature,
  // so the component split is shared too.
  if (pruned.disjuncts.size() == 1) {
    auto comps = ConnectedComponents(pruned.disjuncts[0], is_prob);
    if (comps.size() > 1) {
      out->kind = ConObddTemplateNode::Kind::kAndFold;
      for (auto& comp : comps) {
        Ucq sub = pruned;
        const bool det = !HasProbAtom(comp, is_prob);
        sub.disjuncts = {std::move(comp)};
        ConObddTemplateNode::Child child;
        if (det) {
          MVDB_ASSIGN_OR_RETURN(
              child.det,
              PlanTemplate::PlanAbstracted(db, std::move(sub), EvalOptions{}));
        } else {
          child.sub = std::make_unique<ConObddTemplateNode>();
          MVDB_RETURN_NOT_OK(PlanNode(db, is_prob, sub, child.sub.get()));
        }
        out->children.push_back(std::move(child));
      }
      return Status::OK();
    }
  }

  // R3: the separator *choice* is structural but the active-domain
  // expansion is not — bind the residual and run the classic recursion.
  if (auto sep = FindSeparator(pruned, is_prob); sep.has_value()) {
    bool any_var = false;
    for (int v : sep->var_of_disjunct) any_var |= (v >= 0);
    if (any_var) {
      out->kind = ConObddTemplateNode::Kind::kGeneric;
      out->generic = std::move(pruned);
      return Status::OK();
    }
  }

  // R4: residual subquery — prepared join plans, lineage synthesis at exec.
  out->kind = ConObddTemplateNode::Kind::kLeaf;
  MVDB_ASSIGN_OR_RETURN(
      out->leaf,
      PlanTemplate::PlanAbstracted(db, std::move(pruned), EvalOptions{}));
  return Status::OK();
}

StatusOr<std::unique_ptr<const ConObddTemplate>> ConObddTemplate::Plan(
    const Database& db, const IsProbFn& is_prob, const Ucq& exemplar) {
  if (!exemplar.IsBoolean()) {
    return Status::InvalidArgument("ConObdd requires a Boolean query");
  }
  std::unique_ptr<ConObddTemplate> tmpl(new ConObddTemplate());
  tmpl->db_ = &db;
  Ucq abstracted = exemplar;
  AbstractUcqConstants(&abstracted);
  tmpl->root_ = std::make_unique<ConObddTemplateNode>();
  MVDB_RETURN_NOT_OK(PlanNode(db, is_prob, abstracted, tmpl->root_.get()));
  return std::unique_ptr<const ConObddTemplate>(std::move(tmpl));
}

StatusOr<ConResult> ConObddTemplate::ExecNode(const ConObddTemplateNode& node,
                                              std::span<const Value> slots,
                                              ConObddScratch* scratch,
                                              ConObddBuilder* helper) const {
  // Deterministic-disjunct prune: a true disjunct makes the whole query
  // certainly true on I_poss (same early exit as BuildUcq).
  for (const auto& check : node.det_checks) {
    MVDB_RETURN_NOT_OK(
        check->ExecuteBoolean(slots, &scratch->eval, &scratch->lineage));
    if (scratch->lineage.IsTrue()) {
      ConResult out;
      out.id = BddManager::kTrue;
      return out;
    }
  }
  switch (node.kind) {
    case ConObddTemplateNode::Kind::kFalse:
      return ConResult{};
    case ConObddTemplateNode::Kind::kLeaf: {
      MVDB_RETURN_NOT_OK(
          node.leaf->ExecuteBoolean(slots, &scratch->eval, &scratch->lineage));
      return helper->FromLineage(scratch->lineage);
    }
    case ConObddTemplateNode::Kind::kOrFold: {
      std::vector<ConResult> parts;
      parts.reserve(node.children.size());
      for (const auto& child : node.children) {
        MVDB_ASSIGN_OR_RETURN(ConResult r,
                              ExecNode(*child.sub, slots, scratch, helper));
        parts.push_back(r);
      }
      std::sort(parts.begin(), parts.end(),
                [](const ConResult& a, const ConResult& b) {
                  return a.min_level < b.min_level;
                });
      // Right-to-left fold: each part rebuilt once (see BuildUcq).
      ConResult acc = parts.back();
      for (size_t i = parts.size() - 1; i-- > 0;) {
        acc = helper->CombineOr(parts[i], acc);
      }
      return acc;
    }
    case ConObddTemplateNode::Kind::kAndFold: {
      std::vector<ConResult> parts;
      parts.reserve(node.children.size());
      for (const auto& child : node.children) {
        if (child.det != nullptr) {
          // Deterministic component: true keeps the conjunction, false
          // kills it.
          MVDB_RETURN_NOT_OK(child.det->ExecuteBoolean(slots, &scratch->eval,
                                                       &scratch->lineage));
          if (!scratch->lineage.IsTrue()) return ConResult{};  // false conjunct
          continue;
        }
        MVDB_ASSIGN_OR_RETURN(ConResult r,
                              ExecNode(*child.sub, slots, scratch, helper));
        parts.push_back(r);
      }
      if (parts.empty()) {
        ConResult out;
        out.id = BddManager::kTrue;
        return out;
      }
      std::sort(parts.begin(), parts.end(),
                [](const ConResult& a, const ConResult& b) {
                  return a.min_level < b.min_level;
                });
      ConResult acc = parts.back();
      for (size_t i = parts.size() - 1; i-- > 0;) {
        acc = helper->CombineAnd(parts[i], acc);
      }
      return acc;
    }
    case ConObddTemplateNode::Kind::kGeneric: {
      Ucq grounded = node.generic;
      BindUcqConstants(&grounded, slots);
      return helper->BuildUcq(grounded);
    }
  }
  return Status::Internal("unreachable template node kind");
}

StatusOr<NodeId> ConObddTemplate::Execute(std::span<const Value> slots,
                                          BddManager* mgr,
                                          ConObddScratch* scratch) const {
  ConObddBuilder helper(*db_, mgr);
  MVDB_ASSIGN_OR_RETURN(ConResult r, ExecNode(*root_, slots, scratch, &helper));
  return r.id;
}

}  // namespace mvdb
