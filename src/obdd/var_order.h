// Copyright 2026 The MarkoView Authors.
//
// VarOrder: the immutable global variable order Pi shared by every
// BddManager that compiles against the same MVDB. Factoring the order (and
// its VarId -> level map) out of BddManager lets the sharded offline
// pipeline create one lightweight manager per compilation shard without
// duplicating the order — at DBLP scale the level map alone is millions of
// entries, and the MV-index blocks are variable-disjoint by construction
// (Section 4), so per-shard managers over the *same* order produce exactly
// the OBDDs a single shared manager would.
//
// The level map is a dense array indexed by VarId (VarIds are allocated
// 0..N-1 in tuple order by the translation), not a hash map: constructing
// the order is then two linear passes, which is what lets a serve process
// that LoadMapped's a persisted index stand up the order in milliseconds
// instead of re-inserting millions of hash-map entries.

#ifndef MVDB_OBDD_VAR_ORDER_H_
#define MVDB_OBDD_VAR_ORDER_H_

#include <cstdint>
#include <vector>

#include "relational/types.h"
#include "util/logging.h"

namespace mvdb {

/// Immutable total order over tuple variables: position = level. Shared
/// (via shared_ptr<const VarOrder>) across managers; never mutated after
/// construction, so concurrent readers need no synchronization.
class VarOrder {
 public:
  explicit VarOrder(std::vector<VarId> order) : order_(std::move(order)) {
    VarId max_var = -1;
    for (const VarId v : order_) {
      MVDB_CHECK_GE(v, 0) << "negative variable in order";
      if (v > max_var) max_var = v;
    }
    level_of_.assign(static_cast<size_t>(max_var) + 1, kAbsent);
    for (size_t l = 0; l < order_.size(); ++l) {
      int32_t& slot = level_of_[static_cast<size_t>(order_[l])];
      MVDB_CHECK(slot == kAbsent) << "duplicate variable in order: "
                                  << order_[l];
      slot = static_cast<int32_t>(l);
    }
  }

  size_t num_levels() const { return order_.size(); }
  VarId var_at_level(int32_t level) const {
    return order_[static_cast<size_t>(level)];
  }
  /// Level of a variable; CHECK-fails if the variable is not in the order.
  int32_t level_of_var(VarId v) const {
    MVDB_CHECK(has_var(v)) << "variable " << v << " not in order";
    return level_of_[static_cast<size_t>(v)];
  }
  bool has_var(VarId v) const {
    return v >= 0 && static_cast<size_t>(v) < level_of_.size() &&
           level_of_[static_cast<size_t>(v)] != kAbsent;
  }
  const std::vector<VarId>& vars() const { return order_; }

 private:
  static constexpr int32_t kAbsent = -1;

  std::vector<VarId> order_;
  std::vector<int32_t> level_of_;  ///< indexed by VarId; kAbsent = not in Pi
};

}  // namespace mvdb

#endif  // MVDB_OBDD_VAR_ORDER_H_
