// Copyright 2026 The MarkoView Authors.
//
// VarOrder: the immutable global variable order Pi shared by every
// BddManager that compiles against the same MVDB. Factoring the order (and
// its VarId -> level map) out of BddManager lets the sharded offline
// pipeline create one lightweight manager per compilation shard without
// duplicating the order — at DBLP scale the level map alone is millions of
// entries, and the MV-index blocks are variable-disjoint by construction
// (Section 4), so per-shard managers over the *same* order produce exactly
// the OBDDs a single shared manager would.

#ifndef MVDB_OBDD_VAR_ORDER_H_
#define MVDB_OBDD_VAR_ORDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relational/types.h"
#include "util/logging.h"

namespace mvdb {

/// Immutable total order over tuple variables: position = level. Shared
/// (via shared_ptr<const VarOrder>) across managers; never mutated after
/// construction, so concurrent readers need no synchronization.
class VarOrder {
 public:
  explicit VarOrder(std::vector<VarId> order) : order_(std::move(order)) {
    level_of_.reserve(order_.size());
    for (size_t l = 0; l < order_.size(); ++l) {
      auto [it, inserted] = level_of_.emplace(order_[l], static_cast<int32_t>(l));
      MVDB_CHECK(inserted) << "duplicate variable in order: " << order_[l];
    }
  }

  size_t num_levels() const { return order_.size(); }
  VarId var_at_level(int32_t level) const {
    return order_[static_cast<size_t>(level)];
  }
  /// Level of a variable; CHECK-fails if the variable is not in the order.
  int32_t level_of_var(VarId v) const {
    auto it = level_of_.find(v);
    MVDB_CHECK(it != level_of_.end()) << "variable " << v << " not in order";
    return it->second;
  }
  bool has_var(VarId v) const { return level_of_.count(v) > 0; }
  const std::vector<VarId>& vars() const { return order_; }

 private:
  std::vector<VarId> order_;
  std::unordered_map<VarId, int32_t> level_of_;
};

}  // namespace mvdb

#endif  // MVDB_OBDD_VAR_ORDER_H_
