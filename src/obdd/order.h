// Copyright 2026 The MarkoView Authors.
//
// Variable orders Pi for OBDDs, derived from attribute permutations pi
// (Section 4.2). Given per-relation permutations of attributes and the
// ordered active domain, the paper defines a total order on all
// probabilistic tuples: group by the first (permuted) attribute value in
// domain order, then recurse on the remaining attributes. That recursive
// definition is exactly lexicographic order on the permuted value sequences,
// with shorter sequences first on prefix ties — e.g. for R(A), S(A,B) with
// identity pi and domain a1 < a2 < b1 < ... the order is
// X1(=R(a1)), Y1(=S(a1,b1)), Y2(=S(a1,b2)), X2(=R(a2)), Y3, Y4 (Fig. 3).
//
// The order additionally supports a coarse component grouping: independent
// components of W (view groups sharing no probabilistic relation) are laid
// out consecutively so that OBDD concatenation applies between them.
//
// The construction is bucketed, mirroring the paper's recursive definition:
// tuples are grouped by (component, first permuted value) — each bucket is
// one future MV-index block's variable range — with an open-addressed value
// table and a counting scatter, and only the tiny per-bucket slices are
// comparison-sorted (in parallel across buckets). No per-tuple heap
// allocation, no monolithic multi-million-entry sort: at the 1M-author DBLP
// scale this is what keeps the global ordering off the offline-build
// critical path.

#ifndef MVDB_OBDD_ORDER_H_
#define MVDB_OBDD_ORDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "query/analysis.h"
#include "relational/database.h"

namespace mvdb {

/// Specification of the variable order.
struct OrderSpec {
  /// Per-relation attribute permutation; relations absent use the identity.
  AttrPerm pi;
  /// Optional coarse grouping: relations with smaller rank come first.
  /// Relations absent default to rank 0. Used to keep independent view
  /// groups of W contiguous.
  std::unordered_map<std::string, int> component_rank;
};

/// Computes the total order Pi over all probabilistic tuple variables of the
/// database: a vector of VarIds, position = level. Deterministic tables have
/// no variables and do not participate. `num_threads` fans the per-table key
/// extraction and the per-bucket sorts out (1 = serial, <= 0 = hardware
/// concurrency); the resulting order is identical for every thread count.
/// `use_radix_sort` (default) routes bucket slices large enough to amortize
/// the histogram passes through the LSD counting-sort kernel over the flat
/// POD keys, keeping std::sort for the small ones; false is pure comparison
/// sort everywhere. Both produce bit-identical orders (order_test pins it).
std::vector<VarId> BuildVariableOrder(const Database& db, const OrderSpec& spec,
                                      int num_threads = 1,
                                      bool use_radix_sort = true);

/// Convenience: identity permutations, no grouping.
std::vector<VarId> BuildDefaultOrder(const Database& db);

/// Splices freshly allocated variables into an existing order at exactly
/// the positions BuildVariableOrder(db, spec) would give them, leaving the
/// relative order of all existing variables untouched (the old order is a
/// subsequence of the result — what MvIndex::ApplyStructuralDelta requires
/// to remap block levels monotonically). The paper's order is a pure
/// function of each tuple's (component rank, permuted values, relation
/// rank, row id) key, so a new tuple's slot is found by binary search with
/// keys computed on the fly; because new rows carry the largest row id of
/// their table, the spliced order is bit-identical to a from-scratch
/// rebuild over the grown database. `new_vars` must be variables of `db`
/// not present in `order`.
std::vector<VarId> InsertVarsIntoOrder(const Database& db,
                                       const OrderSpec& spec,
                                       const std::vector<VarId>& order,
                                       const std::vector<VarId>& new_vars);

}  // namespace mvdb

#endif  // MVDB_OBDD_ORDER_H_
