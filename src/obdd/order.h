// Copyright 2026 The MarkoView Authors.
//
// Variable orders Pi for OBDDs, derived from attribute permutations pi
// (Section 4.2). Given per-relation permutations of attributes and the
// ordered active domain, the paper defines a total order on all
// probabilistic tuples: group by the first (permuted) attribute value in
// domain order, then recurse on the remaining attributes. That recursive
// definition is exactly lexicographic order on the permuted value sequences,
// with shorter sequences first on prefix ties — e.g. for R(A), S(A,B) with
// identity pi and domain a1 < a2 < b1 < ... the order is
// X1(=R(a1)), Y1(=S(a1,b1)), Y2(=S(a1,b2)), X2(=R(a2)), Y3, Y4 (Fig. 3).
//
// The order additionally supports a coarse component grouping: independent
// components of W (view groups sharing no probabilistic relation) are laid
// out consecutively so that OBDD concatenation applies between them.

#ifndef MVDB_OBDD_ORDER_H_
#define MVDB_OBDD_ORDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "query/analysis.h"
#include "relational/database.h"

namespace mvdb {

/// Specification of the variable order.
struct OrderSpec {
  /// Per-relation attribute permutation; relations absent use the identity.
  AttrPerm pi;
  /// Optional coarse grouping: relations with smaller rank come first.
  /// Relations absent default to rank 0. Used to keep independent view
  /// groups of W contiguous.
  std::unordered_map<std::string, int> component_rank;
};

/// Computes the total order Pi over all probabilistic tuple variables of the
/// database: a vector of VarIds, position = level. Deterministic tables have
/// no variables and do not participate.
std::vector<VarId> BuildVariableOrder(const Database& db, const OrderSpec& spec);

/// Convenience: identity permutations, no grouping.
std::vector<VarId> BuildDefaultOrder(const Database& db);

}  // namespace mvdb

#endif  // MVDB_OBDD_ORDER_H_
