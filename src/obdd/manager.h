// Copyright 2026 The MarkoView Authors.
//
// Ordered Binary Decision Diagrams (Section 4.1). BddManager is a
// hash-consed OBDD package in the style of CUDD: a unique table guarantees
// canonicity (per variable order), and binary operations are computed by the
// classic memoized apply ("synthesis"), whose cost is O(|G1||G2|). It also
// provides the paper's *concatenation* primitives (Section 4.2): when the
// operands' variable ranges do not interleave, OR/AND can be formed by
// redirecting sink nodes, in time linear in the first operand only — the key
// ingredient that makes MarkoView compilation two orders of magnitude faster
// than native CUDD synthesis (Fig. 8).
//
// Probability evaluation uses Shannon expansion and is valid for marginal
// probabilities outside [0,1] (Section 3.3): the expansion is a polynomial
// identity in the tuple probabilities.

#ifndef MVDB_OBDD_MANAGER_H_
#define MVDB_OBDD_MANAGER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obdd/var_order.h"
#include "prob/lineage.h"
#include "util/flat_hash.h"
#include "util/scaled_double.h"
#include "relational/types.h"
#include "util/logging.h"

namespace mvdb {

/// Node handle. 0 and 1 are the terminal sinks.
using NodeId = int32_t;

/// One OBDD node: branch variable (as a level in the global order) and the
/// 0/1 successors.
struct BddNode {
  int32_t level;
  NodeId lo;
  NodeId hi;
};

class BddManager {
 public:
  static constexpr NodeId kFalse = 0;
  static constexpr NodeId kTrue = 1;
  static constexpr int32_t kSinkLevel = std::numeric_limits<int32_t>::max();

  /// `order[l]` is the VarId branched on at level l. Every variable that any
  /// formula built in this manager mentions must appear in the order.
  explicit BddManager(std::vector<VarId> order)
      : BddManager(std::make_shared<const VarOrder>(std::move(order))) {}

  /// Shares an existing immutable order — the cheap constructor the sharded
  /// MV-index build uses to create one manager per compilation shard.
  explicit BddManager(std::shared_ptr<const VarOrder> order);

  const std::shared_ptr<const VarOrder>& order() const { return order_; }
  size_t num_levels() const { return order_->num_levels(); }
  VarId var_at_level(int32_t level) const { return order_->var_at_level(level); }
  /// Level of a variable; CHECK-fails if the variable is not in the order.
  int32_t level_of_var(VarId v) const { return order_->level_of_var(v); }
  bool has_var(VarId v) const { return order_->has_var(v); }

  const BddNode& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  int32_t level(NodeId id) const { return nodes_[static_cast<size_t>(id)].level; }
  bool IsSink(NodeId id) const { return id == kFalse || id == kTrue; }

  /// Reduced, hash-consed node constructor.
  NodeId Mk(int32_t level, NodeId lo, NodeId hi);

  /// The single-variable BDD for v.
  NodeId MkVar(VarId v) { return Mk(level_of_var(v), kFalse, kTrue); }

  /// Classic memoized apply (synthesis). O(|f| * |g|).
  NodeId And(NodeId f, NodeId g) { return Apply(OpKind::kAnd, f, g); }
  NodeId Or(NodeId f, NodeId g) { return Apply(OpKind::kOr, f, g); }

  /// Complement by sink swap; O(|f|), memoized per manager.
  NodeId Not(NodeId f);

  /// Concatenation (Section 4.2): redirects every kFalse (resp. kTrue) sink
  /// of f to g. Sound for disjunction (resp. conjunction) when every level
  /// in f is strictly smaller than every level in g. O(|f|).
  NodeId ConcatOr(NodeId f, NodeId g);
  NodeId ConcatAnd(NodeId f, NodeId g);

  /// Conjunction of positive literals, built directly (no apply).
  NodeId FromClause(const Clause& clause) { return FromSignedClause(clause, {}); }

  /// Conjunction pos ^ !neg (Section 2.5 negation extension), built
  /// directly. Returns kFalse on a contradictory literal pair.
  NodeId FromSignedClause(const Clause& pos, const Clause& neg);

  /// Baseline OBDD construction exactly as a stock package performs it:
  /// clause BDDs combined by repeated synthesis. This is the "native CUDD"
  /// comparator in Fig. 8.
  NodeId FromLineageSynthesis(const Lineage& lineage);

  /// FromLineageSynthesis that additionally widens *min_level / *max_level
  /// by the level of every literal the lineage mentions (contradictory
  /// clauses included), during the same pass over the clauses. The ConObdd
  /// builder needs that range for concatenation eligibility; a separate
  /// walk re-derived it per block.
  NodeId FromLineageSynthesisRanged(const Lineage& lineage, int32_t* min_level,
                                    int32_t* max_level);

  /// Selects scratch-reusing, pre-sorted clause synthesis: FromSignedClause
  /// fills a member literal buffer (skipping the per-clause sort when the
  /// emitted literals are already level-sorted — the common case, since
  /// lineage clauses come out of ordered scans) and ConcatOr/ConcatAnd
  /// reuse a member memo instead of allocating one per call. Results are
  /// bit-identical either way; the hatch exists for A/B parity tests.
  void set_scratch_synthesis(bool on) { scratch_synthesis_ = on; }
  bool scratch_synthesis() const { return scratch_synthesis_; }

  /// P(f) by memoized Shannon expansion; probs indexed by VarId. Valid for
  /// probabilities outside [0,1]. Computed in extended-range arithmetic —
  /// with negative probabilities, per-node values routinely leave double
  /// range even when the final ratio of interest is ordinary (see
  /// util/scaled_double.h).
  ScaledDouble ProbScaled(NodeId f, const std::vector<double>& var_probs) const;

  /// Convenience: ProbScaled converted to double (in-range results only).
  double Prob(NodeId f, const std::vector<double>& var_probs) const {
    return ProbScaled(f, var_probs).ToDouble();
  }

  /// Number of distinct nodes reachable from f (including sinks).
  size_t CountNodes(NodeId f) const;

  /// Smallest / largest internal level reachable from f. For sinks-only
  /// BDDs min > max (empty range).
  std::pair<int32_t, int32_t> LevelRange(NodeId f) const;

  /// Construction-effort counters (Fig. 8's cost proxy).
  size_t num_created() const { return nodes_.size() - 2; }
  size_t apply_steps() const { return apply_steps_; }
  void ResetCounters() { apply_steps_ = 0; }

  /// Pre-sizes the node vector and unique table for a build expected to
  /// create ~`n` nodes, so large compilations stop rehashing mid-build.
  void ReserveNodes(size_t n);
  /// Grows the lossy apply/not cache toward one slot per expected memoized
  /// step (clamped; see DirectMappedCache::kMaxEntries).
  void ReserveCaches(size_t n);
  /// Drops the apply/not memo cache and returns its allocation to the
  /// default footprint, reporting the bytes freed. Purely a memory release:
  /// results are hash-consed, so re-deriving an evicted entry returns the
  /// identical node. The sharded MV-index build calls this once per shard
  /// when the compile phase ends — not between blocks: the fixed-size cache
  /// cannot grow, and its stale entries stay valid, so a warm cache only
  /// helps the shard's next block.
  size_t ClearOpCaches();

  /// Cumulative bytes released by ClearOpCaches() over the manager's
  /// lifetime (surfaced as MvIndexBuildStats::op_cache_freed_bytes).
  size_t cache_bytes_freed() const { return cache_bytes_freed_; }

  /// Resident bytes of the node store: node vector + open-addressed unique
  /// table + the direct-mapped op cache.
  size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(BddNode) + unique_.MemoryBytes() +
           op_cache_.MemoryBytes();
  }

 private:
  /// Tags for the packed op-cache key. Values stay below 3 so the packed
  /// key can never equal DirectMappedCache::kEmptyKey (all ones).
  enum class OpKind : uint8_t { kAnd = 0, kOr = 1, kNot = 2 };

  static uint64_t OpKey(OpKind op, NodeId f, NodeId g) {
    return (static_cast<uint64_t>(op) << 62) |
           (static_cast<uint64_t>(static_cast<uint32_t>(f)) << 31) |
           static_cast<uint64_t>(static_cast<uint32_t>(g));
  }
  static uint64_t NodeHash(int32_t level, NodeId lo, NodeId hi) {
    return Mix64((static_cast<uint64_t>(static_cast<uint32_t>(level)) << 32) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 16) ^
                 static_cast<uint64_t>(static_cast<uint32_t>(hi)));
  }

  NodeId Apply(OpKind op, NodeId f, NodeId g);
  NodeId ConcatRec(NodeId f, NodeId g, NodeId sink_to_replace,
                   std::unordered_map<NodeId, NodeId>* memo);
  /// The scratch-path clause build; when min_level/max_level are non-null
  /// they are widened by every literal's level.
  NodeId FromSignedClauseScratch(const Clause& pos, const Clause& neg,
                                 int32_t* min_level, int32_t* max_level);

  std::shared_ptr<const VarOrder> order_;
  std::vector<BddNode> nodes_;
  /// Hash-consing table: open-addressed ids into nodes_ (the keys are the
  /// node triples themselves; see util/flat_hash.h).
  FlatIdTable unique_;
  /// One CUDD-style lossy computed table for And/Or/Not.
  DirectMappedCache op_cache_;
  size_t apply_steps_ = 0;
  size_t cache_bytes_freed_ = 0;
  bool scratch_synthesis_ = true;
  /// Per-clause literal buffer of the scratch synthesis path.
  std::vector<std::pair<int32_t, bool>> lits_scratch_;
  /// Concat memo reused across ConcatOr/ConcatAnd calls (cleared per call).
  std::unordered_map<NodeId, NodeId> concat_memo_;
};

}  // namespace mvdb

#endif  // MVDB_OBDD_MANAGER_H_
