#include "obdd/order.h"

#include <algorithm>

#include "util/flat_hash.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace mvdb {
namespace {

/// Per-tuple ordering key. The permuted value sequence lives in one shared
/// flat buffer (`vals`, offset/arity addressed) so building millions of keys
/// performs zero per-key allocations.
struct OrderKey {
  Value v0;            ///< first permuted value — the bucket key
  size_t val_offset;   ///< start of the full permuted sequence in `vals`
  uint32_t arity;
  uint32_t rel_rank;   ///< rank of the relation name (alphabetical)
  RowId row;
  VarId var;
};

/// Total order identical to the original monolithic comparator: component
/// is handled by bucket layout; within a bucket compare the permuted
/// sequences lexicographically (shorter first on prefix ties), then
/// relation-name rank, then row id. Keys are unique (rel_rank, row), so the
/// order is deterministic for any sort schedule.
struct KeyLess {
  const Value* vals;
  bool operator()(const OrderKey& a, const OrderKey& b) const {
    const Value* pa = vals + a.val_offset;
    const Value* pb = vals + b.val_offset;
    const uint32_t m = std::min(a.arity, b.arity);
    for (uint32_t k = 0; k < m; ++k) {
      if (pa[k] != pb[k]) return pa[k] < pb[k];
    }
    if (a.arity != b.arity) return a.arity < b.arity;
    if (a.rel_rank != b.rel_rank) return a.rel_rank < b.rel_rank;
    return a.row < b.row;
  }
};

/// One probabilistic table's slice of the key/value buffers.
struct TableSlice {
  const Table* table = nullptr;
  int component = 0;
  std::vector<size_t> perm;
  uint32_t rel_rank = 0;
  size_t key_offset = 0;
  size_t val_offset = 0;
};

}  // namespace

std::vector<VarId> BuildVariableOrder(const Database& db, const OrderSpec& spec,
                                      int num_threads) {
  // Resolve participating tables, their permutations and name ranks, and
  // group them by component rank (stable within a component) so the key
  // buffer is laid out component-major from the start.
  std::vector<TableSlice> slices;
  std::vector<std::string> prob_names;
  for (const std::string& name : db.table_names()) {
    const Table* t = db.Find(name);
    if (!t->probabilistic()) continue;
    prob_names.push_back(name);
    TableSlice s;
    s.table = t;
    s.component = 0;
    if (auto it = spec.component_rank.find(name); it != spec.component_rank.end()) {
      s.component = it->second;
    }
    if (auto it = spec.pi.find(name); it != spec.pi.end()) {
      s.perm = it->second;
      MVDB_CHECK_EQ(s.perm.size(), t->arity()) << "bad permutation for " << name;
    } else {
      s.perm.resize(t->arity());
      for (size_t i = 0; i < s.perm.size(); ++i) s.perm[i] = i;
    }
    slices.push_back(std::move(s));
  }
  std::sort(prob_names.begin(), prob_names.end());
  for (TableSlice& s : slices) {
    s.rel_rank = static_cast<uint32_t>(
        std::lower_bound(prob_names.begin(), prob_names.end(),
                         s.table->name()) -
        prob_names.begin());
  }
  std::stable_sort(slices.begin(), slices.end(),
                   [](const TableSlice& a, const TableSlice& b) {
                     return a.component < b.component;
                   });
  size_t total_keys = 0, total_vals = 0;
  for (TableSlice& s : slices) {
    s.key_offset = total_keys;
    s.val_offset = total_vals;
    total_keys += s.table->size();
    total_vals += s.table->size() * s.table->arity();
  }

  // Extract every tuple's permuted key, sharded per table over row chunks.
  // Each key lands in a precomputed slot, so the layout is deterministic.
  std::vector<OrderKey> keys(total_keys);
  std::vector<Value> vals(total_vals);
  for (const TableSlice& s : slices) {
    const Table& t = *s.table;
    const size_t arity = t.arity();
    ParallelForChunked(num_threads, t.size(), 4096, [&](size_t r) {
      OrderKey& key = keys[s.key_offset + r];
      Value* out = vals.data() + s.val_offset + r * arity;
      for (size_t p = 0; p < arity; ++p) {
        out[p] = t.At(static_cast<RowId>(r), s.perm[p]);
      }
      key.v0 = out[0];
      key.val_offset = s.val_offset + r * arity;
      key.arity = static_cast<uint32_t>(arity);
      key.rel_rank = s.rel_rank;
      key.row = static_cast<RowId>(r);
      key.var = t.var(static_cast<RowId>(r));
    });
  }

  // Bucket each component's slice by first permuted value — the per-block
  // variable groups of the MV-index decomposition — then sort only within
  // buckets. Component slices are already contiguous in `keys`.
  std::vector<OrderKey> sorted(total_keys);
  std::vector<Value> bucket_values;     // distinct v0, first-occurrence order
  std::vector<uint32_t> bucket_counts;  // parallel to bucket_values
  std::vector<uint32_t> slot_table;     // open-addressed v0 -> bucket slot
  std::vector<uint32_t> bucket_of;      // per key in the component slice
  std::vector<size_t> bucket_begin, bucket_end;
  constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  size_t comp_begin = 0;
  size_t out_pos = 0;
  for (size_t si = 0; si < slices.size();) {
    // [comp_begin, comp_end) = one component's keys.
    size_t sj = si;
    size_t comp_end = comp_begin;
    while (sj < slices.size() &&
           slices[sj].component == slices[si].component) {
      comp_end += slices[sj].table->size();
      ++sj;
    }
    const size_t n = comp_end - comp_begin;

    // Assign v0 values to bucket slots (first occurrence order) and count.
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    slot_table.assign(cap, kEmptySlot);
    const uint32_t mask = static_cast<uint32_t>(cap - 1);
    bucket_values.clear();
    bucket_counts.clear();
    bucket_of.resize(n);
    for (size_t k = 0; k < n; ++k) {
      const Value v = keys[comp_begin + k].v0;
      uint32_t pos =
          static_cast<uint32_t>(Mix64(static_cast<uint64_t>(v))) & mask;
      while (true) {
        const uint32_t s = slot_table[pos];
        if (s == kEmptySlot) {
          slot_table[pos] = static_cast<uint32_t>(bucket_values.size());
          bucket_of[k] = static_cast<uint32_t>(bucket_values.size());
          bucket_values.push_back(v);
          bucket_counts.push_back(1);
          break;
        }
        if (bucket_values[s] == v) {
          ++bucket_counts[s];
          bucket_of[k] = s;
          break;
        }
        pos = (pos + 1) & mask;
      }
    }

    // Order buckets by value (the domain order of the paper's grouping) and
    // lay out their output ranges by prefix sum.
    const size_t num_buckets = bucket_values.size();
    std::vector<uint32_t> by_value(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) by_value[b] = static_cast<uint32_t>(b);
    std::sort(by_value.begin(), by_value.end(), [&](uint32_t a, uint32_t b) {
      return bucket_values[a] < bucket_values[b];
    });
    bucket_begin.assign(num_buckets, 0);
    bucket_end.assign(num_buckets, 0);
    size_t offset = out_pos;
    for (uint32_t slot : by_value) {
      bucket_begin[slot] = offset;
      offset += bucket_counts[slot];
      bucket_end[slot] = offset;
    }

    // Counting scatter into the sorted array, then sort each bucket slice
    // independently — buckets share v0 and component, so the full
    // comparator only ever looks at the residual key fields.
    std::vector<size_t> cursor(bucket_begin);
    for (size_t k = 0; k < n; ++k) {
      sorted[cursor[bucket_of[k]]++] = keys[comp_begin + k];
    }
    KeyLess less{vals.data()};
    ParallelForChunked(num_threads, num_buckets, 64, [&](size_t b) {
      const uint32_t slot = by_value[b];
      std::sort(sorted.begin() + static_cast<ptrdiff_t>(bucket_begin[slot]),
                sorted.begin() + static_cast<ptrdiff_t>(bucket_end[slot]),
                less);
    });

    out_pos = comp_end;
    comp_begin = comp_end;
    si = sj;
  }

  std::vector<VarId> order;
  order.reserve(total_keys);
  for (const OrderKey& k : sorted) order.push_back(k.var);
  return order;
}

std::vector<VarId> BuildDefaultOrder(const Database& db) {
  return BuildVariableOrder(db, OrderSpec{});
}

}  // namespace mvdb
