#include "obdd/order.h"

#include <algorithm>

#include "util/flat_hash.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace mvdb {
namespace {

/// Per-tuple ordering key. The permuted value sequence lives in one shared
/// flat buffer (`vals`, offset/arity addressed) so building millions of keys
/// performs zero per-key allocations.
struct OrderKey {
  Value v0;            ///< first permuted value — the bucket key
  size_t val_offset;   ///< start of the full permuted sequence in `vals`
  uint32_t arity;
  uint32_t rel_rank;   ///< rank of the relation name (alphabetical)
  RowId row;
  VarId var;
};

/// Total order identical to the original monolithic comparator: component
/// is handled by bucket layout; within a bucket compare the permuted
/// sequences lexicographically (shorter first on prefix ties), then
/// relation-name rank, then row id. Keys are unique (rel_rank, row), so the
/// order is deterministic for any sort schedule.
struct KeyLess {
  const Value* vals;
  bool operator()(const OrderKey& a, const OrderKey& b) const {
    const Value* pa = vals + a.val_offset;
    const Value* pb = vals + b.val_offset;
    const uint32_t m = std::min(a.arity, b.arity);
    for (uint32_t k = 0; k < m; ++k) {
      if (pa[k] != pb[k]) return pa[k] < pb[k];
    }
    if (a.arity != b.arity) return a.arity < b.arity;
    if (a.rel_rank != b.rel_rank) return a.rel_rank < b.rel_rank;
    return a.row < b.row;
  }
};

/// One probabilistic table's slice of the key/value buffers.
struct TableSlice {
  const Table* table = nullptr;
  int component = 0;
  std::vector<size_t> perm;
  uint32_t rel_rank = 0;
  size_t key_offset = 0;
  size_t val_offset = 0;
};

/// Scratch buffers for the LSD radix path, reused across components.
struct RadixScratch {
  std::vector<uint32_t> perm, perm2;
  std::vector<uint64_t> ev;      ///< sign-biased value at the current position
  std::vector<uint8_t> missing;  ///< arity <= position
  std::vector<uint32_t> counts;
};

/// Sorts one contiguous key slice keys[0..n) into exactly the order KeyLess
/// produces: lexicographic on the permuted value sequences (shorter first
/// on prefix ties), then rel_rank, then row. LSD radix over uint32 index
/// arrays: a counting pass on rel_rank seeds the least-significant suffix
/// (rows already ascend within each relation slice and each rel_rank is
/// one slice, so (rel_rank, row) falls out of one pass), then value
/// positions run right-to-left — per position, byte passes LSB->MSB over
/// sign-biased values (bytes constant across all present entries are
/// skipped; a skipped pass is a stable no-op) followed by a two-bucket
/// missing-first pass realizing the shorter-sequence-first tie rule.
/// Entries missing at a position carry ev 0 through the byte passes; their
/// mutual order is preserved by stability and their placement is decided
/// solely by the flag pass, so the ev placeholder never leaks into the
/// result. Positions constant across the slice (e.g. the shared v0 of one
/// bucket) skip all their passes. No comparisons, no per-key allocation.
void RadixSortSlice(const OrderKey* keys, size_t n, const Value* vals,
                    uint32_t num_ranks, RadixScratch* rs) {
  rs->perm.resize(n);
  rs->perm2.resize(n);
  rs->ev.resize(n);
  rs->missing.resize(n);
  uint32_t* perm = rs->perm.data();
  uint32_t* perm2 = rs->perm2.data();

  rs->counts.assign(num_ranks, 0);
  for (size_t i = 0; i < n; ++i) rs->counts[keys[i].rel_rank]++;
  uint32_t run = 0;
  for (uint32_t r = 0; r < num_ranks; ++r) {
    const uint32_t c = rs->counts[r];
    rs->counts[r] = run;
    run += c;
  }
  for (size_t i = 0; i < n; ++i) {
    perm[rs->counts[keys[i].rel_rank]++] = static_cast<uint32_t>(i);
  }

  uint32_t max_arity = 0;
  for (size_t i = 0; i < n; ++i) max_arity = std::max(max_arity, keys[i].arity);

  constexpr uint64_t kSignBias = uint64_t{1} << 63;
  for (uint32_t k = max_arity; k-- > 0;) {
    uint64_t agg_or = 0, agg_and = ~uint64_t{0};
    size_t num_missing = 0;
    for (size_t i = 0; i < n; ++i) {
      const OrderKey& key = keys[i];
      if (key.arity <= k) {
        rs->ev[i] = 0;
        rs->missing[i] = 1;
        ++num_missing;
      } else {
        const uint64_t e =
            static_cast<uint64_t>(vals[key.val_offset + k]) ^ kSignBias;
        rs->ev[i] = e;
        rs->missing[i] = 0;
        agg_or |= e;
        agg_and &= e;
      }
    }
    // A bit set in agg_or ^ agg_and differs across present entries; bytes
    // with no such bit are constant and their pass can be skipped.
    const uint64_t varying = agg_or ^ agg_and;
    for (int b = 0; b < 8; ++b) {
      const int shift = 8 * b;
      if (((varying >> shift) & 0xFF) == 0) continue;
      rs->counts.assign(256, 0);
      for (size_t i = 0; i < n; ++i) {
        rs->counts[(rs->ev[i] >> shift) & 0xFF]++;
      }
      uint32_t acc = 0;
      for (int v = 0; v < 256; ++v) {
        const uint32_t c = rs->counts[v];
        rs->counts[v] = acc;
        acc += c;
      }
      for (size_t i = 0; i < n; ++i) {
        const uint32_t idx = perm[i];
        perm2[rs->counts[(rs->ev[idx] >> shift) & 0xFF]++] = idx;
      }
      std::swap(perm, perm2);
    }
    if (num_missing != 0) {
      uint32_t pm = 0;
      uint32_t pp = static_cast<uint32_t>(num_missing);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t idx = perm[i];
        if (rs->missing[idx]) {
          perm2[pm++] = idx;
        } else {
          perm2[pp++] = idx;
        }
      }
      std::swap(perm, perm2);
    }
  }
  if (perm != rs->perm.data()) rs->perm.swap(rs->perm2);
}

}  // namespace

std::vector<VarId> BuildVariableOrder(const Database& db, const OrderSpec& spec,
                                      int num_threads, bool use_radix_sort) {
  // Resolve participating tables, their permutations and name ranks, and
  // group them by component rank (stable within a component) so the key
  // buffer is laid out component-major from the start.
  std::vector<TableSlice> slices;
  std::vector<std::string> prob_names;
  for (const std::string& name : db.table_names()) {
    const Table* t = db.Find(name);
    if (!t->probabilistic()) continue;
    prob_names.push_back(name);
    TableSlice s;
    s.table = t;
    s.component = 0;
    if (auto it = spec.component_rank.find(name); it != spec.component_rank.end()) {
      s.component = it->second;
    }
    if (auto it = spec.pi.find(name); it != spec.pi.end()) {
      s.perm = it->second;
      MVDB_CHECK_EQ(s.perm.size(), t->arity()) << "bad permutation for " << name;
    } else {
      s.perm.resize(t->arity());
      for (size_t i = 0; i < s.perm.size(); ++i) s.perm[i] = i;
    }
    slices.push_back(std::move(s));
  }
  std::sort(prob_names.begin(), prob_names.end());
  for (TableSlice& s : slices) {
    s.rel_rank = static_cast<uint32_t>(
        std::lower_bound(prob_names.begin(), prob_names.end(),
                         s.table->name()) -
        prob_names.begin());
  }
  std::stable_sort(slices.begin(), slices.end(),
                   [](const TableSlice& a, const TableSlice& b) {
                     return a.component < b.component;
                   });
  size_t total_keys = 0, total_vals = 0;
  for (TableSlice& s : slices) {
    s.key_offset = total_keys;
    s.val_offset = total_vals;
    total_keys += s.table->size();
    total_vals += s.table->size() * s.table->arity();
  }

  // Extract every tuple's permuted key, sharded per table over row chunks.
  // Each key lands in a precomputed slot, so the layout is deterministic.
  std::vector<OrderKey> keys(total_keys);
  std::vector<Value> vals(total_vals);
  for (const TableSlice& s : slices) {
    const Table& t = *s.table;
    const size_t arity = t.arity();
    ParallelForChunked(num_threads, t.size(), 4096, [&](size_t r) {
      OrderKey& key = keys[s.key_offset + r];
      Value* out = vals.data() + s.val_offset + r * arity;
      for (size_t p = 0; p < arity; ++p) {
        out[p] = t.At(static_cast<RowId>(r), s.perm[p]);
      }
      key.v0 = out[0];
      key.val_offset = s.val_offset + r * arity;
      key.arity = static_cast<uint32_t>(arity);
      key.rel_rank = s.rel_rank;
      key.row = static_cast<RowId>(r);
      key.var = t.var(static_cast<RowId>(r));
    });
  }

  // Bucket each component's slice by first permuted value — the per-block
  // variable groups of the MV-index decomposition — then sort only within
  // buckets. Component slices are already contiguous in `keys`.
  std::vector<OrderKey> sorted(total_keys);
  std::vector<Value> bucket_values;     // distinct v0, first-occurrence order
  std::vector<uint32_t> bucket_counts;  // parallel to bucket_values
  std::vector<uint32_t> slot_table;     // open-addressed v0 -> bucket slot
  std::vector<uint32_t> bucket_of;      // per key in the component slice
  std::vector<size_t> bucket_begin, bucket_end;
  RadixScratch radix;
  std::vector<OrderKey> radix_apply;  // permutation-apply staging
  constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  size_t comp_begin = 0;
  size_t out_pos = 0;
  for (size_t si = 0; si < slices.size();) {
    // [comp_begin, comp_end) = one component's keys.
    size_t sj = si;
    size_t comp_end = comp_begin;
    while (sj < slices.size() &&
           slices[sj].component == slices[si].component) {
      comp_end += slices[sj].table->size();
      ++sj;
    }
    const size_t n = comp_end - comp_begin;

    // Assign v0 values to bucket slots (first occurrence order) and count.
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    slot_table.assign(cap, kEmptySlot);
    const uint32_t mask = static_cast<uint32_t>(cap - 1);
    bucket_values.clear();
    bucket_counts.clear();
    bucket_of.resize(n);
    for (size_t k = 0; k < n; ++k) {
      const Value v = keys[comp_begin + k].v0;
      uint32_t pos =
          static_cast<uint32_t>(Mix64(static_cast<uint64_t>(v))) & mask;
      while (true) {
        const uint32_t s = slot_table[pos];
        if (s == kEmptySlot) {
          slot_table[pos] = static_cast<uint32_t>(bucket_values.size());
          bucket_of[k] = static_cast<uint32_t>(bucket_values.size());
          bucket_values.push_back(v);
          bucket_counts.push_back(1);
          break;
        }
        if (bucket_values[s] == v) {
          ++bucket_counts[s];
          bucket_of[k] = s;
          break;
        }
        pos = (pos + 1) & mask;
      }
    }

    // Order buckets by value (the domain order of the paper's grouping) and
    // lay out their output ranges by prefix sum.
    const size_t num_buckets = bucket_values.size();
    std::vector<uint32_t> by_value(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) by_value[b] = static_cast<uint32_t>(b);
    std::sort(by_value.begin(), by_value.end(), [&](uint32_t a, uint32_t b) {
      return bucket_values[a] < bucket_values[b];
    });
    bucket_begin.assign(num_buckets, 0);
    bucket_end.assign(num_buckets, 0);
    size_t offset = out_pos;
    for (uint32_t slot : by_value) {
      bucket_begin[slot] = offset;
      offset += bucket_counts[slot];
      bucket_end[slot] = offset;
    }

    // Counting scatter into the sorted array, then sort each bucket slice
    // independently — buckets share v0 and component, so the full
    // comparator only ever looks at the residual key fields.
    std::vector<size_t> cursor(bucket_begin);
    for (size_t k = 0; k < n; ++k) {
      sorted[cursor[bucket_of[k]]++] = keys[comp_begin + k];
    }
    // Big bucket slices go through the LSD radix kernel (the counting
    // scatter above already realized the most significant position, so the
    // radix only resolves the residual fields — its v0 passes self-skip as
    // constant). Slices below the threshold stay on std::sort: the radix's
    // fixed per-pass histogram cost never amortizes on the handful-of-rows
    // buckets a skewed separator domain produces, and both paths emit the
    // identical order (order_test pins it), so the cutover is purely a
    // speed choice. Radixed slices run serially — they are rare and the
    // classic path sorted each of them on one thread anyway.
    constexpr size_t kRadixMinBucket = 128;
    if (use_radix_sort) {
      for (size_t b = 0; b < num_buckets; ++b) {
        const uint32_t slot = by_value[b];
        const size_t lo = bucket_begin[slot];
        const size_t bn = bucket_end[slot] - lo;
        if (bn < kRadixMinBucket) continue;
        RadixSortSlice(sorted.data() + lo, bn, vals.data(),
                       static_cast<uint32_t>(prob_names.size()), &radix);
        radix_apply.assign(sorted.begin() + static_cast<ptrdiff_t>(lo),
                           sorted.begin() + static_cast<ptrdiff_t>(lo + bn));
        for (size_t i = 0; i < bn; ++i) {
          sorted[lo + i] = radix_apply[radix.perm[i]];
        }
      }
    }
    KeyLess less{vals.data()};
    ParallelForChunked(num_threads, num_buckets, 64, [&](size_t b) {
      const uint32_t slot = by_value[b];
      if (use_radix_sort &&
          bucket_end[slot] - bucket_begin[slot] >= kRadixMinBucket) {
        return;  // already radix-sorted above
      }
      std::sort(sorted.begin() + static_cast<ptrdiff_t>(bucket_begin[slot]),
                sorted.begin() + static_cast<ptrdiff_t>(bucket_end[slot]),
                less);
    });

    out_pos = comp_end;
    comp_begin = comp_end;
    si = sj;
  }

  std::vector<VarId> order;
  order.reserve(total_keys);
  for (const OrderKey& k : sorted) order.push_back(k.var);
  return order;
}

std::vector<VarId> BuildDefaultOrder(const Database& db) {
  return BuildVariableOrder(db, OrderSpec{});
}

namespace {

/// Standalone ordering key of one variable, computed on demand (the splice
/// path touches O(new_vars * log n) keys, not all of them).
struct VarKey {
  int component = 0;
  std::vector<Value> pvals;  ///< permuted value sequence
  uint32_t rel_rank = 0;
  RowId row = 0;
};

/// The total order BuildVariableOrder realizes: component-major, then the
/// KeyLess residual (lexicographic permuted values, shorter first on prefix
/// ties, relation rank, row id).
bool VarKeyLess(const VarKey& a, const VarKey& b) {
  if (a.component != b.component) return a.component < b.component;
  const size_t m = std::min(a.pvals.size(), b.pvals.size());
  for (size_t k = 0; k < m; ++k) {
    if (a.pvals[k] != b.pvals[k]) return a.pvals[k] < b.pvals[k];
  }
  if (a.pvals.size() != b.pvals.size()) return a.pvals.size() < b.pvals.size();
  if (a.rel_rank != b.rel_rank) return a.rel_rank < b.rel_rank;
  return a.row < b.row;
}

}  // namespace

std::vector<VarId> InsertVarsIntoOrder(const Database& db,
                                       const OrderSpec& spec,
                                       const std::vector<VarId>& order,
                                       const std::vector<VarId>& new_vars) {
  std::vector<std::string> prob_names;
  for (const std::string& name : db.table_names()) {
    if (db.Find(name)->probabilistic()) prob_names.push_back(name);
  }
  std::sort(prob_names.begin(), prob_names.end());

  auto key_of = [&](VarId v) {
    const TupleRef& ref = db.var_tuple(v);
    MVDB_CHECK(ref.table != nullptr) << "variable " << v << " has no tuple";
    const Table& t = *ref.table;
    VarKey key;
    if (auto it = spec.component_rank.find(t.name());
        it != spec.component_rank.end()) {
      key.component = it->second;
    }
    if (auto it = spec.pi.find(t.name()); it != spec.pi.end()) {
      key.pvals.reserve(t.arity());
      for (size_t p = 0; p < t.arity(); ++p) {
        key.pvals.push_back(t.At(ref.row, it->second[p]));
      }
    } else {
      key.pvals.reserve(t.arity());
      for (size_t p = 0; p < t.arity(); ++p) {
        key.pvals.push_back(t.At(ref.row, p));
      }
    }
    key.rel_rank = static_cast<uint32_t>(
        std::lower_bound(prob_names.begin(), prob_names.end(), t.name()) -
        prob_names.begin());
    key.row = ref.row;
    return key;
  };

  std::vector<VarId> result = order;
  result.reserve(order.size() + new_vars.size());
  for (const VarId v : new_vars) {
    const VarKey key = key_of(v);
    const auto pos = std::lower_bound(
        result.begin(), result.end(), key,
        [&](VarId existing, const VarKey& k) {
          return VarKeyLess(key_of(existing), k);
        });
    result.insert(pos, v);
  }
  return result;
}

}  // namespace mvdb
