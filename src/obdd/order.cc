#include "obdd/order.h"

#include <algorithm>

#include "util/logging.h"

namespace mvdb {
namespace {

struct OrderKey {
  int component;
  std::vector<Value> permuted;  // tuple values in pi order
  size_t arity;
  const std::string* relation;
  RowId row;
  VarId var;

  bool operator<(const OrderKey& o) const {
    if (component != o.component) return component < o.component;
    if (permuted != o.permuted) {
      return std::lexicographical_compare(permuted.begin(), permuted.end(),
                                          o.permuted.begin(), o.permuted.end());
    }
    if (arity != o.arity) return arity < o.arity;
    if (*relation != *o.relation) return *relation < *o.relation;
    return row < o.row;
  }
};

}  // namespace

std::vector<VarId> BuildVariableOrder(const Database& db, const OrderSpec& spec) {
  std::vector<OrderKey> keys;
  keys.reserve(db.num_vars());
  for (const std::string& name : db.table_names()) {
    const Table* t = db.Find(name);
    if (!t->probabilistic()) continue;
    int component = 0;
    if (auto it = spec.component_rank.find(name); it != spec.component_rank.end()) {
      component = it->second;
    }
    std::vector<size_t> perm;
    if (auto it = spec.pi.find(name); it != spec.pi.end()) {
      perm = it->second;
      MVDB_CHECK_EQ(perm.size(), t->arity()) << "bad permutation for " << name;
    } else {
      perm.resize(t->arity());
      for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    }
    const size_t n = t->size();
    for (size_t r = 0; r < n; ++r) {
      OrderKey key;
      key.component = component;
      key.permuted.reserve(t->arity());
      for (size_t p : perm) key.permuted.push_back(t->At(static_cast<RowId>(r), p));
      key.arity = t->arity();
      key.relation = &t->name();
      key.row = static_cast<RowId>(r);
      key.var = t->var(static_cast<RowId>(r));
      keys.push_back(std::move(key));
    }
  }
  std::sort(keys.begin(), keys.end());
  std::vector<VarId> order;
  order.reserve(keys.size());
  for (const OrderKey& k : keys) order.push_back(k.var);
  return order;
}

std::vector<VarId> BuildDefaultOrder(const Database& db) {
  return BuildVariableOrder(db, OrderSpec{});
}

}  // namespace mvdb
