#include "obdd/manager.h"

#include <algorithm>

namespace mvdb {

BddManager::BddManager(std::shared_ptr<const VarOrder> order)
    : order_(std::move(order)) {
  MVDB_CHECK(order_ != nullptr);
  nodes_.push_back(BddNode{kSinkLevel, kFalse, kFalse});  // 0 = false sink
  nodes_.push_back(BddNode{kSinkLevel, kTrue, kTrue});    // 1 = true sink
}

void BddManager::ReserveNodes(size_t n) {
  nodes_.reserve(n + 2);
  unique_.Reserve(n, [this](uint32_t id) {
    const BddNode& m = nodes_[id];
    return NodeHash(m.level, m.lo, m.hi);
  });
}

void BddManager::ReserveCaches(size_t n) { op_cache_.ReserveEntries(n); }

size_t BddManager::ClearOpCaches() {
  const size_t freed = op_cache_.ShrinkToDefault();
  cache_bytes_freed_ += freed;
  return freed;
}

NodeId BddManager::Mk(int32_t level, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;
  MVDB_DCHECK(level < nodes_[static_cast<size_t>(lo)].level);
  MVDB_DCHECK(level < nodes_[static_cast<size_t>(hi)].level);
  const NodeId fresh = static_cast<NodeId>(nodes_.size());
  const uint32_t got = unique_.FindOrInsert(
      NodeHash(level, lo, hi), static_cast<uint32_t>(fresh),
      [&](uint32_t id) {
        const BddNode& m = nodes_[id];
        return m.level == level && m.lo == lo && m.hi == hi;
      },
      [this](uint32_t id) {
        const BddNode& m = nodes_[id];
        return NodeHash(m.level, m.lo, m.hi);
      });
  if (got == static_cast<uint32_t>(fresh)) nodes_.push_back(BddNode{level, lo, hi});
  return static_cast<NodeId>(got);
}

NodeId BddManager::Apply(OpKind op, NodeId f, NodeId g) {
  // Terminal cases.
  if (op == OpKind::kAnd) {
    if (f == kFalse || g == kFalse) return kFalse;
    if (f == kTrue) return g;
    if (g == kTrue) return f;
    if (f == g) return f;
  } else {
    if (f == kTrue || g == kTrue) return kTrue;
    if (f == kFalse) return g;
    if (g == kFalse) return f;
    if (f == g) return f;
  }
  if (f > g) std::swap(f, g);  // commutative: canonicalize the cache key
  const uint64_t key = OpKey(op, f, g);
  NodeId cached;
  if (op_cache_.Lookup(key, &cached)) return cached;
  ++apply_steps_;

  const BddNode& nf = nodes_[static_cast<size_t>(f)];
  const BddNode& ng = nodes_[static_cast<size_t>(g)];
  const int32_t m = std::min(nf.level, ng.level);
  const NodeId f0 = (nf.level == m) ? nf.lo : f;
  const NodeId f1 = (nf.level == m) ? nf.hi : f;
  const NodeId g0 = (ng.level == m) ? ng.lo : g;
  const NodeId g1 = (ng.level == m) ? ng.hi : g;
  const NodeId r = Mk(m, Apply(op, f0, g0), Apply(op, f1, g1));
  op_cache_.Insert(key, r);
  return r;
}

NodeId BddManager::Not(NodeId f) {
  // Iterative post-order: the NOT W chain is one long thin OBDD (size
  // ~1.4M nodes at the paper's DBLP scale), so naive recursion would
  // exhaust the stack long before the 1M-author target. Each frame owns the
  // already-negated lo child, so correctness never depends on the lossy op
  // cache retaining an entry — a cache hit merely short-circuits a subtree.
  auto sink_not = [](NodeId s) { return s == kFalse ? kTrue : kFalse; };
  // Resolves without descending: sinks and cache hits.
  auto resolve = [&](NodeId id, NodeId* out) {
    if (IsSink(id)) {
      *out = sink_not(id);
      return true;
    }
    return op_cache_.Lookup(OpKey(OpKind::kNot, id, id), out);
  };

  NodeId ret = kFalse;
  if (resolve(f, &ret)) return ret;
  struct Frame {
    NodeId id;
    NodeId not_lo = -1;
    // 0 = lo unresolved, 1 = lo child pending on the stack,
    // 2 = lo done / hi unresolved, 3 = hi child pending on the stack.
    uint8_t stage = 0;
  };
  std::vector<Frame> stack = {Frame{f}};
  while (!stack.empty()) {
    Frame fr = stack.back();  // copy: pushes below may reallocate the stack
    const BddNode n = nodes_[static_cast<size_t>(fr.id)];  // copy: Mk reallocates
    if (fr.stage == 1) {  // lo child just completed into `ret`
      fr.not_lo = ret;
      fr.stage = 2;
    } else if (fr.stage == 0) {
      if (resolve(n.lo, &fr.not_lo)) {
        fr.stage = 2;
      } else {
        stack.back().stage = 1;
        stack.push_back(Frame{n.lo});
        continue;
      }
    }
    NodeId not_hi;
    if (fr.stage == 3) {  // hi child just completed into `ret`
      not_hi = ret;
    } else if (!resolve(n.hi, &not_hi)) {
      fr.stage = 3;
      stack.back() = fr;
      stack.push_back(Frame{n.hi});
      continue;
    }
    ret = Mk(n.level, fr.not_lo, not_hi);
    op_cache_.Insert(OpKey(OpKind::kNot, fr.id, fr.id), ret);
    stack.pop_back();
  }
  return ret;
}

NodeId BddManager::ConcatRec(NodeId f, NodeId g, NodeId sink_to_replace,
                             std::unordered_map<NodeId, NodeId>* memo) {
  if (f == sink_to_replace) return g;
  if (IsSink(f)) return f;
  auto it = memo->find(f);
  if (it != memo->end()) return it->second;
  const BddNode n = nodes_[static_cast<size_t>(f)];
  const NodeId r = Mk(n.level, ConcatRec(n.lo, g, sink_to_replace, memo),
                      ConcatRec(n.hi, g, sink_to_replace, memo));
  memo->emplace(f, r);
  return r;
}

NodeId BddManager::ConcatOr(NodeId f, NodeId g) {
  if (f == kFalse) return g;
  if (f == kTrue) return kTrue;
  if (g == kFalse) return f;
  if (scratch_synthesis_) {
    concat_memo_.clear();
    return ConcatRec(f, g, kFalse, &concat_memo_);
  }
  std::unordered_map<NodeId, NodeId> memo;
  return ConcatRec(f, g, kFalse, &memo);
}

NodeId BddManager::ConcatAnd(NodeId f, NodeId g) {
  if (f == kTrue) return g;
  if (f == kFalse) return kFalse;
  if (g == kTrue) return f;
  if (scratch_synthesis_) {
    concat_memo_.clear();
    return ConcatRec(f, g, kTrue, &concat_memo_);
  }
  std::unordered_map<NodeId, NodeId> memo;
  return ConcatRec(f, g, kTrue, &memo);
}

NodeId BddManager::FromSignedClause(const Clause& pos, const Clause& neg) {
  if (scratch_synthesis_) {
    return FromSignedClauseScratch(pos, neg, nullptr, nullptr);
  }
  // Build the conjunction chain bottom-up in descending level order; a
  // positive literal branches false on 0, a negated one branches false on 1.
  std::vector<std::pair<int32_t, bool>> lits;
  lits.reserve(pos.size() + neg.size());
  for (VarId v : pos) lits.push_back({level_of_var(v), false});
  for (VarId v : neg) lits.push_back({level_of_var(v), true});
  std::sort(lits.begin(), lits.end());
  for (size_t i = 1; i < lits.size(); ++i) {
    if (lits[i].first == lits[i - 1].first && lits[i].second != lits[i - 1].second) {
      return kFalse;  // x ^ !x
    }
  }
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  NodeId acc = kTrue;
  for (auto it = lits.rbegin(); it != lits.rend(); ++it) {
    acc = it->second ? Mk(it->first, acc, kFalse) : Mk(it->first, kFalse, acc);
  }
  return acc;
}

NodeId BddManager::FromSignedClauseScratch(const Clause& pos, const Clause& neg,
                                           int32_t* min_level,
                                           int32_t* max_level) {
  // Same chain as FromSignedClause, built into the member scratch. The
  // literal sequence (pos levels then neg levels) is non-decreasing exactly
  // when it is sorted as (level, negated) pairs — the negated flag only
  // ever transitions false -> true, and (l, false) < (l, true) — so one
  // level comparison per literal detects pre-sorted emission and skips the
  // per-clause sort entirely.
  auto& lits = lits_scratch_;
  lits.clear();
  int32_t prev = -1;
  bool pre_sorted = true;
  for (VarId v : pos) {
    const int32_t l = level_of_var(v);
    pre_sorted &= (l >= prev);
    prev = l;
    lits.push_back({l, false});
  }
  for (VarId v : neg) {
    const int32_t l = level_of_var(v);
    pre_sorted &= (l >= prev);
    prev = l;
    lits.push_back({l, true});
  }
  if (min_level != nullptr) {
    for (const auto& [l, negated] : lits) {
      *min_level = std::min(*min_level, l);
      *max_level = std::max(*max_level, l);
    }
  }
  if (!pre_sorted) std::sort(lits.begin(), lits.end());
  for (size_t i = 1; i < lits.size(); ++i) {
    if (lits[i].first == lits[i - 1].first && lits[i].second != lits[i - 1].second) {
      return kFalse;  // x ^ !x
    }
  }
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  NodeId acc = kTrue;
  for (auto it = lits.rbegin(); it != lits.rend(); ++it) {
    acc = it->second ? Mk(it->first, acc, kFalse) : Mk(it->first, kFalse, acc);
  }
  return acc;
}

NodeId BddManager::FromLineageSynthesis(const Lineage& lineage) {
  NodeId acc = kFalse;
  const auto& pos = lineage.clauses();
  const auto& neg = lineage.neg_clauses();
  for (size_t i = 0; i < pos.size(); ++i) {
    const Clause empty;
    acc = Or(acc, FromSignedClause(pos[i], i < neg.size() ? neg[i] : empty));
  }
  return acc;
}

NodeId BddManager::FromLineageSynthesisRanged(const Lineage& lineage,
                                              int32_t* min_level,
                                              int32_t* max_level) {
  NodeId acc = kFalse;
  const auto& pos = lineage.clauses();
  const auto& neg = lineage.neg_clauses();
  const Clause empty;
  for (size_t i = 0; i < pos.size(); ++i) {
    const Clause& n = i < neg.size() ? neg[i] : empty;
    acc = Or(acc, FromSignedClauseScratch(pos[i], n, min_level, max_level));
  }
  return acc;
}

ScaledDouble BddManager::ProbScaled(NodeId f,
                                    const std::vector<double>& var_probs) const {
  std::unordered_map<NodeId, ScaledDouble> memo;
  memo.emplace(kFalse, ScaledDouble::Zero());
  memo.emplace(kTrue, ScaledDouble::One());
  // Iterative post-order to avoid deep recursion on chain-shaped OBDDs.
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    if (memo.count(id)) {
      stack.pop_back();
      continue;
    }
    const BddNode& n = nodes_[static_cast<size_t>(id)];
    const auto lo_it = memo.find(n.lo);
    const auto hi_it = memo.find(n.hi);
    if (lo_it != memo.end() && hi_it != memo.end()) {
      const double p = var_probs[static_cast<size_t>(order_->var_at_level(n.level))];
      memo.emplace(id, ScaledDouble(1.0 - p) * lo_it->second +
                           ScaledDouble(p) * hi_it->second);
      stack.pop_back();
    } else {
      if (lo_it == memo.end()) stack.push_back(n.lo);
      if (hi_it == memo.end()) stack.push_back(n.hi);
    }
  }
  return memo.at(f);
}

size_t BddManager::CountNodes(NodeId f) const {
  std::unordered_map<NodeId, bool> seen;
  std::vector<NodeId> stack = {f};
  size_t count = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen.count(id)) continue;
    seen.emplace(id, true);
    ++count;
    if (!IsSink(id)) {
      const BddNode& n = nodes_[static_cast<size_t>(id)];
      stack.push_back(n.lo);
      stack.push_back(n.hi);
    }
  }
  return count;
}

std::pair<int32_t, int32_t> BddManager::LevelRange(NodeId f) const {
  int32_t min_level = kSinkLevel;
  int32_t max_level = -1;
  std::unordered_map<NodeId, bool> seen;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (IsSink(id) || seen.count(id)) continue;
    seen.emplace(id, true);
    const BddNode& n = nodes_[static_cast<size_t>(id)];
    min_level = std::min(min_level, n.level);
    max_level = std::max(max_level, n.level);
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  return {min_level, max_level};
}

}  // namespace mvdb
