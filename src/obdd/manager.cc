#include "obdd/manager.h"

#include <algorithm>

namespace mvdb {

BddManager::BddManager(std::shared_ptr<const VarOrder> order)
    : order_(std::move(order)) {
  MVDB_CHECK(order_ != nullptr);
  nodes_.push_back(BddNode{kSinkLevel, kFalse, kFalse});  // 0 = false sink
  nodes_.push_back(BddNode{kSinkLevel, kTrue, kTrue});    // 1 = true sink
}

void BddManager::ReserveNodes(size_t n) {
  nodes_.reserve(n + 2);
  unique_.reserve(n);
}

void BddManager::ReserveCaches(size_t n) {
  and_cache_.reserve(n);
  or_cache_.reserve(n);
  not_cache_.reserve(n);
}

void BddManager::ClearOpCaches() {
  and_cache_.clear();
  or_cache_.clear();
  not_cache_.clear();
}

NodeId BddManager::Mk(int32_t level, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;
  MVDB_DCHECK(level < nodes_[static_cast<size_t>(lo)].level);
  MVDB_DCHECK(level < nodes_[static_cast<size_t>(hi)].level);
  const UniqueKey key{level, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(BddNode{level, lo, hi});
  unique_.emplace(key, id);
  return id;
}

NodeId BddManager::Apply(OpKind op, NodeId f, NodeId g) {
  // Terminal cases.
  if (op == OpKind::kAnd) {
    if (f == kFalse || g == kFalse) return kFalse;
    if (f == kTrue) return g;
    if (g == kTrue) return f;
    if (f == g) return f;
  } else {
    if (f == kTrue || g == kTrue) return kTrue;
    if (f == kFalse) return g;
    if (g == kFalse) return f;
    if (f == g) return f;
  }
  if (f > g) std::swap(f, g);  // commutative: canonicalize the cache key
  auto& cache = (op == OpKind::kAnd) ? and_cache_ : or_cache_;
  auto it = cache.find({f, g});
  if (it != cache.end()) return it->second;
  ++apply_steps_;

  const BddNode& nf = nodes_[static_cast<size_t>(f)];
  const BddNode& ng = nodes_[static_cast<size_t>(g)];
  const int32_t m = std::min(nf.level, ng.level);
  const NodeId f0 = (nf.level == m) ? nf.lo : f;
  const NodeId f1 = (nf.level == m) ? nf.hi : f;
  const NodeId g0 = (ng.level == m) ? ng.lo : g;
  const NodeId g1 = (ng.level == m) ? ng.hi : g;
  const NodeId r = Mk(m, Apply(op, f0, g0), Apply(op, f1, g1));
  cache.emplace(std::make_pair(f, g), r);
  return r;
}

NodeId BddManager::Not(NodeId f) {
  // Iterative post-order: the NOT W chain is one long thin OBDD (size
  // ~1.4M nodes at the paper's DBLP scale), so naive recursion would
  // exhaust the stack long before the 1M-author target.
  auto known = [this](NodeId g) -> NodeId {
    if (g == kFalse) return kTrue;
    if (g == kTrue) return kFalse;
    auto it = not_cache_.find(g);
    return it == not_cache_.end() ? NodeId{-1} : it->second;
  };
  if (const NodeId r = known(f); r >= 0) return r;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    if (known(id) >= 0) {
      stack.pop_back();
      continue;
    }
    const BddNode n = nodes_[static_cast<size_t>(id)];  // copy: Mk reallocates
    const NodeId not_lo = known(n.lo);
    const NodeId not_hi = known(n.hi);
    if (not_lo >= 0 && not_hi >= 0) {
      not_cache_.emplace(id, Mk(n.level, not_lo, not_hi));
      stack.pop_back();
    } else {
      if (not_lo < 0) stack.push_back(n.lo);
      if (not_hi < 0) stack.push_back(n.hi);
    }
  }
  return not_cache_.at(f);
}

NodeId BddManager::ConcatRec(NodeId f, NodeId g, NodeId sink_to_replace,
                             std::unordered_map<NodeId, NodeId>* memo) {
  if (f == sink_to_replace) return g;
  if (IsSink(f)) return f;
  auto it = memo->find(f);
  if (it != memo->end()) return it->second;
  const BddNode n = nodes_[static_cast<size_t>(f)];
  const NodeId r = Mk(n.level, ConcatRec(n.lo, g, sink_to_replace, memo),
                      ConcatRec(n.hi, g, sink_to_replace, memo));
  memo->emplace(f, r);
  return r;
}

NodeId BddManager::ConcatOr(NodeId f, NodeId g) {
  if (f == kFalse) return g;
  if (f == kTrue) return kTrue;
  if (g == kFalse) return f;
  std::unordered_map<NodeId, NodeId> memo;
  return ConcatRec(f, g, kFalse, &memo);
}

NodeId BddManager::ConcatAnd(NodeId f, NodeId g) {
  if (f == kTrue) return g;
  if (f == kFalse) return kFalse;
  if (g == kTrue) return f;
  std::unordered_map<NodeId, NodeId> memo;
  return ConcatRec(f, g, kTrue, &memo);
}

NodeId BddManager::FromSignedClause(const Clause& pos, const Clause& neg) {
  // Build the conjunction chain bottom-up in descending level order; a
  // positive literal branches false on 0, a negated one branches false on 1.
  std::vector<std::pair<int32_t, bool>> lits;
  lits.reserve(pos.size() + neg.size());
  for (VarId v : pos) lits.push_back({level_of_var(v), false});
  for (VarId v : neg) lits.push_back({level_of_var(v), true});
  std::sort(lits.begin(), lits.end());
  for (size_t i = 1; i < lits.size(); ++i) {
    if (lits[i].first == lits[i - 1].first && lits[i].second != lits[i - 1].second) {
      return kFalse;  // x ^ !x
    }
  }
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  NodeId acc = kTrue;
  for (auto it = lits.rbegin(); it != lits.rend(); ++it) {
    acc = it->second ? Mk(it->first, acc, kFalse) : Mk(it->first, kFalse, acc);
  }
  return acc;
}

NodeId BddManager::FromLineageSynthesis(const Lineage& lineage) {
  NodeId acc = kFalse;
  const auto& pos = lineage.clauses();
  const auto& neg = lineage.neg_clauses();
  for (size_t i = 0; i < pos.size(); ++i) {
    const Clause empty;
    acc = Or(acc, FromSignedClause(pos[i], i < neg.size() ? neg[i] : empty));
  }
  return acc;
}

ScaledDouble BddManager::ProbScaled(NodeId f,
                                    const std::vector<double>& var_probs) const {
  std::unordered_map<NodeId, ScaledDouble> memo;
  memo.emplace(kFalse, ScaledDouble::Zero());
  memo.emplace(kTrue, ScaledDouble::One());
  // Iterative post-order to avoid deep recursion on chain-shaped OBDDs.
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    if (memo.count(id)) {
      stack.pop_back();
      continue;
    }
    const BddNode& n = nodes_[static_cast<size_t>(id)];
    const auto lo_it = memo.find(n.lo);
    const auto hi_it = memo.find(n.hi);
    if (lo_it != memo.end() && hi_it != memo.end()) {
      const double p = var_probs[static_cast<size_t>(order_->var_at_level(n.level))];
      memo.emplace(id, ScaledDouble(1.0 - p) * lo_it->second +
                           ScaledDouble(p) * hi_it->second);
      stack.pop_back();
    } else {
      if (lo_it == memo.end()) stack.push_back(n.lo);
      if (hi_it == memo.end()) stack.push_back(n.hi);
    }
  }
  return memo.at(f);
}

size_t BddManager::CountNodes(NodeId f) const {
  std::unordered_map<NodeId, bool> seen;
  std::vector<NodeId> stack = {f};
  size_t count = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen.count(id)) continue;
    seen.emplace(id, true);
    ++count;
    if (!IsSink(id)) {
      const BddNode& n = nodes_[static_cast<size_t>(id)];
      stack.push_back(n.lo);
      stack.push_back(n.hi);
    }
  }
  return count;
}

std::pair<int32_t, int32_t> BddManager::LevelRange(NodeId f) const {
  int32_t min_level = kSinkLevel;
  int32_t max_level = -1;
  std::unordered_map<NodeId, bool> seen;
  std::vector<NodeId> stack = {f};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (IsSink(id) || seen.count(id)) continue;
    seen.emplace(id, true);
    const BddNode& n = nodes_[static_cast<size_t>(id)];
    min_level = std::min(min_level, n.level);
    max_level = std::max(max_level, n.level);
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  return {min_level, max_level};
}

}  // namespace mvdb
