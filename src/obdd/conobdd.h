// Copyright 2026 The MarkoView Authors.
//
// ConOBDD (Section 4.2): OBDD construction driven by the structure of the
// query rather than by blind synthesis. The recursion mirrors the paper's
// rules:
//
//   R1  Q = Q1 v Q2 : independent (symbol-disjoint) unions concatenate;
//   R2  Q = Q1 ^ Q2 : independent join components concatenate;
//   R3  Q = exists z.Q1 with z a separator: decompose over the active
//       domain; the per-value subqueries are tuple-disjoint, so their OBDDs
//       concatenate in domain order (Proposition 1);
//   R4  ground atoms / residual subqueries: fall back to classic synthesis
//       on the subquery's lineage.
//
// Concatenation is attempted whenever the operands' level ranges do not
// interleave (which the separator-first variable order arranges); otherwise
// the builder falls back to apply-based synthesis, exactly the hybrid
// behaviour the paper describes. For inversion-free queries the construction
// performs only concatenations and the result has constant width
// (Proposition 2) — asserted by tests sweeping the domain size.

#ifndef MVDB_OBDD_CONOBDD_H_
#define MVDB_OBDD_CONOBDD_H_

#include "obdd/manager.h"
#include "query/analysis.h"
#include "query/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

class ConObddBuilder {
 public:
  /// `mgr` must have been created with an order covering every probabilistic
  /// variable of `db` (see obdd/order.h).
  ConObddBuilder(const Database& db, BddManager* mgr)
      : db_(db), mgr_(mgr) {
    is_prob_ = [this](const std::string& rel) {
      const Table* t = db_.Find(rel);
      return t != nullptr && t->probabilistic();
    };
  }

  /// Builds the OBDD of a Boolean UCQ.
  StatusOr<NodeId> Build(const Ucq& boolean_query);

  /// Number of concatenation combines performed (cheap path).
  size_t concat_count() const { return concat_count_; }
  /// Number of apply-based combines / lineage syntheses (expensive path).
  size_t synthesis_count() const { return synthesis_count_; }

 private:
  struct ConResult {
    NodeId id = BddManager::kFalse;
    int32_t min_level = BddManager::kSinkLevel;  // empty range for sinks
    int32_t max_level = -1;
  };

  StatusOr<ConResult> BuildUcq(const Ucq& q);
  StatusOr<ConResult> BuildFallback(const Ucq& q);
  ConResult CombineOr(const ConResult& a, const ConResult& b);
  ConResult CombineAnd(const ConResult& a, const ConResult& b);

  const Database& db_;
  BddManager* mgr_;
  IsProbFn is_prob_;
  size_t concat_count_ = 0;
  size_t synthesis_count_ = 0;
};

}  // namespace mvdb

#endif  // MVDB_OBDD_CONOBDD_H_
