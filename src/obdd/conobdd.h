// Copyright 2026 The MarkoView Authors.
//
// ConOBDD (Section 4.2): OBDD construction driven by the structure of the
// query rather than by blind synthesis. The recursion mirrors the paper's
// rules:
//
//   R1  Q = Q1 v Q2 : independent (symbol-disjoint) unions concatenate;
//   R2  Q = Q1 ^ Q2 : independent join components concatenate;
//   R3  Q = exists z.Q1 with z a separator: decompose over the active
//       domain; the per-value subqueries are tuple-disjoint, so their OBDDs
//       concatenate in domain order (Proposition 1);
//   R4  ground atoms / residual subqueries: fall back to classic synthesis
//       on the subquery's lineage.
//
// Concatenation is attempted whenever the operands' level ranges do not
// interleave (which the separator-first variable order arranges); otherwise
// the builder falls back to apply-based synthesis, exactly the hybrid
// behaviour the paper describes. For inversion-free queries the construction
// performs only concatenations and the result has constant width
// (Proposition 2) — asserted by tests sweeping the domain size.

#ifndef MVDB_OBDD_CONOBDD_H_
#define MVDB_OBDD_CONOBDD_H_

#include <memory>
#include <span>
#include <vector>

#include "obdd/manager.h"
#include "query/analysis.h"
#include "query/ast.h"
#include "query/eval.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// Intermediate of the recursive construction: an OBDD node plus the
/// smallest/largest level it touches (empty range for sinks) — the
/// information the concatenation test needs.
struct ConResult {
  NodeId id = BddManager::kFalse;
  int32_t min_level = BddManager::kSinkLevel;
  int32_t max_level = -1;
};

class ConObddBuilder {
 public:
  /// `mgr` must have been created with an order covering every probabilistic
  /// variable of `db` (see obdd/order.h).
  ConObddBuilder(const Database& db, BddManager* mgr)
      : db_(db), mgr_(mgr) {
    is_prob_ = [this](const std::string& rel) {
      const Table* t = db_.Find(rel);
      return t != nullptr && t->probabilistic();
    };
  }

  /// Builds the OBDD of a Boolean UCQ.
  StatusOr<NodeId> Build(const Ucq& boolean_query);

  /// Number of concatenation combines performed (cheap path).
  size_t concat_count() const { return concat_count_; }
  /// Number of apply-based combines / lineage syntheses (expensive path).
  size_t synthesis_count() const { return synthesis_count_; }

 private:
  friend class ConObddTemplate;

  StatusOr<ConResult> BuildUcq(const Ucq& q);
  StatusOr<ConResult> BuildFallback(const Ucq& q);
  /// BuildFallback's tail: lineage -> OBDD + level range (shared with the
  /// template leaf execution, which evaluates the lineage via a prepared
  /// plan instead of ad-hoc EvalBoolean).
  ConResult FromLineage(const Lineage& lineage);
  ConResult CombineOr(const ConResult& a, const ConResult& b);
  ConResult CombineAnd(const ConResult& a, const ConResult& b);

  const Database& db_;
  BddManager* mgr_;
  IsProbFn is_prob_;
  size_t concat_count_ = 0;
  size_t synthesis_count_ = 0;
};

/// Reusable per-thread scratch for ConObddTemplate::Execute. One per
/// compilation shard; repeated executions allocate nothing beyond the
/// lineage clauses they emit.
struct ConObddScratch {
  EvalScratch eval;
  Lineage lineage;
};

struct ConObddTemplateNode;

/// Immutable compiled form of one block-query *shape*: the Section 4.2
/// construction with every value-independent decision made once at plan
/// time. Plan() mirrors ConObddBuilder::BuildUcq on the constant-abstracted
/// exemplar — the deterministic-disjunct prune set, the R1 union groups, the
/// R2 join components and the R3-vs-fallback choice are all functions of the
/// structural signature (query/analysis.h), not of the bound constants — and
/// records a node tree whose leaves hold prepared PlanTemplate join plans.
/// Execute() replays the tree with a concrete slot binding: only the
/// value-dependent outcomes (deterministic-disjunct truth, join results,
/// level ranges, the rare R3 separator expansion) are computed per block.
/// The result is the same reduced OBDD the classic builder produces for the
/// grounded query, at a fraction of the per-block cost — the MV-index
/// compile stage plans each of its handful of shapes once and executes them
/// ~200K times.
class ConObddTemplate {
 public:
  ~ConObddTemplate();
  ConObddTemplate(const ConObddTemplate&) = delete;
  ConObddTemplate& operator=(const ConObddTemplate&) = delete;

  /// Plans the shape of `exemplar` (a grounded Boolean block query).
  static StatusOr<std::unique_ptr<const ConObddTemplate>> Plan(
      const Database& db, const IsProbFn& is_prob, const Ucq& exemplar);

  /// Builds the block OBDD for one binding inside `mgr` (slot order is the
  /// exemplar's structural signature — ComputeGroundedSignature supplies
  /// matching slot vectors). Reentrant: shards run it concurrently against
  /// private managers and scratches.
  StatusOr<NodeId> Execute(std::span<const Value> slots, BddManager* mgr,
                           ConObddScratch* scratch) const;

 private:
  ConObddTemplate();

  static Status PlanNode(const Database& db, const IsProbFn& is_prob,
                         const Ucq& q, ConObddTemplateNode* out);
  StatusOr<ConResult> ExecNode(const ConObddTemplateNode& node,
                               std::span<const Value> slots,
                               ConObddScratch* scratch,
                               ConObddBuilder* helper) const;

  const Database* db_ = nullptr;
  std::unique_ptr<ConObddTemplateNode> root_;
};

}  // namespace mvdb

#endif  // MVDB_OBDD_CONOBDD_H_
