// Copyright 2026 The MarkoView Authors.
//
// Lineage formulas. The lineage of a Boolean UCQ over a probabilistic
// database is a positive DNF over the tuple variables X_t (Section 4, and
// Fig. 3 of the paper): a disjunction of clauses, each clause a conjunction
// of variables (one per probabilistic tuple used by one join result).

#ifndef MVDB_PROB_LINEAGE_H_
#define MVDB_PROB_LINEAGE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "relational/types.h"

namespace mvdb {

/// One conjunction of tuple variables, kept sorted and deduplicated.
/// An empty clause is the constant `true`.
using Clause = std::vector<VarId>;

/// A DNF: disjunction of clauses. Clauses are conjunctions of positive
/// variables plus — for the Section 2.5 negation extension (MarkoViews with
/// `not R(...)` atoms, e.g. the transitively-closed penalty view) — an
/// optional set of *negated* variables. An empty lineage is the constant
/// `false`; a lineage containing an empty clause is `true`.
class Lineage {
 public:
  Lineage() = default;
  explicit Lineage(std::vector<Clause> clauses) : clauses_(std::move(clauses)) {
    neg_clauses_.resize(clauses_.size());
    Normalize();
  }

  /// Adds a conjunction of positive variables (sorted/deduped internally).
  void AddClause(Clause c) { AddSignedClause(std::move(c), {}); }

  /// Adds a conjunction `pos ^ !neg`: every variable in `pos` must be true
  /// and every variable in `neg` false. A variable in both makes the clause
  /// contradictory and it is dropped.
  void AddSignedClause(Clause pos, Clause neg) {
    auto canon = [](Clause* c) {
      std::sort(c->begin(), c->end());
      c->erase(std::unique(c->begin(), c->end()), c->end());
    };
    canon(&pos);
    canon(&neg);
    for (VarId v : pos) {
      if (std::binary_search(neg.begin(), neg.end(), v)) return;  // x ^ !x
    }
    clauses_.push_back(std::move(pos));
    neg_clauses_.push_back(std::move(neg));
    normalized_ = false;
  }

  /// Disjunction with another lineage (lineage of Q1 v Q2 is the union of
  /// the two clause sets — the property Theorem 1's remark relies on).
  void Union(const Lineage& other) {
    clauses_.insert(clauses_.end(), other.clauses_.begin(), other.clauses_.end());
    neg_clauses_.insert(neg_clauses_.end(), other.neg_clauses_.begin(),
                        other.neg_clauses_.end());
    normalized_ = false;
  }

  /// Positive parts of the clauses (parallel to neg_clauses()).
  const std::vector<Clause>& clauses() const { return clauses_; }
  /// Negated parts, parallel to clauses(); empty vectors for pure-positive
  /// clauses.
  const std::vector<Clause>& neg_clauses() const { return neg_clauses_; }
  /// True if some clause carries a negated variable.
  bool HasNegation() const {
    return std::any_of(neg_clauses_.begin(), neg_clauses_.end(),
                       [](const Clause& c) { return !c.empty(); });
  }

  size_t size() const { return clauses_.size(); }
  bool IsFalse() const { return clauses_.empty(); }
  bool IsTrue() const {
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (clauses_[i].empty() && neg_clauses_[i].empty()) return true;
    }
    return false;
  }

  /// Sorts clauses, removes duplicates and absorbed clauses (c1 subset of c2
  /// implies c2 is redundant). Quadratic; used on the small Q-lineages and in
  /// tests, not on hot paths.
  void Normalize();

  /// Distinct variables mentioned, sorted ascending.
  std::vector<VarId> Vars() const;

  /// Total number of variable occurrences; the paper's "lineage size"
  /// (Fig. 4) counts the tuples involved in the constraints, i.e. distinct
  /// variables — exposed separately as NumDistinctVars().
  size_t NumLiterals() const;
  size_t NumDistinctVars() const { return Vars().size(); }

  /// Evaluates the DNF under a truth assignment (indexed by VarId).
  bool Eval(const std::vector<bool>& assignment) const;

  /// Debug rendering, e.g. "x1 x3 | x2".
  std::string ToString() const;

 private:
  std::vector<Clause> clauses_;
  std::vector<Clause> neg_clauses_;  // parallel to clauses_
  bool normalized_ = false;
};

}  // namespace mvdb

#endif  // MVDB_PROB_LINEAGE_H_
