#include "prob/brute_force.h"

#include <algorithm>

#include "util/logging.h"

namespace mvdb {
namespace {

// Enumerates assignments of `vars`, summing the weight of assignments where
// `pred(assignment)` holds. `assignment` is indexed by VarId (global ids).
template <typename Pred>
double Enumerate(const std::vector<VarId>& vars, const std::vector<double>& probs,
                 Pred pred) {
  MVDB_CHECK_LE(vars.size(), 30u) << "brute force limited to 30 variables";
  size_t max_var = 0;
  for (VarId v : vars) max_var = std::max(max_var, static_cast<size_t>(v));
  std::vector<bool> assignment(max_var + 1, false);
  const uint64_t n = uint64_t{1} << vars.size();
  double total = 0.0;
  for (uint64_t mask = 0; mask < n; ++mask) {
    double w = 1.0;
    for (size_t i = 0; i < vars.size(); ++i) {
      const bool on = (mask >> i) & 1;
      assignment[static_cast<size_t>(vars[i])] = on;
      const double p = probs[static_cast<size_t>(vars[i])];
      w *= on ? p : (1.0 - p);
    }
    if (pred(assignment)) total += w;
  }
  return total;
}

}  // namespace

double BruteForceProb(const Lineage& lineage, const std::vector<double>& probs) {
  if (lineage.IsFalse()) return 0.0;
  if (lineage.IsTrue()) return 1.0;
  const std::vector<VarId> vars = lineage.Vars();
  return Enumerate(vars, probs,
                   [&](const std::vector<bool>& a) { return lineage.Eval(a); });
}

double BruteForceProbAndNot(const Lineage& a, const Lineage& b,
                            const std::vector<double>& probs) {
  std::vector<VarId> vars = a.Vars();
  const std::vector<VarId> bv = b.Vars();
  vars.insert(vars.end(), bv.begin(), bv.end());
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  if (vars.empty()) {
    // Both formulas are variable-free constants.
    return (a.IsTrue() && !b.IsTrue()) ? 1.0 : 0.0;
  }
  return Enumerate(vars, probs, [&](const std::vector<bool>& x) {
    return a.Eval(x) && !b.Eval(x);
  });
}

}  // namespace mvdb
