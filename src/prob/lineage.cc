#include "prob/lineage.h"

#include <algorithm>

namespace mvdb {

void Lineage::Normalize() {
  // Canonicalize clause internals (AddSignedClause already sorts; Union and
  // the vector constructor may not have).
  if (neg_clauses_.size() < clauses_.size()) neg_clauses_.resize(clauses_.size());
  for (Clause& c : clauses_) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  }
  for (Clause& c : neg_clauses_) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  }
  // Sort clause pairs and dedupe.
  std::vector<size_t> order(clauses_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (clauses_[a] != clauses_[b]) return clauses_[a] < clauses_[b];
    return neg_clauses_[a] < neg_clauses_[b];
  });
  std::vector<Clause> pos, neg;
  pos.reserve(clauses_.size());
  neg.reserve(clauses_.size());
  for (size_t i : order) {
    if (!pos.empty() && pos.back() == clauses_[i] && neg.back() == neg_clauses_[i]) {
      continue;  // duplicate
    }
    pos.push_back(std::move(clauses_[i]));
    neg.push_back(std::move(neg_clauses_[i]));
  }
  // Absorption: clause j is redundant if some kept clause i satisfies
  // pos_i subset pos_j and neg_i subset neg_j.
  std::vector<Clause> kept_pos, kept_neg;
  for (size_t j = 0; j < pos.size(); ++j) {
    bool absorbed = false;
    for (size_t i = 0; i < kept_pos.size(); ++i) {
      if (std::includes(pos[j].begin(), pos[j].end(), kept_pos[i].begin(),
                        kept_pos[i].end()) &&
          std::includes(neg[j].begin(), neg[j].end(), kept_neg[i].begin(),
                        kept_neg[i].end())) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) {
      kept_pos.push_back(std::move(pos[j]));
      kept_neg.push_back(std::move(neg[j]));
    }
  }
  clauses_ = std::move(kept_pos);
  neg_clauses_ = std::move(kept_neg);
  normalized_ = true;
}

std::vector<VarId> Lineage::Vars() const {
  std::vector<VarId> vars;
  for (const Clause& c : clauses_) {
    vars.insert(vars.end(), c.begin(), c.end());
  }
  for (const Clause& c : neg_clauses_) {
    vars.insert(vars.end(), c.begin(), c.end());
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

size_t Lineage::NumLiterals() const {
  size_t n = 0;
  for (const Clause& c : clauses_) n += c.size();
  for (const Clause& c : neg_clauses_) n += c.size();
  return n;
}

bool Lineage::Eval(const std::vector<bool>& assignment) const {
  for (size_t i = 0; i < clauses_.size(); ++i) {
    bool sat = true;
    for (VarId v : clauses_[i]) {
      if (!assignment[static_cast<size_t>(v)]) {
        sat = false;
        break;
      }
    }
    if (sat && i < neg_clauses_.size()) {
      for (VarId v : neg_clauses_[i]) {
        if (assignment[static_cast<size_t>(v)]) {
          sat = false;
          break;
        }
      }
    }
    if (sat) return true;
  }
  return false;
}

std::string Lineage::ToString() const {
  if (clauses_.empty()) return "false";
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += " | ";
    bool first = true;
    for (VarId v : clauses_[i]) {
      if (!first) out += " ";
      first = false;
      out += "x" + std::to_string(v);
    }
    if (i < neg_clauses_.size()) {
      for (VarId v : neg_clauses_[i]) {
        if (!first) out += " ";
        first = false;
        out += "!x" + std::to_string(v);
      }
    }
    if (first) out += "true";
  }
  return out;
}

}  // namespace mvdb
