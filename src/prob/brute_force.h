// Copyright 2026 The MarkoView Authors.
//
// Exact probability of a lineage formula by enumerating all assignments of
// its variables. Exponential — used as the ground-truth oracle in tests and
// as the smallest backend in examples, exactly the role exhaustive
// enumeration plays when validating Theorem 1 on small MVDBs.
//
// Works with probabilities outside [0,1] (Section 3.3): the enumeration sum
// P(Phi) = sum over satisfying assignments of prod p_i^{x_i} (1-p_i)^{1-x_i}
// is a polynomial identity in the p_i, so it remains the unique multilinear
// extension regardless of the p_i's range.

#ifndef MVDB_PROB_BRUTE_FORCE_H_
#define MVDB_PROB_BRUTE_FORCE_H_

#include <vector>

#include "prob/lineage.h"

namespace mvdb {

/// Exact P(lineage) where probs[v] is the marginal probability of VarId v.
/// Cost: O(2^k * |lineage|) with k = number of distinct variables in the
/// lineage. CHECK-fails if k > 30.
double BruteForceProb(const Lineage& lineage, const std::vector<double>& probs);

/// Exact P(a AND NOT b) by joint enumeration (used to cross-check
/// P0(Q ^ !W) from the MV-index).
double BruteForceProbAndNot(const Lineage& a, const Lineage& b,
                            const std::vector<double>& probs);

}  // namespace mvdb

#endif  // MVDB_PROB_BRUTE_FORCE_H_
