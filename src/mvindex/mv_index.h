// Copyright 2026 The MarkoView Authors.
//
// The MV-index (Section 4): an offline compilation of the MarkoView
// constraint query W into an augmented OBDD of NOT W, organized as a chain
// of variable-disjoint *blocks* — one per independent view group and
// separator value ("a set of augmented OBDD, each associated with a
// particular key ... over disjoint sets of variables"). On top of the flat
// augmented OBDD it keeps:
//
//   InterBddIndex — which block a tuple variable lives in (here: level
//                   ranges per block, binary-searchable);
//   IntraBddIndex — the flat positions of the nodes labeled with a given
//                   variable (contiguity of the level-sorted layout);
//   per-block P(NOT W_b) — lets online evaluation *skip* every block the
//                   query does not touch.
//
// Online evaluation computes P0(Q ^ NOT W) — the numerator of Eq. 5, since
// P0(Q v W) - P0(W) = P0(Q ^ NOT W) — via two interchangeable algorithms:
// MVIntersect (top-down, memoized on node pairs) and CC-MVIntersect
// (iterative forward sweep over the flat vector; Section 4.3, Prop. 3).

#ifndef MVDB_MVINDEX_MV_INDEX_H_
#define MVDB_MVINDEX_MV_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mvindex/flat_obdd.h"
#include "obdd/conobdd.h"
#include "obdd/manager.h"
#include "query/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// One query root for the (batched) cache-conscious sweep, paired with the
/// manager its nodes live in. The manager must share the index's VarOrder;
/// it is read, never written.
struct CcQuery {
  const BddManager* mgr = nullptr;
  NodeId root = BddManager::kFalse;
};

/// Reusable per-thread scratch for the CC sweep: the per-flat-node weight
/// buckets of the forward pass. Contents are cleared (capacity kept)
/// between calls; treat as opaque.
class CcSweepScratch {
 public:
  CcSweepScratch() = default;

 private:
  friend class MvIndex;
  struct Entry {
    uint32_t item;   ///< index into the batch
    NodeId q;        ///< query node reaching this flat node
    ScaledDouble w;  ///< accumulated path weight
  };
  std::vector<std::vector<Entry>> buckets;
  std::vector<FlatId> touched;
  /// Per-item distribution lists reused across flat nodes (keeps the batch
  /// sweep's per-item entry order identical to the solo sweep's bucket).
  std::vector<std::vector<std::pair<NodeId, ScaledDouble>>> per_item;
};

/// One variable-disjoint block of the compiled NOT W chain.
struct MvBlock {
  std::string key;        ///< "group/separatorValue" diagnostics key
  FlatId chain_root;      ///< entry point of the chain at this block
  int32_t first_level;    ///< smallest variable level in the block
  int32_t last_level;     ///< largest variable level in the block
  ScaledDouble prob;      ///< standalone P(NOT W_b), extended range
};

/// Offline compilation knobs. The default is the serial path: no threads
/// are spawned and the build output is bit-identical to any thread count
/// (the property tests assert this) — parallelism only changes wall time.
struct MvIndexBuildOptions {
  /// Compilation shards; through QueryEngine::Compile the same budget also
  /// shards the whole pipeline front-end (view translation, weight
  /// computation, variable-order bucketing) and the partition stage's
  /// separator-domain substitution. 1 = serial in the calling thread;
  /// <= 0 = one per hardware thread; otherwise that many worker threads.
  int num_threads = 1;
  /// Expected total manager nodes of the compile phase; pre-sizes each
  /// shard's node vector, unique table and apply caches so large builds
  /// stop rehashing mid-compile. 0 = no reservation.
  size_t reserve_hint = 0;
  /// Compile each block through a shared per-shape plan template (plan the
  /// block-query shape once, execute it per separator value) instead of
  /// re-planning every grounded block query from scratch. The output is
  /// bit-identical either way — the escape hatch exists for A/B parity
  /// tests and benchmarks, not because the paths may diverge.
  bool use_plan_templates = true;
  /// Hot-path kernel hatches (see DESIGN.md "Hot-path kernels"). Each
  /// selects a faster kernel whose output is pinned bit-identical to the
  /// classic one by parity tests; false falls back to the classic path.
  /// Fuse per-tuple weight computation into view materialization
  /// (Mvdb::Translate touches each tuple once).
  bool use_fused_translate = true;
  /// LSD radix/counting sort in BuildVariableOrder instead of the bucketed
  /// comparison sort.
  bool use_radix_order = true;
  /// Scratch-reusing, pre-sorted clause synthesis in the per-shard
  /// BddManagers (FromLineageSynthesis / ConcatOr stop reallocating and
  /// re-sorting per clause).
  bool use_presorted_synthesis = true;
  /// Branch-light, software-prefetched CC-MVIntersect walk over the flat
  /// SoA arrays; carried onto the built index (MvIndex::set_use_fast_intersect
  /// flips it after the fact for A/B tests).
  bool use_fast_intersect = true;
};

/// What the offline build did — the numbers bench_build_scale reports.
/// The front-end phases (translate/order) run in QueryEngine::Compile before
/// MvIndex::Build and are filled in by the engine; partition/compile/stitch/
/// import are timed inside Build. Together they cover the whole offline
/// pipeline wall clock.
struct MvIndexBuildStats {
  size_t block_tasks = 0;         ///< partition output (pre skip/merge)
  size_t blocks = 0;              ///< final chain blocks
  size_t merged = 0;              ///< blocks absorbed by range merging
  int shards = 1;                 ///< worker threads actually used
  size_t peak_manager_nodes = 0;  ///< sum of shard-manager nodes at peak
  /// Sum of shard node-store bytes at the compile-phase peak (sampled
  /// before the end-of-compile op-cache shrink).
  size_t peak_manager_bytes = 0;
  /// Bytes released by the end-of-compile ClearOpCaches() calls across all
  /// shard managers (the op caches are shrunk, not just cleared).
  size_t op_cache_freed_bytes = 0;
  size_t flat_nodes = 0;          ///< stitched chain size
  size_t flat_bytes = 0;          ///< resident bytes of the flat arrays
  /// Distinct block-query plan templates compiled (one per structural
  /// signature; a DBLP-scale W has a handful for its ~200K blocks).
  size_t plan_templates = 0;
  /// Blocks executed through a shared template (the rest — undecomposed
  /// groups, or all blocks when use_plan_templates is off — take the
  /// classic per-block planning path).
  size_t template_blocks = 0;
  /// Serial template-planning prefix of the compile phase (included in
  /// compile_seconds).
  double template_plan_seconds = 0.0;
  /// MVDB -> INDB translation (view materialization, weights, NV tables;
  /// Definition 5). Filled by QueryEngine::Compile.
  double translate_seconds = 0.0;
  /// Permutation analysis + global variable order + manager construction.
  /// Filled by QueryEngine::Compile.
  double order_seconds = 0.0;
  double partition_seconds = 0.0;
  double compile_seconds = 0.0;   ///< parallel region (wall clock)
  /// Everything after the parallel join up to the stitched flat chain:
  /// block sort + range merging (the MergeInto scratch rebuilds, when W has
  /// non-inversion-free residues) + stitched emission + annotation passes.
  double stitch_seconds = 0.0;
  /// Reserve-ahead bulk import of the stitched chain into the online
  /// manager (FlatObdd::ImportInto).
  double import_seconds = 0.0;
  /// End-to-end offline wall clock measured by QueryEngine::Compile. The
  /// six phase timings above partition it: their sum equals this value up
  /// to clock-read noise (engine_scale_test asserts the invariant).
  double total_seconds = 0.0;
};

/// Phase split of the last ApplyWeightDelta repair — how the ≤2ms budget
/// was spent. bench_apply_delta reports it in BENCH_JSON (so the latency
/// claim is attributable per phase) and mvdb_shell `stats` shows it to
/// operators.
struct MvIndexRepairStats {
  /// Block-local probUnder replay over the dirty blocks' slices.
  double replay_seconds = 0.0;
  /// Refresh of the dirty blocks' standalone probabilities (an O(1) read
  /// of the block root's block-local annotation per dirty block).
  double reprobe_seconds = 0.0;
  /// Prefix + suffix block-product rebuild (O(blocks) multiplies).
  double products_seconds = 0.0;
  size_t dirty_blocks = 0;    ///< blocks whose annotations replayed
  size_t replayed_nodes = 0;  ///< total nodes across the replayed slices
  bool valid = false;         ///< false until the first weight repair
};

/// Knobs for MvIndex::PatchFile, the in-place persistent update of a
/// weight-only delta. The crash hooks deterministically simulate a process
/// dying at each protocol step (crash-safety tests): after the durable
/// dirty mark but before any payload byte, or after the payloads but before
/// the clean-header rewrite.
struct IndexPatchOptions {
  bool crash_after_dirty_mark = false;
  bool crash_after_payload = false;
};

/// Loader knobs for MvIndex::Load / MvIndex::LoadMapped.
struct IndexLoadOptions {
  /// Verify the per-section checksums before trusting array contents.
  /// Load's default argument turns this on (the copy touches every byte
  /// anyway); LoadMapped's default leaves it off, because checksumming
  /// would fault in every page and forfeit the instant start — run
  /// `dump_index --verify` (or pass true) for the full integrity pass.
  bool verify_checksums = true;
};

namespace internal {
struct IndexIoAccess;  // defined in index_io.cc
}  // namespace internal

class MvIndex {
 public:
  /// Compiles W (the union of view constraint queries, Eq. 4) into an
  /// MV-index. The manager must already hold the global variable order and
  /// is also used later for query-side OBDDs. `var_probs` is indexed by
  /// VarId (NV variables may carry negative probabilities).
  ///
  /// The build is a three-stage pipeline: partition W into variable-disjoint
  /// block tasks (independent view groups x separator values, emitted as
  /// per-group shapes plus (shape, value) bindings), compile each block in
  /// one of `options.num_threads` shards — every shard owns a private
  /// BddManager sharing the immutable VarOrder, and executes a per-shape
  /// plan template compiled once per structural signature rather than
  /// re-planning each grounded block query (obdd/conobdd.h,
  /// ConObddTemplate; disable via options.use_plan_templates) — and flatten
  /// each block standalone, then stitch the per-block pieces into the flat
  /// chain by direct emission (no global NodeId -> FlatId map). Only the
  /// finished chain is imported into `mgr`; per-shard compile state is
  /// discarded.
  static StatusOr<std::unique_ptr<MvIndex>> Build(
      const Database& db, const Ucq& w, BddManager* mgr,
      const std::vector<double>& var_probs,
      const MvIndexBuildOptions& options = {});

  /// Writes the compiled index to `path` in the versioned on-disk format of
  /// mvindex/index_io.* (header + checksummed sections; written to a temp
  /// file and renamed, so a crash never leaves a torn file at `path`).
  /// Save -> Load round-trips bit-exactly: every probability is stored as
  /// raw IEEE-754 words, never text.
  Status Save(const std::string& path) const;

  /// Reads an index written by Save into owned arrays. `mgr` must hold the
  /// same variable order the index was built under (the file carries the
  /// order's digest; mismatches are InvalidArgument). All failures —
  /// missing file, truncation, corruption, version or endianness skew —
  /// come back as typed Status, never a crash. The manager chain is NOT
  /// imported: kMvIndex/kMvIndexCC work immediately, and kObddReuse
  /// triggers the import lazily via EnsureChainImported().
  static StatusOr<std::unique_ptr<MvIndex>> Load(
      const std::string& path, BddManager* mgr,
      const IndexLoadOptions& options = IndexLoadOptions{true});

  /// Like Load, but binds the flat arrays to a read-only mmap of the file
  /// (FlatObdd's span-backed mode): startup cost is independent of index
  /// size, pages fault in on demand, and N processes opening the same file
  /// share one physical copy. Checksums are skipped by default (see
  /// IndexLoadOptions).
  static StatusOr<std::unique_ptr<MvIndex>> LoadMapped(
      const std::string& path, BddManager* mgr,
      const IndexLoadOptions& options = IndexLoadOptions{false});

  /// Applies a weight-only base delta: the marginal probabilities of
  /// `changed_vars` moved (to `var_probs[v]`, indexed by VarId) but no
  /// tuple entered or left the possible worlds, so the chain topology is
  /// untouched. Repairs the per-level probability table, the dirty
  /// blocks' block-local probUnder annotations (each changed level lives
  /// in exactly one block, and block-local annotations are a function of
  /// that block alone — the repair replays those slices and nothing
  /// else), the dirty blocks' standalone probabilities, and the prefix +
  /// suffix block-product arrays, by replaying the exact build
  /// recurrences — the result is bit-identical to a from-scratch Build
  /// over the updated database. Phase timings land in
  /// last_repair_stats(). Mapped (mmap-backed) storage is copied into
  /// owned arrays on first call; the source file is untouched until
  /// PatchFile/Save.
  Status ApplyWeightDelta(const std::vector<VarId>& changed_vars,
                          const std::vector<double>& var_probs);

  /// Applies a structural base delta (inserted base/NV tuples, new
  /// separator values). `new_mgr` holds the updated variable order (the old
  /// order with the new variables spliced in; obdd/order.h,
  /// InsertVarsIntoOrder) and `dirty_keys` names the partition task keys
  /// whose grounded block queries changed. Re-partitions W over the updated
  /// database, recompiles exactly the dirty tasks through the per-shape
  /// plan templates, reuses every clean block's flattened piece from the
  /// current chain (levels remapped through the order change), and
  /// restitches + reannotates — bit-identical to Build(db, w, new_mgr, ...)
  /// by construction. On success the index is bound to `new_mgr` and the
  /// manager-side chain import resets (re-imported lazily on demand).
  Status ApplyStructuralDelta(const Database& db, const Ucq& w,
                              BddManager* new_mgr,
                              const std::vector<double>& var_probs,
                              const std::vector<std::string>& dirty_keys,
                              const MvIndexBuildOptions& options = {});

  /// Updates a persisted image of this index in place after a weight-only
  /// delta: rewrites only the bytes a weight repair can change — the
  /// changed level-prob entries, the dirty blocks' block-local probUnder
  /// slices, and the block directory (ApplyWeightDelta accumulates the
  /// dirty set; when the file's weight state is not known to match — no
  /// Save/PatchFile of this index completed yet — the full weight-carrying
  /// sections are rewritten, the pre-v3 behavior). The write is guarded by
  /// a durable dirty mark so a crash mid-patch is detected by the loaders
  /// (typed Status) instead of serving torn data. The file must hold
  /// exactly this index's topology; structural changes take Save.
  Status PatchFile(const std::string& path,
                   const IndexPatchOptions& options = {}) const;

  /// P0(NOT W) — the denominator of Eq. 5 is 1 - P0(W) = P0(NOT W).
  /// Extended range: at DBLP scale this is a product of thousands of block
  /// factors and routinely leaves double range; only the Eq. 5 *ratio* is an
  /// ordinary probability. With block-local annotations the flat root only
  /// carries the first block's factor, so this reads the full left-to-right
  /// block product off the prefix array.
  ScaledDouble ProbNotWScaled() const {
    if (flat_->root() == kFlatFalse) return ScaledDouble::Zero();
    return block_prefix_.back();
  }
  double ProbNotW() const { return ProbNotWScaled().ToDouble(); }

  /// P0(Q ^ NOT W) by the top-down memoized MVIntersect. `q_root` is a
  /// query OBDD in the same manager/order.
  ScaledDouble MVIntersectScaled(NodeId q_root) const;
  double MVIntersect(NodeId q_root) const {
    return MVIntersectScaled(q_root).ToDouble();
  }

  /// P0(Q ^ NOT W) by the cache-conscious forward sweep.
  ScaledDouble CCMVIntersectScaled(NodeId q_root) const;
  double CCMVIntersect(NodeId q_root) const {
    return CCMVIntersectScaled(q_root).ToDouble();
  }

  /// Thread-safe CC sweep: the query root lives in `q.mgr` (any manager
  /// sharing the index's variable order — serving workers synthesize query
  /// OBDDs into private managers), and all mutable sweep state lives in the
  /// caller-owned scratch, so concurrent calls on one index are pure reads
  /// of the flat chain.
  ScaledDouble CCMVIntersectScaled(const CcQuery& q,
                                   CcSweepScratch* scratch) const;

  /// Batched CC sweep: evaluates every root in ONE forward pass over the
  /// flat chain (concurrent in-flight queries share the pass; Section 4.3's
  /// sweep is root-oblivious). Per-root accumulation state is fully
  /// isolated and ordered exactly as in the solo sweep, so
  /// (*out)[i] is bit-identical to CCMVIntersectScaled(queries[i], scratch)
  /// — batching changes wall time, never bits.
  void CCMVIntersectBatchScaled(const std::vector<CcQuery>& queries,
                                CcSweepScratch* scratch,
                                std::vector<ScaledDouble>* out) const;

  const FlatObdd& flat() const { return *flat_; }
  const std::vector<MvBlock>& blocks() const { return blocks_; }
  const BddManager& manager() const { return *mgr_; }
  const MvIndexBuildStats& build_stats() const { return build_stats_; }
  /// Phase split of the last ApplyWeightDelta repair (valid == false until
  /// the first weight repair on this index).
  const MvIndexRepairStats& last_repair_stats() const { return repair_stats_; }
  /// Engine-side hook: QueryEngine::Compile records the front-end phase
  /// timings (translate/order) it measured before calling Build().
  MvIndexBuildStats& mutable_build_stats() { return build_stats_; }

  /// Total nodes in the compiled chain (the paper reports 1.38M for DBLP).
  size_t size() const { return flat_->size(); }

  /// Manager node of the compiled NOT W chain (e.g. to derive the W OBDD
  /// once via Not() for index-less evaluation baselines). Only valid when
  /// chain_imported(); loaded indexes import lazily via
  /// EnsureChainImported().
  NodeId not_w_manager_root() const { return not_w_root_; }

  /// Whether the flat chain has been imported into the manager (always true
  /// after Build; false after Load/LoadMapped until a caller needs the
  /// manager-side root). Serving's CC sweep never does — that is what makes
  /// the mmap'd start instant.
  bool chain_imported() const { return chain_imported_; }

  /// Imports the chain into the manager on first use and returns its root.
  /// Idempotent and thread-safe: concurrent first-use callers (e.g. two
  /// serving workers hitting the reuse backend right after OpenIndex)
  /// serialize on an internal mutex, so exactly one performs the import.
  /// Note the import itself mutates the shared manager — callers that go on
  /// to *build* in the same manager still need their own synchronization.
  NodeId EnsureChainImported();

  /// Toggles the branch-light, software-prefetched CC sweep walk after the
  /// fact (normally inherited from MvIndexBuildOptions::use_fast_intersect).
  /// Results are bit-identical either way — intersect_kernel_test pins the
  /// parity; the setter exists for A/B comparisons on one built index.
  void set_use_fast_intersect(bool on) { use_fast_intersect_ = on; }
  bool use_fast_intersect() const { return use_fast_intersect_; }

 private:
  MvIndex() = default;

  // Loader backdoor: index_io.cc assembles a loaded MvIndex field by field
  // (there is no public constructor that accepts pre-built annotations).
  friend struct internal::IndexIoAccess;

  /// Shared fast-forward: skips blocks entirely above the query's first
  /// variable, returning their probability product and the chain entry.
  void FastForward(int32_t q_first_level, ScaledDouble* prefix, FlatId* start) const;

  /// Product of the block factors strictly after the block that owns flat
  /// node `u` (binary search over the chain roots) — what a consumer
  /// multiplies a block-local probUnder read at `u` by to restore the
  /// downstream chain's contribution.
  ScaledDouble SuffixAfterNode(FlatId u) const;

  /// P(query sub-OBDD) with per-call memo (used when the W side exhausts).
  /// `qmgr` is the manager holding the query nodes.
  double ProbQ(const BddManager& qmgr, NodeId q,
               std::unordered_map<NodeId, double>* memo) const;

  BddManager* mgr_ = nullptr;
  std::unique_ptr<FlatObdd> flat_;
  std::vector<MvBlock> blocks_;
  std::vector<double> var_probs_;
  NodeId not_w_root_ = BddManager::kTrue;
  MvIndexBuildStats build_stats_;
  bool use_fast_intersect_ = true;
  bool chain_imported_ = false;   ///< see EnsureChainImported()
  std::mutex chain_import_mu_;    ///< guards the lazy import (not call_once:
                                  ///< a structural delta re-arms the import)

  /// block_prefix_[i] = product of blocks_[0..i).prob, accumulated
  /// left-to-right in the same multiply order the per-call linear scan used,
  /// so FastForward's binary search returns bit-identical prefixes. Size is
  /// blocks_.size() + 1; the last entry is P0(NOT W) as a block product.
  std::vector<ScaledDouble> block_prefix_;

  /// block_suffix_[i] = product of blocks_[i..).prob, accumulated
  /// right-to-left as blocks_[i].prob * block_suffix_[i + 1] — the pinned
  /// multiply order every sweep consumer restores a block-local probUnder
  /// with. Size is blocks_.size() + 1; the last entry is One. NOT derived
  /// from block_prefix_ by division: extended-range division is not
  /// bit-stable against the product a from-scratch rebuild accumulates.
  std::vector<ScaledDouble> block_suffix_;

  /// Phase split of the last ApplyWeightDelta (see last_repair_stats()).
  MvIndexRepairStats repair_stats_;

  /// Dirty-since-last-durable-write tracking for PatchFile: block ids and
  /// levels ApplyWeightDelta touched since the last completed Save or
  /// PatchFile of this index. `weights_synced_` turns true once a durable
  /// write establishes that a file's weight bytes match memory; until then
  /// PatchFile conservatively rewrites the full weight-carrying sections.
  /// Mutable: Save/PatchFile are const (they do not change the in-memory
  /// index) but must clear the tracking they consumed; both are
  /// offline-side calls (the engine pauses serving around maintenance).
  mutable std::vector<size_t> pending_patch_blocks_;
  mutable std::vector<int32_t> pending_patch_levels_;
  mutable bool weights_synced_ = false;

  // Scratch backing the legacy single-manager CCMVIntersectScaled(NodeId)
  // entry point (not thread-safe; concurrent callers pass their own).
  mutable CcSweepScratch cc_scratch_;
};

}  // namespace mvdb

#endif  // MVDB_MVINDEX_MV_INDEX_H_
