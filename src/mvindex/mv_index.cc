#include "mvindex/mv_index.h"

#include <algorithm>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "mvindex/partition.h"
#include "query/analysis.h"
#include "query/eval.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace mvdb {
namespace {

/// Compile-phase output for one task, flattened over local ids so it no
/// longer references any manager. `present` is false when NOT W_b = true
/// (the block is skipped, matching the serial build).
struct CompiledBlock {
  Status status = Status::OK();
  bool present = false;
  std::string key;
  FlatObdd::Block flat;
  int32_t first_level = 0;
  int32_t last_level = 0;
  ScaledDouble prob;
};

/// Per-shard reusable state: the template-execution scratch plus the
/// flatten/probability buffers, so the steady-state block loop performs no
/// per-block allocations beyond the flattened output arrays themselves.
struct BlockCompileScratch {
  ConObddScratch con;
  FlatObdd::FlattenScratch flatten;
  std::vector<ScaledDouble> prob_vals;
};

/// How one task is executed by the compile stage: through a shared plan
/// template with a slot binding (tmpl != nullptr), or the classic per-block
/// path (materialize + plan + build from scratch).
struct TaskPlan {
  const ConObddTemplate* tmpl = nullptr;
  uint32_t slots_begin = 0;
  uint32_t slots_len = 0;
};

/// Shared tail of both compile paths: the block OBDD f of W_b becomes the
/// flattened NOT W_b with its level range and standalone probability. The
/// level range is read off the level-sorted flat arrays and the probability
/// is the same Shannon expansion BddManager::ProbScaled performs, evaluated
/// over the flat arrays — both bit-identical to the manager-side queries the
/// per-block path used to issue, without the per-block hash maps.
void FinishBlock(BddManager* shard_mgr, NodeId f,
                 const std::vector<double>& level_probs,
                 BlockCompileScratch* scratch, CompiledBlock* out) {
  if (f == BddManager::kFalse) return;  // NOT W_b = true: skip
  if (f == BddManager::kTrue) {
    out->status = Status::InvalidArgument(
        "MarkoView constraint W is certainly true: the MVDB admits no "
        "possible world (1 - P0(W) = 0), block " + out->key);
    return;
  }
  const NodeId not_f = shard_mgr->Not(f);
  FlatObdd::FlattenBlockInto(*shard_mgr, not_f, &scratch->flatten, &out->flat);
  out->present = true;
  out->first_level = out->flat.levels.front();
  out->last_level = out->flat.levels.back();
  out->prob =
      FlatObdd::BlockProbScaled(out->flat, level_probs, &scratch->prob_vals);
  // Unlike the old unbounded memo maps, the direct-mapped op cache needs no
  // per-block clearing: it cannot grow, and stale entries stay *valid* —
  // node ids are never freed within a shard manager — so a warm cache only
  // helps the next block. Build() shrinks it once per shard at the end.
}

/// Stage 2 worker: compile one block inside the shard's private manager and
/// flatten it standalone. The shard manager shares the immutable VarOrder,
/// so the reduced OBDD (and hence the flattened block, the level range and
/// the extended-range probability) is identical to what a single shared
/// manager would produce — and identical between the template and classic
/// paths, which build the same reduced OBDD by construction.
void CompileBlock(const Database& db, const PartitionResult& partition,
                  const BlockTask& task, const TaskPlan& plan,
                  std::span<const Value> slot_arena,
                  const std::vector<double>& level_probs,
                  BddManager* shard_mgr, BlockCompileScratch* scratch,
                  CompiledBlock* out) {
  StatusOr<NodeId> f_or = BddManager::kFalse;
  if (plan.tmpl != nullptr) {
    f_or = plan.tmpl->Execute(
        slot_arena.subspan(plan.slots_begin, plan.slots_len), shard_mgr,
        &scratch->con);
  } else {
    ConObddBuilder builder(db, shard_mgr);
    // Undecomposed tasks carry their query; shaped tasks on the
    // template-off path ground theirs on demand.
    f_or = task.shape < 0
               ? builder.Build(task.query)
               : builder.Build(MaterializeTaskQuery(partition, task));
  }
  if (!f_or.ok()) {
    out->status = f_or.status();
    return;
  }
  FinishBlock(shard_mgr, f_or.value(), level_probs, scratch, out);
}

/// Conjunction of two compiled blocks whose level ranges interleave (only
/// non-inversion-free residues). Rebuilds both in a scratch manager over the
/// shared order, ANDs them, and re-flattens — the canonical reduced result
/// is the same OBDD the serial in-manager merge produced. A degenerate
/// conjunction is an error, not a silent sink block: kFalse would mean the
/// merged constraints admit no possible world, and the chain stitcher would
/// otherwise absorb it without a trace.
Status MergeInto(const std::shared_ptr<const VarOrder>& order,
                 const std::vector<double>& var_probs, CompiledBlock* m,
                 const CompiledBlock& b) {
  BddManager scratch(order);
  const NodeId conj = scratch.And(FlatObdd::ImportBlock(&scratch, m->flat),
                                  FlatObdd::ImportBlock(&scratch, b.flat));
  if (conj == BddManager::kFalse) {
    return Status::InvalidArgument(
        "MarkoView constraint W is certainly true: merged blocks " + m->key +
        "+" + b.key + " admit no possible world (1 - P0(W) = 0)");
  }
  if (conj == BddManager::kTrue) {
    return Status::Internal("merged blocks " + m->key + "+" + b.key +
                            " collapsed to the true sink");
  }
  m->flat = FlatObdd::FlattenBlock(scratch, conj);
  m->last_level = std::max(m->last_level, b.last_level);
  m->key += "+" + b.key;
  m->prob = scratch.ProbScaled(conj, var_probs);
  return Status::OK();
}

/// Shared tail of Build and ApplyStructuralDelta: sort the present compiled
/// pieces by level, merge interleaving ranges, stitch the chain, and rebuild
/// the block directory plus the FastForward prefix products. Outputs are the
/// caller's index fields; `merged_count` (optional) accumulates the number
/// of blocks absorbed by range merging. The operation sequence is exactly
/// the one Build has always run, so an index assembled from extracted +
/// recompiled pieces is bit-identical to a from-scratch build producing the
/// same piece set.
Status AssembleChain(const std::shared_ptr<const VarOrder>& order,
                     const std::vector<double>& var_probs,
                     std::vector<double> level_probs,
                     std::vector<CompiledBlock> raw,
                     std::unique_ptr<FlatObdd>* flat,
                     std::vector<MvBlock>* blocks,
                     std::vector<ScaledDouble>* block_prefix,
                     std::vector<ScaledDouble>* block_suffix,
                     size_t* merged_count) {
  std::sort(raw.begin(), raw.end(),
            [](const CompiledBlock& a, const CompiledBlock& b) {
              return a.first_level < b.first_level;
            });
  std::vector<CompiledBlock> merged;
  for (CompiledBlock& b : raw) {
    if (!merged.empty() && b.first_level <= merged.back().last_level) {
      MVDB_RETURN_NOT_OK(MergeInto(order, var_probs, &merged.back(), b));
      if (merged_count != nullptr) ++*merged_count;
    } else {
      merged.push_back(std::move(b));
    }
  }
  std::vector<FlatObdd::Block> pieces;
  pieces.reserve(merged.size());
  for (CompiledBlock& b : merged) pieces.push_back(std::move(b.flat));
  std::vector<FlatId> chain_roots;
  *flat = FlatObdd::StitchChain(pieces, std::move(level_probs), &chain_roots);
  blocks->clear();
  for (size_t i = 0; i < merged.size(); ++i) {
    blocks->push_back(MvBlock{std::move(merged[i].key), chain_roots[i],
                              merged[i].first_level, merged[i].last_level,
                              merged[i].prob});
  }
  // Prefix products of the per-block P(NOT W_b) factors, accumulated
  // left-to-right exactly like the old per-call linear scan so the
  // binary-searched FastForward stays bit-identical.
  block_prefix->assign(blocks->size() + 1, ScaledDouble::One());
  for (size_t i = 0; i < blocks->size(); ++i) {
    ScaledDouble p = (*block_prefix)[i];
    p *= (*blocks)[i].prob;
    (*block_prefix)[i + 1] = p;
  }
  // Suffix products, accumulated right-to-left as block * suffix — the
  // pinned order every sweep consumer multiplies a block-local probUnder
  // by. Never derived from the prefixes by division (not bit-stable).
  block_suffix->assign(blocks->size() + 1, ScaledDouble::One());
  for (size_t i = blocks->size(); i-- > 0;) {
    (*block_suffix)[i] = (*blocks)[i].prob * (*block_suffix)[i + 1];
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<MvIndex>> MvIndex::Build(
    const Database& db, const Ucq& w, BddManager* mgr,
    const std::vector<double>& var_probs, const MvIndexBuildOptions& options) {
  // The partition window opens before any setup work (including the
  // var_probs snapshot copy below) so that everything Build does is
  // attributed to a phase — the phase timings must sum to the engine's
  // total clock.
  Timer timer;
  auto is_prob = [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };

  std::unique_ptr<MvIndex> index(new MvIndex());
  index->mgr_ = mgr;
  index->var_probs_ = var_probs;
  MvIndexBuildStats& stats = index->build_stats_;

  // Stage 1: partition W into variable-disjoint block tasks — decomposed
  // groups become one shape plus (shape, separator value) tasks; the task
  // list is identical for every thread count.
  PartitionResult partition =
      PartitionBlocks(db, w, is_prob, options.num_threads);
  const std::vector<BlockTask>& tasks = partition.tasks;
  stats.block_tasks = tasks.size();
  stats.partition_seconds = timer.Seconds();

  // Stage 2: compile blocks across shards. Results land in per-task slots,
  // so the output order is deterministic regardless of scheduling; with one
  // shard no threads are spawned (the serial fallback).
  timer.Restart();
  std::vector<double> level_probs(mgr->num_levels());
  for (size_t l = 0; l < level_probs.size(); ++l) {
    level_probs[l] =
        var_probs[static_cast<size_t>(mgr->var_at_level(static_cast<int32_t>(l)))];
  }
  std::vector<CompiledBlock> compiled(tasks.size());

  // Stage 2a (serial): map every task of a decomposed group onto a plan
  // template — one per structural signature, not one per block. Tasks whose
  // separator value collides with a constant of the shape's own query have
  // a different constant-equality pattern (hence signature) and get their
  // own template; everything else in the group shares the default one. A
  // failed plan fails every task that maps to it: the status lands in the
  // task's slot now, and the canonical scan below reports the first failing
  // task in task order no matter which workers ran first.
  std::vector<TaskPlan> task_plans(tasks.size());
  std::vector<Value> slot_arena;
  std::vector<std::unique_ptr<const ConObddTemplate>> templates;
  if (options.use_plan_templates) {
    Timer template_timer;
    struct StoreEntry {
      const ConObddTemplate* tmpl = nullptr;
      Status status = Status::OK();
    };
    std::unordered_map<std::string, StoreEntry> store;  // by signature key
    struct ShapeDefault {
      bool ready = false;
      StoreEntry entry;
      std::vector<Value> slots;
      size_t binding_slot = 0;
    };
    std::vector<ShapeDefault> defaults(partition.shapes.size());
    // Sorted constants per shape, for the collision test.
    std::vector<std::vector<Value>> shape_consts(partition.shapes.size());
    for (size_t s = 0; s < partition.shapes.size(); ++s) {
      std::vector<Value>& consts = shape_consts[s];
      ForEachUcqTerm(partition.shapes[s].query, [&](size_t, const Term& t) {
        if (!t.is_var()) consts.push_back(t.constant);
      });
      std::sort(consts.begin(), consts.end());
      consts.erase(std::unique(consts.begin(), consts.end()), consts.end());
    }
    auto plan_for = [&](const UcqSignature& sig,
                        const BlockTask& task) -> const StoreEntry& {
      auto it = store.find(sig.key);
      if (it == store.end()) {
        StoreEntry entry;
        auto tmpl_or =
            ConObddTemplate::Plan(db, is_prob, MaterializeTaskQuery(partition, task));
        if (tmpl_or.ok()) {
          templates.push_back(std::move(*tmpl_or));
          entry.tmpl = templates.back().get();
        } else {
          entry.status = tmpl_or.status();
        }
        it = store.emplace(sig.key, std::move(entry)).first;
      }
      return it->second;
    };
    for (size_t i = 0; i < tasks.size(); ++i) {
      const BlockTask& task = tasks[i];
      if (task.shape < 0) continue;  // undecomposed group: classic path
      const BlockShape& shape =
          partition.shapes[static_cast<size_t>(task.shape)];
      const std::vector<Value>& consts =
          shape_consts[static_cast<size_t>(task.shape)];
      const StoreEntry* entry = nullptr;
      if (std::binary_search(consts.begin(), consts.end(), task.binding)) {
        // Collision: compute this binding's own signature.
        const UcqSignature sig = ComputeGroundedSignature(
            shape.query, shape.sep_var_of_disjunct, task.binding);
        const StoreEntry& e = plan_for(sig, task);
        entry = &e;
        if (e.status.ok()) {
          task_plans[i].slots_begin = static_cast<uint32_t>(slot_arena.size());
          task_plans[i].slots_len = static_cast<uint32_t>(sig.slots.size());
          slot_arena.insert(slot_arena.end(), sig.slots.begin(),
                            sig.slots.end());
        }
      } else {
        ShapeDefault& def = defaults[static_cast<size_t>(task.shape)];
        if (!def.ready) {
          UcqSignature sig = ComputeGroundedSignature(
              shape.query, shape.sep_var_of_disjunct, task.binding);
          def.entry = plan_for(sig, task);
          def.slots = std::move(sig.slots);
          if (def.entry.status.ok()) {
            const auto slot = std::find(def.slots.begin(), def.slots.end(),
                                        task.binding);
            MVDB_CHECK(slot != def.slots.end());
            def.binding_slot =
                static_cast<size_t>(slot - def.slots.begin());
          }
          def.ready = true;
        }
        entry = &def.entry;
        if (def.entry.status.ok()) {
          task_plans[i].slots_begin = static_cast<uint32_t>(slot_arena.size());
          task_plans[i].slots_len = static_cast<uint32_t>(def.slots.size());
          slot_arena.insert(slot_arena.end(), def.slots.begin(),
                            def.slots.end());
          slot_arena[task_plans[i].slots_begin + def.binding_slot] =
              task.binding;
        }
      }
      if (!entry->status.ok()) {
        compiled[i].status = entry->status;
        compiled[i].key = task.key;
      } else {
        task_plans[i].tmpl = entry->tmpl;
        ++stats.template_blocks;
      }
    }
    stats.plan_templates = templates.size();
    stats.template_plan_seconds = template_timer.Seconds();
  }

  // Stage 2b (parallel): execute the templates / classic-compile the rest.
  const int shards = EffectiveThreads(options.num_threads, tasks.size());
  stats.shards = shards;
  if (shards > 1) {
    // Probe indexes are built lazily; warm them now so the workers' query
    // evaluations only read shared state.
    db.WarmIndexes();
  }
  std::vector<std::unique_ptr<BddManager>> shard_mgrs(
      static_cast<size_t>(shards));
  for (auto& m : shard_mgrs) {
    m = std::make_unique<BddManager>(mgr->order());
    m->set_scratch_synthesis(options.use_presorted_synthesis);
    if (options.reserve_hint > 0) {
      const size_t per_shard =
          options.reserve_hint / static_cast<size_t>(shards) + 1;
      m->ReserveNodes(per_shard);
      m->ReserveCaches(per_shard);
    }
  }
  std::vector<BlockCompileScratch> shard_scratch(static_cast<size_t>(shards));
  ParallelFor(shards, tasks.size(), [&](int shard, size_t i) {
    CompiledBlock& out = compiled[i];
    if (!out.status.ok()) return;  // template planning already failed it
    out.key = tasks[i].key;
    CompileBlock(db, partition, tasks[i], task_plans[i], slot_arena,
                 level_probs, shard_mgrs[static_cast<size_t>(shard)].get(),
                 &shard_scratch[static_cast<size_t>(shard)], &out);
  });
  for (const auto& m : shard_mgrs) {
    stats.peak_manager_nodes += m->num_created();
    // Sample the node-store footprint *before* shrinking the op caches, so
    // the stat reflects the true compile-phase peak, then release each
    // shard's reserved cache and account the freed bytes.
    stats.peak_manager_bytes += m->MemoryBytes();
    m->ClearOpCaches();
    stats.op_cache_freed_bytes += m->cache_bytes_freed();
  }
  shard_mgrs.clear();  // all compile state is flattened; free it

  // Deterministic error propagation: statuses live in per-task slots, so
  // the scan always reports the first failing block in canonical task
  // order, independent of which worker finished (or failed) first.
  for (const CompiledBlock& c : compiled) {
    MVDB_RETURN_NOT_OK(c.status);
  }
  stats.compile_seconds = timer.Seconds();

  // Stage 3: sort blocks by level, merge any with interleaving ranges
  // (merging only happens for non-inversion-free residues), stitch the
  // per-block pieces into the flat chain by direct emission (block i's true
  // sink redirects to block i+1's root), and run the annotation passes once
  // over the stitched arrays. The tail is shared with ApplyStructuralDelta.
  timer.Restart();
  std::vector<CompiledBlock> raw;
  raw.reserve(compiled.size());
  for (CompiledBlock& c : compiled) {
    if (c.present) raw.push_back(std::move(c));
  }
  MVDB_RETURN_NOT_OK(AssembleChain(mgr->order(), var_probs,
                                   std::move(level_probs), std::move(raw),
                                   &index->flat_, &index->blocks_,
                                   &index->block_prefix_,
                                   &index->block_suffix_, &stats.merged));
  // Release the large per-task containers here so their teardown (200K
  // keys, blocks and plans at DBLP scale) is attributed to the stitch
  // phase instead of falling between import_seconds and the engine's total
  // clock — the phase timings are required to sum to the build wall time.
  partition = PartitionResult{};
  task_plans = {};
  slot_arena = {};
  templates.clear();
  compiled = {};
  stats.stitch_seconds = timer.Seconds();

  // Register the chain in the online manager: one reserve-ahead bulk append
  // (nodes + unique table sized up front, no mid-import rehash).
  timer.Restart();
  index->not_w_root_ = index->flat_->ImportInto(mgr);
  index->chain_imported_ = true;
  stats.import_seconds = timer.Seconds();
  stats.blocks = index->blocks_.size();
  stats.flat_nodes = index->flat_->size();
  stats.flat_bytes = index->flat_->MemoryBytes();
  index->use_fast_intersect_ = options.use_fast_intersect;
  return index;
}

NodeId MvIndex::EnsureChainImported() {
  // Loaded indexes defer this bulk append: only the kObddReuse baseline
  // needs the chain materialized inside the manager. Concurrent first-use
  // callers serialize here — the unguarded version let two serving workers
  // race the import, mutating the shared manager from both threads and
  // potentially publishing not_w_root_ before the import that produced it
  // finished (tsan_chain_import_test pins the fix).
  std::lock_guard<std::mutex> lock(chain_import_mu_);
  if (!chain_imported_) {
    not_w_root_ = flat_->ImportInto(mgr_);
    chain_imported_ = true;
  }
  return not_w_root_;
}

Status MvIndex::ApplyWeightDelta(const std::vector<VarId>& changed_vars,
                                 const std::vector<double>& var_probs) {
  // Loaded indexes leave the build-time var_probs_ snapshot empty; only a
  // populated snapshot can catch a variable-count change here.
  if (!var_probs_.empty() && var_probs.size() != var_probs_.size()) {
    return Status::InvalidArgument(
        "weight delta changed the variable count (" +
        std::to_string(var_probs_.size()) + " -> " +
        std::to_string(var_probs.size()) +
        "); inserts/deletes of possible tuples take ApplyStructuralDelta");
  }
  for (const VarId v : changed_vars) {
    if (v < 0 || static_cast<size_t>(v) >= var_probs.size() ||
        !mgr_->has_var(v)) {
      return Status::InvalidArgument("weight delta names unknown variable " +
                                     std::to_string(v));
    }
  }
  // The repair mutates level probs and annotations in place; a PROT_READ
  // mapping cannot back that, so mapped storage is copied out first. The
  // source file stays untouched until PatchFile/Save.
  flat_->EnsureOwned();

  // Step 1: overwrite the per-level probability table. Every changed level
  // matters even when no chain node branches on it — the online ProbQ walk
  // reads prob_at_level for query-side nodes at any level.
  std::vector<size_t> dirty_blocks;
  for (const VarId v : changed_vars) {
    const int32_t l = mgr_->level_of_var(v);
    flat_->SetLevelProb(l, var_probs[static_cast<size_t>(v)]);
    pending_patch_levels_.push_back(l);
    const auto [begin, end] = flat_->NodesAtLevel(l);
    if (begin == end) continue;  // no chain node branches on this level
    // The level belongs to exactly one block (blocks occupy disjoint level
    // ranges): binary-search the block directory for its flat position.
    size_t lo = 0;
    size_t hi = blocks_.size();
    while (lo + 1 < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (blocks_[mid].chain_root <= begin) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    if (lo < blocks_.size()) dirty_blocks.push_back(lo);
  }
  if (var_probs_.empty()) {
    var_probs_ = var_probs;  // first snapshot over a loaded index
  } else {
    // Only the changed entries moved; copying all ~|vars| doubles per
    // single-tuple delta would dominate the latency budget at 1M scale.
    for (const VarId v : changed_vars) {
      var_probs_[static_cast<size_t>(v)] = var_probs[static_cast<size_t>(v)];
    }
  }
  if (dirty_blocks.empty()) return Status::OK();  // table-only change

  std::sort(dirty_blocks.begin(), dirty_blocks.end());
  dirty_blocks.erase(std::unique(dirty_blocks.begin(), dirty_blocks.end()),
                     dirty_blocks.end());
  pending_patch_blocks_.insert(pending_patch_blocks_.end(),
                               dirty_blocks.begin(), dirty_blocks.end());
  repair_stats_ = MvIndexRepairStats{};
  repair_stats_.valid = true;
  repair_stats_.dirty_blocks = dirty_blocks.size();

  // Step 2: replay the block-local probUnder recurrence over exactly the
  // dirty blocks' slices — exact replay, not local scaling, so each slice
  // matches a from-scratch ComputeAnnotations bit for bit (FP
  // multiplication does not re-associate). Block locality is the whole
  // point: no node outside these slices holds a value that depends on the
  // changed levels.
  Timer repair_timer;
  for (const size_t i : dirty_blocks) {
    const FlatId begin = blocks_[i].chain_root;
    const FlatId end = i + 1 < blocks_.size()
                           ? blocks_[i + 1].chain_root
                           : static_cast<FlatId>(flat_->size());
    flat_->RepairAnnotations(begin, end);
    repair_stats_.replayed_nodes += static_cast<size_t>(end - begin);
  }
  repair_stats_.replay_seconds = repair_timer.Seconds();

  // Step 3: refresh the dirty blocks' standalone probabilities. The
  // block-local annotation at the chain entry IS the standalone P(NOT W_b)
  // — the replay above ran the identical recurrence FinishBlock ran on the
  // standalone piece — so the reprobe is an O(1) read per dirty block.
  repair_timer.Restart();
  for (const size_t i : dirty_blocks) {
    blocks_[i].prob = flat_->prob_under_scaled(blocks_[i].chain_root);
  }
  repair_stats_.reprobe_seconds = repair_timer.Seconds();

  // Step 4: rebuild the block-product arrays. Prefixes before the first
  // dirty block and suffixes after the last are products of unchanged
  // block probs; restarting each accumulation from the still-valid
  // neighbor replays the exact tail (resp. head) of a full rebuild, so
  // both arrays stay bit-identical to from-scratch.
  repair_timer.Restart();
  const size_t first_dirty = dirty_blocks.front();
  ScaledDouble p = block_prefix_[first_dirty];
  for (size_t i = first_dirty; i < blocks_.size(); ++i) {
    p *= blocks_[i].prob;
    block_prefix_[i + 1] = p;
  }
  for (size_t i = dirty_blocks.back() + 1; i-- > 0;) {
    block_suffix_[i] = blocks_[i].prob * block_suffix_[i + 1];
  }
  repair_stats_.products_seconds = repair_timer.Seconds();
  return Status::OK();
}

Status MvIndex::ApplyStructuralDelta(const Database& db, const Ucq& w,
                                     BddManager* new_mgr,
                                     const std::vector<double>& var_probs,
                                     const std::vector<std::string>& dirty_keys,
                                     const MvIndexBuildOptions& options) {
  for (const MvBlock& b : blocks_) {
    if (b.key.find('+') != std::string::npos) {
      return Status::Unimplemented(
          "structural delta over a merged block (" + b.key +
          "): non-inversion-free residues need a full rebuild");
    }
  }
  // Old level -> new level. The new order must contain every old variable
  // with relative order preserved (InsertVarsIntoOrder splices, it never
  // reorders), so the map is strictly increasing — ExtractBlock requires
  // monotonicity to keep extracted pieces level-sorted.
  const size_t old_levels = mgr_->num_levels();
  std::vector<int32_t> level_map(old_levels);
  for (size_t l = 0; l < old_levels; ++l) {
    const VarId v = mgr_->var_at_level(static_cast<int32_t>(l));
    if (!new_mgr->has_var(v)) {
      return Status::Unimplemented(
          "structural delta removed variable " + std::to_string(v) +
          " from the order: deletes are tombstones (ApplyWeightDelta), not "
          "order removals");
    }
    level_map[l] = new_mgr->level_of_var(v);
    if (l > 0 && level_map[l] <= level_map[l - 1]) {
      return Status::InvalidArgument(
          "new variable order permutes existing variables; the incremental "
          "path requires a splice (old order must stay a subsequence)");
    }
  }

  auto is_prob = [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };
  std::vector<double> level_probs(new_mgr->num_levels());
  for (size_t l = 0; l < level_probs.size(); ++l) {
    level_probs[l] = var_probs[static_cast<size_t>(
        new_mgr->var_at_level(static_cast<int32_t>(l)))];
  }

  // Re-partition W over the updated database: the task set (and its
  // deterministic order) is exactly what a from-scratch Build would see,
  // including tasks for brand-new separator values.
  PartitionResult partition =
      PartitionBlocks(db, w, is_prob, options.num_threads);

  std::unordered_set<std::string> dirty(dirty_keys.begin(), dirty_keys.end());
  std::unordered_map<std::string, size_t> old_block_by_key;
  old_block_by_key.reserve(blocks_.size());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    old_block_by_key.emplace(blocks_[i].key, i);
  }

  // Compile dirty (and previously-absent) tasks through the per-shape plan
  // templates — planned once per structural signature, executed per binding
  // — in a scratch manager over the new order; extract every clean block's
  // flattened piece from the current chain with levels remapped. Both kinds
  // land in per-task slots so the downstream sort/merge/stitch sees the
  // canonical task order.
  BddManager shard(new_mgr->order());
  shard.set_scratch_synthesis(options.use_presorted_synthesis);
  BlockCompileScratch scratch;
  std::unordered_map<std::string, std::unique_ptr<const ConObddTemplate>>
      templates;  // by signature key
  std::vector<CompiledBlock> compiled(partition.tasks.size());
  size_t recompiled = 0;
  for (size_t i = 0; i < partition.tasks.size(); ++i) {
    const BlockTask& task = partition.tasks[i];
    CompiledBlock& out = compiled[i];
    out.key = task.key;
    const auto old_it = old_block_by_key.find(task.key);
    if (!dirty.contains(task.key) && old_it != old_block_by_key.end()) {
      // Clean block: re-extract its stitched slice as a standalone piece.
      const size_t b = old_it->second;
      const FlatId begin = blocks_[b].chain_root;
      const FlatId end = b + 1 < blocks_.size()
                             ? blocks_[b + 1].chain_root
                             : static_cast<FlatId>(flat_->size());
      out.flat = flat_->ExtractBlock(begin, end, blocks_[b].chain_root,
                                     level_map);
      out.present = true;
      out.first_level = out.flat.levels.front();
      out.last_level = out.flat.levels.back();
      // Uniform recompute (not a copy of the stored prob): same recurrence
      // FinishBlock runs, so clean and recompiled blocks are
      // indistinguishable from a from-scratch build's output.
      out.prob = FlatObdd::BlockProbScaled(out.flat, level_probs,
                                           &scratch.prob_vals);
      continue;
    }
    // Dirty, or absent from the old chain (a new separator value, or a task
    // whose NOT W_b was true — recompiling the latter reproduces absence).
    ++recompiled;
    StatusOr<NodeId> f_or = BddManager::kFalse;
    if (options.use_plan_templates && task.shape >= 0) {
      const BlockShape& shape =
          partition.shapes[static_cast<size_t>(task.shape)];
      const UcqSignature sig = ComputeGroundedSignature(
          shape.query, shape.sep_var_of_disjunct, task.binding);
      auto tmpl_it = templates.find(sig.key);
      if (tmpl_it == templates.end()) {
        auto tmpl_or = ConObddTemplate::Plan(
            db, is_prob, MaterializeTaskQuery(partition, task));
        if (!tmpl_or.ok()) return tmpl_or.status();
        tmpl_it = templates.emplace(sig.key, std::move(*tmpl_or)).first;
      }
      f_or = tmpl_it->second->Execute(std::span<const Value>(sig.slots),
                                      &shard, &scratch.con);
    } else {
      ConObddBuilder builder(db, &shard);
      f_or = task.shape < 0
                 ? builder.Build(task.query)
                 : builder.Build(MaterializeTaskQuery(partition, task));
    }
    if (!f_or.ok()) return f_or.status();
    FinishBlock(&shard, f_or.value(), level_probs, &scratch, &out);
    MVDB_RETURN_NOT_OK(out.status);
  }

  // Assemble exactly as Build does; only on success is the index rebound.
  std::vector<CompiledBlock> raw;
  raw.reserve(compiled.size());
  for (CompiledBlock& c : compiled) {
    if (c.present) raw.push_back(std::move(c));
  }
  std::unique_ptr<FlatObdd> flat;
  std::vector<MvBlock> blocks;
  std::vector<ScaledDouble> block_prefix;
  std::vector<ScaledDouble> block_suffix;
  MVDB_RETURN_NOT_OK(AssembleChain(new_mgr->order(), var_probs,
                                   std::move(level_probs), std::move(raw),
                                   &flat, &blocks, &block_prefix,
                                   &block_suffix, nullptr));
  flat_ = std::move(flat);
  blocks_ = std::move(blocks);
  block_prefix_ = std::move(block_prefix);
  block_suffix_ = std::move(block_suffix);
  mgr_ = new_mgr;
  var_probs_ = var_probs;
  // A structural change invalidates any file image: PatchFile's topology
  // precondition rejects it, and the dirty-tracking no longer describes
  // what diverged — drop it and require a fresh Save.
  pending_patch_blocks_.clear();
  pending_patch_levels_.clear();
  weights_synced_ = false;
  build_stats_.blocks = blocks_.size();
  build_stats_.flat_nodes = flat_->size();
  build_stats_.flat_bytes = flat_->MemoryBytes();
  build_stats_.block_tasks = partition.tasks.size();
  build_stats_.template_blocks = recompiled;
  {
    // The chain now lives over the new order; the old manager-side import
    // (if any) is stale. Re-arm the lazy import for the next kObddReuse use.
    std::lock_guard<std::mutex> lock(chain_import_mu_);
    chain_imported_ = false;
    not_w_root_ = BddManager::kTrue;
  }
  return Status::OK();
}

void MvIndex::FastForward(int32_t q_first_level, ScaledDouble* prefix,
                          FlatId* start) const {
  if (blocks_.empty()) {
    *prefix = ScaledDouble::One();
    *start = flat_->root();
    return;
  }
  // The chain is strictly level-ordered, so last_level ascends across
  // blocks_: binary-search the first block the query can touch instead of
  // rescanning (and re-multiplying) the whole prefix on every call. The
  // skipped blocks' probability product is precomputed in block_prefix_.
  size_t lo = 0;
  size_t hi = blocks_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (blocks_[mid].last_level >= q_first_level) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  *prefix = block_prefix_[lo];
  *start = lo < blocks_.size() ? blocks_[lo].chain_root : kFlatTrue;
}

ScaledDouble MvIndex::SuffixAfterNode(FlatId u) const {
  if (blocks_.empty()) return ScaledDouble::One();
  // Last block whose chain entry is at or before u — blocks tile [0, N)
  // contiguously in flat order, so this is u's containing block.
  size_t lo = 0;
  size_t hi = blocks_.size();
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (blocks_[mid].chain_root <= u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return block_suffix_[lo + 1];
}

double MvIndex::ProbQ(const BddManager& qmgr, NodeId q,
                      std::unordered_map<NodeId, double>* memo) const {
  if (q == BddManager::kFalse) return 0.0;
  if (q == BddManager::kTrue) return 1.0;
  auto it = memo->find(q);
  if (it != memo->end()) return it->second;
  const BddNode& n = qmgr.node(q);
  const double p = flat_->prob_at_level(n.level);
  const double r =
      (1.0 - p) * ProbQ(qmgr, n.lo, memo) + p * ProbQ(qmgr, n.hi, memo);
  memo->emplace(q, r);
  return r;
}

namespace {

uint64_t PairKey(NodeId q, FlatId u) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(q)) << 32) |
         static_cast<uint32_t>(u);
}

}  // namespace

ScaledDouble MvIndex::MVIntersectScaled(NodeId q_root) const {
  if (q_root == BddManager::kFalse) return ScaledDouble::Zero();
  if (q_root == BddManager::kTrue) return ProbNotWScaled();
  std::unordered_map<NodeId, double> qmemo;
  ScaledDouble prefix;
  FlatId start;
  FastForward(mgr_->level(q_root), &prefix, &start);
  if (start == kFlatTrue) {
    return prefix * ScaledDouble(ProbQ(*mgr_, q_root, &qmemo));
  }
  if (start == kFlatFalse) return ScaledDouble::Zero();

  std::unordered_map<uint64_t, ScaledDouble> memo;
  // Recursive lambda over (query node, W-chain flat node).
  auto rec = [&](auto&& self, NodeId q, FlatId u) -> ScaledDouble {
    if (q == BddManager::kFalse || u == kFlatFalse) return ScaledDouble::Zero();
    if (q == BddManager::kTrue) {
      // Block-local annotation: pay the rest-of-chain product here.
      return flat_->prob_under_scaled(u) * SuffixAfterNode(u);
    }
    if (u == kFlatTrue) return ScaledDouble(ProbQ(*mgr_, q, &qmemo));
    const uint64_t key = PairKey(q, u);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;

    const int32_t lq = mgr_->level(q);
    const int32_t lu = flat_->level(u);
    const int32_t l = std::min(lq, lu);
    const double p = flat_->prob_at_level(l);
    NodeId q0 = q, q1 = q;
    if (lq == l) {
      const BddNode& n = mgr_->node(q);
      q0 = n.lo;
      q1 = n.hi;
    }
    FlatId u0 = u, u1 = u;
    if (lu == l) {
      u0 = flat_->lo(u);
      u1 = flat_->hi(u);
    }
    const ScaledDouble r = ScaledDouble(1.0 - p) * self(self, q0, u0) +
                           ScaledDouble(p) * self(self, q1, u1);
    memo.emplace(key, r);
    return r;
  };
  return prefix * rec(rec, q_root, start);
}

ScaledDouble MvIndex::CCMVIntersectScaled(NodeId q_root) const {
  return CCMVIntersectScaled(CcQuery{mgr_, q_root}, &cc_scratch_);
}

ScaledDouble MvIndex::CCMVIntersectScaled(const CcQuery& q,
                                          CcSweepScratch* scratch) const {
  const std::vector<CcQuery> queries = {q};
  std::vector<ScaledDouble> out;
  CCMVIntersectBatchScaled(queries, scratch, &out);
  return out[0];
}

void MvIndex::CCMVIntersectBatchScaled(const std::vector<CcQuery>& queries,
                                       CcSweepScratch* scratch,
                                       std::vector<ScaledDouble>* out) const {
  const size_t n = queries.size();
  out->assign(n, ScaledDouble::Zero());
  if (n == 0) return;

  // Per-root accumulation state. Everything a root's answer depends on —
  // the merge/expand maps (whose iteration order is a function of the
  // NodeIds inserted), the query-side memo, the running total — is private
  // to the root, so each root sees exactly the operation sequence of the
  // solo sweep regardless of what else shares the pass.
  struct ItemState {
    ScaledDouble prefix;
    ScaledDouble total;
    std::unordered_map<NodeId, double> qmemo;
    std::unordered_map<NodeId, ScaledDouble> merged;
    std::unordered_map<NodeId, ScaledDouble> next_level;
    bool active = false;
  };
  std::vector<ItemState> items(n);

  auto& buckets = scratch->buckets;
  if (buckets.size() < flat_->size()) buckets.resize(flat_->size());
  scratch->touched.clear();
  size_t pending = 0;
  FlatId first = static_cast<FlatId>(flat_->size());

  for (size_t i = 0; i < n; ++i) {
    const BddManager& qmgr = *queries[i].mgr;
    const NodeId q_root = queries[i].root;
    ItemState& st = items[i];
    if (q_root == BddManager::kFalse) continue;  // stays Zero
    if (q_root == BddManager::kTrue) {
      (*out)[i] = ProbNotWScaled();
      continue;
    }
    ScaledDouble prefix;
    FlatId start;
    FastForward(qmgr.level(q_root), &prefix, &start);
    if (start == kFlatTrue) {
      (*out)[i] = prefix * ScaledDouble(ProbQ(qmgr, q_root, &st.qmemo));
      continue;
    }
    if (start == kFlatFalse) continue;  // stays Zero
    st.prefix = prefix;
    st.active = true;
    auto& b = buckets[static_cast<size_t>(start)];
    if (b.empty()) scratch->touched.push_back(start);
    b.push_back({static_cast<uint32_t>(i), q_root, ScaledDouble::One()});
    ++pending;
    first = std::min(first, start);
  }

  auto& per_item = scratch->per_item;
  if (per_item.size() < n) per_item.resize(n);
  std::vector<uint32_t> items_here;  // roots with entries at this flat node
  std::vector<ScaledDouble> credits;  // fast-walk sink credits, in add order

  // Hoisted bases for the sweep: the outer bucket vector is never resized
  // inside the loop (emit only appends to existing buckets), and the flat
  // SoA arrays are immutable, so raw pointers are safe to cache and cheap
  // to software-prefetch a few nodes ahead of the scan.
  const bool fast = use_fast_intersect_;
  const FlatId fsize = static_cast<FlatId>(flat_->size());
  const int32_t* const flat_levels = flat_->levels_data();
  const FlatEdges* const flat_edges = flat_->edges_data();
  const ScaledDouble* const flat_under = flat_->prob_under_data();
  const auto* const bucket_base = buckets.data();

  // Annotations are block-local, so every sink credit multiplies the
  // remaining-chain product back in. The sweep visits nodes in ascending
  // flat order and blocks tile [0, N) contiguously, so the containing
  // block advances monotonically with u — O(1) amortized, no per-credit
  // search. Credits target either the current node u, an in-block
  // successor, or the next block's chain root; the ternary in emit picks
  // between the two precomputed suffix products accordingly.
  const size_t num_blocks = blocks_.size();
  size_t cur_block = 0;

  // One forward sweep over the level-sorted node vector: edges only point
  // forward, so a single pass from the earliest entry visits every
  // reachable (root, flat node) pairing for every root in the batch.
  for (FlatId u = first; pending > 0 && u < fsize; ++u) {
    if (fast && u + 8 < fsize) {
      // The sweep's access pattern is a strided forward scan with
      // unpredictable bucket occupancy; prefetch the upcoming bucket
      // headers and SoA entries so the occupancy test and level read
      // don't stall the walk.
      __builtin_prefetch(&bucket_base[u + 8]);
      __builtin_prefetch(&flat_levels[u + 8]);
      __builtin_prefetch(&flat_edges[u + 8]);
      __builtin_prefetch(&flat_under[u + 8]);
    }
    auto& bucket = buckets[static_cast<size_t>(u)];
    if (bucket.empty()) continue;
    pending -= bucket.size();
    const int32_t lu = flat_->level(u);
    const double pu = flat_->prob_at_level(lu);
    while (cur_block + 1 < num_blocks &&
           u >= blocks_[cur_block + 1].chain_root) {
      ++cur_block;
    }
    const FlatId cur_block_end = cur_block + 1 < num_blocks
                                     ? blocks_[cur_block + 1].chain_root
                                     : fsize;
    const ScaledDouble sfx_here = num_blocks > 0 ? block_suffix_[cur_block + 1]
                                                 : ScaledDouble::One();
    const ScaledDouble sfx_next = cur_block + 2 < block_suffix_.size()
                                      ? block_suffix_[cur_block + 2]
                                      : ScaledDouble::One();

    // Distribute the root-tagged entries to per-root lists. push_back keeps
    // each root's entry order identical to its solo-sweep bucket order.
    items_here.clear();
    for (const auto& e : bucket) {
      auto& list = per_item[e.item];
      if (list.empty()) items_here.push_back(e.item);
      list.push_back({e.q, e.w});
    }
    bucket.clear();

    for (const uint32_t item : items_here) {
      ItemState& st = items[item];
      const BddManager& qmgr = *queries[item].mgr;
      auto& list = per_item[item];

      auto emit = [&](FlatId next_u, NodeId next_q, const ScaledDouble& w) {
        if (next_q == BddManager::kFalse || next_u == kFlatFalse) return;
        if (next_u == kFlatTrue) {
          st.total += w * ScaledDouble(ProbQ(qmgr, next_q, &st.qmemo));
          return;
        }
        if (next_q == BddManager::kTrue) {
          st.total += w * flat_->prob_under_scaled(next_u) *
                      (next_u < cur_block_end ? sfx_here : sfx_next);
          return;
        }
        auto& b = buckets[static_cast<size_t>(next_u)];
        if (b.empty()) scratch->touched.push_back(next_u);
        b.push_back({item, next_q, w});
        ++pending;
      };

      // Fast walk: a single-entry bucket (the common case — most queries
      // keep a one-node front through each block) never widens until a
      // query node has two live successors, so the expand loop's hash maps
      // are pure overhead. Walk the query chain in registers, buffering
      // sink credits so they apply to st.total in exactly the classic
      // pass order. Any case whose classic handling depends on map
      // iteration order — a widening node, or a true sink deferred to the
      // order-sensitive final loop — bails to the classic code below with
      // the entry list untouched, so the per-item map state (including
      // hash-table bucket-count history) evolves exactly as in the classic
      // sweep and parity stays bit-identical.
      if (fast && list.size() == 1 && !qmgr.IsSink(list[0].first)) {
        NodeId q = list[0].first;
        ScaledDouble w = list[0].second;
        credits.clear();
        bool bail = false;
        bool done = false;
        while (qmgr.level(q) < lu) {
          const BddNode& nn = qmgr.node(q);
          const bool lo_sink = qmgr.IsSink(nn.lo);
          const bool hi_sink = qmgr.IsSink(nn.hi);
          if (!lo_sink && !hi_sink) {
            bail = true;  // front widens: classic map processing required
            break;
          }
          const double p = flat_->prob_at_level(qmgr.level(q));
          const ScaledDouble wlo = w * ScaledDouble(1.0 - p);
          const ScaledDouble whi = w * ScaledDouble(p);
          if (lo_sink && hi_sink) {
            // Reduced OBDD: {lo, hi} is {kFalse, kTrue} in some order.
            credits.push_back((nn.lo == BddManager::kTrue ? wlo : whi) *
                              flat_->prob_under_scaled(u) * sfx_here);
            done = true;
            break;
          }
          const NodeId sink = lo_sink ? nn.lo : nn.hi;
          const NodeId surv = lo_sink ? nn.hi : nn.lo;
          if (sink == BddManager::kTrue) {
            if (qmgr.level(surv) >= lu) {
              // Classic credits this sink in the final loop, interleaved
              // with the survivor's emits in map order — bail.
              bail = true;
              break;
            }
            credits.push_back((lo_sink ? wlo : whi) *
                              flat_->prob_under_scaled(u) * sfx_here);
          }
          q = surv;
          w = lo_sink ? whi : wlo;
        }
        if (!bail) {
          list.clear();
          for (const ScaledDouble& c : credits) st.total += c;
          if (!done) {
            NodeId q0 = q, q1 = q;
            if (qmgr.level(q) == lu) {
              const BddNode& nn = qmgr.node(q);
              q0 = nn.lo;
              q1 = nn.hi;
            }
            emit(flat_->lo(u), q0, w * ScaledDouble(1.0 - pu));
            emit(flat_->hi(u), q1, w * ScaledDouble(pu));
          }
          continue;
        }
      }

      // Merge duplicate query nodes, then expand query-only levels below lu
      // one level at a time (merging keeps the set bounded by the query
      // OBDD width, not the number of paths).
      st.merged.clear();
      for (const auto& [q, w] : list) st.merged[q] += w;
      list.clear();
      while (true) {
        int32_t min_level = BddManager::kSinkLevel;
        for (const auto& [q, w] : st.merged) {
          if (!qmgr.IsSink(q)) min_level = std::min(min_level, qmgr.level(q));
        }
        if (min_level >= lu) break;
        st.next_level.clear();
        const double p = flat_->prob_at_level(min_level);
        for (const auto& [q, w] : st.merged) {
          if (q == BddManager::kFalse) continue;
          if (q == BddManager::kTrue) {
            st.total += w * flat_->prob_under_scaled(u) * sfx_here;
            continue;
          }
          if (qmgr.level(q) == min_level) {
            const BddNode& nn = qmgr.node(q);
            st.next_level[nn.lo] += w * ScaledDouble(1.0 - p);
            st.next_level[nn.hi] += w * ScaledDouble(p);
          } else {
            st.next_level[q] += w;
          }
        }
        st.merged.swap(st.next_level);
      }

      for (const auto& [q, w] : st.merged) {
        if (q == BddManager::kFalse) continue;
        if (q == BddManager::kTrue) {
          st.total += w * flat_->prob_under_scaled(u) * sfx_here;
          continue;
        }
        NodeId q0 = q, q1 = q;
        if (qmgr.level(q) == lu) {
          const BddNode& nn = qmgr.node(q);
          q0 = nn.lo;
          q1 = nn.hi;
        }
        emit(flat_->lo(u), q0, w * ScaledDouble(1.0 - pu));
        emit(flat_->hi(u), q1, w * ScaledDouble(pu));
      }
    }
  }
  for (FlatId t : scratch->touched) buckets[static_cast<size_t>(t)].clear();
  scratch->touched.clear();
  for (size_t i = 0; i < n; ++i) {
    if (items[i].active) (*out)[i] = items[i].prefix * items[i].total;
  }
}

}  // namespace mvdb
