#include "mvindex/mv_index.h"

#include <algorithm>
#include <map>
#include <set>

#include "query/analysis.h"
#include "query/eval.h"
#include "util/logging.h"

namespace mvdb {
namespace {

Ucq SubUcq(const Ucq& q, const std::vector<size_t>& disjuncts) {
  Ucq out = q;
  out.disjuncts.clear();
  for (size_t d : disjuncts) out.disjuncts.push_back(q.disjuncts[d]);
  return out;
}

/// Pre-chain block: standalone NOT W_b OBDD plus metadata.
struct RawBlock {
  std::string key;
  NodeId not_f;
  int32_t first_level;
  int32_t last_level;
  ScaledDouble prob;
};

}  // namespace

StatusOr<std::unique_ptr<MvIndex>> MvIndex::Build(
    const Database& db, const Ucq& w, BddManager* mgr,
    const std::vector<double>& var_probs) {
  auto is_prob = [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };

  std::unique_ptr<MvIndex> index(new MvIndex());
  index->mgr_ = mgr;
  index->var_probs_ = var_probs;

  ConObddBuilder builder(db, mgr);
  std::vector<RawBlock> raw;

  auto add_block = [&](const std::string& key, NodeId f) -> Status {
    if (f == BddManager::kFalse) return Status::OK();  // NOT W_b = true: skip
    if (f == BddManager::kTrue) {
      return Status::InvalidArgument(
          "MarkoView constraint W is certainly true: the MVDB admits no "
          "possible world (1 - P0(W) = 0), block " + key);
    }
    const NodeId not_f = mgr->Not(f);
    const auto [lo, hi] = mgr->LevelRange(not_f);
    raw.push_back(RawBlock{key, not_f, lo, hi, mgr->ProbScaled(not_f, var_probs)});
    return Status::OK();
  };

  if (!w.disjuncts.empty()) {
    const auto groups = IndependentUnionComponents(w, is_prob);
    for (size_t g = 0; g < groups.size(); ++g) {
      Ucq sub = SubUcq(w, groups[g]);
      const auto sep = FindSeparator(sub, is_prob);
      bool decomposed = false;
      if (sep.has_value()) {
        bool any_var = false;
        for (int v : sep->var_of_disjunct) any_var |= (v >= 0);
        if (any_var) {
          // One block per separator value: the per-value subqueries are
          // tuple-disjoint (Proposition 1), hence variable-disjoint blocks.
          std::set<Value> domain;
          for (size_t d = 0; d < sub.disjuncts.size(); ++d) {
            const int z = sep->var_of_disjunct[d];
            if (z < 0) continue;
            for (const Atom& a : sub.disjuncts[d].atoms) {
              if (!is_prob(a.relation)) continue;
              const Table* t = db.Find(a.relation);
              const size_t pos = sep->position.at(a.relation);
              const auto vals = t->DistinctValues(pos);
              domain.insert(vals.begin(), vals.end());
            }
          }
          for (Value a : domain) {
            Ucq block_q = sub;
            for (size_t d = 0; d < block_q.disjuncts.size(); ++d) {
              const int z = sep->var_of_disjunct[d];
              if (z >= 0) SubstituteInDisjunct(&block_q, d, z, a);
            }
            MVDB_ASSIGN_OR_RETURN(NodeId f, builder.Build(block_q));
            MVDB_RETURN_NOT_OK(
                add_block("g" + std::to_string(g) + "/" + std::to_string(a), f));
          }
          decomposed = true;
        }
      }
      if (!decomposed) {
        MVDB_ASSIGN_OR_RETURN(NodeId f, builder.Build(sub));
        MVDB_RETURN_NOT_OK(add_block("g" + std::to_string(g), f));
      }
    }
  }

  // Sort blocks by level and merge any with interleaving ranges so the
  // final chain is strictly level-ordered (merging only happens for
  // non-inversion-free residues).
  std::sort(raw.begin(), raw.end(), [](const RawBlock& a, const RawBlock& b) {
    return a.first_level < b.first_level;
  });
  std::vector<RawBlock> merged;
  for (RawBlock& b : raw) {
    if (!merged.empty() && b.first_level <= merged.back().last_level) {
      RawBlock& m = merged.back();
      m.not_f = mgr->And(m.not_f, b.not_f);
      m.last_level = std::max(m.last_level, b.last_level);
      m.key += "+" + b.key;
      m.prob = mgr->ProbScaled(m.not_f, var_probs);
    } else {
      merged.push_back(std::move(b));
    }
  }

  // Chain the blocks right-to-left with AND-concatenation, remembering each
  // block's entry node in the chain.
  std::vector<NodeId> chain_roots(merged.size());
  NodeId chain = BddManager::kTrue;
  for (size_t i = merged.size(); i-- > 0;) {
    chain = mgr->ConcatAnd(merged[i].not_f, chain);
    chain_roots[i] = chain;
  }

  index->not_w_root_ = chain;
  index->flat_ = std::make_unique<FlatObdd>(*mgr, chain, var_probs);
  for (size_t i = 0; i < merged.size(); ++i) {
    index->blocks_.push_back(MvBlock{merged[i].key,
                                     index->flat_->IndexOf(chain_roots[i]),
                                     merged[i].first_level, merged[i].last_level,
                                     merged[i].prob});
  }
  return index;
}

void MvIndex::FastForward(int32_t q_first_level, ScaledDouble* prefix,
                          FlatId* start) const {
  *prefix = ScaledDouble::One();
  if (blocks_.empty()) {
    *start = flat_->root();
    return;
  }
  for (const MvBlock& b : blocks_) {
    if (b.last_level >= q_first_level) {
      *start = b.chain_root;
      return;
    }
    *prefix *= b.prob;
  }
  *start = kFlatTrue;
}

double MvIndex::ProbQ(NodeId q, std::unordered_map<NodeId, double>* memo) const {
  if (q == BddManager::kFalse) return 0.0;
  if (q == BddManager::kTrue) return 1.0;
  auto it = memo->find(q);
  if (it != memo->end()) return it->second;
  const BddNode& n = mgr_->node(q);
  const double p = flat_->prob_at_level(n.level);
  const double r = (1.0 - p) * ProbQ(n.lo, memo) + p * ProbQ(n.hi, memo);
  memo->emplace(q, r);
  return r;
}

namespace {

uint64_t PairKey(NodeId q, FlatId u) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(q)) << 32) |
         static_cast<uint32_t>(u);
}

}  // namespace

ScaledDouble MvIndex::MVIntersectScaled(NodeId q_root) const {
  if (q_root == BddManager::kFalse) return ScaledDouble::Zero();
  if (q_root == BddManager::kTrue) return ProbNotWScaled();
  std::unordered_map<NodeId, double> qmemo;
  ScaledDouble prefix;
  FlatId start;
  FastForward(mgr_->level(q_root), &prefix, &start);
  if (start == kFlatTrue) return prefix * ScaledDouble(ProbQ(q_root, &qmemo));
  if (start == kFlatFalse) return ScaledDouble::Zero();

  std::unordered_map<uint64_t, ScaledDouble> memo;
  // Recursive lambda over (query node, W-chain flat node).
  auto rec = [&](auto&& self, NodeId q, FlatId u) -> ScaledDouble {
    if (q == BddManager::kFalse || u == kFlatFalse) return ScaledDouble::Zero();
    if (q == BddManager::kTrue) return flat_->prob_under_scaled(u);
    if (u == kFlatTrue) return ScaledDouble(ProbQ(q, &qmemo));
    const uint64_t key = PairKey(q, u);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;

    const int32_t lq = mgr_->level(q);
    const int32_t lu = flat_->level(u);
    const int32_t l = std::min(lq, lu);
    const double p = flat_->prob_at_level(l);
    NodeId q0 = q, q1 = q;
    if (lq == l) {
      const BddNode& n = mgr_->node(q);
      q0 = n.lo;
      q1 = n.hi;
    }
    FlatId u0 = u, u1 = u;
    if (lu == l) {
      u0 = flat_->lo(u);
      u1 = flat_->hi(u);
    }
    const ScaledDouble r = ScaledDouble(1.0 - p) * self(self, q0, u0) +
                           ScaledDouble(p) * self(self, q1, u1);
    memo.emplace(key, r);
    return r;
  };
  return prefix * rec(rec, q_root, start);
}

ScaledDouble MvIndex::CCMVIntersectScaled(NodeId q_root) const {
  if (q_root == BddManager::kFalse) return ScaledDouble::Zero();
  if (q_root == BddManager::kTrue) return ProbNotWScaled();
  std::unordered_map<NodeId, double> qmemo;
  ScaledDouble prefix;
  FlatId start;
  FastForward(mgr_->level(q_root), &prefix, &start);
  if (start == kFlatTrue) return prefix * ScaledDouble(ProbQ(q_root, &qmemo));
  if (start == kFlatFalse) return ScaledDouble::Zero();

  // Sequential sweep over the level-sorted node vector: edges only point
  // forward, so one pass from `start` visits every reachable pairing. The
  // per-node buckets are a reusable member; only touched entries are
  // cleared afterwards.
  if (cc_buckets_.size() < flat_->size()) cc_buckets_.resize(flat_->size());
  ScaledDouble total;
  std::vector<FlatId> touched;
  size_t pending = 1;
  cc_buckets_[static_cast<size_t>(start)].push_back({q_root, ScaledDouble::One()});
  touched.push_back(start);

  std::unordered_map<NodeId, ScaledDouble> merged;
  std::unordered_map<NodeId, ScaledDouble> next_level;
  for (FlatId u = start; pending > 0 && u < static_cast<FlatId>(flat_->size());
       ++u) {
    auto& bucket = cc_buckets_[static_cast<size_t>(u)];
    if (bucket.empty()) continue;
    pending -= bucket.size();
    const int32_t lu = flat_->level(u);
    const double pu = flat_->prob_at_level(lu);

    // Merge duplicate query nodes, then expand query-only levels below lu
    // one level at a time (merging keeps the set bounded by the query OBDD
    // width, not the number of paths).
    merged.clear();
    for (const auto& [q, w] : bucket) merged[q] += w;
    bucket.clear();
    while (true) {
      int32_t min_level = BddManager::kSinkLevel;
      for (const auto& [q, w] : merged) {
        if (!mgr_->IsSink(q)) min_level = std::min(min_level, mgr_->level(q));
      }
      if (min_level >= lu) break;
      next_level.clear();
      const double p = flat_->prob_at_level(min_level);
      for (const auto& [q, w] : merged) {
        if (q == BddManager::kFalse) continue;
        if (q == BddManager::kTrue) {
          total += w * flat_->prob_under_scaled(u);
          continue;
        }
        if (mgr_->level(q) == min_level) {
          const BddNode& n = mgr_->node(q);
          next_level[n.lo] += w * ScaledDouble(1.0 - p);
          next_level[n.hi] += w * ScaledDouble(p);
        } else {
          next_level[q] += w;
        }
      }
      merged.swap(next_level);
    }

    auto emit = [&](FlatId next_u, NodeId next_q, const ScaledDouble& w) {
      if (next_q == BddManager::kFalse || next_u == kFlatFalse) return;
      if (next_u == kFlatTrue) {
        total += w * ScaledDouble(ProbQ(next_q, &qmemo));
        return;
      }
      if (next_q == BddManager::kTrue) {
        total += w * flat_->prob_under_scaled(next_u);
        return;
      }
      auto& b = cc_buckets_[static_cast<size_t>(next_u)];
      if (b.empty()) touched.push_back(next_u);
      b.push_back({next_q, w});
      ++pending;
    };
    for (const auto& [q, w] : merged) {
      if (q == BddManager::kFalse) continue;
      if (q == BddManager::kTrue) {
        total += w * flat_->prob_under_scaled(u);
        continue;
      }
      NodeId q0 = q, q1 = q;
      if (mgr_->level(q) == lu) {
        const BddNode& n = mgr_->node(q);
        q0 = n.lo;
        q1 = n.hi;
      }
      emit(flat_->lo(u), q0, w * ScaledDouble(1.0 - pu));
      emit(flat_->hi(u), q1, w * ScaledDouble(pu));
    }
  }
  for (FlatId t : touched) cc_buckets_[static_cast<size_t>(t)].clear();
  return prefix * total;
}

}  // namespace mvdb
