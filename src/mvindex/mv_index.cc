#include "mvindex/mv_index.h"

#include <algorithm>
#include <string>
#include <utility>

#include "mvindex/partition.h"
#include "query/analysis.h"
#include "query/eval.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace mvdb {
namespace {

/// Compile-phase output for one task, flattened over local ids so it no
/// longer references any manager. `present` is false when NOT W_b = true
/// (the block is skipped, matching the serial build).
struct CompiledBlock {
  Status status = Status::OK();
  bool present = false;
  std::string key;
  FlatObdd::Block flat;
  int32_t first_level = 0;
  int32_t last_level = 0;
  ScaledDouble prob;
};

/// Stage 2 worker: compile one block inside the shard's private manager and
/// flatten it standalone. The shard manager shares the immutable VarOrder,
/// so the reduced OBDD (and hence the flattened block, the level range and
/// the extended-range probability) is identical to what a single shared
/// manager would produce.
void CompileBlock(const Database& db, const BlockTask& task,
                  const std::vector<double>& var_probs, BddManager* shard_mgr,
                  CompiledBlock* out) {
  out->key = task.key;
  ConObddBuilder builder(db, shard_mgr);
  auto f_or = builder.Build(task.query);
  if (!f_or.ok()) {
    out->status = f_or.status();
    return;
  }
  const NodeId f = f_or.value();
  if (f == BddManager::kFalse) return;  // NOT W_b = true: skip
  if (f == BddManager::kTrue) {
    out->status = Status::InvalidArgument(
        "MarkoView constraint W is certainly true: the MVDB admits no "
        "possible world (1 - P0(W) = 0), block " + task.key);
    return;
  }
  const NodeId not_f = shard_mgr->Not(f);
  const auto [lo, hi] = shard_mgr->LevelRange(not_f);
  out->present = true;
  out->first_level = lo;
  out->last_level = hi;
  out->prob = shard_mgr->ProbScaled(not_f, var_probs);
  out->flat = FlatObdd::FlattenBlock(*shard_mgr, not_f);
  // Unlike the old unbounded memo maps, the direct-mapped op cache needs no
  // per-block clearing: it cannot grow, and stale entries stay *valid* —
  // node ids are never freed within a shard manager — so a warm cache only
  // helps the next block. Build() shrinks it once per shard at the end.
}

/// Conjunction of two compiled blocks whose level ranges interleave (only
/// non-inversion-free residues). Rebuilds both in a scratch manager over the
/// shared order, ANDs them, and re-flattens — the canonical reduced result
/// is the same OBDD the serial in-manager merge produced.
void MergeInto(const std::shared_ptr<const VarOrder>& order,
               const std::vector<double>& var_probs, CompiledBlock* m,
               const CompiledBlock& b) {
  BddManager scratch(order);
  const NodeId conj = scratch.And(FlatObdd::ImportBlock(&scratch, m->flat),
                                  FlatObdd::ImportBlock(&scratch, b.flat));
  m->flat = FlatObdd::FlattenBlock(scratch, conj);
  m->last_level = std::max(m->last_level, b.last_level);
  m->key += "+" + b.key;
  m->prob = scratch.ProbScaled(conj, var_probs);
}

}  // namespace

StatusOr<std::unique_ptr<MvIndex>> MvIndex::Build(
    const Database& db, const Ucq& w, BddManager* mgr,
    const std::vector<double>& var_probs, const MvIndexBuildOptions& options) {
  auto is_prob = [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };

  std::unique_ptr<MvIndex> index(new MvIndex());
  index->mgr_ = mgr;
  index->var_probs_ = var_probs;
  MvIndexBuildStats& stats = index->build_stats_;

  // Stage 1: partition W into variable-disjoint block tasks. The
  // separator-domain substitution shards over the same thread budget as the
  // compile stage; the task list is identical for every thread count.
  Timer timer;
  const std::vector<BlockTask> tasks =
      PartitionBlocks(db, w, is_prob, options.num_threads);
  stats.block_tasks = tasks.size();
  stats.partition_seconds = timer.Seconds();

  // Stage 2: compile blocks across shards. Results land in per-task slots,
  // so the output order is deterministic regardless of scheduling; with one
  // shard no threads are spawned (the serial fallback).
  timer.Restart();
  const int shards = EffectiveThreads(options.num_threads, tasks.size());
  stats.shards = shards;
  if (shards > 1) {
    // Probe indexes are built lazily; warm them now so the workers' query
    // evaluations only read shared state.
    db.WarmIndexes();
  }
  std::vector<std::unique_ptr<BddManager>> shard_mgrs(
      static_cast<size_t>(shards));
  for (auto& m : shard_mgrs) {
    m = std::make_unique<BddManager>(mgr->order());
    if (options.reserve_hint > 0) {
      const size_t per_shard =
          options.reserve_hint / static_cast<size_t>(shards) + 1;
      m->ReserveNodes(per_shard);
      m->ReserveCaches(per_shard);
    }
  }
  std::vector<CompiledBlock> compiled(tasks.size());
  ParallelFor(shards, tasks.size(), [&](int shard, size_t i) {
    CompileBlock(db, tasks[i], var_probs, shard_mgrs[static_cast<size_t>(shard)].get(),
                 &compiled[i]);
  });
  for (const auto& m : shard_mgrs) {
    stats.peak_manager_nodes += m->num_created();
    // Sample the node-store footprint *before* shrinking the op caches, so
    // the stat reflects the true compile-phase peak, then release each
    // shard's reserved cache and account the freed bytes.
    stats.peak_manager_bytes += m->MemoryBytes();
    m->ClearOpCaches();
    stats.op_cache_freed_bytes += m->cache_bytes_freed();
  }
  stats.compile_seconds = timer.Seconds();
  shard_mgrs.clear();  // all compile state is flattened; free it

  for (const CompiledBlock& c : compiled) {
    MVDB_RETURN_NOT_OK(c.status);  // first failure in task order
  }

  // Sort blocks by level and merge any with interleaving ranges so the
  // final chain is strictly level-ordered (merging only happens for
  // non-inversion-free residues).
  timer.Restart();
  std::vector<CompiledBlock> raw;
  raw.reserve(compiled.size());
  for (CompiledBlock& c : compiled) {
    if (c.present) raw.push_back(std::move(c));
  }
  std::sort(raw.begin(), raw.end(),
            [](const CompiledBlock& a, const CompiledBlock& b) {
              return a.first_level < b.first_level;
            });
  std::vector<CompiledBlock> merged;
  for (CompiledBlock& b : raw) {
    if (!merged.empty() && b.first_level <= merged.back().last_level) {
      MergeInto(mgr->order(), var_probs, &merged.back(), b);
      ++stats.merged;
    } else {
      merged.push_back(std::move(b));
    }
  }

  // Stage 3: stitch the per-block pieces into the flat chain by direct
  // emission (block i's true sink redirects to block i+1's root), run the
  // annotation passes once over the stitched arrays, and register the chain
  // in the online manager.
  std::vector<double> level_probs(mgr->num_levels());
  for (size_t l = 0; l < level_probs.size(); ++l) {
    level_probs[l] =
        var_probs[static_cast<size_t>(mgr->var_at_level(static_cast<int32_t>(l)))];
  }
  std::vector<FlatObdd::Block> pieces;
  pieces.reserve(merged.size());
  for (CompiledBlock& b : merged) pieces.push_back(std::move(b.flat));
  std::vector<FlatId> chain_roots;
  index->flat_ =
      FlatObdd::StitchChain(pieces, std::move(level_probs), &chain_roots);
  for (size_t i = 0; i < merged.size(); ++i) {
    index->blocks_.push_back(MvBlock{std::move(merged[i].key), chain_roots[i],
                                     merged[i].first_level, merged[i].last_level,
                                     merged[i].prob});
  }
  stats.stitch_seconds = timer.Seconds();

  // Register the chain in the online manager: one reserve-ahead bulk append
  // (nodes + unique table sized up front, no mid-import rehash).
  timer.Restart();
  index->not_w_root_ = index->flat_->ImportInto(mgr);
  stats.import_seconds = timer.Seconds();
  stats.blocks = index->blocks_.size();
  stats.flat_nodes = index->flat_->size();
  stats.flat_bytes = index->flat_->MemoryBytes();
  return index;
}

void MvIndex::FastForward(int32_t q_first_level, ScaledDouble* prefix,
                          FlatId* start) const {
  *prefix = ScaledDouble::One();
  if (blocks_.empty()) {
    *start = flat_->root();
    return;
  }
  for (const MvBlock& b : blocks_) {
    if (b.last_level >= q_first_level) {
      *start = b.chain_root;
      return;
    }
    *prefix *= b.prob;
  }
  *start = kFlatTrue;
}

double MvIndex::ProbQ(NodeId q, std::unordered_map<NodeId, double>* memo) const {
  if (q == BddManager::kFalse) return 0.0;
  if (q == BddManager::kTrue) return 1.0;
  auto it = memo->find(q);
  if (it != memo->end()) return it->second;
  const BddNode& n = mgr_->node(q);
  const double p = flat_->prob_at_level(n.level);
  const double r = (1.0 - p) * ProbQ(n.lo, memo) + p * ProbQ(n.hi, memo);
  memo->emplace(q, r);
  return r;
}

namespace {

uint64_t PairKey(NodeId q, FlatId u) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(q)) << 32) |
         static_cast<uint32_t>(u);
}

}  // namespace

ScaledDouble MvIndex::MVIntersectScaled(NodeId q_root) const {
  if (q_root == BddManager::kFalse) return ScaledDouble::Zero();
  if (q_root == BddManager::kTrue) return ProbNotWScaled();
  std::unordered_map<NodeId, double> qmemo;
  ScaledDouble prefix;
  FlatId start;
  FastForward(mgr_->level(q_root), &prefix, &start);
  if (start == kFlatTrue) return prefix * ScaledDouble(ProbQ(q_root, &qmemo));
  if (start == kFlatFalse) return ScaledDouble::Zero();

  std::unordered_map<uint64_t, ScaledDouble> memo;
  // Recursive lambda over (query node, W-chain flat node).
  auto rec = [&](auto&& self, NodeId q, FlatId u) -> ScaledDouble {
    if (q == BddManager::kFalse || u == kFlatFalse) return ScaledDouble::Zero();
    if (q == BddManager::kTrue) return flat_->prob_under_scaled(u);
    if (u == kFlatTrue) return ScaledDouble(ProbQ(q, &qmemo));
    const uint64_t key = PairKey(q, u);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;

    const int32_t lq = mgr_->level(q);
    const int32_t lu = flat_->level(u);
    const int32_t l = std::min(lq, lu);
    const double p = flat_->prob_at_level(l);
    NodeId q0 = q, q1 = q;
    if (lq == l) {
      const BddNode& n = mgr_->node(q);
      q0 = n.lo;
      q1 = n.hi;
    }
    FlatId u0 = u, u1 = u;
    if (lu == l) {
      u0 = flat_->lo(u);
      u1 = flat_->hi(u);
    }
    const ScaledDouble r = ScaledDouble(1.0 - p) * self(self, q0, u0) +
                           ScaledDouble(p) * self(self, q1, u1);
    memo.emplace(key, r);
    return r;
  };
  return prefix * rec(rec, q_root, start);
}

ScaledDouble MvIndex::CCMVIntersectScaled(NodeId q_root) const {
  if (q_root == BddManager::kFalse) return ScaledDouble::Zero();
  if (q_root == BddManager::kTrue) return ProbNotWScaled();
  std::unordered_map<NodeId, double> qmemo;
  ScaledDouble prefix;
  FlatId start;
  FastForward(mgr_->level(q_root), &prefix, &start);
  if (start == kFlatTrue) return prefix * ScaledDouble(ProbQ(q_root, &qmemo));
  if (start == kFlatFalse) return ScaledDouble::Zero();

  // Sequential sweep over the level-sorted node vector: edges only point
  // forward, so one pass from `start` visits every reachable pairing. The
  // per-node buckets are a reusable member; only touched entries are
  // cleared afterwards.
  if (cc_buckets_.size() < flat_->size()) cc_buckets_.resize(flat_->size());
  ScaledDouble total;
  std::vector<FlatId> touched;
  size_t pending = 1;
  cc_buckets_[static_cast<size_t>(start)].push_back({q_root, ScaledDouble::One()});
  touched.push_back(start);

  std::unordered_map<NodeId, ScaledDouble> merged;
  std::unordered_map<NodeId, ScaledDouble> next_level;
  for (FlatId u = start; pending > 0 && u < static_cast<FlatId>(flat_->size());
       ++u) {
    auto& bucket = cc_buckets_[static_cast<size_t>(u)];
    if (bucket.empty()) continue;
    pending -= bucket.size();
    const int32_t lu = flat_->level(u);
    const double pu = flat_->prob_at_level(lu);

    // Merge duplicate query nodes, then expand query-only levels below lu
    // one level at a time (merging keeps the set bounded by the query OBDD
    // width, not the number of paths).
    merged.clear();
    for (const auto& [q, w] : bucket) merged[q] += w;
    bucket.clear();
    while (true) {
      int32_t min_level = BddManager::kSinkLevel;
      for (const auto& [q, w] : merged) {
        if (!mgr_->IsSink(q)) min_level = std::min(min_level, mgr_->level(q));
      }
      if (min_level >= lu) break;
      next_level.clear();
      const double p = flat_->prob_at_level(min_level);
      for (const auto& [q, w] : merged) {
        if (q == BddManager::kFalse) continue;
        if (q == BddManager::kTrue) {
          total += w * flat_->prob_under_scaled(u);
          continue;
        }
        if (mgr_->level(q) == min_level) {
          const BddNode& n = mgr_->node(q);
          next_level[n.lo] += w * ScaledDouble(1.0 - p);
          next_level[n.hi] += w * ScaledDouble(p);
        } else {
          next_level[q] += w;
        }
      }
      merged.swap(next_level);
    }

    auto emit = [&](FlatId next_u, NodeId next_q, const ScaledDouble& w) {
      if (next_q == BddManager::kFalse || next_u == kFlatFalse) return;
      if (next_u == kFlatTrue) {
        total += w * ScaledDouble(ProbQ(next_q, &qmemo));
        return;
      }
      if (next_q == BddManager::kTrue) {
        total += w * flat_->prob_under_scaled(next_u);
        return;
      }
      auto& b = cc_buckets_[static_cast<size_t>(next_u)];
      if (b.empty()) touched.push_back(next_u);
      b.push_back({next_q, w});
      ++pending;
    };
    for (const auto& [q, w] : merged) {
      if (q == BddManager::kFalse) continue;
      if (q == BddManager::kTrue) {
        total += w * flat_->prob_under_scaled(u);
        continue;
      }
      NodeId q0 = q, q1 = q;
      if (mgr_->level(q) == lu) {
        const BddNode& n = mgr_->node(q);
        q0 = n.lo;
        q1 = n.hi;
      }
      emit(flat_->lo(u), q0, w * ScaledDouble(1.0 - pu));
      emit(flat_->hi(u), q1, w * ScaledDouble(pu));
    }
  }
  for (FlatId t : touched) cc_buckets_[static_cast<size_t>(t)].clear();
  return prefix * total;
}

}  // namespace mvdb
