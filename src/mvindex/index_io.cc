#include "mvindex/index_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "mvindex/mv_index.h"
#include "util/hash64.h"
#include "util/logging.h"

namespace mvdb {
namespace {

uint64_t AlignUp(uint64_t v) {
  return (v + kIndexSectionAlign - 1) & ~(kIndexSectionAlign - 1);
}

const char* SectionName(IndexSection s) {
  switch (s) {
    case kSecVarOrder: return "var_order";
    case kSecLevelProbs: return "level_probs";
    case kSecLevels: return "levels";
    case kSecEdges: return "edges";
    case kSecProbUnder: return "prob_under";
    case kSecBlockDir: return "block_dir";
    case kSecKeyBlob: return "key_blob";
    default: return "?";
  }
}

/// Element size of each section's array (key blob is a byte stream).
uint64_t ElemSize(IndexSection s) {
  switch (s) {
    case kSecVarOrder: return sizeof(VarId);
    case kSecLevelProbs: return sizeof(double);
    case kSecLevels: return sizeof(int32_t);
    case kSecEdges: return sizeof(FlatEdges);
    case kSecProbUnder: return sizeof(ScaledDouble);
    case kSecBlockDir: return sizeof(IndexBlockRecord);
    case kSecKeyBlob: return 1;
    default: return 1;
  }
}

/// Expected element count of a section given the header (key blob is free-
/// length; returned as ~0 to skip the count check).
uint64_t ExpectedCount(IndexSection s, const IndexFileHeader& h) {
  switch (s) {
    case kSecVarOrder: return h.num_levels;
    case kSecLevelProbs: return h.num_levels;
    case kSecLevels: return h.num_nodes;
    case kSecEdges: return h.num_nodes;
    case kSecProbUnder: return h.num_nodes;
    case kSecBlockDir: return h.num_blocks;
    default: return std::numeric_limits<uint64_t>::max();
  }
}

uint64_t HeaderChecksum(IndexFileHeader h) {
  h.header_checksum = 0;
  return Hash64(&h, sizeof(h));
}

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("index file corrupt: " + what);
}

}  // namespace

StatusOr<IndexFileReader> IndexFileReader::Validate(IndexFileReader r) {
  // Order of checks matters: nothing past the fixed header is dereferenced
  // until the header itself proves intact, and no payload base is formed
  // until its bounds check out against the real file size.
  constexpr size_t kTableBytes = kNumIndexSections * sizeof(SectionEntry);
  // Magic, version and endian tag occupy the first 16 bytes of every format
  // generation, so check them from the common prefix before assuming the v3
  // header size — an old-format file must earn the migration message, not a
  // bounds error.
  if (r.size_ < 16) {
    return Corrupt("file shorter than header");
  }
  uint64_t magic;
  uint32_t version;
  uint32_t endian_tag;
  std::memcpy(&magic, r.data_, sizeof(magic));
  std::memcpy(&version, r.data_ + 8, sizeof(version));
  std::memcpy(&endian_tag, r.data_ + 12, sizeof(endian_tag));
  if (magic != kIndexMagic) {
    // A foreign-endian writer scrambles the magic bytes too, so tell the
    // two apart by checking the byte-swapped tag before giving up.
    if (__builtin_bswap32(endian_tag) == kIndexEndianTag) {
      return Status::InvalidArgument(
          "index file was written on a foreign-endian host; rebuild the "
          "index on this machine");
    }
    return Corrupt("bad magic (not an MV-index file)");
  }
  if (endian_tag != kIndexEndianTag) {
    return Status::InvalidArgument(
        "index file was written on a foreign-endian host; rebuild the index "
        "on this machine");
  }
  if (version != kIndexFormatVersion) {
    if (version >= 1 && version < kIndexFormatVersion) {
      return Status::InvalidArgument(
          "index format version " + std::to_string(version) +
          " predates the block-local annotation format (v" +
          std::to_string(kIndexFormatVersion) +
          "); run `dump_index --migrate <file>` to upgrade it offline, or "
          "re-save the index from the database");
    }
    return Status::InvalidArgument(
        "index format version " + std::to_string(version) +
        " not supported (reader expects " +
        std::to_string(kIndexFormatVersion) + "); rebuild the index");
  }
  if (r.size_ < sizeof(IndexFileHeader) + kTableBytes) {
    return Corrupt("file shorter than header");
  }
  IndexFileHeader h;
  std::memcpy(&h, r.data_, sizeof(h));
  if (HeaderChecksum(h) != h.header_checksum) {
    return Corrupt("header checksum mismatch");
  }
  if (h.annotation_scheme != kAnnotationSchemeBlockLocal) {
    // The scheme tag carries the section's *semantics*; serving globally-
    // composed annotations through block-local consumers would be silently
    // wrong everywhere, so an unexpected tag is fatal even when the
    // version word says v3.
    return Corrupt("annotation scheme " + std::to_string(h.annotation_scheme) +
                   " is not block-local (expected " +
                   std::to_string(kAnnotationSchemeBlockLocal) + ")");
  }
  if (h.header_reserved != 0) {
    return Corrupt("nonzero reserved header field");
  }
  if ((h.flags & ~static_cast<uint64_t>(kIndexFlagDirty)) != 0) {
    return Corrupt("unknown header flags");
  }
  if ((h.flags & kIndexFlagDirty) != 0) {
    // An in-place patch marked the file dirty and never finished: the
    // payload sections may be torn. Refuse to serve; the index is rebuilt
    // or re-saved from the MVDB, which stays the source of truth.
    return Status::FailedPrecondition(
        "index file has an unfinished in-place patch (dirty flag set); "
        "re-save the index from the database");
  }
  if (h.file_bytes != r.size_) {
    return Corrupt("file size " + std::to_string(r.size_) +
                   " does not match header file_bytes " +
                   std::to_string(h.file_bytes) + " (truncated?)");
  }
  if (Hash64(r.data_ + sizeof(IndexFileHeader), kTableBytes) !=
      h.section_table_checksum) {
    return Corrupt("section table checksum mismatch");
  }
  // Counts must fit the 32-bit id space the in-memory layout uses.
  if (h.num_nodes > static_cast<uint64_t>(std::numeric_limits<FlatId>::max()) ||
      h.num_levels >
          static_cast<uint64_t>(std::numeric_limits<int32_t>::max()) ||
      h.num_blocks >
          static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return Corrupt("counts exceed 32-bit id space");
  }
  if (h.root < static_cast<int64_t>(kFlatTrue) ||
      h.root >= static_cast<int64_t>(h.num_nodes)) {
    return Corrupt("root out of range");
  }
  for (uint32_t s = 0; s < kNumIndexSections; ++s) {
    const auto sec = static_cast<IndexSection>(s);
    const SectionEntry& e = r.section(sec);
    // Overflow-safe bounds: offset and length are each checked against the
    // file size before their sum is formed.
    if (e.offset % kIndexSectionAlign != 0 || e.offset > r.size_ ||
        e.length > r.size_ || e.offset + e.length > r.size_) {
      return Corrupt(std::string("section ") + SectionName(sec) +
                     " out of bounds");
    }
    const uint64_t elem = ElemSize(sec);
    if (e.length % elem != 0) {
      return Corrupt(std::string("section ") + SectionName(sec) +
                     " length not a multiple of its element size");
    }
    const uint64_t expected = ExpectedCount(sec, h);
    if (expected != std::numeric_limits<uint64_t>::max() &&
        e.length / elem != expected) {
      return Corrupt(std::string("section ") + SectionName(sec) +
                     " length disagrees with header counts");
    }
  }
  // Per-block referential integrity: chain entries and level ranges must
  // land inside the arrays, and key spans inside the blob. Records are
  // small (one cache line each), so this runs even in mapped mode.
  const uint64_t blob_len = r.section(kSecKeyBlob).length;
  const IndexBlockRecord* blocks = r.block_dir();
  for (uint64_t b = 0; b < h.num_blocks; ++b) {
    const IndexBlockRecord& rec = blocks[b];
    if (rec.chain_root < kFlatTrue ||
        rec.chain_root >= static_cast<int64_t>(h.num_nodes)) {
      return Corrupt("block chain_root out of range");
    }
    if (rec.first_level < 0 || rec.last_level < rec.first_level ||
        static_cast<uint64_t>(rec.last_level) >= h.num_levels) {
      return Corrupt("block level range out of range");
    }
    if (rec.key_offset > blob_len || rec.key_len > blob_len ||
        rec.key_offset + rec.key_len > blob_len) {
      return Corrupt("block key span outside key blob");
    }
  }
  return r;
}

StatusOr<IndexFileReader> IndexFileReader::OpenOwned(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  const std::streamoff size = in.tellg();
  if (size <= 0) {
    return Status::InvalidArgument("cannot read " + path + ": empty file");
  }
  IndexFileReader r;
  r.owned_.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(r.owned_.data()), size);
  if (!in) {
    return Status::InvalidArgument("short read on " + path);
  }
  r.data_ = r.owned_.data();
  r.size_ = r.owned_.size();
  return Validate(std::move(r));
}

StatusOr<IndexFileReader> IndexFileReader::OpenMapped(const std::string& path) {
  MVDB_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  IndexFileReader r;
  r.mapping_ = std::make_shared<const MmapFile>(std::move(file));
  r.data_ = r.mapping_->data();
  r.size_ = r.mapping_->size();
  return Validate(std::move(r));
}

Status IndexFileReader::VerifyChecksums() const {
  for (uint32_t s = 0; s < kNumIndexSections; ++s) {
    const auto sec = static_cast<IndexSection>(s);
    const SectionEntry& e = section(sec);
    if (Hash64(data_ + e.offset, e.length) != e.checksum) {
      return Corrupt(std::string("section ") + SectionName(sec) +
                     " checksum mismatch");
    }
  }
  return Status::OK();
}

StatusOr<std::vector<VarId>> ReadIndexVarOrder(const std::string& path) {
  // Mapped open: only the header, section table, block directory and the
  // order section itself are faulted in.
  MVDB_ASSIGN_OR_RETURN(IndexFileReader r, IndexFileReader::OpenMapped(path));
  const VarId* order = r.var_order();
  return std::vector<VarId>(order, order + r.header().num_levels);
}

// ---------------------------------------------------------------------------
// Writer (MvIndex::Save, MigrateIndexFile)
// ---------------------------------------------------------------------------

namespace {

struct SectionSource {
  const void* data;
  uint64_t length;
};

/// Lays out and writes a complete v3 image: computes the section table and
/// every checksum over `sources`, finalizes the header's derived fields
/// (file_bytes, table + header checksums; the identity fields — counts,
/// root, order digest — are the caller's), and writes to a sibling temp
/// file renamed into place. A crash mid-write never leaves a torn file at
/// `path` (rename within one directory is atomic on POSIX filesystems).
/// The temp name carries the pid plus a process-wide counter so concurrent
/// savers of the same path never write through each other's temp file;
/// every failure path removes it. Shared by MvIndex::Save and the offline
/// v2->v3 migration so the two produce bit-identical layouts.
Status WriteIndexSections(const std::string& path, IndexFileHeader h,
                          const SectionSource (&sources)[kNumIndexSections]) {
  h.magic = kIndexMagic;
  h.format_version = kIndexFormatVersion;
  h.endian_tag = kIndexEndianTag;
  h.annotation_scheme = kAnnotationSchemeBlockLocal;
  h.header_reserved = 0;
  h.flags = 0;

  SectionEntry table[kNumIndexSections];
  uint64_t offset = AlignUp(sizeof(IndexFileHeader) + sizeof(table));
  for (uint32_t s = 0; s < kNumIndexSections; ++s) {
    table[s].offset = offset;
    table[s].length = sources[s].length;
    table[s].checksum = Hash64(sources[s].data, sources[s].length);
    offset = AlignUp(offset + sources[s].length);
  }
  const uint64_t file_bytes = offset;
  h.file_bytes = file_bytes;
  h.section_table_checksum = Hash64(table, sizeof(table));
  h.header_checksum = HeaderChecksum(h);

  static std::atomic<uint64_t> save_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(save_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot create " + tmp);
    }
    auto write_bytes = [&out](const void* data, uint64_t len) {
      if (len == 0) return;  // empty sections (e.g. a 0-block chain)
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(len));
    };
    auto pad_to = [&](uint64_t target) {
      static constexpr char kZeros[kIndexSectionAlign] = {};
      const auto pos = static_cast<uint64_t>(out.tellp());
      MVDB_CHECK_GE(target, pos);
      write_bytes(kZeros, target - pos);
    };
    write_bytes(&h, sizeof(h));
    write_bytes(table, sizeof(table));
    for (uint32_t s = 0; s < kNumIndexSections; ++s) {
      pad_to(table[s].offset);
      write_bytes(sources[s].data, sources[s].length);
    }
    pad_to(file_bytes);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::InvalidArgument("write failed for " + tmp +
                                     " (disk full?)");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace

Status MvIndex::Save(const std::string& path) const {
  const FlatObdd& flat = *flat_;
  const uint64_t num_nodes = flat.size();
  const uint64_t num_levels = flat.num_levels();
  const uint64_t num_blocks = blocks_.size();

  // Assemble the block directory + key blob in memory (tiny next to the
  // node arrays: one cache line per block).
  std::string key_blob;
  std::vector<IndexBlockRecord> block_dir(blocks_.size());
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const MvBlock& blk = blocks_[b];
    IndexBlockRecord& rec = block_dir[b];
    rec.chain_root = blk.chain_root;
    rec.first_level = blk.first_level;
    rec.last_level = blk.last_level;
    rec.reserved = 0;
    rec.prob_mantissa_bits = blk.prob.mantissa_bits();
    rec.prob_exponent = blk.prob.exponent_word();
    rec.key_offset = key_blob.size();
    rec.key_len = blk.key.size();
    key_blob.append(blk.key);
  }

  const std::vector<VarId>& order = mgr_->order()->vars();
  MVDB_CHECK_EQ(order.size(), num_levels);

  const SectionSource sources[kNumIndexSections] = {
      {order.data(), num_levels * sizeof(VarId)},
      {flat.level_probs_data(), num_levels * sizeof(double)},
      {flat.levels_data(), num_nodes * sizeof(int32_t)},
      {flat.edges_data(), num_nodes * sizeof(FlatEdges)},
      {flat.prob_under_data(), num_nodes * sizeof(ScaledDouble)},
      {block_dir.data(), num_blocks * sizeof(IndexBlockRecord)},
      {key_blob.data(), key_blob.size()},
  };

  IndexFileHeader h;
  std::memset(&h, 0, sizeof(h));
  h.num_nodes = num_nodes;
  h.num_levels = num_levels;
  h.num_blocks = num_blocks;
  h.root = flat.root();
  h.var_order_digest = Hash64(order.data(), num_levels * sizeof(VarId));
  MVDB_RETURN_NOT_OK(WriteIndexSections(path, h, sources));

  // The file now holds exactly this index's weight state: subsequent
  // PatchFile calls may write dirty-block slices instead of whole sections.
  pending_patch_blocks_.clear();
  pending_patch_levels_.clear();
  weights_synced_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// In-place patch (MvIndex::PatchFile)
// ---------------------------------------------------------------------------

namespace {

Status PwriteAll(int fd, const void* data, uint64_t len, uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument("pwrite failed for index patch: " +
                                     std::string(std::strerror(errno)));
    }
    p += n;
    len -= static_cast<uint64_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status PreadAll(int fd, void* data, uint64_t len, uint64_t offset) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::pread(fd, p, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument("pread failed for index patch: " +
                                     std::string(std::strerror(errno)));
    }
    if (n == 0) return Corrupt("file shorter than header");
    p += n;
    len -= static_cast<uint64_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status MvIndex::PatchFile(const std::string& path,
                          const IndexPatchOptions& options) const {
  const FlatObdd& flat = *flat_;
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + " for patching");
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  // The patch only makes sense against a file holding exactly this index's
  // topology: same node/level/block counts, same root, same variable order.
  // Anything else is a structural change, which takes the full Save path.
  IndexFileHeader h;
  SectionEntry table[kNumIndexSections];
  MVDB_RETURN_NOT_OK(PreadAll(fd, &h, sizeof(h), 0));
  MVDB_RETURN_NOT_OK(PreadAll(fd, table, sizeof(table), sizeof(h)));
  if (h.magic != kIndexMagic || h.endian_tag != kIndexEndianTag ||
      h.format_version != kIndexFormatVersion) {
    return Corrupt("not a patchable MV-index file");
  }
  if (HeaderChecksum(h) != h.header_checksum) {
    return Corrupt("header checksum mismatch");
  }
  const std::vector<VarId>& order = mgr_->order()->vars();
  if (h.num_nodes != flat.size() || h.num_levels != flat.num_levels() ||
      h.num_blocks != blocks_.size() || h.root != flat.root() ||
      h.var_order_digest != Hash64(order.data(), order.size() * sizeof(VarId))) {
    return Status::FailedPrecondition(
        "index file does not match this index's topology; an in-place patch "
        "only covers weight-level deltas — use Save for structural changes");
  }

  // Reassemble the weight-carrying payloads. Keys are unchanged, so the
  // block records keep their original key spans (recomputed in the same
  // deterministic append order Save uses).
  std::string key_blob;
  std::vector<IndexBlockRecord> block_dir(blocks_.size());
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const MvBlock& blk = blocks_[b];
    IndexBlockRecord& rec = block_dir[b];
    rec.chain_root = blk.chain_root;
    rec.first_level = blk.first_level;
    rec.last_level = blk.last_level;
    rec.reserved = 0;
    rec.prob_mantissa_bits = blk.prob.mantissa_bits();
    rec.prob_exponent = blk.prob.exponent_word();
    rec.key_offset = key_blob.size();
    rec.key_len = blk.key.size();
    key_blob.append(blk.key);
  }
  struct PatchSection {
    IndexSection sec;
    const void* data;
    uint64_t length;
  };
  const PatchSection patched[] = {
      {kSecLevelProbs, flat.level_probs_data(),
       h.num_levels * sizeof(double)},
      {kSecProbUnder, flat.prob_under_data(),
       h.num_nodes * sizeof(ScaledDouble)},
      {kSecBlockDir, block_dir.data(),
       blocks_.size() * sizeof(IndexBlockRecord)},
  };
  for (const PatchSection& p : patched) {
    if (table[p.sec].length != p.length) {
      return Status::FailedPrecondition(
          std::string("index file section ") + SectionName(p.sec) +
          " size differs; use Save for structural changes");
    }
    table[p.sec].checksum = Hash64(p.data, p.length);
  }
  if (table[kSecKeyBlob].length != key_blob.size()) {
    return Status::FailedPrecondition(
        "index file key blob differs; use Save for structural changes");
  }

  // Protocol step 1: mark the file dirty and make the mark durable before
  // any payload byte changes. A crash from here until step 3 completes
  // leaves the dirty bit set, which the loaders reject with a typed Status.
  IndexFileHeader dirty = h;
  dirty.flags |= kIndexFlagDirty;
  dirty.header_checksum = HeaderChecksum(dirty);
  MVDB_RETURN_NOT_OK(PwriteAll(fd, &dirty, sizeof(dirty), 0));
  if (::fsync(fd) != 0) {
    return Status::InvalidArgument("fsync failed for " + path);
  }
  if (options.crash_after_dirty_mark) {
    return Status::OK();  // test hook: simulate dying mid-patch
  }

  // Step 2: rewrite the changed payload bytes and the section table in
  // place (sizes are unchanged, so no other byte moves). When this index's
  // weight state is known to match the file (`weights_synced_`: the file
  // was written by our last Save/PatchFile), only the dirty-block slices
  // accumulated since then need to touch disk — for a single-author delta
  // at 1M scale that is one ~100 B probUnder slice, one 48 B block record
  // and a handful of 8 B level probs instead of ~31 MB of sections. The
  // table checksums above are always over the full in-memory arrays, so a
  // loader's verify pass still proves the whole file consistent.
  if (weights_synced_) {
    std::vector<int32_t> lvls = pending_patch_levels_;
    std::sort(lvls.begin(), lvls.end());
    lvls.erase(std::unique(lvls.begin(), lvls.end()), lvls.end());
    const double* level_probs = flat.level_probs_data();
    for (const int32_t l : lvls) {
      MVDB_RETURN_NOT_OK(PwriteAll(
          fd, level_probs + l, sizeof(double),
          table[kSecLevelProbs].offset +
              static_cast<uint64_t>(l) * sizeof(double)));
    }
    std::vector<size_t> blks = pending_patch_blocks_;
    std::sort(blks.begin(), blks.end());
    blks.erase(std::unique(blks.begin(), blks.end()), blks.end());
    const ScaledDouble* prob_under = flat.prob_under_data();
    for (const size_t b : blks) {
      const FlatId begin = blocks_[b].chain_root;
      if (begin < 0) continue;  // sink-rooted block: no annotation slice
      const FlatId end = b + 1 < blocks_.size()
                             ? blocks_[b + 1].chain_root
                             : static_cast<FlatId>(flat.size());
      MVDB_RETURN_NOT_OK(PwriteAll(
          fd, prob_under + begin,
          static_cast<uint64_t>(end - begin) * sizeof(ScaledDouble),
          table[kSecProbUnder].offset +
              static_cast<uint64_t>(begin) * sizeof(ScaledDouble)));
      MVDB_RETURN_NOT_OK(PwriteAll(
          fd, &block_dir[b], sizeof(IndexBlockRecord),
          table[kSecBlockDir].offset + b * sizeof(IndexBlockRecord)));
    }
  } else {
    // The file's weight state is unknown (fresh build, structural delta, or
    // a Save that went to a different path): rewrite the weight-carrying
    // sections wholesale so any topology-matching file converges.
    for (const PatchSection& p : patched) {
      MVDB_RETURN_NOT_OK(PwriteAll(fd, p.data, p.length, table[p.sec].offset));
    }
  }
  MVDB_RETURN_NOT_OK(PwriteAll(fd, table, sizeof(table), sizeof(h)));
  if (::fsync(fd) != 0) {
    return Status::InvalidArgument("fsync failed for " + path);
  }
  if (options.crash_after_payload) {
    return Status::OK();  // test hook: payloads durable, header still dirty
  }

  // Step 3: clear the dirty bit over the now-consistent payloads.
  IndexFileHeader clean = h;
  clean.flags &= ~static_cast<uint64_t>(kIndexFlagDirty);
  clean.section_table_checksum = Hash64(table, sizeof(table));
  clean.header_checksum = HeaderChecksum(clean);
  MVDB_RETURN_NOT_OK(PwriteAll(fd, &clean, sizeof(clean), 0));
  if (::fsync(fd) != 0) {
    return Status::InvalidArgument("fsync failed for " + path);
  }
  // The patch is durable: the file again matches memory exactly. Clearing
  // the pending sets only now (not at the crash hooks above) means a
  // simulated mid-patch crash leaves them armed, so a re-patch rewrites the
  // same slices and recovers the file.
  pending_patch_blocks_.clear();
  pending_patch_levels_.clear();
  weights_synced_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Loaders (MvIndex::Load / LoadMapped)
// ---------------------------------------------------------------------------

namespace {

/// Checks the manager's order against the file's digest. Binding by digest
/// (not by re-reading the order array) keeps the check O(num_levels) bytes
/// hashed once, and catches "right database, wrong permutation choice".
Status CheckManagerOrder(const IndexFileReader& r, const BddManager& mgr) {
  const IndexFileHeader& h = r.header();
  const std::vector<VarId>& order = mgr.order()->vars();
  if (order.size() != h.num_levels) {
    return Status::InvalidArgument(
        "manager variable order has " + std::to_string(order.size()) +
        " levels but the index file has " + std::to_string(h.num_levels));
  }
  if (Hash64(order.data(), order.size() * sizeof(VarId)) !=
      h.var_order_digest) {
    return Status::InvalidArgument(
        "manager variable order does not match the order the index was "
        "built under (digest mismatch)");
  }
  return Status::OK();
}

}  // namespace

namespace internal {

/// Loader backdoor (friend of MvIndex): assembles a loaded index field by
/// field. The shared tail of both loaders — rebuilds the block vector from
/// the directory and recomputes the FastForward prefix products in the
/// exact left-to-right multiply order the build used, so skip prefixes
/// stay bit-identical.
struct IndexIoAccess {
  static std::unique_ptr<MvIndex> Assemble(const IndexFileReader& r,
                                           BddManager* mgr,
                                           std::unique_ptr<FlatObdd> flat);
};

std::unique_ptr<MvIndex> IndexIoAccess::Assemble(const IndexFileReader& r,
                                                 BddManager* mgr,
                                                 std::unique_ptr<FlatObdd> flat) {
  const IndexFileHeader& h = r.header();
  std::unique_ptr<MvIndex> index(new MvIndex());
  index->mgr_ = mgr;
  index->flat_ = std::move(flat);
  index->blocks_.resize(h.num_blocks);
  const IndexBlockRecord* dir = r.block_dir();
  const char* blob = r.key_blob();
  for (uint64_t b = 0; b < h.num_blocks; ++b) {
    const IndexBlockRecord& rec = dir[b];
    MvBlock& blk = index->blocks_[b];
    blk.key.assign(blob + rec.key_offset, rec.key_len);
    blk.chain_root = rec.chain_root;
    blk.first_level = rec.first_level;
    blk.last_level = rec.last_level;
    blk.prob = ScaledDouble::FromRaw(rec.prob_mantissa_bits, rec.prob_exponent);
  }
  index->block_prefix_.resize(index->blocks_.size() + 1);
  index->block_prefix_[0] = ScaledDouble::One();
  for (size_t i = 0; i < index->blocks_.size(); ++i) {
    ScaledDouble p = index->block_prefix_[i];
    p *= index->blocks_[i].prob;
    index->block_prefix_[i + 1] = p;
  }
  // Suffix products, right-to-left — the same multiply order AssembleChain
  // pins at build time, so the sweep consumers' credits stay bit-identical
  // across a save/load round trip.
  index->block_suffix_.assign(index->blocks_.size() + 1, ScaledDouble::One());
  for (size_t i = index->blocks_.size(); i-- > 0;) {
    index->block_suffix_[i] =
        index->blocks_[i].prob * index->block_suffix_[i + 1];
  }
  // A freshly loaded index matches its file byte for byte: PatchFile may
  // write dirty-block slices from here on.
  index->weights_synced_ = true;
  // Stats reflect the loaded image, not the (absent) build.
  index->build_stats_.blocks = index->blocks_.size();
  index->build_stats_.flat_nodes = index->flat_->size();
  index->build_stats_.flat_bytes = index->flat_->MemoryBytes();
  // var_probs_ stays empty: it is a build-time input snapshot; every online
  // path reads the per-level table inside the FlatObdd instead.
  return index;
}

}  // namespace internal

StatusOr<std::unique_ptr<MvIndex>> MvIndex::Load(
    const std::string& path, BddManager* mgr, const IndexLoadOptions& options) {
  MVDB_ASSIGN_OR_RETURN(IndexFileReader r, IndexFileReader::OpenOwned(path));
  if (options.verify_checksums) {
    MVDB_RETURN_NOT_OK(r.VerifyChecksums());
  }
  MVDB_RETURN_NOT_OK(CheckManagerOrder(r, *mgr));
  const IndexFileHeader& h = r.header();
  const size_t n = static_cast<size_t>(h.num_nodes);
  std::vector<int32_t> levels(r.levels(), r.levels() + n);
  std::vector<FlatEdges> edges(n);
  std::memcpy(edges.data(), r.edges_raw(), n * sizeof(FlatEdges));
  std::vector<ScaledDouble> prob_under(n);
  std::memcpy(prob_under.data(), r.prob_under_raw(), n * sizeof(ScaledDouble));
  std::vector<double> level_probs(r.level_probs(),
                                  r.level_probs() + h.num_levels);
  auto flat = FlatObdd::FromOwnedStorage(
      std::move(levels), std::move(edges), std::move(prob_under),
      std::move(level_probs), static_cast<FlatId>(h.root));
  return internal::IndexIoAccess::Assemble(r, mgr, std::move(flat));
}

// ---------------------------------------------------------------------------
// Offline migration (dump_index --migrate)
// ---------------------------------------------------------------------------

namespace {

/// v2 fixed header (88 B): no annotation-scheme tag; the probUnder section
/// carried globally-composed suffix products. The field prefix through
/// `flags` is layout-identical to v3.
struct IndexFileHeaderV2 {
  uint64_t magic;
  uint32_t format_version;
  uint32_t endian_tag;
  uint64_t num_nodes;
  uint64_t num_levels;
  uint64_t num_blocks;
  int64_t root;
  uint64_t var_order_digest;
  uint64_t file_bytes;
  uint64_t flags;
  uint64_t section_table_checksum;
  uint64_t header_checksum;
};
static_assert(sizeof(IndexFileHeaderV2) == 88);

uint64_t HeaderChecksumV2(IndexFileHeaderV2 h) {
  h.header_checksum = 0;
  return Hash64(&h, sizeof(h));
}

Status WriteFileAtomic(const std::string& path, const void* data,
                       uint64_t len) {
  static std::atomic<uint64_t> copy_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(copy_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot create " + tmp);
    }
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(len));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::InvalidArgument("write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

/// Full structural + content validation of a v2 image, then a v3 rewrite:
/// everything except the probUnder section carries over verbatim (the block
/// records' standalone probabilities were already per-block in v2), and the
/// annotations are recomputed block-locally from topology + level probs —
/// derived data, so the rewrite is lossless by construction.
Status MigrateV2(const std::vector<uint8_t>& bytes,
                 const std::string& out_path) {
  constexpr size_t kTableBytes = kNumIndexSections * sizeof(SectionEntry);
  if (bytes.size() < sizeof(IndexFileHeaderV2) + kTableBytes) {
    return Corrupt("file shorter than header");
  }
  IndexFileHeaderV2 h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (HeaderChecksumV2(h) != h.header_checksum) {
    return Corrupt("header checksum mismatch");
  }
  if ((h.flags & ~static_cast<uint64_t>(kIndexFlagDirty)) != 0) {
    return Corrupt("unknown header flags");
  }
  if ((h.flags & kIndexFlagDirty) != 0) {
    return Status::FailedPrecondition(
        "v2 index file has an unfinished in-place patch (dirty flag set); "
        "re-save it from the database before migrating");
  }
  if (h.file_bytes != bytes.size()) {
    return Corrupt("file size does not match header file_bytes (truncated?)");
  }
  SectionEntry table[kNumIndexSections];
  std::memcpy(table, bytes.data() + sizeof(h), kTableBytes);
  if (Hash64(table, kTableBytes) != h.section_table_checksum) {
    return Corrupt("section table checksum mismatch");
  }
  if (h.num_nodes > static_cast<uint64_t>(std::numeric_limits<FlatId>::max()) ||
      h.num_levels >
          static_cast<uint64_t>(std::numeric_limits<int32_t>::max()) ||
      h.num_blocks >
          static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return Corrupt("counts exceed 32-bit id space");
  }
  if (h.root < static_cast<int64_t>(kFlatTrue) ||
      h.root >= static_cast<int64_t>(h.num_nodes)) {
    return Corrupt("root out of range");
  }
  // v2 and v3 share section order, element sizes and expected counts, so
  // the v3 helpers validate the v2 table directly. Content checksums run
  // too — migration is offline, and writing a v3 file from torn v2 bytes
  // would launder the corruption into a file that then validates.
  IndexFileHeader counts;
  std::memset(&counts, 0, sizeof(counts));
  counts.num_nodes = h.num_nodes;
  counts.num_levels = h.num_levels;
  counts.num_blocks = h.num_blocks;
  for (uint32_t s = 0; s < kNumIndexSections; ++s) {
    const auto sec = static_cast<IndexSection>(s);
    const SectionEntry& e = table[s];
    if (e.offset % kIndexSectionAlign != 0 || e.offset > bytes.size() ||
        e.length > bytes.size() || e.offset + e.length > bytes.size()) {
      return Corrupt(std::string("section ") + SectionName(sec) +
                     " out of bounds");
    }
    const uint64_t elem = ElemSize(sec);
    if (e.length % elem != 0) {
      return Corrupt(std::string("section ") + SectionName(sec) +
                     " length not a multiple of its element size");
    }
    const uint64_t expected = ExpectedCount(sec, counts);
    if (expected != std::numeric_limits<uint64_t>::max() &&
        e.length / elem != expected) {
      return Corrupt(std::string("section ") + SectionName(sec) +
                     " length disagrees with header counts");
    }
    if (Hash64(bytes.data() + e.offset, e.length) != e.checksum) {
      return Corrupt(std::string("section ") + SectionName(sec) +
                     " checksum mismatch");
    }
  }

  const size_t n = static_cast<size_t>(h.num_nodes);
  const size_t num_levels = static_cast<size_t>(h.num_levels);
  const size_t num_blocks = static_cast<size_t>(h.num_blocks);
  std::vector<IndexBlockRecord> block_dir(num_blocks);
  std::memcpy(block_dir.data(), bytes.data() + table[kSecBlockDir].offset,
              num_blocks * sizeof(IndexBlockRecord));
  const uint64_t blob_len = table[kSecKeyBlob].length;
  std::vector<size_t> block_starts;
  block_starts.reserve(num_blocks);
  for (const IndexBlockRecord& rec : block_dir) {
    if (rec.chain_root < kFlatTrue ||
        rec.chain_root >= static_cast<int64_t>(h.num_nodes)) {
      return Corrupt("block chain_root out of range");
    }
    if (rec.key_offset > blob_len || rec.key_len > blob_len ||
        rec.key_offset + rec.key_len > blob_len) {
      return Corrupt("block key span outside key blob");
    }
    if (rec.chain_root >= 0) {
      block_starts.push_back(static_cast<size_t>(rec.chain_root));
    }
  }
  std::sort(block_starts.begin(), block_starts.end());

  std::vector<int32_t> levels(n);
  std::memcpy(levels.data(), bytes.data() + table[kSecLevels].offset,
              n * sizeof(int32_t));
  std::vector<FlatEdges> edges(n);
  std::memcpy(edges.data(), bytes.data() + table[kSecEdges].offset,
              n * sizeof(FlatEdges));
  std::vector<double> level_probs(num_levels);
  std::memcpy(level_probs.data(), bytes.data() + table[kSecLevelProbs].offset,
              num_levels * sizeof(double));
  const auto flat = FlatObdd::FromTopologyRecompute(
      std::move(levels), std::move(edges), std::move(level_probs),
      static_cast<FlatId>(h.root), block_starts);

  const SectionSource sources[kNumIndexSections] = {
      {bytes.data() + table[kSecVarOrder].offset, table[kSecVarOrder].length},
      {flat->level_probs_data(), num_levels * sizeof(double)},
      {flat->levels_data(), n * sizeof(int32_t)},
      {flat->edges_data(), n * sizeof(FlatEdges)},
      {flat->prob_under_data(), n * sizeof(ScaledDouble)},
      {block_dir.data(), num_blocks * sizeof(IndexBlockRecord)},
      {bytes.data() + table[kSecKeyBlob].offset, blob_len},
  };
  IndexFileHeader out;
  std::memset(&out, 0, sizeof(out));
  out.num_nodes = h.num_nodes;
  out.num_levels = h.num_levels;
  out.num_blocks = h.num_blocks;
  out.root = h.root;
  out.var_order_digest = h.var_order_digest;
  return WriteIndexSections(out_path, out, sources);
}

}  // namespace

Status MigrateIndexFile(const std::string& in_path,
                        const std::string& out_path) {
  std::ifstream in(in_path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open " + in_path);
  }
  const std::streamoff size = in.tellg();
  if (size < 16) {
    return Corrupt("file shorter than header");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    return Status::InvalidArgument("short read on " + in_path);
  }
  uint64_t magic;
  uint32_t version;
  uint32_t endian_tag;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  std::memcpy(&endian_tag, bytes.data() + 12, sizeof(endian_tag));
  if (magic != kIndexMagic) {
    return Corrupt("bad magic (not an MV-index file)");
  }
  if (endian_tag != kIndexEndianTag) {
    return Status::InvalidArgument(
        "index file was written on a foreign-endian host; rebuild the index "
        "on this machine");
  }
  if (version == kIndexFormatVersion) {
    // Already v3: validate fully, then pass the bytes through unchanged so
    // migrating is idempotent (and a round-trip is byte-comparable).
    MVDB_ASSIGN_OR_RETURN(IndexFileReader r,
                          IndexFileReader::OpenOwned(in_path));
    MVDB_RETURN_NOT_OK(r.VerifyChecksums());
    return WriteFileAtomic(out_path, bytes.data(), bytes.size());
  }
  if (version != 2) {
    return Status::InvalidArgument(
        "index format version " + std::to_string(version) +
        " cannot be migrated (only v2 upgrades to v" +
        std::to_string(kIndexFormatVersion) + "); rebuild the index");
  }
  return MigrateV2(bytes, out_path);
}

StatusOr<std::unique_ptr<MvIndex>> MvIndex::LoadMapped(
    const std::string& path, BddManager* mgr, const IndexLoadOptions& options) {
  MVDB_ASSIGN_OR_RETURN(IndexFileReader r, IndexFileReader::OpenMapped(path));
  if (options.verify_checksums) {
    MVDB_RETURN_NOT_OK(r.VerifyChecksums());
  }
  MVDB_RETURN_NOT_OK(CheckManagerOrder(r, *mgr));
  const IndexFileHeader& h = r.header();
  // The section bases are validated in-bounds and 64-byte aligned, so the
  // reinterpret casts below are aligned loads of trivially copyable types.
  auto flat = FlatObdd::FromMappedStorage(
      r.levels(), static_cast<const FlatEdges*>(r.edges_raw()),
      static_cast<const ScaledDouble*>(r.prob_under_raw()), r.level_probs(),
      static_cast<size_t>(h.num_nodes), static_cast<size_t>(h.num_levels),
      static_cast<FlatId>(h.root), r.mapping());
  return internal::IndexIoAccess::Assemble(r, mgr, std::move(flat));
}

}  // namespace mvdb
