// Copyright 2026 The MarkoView Authors.
//
// Persistent MV-index format: the on-disk image of a compiled index
// (MvIndex::Save / Load / LoadMapped live here; the class declarations are
// in mv_index.h). The format exists so a serve process starts by *opening*
// the offline compilation instead of redoing it — LoadMapped binds
// FlatObdd's SoA bases straight into a PROT_READ mapping, making startup
// cost independent of index size and letting N processes share one physical
// copy of the arrays through the page cache.
//
// Layout (little-endian only; every multi-byte field is a raw LE word):
//
//   +------------------------------+  offset 0
//   | IndexFileHeader    (96 B)    |  magic, version, endian tag, counts,
//   |                              |  root, VarOrder digest, file size,
//   |                              |  annotation scheme,
//   |                              |  section-table + header checksums
//   +------------------------------+  offset 96
//   | SectionEntry[kNumSections]   |  {offset, length, checksum} per section
//   +------------------------------+  64-byte-aligned section payloads:
//   | kVarOrder    VarId[L]        |  the global order Pi (level -> VarId)
//   | kLevelProbs  double[L]       |  per-level marginal probabilities
//   | kLevels      int32[N]        |  FlatObdd SoA: node levels
//   | kEdges       FlatEdges[N]    |  FlatObdd SoA: {lo,hi} topology
//   | kProbUnder   ScaledDouble[N] |  block-local probUnder annotations
//   |                              |  (raw IEEE-754 mantissa + scale word)
//   | kBlockDir    BlockRecord[B]  |  per-block chain entry, level range,
//   |                              |  P(NOT W_b) raw words, key span
//   | kKeyBlob     char[...]       |  concatenated block key strings
//   +------------------------------+  offset file_bytes
//
// Integrity: the header checksum (computed with its own field zeroed)
// covers the fixed header; the section-table checksum covers the entry
// array; each section carries its own checksum. The loaders validate
// header, counts and every section's bounds *before* touching any payload
// byte, so truncated, bit-flipped or lying files fail with a typed Status —
// never a crash, never a silently wrong answer. Owned loads verify section
// checksums by default; mapped loads defer them (checksumming would fault
// in every page and forfeit the instant start) and expose the full pass via
// IndexFileReader::VerifyChecksums (`dump_index --verify`).
//
// Versioning policy: kIndexFormatVersion bumps on ANY layout or semantics
// change — field widths, section order, checksum function, ScaledDouble
// representation. Readers accept exactly their own version; earlier
// generations are rejected with a typed Status that names the offline
// upgrade path (`dump_index --migrate`, backed by MigrateIndexFile below),
// so a persisted 1M-author index survives a format bump without the 6.4s
// rebuild. Endianness: files record the writer's byte
// order; foreign-endian files are rejected rather than swapped (every
// supported target is little-endian, and swapping would force a copy that
// defeats the mmap mode).

#ifndef MVDB_MVINDEX_INDEX_IO_H_
#define MVDB_MVINDEX_INDEX_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/types.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace mvdb {

/// Bumped on any change to the on-disk layout (see versioning policy above).
/// v2: the header grew a `flags` word (88 B) carrying the in-place patch
/// protocol's dirty bit, and the unread reachability annotation section was
/// dropped (probUnder is the only per-node annotation any serving path
/// consumes; carrying reachability doubled both the annotation bytes and
/// the weight-delta repair cost).
/// v3: probUnder became block-local (each block's values are computed with
/// its chain redirect read as True), the header grew an annotation-scheme
/// tag (96 B), and PatchFile shrank to dirty-block slices instead of whole
/// sections. v2 files upgrade offline via `dump_index --migrate`.
inline constexpr uint32_t kIndexFormatVersion = 3;

/// IndexFileHeader::annotation_scheme values. The tag is explicit (not
/// implied by the version) so a reader can state *what* about the bytes it
/// does not understand, and so corruption of the semantics-bearing field is
/// detected independently of the version word.
inline constexpr uint32_t kAnnotationSchemeGlobalSuffix = 1;  ///< v2 files
inline constexpr uint32_t kAnnotationSchemeBlockLocal = 2;    ///< v3 files

/// "MVIDX" + format generation, as a LE u64.
inline constexpr uint64_t kIndexMagic = 0x31584449564DULL;  // "MVIDX1\0\0"

/// Written as a native u32; reads back as itself only on a same-endian host.
inline constexpr uint32_t kIndexEndianTag = 0x01020304;

/// Section payloads start on 64-byte boundaries (cache-line-aligned array
/// bases in the mapped mode; mmap offsets are page-aligned already).
inline constexpr uint64_t kIndexSectionAlign = 64;

/// Payload section order (fixed; part of the format).
enum IndexSection : uint32_t {
  kSecVarOrder = 0,
  kSecLevelProbs = 1,
  kSecLevels = 2,
  kSecEdges = 3,
  kSecProbUnder = 4,
  kSecBlockDir = 5,
  kSecKeyBlob = 6,
  kNumIndexSections = 7,
};

/// Header flag bits (IndexFileHeader::flags). Unknown bits are rejected.
enum IndexFileFlags : uint64_t {
  /// Set (and fsync'd) before an in-place patch rewrites payload sections,
  /// cleared (and fsync'd) only after the new payloads and section table are
  /// durable. A loader seeing this bit knows the payloads may be torn and
  /// rejects the file with a typed Status instead of serving garbage; the
  /// recovery path is a full MvIndex::Save.
  kIndexFlagDirty = 1ull << 0,
};

/// Fixed-size file header. All counts are u64 so the format never inherits
/// in-memory size_t width; root is the FlatId widened to i64 (sinks are the
/// negative sentinels).
struct IndexFileHeader {
  uint64_t magic;
  uint32_t format_version;
  uint32_t endian_tag;
  uint64_t num_nodes;
  uint64_t num_levels;
  uint64_t num_blocks;
  int64_t root;
  uint64_t var_order_digest;  ///< Hash64 over the raw VarOrder payload
  uint64_t file_bytes;        ///< total file size; rejects truncation
  uint64_t flags;             ///< IndexFileFlags; in-place patch protocol
  uint32_t annotation_scheme; ///< kAnnotationScheme*; v3 writes BlockLocal
  uint32_t header_reserved;   ///< zero; rejected nonzero
  uint64_t section_table_checksum;
  uint64_t header_checksum;   ///< Hash64 of this struct with field zeroed
};
static_assert(sizeof(IndexFileHeader) == 96);

/// One section-table row: where a payload lives and its Hash64.
struct SectionEntry {
  uint64_t offset;
  uint64_t length;  ///< bytes; exact (no padding counted)
  uint64_t checksum;
};
static_assert(sizeof(SectionEntry) == 24);

/// One MvBlock row of the kSecBlockDir section. The probability is the raw
/// ScaledDouble words; the key string lives in kSecKeyBlob at
/// [key_offset, key_offset + key_len).
struct IndexBlockRecord {
  int32_t chain_root;   ///< FlatId (sink sentinels allowed)
  int32_t first_level;
  int32_t last_level;
  int32_t reserved;     ///< zero; keeps the record 8-byte aligned at 48 B
  uint64_t prob_mantissa_bits;
  int64_t prob_exponent;
  uint64_t key_offset;
  uint64_t key_len;
};
static_assert(sizeof(IndexBlockRecord) == 48);

/// Validated, read-only view of an index file. Owns its bytes either as a
/// private copy (OpenOwned) or as a shared read-only mapping (OpenMapped).
/// Open* performs full structural validation — magic/version/endianness,
/// header and section-table checksums, and bounds/size-consistency of every
/// section against the real file size — before any payload is dereferenced.
/// Section *content* checksums are a separate, optional pass
/// (VerifyChecksums), because verifying them faults in the whole file.
class IndexFileReader {
 public:
  static StatusOr<IndexFileReader> OpenOwned(const std::string& path);
  static StatusOr<IndexFileReader> OpenMapped(const std::string& path);

  const IndexFileHeader& header() const {
    return *reinterpret_cast<const IndexFileHeader*>(data_);
  }
  const SectionEntry& section(IndexSection s) const {
    return reinterpret_cast<const SectionEntry*>(data_ +
                                                 sizeof(IndexFileHeader))[s];
  }

  /// Typed payload bases (validated element counts; see header() for them).
  const VarId* var_order() const { return Base<VarId>(kSecVarOrder); }
  const double* level_probs() const { return Base<double>(kSecLevelProbs); }
  const int32_t* levels() const { return Base<int32_t>(kSecLevels); }
  const void* edges_raw() const { return RawBase(kSecEdges); }
  const void* prob_under_raw() const { return RawBase(kSecProbUnder); }
  const IndexBlockRecord* block_dir() const {
    return Base<IndexBlockRecord>(kSecBlockDir);
  }
  const char* key_blob() const { return Base<char>(kSecKeyBlob); }

  /// Recomputes and compares every section checksum (touches every byte).
  Status VerifyChecksums() const;

  /// Non-null only for OpenMapped readers; keeps the mapping alive for
  /// FlatObdd's span-backed storage.
  const std::shared_ptr<const MmapFile>& mapping() const { return mapping_; }

 private:
  IndexFileReader() = default;
  static StatusOr<IndexFileReader> Validate(IndexFileReader reader);

  template <typename T>
  const T* Base(IndexSection s) const {
    return reinterpret_cast<const T*>(data_ + section(s).offset);
  }
  const void* RawBase(IndexSection s) const { return data_ + section(s).offset; }

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::vector<uint8_t> owned_;                ///< OpenOwned storage
  std::shared_ptr<const MmapFile> mapping_;   ///< OpenMapped storage
};

/// Reads just the header + VarOrder section of an index file and returns
/// the order (level -> VarId). The engine uses this to construct the
/// BddManager *before* loading the index against it (MvIndex::Load*
/// requires a manager whose order digest matches the file).
StatusOr<std::vector<VarId>> ReadIndexVarOrder(const std::string& path);

/// Rewrites the index file at `in_path` as format v3 at `out_path` (the two
/// may be the same path). A v2 input is fully validated under the v2
/// layout, its global-suffix probUnder bytes are discarded, and the
/// block-local annotations are recomputed from the file's topology and
/// per-level probabilities — lossless, because v2's annotation section is
/// derived data over the same topology. A v3 input is validated and copied
/// through byte-identically. Atomic: writes a sibling temp file and renames
/// it over `out_path`.
Status MigrateIndexFile(const std::string& in_path,
                        const std::string& out_path);

}  // namespace mvdb

#endif  // MVDB_MVINDEX_INDEX_IO_H_
