// Copyright 2026 The MarkoView Authors.
//
// Stage 1 of the MV-index build (Section 4): decompose the constraint query
// W into variable-disjoint *block tasks* — one per independent view group
// (rule R1) and, when the group has a separator, one per separator value
// (Proposition 1: the per-value subqueries are tuple-disjoint, hence
// variable-disjoint). The task list fixes the block identity and the order
// every later stage sees, so it must be deterministic.
//
// Decomposed groups are emitted as one *shape* (the group's abstract
// sub-query plus the per-disjunct separator variable) and one lightweight
// (shape id, separator value) task per domain value — the grounded per-task
// AST is never materialized on the build path. All ~200K tasks of a
// DBLP-scale group share the shape, which is what lets the compile stage
// plan each block-query shape once and execute it per task
// (obdd/conobdd.h, ConObddTemplate). MaterializeTaskQuery reconstructs the
// grounded query of any task (tests, template exemplars, the template-off
// escape hatch); the reconstruction is exactly the substitution the old
// per-task rewrite performed, so task identity is unchanged.

#ifndef MVDB_MVINDEX_PARTITION_H_
#define MVDB_MVINDEX_PARTITION_H_

#include <string>
#include <vector>

#include "query/analysis.h"
#include "query/ast.h"
#include "relational/database.h"

namespace mvdb {

/// One decomposed group: the abstract sub-constraint all of the group's
/// tasks share, with the separator variable left unsubstituted.
struct BlockShape {
  Ucq query;
  /// FindSeparator's per-disjunct separator variable (-1 = the disjunct is
  /// not substituted, e.g. it has no probabilistic atoms).
  std::vector<int> sep_var_of_disjunct;
};

/// One unit of offline work: either one separator value of a decomposed
/// group (shape >= 0; the grounded query is shape.query with the separator
/// variable bound to `binding`), or a whole undecomposable group
/// (shape < 0; `query` holds the materialized sub-constraint).
struct BlockTask {
  std::string key;  ///< "g<group>" or "g<group>/<separatorValue>"
  int shape = -1;   ///< index into PartitionResult::shapes, or -1
  Value binding = 0;
  Ucq query;        ///< only populated when shape < 0
};

/// The deterministic partition output: shapes plus the ordered task list —
/// groups ascending, separator values in domain order within a group, the
/// same order the serial build has always used.
struct PartitionResult {
  std::vector<BlockShape> shapes;
  std::vector<BlockTask> tasks;
};

/// Decomposes W into independently compilable block tasks. `num_threads`
/// shards the separator-domain scans (<= 1 runs serially); the output is
/// bit-identical for any thread count.
PartitionResult PartitionBlocks(const Database& db, const Ucq& w,
                                const IsProbFn& is_prob, int num_threads = 1);

/// The grounded query of a task: shape.query with the separator variable
/// substituted by the task's binding (shape >= 0), or the task's own query.
Ucq MaterializeTaskQuery(const PartitionResult& partition,
                         const BlockTask& task);

/// Maps touched probabilistic tuples to the partition task keys whose
/// grounded block queries can read them — the dirty set an incremental
/// index maintenance must recompile. Replays PartitionBlocks' group
/// numbering and key format: a tuple of relation R in a decomposed group g
/// dirties exactly "g<g>/<v>" where v is the tuple's value at R's separator
/// position (Proposition 1: per-value subqueries are tuple-disjoint), and
/// any touched tuple of an undecomposed group dirties the whole group's
/// "g<g>" task. Keys are returned sorted and deduplicated; tuples of
/// relations W never reads produce no keys.
std::vector<std::string> DirtyBlockKeys(const Database& db, const Ucq& w,
                                        const IsProbFn& is_prob,
                                        const std::vector<TupleRef>& touched);

}  // namespace mvdb

#endif  // MVDB_MVINDEX_PARTITION_H_
