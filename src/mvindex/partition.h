// Copyright 2026 The MarkoView Authors.
//
// Stage 1 of the MV-index build (Section 4): decompose the constraint query
// W into variable-disjoint *block tasks* — one per independent view group
// (rule R1) and, when the group has a separator, one per separator value
// (Proposition 1: the per-value subqueries are tuple-disjoint, hence
// variable-disjoint). The task list fixes the block identity and the order
// every later stage sees, so it must be deterministic; the per-value
// substitution work is sharded over threads with indexed result slots, which
// makes the output identical for every thread count.

#ifndef MVDB_MVINDEX_PARTITION_H_
#define MVDB_MVINDEX_PARTITION_H_

#include <string>
#include <vector>

#include "query/analysis.h"
#include "query/ast.h"
#include "relational/database.h"

namespace mvdb {

/// One unit of offline work: a variable-disjoint sub-constraint of W (an
/// independent view group, or one separator value of such a group).
struct BlockTask {
  std::string key;  ///< "g<group>" or "g<group>/<separatorValue>"
  Ucq query;
};

/// Decomposes W into independently compilable block tasks, in the
/// deterministic order the serial build has always used — groups ascending,
/// separator values in domain order within a group. `num_threads` shards the
/// separator-domain substitution (the dominant cost at DBLP scale: one UCQ
/// copy per separator value); <= 1 runs serially. The output is bit-identical
/// for any thread count.
std::vector<BlockTask> PartitionBlocks(const Database& db, const Ucq& w,
                                       const IsProbFn& is_prob,
                                       int num_threads = 1);

}  // namespace mvdb

#endif  // MVDB_MVINDEX_PARTITION_H_
