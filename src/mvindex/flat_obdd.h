// Copyright 2026 The MarkoView Authors.
//
// FlatObdd: the cache-conscious OBDD layout of Section 4.3. Nodes are
// stored in one contiguous vector sorted by variable level (edges only point
// forward), so traversals are sequential array walks instead of pointer
// chases — the CC-MVIntersect optimization. Each node is augmented with the
// two quantities of Section 4.1:
//
//   probUnder(u)    — probability of the sub-OBDD rooted at u;
//   reachability(u) — total probability of all root-to-u paths.
//
// Both are computed once at build time in two linear passes and remain valid
// for probabilities outside [0,1].

#ifndef MVDB_MVINDEX_FLAT_OBDD_H_
#define MVDB_MVINDEX_FLAT_OBDD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obdd/manager.h"
#include "util/scaled_double.h"

namespace mvdb {

/// Index of a node inside the flat vector, or a sink sentinel.
using FlatId = int32_t;
inline constexpr FlatId kFlatFalse = -1;
inline constexpr FlatId kFlatTrue = -2;

struct FlatNode {
  int32_t level;
  FlatId lo;
  FlatId hi;
};

class FlatObdd {
 public:
  /// Flattens the sub-DAG of `mgr` rooted at `root`. `var_probs` is indexed
  /// by VarId and is snapshotted per level for the annotation passes.
  FlatObdd(const BddManager& mgr, NodeId root, const std::vector<double>& var_probs);

  /// Root as a flat id (may be a sink sentinel for constant functions).
  FlatId root() const { return root_; }
  size_t size() const { return nodes_.size(); }
  bool IsSinkId(FlatId id) const { return id < 0; }

  int32_t level(FlatId id) const { return nodes_[static_cast<size_t>(id)].level; }
  FlatId lo(FlatId id) const { return nodes_[static_cast<size_t>(id)].lo; }
  FlatId hi(FlatId id) const { return nodes_[static_cast<size_t>(id)].hi; }

  /// Marginal probability of the variable branched on at `level`.
  double prob_at_level(int32_t level) const {
    return level_probs_[static_cast<size_t>(level)];
  }

  /// probUnder annotation (extended range); sinks return their constant.
  ScaledDouble prob_under_scaled(FlatId id) const {
    if (id == kFlatFalse) return ScaledDouble::Zero();
    if (id == kFlatTrue) return ScaledDouble::One();
    return prob_under_[static_cast<size_t>(id)];
  }

  /// probUnder converted to double (diagnostics/tests; may under/overflow).
  double prob_under(FlatId id) const { return prob_under_scaled(id).ToDouble(); }

  /// reachability annotation (root = 1), extended range.
  ScaledDouble reachability_scaled(FlatId id) const {
    return reach_[static_cast<size_t>(id)];
  }
  double reachability(FlatId id) const {
    return reach_[static_cast<size_t>(id)].ToDouble();
  }

  /// P(function): probUnder of the root.
  ScaledDouble prob_root_scaled() const { return prob_under_scaled(root_); }
  double prob_root() const { return prob_root_scaled().ToDouble(); }

  /// Flat index of a manager node; kFlatFalse/kFlatTrue for sinks,
  /// CHECK-fails for nodes outside the flattened sub-DAG.
  FlatId IndexOf(NodeId manager_node) const;

  /// Maximum number of nodes on one level (the OBDD width of Section 4.1).
  size_t Width() const;

  /// IntraBddIndex: all flat node positions labeled with this level
  /// (contiguous because the vector is level-sorted). Returns [begin, end).
  std::pair<FlatId, FlatId> NodesAtLevel(int32_t level) const;

 private:
  std::vector<FlatNode> nodes_;
  std::vector<ScaledDouble> prob_under_;
  std::vector<ScaledDouble> reach_;
  std::vector<double> level_probs_;
  std::unordered_map<NodeId, FlatId> index_of_;
  FlatId root_ = kFlatFalse;
};

}  // namespace mvdb

#endif  // MVDB_MVINDEX_FLAT_OBDD_H_
