// Copyright 2026 The MarkoView Authors.
//
// FlatObdd: the cache-conscious OBDD layout of Section 4.3. Nodes are
// stored in contiguous arrays sorted by variable level (edges only point
// forward), so traversals are sequential array walks instead of pointer
// chases — the CC-MVIntersect optimization. The layout is
// structure-of-arrays: an 8-byte {lo, hi} topology record per node, a
// separate level array, and a separate annotation array, so the forward
// sweep streams only the bytes it touches. Each node is augmented with the
// quantity every probability computation consumes (Section 4.1):
//
//   probUnder(u) — probability of the sub-OBDD rooted at u, *block-local*:
//   evaluated with every edge leaving u's block (the AND-concatenation
//   redirect to the next block's root) read as the true sink. For the
//   chain entry of block i this is exactly the standalone P(NOT W_i) the
//   block directory stores; the downstream chain's contribution is NOT
//   folded in — consumers multiply the per-block suffix product
//   (MvIndex::block_suffix_) back in at credit time.
//
// Block locality is what bounds a weight-delta repair: a changed level
// dirties exactly one block, so only that block's annotations replay
// (plus an O(blocks) product rebuild) instead of every node before the
// change — the globally-composed annotation forced an O(changed-prefix)
// replay because every upstream probUnder folded the changed block's
// factor in. (The paper's companion annotation, reachability(u) — total
// probability of all root-to-u paths — used to be stored too, but no
// serving path reads it; dropping it halved the annotation bytes for the
// same reason: its repair cost was a full forward pass per delta.)
//
// Construction comes in two flavours: flattening one manager sub-DAG (the
// classic path, used by tests and ablations), and stitching per-block
// flattened pieces emitted by the sharded MV-index build — each
// variable-disjoint block is flattened standalone (possibly on a different
// thread, in a different manager) and appended with its true sink redirected
// to the next block's root. Because blocks occupy disjoint, ascending level
// ranges, the stitched array is level-sorted and bit-identical to flattening
// the concatenated chain in one piece.
//
// Storage comes in two modes. The build paths own their arrays as vectors;
// the persistent-index loader (mvindex/index_io.*) can instead bind the SoA
// bases to spans inside a read-only mmap'd index file, so a serve process
// starts without copying (or even faulting) the node arrays and N processes
// share one physical copy through the page cache. Every accessor reads
// through the same base pointers in both modes.

#ifndef MVDB_MVINDEX_FLAT_OBDD_H_
#define MVDB_MVINDEX_FLAT_OBDD_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obdd/manager.h"
#include "util/mmap_file.h"
#include "util/scaled_double.h"

namespace mvdb {

/// Index of a node inside the flat vector, or a sink sentinel.
using FlatId = int32_t;
inline constexpr FlatId kFlatFalse = -1;
inline constexpr FlatId kFlatTrue = -2;

/// 8-byte topology record: the 0/1 successors of one flat node.
struct FlatEdges {
  FlatId lo;
  FlatId hi;
};

class FlatObdd {
 public:
  /// One variable-disjoint block flattened over local flat ids (level-sorted,
  /// edges forward-only; sinks are the kFlatFalse/kFlatTrue sentinels).
  /// Produced per block by the sharded build, consumed by StitchChain.
  struct Block {
    std::vector<int32_t> levels;
    std::vector<FlatEdges> edges;
    FlatId root = kFlatFalse;
    size_t size() const { return levels.size(); }
  };

  /// Flattens the sub-DAG of `mgr` rooted at `root`. `var_probs` is indexed
  /// by VarId and is snapshotted per level for the annotation passes.
  FlatObdd(const BddManager& mgr, NodeId root, const std::vector<double>& var_probs);

  /// Flattens the sub-DAG rooted at `root` as a standalone block: nodes
  /// sorted by (level, DFS discovery order) — the same order the classic
  /// constructor produces — with local ids and sink sentinels.
  static Block FlattenBlock(const BddManager& mgr, NodeId root);

  /// Reusable traversal state for FlattenBlockInto: the per-block hash maps
  /// and stacks are cleared, not reallocated, between blocks, so the sharded
  /// compile loop flattens ~200K small blocks without per-block allocations
  /// beyond the output arrays themselves.
  struct FlattenScratch {
    std::unordered_map<NodeId, size_t> position;
    std::vector<NodeId> stack;
    std::vector<NodeId> reachable;
  };

  /// FlattenBlock with caller-owned scratch; `out` is overwritten. Produces
  /// exactly FlattenBlock(mgr, root).
  static void FlattenBlockInto(const BddManager& mgr, NodeId root,
                               FlattenScratch* scratch, Block* out);

  /// Standalone probUnder of a flattened block's root — the same Shannon
  /// expansion BddManager::ProbScaled performs, evaluated bottom-up over the
  /// level-sorted arrays (children always sit at larger indexes), with
  /// caller-owned scratch. `level_probs` is indexed by level. Bit-identical
  /// to ProbScaled on the manager sub-DAG the block was flattened from.
  static ScaledDouble BlockProbScaled(const Block& block,
                                      const std::vector<double>& level_probs,
                                      std::vector<ScaledDouble>* scratch);

  /// Rebuilds a flattened block inside `mgr` bottom-up, returning its root.
  /// The inverse of FlattenBlock up to hash-consing: importing into a fresh
  /// manager reproduces the identical reduced OBDD.
  static NodeId ImportBlock(BddManager* mgr, const Block& block);

  /// Builds the stitched NOT W chain by direct per-block emission: block i's
  /// nodes are appended with local ids offset, its false sink kept, and its
  /// true sink redirected to block i+1's root (the last block keeps
  /// kFlatTrue) — the flat image of AND-concatenation. Blocks must arrive in
  /// ascending, non-overlapping level order. `level_probs` is indexed by
  /// level. If `chain_roots` is non-null it receives each block's entry
  /// point in the chain. The annotation pass runs once per emitted block
  /// over its own slice (block-local probUnder), so stitching never
  /// rewrites another block's annotations — each block's values are a
  /// function of that block alone.
  static std::unique_ptr<FlatObdd> StitchChain(const std::vector<Block>& blocks,
                                               std::vector<double> level_probs,
                                               std::vector<FlatId>* chain_roots);

  /// Assembles a FlatObdd from deserialized owned arrays (MvIndex::Load).
  /// The annotations are part of the persisted image and are NOT recomputed
  /// — the round-trip is bit-exact by construction.
  static std::unique_ptr<FlatObdd> FromOwnedStorage(
      std::vector<int32_t> levels, std::vector<FlatEdges> edges,
      std::vector<ScaledDouble> prob_under, std::vector<double> level_probs,
      FlatId root);

  /// Assembles a FlatObdd from raw topology + level probabilities and
  /// recomputes the block-local annotations from scratch over the given
  /// block slices (ascending start offsets; the slices tile [0, N)). Used
  /// by the v2->v3 file migration, which deliberately discards the file's
  /// global-suffix annotation bytes.
  static std::unique_ptr<FlatObdd> FromTopologyRecompute(
      std::vector<int32_t> levels, std::vector<FlatEdges> edges,
      std::vector<double> level_probs, FlatId root,
      const std::vector<size_t>& block_starts);

  /// Non-owning span-backed storage mode (MvIndex::LoadMapped): the SoA
  /// bases point into `mapping` — read-only PROT_READ pages of the index
  /// file — which is kept alive for the lifetime of this FlatObdd. The
  /// caller (index_io) has already bounds-checked every span against the
  /// file size.
  static std::unique_ptr<FlatObdd> FromMappedStorage(
      const int32_t* levels, const FlatEdges* edges,
      const ScaledDouble* prob_under, const double* level_probs,
      size_t num_nodes, size_t num_levels, FlatId root,
      std::shared_ptr<const MmapFile> mapping);

  /// Rebuilds the whole flat chain inside `mgr` bottom-up and returns its
  /// root (kTrue/kFalse for sink roots). Lets the online manager hold the
  /// compiled NOT W without retaining any offline build state.
  NodeId ImportInto(BddManager* mgr) const;

  /// Copies mapped (mmap-backed) storage into owned arrays; no-op when the
  /// arrays are already owned. Delta application mutates level probs and
  /// annotations in place, which a PROT_READ mapping cannot back — the
  /// source file stays untouched until PatchFile/Save.
  void EnsureOwned();

  /// Overwrites one entry of the per-level probability table (owned storage
  /// only; see EnsureOwned). The weight-only delta repair's first step.
  void SetLevelProb(int32_t level, double p);

  /// Replays the block-local probUnder recurrence over one block's slice
  /// [block_begin, block_end): annotations are a function of the block
  /// alone (edges leaving the slice read as the true sink), so a changed
  /// level dirties exactly the block that owns it and nothing else
  /// replays. Every repaired entry is produced by the identical expression
  /// in the identical order as ComputeAnnotations' build pass over the
  /// same slice, so the repaired array is bit-identical to a from-scratch
  /// computation over the updated probs.
  void RepairAnnotations(FlatId block_begin, FlatId block_end);

  /// Standalone probUnder of the stitched chain slice [begin, end) rooted
  /// at `chain_root`: the BlockProbScaled recurrence evaluated in place
  /// over the chain arrays, with edges leaving the slice read as the true
  /// sink (what they were before stitching redirected them). Bit-identical
  /// to BlockProbScaled on the slice's standalone flattened piece — and,
  /// because the stored annotations are block-local, to
  /// prob_under_scaled(chain_root) itself when [begin, end) is a whole
  /// block (kept for scratch-side recomputes that must not read the
  /// possibly-stale annotation array).
  ScaledDouble SliceProbScaled(FlatId begin, FlatId end, FlatId chain_root,
                               std::vector<ScaledDouble>* scratch) const;

  /// Re-extracts the chain slice [begin, end) rooted at `chain_root` as a
  /// standalone Block: local ids, sink sentinels restored (edges leaving
  /// the slice become the true sink), levels rewritten through `level_map`
  /// (old level -> new level; must be monotone). The exact inverse of what
  /// StitchChain did to the piece, so restitching extracted slices — with
  /// dirty ones replaced by recompiled pieces — reproduces a from-scratch
  /// chain bit for bit.
  Block ExtractBlock(FlatId begin, FlatId end, FlatId chain_root,
                     const std::vector<int32_t>& level_map) const;

  /// Root as a flat id (may be a sink sentinel for constant functions).
  FlatId root() const { return root_; }
  size_t size() const { return num_nodes_; }
  bool IsSinkId(FlatId id) const { return id < 0; }
  /// True when the SoA bases live in a read-only file mapping.
  bool mapped() const { return mapping_ != nullptr; }

  int32_t level(FlatId id) const { return levels_[static_cast<size_t>(id)]; }
  FlatId lo(FlatId id) const { return edges_[static_cast<size_t>(id)].lo; }
  FlatId hi(FlatId id) const { return edges_[static_cast<size_t>(id)].hi; }

  /// Raw SoA array bases, for software prefetch in the online sweep and for
  /// the persistent-index writer (read-only; indexed by non-sink FlatId).
  const int32_t* levels_data() const { return levels_; }
  const FlatEdges* edges_data() const { return edges_; }
  const ScaledDouble* prob_under_data() const { return prob_under_; }
  /// Per-level marginal probability table base; indexed by level.
  const double* level_probs_data() const { return level_probs_; }
  size_t num_levels() const { return num_levels_; }

  /// Marginal probability of the variable branched on at `level`.
  double prob_at_level(int32_t level) const {
    return level_probs_[static_cast<size_t>(level)];
  }

  /// Block-local probUnder annotation (extended range); sinks return their
  /// constant. For a chain entry this is the block's standalone P(NOT W_b);
  /// chain consumers multiply the per-block suffix product back in.
  ScaledDouble prob_under_scaled(FlatId id) const {
    if (id == kFlatFalse) return ScaledDouble::Zero();
    if (id == kFlatTrue) return ScaledDouble::One();
    return prob_under_[static_cast<size_t>(id)];
  }

  /// probUnder converted to double (diagnostics/tests; may under/overflow).
  double prob_under(FlatId id) const { return prob_under_scaled(id).ToDouble(); }

  /// probUnder of the root. For a single-block FlatObdd (the classic
  /// constructor) this is P(function); for a stitched chain it is only the
  /// FIRST block's standalone factor — P0(NOT W) lives in the block-product
  /// arrays (MvIndex::ProbNotWScaled).
  ScaledDouble prob_root_scaled() const { return prob_under_scaled(root_); }
  double prob_root() const { return prob_root_scaled().ToDouble(); }

  /// Bytes of the per-node flat arrays (topology + levels + annotations; the
  /// per-level probability table is excluded since it scales with the
  /// variable count, not the node count). In mapped mode this counts the
  /// file spans the bases point into — shared, demand-paged bytes rather
  /// than private resident ones. The bytes/node figure bench_build_scale
  /// reports is MemoryBytes()/size().
  size_t MemoryBytes() const;

  /// Maximum number of nodes on one level (the OBDD width of Section 4.1).
  size_t Width() const;

  /// IntraBddIndex: all flat node positions labeled with this level
  /// (contiguous because the vector is level-sorted). Returns [begin, end).
  std::pair<FlatId, FlatId> NodesAtLevel(int32_t level) const;

 private:
  FlatObdd() = default;

  /// The block-local probUnder passes over the already-populated topology
  /// stores: one reverse replay per block slice (`block_starts` are the
  /// ascending start offsets of the emitted blocks; each slice ends where
  /// the next begins). The classic single-piece constructor passes {0} —
  /// one block covering the whole array, where no edge leaves the slice,
  /// so its semantics are unchanged. Ends by binding the read-side bases
  /// to the owned vectors.
  void ComputeAnnotations(const std::vector<size_t>& block_starts);

  /// The shared reverse recurrence over one block slice [begin, end):
  /// edge targets at or past `end` (the chain redirect into the next
  /// block) read as the true sink. ComputeAnnotations runs it per block at
  /// build time, RepairAnnotations over the one dirty block. One body
  /// guarantees the two are bit-identical — and, because the recurrence is
  /// exactly BlockProbScaled's over the same slice, the value at the block
  /// root is bit-identical to the standalone block probability.
  void ReplayProbUnder(size_t begin, size_t end);

  /// Points the read-side bases at the owned vectors (build/Load paths).
  void BindOwned();

  // Owned backing arrays (build and Load paths). In the span-backed mmap
  // mode these stay empty and the bases below point into `mapping_`.
  std::vector<int32_t> levels_store_;
  std::vector<FlatEdges> edges_store_;
  std::vector<ScaledDouble> prob_under_store_;
  std::vector<double> level_probs_store_;

  // Read-side SoA bases: every accessor reads through these, whichever
  // storage mode backs them.
  const int32_t* levels_ = nullptr;
  const FlatEdges* edges_ = nullptr;
  const ScaledDouble* prob_under_ = nullptr;
  const double* level_probs_ = nullptr;
  size_t num_nodes_ = 0;
  size_t num_levels_ = 0;
  FlatId root_ = kFlatFalse;

  /// Keeps the mapped index file alive while any base points into it.
  std::shared_ptr<const MmapFile> mapping_;
};

}  // namespace mvdb

#endif  // MVDB_MVINDEX_FLAT_OBDD_H_
