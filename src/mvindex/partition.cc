#include "mvindex/partition.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/parallel.h"

namespace mvdb {
namespace {

Ucq SubUcq(const Ucq& q, const std::vector<size_t>& disjuncts) {
  Ucq out = q;
  out.disjuncts.clear();
  for (size_t d : disjuncts) out.disjuncts.push_back(q.disjuncts[d]);
  return out;
}

/// Sorted distinct union of the separator attribute's active domain across
/// every probabilistic atom of the group. Equivalent to inserting each
/// atom's DistinctValues into one ordered set, but the per-table scans are
/// deduplicated by (relation, position) and sharded over threads.
std::vector<Value> SeparatorDomain(const Database& db, const Ucq& sub,
                                   const Separator& sep, const IsProbFn& is_prob,
                                   int num_threads) {
  std::vector<std::pair<std::string, size_t>> columns;
  for (size_t d = 0; d < sub.disjuncts.size(); ++d) {
    if (sep.var_of_disjunct[d] < 0) continue;
    for (const Atom& a : sub.disjuncts[d].atoms) {
      if (!is_prob(a.relation)) continue;
      columns.emplace_back(a.relation, sep.position.at(a.relation));
    }
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());

  std::vector<std::vector<Value>> per_column(columns.size());
  ParallelFor(EffectiveThreads(num_threads, columns.size()), columns.size(),
              [&](int, size_t i) {
                const Table* t = db.Find(columns[i].first);
                per_column[i] = t->DistinctValues(columns[i].second);
              });

  std::vector<Value> domain;
  for (const auto& values : per_column) {
    const size_t mid = domain.size();
    domain.insert(domain.end(), values.begin(), values.end());
    std::inplace_merge(domain.begin(),
                       domain.begin() + static_cast<ptrdiff_t>(mid),
                       domain.end());
  }
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

}  // namespace

PartitionResult PartitionBlocks(const Database& db, const Ucq& w,
                                const IsProbFn& is_prob, int num_threads) {
  PartitionResult out;
  if (w.disjuncts.empty()) return out;
  const auto groups = IndependentUnionComponents(w, is_prob);
  for (size_t g = 0; g < groups.size(); ++g) {
    Ucq sub = SubUcq(w, groups[g]);
    const auto sep = FindSeparator(sub, is_prob);
    bool decomposed = false;
    if (sep.has_value()) {
      bool any_var = false;
      for (int v : sep->var_of_disjunct) any_var |= (v >= 0);
      if (any_var) {
        // One task per separator value: the per-value subqueries are
        // tuple-disjoint (Proposition 1), hence variable-disjoint blocks —
        // the property that makes shard compilation sound. The tasks carry
        // only (shape id, value); the grounded AST is materialized on
        // demand, never per task on the build path.
        const std::vector<Value> domain =
            SeparatorDomain(db, sub, *sep, is_prob, num_threads);
        const int shape_id = static_cast<int>(out.shapes.size());
        const std::string prefix = "g" + std::to_string(g) + "/";
        out.tasks.reserve(out.tasks.size() + domain.size());
        for (const Value a : domain) {
          BlockTask task;
          task.key = prefix + std::to_string(a);
          task.shape = shape_id;
          task.binding = a;
          out.tasks.push_back(std::move(task));
        }
        out.shapes.push_back(BlockShape{std::move(sub), sep->var_of_disjunct});
        decomposed = true;
      }
    }
    if (!decomposed) {
      BlockTask task;
      task.key = "g" + std::to_string(g);
      task.query = std::move(sub);
      out.tasks.push_back(std::move(task));
    }
  }
  return out;
}

Ucq MaterializeTaskQuery(const PartitionResult& partition,
                         const BlockTask& task) {
  if (task.shape < 0) return task.query;
  const BlockShape& shape = partition.shapes[static_cast<size_t>(task.shape)];
  Ucq out = shape.query;
  for (size_t d = 0; d < out.disjuncts.size(); ++d) {
    const int z = shape.sep_var_of_disjunct[d];
    if (z >= 0) SubstituteInDisjunct(&out, d, z, task.binding);
  }
  return out;
}

std::vector<std::string> DirtyBlockKeys(const Database& db, const Ucq& w,
                                        const IsProbFn& is_prob,
                                        const std::vector<TupleRef>& touched) {
  (void)db;  // signature kept parallel to PartitionBlocks
  std::vector<std::string> keys;
  if (w.disjuncts.empty() || touched.empty()) return keys;
  // Mirror PartitionBlocks exactly: same group enumeration, same
  // decomposition test, same key spelling — the keys must match the task
  // list character for character.
  const auto groups = IndependentUnionComponents(w, is_prob);
  for (size_t g = 0; g < groups.size(); ++g) {
    const Ucq sub = SubUcq(w, groups[g]);
    std::vector<const TupleRef*> in_group;
    for (const TupleRef& ref : touched) {
      bool found = false;
      for (const ConjunctiveQuery& cq : sub.disjuncts) {
        for (const Atom& a : cq.atoms) {
          if (a.relation == ref.table->name()) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (found) in_group.push_back(&ref);
    }
    if (in_group.empty()) continue;
    const auto sep = FindSeparator(sub, is_prob);
    bool decomposed = false;
    if (sep.has_value()) {
      bool any_var = false;
      for (int v : sep->var_of_disjunct) any_var |= (v >= 0);
      decomposed = any_var;
    }
    const std::string prefix = "g" + std::to_string(g);
    for (const TupleRef* ref : in_group) {
      if (decomposed) {
        const auto pos = sep->position.find(ref->table->name());
        // Every probabilistic relation of a decomposed group carries the
        // separator (that is what makes it a separator); a miss would mean
        // the touched relation is deterministic inside this group, which
        // the delta layer already rejects upstream.
        MVDB_CHECK(pos != sep->position.end())
            << "no separator position for " << ref->table->name();
        keys.push_back(prefix + "/" +
                       std::to_string(ref->table->At(ref->row, pos->second)));
      } else {
        keys.push_back(prefix);
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace mvdb
