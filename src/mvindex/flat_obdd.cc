#include "mvindex/flat_obdd.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/logging.h"

namespace mvdb {

FlatObdd::Block FlatObdd::FlattenBlock(const BddManager& mgr, NodeId root) {
  Block out;
  FlattenScratch scratch;
  FlattenBlockInto(mgr, root, &scratch, &out);
  return out;
}

void FlatObdd::FlattenBlockInto(const BddManager& mgr, NodeId root,
                                FlattenScratch* scratch, Block* out) {
  out->levels.clear();
  out->edges.clear();
  if (mgr.IsSink(root)) {
    out->root = (root == BddManager::kTrue) ? kFlatTrue : kFlatFalse;
    return;
  }

  // Collect reachable internal nodes, then sort by (level, discovery
  // order). `position` doubles as the seen-set: it records each node's
  // discovery index during the walk and is rewritten to flat positions
  // after the sort.
  auto& position = scratch->position;
  auto& stack = scratch->stack;
  auto& reachable = scratch->reachable;
  position.clear();
  stack.clear();
  reachable.clear();
  stack.push_back(root);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (mgr.IsSink(id) || !position.emplace(id, reachable.size()).second) {
      continue;
    }
    reachable.push_back(id);
    stack.push_back(mgr.node(id).lo);
    stack.push_back(mgr.node(id).hi);
  }
  std::stable_sort(reachable.begin(), reachable.end(),
                   [&](NodeId a, NodeId b) {
                     const int32_t la = mgr.level(a), lb = mgr.level(b);
                     if (la != lb) return la < lb;
                     return position[a] < position[b];
                   });

  for (size_t i = 0; i < reachable.size(); ++i) {
    position[reachable[i]] = i;
  }
  auto flat_of = [&](NodeId id) -> FlatId {
    if (id == BddManager::kFalse) return kFlatFalse;
    if (id == BddManager::kTrue) return kFlatTrue;
    return static_cast<FlatId>(position.at(id));
  };
  out->levels.reserve(reachable.size());
  out->edges.reserve(reachable.size());
  for (NodeId id : reachable) {
    const BddNode& n = mgr.node(id);
    out->levels.push_back(n.level);
    out->edges.push_back(FlatEdges{flat_of(n.lo), flat_of(n.hi)});
  }
  out->root = flat_of(root);
}

ScaledDouble FlatObdd::BlockProbScaled(const Block& block,
                                       const std::vector<double>& level_probs,
                                       std::vector<ScaledDouble>* scratch) {
  if (block.root == kFlatFalse) return ScaledDouble::Zero();
  if (block.root == kFlatTrue) return ScaledDouble::One();
  auto& vals = *scratch;
  vals.resize(block.size());
  auto value_of = [&](FlatId u) {
    if (u == kFlatFalse) return ScaledDouble::Zero();
    if (u == kFlatTrue) return ScaledDouble::One();
    return vals[static_cast<size_t>(u)];
  };
  for (size_t i = block.size(); i-- > 0;) {
    const double p = level_probs[static_cast<size_t>(block.levels[i])];
    vals[i] = ScaledDouble(1.0 - p) * value_of(block.edges[i].lo) +
              ScaledDouble(p) * value_of(block.edges[i].hi);
  }
  return vals[static_cast<size_t>(block.root)];
}

namespace {

/// Bottom-up rebuild of a level-sorted flat array inside `mgr`: children sit
/// at larger indexes, so one reverse pass suffices. Shared by ImportBlock
/// (local block arrays) and ImportInto (the stitched chain, in either
/// storage mode — hence raw bases, not vectors).
NodeId ImportNodes(BddManager* mgr, const int32_t* levels,
                   const FlatEdges* edges, size_t num_nodes, FlatId root) {
  if (root == kFlatTrue) return BddManager::kTrue;
  if (root == kFlatFalse) return BddManager::kFalse;
  // Reserve ahead: the import appends at most num_nodes fresh nodes, so
  // sizing the node vector and unique table once up front turns the rebuild
  // into a bulk append with no mid-import growth or rehash.
  mgr->ReserveNodes(mgr->num_created() + num_nodes);
  std::vector<NodeId> ids(num_nodes);
  auto node_of = [&](FlatId u) -> NodeId {
    if (u == kFlatFalse) return BddManager::kFalse;
    if (u == kFlatTrue) return BddManager::kTrue;
    return ids[static_cast<size_t>(u)];
  };
  for (size_t i = num_nodes; i-- > 0;) {
    ids[i] = mgr->Mk(levels[i], node_of(edges[i].lo), node_of(edges[i].hi));
  }
  return ids[static_cast<size_t>(root)];
}

}  // namespace

NodeId FlatObdd::ImportBlock(BddManager* mgr, const Block& block) {
  return ImportNodes(mgr, block.levels.data(), block.edges.data(),
                     block.size(), block.root);
}

NodeId FlatObdd::ImportInto(BddManager* mgr) const {
  return ImportNodes(mgr, levels_, edges_, num_nodes_, root_);
}

FlatObdd::FlatObdd(const BddManager& mgr, NodeId root,
                   const std::vector<double>& var_probs) {
  level_probs_store_.resize(mgr.num_levels());
  for (size_t l = 0; l < mgr.num_levels(); ++l) {
    level_probs_store_[l] =
        var_probs[static_cast<size_t>(mgr.var_at_level(static_cast<int32_t>(l)))];
  }
  Block block = FlattenBlock(mgr, root);
  levels_store_ = std::move(block.levels);
  edges_store_ = std::move(block.edges);
  root_ = block.root;
  // One piece, one block: no edge leaves the slice, so the block-local
  // replay is the plain probUnder recurrence over the whole array.
  ComputeAnnotations(levels_store_.empty() ? std::vector<size_t>{}
                                           : std::vector<size_t>{0});
}

std::unique_ptr<FlatObdd> FlatObdd::StitchChain(
    const std::vector<Block>& blocks, std::vector<double> level_probs,
    std::vector<FlatId>* chain_roots) {
  std::unique_ptr<FlatObdd> flat(new FlatObdd());
  flat->level_probs_store_ = std::move(level_probs);

  size_t total = 0;
  bool chain_false = false;
  for (const Block& b : blocks) {
    total += b.size();
    chain_false |= (b.root == kFlatFalse);
  }
  if (chain_false) {
    // One block is constant false, so the AND chain is false and every
    // prefix collapses with it (sink redirection plus reduction) — exactly
    // what concatenating in a manager produces.
    flat->root_ = kFlatFalse;
    if (chain_roots != nullptr) chain_roots->assign(blocks.size(), kFlatFalse);
    flat->ComputeAnnotations({});
    return flat;
  }
  if (chain_roots != nullptr) {
    chain_roots->assign(blocks.size(), kFlatTrue);
  }

  // Emit back to front so each block knows its successor's stitched root.
  // Positions are final (offsets are fixed by the block sizes), so emission
  // order is an implementation detail; we fill the arrays directly.
  flat->levels_store_.resize(total);
  flat->edges_store_.resize(total);
  FlatId next_root = kFlatTrue;  // chain suffix after the last block
  size_t offset = total;
  std::vector<size_t> block_starts;  // bases of emitted blocks, collected
  block_starts.reserve(blocks.size());
  for (size_t i = blocks.size(); i-- > 0;) {
    const Block& b = blocks[i];
    if (b.root == kFlatTrue) {
      // Constant-true block: the AND-chain identity. Nothing to emit; its
      // chain entry is wherever the suffix already starts.
      if (chain_roots != nullptr) (*chain_roots)[i] = next_root;
      continue;
    }
    offset -= b.size();
    const FlatId base = static_cast<FlatId>(offset);
    for (size_t k = 0; k < b.size(); ++k) {
      auto remap = [&](FlatId u) -> FlatId {
        if (u == kFlatTrue) return next_root;  // AND-concatenation redirect
        if (u == kFlatFalse) return kFlatFalse;
        return base + u;
      };
      flat->levels_store_[offset + k] = b.levels[k];
      flat->edges_store_[offset + k] =
          FlatEdges{remap(b.edges[k].lo), remap(b.edges[k].hi)};
    }
    next_root = base + b.root;
    if (chain_roots != nullptr) (*chain_roots)[i] = next_root;
    block_starts.push_back(offset);
  }
  flat->root_ = blocks.empty() ? kFlatTrue : next_root;
  // Emission ran back to front; the annotation pass wants ascending starts.
  std::reverse(block_starts.begin(), block_starts.end());
  flat->ComputeAnnotations(block_starts);
  return flat;
}

std::unique_ptr<FlatObdd> FlatObdd::FromOwnedStorage(
    std::vector<int32_t> levels, std::vector<FlatEdges> edges,
    std::vector<ScaledDouble> prob_under, std::vector<double> level_probs,
    FlatId root) {
  MVDB_CHECK_EQ(levels.size(), edges.size());
  MVDB_CHECK_EQ(levels.size(), prob_under.size());
  std::unique_ptr<FlatObdd> flat(new FlatObdd());
  flat->levels_store_ = std::move(levels);
  flat->edges_store_ = std::move(edges);
  flat->prob_under_store_ = std::move(prob_under);
  flat->level_probs_store_ = std::move(level_probs);
  flat->root_ = root;
  flat->BindOwned();
  return flat;
}

std::unique_ptr<FlatObdd> FlatObdd::FromTopologyRecompute(
    std::vector<int32_t> levels, std::vector<FlatEdges> edges,
    std::vector<double> level_probs, FlatId root,
    const std::vector<size_t>& block_starts) {
  MVDB_CHECK_EQ(levels.size(), edges.size());
  std::unique_ptr<FlatObdd> flat(new FlatObdd());
  flat->levels_store_ = std::move(levels);
  flat->edges_store_ = std::move(edges);
  flat->level_probs_store_ = std::move(level_probs);
  flat->root_ = root;
  flat->ComputeAnnotations(block_starts);
  return flat;
}

std::unique_ptr<FlatObdd> FlatObdd::FromMappedStorage(
    const int32_t* levels, const FlatEdges* edges,
    const ScaledDouble* prob_under, const double* level_probs,
    size_t num_nodes, size_t num_levels, FlatId root,
    std::shared_ptr<const MmapFile> mapping) {
  MVDB_CHECK(mapping != nullptr);
  std::unique_ptr<FlatObdd> flat(new FlatObdd());
  flat->levels_ = levels;
  flat->edges_ = edges;
  flat->prob_under_ = prob_under;
  flat->level_probs_ = level_probs;
  flat->num_nodes_ = num_nodes;
  flat->num_levels_ = num_levels;
  flat->root_ = root;
  flat->mapping_ = std::move(mapping);
  return flat;
}

void FlatObdd::BindOwned() {
  levels_ = levels_store_.data();
  edges_ = edges_store_.data();
  prob_under_ = prob_under_store_.data();
  level_probs_ = level_probs_store_.data();
  num_nodes_ = levels_store_.size();
  num_levels_ = level_probs_store_.size();
}

void FlatObdd::ComputeAnnotations(const std::vector<size_t>& block_starts) {
  // Block-local probUnder: one reverse replay per block slice. The slices
  // are independent (a slice never reads another slice's annotations — the
  // only cross-slice edges are the chain redirects, which replay as the
  // true sink), so the per-block order is immaterial; descending mirrors
  // the old single reverse pass.
  prob_under_store_.resize(levels_store_.size());
  for (size_t b = block_starts.size(); b-- > 0;) {
    const size_t begin = block_starts[b];
    const size_t end =
        b + 1 < block_starts.size() ? block_starts[b + 1] : levels_store_.size();
    ReplayProbUnder(begin, end);
  }
  BindOwned();
}

void FlatObdd::ReplayProbUnder(size_t begin, size_t end) {
  // The reverse block-local probUnder recurrence over one slice [begin,
  // end): the single expression both the from-scratch build and the
  // incremental repair run, so the two are bit-identical by construction.
  // Edge targets at or past `end` are the AND-concatenation redirect into
  // the next block and read as the true sink — the same rule
  // SliceProbScaled/BlockProbScaled apply, which is what makes the value
  // at the block root bit-identical to the standalone block probability.
  // The array is level-sorted, so the ScaledDouble forms of (1-p, p) are
  // hoisted per level run rather than renormalized per node — same values,
  // same downstream operations.
  const int32_t* const levels = levels_store_.data();
  const FlatEdges* const edges = edges_store_.data();
  ScaledDouble* const under = prob_under_store_.data();
  auto under_of = [&](FlatId u) {
    if (u == kFlatFalse) return ScaledDouble::Zero();
    if (u == kFlatTrue || static_cast<size_t>(u) >= end) {
      return ScaledDouble::One();
    }
    return under[static_cast<size_t>(u)];
  };
  int32_t run_level = -1;
  ScaledDouble p_lo, p_hi;
  for (size_t i = end; i-- > begin;) {
    if (levels[i] != run_level) {
      run_level = levels[i];
      const double p = level_probs_store_[static_cast<size_t>(run_level)];
      p_lo = ScaledDouble(1.0 - p);
      p_hi = ScaledDouble(p);
    }
    under[i] = p_lo * under_of(edges[i].lo) + p_hi * under_of(edges[i].hi);
  }
}

void FlatObdd::EnsureOwned() {
  if (mapping_ == nullptr) return;
  levels_store_.assign(levels_, levels_ + num_nodes_);
  edges_store_.assign(edges_, edges_ + num_nodes_);
  prob_under_store_.assign(prob_under_, prob_under_ + num_nodes_);
  level_probs_store_.assign(level_probs_, level_probs_ + num_levels_);
  mapping_.reset();
  BindOwned();
}

void FlatObdd::SetLevelProb(int32_t level, double p) {
  MVDB_CHECK(mapping_ == nullptr);
  level_probs_store_[static_cast<size_t>(level)] = p;
}

void FlatObdd::RepairAnnotations(FlatId block_begin, FlatId block_end) {
  MVDB_CHECK(mapping_ == nullptr);
  const size_t begin = static_cast<size_t>(block_begin);
  const size_t end = static_cast<size_t>(block_end);
  MVDB_CHECK_LE(begin, end);
  MVDB_CHECK_LE(end, levels_store_.size());

  // probUnder is block-local: replay the reverse recurrence over exactly
  // the dirty block's slice — the same per-block pass ComputeAnnotations
  // runs at build time. No other block's annotations depend on this one.
  ReplayProbUnder(begin, end);
}

ScaledDouble FlatObdd::SliceProbScaled(
    FlatId begin, FlatId end, FlatId chain_root,
    std::vector<ScaledDouble>* scratch) const {
  if (chain_root == kFlatFalse) return ScaledDouble::Zero();
  if (chain_root == kFlatTrue) return ScaledDouble::One();
  auto& vals = *scratch;
  vals.resize(static_cast<size_t>(end - begin));
  auto value_of = [&](FlatId u) {
    if (u == kFlatFalse) return ScaledDouble::Zero();
    if (u == kFlatTrue || u >= end) return ScaledDouble::One();
    return vals[static_cast<size_t>(u - begin)];
  };
  for (size_t i = vals.size(); i-- > 0;) {
    const size_t k = static_cast<size_t>(begin) + i;
    const double p = level_probs_[static_cast<size_t>(levels_[k])];
    vals[i] = ScaledDouble(1.0 - p) * value_of(edges_[k].lo) +
              ScaledDouble(p) * value_of(edges_[k].hi);
  }
  return vals[static_cast<size_t>(chain_root - begin)];
}

FlatObdd::Block FlatObdd::ExtractBlock(
    FlatId begin, FlatId end, FlatId chain_root,
    const std::vector<int32_t>& level_map) const {
  Block out;
  const size_t size = static_cast<size_t>(end - begin);
  out.levels.resize(size);
  out.edges.resize(size);
  out.root = chain_root - begin;
  auto unmap = [&](FlatId u) -> FlatId {
    if (u == kFlatFalse || u == kFlatTrue) return u;
    if (u >= end) return kFlatTrue;  // undo the AND-concatenation redirect
    return u - begin;
  };
  for (size_t i = 0; i < size; ++i) {
    const size_t k = static_cast<size_t>(begin) + i;
    out.levels[i] = level_map[static_cast<size_t>(levels_[k])];
    out.edges[i] = FlatEdges{unmap(edges_[k].lo), unmap(edges_[k].hi)};
  }
  return out;
}

size_t FlatObdd::MemoryBytes() const {
  // Per-node arrays only: the level-probability table scales with the
  // variable count, not the layout, and would skew the bytes/node
  // trajectory metric. Count-based, so owned and mapped modes report the
  // same figure for the same index.
  return num_nodes_ * (sizeof(int32_t) + sizeof(FlatEdges) +
                       sizeof(ScaledDouble));
}

size_t FlatObdd::Width() const {
  size_t width = 0;
  size_t i = 0;
  while (i < num_nodes_) {
    size_t j = i;
    while (j < num_nodes_ && levels_[j] == levels_[i]) ++j;
    width = std::max(width, j - i);
    i = j;
  }
  return width;
}

std::pair<FlatId, FlatId> FlatObdd::NodesAtLevel(int32_t level) const {
  const int32_t* begin = levels_;
  const int32_t* end = levels_ + num_nodes_;
  const int32_t* lower = std::lower_bound(begin, end, level);
  const int32_t* upper = std::upper_bound(begin, end, level);
  return {static_cast<FlatId>(lower - begin), static_cast<FlatId>(upper - begin)};
}

}  // namespace mvdb
