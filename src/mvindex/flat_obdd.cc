#include "mvindex/flat_obdd.h"

#include <algorithm>

#include "util/logging.h"

namespace mvdb {

FlatObdd::FlatObdd(const BddManager& mgr, NodeId root,
                   const std::vector<double>& var_probs) {
  level_probs_.resize(mgr.num_levels());
  for (size_t l = 0; l < mgr.num_levels(); ++l) {
    level_probs_[l] = var_probs[static_cast<size_t>(mgr.var_at_level(static_cast<int32_t>(l)))];
  }
  if (mgr.IsSink(root)) {
    root_ = (root == BddManager::kTrue) ? kFlatTrue : kFlatFalse;
    return;
  }

  // Collect reachable internal nodes, then sort by (level, discovery order).
  std::vector<NodeId> reachable;
  {
    std::unordered_map<NodeId, bool> seen;
    std::vector<NodeId> stack = {root};
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (mgr.IsSink(id) || seen.count(id)) continue;
      seen.emplace(id, true);
      reachable.push_back(id);
      stack.push_back(mgr.node(id).lo);
      stack.push_back(mgr.node(id).hi);
    }
  }
  std::unordered_map<NodeId, size_t> discovery;
  discovery.reserve(reachable.size());
  for (size_t i = 0; i < reachable.size(); ++i) discovery.emplace(reachable[i], i);
  std::stable_sort(reachable.begin(), reachable.end(),
                   [&](NodeId a, NodeId b) {
                     const int32_t la = mgr.level(a), lb = mgr.level(b);
                     if (la != lb) return la < lb;
                     return discovery[a] < discovery[b];
                   });

  nodes_.reserve(reachable.size());
  index_of_.reserve(reachable.size());
  for (size_t i = 0; i < reachable.size(); ++i) {
    index_of_.emplace(reachable[i], static_cast<FlatId>(i));
  }
  auto flat_of = [&](NodeId id) -> FlatId {
    if (id == BddManager::kFalse) return kFlatFalse;
    if (id == BddManager::kTrue) return kFlatTrue;
    return index_of_.at(id);
  };
  for (NodeId id : reachable) {
    const BddNode& n = mgr.node(id);
    nodes_.push_back(FlatNode{n.level, flat_of(n.lo), flat_of(n.hi)});
  }
  root_ = flat_of(root);

  // probUnder: children always sit at larger indexes (levels strictly grow
  // along edges), so a single reverse pass suffices.
  prob_under_.resize(nodes_.size());
  for (size_t i = nodes_.size(); i-- > 0;) {
    const FlatNode& n = nodes_[i];
    const double p = level_probs_[static_cast<size_t>(n.level)];
    prob_under_[i] = ScaledDouble(1.0 - p) * prob_under_scaled(n.lo) +
                     ScaledDouble(p) * prob_under_scaled(n.hi);
  }

  // reachability: forward pass from the root.
  reach_.assign(nodes_.size(), ScaledDouble::Zero());
  reach_[static_cast<size_t>(root_)] = ScaledDouble::One();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const FlatNode& n = nodes_[i];
    const double p = level_probs_[static_cast<size_t>(n.level)];
    if (n.lo >= 0) {
      reach_[static_cast<size_t>(n.lo)] += reach_[i] * ScaledDouble(1.0 - p);
    }
    if (n.hi >= 0) {
      reach_[static_cast<size_t>(n.hi)] += reach_[i] * ScaledDouble(p);
    }
  }
}

FlatId FlatObdd::IndexOf(NodeId manager_node) const {
  if (manager_node == BddManager::kFalse) return kFlatFalse;
  if (manager_node == BddManager::kTrue) return kFlatTrue;
  auto it = index_of_.find(manager_node);
  MVDB_CHECK(it != index_of_.end()) << "node not in flattened OBDD";
  return it->second;
}

size_t FlatObdd::Width() const {
  size_t width = 0;
  size_t i = 0;
  while (i < nodes_.size()) {
    size_t j = i;
    while (j < nodes_.size() && nodes_[j].level == nodes_[i].level) ++j;
    width = std::max(width, j - i);
    i = j;
  }
  return width;
}

std::pair<FlatId, FlatId> FlatObdd::NodesAtLevel(int32_t level) const {
  auto lower = std::lower_bound(
      nodes_.begin(), nodes_.end(), level,
      [](const FlatNode& n, int32_t l) { return n.level < l; });
  auto upper = std::upper_bound(
      nodes_.begin(), nodes_.end(), level,
      [](int32_t l, const FlatNode& n) { return l < n.level; });
  return {static_cast<FlatId>(lower - nodes_.begin()),
          static_cast<FlatId>(upper - nodes_.begin())};
}

}  // namespace mvdb
