#include "mvindex/flat_obdd.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace mvdb {

FlatObdd::Block FlatObdd::FlattenBlock(const BddManager& mgr, NodeId root) {
  Block out;
  FlattenScratch scratch;
  FlattenBlockInto(mgr, root, &scratch, &out);
  return out;
}

void FlatObdd::FlattenBlockInto(const BddManager& mgr, NodeId root,
                                FlattenScratch* scratch, Block* out) {
  out->levels.clear();
  out->edges.clear();
  if (mgr.IsSink(root)) {
    out->root = (root == BddManager::kTrue) ? kFlatTrue : kFlatFalse;
    return;
  }

  // Collect reachable internal nodes, then sort by (level, discovery
  // order). `position` doubles as the seen-set: it records each node's
  // discovery index during the walk and is rewritten to flat positions
  // after the sort.
  auto& position = scratch->position;
  auto& stack = scratch->stack;
  auto& reachable = scratch->reachable;
  position.clear();
  stack.clear();
  reachable.clear();
  stack.push_back(root);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (mgr.IsSink(id) || !position.emplace(id, reachable.size()).second) {
      continue;
    }
    reachable.push_back(id);
    stack.push_back(mgr.node(id).lo);
    stack.push_back(mgr.node(id).hi);
  }
  std::stable_sort(reachable.begin(), reachable.end(),
                   [&](NodeId a, NodeId b) {
                     const int32_t la = mgr.level(a), lb = mgr.level(b);
                     if (la != lb) return la < lb;
                     return position[a] < position[b];
                   });

  for (size_t i = 0; i < reachable.size(); ++i) {
    position[reachable[i]] = i;
  }
  auto flat_of = [&](NodeId id) -> FlatId {
    if (id == BddManager::kFalse) return kFlatFalse;
    if (id == BddManager::kTrue) return kFlatTrue;
    return static_cast<FlatId>(position.at(id));
  };
  out->levels.reserve(reachable.size());
  out->edges.reserve(reachable.size());
  for (NodeId id : reachable) {
    const BddNode& n = mgr.node(id);
    out->levels.push_back(n.level);
    out->edges.push_back(FlatEdges{flat_of(n.lo), flat_of(n.hi)});
  }
  out->root = flat_of(root);
}

ScaledDouble FlatObdd::BlockProbScaled(const Block& block,
                                       const std::vector<double>& level_probs,
                                       std::vector<ScaledDouble>* scratch) {
  if (block.root == kFlatFalse) return ScaledDouble::Zero();
  if (block.root == kFlatTrue) return ScaledDouble::One();
  auto& vals = *scratch;
  vals.resize(block.size());
  auto value_of = [&](FlatId u) {
    if (u == kFlatFalse) return ScaledDouble::Zero();
    if (u == kFlatTrue) return ScaledDouble::One();
    return vals[static_cast<size_t>(u)];
  };
  for (size_t i = block.size(); i-- > 0;) {
    const double p = level_probs[static_cast<size_t>(block.levels[i])];
    vals[i] = ScaledDouble(1.0 - p) * value_of(block.edges[i].lo) +
              ScaledDouble(p) * value_of(block.edges[i].hi);
  }
  return vals[static_cast<size_t>(block.root)];
}

namespace {

/// Bottom-up rebuild of a level-sorted flat array inside `mgr`: children sit
/// at larger indexes, so one reverse pass suffices. Shared by ImportBlock
/// (local block arrays) and ImportInto (the stitched chain).
NodeId ImportNodes(BddManager* mgr, const std::vector<int32_t>& levels,
                   const std::vector<FlatEdges>& edges, FlatId root) {
  if (root == kFlatTrue) return BddManager::kTrue;
  if (root == kFlatFalse) return BddManager::kFalse;
  // Reserve ahead: the import appends at most levels.size() fresh nodes, so
  // sizing the node vector and unique table once up front turns the rebuild
  // into a bulk append with no mid-import growth or rehash.
  mgr->ReserveNodes(mgr->num_created() + levels.size());
  std::vector<NodeId> ids(levels.size());
  auto node_of = [&](FlatId u) -> NodeId {
    if (u == kFlatFalse) return BddManager::kFalse;
    if (u == kFlatTrue) return BddManager::kTrue;
    return ids[static_cast<size_t>(u)];
  };
  for (size_t i = levels.size(); i-- > 0;) {
    ids[i] = mgr->Mk(levels[i], node_of(edges[i].lo), node_of(edges[i].hi));
  }
  return ids[static_cast<size_t>(root)];
}

}  // namespace

NodeId FlatObdd::ImportBlock(BddManager* mgr, const Block& block) {
  return ImportNodes(mgr, block.levels, block.edges, block.root);
}

NodeId FlatObdd::ImportInto(BddManager* mgr) const {
  return ImportNodes(mgr, levels_, edges_, root_);
}

FlatObdd::FlatObdd(const BddManager& mgr, NodeId root,
                   const std::vector<double>& var_probs) {
  level_probs_.resize(mgr.num_levels());
  for (size_t l = 0; l < mgr.num_levels(); ++l) {
    level_probs_[l] = var_probs[static_cast<size_t>(mgr.var_at_level(static_cast<int32_t>(l)))];
  }
  Block block = FlattenBlock(mgr, root);
  levels_ = std::move(block.levels);
  edges_ = std::move(block.edges);
  root_ = block.root;
  ComputeAnnotations();
}

std::unique_ptr<FlatObdd> FlatObdd::StitchChain(
    const std::vector<Block>& blocks, std::vector<double> level_probs,
    std::vector<FlatId>* chain_roots) {
  std::unique_ptr<FlatObdd> flat(new FlatObdd());
  flat->level_probs_ = std::move(level_probs);

  size_t total = 0;
  bool chain_false = false;
  for (const Block& b : blocks) {
    total += b.size();
    chain_false |= (b.root == kFlatFalse);
  }
  if (chain_false) {
    // One block is constant false, so the AND chain is false and every
    // prefix collapses with it (sink redirection plus reduction) — exactly
    // what concatenating in a manager produces.
    flat->root_ = kFlatFalse;
    if (chain_roots != nullptr) chain_roots->assign(blocks.size(), kFlatFalse);
    flat->ComputeAnnotations();
    return flat;
  }
  if (chain_roots != nullptr) {
    chain_roots->assign(blocks.size(), kFlatTrue);
  }

  // Emit back to front so each block knows its successor's stitched root.
  // Positions are final (offsets are fixed by the block sizes), so emission
  // order is an implementation detail; we fill the arrays directly.
  flat->levels_.resize(total);
  flat->edges_.resize(total);
  FlatId next_root = kFlatTrue;  // chain suffix after the last block
  size_t offset = total;
  for (size_t i = blocks.size(); i-- > 0;) {
    const Block& b = blocks[i];
    if (b.root == kFlatTrue) {
      // Constant-true block: the AND-chain identity. Nothing to emit; its
      // chain entry is wherever the suffix already starts.
      if (chain_roots != nullptr) (*chain_roots)[i] = next_root;
      continue;
    }
    offset -= b.size();
    const FlatId base = static_cast<FlatId>(offset);
    for (size_t k = 0; k < b.size(); ++k) {
      auto remap = [&](FlatId u) -> FlatId {
        if (u == kFlatTrue) return next_root;  // AND-concatenation redirect
        if (u == kFlatFalse) return kFlatFalse;
        return base + u;
      };
      flat->levels_[offset + k] = b.levels[k];
      flat->edges_[offset + k] =
          FlatEdges{remap(b.edges[k].lo), remap(b.edges[k].hi)};
    }
    next_root = base + b.root;
    if (chain_roots != nullptr) (*chain_roots)[i] = next_root;
  }
  flat->root_ = blocks.empty() ? kFlatTrue : next_root;
  flat->ComputeAnnotations();
  return flat;
}

void FlatObdd::ComputeAnnotations() {
  // probUnder: children always sit at larger indexes (levels strictly grow
  // along edges), so a single reverse pass suffices.
  prob_under_.resize(levels_.size());
  for (size_t i = levels_.size(); i-- > 0;) {
    const double p = level_probs_[static_cast<size_t>(levels_[i])];
    prob_under_[i] = ScaledDouble(1.0 - p) * prob_under_scaled(edges_[i].lo) +
                     ScaledDouble(p) * prob_under_scaled(edges_[i].hi);
  }

  // reachability: forward pass from the root.
  reach_.assign(levels_.size(), ScaledDouble::Zero());
  if (root_ < 0) return;
  reach_[static_cast<size_t>(root_)] = ScaledDouble::One();
  for (size_t i = 0; i < levels_.size(); ++i) {
    const FlatEdges& e = edges_[i];
    const double p = level_probs_[static_cast<size_t>(levels_[i])];
    if (e.lo >= 0) {
      reach_[static_cast<size_t>(e.lo)] += reach_[i] * ScaledDouble(1.0 - p);
    }
    if (e.hi >= 0) {
      reach_[static_cast<size_t>(e.hi)] += reach_[i] * ScaledDouble(p);
    }
  }
}

size_t FlatObdd::MemoryBytes() const {
  // Per-node arrays only: level_probs_ scales with the variable count, not
  // the layout, and would skew the bytes/node trajectory metric.
  return levels_.capacity() * sizeof(int32_t) +
         edges_.capacity() * sizeof(FlatEdges) +
         prob_under_.capacity() * sizeof(ScaledDouble) +
         reach_.capacity() * sizeof(ScaledDouble);
}

size_t FlatObdd::Width() const {
  size_t width = 0;
  size_t i = 0;
  while (i < levels_.size()) {
    size_t j = i;
    while (j < levels_.size() && levels_[j] == levels_[i]) ++j;
    width = std::max(width, j - i);
    i = j;
  }
  return width;
}

std::pair<FlatId, FlatId> FlatObdd::NodesAtLevel(int32_t level) const {
  auto lower = std::lower_bound(levels_.begin(), levels_.end(), level);
  auto upper = std::upper_bound(levels_.begin(), levels_.end(), level);
  return {static_cast<FlatId>(lower - levels_.begin()),
          static_cast<FlatId>(upper - levels_.begin())};
}

}  // namespace mvdb
