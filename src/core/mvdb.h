// Copyright 2026 The MarkoView Authors.
//
// Mvdb: the paper's data model (Definition 3: a triple (Tup, w, V)) and its
// translation to a tuple-independent database (Definition 5 / Theorem 1).
//
// Usage:
//   Mvdb mvdb;
//   ... create tables and insert tuples through mvdb.db() ...
//   mvdb.AddView(MarkoView::Constant("V2", v2_def, 0.0));
//   MVDB_RETURN_NOT_OK(mvdb.Translate());
//   // now mvdb.db() also holds the NV tables, and mvdb.W() is the Boolean
//   // constraint UCQ of Eq. 4; query through core/engine.h.
//
// Translate() materializes every view over I_poss, computes per-tuple
// weights, creates the NV relations with weight w0 = (1-w)/w (negative when
// w > 1 — Section 3.3), and assembles W = v_i (exists x. NV_i(x) ^ Q_i(x)).
// Denial views (all weights 0) follow the paper's simplification: NV_i is
// dropped entirely and W_i is just the existentially closed view body.

#ifndef MVDB_CORE_MVDB_H_
#define MVDB_CORE_MVDB_H_

#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/markoview.h"
#include "mln/mln.h"
#include "prob/lineage.h"
#include "query/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// One materialized view output tuple and its induced MLN feature.
struct ViewTuple {
  std::vector<Value> head;
  double weight;      ///< wV(t), the MarkoView weight
  Lineage feature;    ///< lineage of Q_i(t) over the base tables (Def. 4)
  VarId nv_var;       ///< Boolean variable of the NV tuple; kNoVar if none
                      ///< (denial tuple under simplification, or w == 1)
};

/// Knobs for the MVDB -> INDB translation. The translation's output (view
/// tuples, weights, NV tables, W, variable numbering) is bit-identical for
/// every thread count: view evaluation shards the driver atom with
/// canonically merged answers, per-tuple weights land in indexed slots, and
/// the NV emission stays serial so VarIds are allocated in tuple order.
struct TranslateOptions {
  /// Worker threads for view materialization and weight computation.
  /// 1 = serial; <= 0 = one per hardware thread. Weight callbacks must be
  /// pure functions (the shipped views' are) — they may run concurrently.
  int num_threads = 1;
  /// Compute each tuple's weight (and validate it) inside the gather loop
  /// that materializes the view, touching every tuple once, instead of the
  /// staged gather / parallel-weights / validate passes. Output is
  /// bit-identical either way (translate parity tests pin it); the hatch
  /// exists for A/B comparison.
  bool fused_weights = true;
};

/// One base-table mutation of the incremental maintenance path
/// (Mvdb::ApplyBaseDelta). Deltas target probabilistic *base* tables; NV
/// relations are maintained by the translation and deterministic-table
/// changes (which move aggregate counts wholesale) take a full rebuild.
struct DeltaOp {
  enum class Kind {
    kInsert,        ///< append a new possible tuple with the given weight
    kUpdateWeight,  ///< overwrite an existing tuple's weight (odds)
    kDelete,        ///< tombstone: weight -> 0, the tuple leaves every
                    ///< possible world but keeps its variable and row (so
                    ///< counts over I_poss — and hence W's shape — are
                    ///< untouched; Section 2.4 counts range over I_poss)
  };
  Kind kind = Kind::kUpdateWeight;
  std::string table;
  std::vector<Value> values;  ///< the full tuple
  double weight = 1.0;        ///< odds; read by kInsert / kUpdateWeight
};

/// What ApplyBaseDelta changed, in the vocabulary the engine needs to pick
/// (and drive) the matching MvIndex repair: a pure weight repair when no
/// variable was allocated, a structural splice otherwise.
struct DeltaEffects {
  /// Existing variables (base and NV) whose weight moved.
  std::vector<VarId> changed_weight_vars;
  /// Freshly allocated variables (inserted base tuples + induced NV tuples),
  /// in allocation order.
  std::vector<VarId> new_vars;
  /// Base rows the delta touched (inserted or re-weighted), for mapping to
  /// dirty partition tasks.
  std::vector<std::pair<std::string, RowId>> touched_rows;
  /// A structural delta changes the variable set; a weight-only delta never
  /// does.
  bool structural() const { return !new_vars.empty(); }
};

class Mvdb {
 public:
  Mvdb() = default;
  Mvdb(Mvdb&&) = default;
  Mvdb& operator=(Mvdb&&) = default;

  /// The underlying database: deterministic + probabilistic tables before
  /// Translate(), plus the NV tables afterwards.
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Registers a MarkoView. Must be called before Translate().
  Status AddView(MarkoView view);

  const std::vector<MarkoView>& views() const { return views_; }

  /// Materializes all views and builds the associated INDB (Definition 5).
  /// Idempotent: returns AlreadyExists on a second call.
  Status Translate() { return Translate(TranslateOptions{}); }
  Status Translate(const TranslateOptions& options);

  bool translated() const { return translated_; }

  /// Applies a batch of base-table mutations to the *translated* MVDB,
  /// incrementally maintaining the materialized views, their weights and the
  /// NV relations (Definition 5 stays invariant: afterwards the database is
  /// exactly what Translate() would have produced from the mutated base
  /// tables — up to variable numbering for freshly allocated variables).
  /// Weight updates and tombstone deletes never change view output or
  /// counts (both range over I_poss), so they only move weights; inserts
  /// re-derive the affected view tuples by restricted evaluation and
  /// point-wise re-grounding. Transitions that would change W's *shape* —
  /// a view flipping empty/nonempty or denial/non-denial, a delta through a
  /// negated atom — return Unimplemented: shape changes take a rebuild.
  /// On any error the database may hold a partially applied prefix of
  /// `ops`; `effects` always describes exactly what was applied.
  Status ApplyBaseDelta(const std::vector<DeltaOp>& ops, DeltaEffects* effects);

  /// The Boolean constraint query W (Eq. 4). Valid after Translate().
  const Ucq& W() const { return w_; }

  /// Materialized tuples per view, parallel to views(). Valid after
  /// Translate().
  const std::vector<std::vector<ViewTuple>>& view_tuples() const {
    return view_tuples_;
  }

  /// Number of Boolean variables before translation — the variables of the
  /// MLN of Definition 4 (NV variables live above this bound).
  size_t base_num_vars() const { return base_num_vars_; }

  /// The ground MLN of Definition 4: one feature per base tuple (weights)
  /// plus one feature per view tuple. Valid after Translate(). This is the
  /// exact object Alchemy-style samplers run on (Figures 5-6) and the
  /// ground-truth oracle for Theorem 1 tests.
  StatusOr<GroundMln> ToGroundMln() const;

  /// Name of the NV relation of view i ("NV_" + view name).
  std::string NvTableName(size_t view_index) const {
    return "NV_" + views_[view_index].name();
  }

 private:
  /// Applies one mutation (see ApplyBaseDelta).
  Status ApplyOneDelta(const DeltaOp& op, DeltaEffects* effects);

  /// Insert maintenance for one view: discovers the heads whose derivations
  /// the new tuple can touch, re-grounds each, and reconciles weight,
  /// lineage and NV tuple against the stored ViewTuple.
  Status MaintainViewForInsert(size_t view_index, const std::string& table,
                               std::span<const Value> values,
                               DeltaEffects* effects);

  Database db_;
  std::vector<MarkoView> views_;
  std::vector<std::vector<ViewTuple>> view_tuples_;
  Ucq w_;
  size_t base_num_vars_ = 0;
  bool translated_ = false;

  /// Lazily built per-view head -> view_tuples_ index, so insert
  /// maintenance reconciles candidates without scanning the (DBLP-scale,
  /// ~1M-tuple) view extents. Keys use the map's deterministic ordering;
  /// maintained incrementally once built.
  std::vector<std::map<std::vector<Value>, size_t>> head_index_;
};

}  // namespace mvdb

#endif  // MVDB_CORE_MVDB_H_
