// Copyright 2026 The MarkoView Authors.
//
// Mvdb: the paper's data model (Definition 3: a triple (Tup, w, V)) and its
// translation to a tuple-independent database (Definition 5 / Theorem 1).
//
// Usage:
//   Mvdb mvdb;
//   ... create tables and insert tuples through mvdb.db() ...
//   mvdb.AddView(MarkoView::Constant("V2", v2_def, 0.0));
//   MVDB_RETURN_NOT_OK(mvdb.Translate());
//   // now mvdb.db() also holds the NV tables, and mvdb.W() is the Boolean
//   // constraint UCQ of Eq. 4; query through core/engine.h.
//
// Translate() materializes every view over I_poss, computes per-tuple
// weights, creates the NV relations with weight w0 = (1-w)/w (negative when
// w > 1 — Section 3.3), and assembles W = v_i (exists x. NV_i(x) ^ Q_i(x)).
// Denial views (all weights 0) follow the paper's simplification: NV_i is
// dropped entirely and W_i is just the existentially closed view body.

#ifndef MVDB_CORE_MVDB_H_
#define MVDB_CORE_MVDB_H_

#include <string>
#include <vector>

#include "core/markoview.h"
#include "mln/mln.h"
#include "prob/lineage.h"
#include "query/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// One materialized view output tuple and its induced MLN feature.
struct ViewTuple {
  std::vector<Value> head;
  double weight;      ///< wV(t), the MarkoView weight
  Lineage feature;    ///< lineage of Q_i(t) over the base tables (Def. 4)
  VarId nv_var;       ///< Boolean variable of the NV tuple; kNoVar if none
                      ///< (denial tuple under simplification, or w == 1)
};

/// Knobs for the MVDB -> INDB translation. The translation's output (view
/// tuples, weights, NV tables, W, variable numbering) is bit-identical for
/// every thread count: view evaluation shards the driver atom with
/// canonically merged answers, per-tuple weights land in indexed slots, and
/// the NV emission stays serial so VarIds are allocated in tuple order.
struct TranslateOptions {
  /// Worker threads for view materialization and weight computation.
  /// 1 = serial; <= 0 = one per hardware thread. Weight callbacks must be
  /// pure functions (the shipped views' are) — they may run concurrently.
  int num_threads = 1;
  /// Compute each tuple's weight (and validate it) inside the gather loop
  /// that materializes the view, touching every tuple once, instead of the
  /// staged gather / parallel-weights / validate passes. Output is
  /// bit-identical either way (translate parity tests pin it); the hatch
  /// exists for A/B comparison.
  bool fused_weights = true;
};

class Mvdb {
 public:
  Mvdb() = default;
  Mvdb(Mvdb&&) = default;
  Mvdb& operator=(Mvdb&&) = default;

  /// The underlying database: deterministic + probabilistic tables before
  /// Translate(), plus the NV tables afterwards.
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Registers a MarkoView. Must be called before Translate().
  Status AddView(MarkoView view);

  const std::vector<MarkoView>& views() const { return views_; }

  /// Materializes all views and builds the associated INDB (Definition 5).
  /// Idempotent: returns AlreadyExists on a second call.
  Status Translate() { return Translate(TranslateOptions{}); }
  Status Translate(const TranslateOptions& options);

  bool translated() const { return translated_; }

  /// The Boolean constraint query W (Eq. 4). Valid after Translate().
  const Ucq& W() const { return w_; }

  /// Materialized tuples per view, parallel to views(). Valid after
  /// Translate().
  const std::vector<std::vector<ViewTuple>>& view_tuples() const {
    return view_tuples_;
  }

  /// Number of Boolean variables before translation — the variables of the
  /// MLN of Definition 4 (NV variables live above this bound).
  size_t base_num_vars() const { return base_num_vars_; }

  /// The ground MLN of Definition 4: one feature per base tuple (weights)
  /// plus one feature per view tuple. Valid after Translate(). This is the
  /// exact object Alchemy-style samplers run on (Figures 5-6) and the
  /// ground-truth oracle for Theorem 1 tests.
  StatusOr<GroundMln> ToGroundMln() const;

  /// Name of the NV relation of view i ("NV_" + view name).
  std::string NvTableName(size_t view_index) const {
    return "NV_" + views_[view_index].name();
  }

 private:
  Database db_;
  std::vector<MarkoView> views_;
  std::vector<std::vector<ViewTuple>> view_tuples_;
  Ucq w_;
  size_t base_num_vars_ = 0;
  bool translated_ = false;
};

}  // namespace mvdb

#endif  // MVDB_CORE_MVDB_H_
