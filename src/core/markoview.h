// Copyright 2026 The MarkoView Authors.
//
// MarkoView (Definition 3): a UCQ view over the probabilistic and
// deterministic tables, assigning a non-negative weight to each output
// tuple. The weight may depend on a per-group aggregate — the paper's
// weight expressions are of the form f(count(pid)) where pid is a body
// variable (Fig. 1, footnote 3: aggregates range over deterministic
// tables) — so a view carries an optional count variable and a weight
// callback receiving the head tuple and the distinct count.
//
// Weight semantics (Sections 2.4-2.5):
//   w = 0   hard denial constraint (the view must be empty);
//   w < 1   negative correlation;
//   w = 1   independence (the output tuple induces no feature);
//   w > 1   positive correlation;
//   w = inf is rejected — it would make the translated NV probability
//           singular ((1-w)/w -> -1, p -> -inf) and the paper never uses it.

#ifndef MVDB_CORE_MARKOVIEW_H_
#define MVDB_CORE_MARKOVIEW_H_

#include <functional>
#include <span>
#include <string>
#include <utility>

#include "query/ast.h"
#include "relational/types.h"

namespace mvdb {

class MarkoView {
 public:
  /// Weight callback: head tuple and distinct count of `count_var` bindings
  /// (0 when no count variable is configured).
  using WeightFn = std::function<double(std::span<const Value>, int64_t)>;

  /// A view whose weight is computed per output tuple.
  MarkoView(std::string name, Ucq definition, int count_var, WeightFn weight_fn)
      : name_(std::move(name)),
        definition_(std::move(definition)),
        count_var_(count_var),
        weight_fn_(std::move(weight_fn)) {}

  /// A view with one constant weight for every output tuple, e.g. the
  /// denial view V2(...)[0].
  static MarkoView Constant(std::string name, Ucq definition, double weight) {
    return MarkoView(std::move(name), std::move(definition), -1,
                     [weight](std::span<const Value>, int64_t) { return weight; });
  }

  const std::string& name() const { return name_; }
  const Ucq& definition() const { return definition_; }
  int count_var() const { return count_var_; }
  double Weight(std::span<const Value> head, int64_t count) const {
    return weight_fn_(head, count);
  }

 private:
  std::string name_;
  Ucq definition_;
  int count_var_;
  WeightFn weight_fn_;
};

}  // namespace mvdb

#endif  // MVDB_CORE_MARKOVIEW_H_
