// Copyright 2026 The MarkoView Authors.
//
// QueryEngine: the end-to-end evaluation pipeline of the paper.
//
// Offline (Compile):
//   1. Translate the MVDB to its associated INDB (Definition 5);
//   2. choose attribute permutations pi — inversion-free ones when W admits
//      them, else separator-first heuristics (Section 4.2);
//   3. build the global variable order Pi and the BddManager;
//   4. compile W into the MV-index (blocks, flat augmented OBDD of NOT W).
//
// Online (Query):
//   per answer tuple a: compute the lineage of Q(a), build its (small)
//   query OBDD in the same order, and evaluate Eq. 5
//
//       P(Q(a)) = (P0(Q v W) - P0(W)) / (1 - P0(W))
//               = P0(Q ^ NOT W) / P0(NOT W)
//
//   where the numerator comes from one of several interchangeable backends
//   (brute force / reused W OBDD / MV-index MVIntersect / CC-MVIntersect /
//   lifted safe plans) — they agree to floating-point accuracy, which the
//   property tests assert.

#ifndef MVDB_CORE_ENGINE_H_
#define MVDB_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mvdb.h"
#include "mvindex/mv_index.h"
#include "obdd/conobdd.h"
#include "obdd/manager.h"
#include "obdd/order.h"
#include "query/eval.h"
#include "serve/plan_cache.h"
#include "serve/server.h"
#include "util/status.h"

namespace mvdb {

/// Numerator evaluation strategy for Eq. 5.
enum class Backend {
  kBruteForce,   ///< exhaustive enumeration over the joint lineage (tests)
  kObddReuse,    ///< synthesis of Q against the precompiled W OBDD
  kMvIndex,      ///< MV-index, top-down MVIntersect
  kMvIndexCC,    ///< MV-index, cache-conscious forward sweep
  kSafePlan,     ///< lifted inference on Q v W and W (safe queries only)
};

/// Offline compilation options (Section 4's index build). The MV-index
/// blocks are variable-disjoint, so block compilation shards across
/// threads; the output is bit-identical for every thread count (same block
/// keys, same flat layout, same probabilities) — parallelism is purely a
/// wall-clock knob. See MvIndexBuildOptions for the field semantics
/// (num_threads, reserve_hint).
using CompileOptions = MvIndexBuildOptions;

class QueryEngine {
 public:
  /// The engine borrows the Mvdb, which must outlive it.
  explicit QueryEngine(Mvdb* mvdb) : mvdb_(mvdb) {}

  /// Runs the offline pipeline. Idempotent: once compiled, later calls (any
  /// options) are no-ops.
  Status Compile() { return Compile(CompileOptions{}); }
  Status Compile(const CompileOptions& options);

  bool compiled() const { return index_ != nullptr; }

  /// Persists the compiled index (compiling first if needed) in the
  /// versioned on-disk format of mvindex/index_io.*.
  Status SaveIndex(const std::string& path);
  Status SaveIndex(const std::string& path, const CompileOptions& options);

  /// Knobs for OpenIndex.
  struct OpenIndexOptions {
    /// Bind the flat arrays to a read-only mmap of the file (startup cost
    /// independent of index size; N processes share the pages) instead of
    /// copying them into owned memory.
    bool mapped = true;
    /// Verify every section checksum before serving (faults in the whole
    /// file; `dump_index --verify` covers this out of band).
    bool verify_checksums = false;
    /// Thread budget for the MVDB -> INDB translation that OpenIndex still
    /// runs (the index file replaces compilation, not translation).
    int num_threads = 1;
  };

  /// Stands the engine up from a persisted index instead of compiling:
  /// translates the MVDB if needed, reconstructs the variable order and
  /// manager from the file, loads (or maps) the index against it, and
  /// cross-checks the file against this database — the order digest must
  /// match and every per-level probability must equal the translated
  /// marginal bit for bit, so serving a stale or foreign index fails with a
  /// typed Status instead of returning silently wrong answers. After
  /// success, compiled() is true and Query/Serve behave exactly as after
  /// Compile() (kObddReuse lazily imports the chain on first use).
  Status OpenIndex(const std::string& path, const OpenIndexOptions& options);
  Status OpenIndex(const std::string& path);

  /// Applies a batch of base-table delta operations end to end: mutates the
  /// MVDB (Mvdb::ApplyBaseDelta maintains the views and the NV relations),
  /// then incrementally maintains the compiled index. Weight-only deltas
  /// (updates, deletes) repair the chain annotations in place
  /// (MvIndex::ApplyWeightDelta); inserts splice the new variables into the
  /// order and recompile only the dirty blocks (ApplyStructuralDelta). Both
  /// paths leave the engine bit-identical to a from-scratch Compile over
  /// the mutated database (delta_maintenance_test pins it).
  ///
  /// When `server` is non-null it must be a live Server over this engine's
  /// index: it is paused around the index mutation and resumed with a
  /// refreshed snapshot (order, Eq. 5 denominator, warm table indexes);
  /// its plan cache is invalidated only when the delta is structural —
  /// plans are value-independent, so weight moves keep it warm. The
  /// engine-side caches follow the same rule (w_lineage_ and the query
  /// plan cache survive weight-only deltas).
  ///
  /// On a non-OK return the database may hold an applied prefix of `ops`
  /// while the index does not reflect it; the typed code says why
  /// (Unimplemented = a W-shape transition outside the incremental
  /// contract). Callers must then rebuild via a fresh engine + Compile
  /// before trusting further answers.
  Status ApplyDelta(const std::vector<DeltaOp>& ops, Server* server = nullptr);

  /// Evaluates a (possibly non-Boolean) UCQ over the MVDB relations,
  /// returning one probability per answer tuple.
  StatusOr<std::vector<AnswerProb>> Query(const Ucq& q,
                                          Backend backend = Backend::kMvIndexCC);

  /// Evaluates a Boolean UCQ.
  StatusOr<double> QueryBoolean(const Ucq& q,
                                Backend backend = Backend::kMvIndexCC);

  /// Returns the k most probable answers, descending by probability (ties
  /// broken by head tuple order). Evaluates every answer's numerator — the
  /// MV-index makes per-answer evaluation cheap enough that the multi-
  /// simulation pruning of Re et al. [28] is unnecessary here; see
  /// DESIGN.md, "Top-k without multisimulation".
  StatusOr<std::vector<AnswerProb>> QueryTopK(const Ucq& q, size_t k,
                                              Backend backend = Backend::kMvIndexCC);

  /// Conditional probability P(Q1 | Q2) on the MVDB: by Theorem 1 this is
  /// P0(Q1 ^ Q2 ^ NOT W) / P0(Q2 ^ NOT W) — two intersect calls against the
  /// same index. Both queries must be Boolean. Returns InvalidArgument when
  /// P(Q2) = 0.
  StatusOr<double> ConditionalBoolean(const Ucq& q1, const Ucq& q2,
                                      Backend backend = Backend::kMvIndexCC);

  /// Diagnostics for one query: what the evaluation would do and cost.
  struct Explanation {
    size_t num_answers;        ///< answer tuples
    size_t lineage_clauses;    ///< total clauses across answers
    size_t lineage_vars;       ///< distinct tuple variables across answers
    bool uses_negation;        ///< signed lineage (Sec. 2.5 extension)
    bool safe_with_views;      ///< lifted inference applies to Q v W and W
    size_t blocks_touched;     ///< MV-index blocks overlapping the lineage
    size_t index_blocks;       ///< total blocks in the index
  };
  StatusOr<Explanation> Explain(const Ucq& q);

  /// P0(NOT W) = 1 - P0(W), the denominator of Eq. 5.
  double ProbNotW() const { return index_->ProbNotW(); }

  /// The compiled MV-index (stats, block layout).
  const MvIndex& index() const { return *index_; }
  /// Mutable access for post-build A/B toggles (e.g.
  /// MvIndex::set_use_fast_intersect in kernel parity tests and benches).
  MvIndex& mutable_index() { return *index_; }
  BddManager& manager() { return *mgr_; }

  /// Builds an online serving layer over the compiled index (compiling
  /// first if needed): plan cache, bounded-queue scheduler with deadlines
  /// and shedding, batched CC sweep. The engine must outlive the server.
  StatusOr<std::unique_ptr<Server>> Serve(const ServeOptions& options = {});

  /// Routes this engine's own query-side Eval calls (Query, QueryBoolean,
  /// ConditionalBoolean, Explain, WLineage) through a plan cache, so
  /// repeated query shapes skip the cost-based planner. Results are
  /// bit-identical with the cache on or off (plan_cache_test asserts it).
  void EnablePlanCache(size_t capacity = 128);
  void DisablePlanCache() { plan_cache_.reset(); }
  /// Zeroed stats when the cache is disabled.
  PlanCacheStats plan_cache_stats() const {
    return plan_cache_ != nullptr ? plan_cache_->stats() : PlanCacheStats{};
  }

  /// Lineage of W (computed lazily; large — Fig. 4 measures its size).
  StatusOr<const Lineage*> WLineage();

  /// The attribute permutations chosen at compile time.
  const OrderSpec& order_spec() const { return order_spec_; }
  /// Whether W was detected inversion-free (Proposition 2 applies).
  bool w_inversion_free() const { return w_inversion_free_; }

 private:
  /// Chooses order_spec_ (pi + component ranks) and w_inversion_free_ from
  /// the translated MVDB. Pure analysis of W; shared by Compile and
  /// OpenIndex (the structural delta path needs the spec to splice new
  /// variables, and a loaded index predates this engine's spec).
  void ComputeOrderSpec();

  /// Index maintenance for an applied delta (ApplyDelta's second half).
  Status MaintainIndex(const DeltaEffects& effects);

  StatusOr<ScaledDouble> Numerator(const Lineage& q_lineage,
                                   const Ucq& q_grounded_or_w, Backend backend);

  /// Eval / EvalBoolean, via the plan cache when enabled (bit-identical).
  Status CachedEval(const Ucq& q, AnswerMap* out);
  StatusOr<Lineage> CachedEvalBoolean(const Ucq& q);

  Mvdb* mvdb_;
  OrderSpec order_spec_;
  bool w_inversion_free_ = false;
  std::unique_ptr<BddManager> mgr_;
  std::unique_ptr<MvIndex> index_;
  std::vector<double> var_probs_;
  std::optional<Lineage> w_lineage_;
  std::unique_ptr<PlanCache> plan_cache_;
};

}  // namespace mvdb

#endif  // MVDB_CORE_ENGINE_H_
