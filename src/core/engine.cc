#include "core/engine.h"

#include <algorithm>
#include <cstring>

#include "mvindex/index_io.h"
#include "mvindex/partition.h"
#include "prob/brute_force.h"
#include "query/analysis.h"
#include "safeplan/lifted.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mvdb {
namespace {

/// Clamps values that are within floating-point noise of [0, 1].
double ClampProb(double p) {
  if (p < 0.0 && p > -1e-9) return 0.0;
  if (p > 1.0 && p < 1.0 + 1e-9) return 1.0;
  return p;
}

}  // namespace

Status QueryEngine::Compile(const CompileOptions& options) {
  if (compiled()) return Status::OK();
  // Phase accounting: every instruction between here and the return lives
  // inside exactly one of the six phase windows (translate / order inside
  // this function, partition / compile / stitch / import inside
  // MvIndex::Build), so the phase seconds sum to total_seconds up to
  // clock-read noise — engine_scale_test asserts it.
  Timer total_timer;
  // Phase 1: MVDB -> INDB translation, sharded over the compile thread
  // budget (bit-identical output for any thread count).
  Timer timer;
  double translate_seconds = 0.0;  // stays 0 when already translated
  if (!mvdb_->translated()) {
    TranslateOptions topts;
    topts.num_threads = options.num_threads;
    topts.fused_weights = options.use_fused_translate;
    MVDB_RETURN_NOT_OK(mvdb_->Translate(topts));
    translate_seconds = timer.Seconds();
  }
  timer.Restart();
  const Database& db = mvdb_->db();
  ComputeOrderSpec();

  mgr_ = std::make_unique<BddManager>(BuildVariableOrder(
      db, order_spec_, options.num_threads, options.use_radix_order));
  mgr_->set_scratch_synthesis(options.use_presorted_synthesis);
  // The per-VarId probability snapshot belongs to the order phase: at 1M
  // authors it walks every tuple variable once.
  var_probs_ = db.VarProbs();
  const double order_seconds = timer.Seconds();
  MVDB_ASSIGN_OR_RETURN(
      index_, MvIndex::Build(db, mvdb_->W(), mgr_.get(), var_probs_, options));
  // Phase 2 bookkeeping: Build timed partition/compile/stitch/import; the
  // engine owns the front-end phases it ran above.
  index_->mutable_build_stats().translate_seconds = translate_seconds;
  index_->mutable_build_stats().order_seconds = order_seconds;
  index_->mutable_build_stats().total_seconds = total_timer.Seconds();
  return Status::OK();
}

void QueryEngine::ComputeOrderSpec() {
  const Database& db = mvdb_->db();
  const Ucq& w = mvdb_->W();
  auto is_prob = [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };

  // Attribute permutations: inversion-free if possible, else separator-first.
  std::unordered_map<std::string, size_t> arity;
  for (const auto& cq : w.disjuncts) {
    for (const Atom& a : cq.atoms) {
      if (is_prob(a.relation)) arity[a.relation] = a.args.size();
    }
  }
  order_spec_ = OrderSpec{};
  if (auto pi = FindInversionFreePi(w, is_prob, arity); pi.has_value()) {
    w_inversion_free_ = true;
    order_spec_.pi = std::move(*pi);
  } else if (auto sep = FindSeparator(w, is_prob); sep.has_value()) {
    for (const auto& [sym, pos] : sep->position) {
      std::vector<size_t> perm = {pos};
      for (size_t p = 0; p < arity[sym]; ++p) {
        if (p != pos) perm.push_back(p);
      }
      order_spec_.pi[sym] = std::move(perm);
    }
  }

  // Component ranks: keep independent view groups of W contiguous;
  // relations untouched by W go last.
  const auto groups = IndependentUnionComponents(w, is_prob);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t d : groups[g]) {
      for (const Atom& a : w.disjuncts[d].atoms) {
        if (is_prob(a.relation)) {
          order_spec_.component_rank.emplace(a.relation, static_cast<int>(g));
        }
      }
    }
  }
  for (const std::string& name : db.table_names()) {
    const Table* t = db.Find(name);
    if (t->probabilistic()) {
      order_spec_.component_rank.emplace(name, static_cast<int>(groups.size()));
    }
  }
}

Status QueryEngine::SaveIndex(const std::string& path) {
  return SaveIndex(path, CompileOptions{});
}

Status QueryEngine::SaveIndex(const std::string& path,
                              const CompileOptions& options) {
  MVDB_RETURN_NOT_OK(Compile(options));
  return index_->Save(path);
}

Status QueryEngine::OpenIndex(const std::string& path) {
  return OpenIndex(path, OpenIndexOptions{});
}

Status QueryEngine::OpenIndex(const std::string& path,
                              const OpenIndexOptions& options) {
  if (compiled()) {
    return Status::InvalidArgument(
        "engine already holds a compiled index; OpenIndex must run first");
  }
  // The index file replaces the compile phase, not the front-end: serving
  // still needs the INDB relations (query evaluation) and the per-variable
  // marginals (the consistency gate below).
  if (!mvdb_->translated()) {
    TranslateOptions topts;
    topts.num_threads = options.num_threads;
    MVDB_RETURN_NOT_OK(mvdb_->Translate(topts));
  }
  var_probs_ = mvdb_->db().VarProbs();
  // The file carries the order itself, but the engine still derives the
  // order *spec*: structural deltas splice new variables at the positions
  // the spec dictates. SaveIndex wrote BuildVariableOrder(db, spec), so the
  // recomputed spec describes the loaded order exactly.
  ComputeOrderSpec();

  // Reconstruct the variable order from the file — but vet it against this
  // database before handing it to VarOrder, whose constructor CHECK-fails
  // on malformed input (a corrupt or foreign file must surface as a typed
  // Status, never an abort).
  MVDB_ASSIGN_OR_RETURN(std::vector<VarId> order, ReadIndexVarOrder(path));
  if (order.size() != var_probs_.size()) {
    return Status::InvalidArgument(
        "index file orders " + std::to_string(order.size()) +
        " variables but this database has " +
        std::to_string(var_probs_.size()));
  }
  std::vector<char> seen(var_probs_.size(), 0);
  for (const VarId v : order) {
    if (v < 0 || static_cast<size_t>(v) >= var_probs_.size() ||
        seen[static_cast<size_t>(v)] != 0) {
      return Status::InvalidArgument(
          "index file variable order is not a permutation of this "
          "database's variables");
    }
    seen[static_cast<size_t>(v)] = 1;
  }
  mgr_ = std::make_unique<BddManager>(std::move(order));

  IndexLoadOptions lopts;
  lopts.verify_checksums = options.verify_checksums;
  auto loaded = options.mapped ? MvIndex::LoadMapped(path, mgr_.get(), lopts)
                               : MvIndex::Load(path, mgr_.get(), lopts);
  if (!loaded.ok()) {
    mgr_.reset();
    return loaded.status();
  }
  std::unique_ptr<MvIndex> index = std::move(loaded).value();

  // Bind the file to THIS database: every per-level probability in the
  // index must equal the freshly translated marginal bit for bit. A stale
  // index (same schema, different data) passes the order-digest check but
  // fails here.
  const FlatObdd& flat = index->flat();
  for (size_t l = 0; l < flat.num_levels(); ++l) {
    const double file_p = flat.prob_at_level(static_cast<int32_t>(l));
    const double db_p = var_probs_[static_cast<size_t>(
        mgr_->var_at_level(static_cast<int32_t>(l)))];
    if (std::memcmp(&file_p, &db_p, sizeof(double)) != 0) {
      mgr_.reset();
      return Status::InvalidArgument(
          "index file probabilities disagree with this database at level " +
          std::to_string(l) + " (stale index? rebuild with SaveIndex)");
    }
  }
  index_ = std::move(index);
  return Status::OK();
}

Status QueryEngine::ApplyDelta(const std::vector<DeltaOp>& ops,
                               Server* server) {
  if (!compiled()) {
    return Status::FailedPrecondition(
        "ApplyDelta requires a compiled or opened index");
  }
  DeltaEffects effects;
  const Status applied = mvdb_->ApplyBaseDelta(ops, &effects);
  // Even when a later op failed, the applied prefix already mutated the
  // database — maintain the index for it regardless, or the chain would
  // silently serve answers for a database that no longer exists.
  if (effects.changed_weight_vars.empty() && effects.new_vars.empty()) {
    return applied;
  }
  if (server != nullptr) server->Pause();
  const Status maintained = MaintainIndex(effects);
  if (server != nullptr) {
    if (effects.structural()) server->InvalidatePlans();
    server->Resume();
  }
  MVDB_RETURN_NOT_OK(applied);
  return maintained;
}

Status QueryEngine::MaintainIndex(const DeltaEffects& effects) {
  const Database& db = mvdb_->db();
  // Refresh the marginal snapshot incrementally: db.var_prob is the same
  // WeightToProb the VarProbs walk applies, so the entries stay bit-equal
  // to a from-scratch snapshot.
  for (const VarId v : effects.changed_weight_vars) {
    var_probs_[static_cast<size_t>(v)] = db.var_prob(v);
  }
  if (!effects.structural()) {
    // Weight-only: lineages, plans, and W's structure are untouched —
    // w_lineage_ and the plan cache stay warm by design.
    return index_->ApplyWeightDelta(effects.changed_weight_vars, var_probs_);
  }

  // Structural: new variables exist. They were allocated sequentially, so
  // the snapshot grows by appending in VarId order.
  for (const VarId v : effects.new_vars) {
    MVDB_CHECK_EQ(static_cast<size_t>(v), var_probs_.size());
    var_probs_.push_back(db.var_prob(v));
  }
  const Ucq& w = mvdb_->W();
  auto is_prob = [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };
  // Dirty blocks: every new tuple, plus existing tuples whose weight moved
  // in the same batch — recompiling their blocks sidesteps any staleness
  // in a reused block's interior annotations.
  std::vector<TupleRef> touched;
  touched.reserve(effects.new_vars.size() +
                  effects.changed_weight_vars.size());
  for (const VarId v : effects.new_vars) touched.push_back(db.var_tuple(v));
  for (const VarId v : effects.changed_weight_vars) {
    touched.push_back(db.var_tuple(v));
  }
  const std::vector<std::string> dirty = DirtyBlockKeys(db, w, is_prob, touched);

  // Splice the new variables into the order and rebind to a fresh manager.
  // The old manager must stay alive until the index has migrated — the
  // delta reads it for the old level layout — hence the swap at the end.
  auto new_mgr = std::make_unique<BddManager>(
      InsertVarsIntoOrder(db, order_spec_, mgr_->order()->vars(),
                          effects.new_vars));
  new_mgr->set_scratch_synthesis(mgr_->scratch_synthesis());
  MVDB_RETURN_NOT_OK(
      index_->ApplyStructuralDelta(db, w, new_mgr.get(), var_probs_, dirty));
  mgr_ = std::move(new_mgr);
  // W's lineage gained derivations; cached plans were costed against the
  // old table statistics. Both rebuild lazily.
  w_lineage_.reset();
  if (plan_cache_ != nullptr) {
    plan_cache_ = std::make_unique<PlanCache>(plan_cache_->stats().capacity);
  }
  return Status::OK();
}

StatusOr<const Lineage*> QueryEngine::WLineage() {
  MVDB_RETURN_NOT_OK(Compile());
  if (!w_lineage_.has_value()) {
    MVDB_ASSIGN_OR_RETURN(Lineage lin, CachedEvalBoolean(mvdb_->W()));
    w_lineage_ = std::move(lin);
  }
  return &*w_lineage_;
}

StatusOr<std::unique_ptr<Server>> QueryEngine::Serve(
    const ServeOptions& options) {
  MVDB_RETURN_NOT_OK(Compile());
  return std::make_unique<Server>(&mvdb_->db(), index_.get(), options);
}

void QueryEngine::EnablePlanCache(size_t capacity) {
  if (plan_cache_ == nullptr || plan_cache_->stats().capacity != capacity) {
    plan_cache_ = std::make_unique<PlanCache>(capacity);
  }
}

Status QueryEngine::CachedEval(const Ucq& q, AnswerMap* out) {
  if (plan_cache_ == nullptr) {
    return Eval(mvdb_->db(), q, EvalOptions{}, out);
  }
  const UcqSignature sig = ComputeUcqSignature(q);
  auto tmpl = plan_cache_->GetOrPlan(mvdb_->db(), q, sig, EvalOptions{});
  MVDB_RETURN_NOT_OK(tmpl.status());
  EvalScratch scratch;
  // Execute with the query's own slot binding: bit-identical to Eval(q)
  // (the PR-5 template invariant), so caching never changes answers.
  return (*tmpl)->Execute(sig.slots, &scratch, out);
}

StatusOr<Lineage> QueryEngine::CachedEvalBoolean(const Ucq& q) {
  if (plan_cache_ == nullptr) return EvalBoolean(mvdb_->db(), q);
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("EvalBoolean requires a Boolean query");
  }
  AnswerMap answers;
  MVDB_RETURN_NOT_OK(CachedEval(q, &answers));
  if (answers.empty()) return Lineage();
  MVDB_CHECK_EQ(answers.size(), 1u);
  return answers.begin()->second.lineage;
}

StatusOr<ScaledDouble> QueryEngine::Numerator(const Lineage& q_lineage,
                                              const Ucq& q_grounded,
                                              Backend backend) {
  switch (backend) {
    case Backend::kBruteForce: {
      MVDB_ASSIGN_OR_RETURN(const Lineage* w_lin, WLineage());
      return ScaledDouble(BruteForceProbAndNot(q_lineage, *w_lin, var_probs_));
    }
    case Backend::kObddReuse: {
      const NodeId qb = mgr_->FromLineageSynthesis(q_lineage);
      // Loaded indexes defer the chain import; materialize it on first use.
      const NodeId not_w = index_->EnsureChainImported();
      return mgr_->ProbScaled(mgr_->And(qb, not_w), var_probs_);
    }
    case Backend::kMvIndex: {
      const NodeId qb = mgr_->FromLineageSynthesis(q_lineage);
      return index_->MVIntersectScaled(qb);
    }
    case Backend::kMvIndexCC: {
      const NodeId qb = mgr_->FromLineageSynthesis(q_lineage);
      return index_->CCMVIntersectScaled(qb);
    }
    case Backend::kSafePlan: {
      // P0(Q v W) - P0(W) via lifted inference on both queries. Runs in
      // plain double: the lifted recursion multiplies per-value factors
      // incrementally and is only exercised at modest scales (the DBLP W
      // is not safe; see the ablation bench).
      Ucq q_or_w = mvdb_->W();
      q_or_w.name = "QvW";
      AppendDisjunctsRenamed(&q_or_w, q_grounded, "q.");
      MVDB_ASSIGN_OR_RETURN(double p_qw,
                            LiftedProb(mvdb_->db(), q_or_w, var_probs_));
      MVDB_ASSIGN_OR_RETURN(double p_w,
                            LiftedProb(mvdb_->db(), mvdb_->W(), var_probs_));
      return ScaledDouble(p_qw - p_w);
    }
  }
  return Status::Internal("unknown backend");
}

StatusOr<std::vector<AnswerProb>> QueryEngine::Query(const Ucq& q,
                                                     Backend backend) {
  MVDB_RETURN_NOT_OK(Compile());
  AnswerMap answers;
  MVDB_RETURN_NOT_OK(CachedEval(q, &answers));
  const ScaledDouble denom = index_->ProbNotWScaled();
  if (denom.IsZero()) {
    return Status::Internal("P0(NOT W) = 0: the MVDB admits no possible world");
  }
  std::vector<AnswerProb> out;
  out.reserve(answers.size());
  for (const auto& [head, info] : answers) {
    Ucq grounded;
    if (backend == Backend::kSafePlan) {
      grounded = GroundHead(q, head);
    }
    MVDB_ASSIGN_OR_RETURN(ScaledDouble num,
                          Numerator(info.lineage, grounded, backend));
    // The huge common block factors cancel in the ratio (Eq. 5); only the
    // final probability is converted back to double.
    if (backend == Backend::kSafePlan || backend == Backend::kBruteForce) {
      // These backends computed the numerator in plain double, normalized
      // differently than the scaled denominator only if out of range —
      // which their scale restrictions preclude.
      out.push_back(AnswerProb{head, ClampProb(num.ToDouble() / denom.ToDouble())});
    } else {
      out.push_back(AnswerProb{head, ClampProb((num / denom).ToDouble())});
    }
  }
  return out;
}

StatusOr<double> QueryEngine::ConditionalBoolean(const Ucq& q1, const Ucq& q2,
                                                 Backend backend) {
  if (!q1.IsBoolean() || !q2.IsBoolean()) {
    return Status::InvalidArgument("ConditionalBoolean requires Boolean queries");
  }
  MVDB_RETURN_NOT_OK(Compile());
  MVDB_ASSIGN_OR_RETURN(Lineage lin1, CachedEvalBoolean(q1));
  MVDB_ASSIGN_OR_RETURN(Lineage lin2, CachedEvalBoolean(q2));
  // Numerators share the denominator P0(NOT W), which cancels:
  // P(Q1 | Q2) = P0(Q1 ^ Q2 ^ !W) / P0(Q2 ^ !W).
  const NodeId b1 = mgr_->FromLineageSynthesis(lin1);
  const NodeId b2 = mgr_->FromLineageSynthesis(lin2);
  const NodeId joint = mgr_->And(b1, b2);
  ScaledDouble num, den;
  switch (backend) {
    case Backend::kMvIndex:
      num = index_->MVIntersectScaled(joint);
      den = index_->MVIntersectScaled(b2);
      break;
    case Backend::kMvIndexCC:
      num = index_->CCMVIntersectScaled(joint);
      den = index_->CCMVIntersectScaled(b2);
      break;
    default: {
      const NodeId not_w = index_->EnsureChainImported();
      num = mgr_->ProbScaled(mgr_->And(joint, not_w), var_probs_);
      den = mgr_->ProbScaled(mgr_->And(b2, not_w), var_probs_);
    }
  }
  if (den.IsZero()) {
    return Status::InvalidArgument("conditioning event has probability zero");
  }
  return ClampProb((num / den).ToDouble());
}

StatusOr<QueryEngine::Explanation> QueryEngine::Explain(const Ucq& q) {
  MVDB_RETURN_NOT_OK(Compile());
  AnswerMap answers;
  MVDB_RETURN_NOT_OK(CachedEval(q, &answers));
  Explanation out{};
  out.index_blocks = index_->blocks().size();
  std::vector<VarId> all_vars;
  for (const auto& [head, info] : answers) {
    ++out.num_answers;
    out.lineage_clauses += info.lineage.size();
    out.uses_negation |= info.lineage.HasNegation();
    const auto vars = info.lineage.Vars();
    all_vars.insert(all_vars.end(), vars.begin(), vars.end());
  }
  std::sort(all_vars.begin(), all_vars.end());
  all_vars.erase(std::unique(all_vars.begin(), all_vars.end()), all_vars.end());
  out.lineage_vars = all_vars.size();
  // Blocks whose level range overlaps some lineage variable.
  for (const MvBlock& b : index_->blocks()) {
    for (VarId v : all_vars) {
      const int32_t l = mgr_->level_of_var(v);
      if (l >= b.first_level && l <= b.last_level) {
        ++out.blocks_touched;
        break;
      }
    }
  }
  // Safety of Q v W and W under lifted inference (tractability detection,
  // the paper's Theorem 1 corollary).
  Ucq q_or_w = mvdb_->W();
  Ucq boolean_q = q;
  boolean_q.head_vars.clear();
  AppendDisjunctsRenamed(&q_or_w, boolean_q, "q.");
  out.safe_with_views = LiftedProb(mvdb_->db(), q_or_w, var_probs_).ok() &&
                        LiftedProb(mvdb_->db(), mvdb_->W(), var_probs_).ok();
  return out;
}

StatusOr<std::vector<AnswerProb>> QueryEngine::QueryTopK(const Ucq& q, size_t k,
                                                         Backend backend) {
  MVDB_ASSIGN_OR_RETURN(std::vector<AnswerProb> answers, Query(q, backend));
  std::stable_sort(answers.begin(), answers.end(),
                   [](const AnswerProb& a, const AnswerProb& b) {
                     return a.prob > b.prob;
                   });
  if (answers.size() > k) answers.resize(k);
  return answers;
}

StatusOr<double> QueryEngine::QueryBoolean(const Ucq& q, Backend backend) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("QueryBoolean requires a Boolean query");
  }
  MVDB_RETURN_NOT_OK(Compile());
  MVDB_ASSIGN_OR_RETURN(Lineage lin, CachedEvalBoolean(q));
  const ScaledDouble denom = index_->ProbNotWScaled();
  if (denom.IsZero()) {
    return Status::Internal("P0(NOT W) = 0: the MVDB admits no possible world");
  }
  MVDB_ASSIGN_OR_RETURN(ScaledDouble num, Numerator(lin, q, backend));
  if (backend == Backend::kSafePlan || backend == Backend::kBruteForce) {
    return ClampProb(num.ToDouble() / denom.ToDouble());
  }
  return ClampProb((num / denom).ToDouble());
}

}  // namespace mvdb
