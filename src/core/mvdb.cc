#include "core/mvdb.h"

#include <cmath>

#include "query/eval.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace mvdb {
namespace {

/// Appends the disjuncts of `def` (head cleared) to the Boolean query `w`,
/// renaming variables apart. When `nv_relation` is non-null, each disjunct
/// additionally receives the atom NV(head terms) in front — Eq. 4's
/// NV_i(x) ^ Q_i(x).
void MergeIntoW(Ucq* w, const Ucq& def, const std::string* nv_relation,
                const std::string& view_name) {
  std::vector<int> remap(static_cast<size_t>(def.num_vars()), -1);
  auto map_var = [&](int v) {
    int& m = remap[static_cast<size_t>(v)];
    if (m < 0) {
      m = w->AddVar(view_name + "." + def.var_names[static_cast<size_t>(v)]);
    }
    return m;
  };
  auto map_term = [&](const Term& t) {
    return t.is_var() ? Term::Var(map_var(t.var)) : t;
  };
  for (const ConjunctiveQuery& cq : def.disjuncts) {
    ConjunctiveQuery out;
    if (nv_relation != nullptr) {
      Atom nv;
      nv.relation = *nv_relation;
      for (int hv : def.head_vars) nv.args.push_back(Term::Var(map_var(hv)));
      out.atoms.push_back(std::move(nv));
    }
    for (const Atom& a : cq.atoms) {
      Atom atom;
      atom.relation = a.relation;
      atom.negated = a.negated;
      for (const Term& t : a.args) atom.args.push_back(map_term(t));
      out.atoms.push_back(std::move(atom));
    }
    for (const Comparison& c : cq.comparisons) {
      out.comparisons.push_back(Comparison{map_term(c.lhs), c.op, map_term(c.rhs)});
    }
    w->disjuncts.push_back(std::move(out));
  }
}

}  // namespace

Status Mvdb::AddView(MarkoView view) {
  if (translated_) {
    return Status::InvalidArgument("cannot add views after Translate()");
  }
  if (view.definition().head_vars.empty()) {
    return Status::InvalidArgument("MarkoView '" + view.name() +
                                   "' must have head variables");
  }
  views_.push_back(std::move(view));
  return Status::OK();
}

Status Mvdb::Translate(const TranslateOptions& options) {
  if (translated_) return Status::AlreadyExists("Translate() already ran");
  base_num_vars_ = db_.num_vars();
  w_ = Ucq{};
  // Not `= "W"`: the char* assignment trips GCC 12's -Wrestrict false
  // positive on short literals (GCC PR105651) under -O2 -Werror.
  w_.name = std::string("W");

  view_tuples_.resize(views_.size());
  for (size_t i = 0; i < views_.size(); ++i) {
    const MarkoView& view = views_[i];

    // Materialize the view over I_poss with lineage + distinct counts. The
    // evaluation shards the view's driver atom over the thread budget; the
    // answer map is bit-identical for any thread count.
    AnswerMap answers;
    EvalOptions opts;
    opts.count_var = view.count_var();
    opts.num_threads = options.num_threads;
    MVDB_RETURN_NOT_OK(Eval(db_, view.definition(), opts, &answers));

    std::vector<ViewTuple>& tuples = view_tuples_[i];
    tuples.reserve(answers.size());
    bool all_denial = !answers.empty();
    if (options.fused_weights) {
      // Fused gather: one pass touches each materialized tuple exactly once
      // — the weight, its sanity check and the pure-denial detection ride
      // the same loop that moves the lineage out of the answer map. Same
      // weights, same first-error, same denial verdict as the staged path.
      for (auto& [head, info] : answers) {
        const double w =
            view.Weight(head, static_cast<int64_t>(info.count_values.size()));
        if (std::isinf(w)) {
          return Status::InvalidArgument("view '" + view.name() +
                                         "' produced an infinite weight");
        }
        if (w < 0.0 || std::isnan(w)) {
          return Status::InvalidArgument("view '" + view.name() +
                                         "' produced an invalid weight");
        }
        if (w != 0.0) all_denial = false;
        tuples.push_back(ViewTuple{head, w, std::move(info.lineage), kNoVar});
      }
    } else {
      // Staged path: gather tuples in answer (head) order, fan the
      // per-tuple weight computation out — each weight lands in its
      // tuple's slot, so the result is independent of scheduling — then
      // validate serially.
      std::vector<int64_t> counts;
      counts.reserve(answers.size());
      for (auto& [head, info] : answers) {
        counts.push_back(static_cast<int64_t>(info.count_values.size()));
        tuples.push_back(ViewTuple{head, 0.0, std::move(info.lineage), kNoVar});
      }
      ParallelForChunked(options.num_threads, tuples.size(), 1024,
                         [&](size_t t) {
                           tuples[t].weight = view.Weight(tuples[t].head,
                                                          counts[t]);
                         });
      for (const ViewTuple& t : tuples) {
        const double w = t.weight;
        if (std::isinf(w)) {
          return Status::InvalidArgument("view '" + view.name() +
                                         "' produced an infinite weight");
        }
        if (w < 0.0 || std::isnan(w)) {
          return Status::InvalidArgument("view '" + view.name() +
                                         "' produced an invalid weight");
        }
        if (w != 0.0) all_denial = false;
      }
    }

    if (tuples.empty()) continue;  // empty view: no features, no W disjunct

    if (all_denial) {
      // Paper's simplification: NV is deterministic and can be dropped from
      // W_i entirely; the constraint is the view body itself.
      MergeIntoW(&w_, view.definition(), nullptr, view.name());
      continue;
    }

    // Create the NV relation and populate it with w0 = (1-w)/w.
    const std::string nv_name = NvTableName(i);
    std::vector<std::string> attrs;
    for (int hv : view.definition().head_vars) {
      attrs.push_back(view.definition().var_names[static_cast<size_t>(hv)]);
    }
    MVDB_ASSIGN_OR_RETURN(Table * nv, db_.CreateTable(nv_name, attrs, true));
    (void)nv;
    for (ViewTuple& t : tuples) {
      if (t.weight == 1.0) continue;  // independence: no feature, no NV tuple
      const double w0 =
          (t.weight == 0.0) ? kCertainWeight : (1.0 - t.weight) / t.weight;
      t.nv_var = db_.InsertProbabilistic(nv_name, std::span<const Value>(t.head),
                                         w0);
    }
    MergeIntoW(&w_, view.definition(), &nv_name, view.name());
  }

  translated_ = true;
  return Status::OK();
}

StatusOr<GroundMln> Mvdb::ToGroundMln() const {
  if (!translated_) {
    return Status::InvalidArgument("call Translate() before ToGroundMln()");
  }
  std::vector<double> tuple_weights(base_num_vars_);
  for (size_t v = 0; v < base_num_vars_; ++v) {
    tuple_weights[v] = db_.var_weight(static_cast<VarId>(v));
  }
  GroundMln mln(base_num_vars_, std::move(tuple_weights));
  for (const auto& tuples : view_tuples_) {
    for (const ViewTuple& t : tuples) {
      if (t.weight == 1.0) continue;  // no-op feature
      mln.AddFeature(t.feature, t.weight);
    }
  }
  return mln;
}

}  // namespace mvdb
