#include "core/mvdb.h"

#include <cmath>
#include <map>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "query/eval.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace mvdb {
namespace {

/// Appends the disjuncts of `def` (head cleared) to the Boolean query `w`,
/// renaming variables apart. When `nv_relation` is non-null, each disjunct
/// additionally receives the atom NV(head terms) in front — Eq. 4's
/// NV_i(x) ^ Q_i(x).
void MergeIntoW(Ucq* w, const Ucq& def, const std::string* nv_relation,
                const std::string& view_name) {
  std::vector<int> remap(static_cast<size_t>(def.num_vars()), -1);
  auto map_var = [&](int v) {
    int& m = remap[static_cast<size_t>(v)];
    if (m < 0) {
      m = w->AddVar(view_name + "." + def.var_names[static_cast<size_t>(v)]);
    }
    return m;
  };
  auto map_term = [&](const Term& t) {
    return t.is_var() ? Term::Var(map_var(t.var)) : t;
  };
  for (const ConjunctiveQuery& cq : def.disjuncts) {
    ConjunctiveQuery out;
    if (nv_relation != nullptr) {
      Atom nv;
      nv.relation = *nv_relation;
      for (int hv : def.head_vars) nv.args.push_back(Term::Var(map_var(hv)));
      out.atoms.push_back(std::move(nv));
    }
    for (const Atom& a : cq.atoms) {
      Atom atom;
      atom.relation = a.relation;
      atom.negated = a.negated;
      for (const Term& t : a.args) atom.args.push_back(map_term(t));
      out.atoms.push_back(std::move(atom));
    }
    for (const Comparison& c : cq.comparisons) {
      out.comparisons.push_back(Comparison{map_term(c.lhs), c.op, map_term(c.rhs)});
    }
    w->disjuncts.push_back(std::move(out));
  }
}

}  // namespace

Status Mvdb::AddView(MarkoView view) {
  if (translated_) {
    return Status::InvalidArgument("cannot add views after Translate()");
  }
  if (view.definition().head_vars.empty()) {
    return Status::InvalidArgument("MarkoView '" + view.name() +
                                   "' must have head variables");
  }
  views_.push_back(std::move(view));
  return Status::OK();
}

Status Mvdb::Translate(const TranslateOptions& options) {
  if (translated_) return Status::AlreadyExists("Translate() already ran");
  base_num_vars_ = db_.num_vars();
  w_ = Ucq{};
  // Not `= "W"`: the char* assignment trips GCC 12's -Wrestrict false
  // positive on short literals (GCC PR105651) under -O2 -Werror.
  w_.name = std::string("W");

  view_tuples_.resize(views_.size());
  for (size_t i = 0; i < views_.size(); ++i) {
    const MarkoView& view = views_[i];

    // Materialize the view over I_poss with lineage + distinct counts. The
    // evaluation shards the view's driver atom over the thread budget; the
    // answer map is bit-identical for any thread count.
    AnswerMap answers;
    EvalOptions opts;
    opts.count_var = view.count_var();
    opts.num_threads = options.num_threads;
    MVDB_RETURN_NOT_OK(Eval(db_, view.definition(), opts, &answers));

    std::vector<ViewTuple>& tuples = view_tuples_[i];
    tuples.reserve(answers.size());
    bool all_denial = !answers.empty();
    if (options.fused_weights) {
      // Fused gather: one pass touches each materialized tuple exactly once
      // — the weight, its sanity check and the pure-denial detection ride
      // the same loop that moves the lineage out of the answer map. Same
      // weights, same first-error, same denial verdict as the staged path.
      for (auto& [head, info] : answers) {
        const double w =
            view.Weight(head, static_cast<int64_t>(info.count_values.size()));
        if (std::isinf(w)) {
          return Status::InvalidArgument("view '" + view.name() +
                                         "' produced an infinite weight");
        }
        if (w < 0.0 || std::isnan(w)) {
          return Status::InvalidArgument("view '" + view.name() +
                                         "' produced an invalid weight");
        }
        if (w != 0.0) all_denial = false;
        tuples.push_back(ViewTuple{head, w, std::move(info.lineage), kNoVar});
      }
    } else {
      // Staged path: gather tuples in answer (head) order, fan the
      // per-tuple weight computation out — each weight lands in its
      // tuple's slot, so the result is independent of scheduling — then
      // validate serially.
      std::vector<int64_t> counts;
      counts.reserve(answers.size());
      for (auto& [head, info] : answers) {
        counts.push_back(static_cast<int64_t>(info.count_values.size()));
        tuples.push_back(ViewTuple{head, 0.0, std::move(info.lineage), kNoVar});
      }
      ParallelForChunked(options.num_threads, tuples.size(), 1024,
                         [&](size_t t) {
                           tuples[t].weight = view.Weight(tuples[t].head,
                                                          counts[t]);
                         });
      for (const ViewTuple& t : tuples) {
        const double w = t.weight;
        if (std::isinf(w)) {
          return Status::InvalidArgument("view '" + view.name() +
                                         "' produced an infinite weight");
        }
        if (w < 0.0 || std::isnan(w)) {
          return Status::InvalidArgument("view '" + view.name() +
                                         "' produced an invalid weight");
        }
        if (w != 0.0) all_denial = false;
      }
    }

    if (tuples.empty()) continue;  // empty view: no features, no W disjunct

    if (all_denial) {
      // Paper's simplification: NV is deterministic and can be dropped from
      // W_i entirely; the constraint is the view body itself.
      MergeIntoW(&w_, view.definition(), nullptr, view.name());
      continue;
    }

    // Create the NV relation and populate it with w0 = (1-w)/w.
    const std::string nv_name = NvTableName(i);
    std::vector<std::string> attrs;
    for (int hv : view.definition().head_vars) {
      attrs.push_back(view.definition().var_names[static_cast<size_t>(hv)]);
    }
    MVDB_ASSIGN_OR_RETURN(Table * nv, db_.CreateTable(nv_name, attrs, true));
    (void)nv;
    for (ViewTuple& t : tuples) {
      if (t.weight == 1.0) continue;  // independence: no feature, no NV tuple
      const double w0 =
          (t.weight == 0.0) ? kCertainWeight : (1.0 - t.weight) / t.weight;
      t.nv_var = db_.InsertProbabilistic(nv_name, std::span<const Value>(t.head),
                                         w0);
    }
    MergeIntoW(&w_, view.definition(), &nv_name, view.name());
  }

  translated_ = true;
  return Status::OK();
}

Status Mvdb::ApplyBaseDelta(const std::vector<DeltaOp>& ops,
                            DeltaEffects* effects) {
  *effects = DeltaEffects{};
  if (!translated_) {
    return Status::InvalidArgument(
        "ApplyBaseDelta maintains the translated INDB; call Translate() first");
  }
  for (const DeltaOp& op : ops) {
    MVDB_RETURN_NOT_OK(ApplyOneDelta(op, effects));
  }
  return Status::OK();
}

Status Mvdb::ApplyOneDelta(const DeltaOp& op, DeltaEffects* effects) {
  Table* t = db_.FindMutable(op.table);
  if (t == nullptr) {
    return Status::NotFound("no such table: " + op.table);
  }
  for (size_t i = 0; i < views_.size(); ++i) {
    if (op.table == NvTableName(i)) {
      return Status::InvalidArgument(
          "NV relations are maintained by the translation; mutate the base "
          "tables instead: " + op.table);
    }
  }
  if (!t->probabilistic()) {
    return Status::Unimplemented(
        "delta on deterministic table '" + op.table +
        "': aggregate counts range over deterministic tables, so such a "
        "change can reshape every view weight; rebuild instead");
  }
  if (op.values.size() != t->arity()) {
    return Status::InvalidArgument(
        "arity mismatch for " + op.table + ": got " +
        std::to_string(op.values.size()) + ", want " +
        std::to_string(t->arity()));
  }
  const double w =
      op.kind == DeltaOp::Kind::kDelete ? 0.0 : op.weight;
  if (std::isnan(w) || std::isinf(w) || w < 0.0) {
    return Status::InvalidArgument("invalid tuple weight for " + op.table);
  }

  if (op.kind != DeltaOp::Kind::kInsert) {
    RowId row;
    if (!t->FindRow(std::span<const Value>(op.values), &row)) {
      return Status::NotFound("no such tuple in " + op.table);
    }
    const VarId v = t->var(row);
    if (db_.var_weight(v) == w) return Status::OK();  // no-op
    // Weight moves never touch view output: materialization, lineage and
    // counts all range over I_poss (Section 2.4), and a tombstoned tuple
    // stays *possible* — only its marginal drops to zero.
    db_.set_var_weight(v, w);
    effects->changed_weight_vars.push_back(v);
    effects->touched_rows.emplace_back(op.table, row);
    return Status::OK();
  }

  // Insert: the tuple must be new (upserts decompose into find + update).
  {
    RowId row;
    if (t->FindRow(std::span<const Value>(op.values), &row)) {
      return Status::AlreadyExists("tuple already exists in " + op.table +
                                   "; use a weight update");
    }
  }
  const VarId v =
      db_.InsertProbabilistic(op.table, std::span<const Value>(op.values), w);
  effects->new_vars.push_back(v);
  effects->touched_rows.emplace_back(
      op.table, static_cast<RowId>(t->size() - 1));
  for (size_t i = 0; i < views_.size(); ++i) {
    MVDB_RETURN_NOT_OK(MaintainViewForInsert(
        i, op.table, std::span<const Value>(op.values), effects));
  }
  return Status::OK();
}

Status Mvdb::MaintainViewForInsert(size_t view_index, const std::string& table,
                                   std::span<const Value> values,
                                   DeltaEffects* effects) {
  const MarkoView& view = views_[view_index];
  const Ucq& def = view.definition();

  // Stage 1: candidate discovery. Any head whose Q_i(t) derivations gained
  // the new tuple uses it at some atom of some disjunct, with that atom's
  // terms unifying against the tuple — so evaluating each such disjunct
  // with the unification pinned by equality predicates enumerates a
  // superset of the affected heads.
  std::set<std::vector<Value>> candidates;
  for (const ConjunctiveQuery& cq : def.disjuncts) {
    for (const Atom& a : cq.atoms) {
      if (a.relation != table) continue;
      if (a.negated) {
        return Status::Unimplemented(
            "view '" + view.name() + "' reads " + table +
            " under negation; deletions from derivations need a rebuild");
      }
      std::map<int, Value> binding;
      bool match = true;
      for (size_t k = 0; k < a.args.size() && match; ++k) {
        const Term& arg = a.args[k];
        if (!arg.is_var()) {
          match = arg.constant == values[k];
        } else {
          const auto [it, inserted] = binding.emplace(arg.var, values[k]);
          match = inserted || it->second == values[k];
        }
      }
      if (!match) continue;
      Ucq restricted;
      restricted.name = def.name;
      restricted.head_vars = def.head_vars;
      restricted.var_names = def.var_names;
      restricted.disjuncts.push_back(cq);
      for (const auto& [var, value] : binding) {
        restricted.disjuncts[0].comparisons.push_back(
            Comparison{Term::Var(var), CmpOp::kEq, Term::Const(value)});
      }
      AnswerMap answers;
      MVDB_RETURN_NOT_OK(Eval(db_, restricted, EvalOptions{}, &answers));
      for (const auto& [head, info] : answers) candidates.insert(head);
    }
  }
  if (candidates.empty()) return Status::OK();

  std::vector<ViewTuple>& tuples = view_tuples_[view_index];
  if (head_index_.size() < views_.size()) head_index_.resize(views_.size());
  std::map<std::vector<Value>, size_t>& index = head_index_[view_index];
  if (index.empty() && !tuples.empty()) {
    for (size_t j = 0; j < tuples.size(); ++j) index.emplace(tuples[j].head, j);
  }

  const std::string nv_name = NvTableName(view_index);
  const bool has_nv_table = db_.Find(nv_name) != nullptr;

  // Stage 2: point-wise reconciliation, in the candidates' deterministic
  // order. Each head is re-grounded over the full definition, yielding its
  // updated lineage and distinct count, and the stored ViewTuple / NV
  // weight is brought in line with what Translate() would now produce.
  for (const std::vector<Value>& head : candidates) {
    const Ucq grounded = GroundHead(def, head);
    AnswerMap answers;
    EvalOptions opts;
    opts.count_var = view.count_var();
    MVDB_RETURN_NOT_OK(Eval(db_, grounded, opts, &answers));
    if (answers.empty()) continue;  // candidate superset: not derivable
    AnswerInfo& info = answers.begin()->second;
    const double w = view.Weight(
        head, static_cast<int64_t>(info.count_values.size()));
    if (std::isinf(w)) {
      return Status::InvalidArgument("view '" + view.name() +
                                     "' produced an infinite weight");
    }
    if (w < 0.0 || std::isnan(w)) {
      return Status::InvalidArgument("view '" + view.name() +
                                     "' produced an invalid weight");
    }

    const auto it = index.find(head);
    if (it == index.end()) {
      // New view tuple. An empty view has no W disjunct and an all-denial
      // view has no NV relation — a first tuple (or a weighted tuple in a
      // denial view) would change W's shape, not just its tables.
      if (tuples.empty()) {
        return Status::Unimplemented(
            "view '" + view.name() +
            "' transitions empty -> nonempty: W gains a disjunct; rebuild");
      }
      if (!has_nv_table && w != 0.0) {
        return Status::Unimplemented(
            "all-denial view '" + view.name() +
            "' gains a weighted tuple: W's simplified form changes; rebuild");
      }
      ViewTuple vt{head, w, std::move(info.lineage), kNoVar};
      if (has_nv_table && w != 1.0) {
        const double w0 = w == 0.0 ? kCertainWeight : (1.0 - w) / w;
        vt.nv_var = db_.InsertProbabilistic(
            nv_name, std::span<const Value>(head), w0);
        effects->new_vars.push_back(vt.nv_var);
      }
      index.emplace(head, tuples.size());
      tuples.push_back(std::move(vt));
      continue;
    }

    // Existing view tuple: the lineage always absorbs the new derivations;
    // the weight (and its NV image) only when the count moved it.
    ViewTuple& vt = tuples[it->second];
    vt.feature = std::move(info.lineage);
    if (w == vt.weight) continue;
    if (vt.nv_var != kNoVar) {
      // w == 1 maps to NV weight 0 (marginal 0): the feature can never
      // fire, which is observationally the translation's "no NV tuple".
      const double w0 = w == 0.0 ? kCertainWeight : (1.0 - w) / w;
      db_.set_var_weight(vt.nv_var, w0);
      effects->changed_weight_vars.push_back(vt.nv_var);
    } else if (has_nv_table) {
      // Old weight was 1 (independence: no NV tuple existed); the head now
      // needs one.
      const double w0 = w == 0.0 ? kCertainWeight : (1.0 - w) / w;
      vt.nv_var = db_.InsertProbabilistic(
          nv_name, std::span<const Value>(head), w0);
      effects->new_vars.push_back(vt.nv_var);
    } else {
      return Status::Unimplemented(
          "all-denial view '" + view.name() +
          "' tuple moves off weight 0: W's simplified form changes; rebuild");
    }
    vt.weight = w;
  }
  return Status::OK();
}

StatusOr<GroundMln> Mvdb::ToGroundMln() const {
  if (!translated_) {
    return Status::InvalidArgument("call Translate() before ToGroundMln()");
  }
  std::vector<double> tuple_weights(base_num_vars_);
  for (size_t v = 0; v < base_num_vars_; ++v) {
    tuple_weights[v] = db_.var_weight(static_cast<VarId>(v));
  }
  GroundMln mln(base_num_vars_, std::move(tuple_weights));
  for (const auto& tuples : view_tuples_) {
    for (const ViewTuple& t : tuples) {
      if (t.weight == 1.0) continue;  // no-op feature
      mln.AddFeature(t.feature, t.weight);
    }
  }
  return mln;
}

}  // namespace mvdb
