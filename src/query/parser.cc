#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>

namespace mvdb {
namespace {

enum class TokKind {
  kIdent, kNumber, kString, kLParen, kRParen, kComma, kImplies, kDot,
  kLBracket, kRBracket, kCmp, kEnd,
};

struct Token {
  TokKind kind;
  std::string text;   // ident / string contents / cmp operator
  double number = 0;  // kNumber
  size_t pos = 0;
};

/// Hand-written tokenizer; `%` comments run to end of line.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    const size_t n = text_.size();
    while (i < n) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
      if (c == '%') {  // comment
        while (i < n && text_[i] != '\n') ++i;
        continue;
      }
      if (c == '(') { out->push_back({TokKind::kLParen, "(", 0, i}); ++i; continue; }
      if (c == ')') { out->push_back({TokKind::kRParen, ")", 0, i}); ++i; continue; }
      if (c == ',') { out->push_back({TokKind::kComma, ",", 0, i}); ++i; continue; }
      if (c == '.') { out->push_back({TokKind::kDot, ".", 0, i}); ++i; continue; }
      if (c == '[') { out->push_back({TokKind::kLBracket, "[", 0, i}); ++i; continue; }
      if (c == ']') { out->push_back({TokKind::kRBracket, "]", 0, i}); ++i; continue; }
      if (c == ':' && i + 1 < n && text_[i + 1] == '-') {
        out->push_back({TokKind::kImplies, ":-", 0, i});
        i += 2;
        continue;
      }
      if (c == '<' && i + 1 < n && text_[i + 1] == '>') {
        out->push_back({TokKind::kCmp, "!=", 0, i});
        i += 2;
        continue;
      }
      if (c == '!' && i + 1 < n && text_[i + 1] == '=') {
        out->push_back({TokKind::kCmp, "!=", 0, i});
        i += 2;
        continue;
      }
      if (c == '<' || c == '>') {
        std::string op(1, c);
        if (i + 1 < n && text_[i + 1] == '=') { op += '='; ++i; }
        out->push_back({TokKind::kCmp, op, 0, i});
        ++i;
        continue;
      }
      if (c == '=') { out->push_back({TokKind::kCmp, "=", 0, i}); ++i; continue; }
      if (c == '"' || c == '\'') {
        const char quote = c;
        size_t j = i + 1;
        std::string s;
        while (j < n && text_[j] != quote) { s += text_[j]; ++j; }
        if (j >= n) return Status::ParseError("unterminated string literal");
        out->push_back({TokKind::kString, std::move(s), 0, i});
        i = j + 1;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        size_t j = i;
        if (text_[j] == '-') ++j;
        while (j < n && (std::isdigit(static_cast<unsigned char>(text_[j])) ||
                         text_[j] == '.' || text_[j] == 'e' || text_[j] == 'E' ||
                         ((text_[j] == '-' || text_[j] == '+') && j > i &&
                          (text_[j - 1] == 'e' || text_[j - 1] == 'E')))) {
          ++j;
        }
        // A trailing '.' is the rule terminator, not part of the number.
        if (j > i && text_[j - 1] == '.') --j;
        Token t{TokKind::kNumber, std::string(text_.substr(i, j - i)), 0, i};
        t.number = std::strtod(t.text.c_str(), nullptr);
        out->push_back(std::move(t));
        i = j;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                         text_[j] == '_')) {
          ++j;
        }
        out->push_back({TokKind::kIdent, std::string(text_.substr(i, j - i)), 0, i});
        i = j;
        continue;
      }
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(i));
    }
    out->push_back({TokKind::kEnd, "", 0, n});
    return Status::OK();
  }

 private:
  std::string_view text_;
};

struct RawRule {
  std::string head_name;
  std::vector<std::string> head_vars;
  std::optional<double> weight;
  ConjunctiveQuery body;                       // terms reference rule_vars
  std::vector<std::string> rule_vars;          // per-rule variable names
};

/// Recursive-descent parser producing RawRules, later grouped into UCQs.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Interner* dict)
      : tokens_(std::move(tokens)), dict_(dict) {}

  Status ParseRules(std::vector<RawRule>* out) {
    while (Peek().kind != TokKind::kEnd) {
      RawRule rule;
      MVDB_RETURN_NOT_OK(ParseRule(&rule));
      out->push_back(std::move(rule));
    }
    return Status::OK();
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  Status Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::ParseError(std::string("expected ") + what + " near '" +
                                Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  int VarId(RawRule* rule, const std::string& name) {
    auto it = var_ids_.find(name);
    if (it != var_ids_.end()) return it->second;
    int id = static_cast<int>(rule->rule_vars.size());
    rule->rule_vars.push_back(name);
    var_ids_.emplace(name, id);
    return id;
  }

  /// Variables start lowercase or with '_' by datalog convention? The paper
  /// mixes cases freely (aid1, Student). We use: an identifier in an atom
  /// argument or comparison is a variable; constants must be numbers or
  /// quoted strings. Relation names only appear before '('.
  Status ParseTerm(RawRule* rule, Term* out) {
    const Token& t = Peek();
    if (t.kind == TokKind::kIdent) {
      *out = Term::Var(VarId(rule, t.text));
      ++pos_;
      return Status::OK();
    }
    if (t.kind == TokKind::kNumber) {
      *out = Term::Const(static_cast<Value>(t.number));
      ++pos_;
      return Status::OK();
    }
    if (t.kind == TokKind::kString) {
      *out = Term::Const(dict_->Intern(t.text));
      ++pos_;
      return Status::OK();
    }
    return Status::ParseError("expected term near '" + t.text + "'");
  }

  Status ParseRule(RawRule* rule) {
    var_ids_.clear();
    if (Peek().kind != TokKind::kIdent) {
      return Status::ParseError("expected rule head near '" + Peek().text + "'");
    }
    rule->head_name = Next().text;
    if (Peek().kind == TokKind::kLParen) {
      ++pos_;
      if (Peek().kind != TokKind::kRParen) {
        while (true) {
          if (Peek().kind != TokKind::kIdent) {
            return Status::ParseError("head arguments must be variables");
          }
          rule->head_vars.push_back(Next().text);
          if (Peek().kind == TokKind::kComma) { ++pos_; continue; }
          break;
        }
      }
      MVDB_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
    }
    if (Peek().kind == TokKind::kLBracket) {
      ++pos_;
      if (Peek().kind != TokKind::kNumber) {
        return Status::ParseError("expected numeric weight in [...]");
      }
      rule->weight = Next().number;
      MVDB_RETURN_NOT_OK(Expect(TokKind::kRBracket, "']'"));
    }
    MVDB_RETURN_NOT_OK(Expect(TokKind::kImplies, "':-'"));
    // Register head variables first so their ids are stable across rules.
    for (const std::string& v : rule->head_vars) VarId(rule, v);
    while (true) {
      MVDB_RETURN_NOT_OK(ParseLiteral(rule));
      if (Peek().kind == TokKind::kComma) { ++pos_; continue; }
      break;
    }
    if (Peek().kind == TokKind::kDot) ++pos_;
    return Status::OK();
  }

  Status ParseLiteral(RawRule* rule) {
    // Negation prefix: `not R(...)`.
    bool negated = false;
    if (Peek().kind == TokKind::kIdent && Peek().text == "not" &&
        tokens_[pos_ + 1].kind == TokKind::kIdent &&
        tokens_[pos_ + 2].kind == TokKind::kLParen) {
      negated = true;
      ++pos_;
    }
    // Lookahead: IDENT '(' => atom; otherwise comparison.
    if (Peek().kind == TokKind::kIdent &&
        tokens_[pos_ + 1].kind == TokKind::kLParen) {
      Atom atom;
      atom.negated = negated;
      atom.relation = Next().text;
      ++pos_;  // '('
      if (Peek().kind != TokKind::kRParen) {
        while (true) {
          Term t;
          MVDB_RETURN_NOT_OK(ParseTerm(rule, &t));
          atom.args.push_back(t);
          if (Peek().kind == TokKind::kComma) { ++pos_; continue; }
          break;
        }
      }
      MVDB_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      rule->body.atoms.push_back(std::move(atom));
      return Status::OK();
    }
    Comparison cmp;
    MVDB_RETURN_NOT_OK(ParseTerm(rule, &cmp.lhs));
    if (Peek().kind != TokKind::kCmp) {
      return Status::ParseError("expected comparison operator near '" +
                                Peek().text + "'");
    }
    const std::string op = Next().text;
    if (op == "=") cmp.op = CmpOp::kEq;
    else if (op == "!=") cmp.op = CmpOp::kNe;
    else if (op == "<") cmp.op = CmpOp::kLt;
    else if (op == "<=") cmp.op = CmpOp::kLe;
    else if (op == ">") cmp.op = CmpOp::kGt;
    else if (op == ">=") cmp.op = CmpOp::kGe;
    else return Status::ParseError("unknown comparison '" + op + "'");
    MVDB_RETURN_NOT_OK(ParseTerm(rule, &cmp.rhs));
    rule->body.comparisons.push_back(cmp);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Interner* dict_;
  std::unordered_map<std::string, int> var_ids_;
};

/// Merges one rule into the UCQ under construction, remapping rule-local
/// variable ids so head variables share ids across disjuncts and body
/// variables are renamed apart.
Status MergeRule(const RawRule& rule, Ucq* ucq) {
  if (rule.head_vars.size() != ucq->head_vars.size()) {
    return Status::ParseError("rules for '" + rule.head_name +
                              "' disagree on head arity");
  }
  std::vector<int> remap(rule.rule_vars.size(), -1);
  for (size_t i = 0; i < rule.head_vars.size(); ++i) {
    // Head var i of this rule maps to the UCQ's shared head var i.
    remap[static_cast<size_t>(i)] = ucq->head_vars[i];
  }
  auto map_term = [&](Term t) -> Term {
    if (!t.is_var()) return t;
    int& m = remap[static_cast<size_t>(t.var)];
    if (m < 0) m = ucq->AddVar(rule.rule_vars[static_cast<size_t>(t.var)]);
    return Term::Var(m);
  };
  ConjunctiveQuery cq;
  for (const Atom& a : rule.body.atoms) {
    Atom out;
    out.relation = a.relation;
    out.negated = a.negated;
    for (const Term& t : a.args) out.args.push_back(map_term(t));
    cq.atoms.push_back(std::move(out));
  }
  for (const Comparison& c : rule.body.comparisons) {
    cq.comparisons.push_back(Comparison{map_term(c.lhs), c.op, map_term(c.rhs)});
  }
  ucq->disjuncts.push_back(std::move(cq));
  if (rule.weight.has_value()) {
    if (ucq->weight.has_value() && *ucq->weight != *rule.weight) {
      return Status::ParseError("rules for '" + rule.head_name +
                                "' carry different weights");
    }
    ucq->weight = rule.weight;
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<Ucq>> ParseProgram(std::string_view text, Interner* dict) {
  std::vector<Token> tokens;
  MVDB_RETURN_NOT_OK(Lexer(text).Tokenize(&tokens));
  std::vector<RawRule> rules;
  MVDB_RETURN_NOT_OK(Parser(std::move(tokens), dict).ParseRules(&rules));
  if (rules.empty()) return Status::ParseError("no rules found");

  std::vector<Ucq> ucqs;
  std::map<std::string, size_t> by_name;
  for (const RawRule& rule : rules) {
    auto it = by_name.find(rule.head_name);
    if (it == by_name.end()) {
      Ucq ucq;
      ucq.name = rule.head_name;
      for (const std::string& hv : rule.head_vars) {
        ucq.head_vars.push_back(ucq.AddVar(hv));
      }
      by_name.emplace(rule.head_name, ucqs.size());
      ucqs.push_back(std::move(ucq));
      it = by_name.find(rule.head_name);
    }
    MVDB_RETURN_NOT_OK(MergeRule(rule, &ucqs[it->second]));
  }
  return ucqs;
}

StatusOr<Ucq> ParseUcq(std::string_view text, Interner* dict) {
  MVDB_ASSIGN_OR_RETURN(std::vector<Ucq> ucqs, ParseProgram(text, dict));
  if (ucqs.size() != 1) {
    return Status::ParseError("expected a single UCQ, found " +
                              std::to_string(ucqs.size()));
  }
  return std::move(ucqs[0]);
}

}  // namespace mvdb
