// Copyright 2026 The MarkoView Authors.
//
// A small datalog-style parser for UCQs and MarkoView definitions, mirroring
// the notation of the paper (Fig. 1 / Fig. 2):
//
//   Q(aid) :- Student(aid), Advisor(aid, a1), Author(a1, n), n = "Madden".
//   V2(a1, a2, a3)[0] :- Advisor(a1, a2), Advisor(a1, a3), a2 != a3.
//   W :- R(x), S(x, y).
//
// Grammar (informal):
//   program  := rule+
//   rule     := head [ "[" number "]" ] ":-" body "."?
//   head     := IDENT [ "(" varlist ")" ]
//   body     := literal ("," literal)*
//   literal  := IDENT "(" termlist ")" | term cmp term
//   term     := IDENT (variable) | NUMBER | STRING
//   cmp      := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//
// Multiple rules with the same head name and arity form the disjuncts of one
// UCQ. String constants are interned through the supplied Interner so they
// compare as integers inside the engine.

#ifndef MVDB_QUERY_PARSER_H_
#define MVDB_QUERY_PARSER_H_

#include <string_view>
#include <vector>

#include "query/ast.h"
#include "util/interner.h"
#include "util/status.h"

namespace mvdb {

/// Parses a whole program (one or more rules, possibly several UCQs).
/// Rules are grouped by head name into UCQs, in first-appearance order.
StatusOr<std::vector<Ucq>> ParseProgram(std::string_view text, Interner* dict);

/// Parses exactly one UCQ (all rules must share one head). Convenience for
/// tests and examples.
StatusOr<Ucq> ParseUcq(std::string_view text, Interner* dict);

}  // namespace mvdb

#endif  // MVDB_QUERY_PARSER_H_
