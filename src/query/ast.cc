#include "query/ast.h"

#include <span>

#include "util/logging.h"

namespace mvdb {
namespace {

Term SubstTerm(const Term& t, int var, Value value) {
  if (t.is_var() && t.var == var) return Term::Const(value);
  return t;
}

}  // namespace

Ucq Substitute(const Ucq& q, int var, Value value) {
  Ucq out = q;
  for (auto& cq : out.disjuncts) {
    for (auto& atom : cq.atoms) {
      for (auto& arg : atom.args) arg = SubstTerm(arg, var, value);
    }
    for (auto& cmp : cq.comparisons) {
      cmp.lhs = SubstTerm(cmp.lhs, var, value);
      cmp.rhs = SubstTerm(cmp.rhs, var, value);
    }
  }
  return out;
}

void SubstituteInDisjunct(Ucq* q, size_t disjunct, int var, Value value) {
  MVDB_CHECK_LT(disjunct, q->disjuncts.size());
  ConjunctiveQuery& cq = q->disjuncts[disjunct];
  for (auto& atom : cq.atoms) {
    for (auto& arg : atom.args) arg = SubstTerm(arg, var, value);
  }
  for (auto& cmp : cq.comparisons) {
    cmp.lhs = SubstTerm(cmp.lhs, var, value);
    cmp.rhs = SubstTerm(cmp.rhs, var, value);
  }
}

Ucq GroundHead(const Ucq& q, std::span<const Value> head_values) {
  MVDB_CHECK_EQ(head_values.size(), q.head_vars.size());
  Ucq out = q;
  for (size_t i = 0; i < head_values.size(); ++i) {
    out = Substitute(out, q.head_vars[i], head_values[i]);
  }
  out.head_vars.clear();
  return out;
}

void AppendDisjunctsRenamed(Ucq* dst, const Ucq& src, const std::string& prefix) {
  std::vector<int> remap(static_cast<size_t>(src.num_vars()), -1);
  auto map_term = [&](const Term& t) -> Term {
    if (!t.is_var()) return t;
    int& m = remap[static_cast<size_t>(t.var)];
    if (m < 0) {
      m = dst->AddVar(prefix + src.var_names[static_cast<size_t>(t.var)]);
    }
    return Term::Var(m);
  };
  for (const ConjunctiveQuery& cq : src.disjuncts) {
    ConjunctiveQuery out;
    for (const Atom& a : cq.atoms) {
      Atom atom;
      atom.relation = a.relation;
      atom.negated = a.negated;
      for (const Term& t : a.args) atom.args.push_back(map_term(t));
      out.atoms.push_back(std::move(atom));
    }
    for (const Comparison& c : cq.comparisons) {
      out.comparisons.push_back(Comparison{map_term(c.lhs), c.op, map_term(c.rhs)});
    }
    dst->disjuncts.push_back(std::move(out));
  }
}

std::string ToString(const Ucq& q) {
  auto term = [&](const Term& t) {
    if (t.is_var()) {
      return t.var < q.num_vars() ? q.var_names[static_cast<size_t>(t.var)]
                                  : "v" + std::to_string(t.var);
    }
    return std::to_string(t.constant);
  };
  auto cmp_op = [](CmpOp op) {
    switch (op) {
      case CmpOp::kEq: return "=";
      case CmpOp::kNe: return "!=";
      case CmpOp::kLt: return "<";
      case CmpOp::kLe: return "<=";
      case CmpOp::kGt: return ">";
      case CmpOp::kGe: return ">=";
    }
    return "?";
  };
  std::string out = q.name.empty() ? "Q" : q.name;
  out += "(";
  for (size_t i = 0; i < q.head_vars.size(); ++i) {
    if (i) out += ",";
    out += q.var_names[static_cast<size_t>(q.head_vars[i])];
  }
  out += ") :- ";
  for (size_t d = 0; d < q.disjuncts.size(); ++d) {
    if (d) out += " v ";
    const auto& cq = q.disjuncts[d];
    bool first = true;
    for (const auto& atom : cq.atoms) {
      if (!first) out += ", ";
      first = false;
      if (atom.negated) out += "not ";
      out += atom.relation + "(";
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (i) out += ",";
        out += term(atom.args[i]);
      }
      out += ")";
    }
    for (const auto& c : cq.comparisons) {
      if (!first) out += ", ";
      first = false;
      out += term(c.lhs);
      out += " ";
      out += cmp_op(c.op);
      out += " ";
      out += term(c.rhs);
    }
  }
  return out;
}

}  // namespace mvdb
