// Copyright 2026 The MarkoView Authors.
//
// UCQ evaluation over a Database, producing per-answer lineage: the role
// Postgres plays in the paper's prototype ("round trip call to Postgres, to
// compute the query's lineage", Section 5.4).
//
// Two interchangeable execution strategies produce identical (canonical)
// answers:
//
//   kPlanned (default) — cost-based join ordering driven by per-column
//     distinct counts (Table::DistinctCount): each step picks the atom whose
//     index probe visits the fewest rows, probing the most selective bound
//     column of the table's hash-grouped index — an index-nested-loop join
//     whose probe side is exactly a hash join's build table. The driver
//     (first) atom can additionally be sharded across worker threads
//     (EvalOptions::num_threads) with per-worker result maps merged
//     deterministically, so the output is bit-identical for any thread
//     count.
//
//   kLegacyScan — the original greedy bound-argument-count ordering with
//     first-bound-column probes. Kept as the reference implementation the
//     property tests compare against (it mis-orders joins whose bound
//     columns have low selectivity, e.g. a 12-value institute column, which
//     is what made the 1M-author translation scan-heavy). Always serial.
//
// Every join result emits one lineage clause containing the Boolean
// variables of the probabilistic tuples it used; answers are canonicalized
// (Lineage::Normalize) before returning, which is what makes the two
// strategies and every thread count agree bit-for-bit.

#ifndef MVDB_QUERY_EVAL_H_
#define MVDB_QUERY_EVAL_H_

#include <map>
#include <set>
#include <vector>

#include "prob/lineage.h"
#include "query/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// Per-answer evaluation result.
struct AnswerInfo {
  Lineage lineage;
  /// Distinct bindings of EvalOptions::count_var within this head group —
  /// the `count(pid)` style aggregate the paper's weight expressions use.
  std::set<Value> count_values;
};

/// Answers keyed by head tuple (deterministic order for reproducibility).
using AnswerMap = std::map<std::vector<Value>, AnswerInfo>;

/// Join-order / probe strategy (see file comment).
enum class EvalStrategy {
  kPlanned,     ///< cost-based order, selective probes, parallelizable
  kLegacyScan,  ///< original greedy order, first-bound-column probes, serial
};

struct EvalOptions {
  /// Variable id whose distinct bindings are counted per head group, or -1.
  int count_var = -1;
  EvalStrategy strategy = EvalStrategy::kPlanned;
  /// Worker threads sharding the driver atom (kPlanned only; kLegacyScan
  /// ignores it). 1 = serial; <= 0 = one per hardware thread. The answer
  /// map, lineages and count sets are bit-identical for every value.
  int num_threads = 1;
};

/// Evaluates a UCQ over the set of *possible* tuples (I_poss): probabilistic
/// tables are treated as containing all their possible tuples, which is
/// exactly the instance lineage is defined over (Section 2.4).
Status Eval(const Database& db, const Ucq& q, const EvalOptions& opts,
            AnswerMap* out);

/// Evaluates a Boolean UCQ, returning its lineage (false lineage if no
/// derivations exist).
StatusOr<Lineage> EvalBoolean(const Database& db, const Ucq& q);

}  // namespace mvdb

#endif  // MVDB_QUERY_EVAL_H_
