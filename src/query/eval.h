// Copyright 2026 The MarkoView Authors.
//
// UCQ evaluation over a Database, producing per-answer lineage: the role
// Postgres plays in the paper's prototype ("round trip call to Postgres, to
// compute the query's lineage", Section 5.4).
//
// Two interchangeable execution strategies produce identical (canonical)
// answers:
//
//   kPlanned (default) — cost-based join ordering driven by per-column
//     distinct counts (Table::DistinctCount): each step picks the atom whose
//     index probe visits the fewest rows, probing the most selective bound
//     column of the table's hash-grouped index — an index-nested-loop join
//     whose probe side is exactly a hash join's build table. The driver
//     (first) atom can additionally be sharded across worker threads
//     (EvalOptions::num_threads) with per-worker result maps merged
//     deterministically, so the output is bit-identical for any thread
//     count.
//
//   kLegacyScan — the original greedy bound-argument-count ordering with
//     first-bound-column probes. Kept as the reference implementation the
//     property tests compare against (it mis-orders joins whose bound
//     columns have low selectivity, e.g. a 12-value institute column, which
//     is what made the 1M-author translation scan-heavy). Always serial.
//
// Every join result emits one lineage clause containing the Boolean
// variables of the probabilistic tuples it used; answers are canonicalized
// (Lineage::Normalize) before returning, which is what makes the two
// strategies and every thread count agree bit-for-bit.

#ifndef MVDB_QUERY_EVAL_H_
#define MVDB_QUERY_EVAL_H_

#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "prob/lineage.h"
#include "query/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// Per-answer evaluation result.
struct AnswerInfo {
  Lineage lineage;
  /// Distinct bindings of EvalOptions::count_var within this head group —
  /// the `count(pid)` style aggregate the paper's weight expressions use.
  std::set<Value> count_values;
};

/// Answers keyed by head tuple (deterministic order for reproducibility).
using AnswerMap = std::map<std::vector<Value>, AnswerInfo>;

/// One fully evaluated answer: head tuple plus its Eq. 5 probability. The
/// end product of the engine's Query() and of the serving layer.
struct AnswerProb {
  std::vector<Value> head;
  double prob;
};

/// Join-order / probe strategy (see file comment).
enum class EvalStrategy {
  kPlanned,     ///< cost-based order, selective probes, parallelizable
  kLegacyScan,  ///< original greedy order, first-bound-column probes, serial
};

struct EvalOptions {
  /// Variable id whose distinct bindings are counted per head group, or -1.
  int count_var = -1;
  EvalStrategy strategy = EvalStrategy::kPlanned;
  /// Worker threads sharding the driver atom (kPlanned only; kLegacyScan
  /// ignores it). 1 = serial; <= 0 = one per hardware thread. The answer
  /// map, lineages and count sets are bit-identical for every value.
  int num_threads = 1;
};

/// Evaluates a UCQ over the set of *possible* tuples (I_poss): probabilistic
/// tables are treated as containing all their possible tuples, which is
/// exactly the instance lineage is defined over (Section 2.4).
Status Eval(const Database& db, const Ucq& q, const EvalOptions& opts,
            AnswerMap* out);

/// Evaluates a Boolean UCQ, returning its lineage (false lineage if no
/// derivations exist).
StatusOr<Lineage> EvalBoolean(const Database& db, const Ucq& q);

/// Reusable execution state for PlanTemplate: variable bindings, undo
/// stacks and the clause under construction. One per executing thread;
/// repeated Execute calls against any template reuse the buffers, so the
/// steady state allocates nothing. Treat the fields as opaque.
struct EvalScratch {
  std::vector<Value> binding;
  std::vector<uint8_t> bound;
  std::vector<int> newly_bound;
  Clause clause_vars;
  std::vector<Value> row_buf;
};

/// A compiled *query shape*: every disjunct planned once by the cost-based
/// planner, with the query's constants abstracted into slots
/// (query/analysis.h, UcqSignature). The template is immutable after Plan()
/// and can be executed any number of times — concurrently from several
/// threads, each with its own EvalScratch — with per-execution slot values
/// supplying the constants. Planning only reads value-independent inputs
/// (query structure, table sizes, per-column distinct counts), so one plan
/// is exact for every binding of the same signature: this is the
/// prepared-statement move the MV-index compile stage leans on — plan once
/// per block shape, execute once per block.
class PlanTemplate {
 public:
  ~PlanTemplate();
  PlanTemplate(const PlanTemplate&) = delete;
  PlanTemplate& operator=(const PlanTemplate&) = delete;

  /// Plans `q` after abstracting its constants; exemplar_slots() then holds
  /// q's own binding (execute with it to evaluate q itself).
  static StatusOr<std::unique_ptr<const PlanTemplate>> Plan(
      const Database& db, const Ucq& q, const EvalOptions& opts);

  /// Plans a query whose constant terms already hold slot ids (the caller
  /// ran AbstractUcqConstants, possibly over an enclosing query — slot ids
  /// may index a larger shared slot vector).
  static StatusOr<std::unique_ptr<const PlanTemplate>> PlanAbstracted(
      const Database& db, Ucq q_abstracted, const EvalOptions& opts);

  /// Evaluates the shape with the given slot binding into `out` (not
  /// cleared). Mirrors Eval(): per-disjunct join execution, optional driver
  /// sharding over opts.num_threads, canonical Normalize at the end.
  Status Execute(std::span<const Value> slots, EvalScratch* scratch,
                 AnswerMap* out) const;

  /// Boolean fast path: clauses accumulate directly into `*out` (assigned,
  /// then normalized) with no answer map. Serial; requires a Boolean shape.
  Status ExecuteBoolean(std::span<const Value> slots, EvalScratch* scratch,
                        Lineage* out) const;

  /// q's own constants when built via Plan() (empty for PlanAbstracted).
  std::span<const Value> exemplar_slots() const { return exemplar_slots_; }

  /// Warms every table index any Execute can probe, so concurrent
  /// executions only read shared state.
  void WarmIndexes() const;

 private:
  friend class CqPlan;
  PlanTemplate();

  static StatusOr<std::unique_ptr<PlanTemplate>> PlanImpl(
      const Database& db, Ucq q_abstracted, const EvalOptions& opts);

  Ucq q_;  // constants rewritten to slot ids
  std::vector<Value> exemplar_slots_;
  EvalOptions opts_;
  std::vector<std::unique_ptr<class CqPlan>> plans_;  // one per disjunct
};

}  // namespace mvdb

#endif  // MVDB_QUERY_EVAL_H_
