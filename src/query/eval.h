// Copyright 2026 The MarkoView Authors.
//
// UCQ evaluation over a Database, producing per-answer lineage: the role
// Postgres plays in the paper's prototype ("round trip call to Postgres, to
// compute the query's lineage", Section 5.4). Evaluation is a backtracking
// index-nested-loop join with greedy atom ordering; every join result emits
// one lineage clause containing the Boolean variables of the probabilistic
// tuples it used.

#ifndef MVDB_QUERY_EVAL_H_
#define MVDB_QUERY_EVAL_H_

#include <map>
#include <set>
#include <vector>

#include "prob/lineage.h"
#include "query/ast.h"
#include "relational/database.h"
#include "util/status.h"

namespace mvdb {

/// Per-answer evaluation result.
struct AnswerInfo {
  Lineage lineage;
  /// Distinct bindings of EvalOptions::count_var within this head group —
  /// the `count(pid)` style aggregate the paper's weight expressions use.
  std::set<Value> count_values;
};

/// Answers keyed by head tuple (deterministic order for reproducibility).
using AnswerMap = std::map<std::vector<Value>, AnswerInfo>;

struct EvalOptions {
  /// Variable id whose distinct bindings are counted per head group, or -1.
  int count_var = -1;
};

/// Evaluates a UCQ over the set of *possible* tuples (I_poss): probabilistic
/// tables are treated as containing all their possible tuples, which is
/// exactly the instance lineage is defined over (Section 2.4).
Status Eval(const Database& db, const Ucq& q, const EvalOptions& opts,
            AnswerMap* out);

/// Evaluates a Boolean UCQ, returning its lineage (false lineage if no
/// derivations exist).
StatusOr<Lineage> EvalBoolean(const Database& db, const Ucq& q);

}  // namespace mvdb

#endif  // MVDB_QUERY_EVAL_H_
