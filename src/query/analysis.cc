#include "query/analysis.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "util/logging.h"

namespace mvdb {
namespace {

/// Simple union-find over [0, n).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// Positions at which variable v occurs in the atom.
std::vector<size_t> VarPositions(const Atom& atom, int v) {
  std::vector<size_t> out;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (atom.args[i].is_var() && atom.args[i].var == v) out.push_back(i);
  }
  return out;
}

}  // namespace

std::vector<int> AtomVars(const Atom& atom) {
  std::vector<int> vars;
  for (const Term& t : atom.args) {
    if (t.is_var()) vars.push_back(t.var);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::vector<int> CqVars(const ConjunctiveQuery& cq) {
  std::vector<int> vars;
  for (const Atom& a : cq.atoms) {
    const auto av = AtomVars(a);
    vars.insert(vars.end(), av.begin(), av.end());
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

bool HasProbAtom(const ConjunctiveQuery& cq, const IsProbFn& is_prob) {
  return std::any_of(cq.atoms.begin(), cq.atoms.end(),
                     [&](const Atom& a) { return is_prob(a.relation); });
}

std::vector<int> RootVars(const ConjunctiveQuery& cq, const IsProbFn& is_prob) {
  std::vector<int> roots;
  bool first = true;
  for (const Atom& a : cq.atoms) {
    if (!is_prob(a.relation)) continue;
    std::vector<int> av = AtomVars(a);
    if (first) {
      roots = std::move(av);
      first = false;
    } else {
      std::vector<int> merged;
      std::set_intersection(roots.begin(), roots.end(), av.begin(), av.end(),
                            std::back_inserter(merged));
      roots = std::move(merged);
    }
    if (roots.empty()) break;
  }
  if (first) return {};  // no probabilistic atoms
  return roots;
}

namespace {

/// Candidate (root var, per-symbol position set) choices for one disjunct.
struct DisjunctChoice {
  int var;
  // For each prob symbol in the disjunct: positions on which `var` occurs in
  // every atom of that symbol.
  std::unordered_map<std::string, std::set<size_t>> positions;
};

std::vector<DisjunctChoice> DisjunctChoices(const ConjunctiveQuery& cq,
                                            const IsProbFn& is_prob) {
  std::vector<DisjunctChoice> out;
  for (int v : RootVars(cq, is_prob)) {
    DisjunctChoice choice;
    choice.var = v;
    bool ok = true;
    for (const Atom& a : cq.atoms) {
      if (!is_prob(a.relation)) continue;
      std::vector<size_t> pos = VarPositions(a, v);
      if (pos.empty()) { ok = false; break; }
      std::set<size_t> pos_set(pos.begin(), pos.end());
      auto it = choice.positions.find(a.relation);
      if (it == choice.positions.end()) {
        choice.positions.emplace(a.relation, std::move(pos_set));
      } else {
        std::set<size_t> merged;
        std::set_intersection(it->second.begin(), it->second.end(),
                              pos_set.begin(), pos_set.end(),
                              std::inserter(merged, merged.begin()));
        if (merged.empty()) { ok = false; break; }
        it->second = std::move(merged);
      }
    }
    if (ok) out.push_back(std::move(choice));
  }
  return out;
}

/// Backtracking search for a consistent separator assignment. `allowed`
/// restricts the admissible positions per symbol (used by the
/// inversion-freeness check to respect already-consumed positions);
/// empty map = no restriction.
bool SearchSeparator(
    const Ucq& q, const IsProbFn& is_prob, size_t d,
    const std::unordered_map<std::string, std::set<size_t>>* allowed,
    std::unordered_map<std::string, std::set<size_t>>* sym_positions,
    Separator* out) {
  // Skip disjuncts with no probabilistic atoms.
  while (d < q.disjuncts.size() && !HasProbAtom(q.disjuncts[d], is_prob)) {
    out->var_of_disjunct[d] = -1;
    ++d;
  }
  if (d == q.disjuncts.size()) {
    // Fix one position per symbol (smallest admissible).
    for (const auto& [sym, set] : *sym_positions) {
      if (set.empty()) return false;
      out->position[sym] = *set.begin();
    }
    return true;
  }
  for (const DisjunctChoice& choice : DisjunctChoices(q.disjuncts[d], is_prob)) {
    // Intersect this choice's position sets into the global per-symbol sets.
    std::unordered_map<std::string, std::set<size_t>> saved = *sym_positions;
    bool feasible = true;
    for (const auto& [sym, pos_set] : choice.positions) {
      std::set<size_t> filtered = pos_set;
      if (allowed != nullptr) {
        auto ait = allowed->find(sym);
        if (ait != allowed->end()) {
          std::set<size_t> merged;
          std::set_intersection(filtered.begin(), filtered.end(),
                                ait->second.begin(), ait->second.end(),
                                std::inserter(merged, merged.begin()));
          filtered = std::move(merged);
        }
      }
      auto it = sym_positions->find(sym);
      if (it == sym_positions->end()) {
        (*sym_positions)[sym] = filtered;
      } else {
        std::set<size_t> merged;
        std::set_intersection(it->second.begin(), it->second.end(),
                              filtered.begin(), filtered.end(),
                              std::inserter(merged, merged.begin()));
        it->second = std::move(merged);
      }
      if ((*sym_positions)[sym].empty()) { feasible = false; break; }
    }
    if (feasible) {
      out->var_of_disjunct[d] = choice.var;
      if (SearchSeparator(q, is_prob, d + 1, allowed, sym_positions, out)) {
        return true;
      }
    }
    *sym_positions = std::move(saved);
  }
  return false;
}

}  // namespace

std::optional<Separator> FindSeparator(const Ucq& q, const IsProbFn& is_prob) {
  Separator sep;
  sep.var_of_disjunct.assign(q.disjuncts.size(), -1);
  std::unordered_map<std::string, std::set<size_t>> sym_positions;
  if (SearchSeparator(q, is_prob, 0, nullptr, &sym_positions, &sep)) {
    return sep;
  }
  return std::nullopt;
}

std::vector<std::vector<size_t>> IndependentUnionComponents(
    const Ucq& q, const IsProbFn& is_prob) {
  const size_t n = q.disjuncts.size();
  UnionFind uf(n);
  std::unordered_map<std::string, size_t> first_use;
  for (size_t d = 0; d < n; ++d) {
    for (const Atom& a : q.disjuncts[d].atoms) {
      if (!is_prob(a.relation)) continue;
      auto [it, inserted] = first_use.emplace(a.relation, d);
      if (!inserted) uf.Union(d, it->second);
    }
  }
  std::unordered_map<size_t, size_t> group_of_root;
  std::vector<std::vector<size_t>> groups;
  for (size_t d = 0; d < n; ++d) {
    const size_t root = uf.Find(d);
    auto [it, inserted] = group_of_root.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(d);
  }
  return groups;
}

namespace {

/// THE canonical walk: disjuncts in order; within a disjunct, atoms
/// left-to-right (arguments in position order), then comparisons (lhs,
/// rhs). Slot numbering — hence plan-template sharing — is defined by the
/// order this function visits constant terms in, so every signature/slot
/// routine below and ForEachUcqTerm go through it; never hand-roll the
/// loop elsewhere. The structural callbacks (disjunct/atom/comparison) let
/// the key encoder interleave punctuation; plain term walks pass no-ops.
template <typename UcqT, typename DisjFn, typename AtomFn, typename AtomEndFn,
          typename CmpFn, typename TermFn>
void WalkUcqCanonical(UcqT& q, DisjFn&& disjunct_begin, AtomFn&& atom_begin,
                      AtomEndFn&& atom_end, CmpFn&& comparison_begin,
                      TermFn&& term) {
  for (size_t d = 0; d < q.disjuncts.size(); ++d) {
    auto& cq = q.disjuncts[d];
    disjunct_begin(d);
    for (auto& a : cq.atoms) {
      atom_begin(a);
      for (auto& t : a.args) term(d, t);
      atom_end(a);
    }
    for (auto& c : cq.comparisons) {
      comparison_begin(c);
      term(d, c.lhs);
      term(d, c.rhs);
    }
  }
}

/// No-op structural callbacks for plain term walks.
constexpr auto kIgnoreDisjunct = [](size_t) {};
constexpr auto kIgnoreAtom = [](const Atom&) {};
constexpr auto kIgnoreComparison = [](const Comparison&) {};

/// Plain term walk in the canonical order (ForEachUcqTerm's engine).
template <typename UcqT, typename TermFn>
void WalkUcqTerms(UcqT& q, TermFn&& term) {
  WalkUcqCanonical(q, kIgnoreDisjunct, kIgnoreAtom, kIgnoreAtom,
                   kIgnoreComparison, term);
}

/// Incremental signature encoder. The canonical walk (head variables, then
/// per disjunct: atoms left-to-right, then comparisons lhs/rhs) fixes both
/// the slot numbering (constants, by first occurrence) and the canonical
/// variable numbering, so structurally isomorphic queries produce the same
/// key and ComputeUcqSignature / AbstractUcqConstants / the grounded variant
/// always agree on slot order.
class SignatureEncoder {
 public:
  void AddVar(int v) {
    auto [it, inserted] = var_of_.emplace(v, static_cast<int>(var_of_.size()));
    sig_.key += 'v';
    sig_.key += std::to_string(it->second);
    sig_.key += ',';
  }
  void AddConst(Value c) {
    auto [it, inserted] = slot_of_.emplace(c, sig_.slots.size());
    if (inserted) sig_.slots.push_back(c);
    sig_.key += 's';
    sig_.key += std::to_string(it->second);
    sig_.key += ',';
  }
  void AddAtomHeader(const Atom& a) {
    if (a.negated) sig_.key += '~';
    sig_.key += a.relation;
    sig_.key += '(';
  }
  void Punct(char c) { sig_.key += c; }

  UcqSignature Take() { return std::move(sig_); }

 private:
  UcqSignature sig_;
  std::unordered_map<Value, size_t> slot_of_;
  std::unordered_map<int, int> var_of_;
};

/// Shared signature walk. `as_const(d, v)` tells whether the variable v of
/// disjunct d is to be treated as a bound constant (the grounded-signature
/// variant); `bound` supplies its value.
template <typename IsBoundFn>
UcqSignature EncodeSignature(const Ucq& q, const IsBoundFn& as_const,
                             Value bound) {
  SignatureEncoder enc;
  enc.Punct('H');
  for (int hv : q.head_vars) enc.AddVar(hv);
  WalkUcqCanonical(
      q, [&](size_t) { enc.Punct('D'); },
      [&](const Atom& a) { enc.AddAtomHeader(a); },
      [&](const Atom&) { enc.Punct(')'); },
      [&](const Comparison& c) {
        enc.Punct('C');
        enc.Punct(static_cast<char>('0' + static_cast<int>(c.op)));
      },
      [&](size_t d, const Term& t) {
        if (!t.is_var()) {
          enc.AddConst(t.constant);
        } else if (as_const(d, t.var)) {
          enc.AddConst(bound);
        } else {
          enc.AddVar(t.var);
        }
      });
  return enc.Take();
}

}  // namespace

UcqSignature ComputeUcqSignature(const Ucq& q) {
  return EncodeSignature(q, [](size_t, int) { return false; }, 0);
}

UcqSignature ComputeGroundedSignature(const Ucq& shape,
                                      const std::vector<int>& sub_var_of_disjunct,
                                      Value binding) {
  return EncodeSignature(
      shape,
      [&](size_t d, int v) {
        return d < sub_var_of_disjunct.size() && sub_var_of_disjunct[d] == v;
      },
      binding);
}

std::vector<Value> AbstractUcqConstants(Ucq* q) {
  std::vector<Value> slots;
  std::unordered_map<Value, size_t> slot_of;
  WalkUcqTerms(*q, [&](size_t, Term& t) {
    if (t.is_var()) return;
    auto [it, inserted] = slot_of.emplace(t.constant, slots.size());
    if (inserted) slots.push_back(t.constant);
    t.constant = static_cast<Value>(it->second);
  });
  return slots;
}

void BindUcqConstants(Ucq* q, std::span<const Value> slots) {
  WalkUcqTerms(*q, [&](size_t, Term& t) {
    if (!t.is_var()) t.constant = slots[static_cast<size_t>(t.constant)];
  });
}

void ForEachUcqTerm(const Ucq& q,
                    const std::function<void(size_t, const Term&)>& fn) {
  WalkUcqTerms(q, fn);
}

bool Unifiable(const Atom& a, const Atom& b) {
  if (a.relation != b.relation || a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!a.args[i].is_var() && !b.args[i].is_var() &&
        a.args[i].constant != b.args[i].constant) {
      return false;
    }
  }
  return true;
}

bool MapsInto(const ConjunctiveQuery& general, const ConjunctiveQuery& specific) {
  if (!general.comparisons.empty()) return false;  // conservative
  // Backtracking search for a homomorphism on atoms.
  std::unordered_map<int, Term> mapping;  // general var -> specific term
  auto match_atom = [&](auto&& self, size_t gi) -> bool {
    if (gi == general.atoms.size()) return true;
    const Atom& g = general.atoms[gi];
    for (const Atom& s : specific.atoms) {
      if (s.relation != g.relation || s.args.size() != g.args.size()) continue;
      std::vector<int> newly_mapped;
      bool ok = true;
      for (size_t p = 0; p < g.args.size(); ++p) {
        const Term& gt = g.args[p];
        const Term& st = s.args[p];
        if (!gt.is_var()) {
          if (st.is_var() || st.constant != gt.constant) { ok = false; break; }
          continue;
        }
        auto it = mapping.find(gt.var);
        if (it == mapping.end()) {
          mapping.emplace(gt.var, st);
          newly_mapped.push_back(gt.var);
        } else if (!(it->second == st)) {
          ok = false;
          break;
        }
      }
      if (ok && self(self, gi + 1)) return true;
      for (int v : newly_mapped) mapping.erase(v);
    }
    return false;
  };
  return match_atom(match_atom, 0);
}

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& cq) {
  // Occurrence counts of each variable across atoms and comparisons.
  std::unordered_map<int, int> atom_occurrences;  // # atoms containing var
  for (const Atom& a : cq.atoms) {
    for (int v : AtomVars(a)) ++atom_occurrences[v];
  }
  std::unordered_map<int, bool> in_comparison;
  for (const Comparison& c : cq.comparisons) {
    if (c.lhs.is_var()) in_comparison[c.lhs.var] = true;
    if (c.rhs.is_var()) in_comparison[c.rhs.var] = true;
  }
  std::vector<bool> removed(cq.atoms.size(), false);

  auto exclusive_to = [&](int v, size_t atom_idx) {
    if (in_comparison.count(v)) return false;
    // Var occurs in exactly one atom (this one).
    (void)atom_idx;
    return atom_occurrences[v] == 1;
  };

  auto subsumed_by = [&](size_t ai, size_t bi) {
    const Atom& a = cq.atoms[ai];
    const Atom& b = cq.atoms[bi];
    if (a.relation != b.relation || a.args.size() != b.args.size()) return false;
    std::unordered_map<int, Term> mapping;  // exclusive var of A -> term of B
    for (size_t p = 0; p < a.args.size(); ++p) {
      const Term& ta = a.args[p];
      const Term& tb = b.args[p];
      if (ta == tb) continue;
      if (!ta.is_var() || !exclusive_to(ta.var, ai)) return false;
      auto [it, inserted] = mapping.emplace(ta.var, tb);
      if (!inserted && !(it->second == tb)) return false;
    }
    return true;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < cq.atoms.size() && !changed; ++i) {
      if (removed[i]) continue;
      for (size_t j = 0; j < cq.atoms.size(); ++j) {
        if (i == j || removed[j]) continue;
        if (subsumed_by(i, j)) {
          // Removing atom i frees its exclusive-variable occurrences; the
          // occurrence counts stay conservative (vars can only become "more
          // exclusive"), so we recompute them for soundness.
          removed[i] = true;
          for (int v : AtomVars(cq.atoms[i])) --atom_occurrences[v];
          changed = true;
          break;
        }
      }
    }
  }
  ConjunctiveQuery out;
  for (size_t i = 0; i < cq.atoms.size(); ++i) {
    if (!removed[i]) out.atoms.push_back(cq.atoms[i]);
  }
  out.comparisons = cq.comparisons;
  return out;
}

std::vector<ConjunctiveQuery> ConnectedComponents(const ConjunctiveQuery& cq,
                                                  const IsProbFn& is_prob) {
  const size_t n = cq.atoms.size();
  if (n == 0) return {cq};
  UnionFind uf(n);
  std::unordered_map<int, size_t> atom_of_var;
  for (size_t i = 0; i < n; ++i) {
    for (int v : AtomVars(cq.atoms[i])) {
      auto [it, inserted] = atom_of_var.emplace(v, i);
      if (!inserted) uf.Union(i, it->second);
    }
    if (!is_prob(cq.atoms[i].relation)) continue;
    // Same probabilistic symbol with unifiable patterns: potential tuple
    // sharing connects the atoms.
    for (size_t j = 0; j < i; ++j) {
      if (is_prob(cq.atoms[j].relation) && Unifiable(cq.atoms[i], cq.atoms[j])) {
        uf.Union(i, j);
      }
    }
  }
  // Comparisons link the components of their variables.
  for (const Comparison& c : cq.comparisons) {
    int a = -1;
    if (c.lhs.is_var() && atom_of_var.count(c.lhs.var)) a = static_cast<int>(atom_of_var[c.lhs.var]);
    int b = -1;
    if (c.rhs.is_var() && atom_of_var.count(c.rhs.var)) b = static_cast<int>(atom_of_var[c.rhs.var]);
    if (a >= 0 && b >= 0) uf.Union(static_cast<size_t>(a), static_cast<size_t>(b));
  }
  std::unordered_map<size_t, size_t> comp_of_root;
  std::vector<ConjunctiveQuery> comps;
  std::vector<size_t> comp_of_atom(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t root = uf.Find(i);
    auto [it, inserted] = comp_of_root.emplace(root, comps.size());
    if (inserted) comps.emplace_back();
    comp_of_atom[i] = it->second;
    comps[it->second].atoms.push_back(cq.atoms[i]);
  }
  for (const Comparison& c : cq.comparisons) {
    size_t target = 0;
    if (c.lhs.is_var() && atom_of_var.count(c.lhs.var)) {
      target = comp_of_atom[atom_of_var[c.lhs.var]];
    } else if (c.rhs.is_var() && atom_of_var.count(c.rhs.var)) {
      target = comp_of_atom[atom_of_var[c.rhs.var]];
    }
    comps[target].comparisons.push_back(c);
  }
  return comps;
}

namespace {

/// Fresh generic constants for the data-independent inversion-freeness
/// check. They never collide with real Values, which are non-negative
/// (interned ids) or small integers (years, counts) well above this range.
Value GenericConstant(int depth) { return -1000000 - depth; }

bool AllProbAtomsGround(const Ucq& q, const IsProbFn& is_prob) {
  for (const auto& cq : q.disjuncts) {
    for (const Atom& a : cq.atoms) {
      if (!is_prob(a.relation)) continue;
      for (const Term& t : a.args) {
        if (t.is_var()) return false;
      }
    }
  }
  return true;
}

/// Builds a sub-UCQ from a subset of disjunct indices.
Ucq SubUcq(const Ucq& q, const std::vector<size_t>& disjuncts) {
  Ucq out = q;
  out.disjuncts.clear();
  for (size_t d : disjuncts) out.disjuncts.push_back(q.disjuncts[d]);
  return out;
}

/// Recursive inversion-freeness check; appends consumed separator positions
/// per symbol into `consumed` (which doubles as the permutation prefix).
bool InversionFreeRec(const Ucq& q, const IsProbFn& is_prob, int depth,
                      std::unordered_map<std::string, std::vector<size_t>>* consumed) {
  // Drop disjuncts with no probabilistic atoms; they contribute no variables.
  Ucq pruned = q;
  std::erase_if(pruned.disjuncts, [&](const ConjunctiveQuery& cq) {
    return !HasProbAtom(cq, is_prob);
  });
  if (pruned.disjuncts.empty()) return true;
  if (AllProbAtomsGround(pruned, is_prob)) return true;

  // R1: independent unions recurse separately (disjoint symbols: consumed
  // bookkeeping cannot conflict).
  const auto groups = IndependentUnionComponents(pruned, is_prob);
  if (groups.size() > 1) {
    for (const auto& g : groups) {
      if (!InversionFreeRec(SubUcq(pruned, g), is_prob, depth, consumed)) {
        return false;
      }
    }
    return true;
  }

  // R2: a single CQ may split into independent components.
  if (pruned.disjuncts.size() == 1) {
    auto comps = ConnectedComponents(pruned.disjuncts[0], is_prob);
    if (comps.size() > 1) {
      for (auto& comp : comps) {
        Ucq sub = pruned;
        sub.disjuncts = {std::move(comp)};
        if (!InversionFreeRec(sub, is_prob, depth, consumed)) return false;
      }
      return true;
    }
  }

  // R3: need a separator whose positions have not been consumed yet.
  std::unordered_map<std::string, std::set<size_t>> allowed;
  // Build 'not yet consumed' position sets lazily: a symbol absent from the
  // map is unrestricted, so only symbols with consumed positions matter.
  std::unordered_map<std::string, size_t> arity_of;
  for (const auto& cq : pruned.disjuncts) {
    for (const Atom& a : cq.atoms) {
      if (is_prob(a.relation)) arity_of[a.relation] = a.args.size();
    }
  }
  for (const auto& [sym, cons] : *consumed) {
    auto it = arity_of.find(sym);
    if (it == arity_of.end()) continue;
    std::set<size_t> rest;
    for (size_t p = 0; p < it->second; ++p) {
      if (std::find(cons.begin(), cons.end(), p) == cons.end()) rest.insert(p);
    }
    allowed[sym] = std::move(rest);
  }

  Separator sep;
  sep.var_of_disjunct.assign(pruned.disjuncts.size(), -1);
  std::unordered_map<std::string, std::set<size_t>> sym_positions;
  if (!SearchSeparator(pruned, is_prob, 0, allowed.empty() ? nullptr : &allowed,
                       &sym_positions, &sep)) {
    return false;
  }
  // Consume the chosen positions.
  for (const auto& [sym, pos] : sep.position) {
    auto& cons = (*consumed)[sym];
    if (std::find(cons.begin(), cons.end(), pos) == cons.end()) {
      cons.push_back(pos);
    }
  }
  // Substitute every disjunct's separator variable by one generic constant:
  // one representative value suffices for the data-independent check.
  Ucq next = pruned;
  const Value c = GenericConstant(depth);
  for (size_t d = 0; d < next.disjuncts.size(); ++d) {
    if (sep.var_of_disjunct[d] < 0) continue;
    Ucq tmp;
    tmp.disjuncts = {next.disjuncts[d]};
    tmp.var_names = next.var_names;
    tmp = Substitute(tmp, sep.var_of_disjunct[d], c);
    next.disjuncts[d] = tmp.disjuncts[0];
  }
  return InversionFreeRec(next, is_prob, depth + 1, consumed);
}

}  // namespace

std::optional<AttrPerm> FindInversionFreePi(
    const Ucq& q, const IsProbFn& is_prob,
    const std::unordered_map<std::string, size_t>& arity) {
  std::unordered_map<std::string, std::vector<size_t>> consumed;
  if (!InversionFreeRec(q, is_prob, 0, &consumed)) return std::nullopt;
  AttrPerm pi;
  for (const auto& [sym, k] : arity) {
    std::vector<size_t> perm;
    auto it = consumed.find(sym);
    if (it != consumed.end()) perm = it->second;
    for (size_t p = 0; p < k; ++p) {
      if (std::find(perm.begin(), perm.end(), p) == perm.end()) perm.push_back(p);
    }
    pi[sym] = std::move(perm);
  }
  return pi;
}

}  // namespace mvdb
