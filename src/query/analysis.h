// Copyright 2026 The MarkoView Authors.
//
// Static analysis of UCQs used by the OBDD construction (Section 4.2) and
// the lifted/safe-plan evaluator:
//
//  * root variables    — variables occurring in every probabilistic atom of
//                        a conjunctive query;
//  * separator         — a per-disjunct choice of root variables such that
//                        any two atoms with the same (probabilistic) relation
//                        symbol contain the separator on the same attribute
//                        position (Section 4.2); decomposing on a separator
//                        yields tuple-disjoint subqueries (Proposition 1);
//  * independence      — partitions of disjuncts / atoms that share no
//                        probabilistic relation symbol (and, for atoms, no
//                        variable), enabling OBDD concatenation (rules R1/R2);
//  * inversion-freeness— existence of attribute permutations pi under which
//                        the recursive construction only concatenates
//                        (Proposition 2: constant-width, linear-size OBDD).
//
// "Probabilistic" is a property of the database schema, so every routine
// takes a predicate telling which relation symbols are probabilistic.
// Deterministic atoms carry no Boolean variables and are ignored by the
// independence/separator conditions.

#ifndef MVDB_QUERY_ANALYSIS_H_
#define MVDB_QUERY_ANALYSIS_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/ast.h"

namespace mvdb {

/// Tells whether a relation symbol is probabilistic in the current schema.
using IsProbFn = std::function<bool(const std::string&)>;

/// Distinct variable ids occurring in the atom, ascending.
std::vector<int> AtomVars(const Atom& atom);

/// Distinct variable ids occurring in the CQ's atoms, ascending.
std::vector<int> CqVars(const ConjunctiveQuery& cq);

/// True if the CQ contains at least one probabilistic atom.
bool HasProbAtom(const ConjunctiveQuery& cq, const IsProbFn& is_prob);

/// Root variables: variables occurring in *every* probabilistic atom of the
/// CQ. Returns empty if the CQ has no probabilistic atoms.
std::vector<int> RootVars(const ConjunctiveQuery& cq, const IsProbFn& is_prob);

/// A separator for a UCQ: one root variable per disjunct plus, for every
/// probabilistic relation symbol, the attribute position on which the
/// separator appears in all atoms of that symbol.
struct Separator {
  std::vector<int> var_of_disjunct;                    // one per disjunct
  std::unordered_map<std::string, size_t> position;    // per prob symbol
};

/// Finds a separator, or nullopt. Disjuncts with no probabilistic atoms are
/// skipped (their entry in var_of_disjunct is -1).
std::optional<Separator> FindSeparator(const Ucq& q, const IsProbFn& is_prob);

/// Partitions disjunct indices into groups that share no probabilistic
/// relation symbol: the groups are independent unions (rule R1).
std::vector<std::vector<size_t>> IndependentUnionComponents(
    const Ucq& q, const IsProbFn& is_prob);

/// True if two atoms of the same relation can match the same tuple:
/// positions where both carry constants must agree. (Atoms of different
/// relations never share tuples.)
bool Unifiable(const Atom& a, const Atom& b);

/// Splits one CQ into connected components. Two atoms are connected if they
/// share a variable (directly or through a comparison) or use the same
/// probabilistic relation symbol with unifiable argument patterns
/// (potential tuple sharing). Components are probabilistically independent
/// (rule R2). Comparisons follow the component of their variables; ground
/// comparisons go to component 0.
std::vector<ConjunctiveQuery> ConnectedComponents(const ConjunctiveQuery& cq,
                                                  const IsProbFn& is_prob);

/// True if there is a homomorphism from `general` into `specific`: a
/// mapping of general's variables to specific's terms sending every atom of
/// `general` onto some atom of `specific` (constants preserved). When it
/// exists, `specific` logically implies `general`, so `general` is redundant
/// in a conjunction — the minimization step the lifted algorithm needs
/// after inclusion–exclusion. `general` must have no comparisons (callers
/// skip minimization otherwise).
bool MapsInto(const ConjunctiveQuery& general, const ConjunctiveQuery& specific);

/// Removes redundant atoms from a conjunctive query: an atom A is dropped
/// when some other atom B of the same relation subsumes it — every position
/// of A either equals B's term or holds a variable occurring *only* in A
/// (mapped consistently onto B's terms). This is the sound core of CQ
/// minimization; the lifted evaluator needs it for inclusion–exclusion
/// conjunctions like (R(x) ^ S(x)) ^ R(x').
ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& cq);

/// Structural signature of a UCQ with constants abstracted into *slots*:
/// two queries share a signature exactly when they differ only in the
/// constant values bound into the slots — same relations, same join graph,
/// same variable pattern, and the same constant-equality pattern (equal
/// constants map to the same slot, distinct constants to distinct slots).
/// This is the key of the block-query plan-template cache: the ~200K
/// grounded block queries of a DBLP-scale build collapse to a handful of
/// signatures, each planned once and executed with per-block bindings.
struct UcqSignature {
  /// Canonical structural encoding (relations, negation, canonicalized
  /// variable ids, slot ids, comparison ops, head pattern). Opaque; only
  /// equality matters.
  std::string key;
  /// The query's own binding: the constant held by each slot, in slot-id
  /// order (= first occurrence order over the canonical walk).
  std::vector<Value> slots;
};

/// Computes the signature of `q`. The canonical walk visits disjuncts in
/// order, atoms before comparisons, argument positions left to right —
/// AbstractUcqConstants and ComputeGroundedSignature use the same walk, so
/// their slot numbering always agrees.
UcqSignature ComputeUcqSignature(const Ucq& q);

/// Rewrites `q` in place, replacing every constant term's value by its slot
/// id (assigned in the canonical walk order), and returns the slot values.
/// The rewritten query is the *shape* a PlanTemplate plans once; executing
/// it with any slot vector whose equality pattern matches reproduces the
/// grounded query's evaluation exactly. Constant-equality semantics are
/// preserved under the rewrite: two rewritten terms compare equal iff the
/// original constants were equal.
std::vector<Value> AbstractUcqConstants(Ucq* q);

/// Rewrites `q` in place, replacing each constant term holding a slot id by
/// `slots[id]` — the inverse of AbstractUcqConstants for a given binding.
void BindUcqConstants(Ucq* q, std::span<const Value> slots);

/// Visits every term of `q` in the canonical signature order (disjuncts in
/// order; per disjunct, atom arguments left to right, then comparison
/// lhs/rhs), passing the disjunct index. Slot numbering across the
/// signature machinery is *defined* by this order — constant walks outside
/// query/analysis must go through this helper rather than hand-rolling the
/// loops, so they can never drift out of lockstep.
void ForEachUcqTerm(const Ucq& q,
                    const std::function<void(size_t, const Term&)>& fn);

/// Signature of the grounded query obtained from `shape` by substituting
/// `binding` for `sub_var_of_disjunct[d]` within each disjunct d (entries
/// < 0 are left untouched) — without materializing the substituted AST.
/// Equivalent to ComputeUcqSignature(materialized copy); the partition
/// stage uses it to map each (shape, separator value) task to its template.
UcqSignature ComputeGroundedSignature(const Ucq& shape,
                                      const std::vector<int>& sub_var_of_disjunct,
                                      Value binding);

/// Attribute permutations pi: relation symbol -> permutation of its column
/// indices (Section 4.2). Relations not present use the identity.
using AttrPerm = std::unordered_map<std::string, std::vector<size_t>>;

/// Checks whether q is inversion-free and, if so, returns attribute
/// permutations under which ConOBDD performs only concatenations, with
/// separator-bearing attributes placed first (the paper's heuristic).
/// Deterministic atoms are ignored. `arity` maps relation symbols to arity.
std::optional<AttrPerm> FindInversionFreePi(
    const Ucq& q, const IsProbFn& is_prob,
    const std::unordered_map<std::string, size_t>& arity);

}  // namespace mvdb

#endif  // MVDB_QUERY_ANALYSIS_H_
