#include "query/eval.h"

#include <algorithm>

#include "query/analysis.h"
#include "util/logging.h"

namespace mvdb {
namespace {

/// Backtracking join state for one conjunctive query.
class CqEvaluator {
 public:
  CqEvaluator(const Database& db, const Ucq& q, const ConjunctiveQuery& cq,
              const EvalOptions& opts, AnswerMap* out)
      : db_(db), q_(q), cq_(cq), opts_(opts), out_(out) {}

  Status Run() {
    for (size_t i = 0; i < cq_.atoms.size(); ++i) {
      (cq_.atoms[i].negated ? negatives_ : positives_).push_back(i);
    }
    MVDB_RETURN_NOT_OK(Validate());
    binding_.assign(static_cast<size_t>(q_.num_vars()), 0);
    bound_.assign(static_cast<size_t>(q_.num_vars()), false);
    order_ = PlanAtomOrder();
    clause_vars_.clear();
    Join(0);
    return Status::OK();
  }

 private:
  Status Validate() {
    for (const Atom& a : cq_.atoms) {
      const Table* t = db_.Find(a.relation);
      if (t == nullptr) return Status::NotFound("no such table: " + a.relation);
      if (t->arity() != a.args.size()) {
        return Status::InvalidArgument("arity mismatch on " + a.relation);
      }
    }
    // Range-restriction: every head variable and every comparison variable
    // must occur in some *positive* atom, or evaluation cannot bind it; the
    // same holds for the variables of negated atoms (safe negation).
    std::vector<int> atom_vars;
    for (size_t i : positives_) {
      const auto av = AtomVars(cq_.atoms[i]);
      atom_vars.insert(atom_vars.end(), av.begin(), av.end());
    }
    std::sort(atom_vars.begin(), atom_vars.end());
    atom_vars.erase(std::unique(atom_vars.begin(), atom_vars.end()),
                    atom_vars.end());
    auto occurs = [&](int v) {
      return std::binary_search(atom_vars.begin(), atom_vars.end(), v);
    };
    for (int hv : q_.head_vars) {
      if (!occurs(hv)) {
        return Status::InvalidArgument("head variable '" +
                                       q_.var_names[static_cast<size_t>(hv)] +
                                       "' not bound by any atom");
      }
    }
    for (const Comparison& c : cq_.comparisons) {
      for (const Term* t : {&c.lhs, &c.rhs}) {
        if (t->is_var() && !occurs(t->var)) {
          return Status::InvalidArgument(
              "comparison variable '" + q_.var_names[static_cast<size_t>(t->var)] +
              "' not bound by any atom");
        }
      }
    }
    for (size_t i : negatives_) {
      for (int v : AtomVars(cq_.atoms[i])) {
        if (!occurs(v)) {
          return Status::InvalidArgument(
              "unsafe negation: variable '" +
              q_.var_names[static_cast<size_t>(v)] +
              "' of a negated atom is not bound by a positive atom");
        }
      }
    }
    return Status::OK();
  }

  /// Greedy atom order over the positive atoms: repeatedly pick the atom
  /// with the most bound arguments (ties: smaller table). Bound arguments
  /// enable index probes. Negated atoms are checked at the leaf.
  std::vector<size_t> PlanAtomOrder() const {
    const size_t n = cq_.atoms.size();
    std::vector<size_t> order;
    std::vector<bool> used(n, false);
    for (size_t i = 0; i < n; ++i) used[i] = cq_.atoms[i].negated;
    std::vector<bool> bound(static_cast<size_t>(q_.num_vars()), false);
    for (size_t step = 0; step < positives_.size(); ++step) {
      size_t best = n;
      long best_score = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        long score = 0;
        for (const Term& t : cq_.atoms[i].args) {
          if (!t.is_var() || bound[static_cast<size_t>(t.var)]) ++score;
        }
        const size_t size = db_.Find(cq_.atoms[i].relation)->size();
        if (best == n || score > best_score ||
            (score == best_score && size < best_size)) {
          best = i;
          best_score = score;
          best_size = size;
        }
      }
      used[best] = true;
      order.push_back(best);
      for (const Term& t : cq_.atoms[best].args) {
        if (t.is_var()) bound[static_cast<size_t>(t.var)] = true;
      }
    }
    return order;
  }

  bool TermValue(const Term& t, Value* out) const {
    if (!t.is_var()) {
      *out = t.constant;
      return true;
    }
    if (bound_[static_cast<size_t>(t.var)]) {
      *out = binding_[static_cast<size_t>(t.var)];
      return true;
    }
    return false;
  }

  /// Checks all comparisons whose variables are fully bound. Called after
  /// each new binding; unbound comparisons are deferred.
  bool ComparisonsHold() const {
    for (const Comparison& c : cq_.comparisons) {
      Value a, b;
      if (TermValue(c.lhs, &a) && TermValue(c.rhs, &b)) {
        if (!Comparison::Apply(c.op, a, b)) return false;
      }
    }
    return true;
  }

  void Join(size_t depth) {
    if (depth == order_.size()) {
      Emit();
      return;
    }
    const Atom& atom = cq_.atoms[order_[depth]];
    const Table* table = db_.Find(atom.relation);

    // Choose a probe column: any argument that is a constant or bound var.
    int probe_col = -1;
    Value probe_val = 0;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      Value v;
      if (TermValue(atom.args[i], &v)) {
        probe_col = static_cast<int>(i);
        probe_val = v;
        break;
      }
    }

    auto try_row = [&](RowId r) {
      const auto row = table->Row(r);
      // Match and bind.
      std::vector<int> newly_bound;
      bool ok = true;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        Value expect;
        if (TermValue(t, &expect)) {
          if (row[i] != expect) { ok = false; break; }
        } else {
          // Unbound variable: bind it. Handle repeated vars within the atom:
          // subsequent occurrences go through the TermValue branch above.
          binding_[static_cast<size_t>(t.var)] = row[i];
          bound_[static_cast<size_t>(t.var)] = true;
          newly_bound.push_back(t.var);
        }
      }
      if (ok && ComparisonsHold()) {
        const VarId var = table->var(r);
        const bool pushed = (var != kNoVar);
        if (pushed) clause_vars_.push_back(var);
        Join(depth + 1);
        if (pushed) clause_vars_.pop_back();
      }
      for (int v : newly_bound) bound_[static_cast<size_t>(v)] = false;
    };

    if (probe_col >= 0) {
      for (RowId r : table->Probe(static_cast<size_t>(probe_col), probe_val)) {
        try_row(r);
      }
    } else {
      const size_t n = table->size();
      for (size_t r = 0; r < n; ++r) try_row(static_cast<RowId>(r));
    }
  }

  void Emit() {
    // Safe negation: all variables of negated atoms are bound here. A
    // negated *deterministic* atom whose tuple exists kills the binding; a
    // negated *probabilistic* atom whose tuple is possible contributes a
    // negated literal (Section 2.5's extension).
    Clause neg_vars;
    for (size_t i : negatives_) {
      const Atom& atom = cq_.atoms[i];
      const Table* table = db_.Find(atom.relation);
      std::vector<Value> row;
      row.reserve(atom.args.size());
      for (const Term& t : atom.args) {
        Value v;
        MVDB_CHECK(TermValue(t, &v));
        row.push_back(v);
      }
      RowId r;
      if (!table->FindRow(row, &r)) continue;  // impossible tuple: not holds
      const VarId var = table->var(r);
      if (var == kNoVar) return;  // deterministic tuple present: binding dies
      neg_vars.push_back(var);
    }
    std::vector<Value> head;
    head.reserve(q_.head_vars.size());
    for (int hv : q_.head_vars) {
      MVDB_DCHECK(bound_[static_cast<size_t>(hv)]);
      head.push_back(binding_[static_cast<size_t>(hv)]);
    }
    AnswerInfo& info = (*out_)[head];
    info.lineage.AddSignedClause(clause_vars_, neg_vars);
    if (opts_.count_var >= 0 && bound_[static_cast<size_t>(opts_.count_var)]) {
      info.count_values.insert(binding_[static_cast<size_t>(opts_.count_var)]);
    }
  }

  const Database& db_;
  const Ucq& q_;
  const ConjunctiveQuery& cq_;
  const EvalOptions& opts_;
  AnswerMap* out_;
  std::vector<size_t> positives_;
  std::vector<size_t> negatives_;
  std::vector<size_t> order_;
  std::vector<Value> binding_;
  std::vector<bool> bound_;
  Clause clause_vars_;
};

}  // namespace

Status Eval(const Database& db, const Ucq& q, const EvalOptions& opts,
            AnswerMap* out) {
  for (const ConjunctiveQuery& cq : q.disjuncts) {
    if (cq.atoms.empty()) {
      return Status::InvalidArgument("disjunct with no atoms");
    }
    CqEvaluator eval(db, q, cq, opts, out);
    MVDB_RETURN_NOT_OK(eval.Run());
  }
  // Normalize lineages (sorting, dedup, absorption) so downstream consumers
  // see canonical DNFs.
  for (auto& [head, info] : *out) {
    info.lineage.Normalize();
  }
  return Status::OK();
}

StatusOr<Lineage> EvalBoolean(const Database& db, const Ucq& q) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("EvalBoolean requires a Boolean query");
  }
  AnswerMap answers;
  MVDB_RETURN_NOT_OK(Eval(db, q, EvalOptions{}, &answers));
  if (answers.empty()) return Lineage();
  MVDB_CHECK_EQ(answers.size(), 1u);
  return answers.begin()->second.lineage;
}

}  // namespace mvdb
