#include "query/eval.h"

#include <algorithm>
#include <limits>

#include "query/analysis.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace mvdb {
namespace {

/// Minimum driver rows per worker before sharding pays for itself (thread
/// spawn + per-worker map merge); below this the evaluation stays serial.
constexpr size_t kMinRowsPerWorker = 512;

/// Planner, plan data and executor for one conjunctive query. Prepare() is
/// serial; Execute() is const and reentrant — the parallel path runs it
/// concurrently over disjoint driver-row ranges with per-worker output maps.
class CqEvaluator {
 public:
  CqEvaluator(const Database& db, const Ucq& q, const ConjunctiveQuery& cq,
              const EvalOptions& opts)
      : db_(db), q_(q), cq_(cq), opts_(opts) {}

  /// Validates the query, resolves tables, and builds the join plan (atom
  /// order, probe columns, per-depth comparison schedule).
  Status Prepare() {
    tables_.resize(cq_.atoms.size());
    for (size_t i = 0; i < cq_.atoms.size(); ++i) {
      const Atom& a = cq_.atoms[i];
      tables_[i] = db_.Find(a.relation);
      if (tables_[i] == nullptr) {
        return Status::NotFound("no such table: " + a.relation);
      }
      if (tables_[i]->arity() != a.args.size()) {
        return Status::InvalidArgument("arity mismatch on " + a.relation);
      }
      (a.negated ? negatives_ : positives_).push_back(i);
    }
    MVDB_RETURN_NOT_OK(Validate());
    if (opts_.strategy == EvalStrategy::kLegacyScan) {
      PlanLegacy();
    } else {
      PlanCostBased();
    }
    ScheduleComparisons();
    // Driver row source: a probe span when the driver atom has a usable
    // constant argument, else the full row range.
    if (!order_.empty() && probe_cols_[0] >= 0) {
      Value v = 0;
      const Atom& a = cq_.atoms[order_[0]];
      MVDB_CHECK(!a.args[static_cast<size_t>(probe_cols_[0])].is_var());
      v = a.args[static_cast<size_t>(probe_cols_[0])].constant;
      driver_rows_ = tables_[order_[0]]->Probe(
          static_cast<size_t>(probe_cols_[0]), v);
      driver_is_probe_ = true;
    }
    return Status::OK();
  }

  size_t NumDriverRows() const {
    if (order_.empty()) return 0;
    return driver_is_probe_ ? driver_rows_.size() : tables_[order_[0]]->size();
  }

  /// Builds every index Execute() can touch, so concurrent workers only
  /// read shared state (Table::EnsureIndex is not thread-safe). Only the
  /// planned strategy fans out, and its probe columns are static.
  void WarmPlanIndexes() const {
    MVDB_DCHECK(opts_.strategy == EvalStrategy::kPlanned);
    for (size_t d = 0; d < order_.size(); ++d) {
      if (probe_cols_[d] >= 0) {
        tables_[order_[d]]->WarmIndex(static_cast<size_t>(probe_cols_[d]));
      }
    }
    for (size_t i : negatives_) tables_[i]->WarmIndex(0);  // FindRow probes 0
  }

  /// Evaluates driver rows [begin, end) of the driver source into `out`.
  void Execute(size_t begin, size_t end, AnswerMap* out) const {
    ExecState st;
    st.binding.assign(static_cast<size_t>(q_.num_vars()), 0);
    st.bound.assign(static_cast<size_t>(q_.num_vars()), 0);
    st.newly_bound.reserve(16);
    st.out = out;
    if (order_.empty()) {
      // No positive atoms (a constant negation-only disjunct): the single
      // empty binding goes straight to the negated-atom checks.
      if (begin == 0) Emit(&st);
      return;
    }
    for (size_t i = begin; i < end; ++i) {
      TryRow(&st, 0,
             driver_is_probe_ ? driver_rows_[i] : static_cast<RowId>(i));
    }
  }

 private:
  struct ExecState {
    std::vector<Value> binding;
    std::vector<uint8_t> bound;
    std::vector<int> newly_bound;  ///< undo stack across recursion depths
    Clause clause_vars;
    AnswerMap* out = nullptr;
  };

  Status Validate() {
    // Range-restriction: every head variable and every comparison variable
    // must occur in some *positive* atom, or evaluation cannot bind it; the
    // same holds for the variables of negated atoms (safe negation).
    std::vector<int> atom_vars;
    for (size_t i : positives_) {
      const auto av = AtomVars(cq_.atoms[i]);
      atom_vars.insert(atom_vars.end(), av.begin(), av.end());
    }
    std::sort(atom_vars.begin(), atom_vars.end());
    atom_vars.erase(std::unique(atom_vars.begin(), atom_vars.end()),
                    atom_vars.end());
    auto occurs = [&](int v) {
      return std::binary_search(atom_vars.begin(), atom_vars.end(), v);
    };
    for (int hv : q_.head_vars) {
      if (!occurs(hv)) {
        return Status::InvalidArgument("head variable '" +
                                       q_.var_names[static_cast<size_t>(hv)] +
                                       "' not bound by any atom");
      }
    }
    for (const Comparison& c : cq_.comparisons) {
      for (const Term* t : {&c.lhs, &c.rhs}) {
        if (t->is_var() && !occurs(t->var)) {
          return Status::InvalidArgument(
              "comparison variable '" + q_.var_names[static_cast<size_t>(t->var)] +
              "' not bound by any atom");
        }
      }
    }
    for (size_t i : negatives_) {
      for (int v : AtomVars(cq_.atoms[i])) {
        if (!occurs(v)) {
          return Status::InvalidArgument(
              "unsafe negation: variable '" +
              q_.var_names[static_cast<size_t>(v)] +
              "' of a negated atom is not bound by a positive atom");
        }
      }
    }
    return Status::OK();
  }

  /// Original greedy order over the positive atoms: repeatedly pick the atom
  /// with the most bound arguments (ties: smaller table), probing the first
  /// bound column. Kept as the reference strategy for the property tests.
  void PlanLegacy() {
    const size_t n = cq_.atoms.size();
    std::vector<bool> used(n, false);
    for (size_t i = 0; i < n; ++i) used[i] = cq_.atoms[i].negated;
    std::vector<bool> bound(static_cast<size_t>(q_.num_vars()), false);
    for (size_t step = 0; step < positives_.size(); ++step) {
      size_t best = n;
      long best_score = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        long score = 0;
        for (const Term& t : cq_.atoms[i].args) {
          if (!t.is_var() || bound[static_cast<size_t>(t.var)]) ++score;
        }
        const size_t size = tables_[i]->size();
        if (best == n || score > best_score ||
            (score == best_score && size < best_size)) {
          best = i;
          best_score = score;
          best_size = size;
        }
      }
      used[best] = true;
      order_.push_back(best);
      // First bound argument — the probe the old evaluator chose at run
      // time. The bound-variable set at each depth is fixed by the order,
      // so the choice is static.
      int probe = -1;
      for (size_t c = 0; c < cq_.atoms[best].args.size(); ++c) {
        const Term& t = cq_.atoms[best].args[c];
        if (!t.is_var() || bound[static_cast<size_t>(t.var)]) {
          probe = static_cast<int>(c);
          break;
        }
      }
      probe_cols_.push_back(probe);
      for (const Term& t : cq_.atoms[best].args) {
        if (t.is_var()) bound[static_cast<size_t>(t.var)] = true;
      }
    }
  }

  /// Cost-based greedy order: each step picks the positive atom whose index
  /// probe visits the fewest rows — estimated as size / distinct(probe
  /// column), probing the most selective (max-distinct) bound column — with
  /// the estimated output cardinality (all bound-column selectivities
  /// applied) as tie-break. This is what routes a join through a
  /// high-fan-out column (Wrote.aid, ~3 rows per probe) instead of a
  /// low-selectivity one (Affiliation.inst, ~1/12 of the table per probe):
  /// the failure mode that made the old order quadratic on V3.
  void PlanCostBased() {
    const size_t n = cq_.atoms.size();
    std::vector<bool> used(n, false);
    for (size_t i = 0; i < n; ++i) used[i] = cq_.atoms[i].negated;
    std::vector<bool> bound(static_cast<size_t>(q_.num_vars()), false);
    for (size_t step = 0; step < positives_.size(); ++step) {
      size_t best = n;
      int best_probe = -1;
      double best_visited = std::numeric_limits<double>::infinity();
      double best_output = std::numeric_limits<double>::infinity();
      size_t best_size = 0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        const Table* t = tables_[i];
        const double size = static_cast<double>(std::max<size_t>(t->size(), 1));
        int probe = -1;
        size_t probe_distinct = 0;
        double output = size;
        for (size_t c = 0; c < cq_.atoms[i].args.size(); ++c) {
          const Term& term = cq_.atoms[i].args[c];
          const bool is_bound =
              !term.is_var() || bound[static_cast<size_t>(term.var)];
          if (!is_bound) continue;
          const size_t d = std::max<size_t>(t->DistinctCount(c), 1);
          output /= static_cast<double>(d);
          if (d > probe_distinct) {
            probe_distinct = d;
            probe = static_cast<int>(c);
          }
        }
        const double visited =
            probe >= 0 ? size / static_cast<double>(probe_distinct) : size;
        if (best == n || visited < best_visited ||
            (visited == best_visited &&
             (output < best_output ||
              (output == best_output && t->size() < best_size)))) {
          best = i;
          best_probe = probe;
          best_visited = visited;
          best_output = output;
          best_size = t->size();
        }
      }
      used[best] = true;
      order_.push_back(best);
      probe_cols_.push_back(best_probe);
      for (const Term& t : cq_.atoms[best].args) {
        if (t.is_var()) bound[static_cast<size_t>(t.var)] = true;
      }
    }
  }

  /// Assigns each comparison to the first depth at which both sides are
  /// bound, so it is checked exactly once per candidate binding instead of
  /// re-scanned after every atom. Constant-only comparisons check at depth
  /// 0. Stored flat (schedule + per-depth offsets) — block compilation
  /// plans one grounded query per separator value, so per-plan allocations
  /// are on the offline build's hot path.
  void ScheduleComparisons() {
    comp_offsets_.assign(order_.size() + 1, 0);
    if (order_.empty()) return;
    std::vector<int> bound_depth(static_cast<size_t>(q_.num_vars()), -1);
    for (size_t d = 0; d < order_.size(); ++d) {
      for (const Term& t : cq_.atoms[order_[d]].args) {
        if (t.is_var() && bound_depth[static_cast<size_t>(t.var)] < 0) {
          bound_depth[static_cast<size_t>(t.var)] = static_cast<int>(d);
        }
      }
    }
    const size_t nc = cq_.comparisons.size();
    std::vector<uint32_t> depth_of(nc, 0);
    for (size_t c = 0; c < nc; ++c) {
      int depth = 0;
      for (const Term* t :
           {&cq_.comparisons[c].lhs, &cq_.comparisons[c].rhs}) {
        if (t->is_var()) {
          depth = std::max(depth, bound_depth[static_cast<size_t>(t->var)]);
        }
      }
      depth_of[c] = static_cast<uint32_t>(depth);
      ++comp_offsets_[static_cast<size_t>(depth) + 1];
    }
    for (size_t d = 1; d < comp_offsets_.size(); ++d) {
      comp_offsets_[d] += comp_offsets_[d - 1];
    }
    comp_sched_.resize(nc);
    std::vector<uint32_t> cursor(comp_offsets_.begin(), comp_offsets_.end() - 1);
    for (size_t c = 0; c < nc; ++c) {
      comp_sched_[cursor[depth_of[c]]++] = static_cast<uint32_t>(c);
    }
  }

  bool TermValue(const ExecState& st, const Term& t, Value* out) const {
    if (!t.is_var()) {
      *out = t.constant;
      return true;
    }
    if (st.bound[static_cast<size_t>(t.var)]) {
      *out = st.binding[static_cast<size_t>(t.var)];
      return true;
    }
    return false;
  }

  bool ComparisonsHoldAt(const ExecState& st, size_t depth) const {
    for (size_t k = comp_offsets_[depth]; k < comp_offsets_[depth + 1]; ++k) {
      const Comparison& cmp = cq_.comparisons[comp_sched_[k]];
      Value a = 0, b = 0;
      const bool ba = TermValue(st, cmp.lhs, &a);
      const bool bb = TermValue(st, cmp.rhs, &b);
      MVDB_DCHECK(ba && bb);  // the schedule binds both sides by this depth
      (void)ba;
      (void)bb;
      if (!Comparison::Apply(cmp.op, a, b)) return false;
    }
    return true;
  }

  void TryRow(ExecState* st, size_t depth, RowId r) const {
    const Atom& atom = cq_.atoms[order_[depth]];
    const Table* table = tables_[order_[depth]];
    const auto row = table->Row(r);
    // Match and bind, recording newly bound variables on the shared undo
    // stack. Repeated variables within the atom: subsequent occurrences go
    // through the TermValue branch.
    const size_t undo_mark = st->newly_bound.size();
    bool ok = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      Value expect;
      if (TermValue(*st, t, &expect)) {
        if (row[i] != expect) { ok = false; break; }
      } else {
        st->binding[static_cast<size_t>(t.var)] = row[i];
        st->bound[static_cast<size_t>(t.var)] = 1;
        st->newly_bound.push_back(t.var);
      }
    }
    if (ok && ComparisonsHoldAt(*st, depth)) {
      const VarId var = table->var(r);
      const bool pushed = (var != kNoVar);
      if (pushed) st->clause_vars.push_back(var);
      if (depth + 1 == order_.size()) {
        Emit(st);
      } else {
        Join(st, depth + 1);
      }
      if (pushed) st->clause_vars.pop_back();
    }
    for (size_t k = undo_mark; k < st->newly_bound.size(); ++k) {
      st->bound[static_cast<size_t>(st->newly_bound[k])] = 0;
    }
    st->newly_bound.resize(undo_mark);
  }

  void Join(ExecState* st, size_t depth) const {
    const Atom& atom = cq_.atoms[order_[depth]];
    const Table* table = tables_[order_[depth]];

    int probe_col = probe_cols_[depth];
    if (opts_.strategy == EvalStrategy::kLegacyScan) {
      // Legacy behaviour: first argument with an available value (which can
      // include same-atom repeated variables the static plan cannot use).
      probe_col = -1;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        Value v;
        if (TermValue(*st, atom.args[i], &v)) {
          probe_col = static_cast<int>(i);
          break;
        }
      }
    }
    if (probe_col >= 0) {
      Value probe_val = 0;
      MVDB_CHECK(TermValue(*st, atom.args[static_cast<size_t>(probe_col)],
                           &probe_val));
      for (RowId r : table->Probe(static_cast<size_t>(probe_col), probe_val)) {
        TryRow(st, depth, r);
      }
    } else {
      const size_t n = table->size();
      for (size_t r = 0; r < n; ++r) TryRow(st, depth, static_cast<RowId>(r));
    }
  }

  void Emit(ExecState* st) const {
    // Safe negation: all variables of negated atoms are bound here. A
    // negated *deterministic* atom whose tuple exists kills the binding; a
    // negated *probabilistic* atom whose tuple is possible contributes a
    // negated literal (Section 2.5's extension).
    Clause neg_vars;
    for (size_t i : negatives_) {
      const Atom& atom = cq_.atoms[i];
      const Table* table = tables_[i];
      std::vector<Value> row;
      row.reserve(atom.args.size());
      for (const Term& t : atom.args) {
        Value v;
        MVDB_CHECK(TermValue(*st, t, &v));
        row.push_back(v);
      }
      RowId r;
      if (!table->FindRow(row, &r)) continue;  // impossible tuple: not holds
      const VarId var = table->var(r);
      if (var == kNoVar) return;  // deterministic tuple present: binding dies
      neg_vars.push_back(var);
    }
    std::vector<Value> head;
    head.reserve(q_.head_vars.size());
    for (int hv : q_.head_vars) {
      MVDB_DCHECK(st->bound[static_cast<size_t>(hv)]);
      head.push_back(st->binding[static_cast<size_t>(hv)]);
    }
    AnswerInfo& info = (*st->out)[std::move(head)];
    info.lineage.AddSignedClause(st->clause_vars, std::move(neg_vars));
    if (opts_.count_var >= 0 &&
        st->bound[static_cast<size_t>(opts_.count_var)]) {
      info.count_values.insert(st->binding[static_cast<size_t>(opts_.count_var)]);
    }
  }

  const Database& db_;
  const Ucq& q_;
  const ConjunctiveQuery& cq_;
  const EvalOptions& opts_;
  std::vector<const Table*> tables_;      // parallel to cq_.atoms
  std::vector<size_t> positives_;
  std::vector<size_t> negatives_;
  std::vector<size_t> order_;             // positive atoms, execution order
  std::vector<int> probe_cols_;           // parallel to order_; -1 = scan
  std::vector<uint32_t> comp_sched_;      // comparison ids grouped by depth
  std::vector<uint32_t> comp_offsets_;    // per-depth ranges in comp_sched_
  std::span<const RowId> driver_rows_;
  bool driver_is_probe_ = false;
};

/// Folds `src` into `dst`. Clause order across workers is scheduling-
/// dependent, but the final Normalize() canonicalizes each answer, so the
/// merged result is bit-identical for every thread count and schedule.
void MergeAnswers(AnswerMap&& src, AnswerMap* dst) {
  for (auto& [head, info] : src) {
    auto [it, inserted] = dst->try_emplace(head, std::move(info));
    if (!inserted) {
      it->second.lineage.Union(info.lineage);
      it->second.count_values.merge(info.count_values);
    }
  }
}

}  // namespace

Status Eval(const Database& db, const Ucq& q, const EvalOptions& opts,
            AnswerMap* out) {
  for (const ConjunctiveQuery& cq : q.disjuncts) {
    if (cq.atoms.empty()) {
      return Status::InvalidArgument("disjunct with no atoms");
    }
    CqEvaluator eval(db, q, cq, opts);
    MVDB_RETURN_NOT_OK(eval.Prepare());
    const size_t rows = eval.NumDriverRows();
    int shards = 1;
    if (opts.strategy == EvalStrategy::kPlanned && opts.num_threads != 1) {
      shards = EffectiveThreads(opts.num_threads, rows / kMinRowsPerWorker);
    }
    if (shards <= 1) {
      eval.Execute(0, rows, out);
      continue;
    }
    // Shard the driver rows: workers pull chunks dynamically and fill
    // per-worker maps; the merge below plus the final Normalize make the
    // output independent of the schedule.
    eval.WarmPlanIndexes();
    std::vector<AnswerMap> worker_maps(static_cast<size_t>(shards));
    const size_t num_chunks =
        std::min(rows, static_cast<size_t>(shards) * 8);
    const size_t chunk = (rows + num_chunks - 1) / num_chunks;
    ParallelFor(shards, num_chunks, [&](int w, size_t c) {
      const size_t begin = c * chunk;
      const size_t end = std::min(rows, begin + chunk);
      eval.Execute(begin, end, &worker_maps[static_cast<size_t>(w)]);
    });
    for (AnswerMap& m : worker_maps) MergeAnswers(std::move(m), out);
  }
  // Normalize lineages (sorting, dedup, absorption) so downstream consumers
  // see canonical DNFs — this is also what makes the planned, legacy and
  // sharded evaluations bit-identical. Independent per answer, so it fans
  // out over the same thread budget.
  std::vector<AnswerInfo*> infos;
  infos.reserve(out->size());
  for (auto& [head, info] : *out) infos.push_back(&info);
  ParallelForChunked(opts.num_threads, infos.size(), 256,
                     [&](size_t i) { infos[i]->lineage.Normalize(); });
  return Status::OK();
}

StatusOr<Lineage> EvalBoolean(const Database& db, const Ucq& q) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("EvalBoolean requires a Boolean query");
  }
  AnswerMap answers;
  MVDB_RETURN_NOT_OK(Eval(db, q, EvalOptions{}, &answers));
  if (answers.empty()) return Lineage();
  MVDB_CHECK_EQ(answers.size(), 1u);
  return answers.begin()->second.lineage;
}

}  // namespace mvdb
