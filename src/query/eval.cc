#include "query/eval.h"

#include <algorithm>
#include <limits>

#include "query/analysis.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace mvdb {
namespace {

/// Minimum driver rows per worker before sharding pays for itself (thread
/// spawn + per-worker map merge); below this the evaluation stays serial.
constexpr size_t kMinRowsPerWorker = 512;

/// Per-execution view threaded through the join recursion: the reusable
/// scratch buffers, the slot binding of this execution, and the output sink
/// (answer map, or a bare lineage on the Boolean fast path).
struct ExecContext {
  EvalScratch* scratch = nullptr;
  const Value* slots = nullptr;
  AnswerMap* out = nullptr;
  Lineage* bool_out = nullptr;
};

}  // namespace

/// Immutable join plan for one conjunctive query of the template: atom
/// order, probe columns and the per-depth comparison schedule, produced by
/// the PR-4 cost-based planner (or the legacy greedy order). Prepare() reads
/// only value-independent inputs — query structure, table sizes, per-column
/// distinct counts — never the constants themselves, which is what makes
/// one plan exact for every binding of the same signature. Execution
/// resolves constant terms through the slot vector at run time (the
/// template's constant terms hold slot ids, not values).
class CqPlan {
 public:
  CqPlan(const Database& db, const Ucq& q, const ConjunctiveQuery& cq,
         const EvalOptions& opts)
      : db_(db), q_(q), cq_(cq), opts_(opts) {}

  /// Validates the query, resolves tables, and builds the join plan (atom
  /// order, probe columns, per-depth comparison schedule).
  Status Prepare() {
    tables_.resize(cq_.atoms.size());
    for (size_t i = 0; i < cq_.atoms.size(); ++i) {
      const Atom& a = cq_.atoms[i];
      tables_[i] = db_.Find(a.relation);
      if (tables_[i] == nullptr) {
        return Status::NotFound("no such table: " + a.relation);
      }
      if (tables_[i]->arity() != a.args.size()) {
        return Status::InvalidArgument("arity mismatch on " + a.relation);
      }
      (a.negated ? negatives_ : positives_).push_back(i);
    }
    MVDB_RETURN_NOT_OK(Validate());
    if (opts_.strategy == EvalStrategy::kLegacyScan) {
      PlanLegacy();
    } else {
      PlanCostBased();
    }
    ScheduleComparisons();
    driver_is_probe_ = !order_.empty() && probe_cols_[0] >= 0;
    return Status::OK();
  }

  /// Driver row source for a binding: a probe span when the driver atom has
  /// a usable constant argument, else the full row range. The probe value
  /// is slot-resolved, so this is the one plan ingredient bound at
  /// execution time rather than plan time.
  std::span<const RowId> DriverRows(const Value* slots) const {
    MVDB_DCHECK(driver_is_probe_);
    const Atom& a = cq_.atoms[order_[0]];
    const Term& t = a.args[static_cast<size_t>(probe_cols_[0])];
    MVDB_CHECK(!t.is_var());
    return tables_[order_[0]]->Probe(
        static_cast<size_t>(probe_cols_[0]),
        slots[static_cast<size_t>(t.constant)]);
  }

  size_t NumDriverRows(const Value* slots) const {
    if (order_.empty()) return 0;
    return driver_is_probe_ ? DriverRows(slots).size()
                            : tables_[order_[0]]->size();
  }

  /// Builds every index Execute() can touch, so concurrent workers only
  /// read shared state (Table::EnsureIndex is not thread-safe). Only the
  /// planned strategy fans out, and its probe columns are static.
  void WarmPlanIndexes() const {
    for (size_t d = 0; d < order_.size(); ++d) {
      if (probe_cols_[d] >= 0) {
        tables_[order_[d]]->WarmIndex(static_cast<size_t>(probe_cols_[d]));
      }
    }
    for (size_t i : negatives_) tables_[i]->WarmIndex(0);  // FindRow probes 0
  }

  /// Evaluates driver rows [begin, end) of the driver source into the
  /// context's sink. Reentrant: concurrent calls need distinct contexts.
  void Execute(size_t begin, size_t end, const ExecContext& ctx) const {
    EvalScratch& st = *ctx.scratch;
    st.binding.assign(static_cast<size_t>(q_.num_vars()), 0);
    st.bound.assign(static_cast<size_t>(q_.num_vars()), 0);
    st.newly_bound.clear();
    st.clause_vars.clear();
    if (order_.empty()) {
      // No positive atoms (a constant negation-only disjunct): the single
      // empty binding goes straight to the negated-atom checks.
      if (begin == 0) Emit(ctx);
      return;
    }
    std::span<const RowId> rows;
    if (driver_is_probe_) rows = DriverRows(ctx.slots);
    for (size_t i = begin; i < end; ++i) {
      TryRow(ctx, 0, driver_is_probe_ ? rows[i] : static_cast<RowId>(i));
    }
  }

 private:
  Status Validate() {
    // Range-restriction: every head variable and every comparison variable
    // must occur in some *positive* atom, or evaluation cannot bind it; the
    // same holds for the variables of negated atoms (safe negation).
    std::vector<int> atom_vars;
    for (size_t i : positives_) {
      const auto av = AtomVars(cq_.atoms[i]);
      atom_vars.insert(atom_vars.end(), av.begin(), av.end());
    }
    std::sort(atom_vars.begin(), atom_vars.end());
    atom_vars.erase(std::unique(atom_vars.begin(), atom_vars.end()),
                    atom_vars.end());
    auto occurs = [&](int v) {
      return std::binary_search(atom_vars.begin(), atom_vars.end(), v);
    };
    for (int hv : q_.head_vars) {
      if (!occurs(hv)) {
        return Status::InvalidArgument("head variable '" +
                                       q_.var_names[static_cast<size_t>(hv)] +
                                       "' not bound by any atom");
      }
    }
    for (const Comparison& c : cq_.comparisons) {
      for (const Term* t : {&c.lhs, &c.rhs}) {
        if (t->is_var() && !occurs(t->var)) {
          return Status::InvalidArgument(
              "comparison variable '" + q_.var_names[static_cast<size_t>(t->var)] +
              "' not bound by any atom");
        }
      }
    }
    for (size_t i : negatives_) {
      for (int v : AtomVars(cq_.atoms[i])) {
        if (!occurs(v)) {
          return Status::InvalidArgument(
              "unsafe negation: variable '" +
              q_.var_names[static_cast<size_t>(v)] +
              "' of a negated atom is not bound by a positive atom");
        }
      }
    }
    return Status::OK();
  }

  /// Original greedy order over the positive atoms: repeatedly pick the atom
  /// with the most bound arguments (ties: smaller table), probing the first
  /// bound column. Kept as the reference strategy for the property tests.
  void PlanLegacy() {
    const size_t n = cq_.atoms.size();
    std::vector<bool> used(n, false);
    for (size_t i = 0; i < n; ++i) used[i] = cq_.atoms[i].negated;
    std::vector<bool> bound(static_cast<size_t>(q_.num_vars()), false);
    for (size_t step = 0; step < positives_.size(); ++step) {
      size_t best = n;
      long best_score = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        long score = 0;
        for (const Term& t : cq_.atoms[i].args) {
          if (!t.is_var() || bound[static_cast<size_t>(t.var)]) ++score;
        }
        const size_t size = tables_[i]->size();
        if (best == n || score > best_score ||
            (score == best_score && size < best_size)) {
          best = i;
          best_score = score;
          best_size = size;
        }
      }
      used[best] = true;
      order_.push_back(best);
      // First bound argument — the probe the old evaluator chose at run
      // time. The bound-variable set at each depth is fixed by the order,
      // so the choice is static.
      int probe = -1;
      for (size_t c = 0; c < cq_.atoms[best].args.size(); ++c) {
        const Term& t = cq_.atoms[best].args[c];
        if (!t.is_var() || bound[static_cast<size_t>(t.var)]) {
          probe = static_cast<int>(c);
          break;
        }
      }
      probe_cols_.push_back(probe);
      for (const Term& t : cq_.atoms[best].args) {
        if (t.is_var()) bound[static_cast<size_t>(t.var)] = true;
      }
    }
  }

  /// Cost-based greedy order: each step picks the positive atom whose index
  /// probe visits the fewest rows — estimated as size / distinct(probe
  /// column), probing the most selective (max-distinct) bound column — with
  /// the estimated output cardinality (all bound-column selectivities
  /// applied) as tie-break. This is what routes a join through a
  /// high-fan-out column (Wrote.aid, ~3 rows per probe) instead of a
  /// low-selectivity one (Affiliation.inst, ~1/12 of the table per probe):
  /// the failure mode that made the old order quadratic on V3.
  void PlanCostBased() {
    const size_t n = cq_.atoms.size();
    std::vector<bool> used(n, false);
    for (size_t i = 0; i < n; ++i) used[i] = cq_.atoms[i].negated;
    std::vector<bool> bound(static_cast<size_t>(q_.num_vars()), false);
    for (size_t step = 0; step < positives_.size(); ++step) {
      size_t best = n;
      int best_probe = -1;
      double best_visited = std::numeric_limits<double>::infinity();
      double best_output = std::numeric_limits<double>::infinity();
      size_t best_size = 0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        const Table* t = tables_[i];
        const double size = static_cast<double>(std::max<size_t>(t->size(), 1));
        int probe = -1;
        size_t probe_distinct = 0;
        double output = size;
        for (size_t c = 0; c < cq_.atoms[i].args.size(); ++c) {
          const Term& term = cq_.atoms[i].args[c];
          const bool is_bound =
              !term.is_var() || bound[static_cast<size_t>(term.var)];
          if (!is_bound) continue;
          const size_t d = std::max<size_t>(t->DistinctCount(c), 1);
          output /= static_cast<double>(d);
          if (d > probe_distinct) {
            probe_distinct = d;
            probe = static_cast<int>(c);
          }
        }
        const double visited =
            probe >= 0 ? size / static_cast<double>(probe_distinct) : size;
        if (best == n || visited < best_visited ||
            (visited == best_visited &&
             (output < best_output ||
              (output == best_output && t->size() < best_size)))) {
          best = i;
          best_probe = probe;
          best_visited = visited;
          best_output = output;
          best_size = t->size();
        }
      }
      used[best] = true;
      order_.push_back(best);
      probe_cols_.push_back(best_probe);
      for (const Term& t : cq_.atoms[best].args) {
        if (t.is_var()) bound[static_cast<size_t>(t.var)] = true;
      }
    }
  }

  /// Assigns each comparison to the first depth at which both sides are
  /// bound, so it is checked exactly once per candidate binding instead of
  /// re-scanned after every atom. Constant-only comparisons check at depth
  /// 0. Stored flat (schedule + per-depth offsets): one immutable schedule
  /// per template, shared by every execution.
  void ScheduleComparisons() {
    comp_offsets_.assign(order_.size() + 1, 0);
    if (order_.empty()) return;
    std::vector<int> bound_depth(static_cast<size_t>(q_.num_vars()), -1);
    for (size_t d = 0; d < order_.size(); ++d) {
      for (const Term& t : cq_.atoms[order_[d]].args) {
        if (t.is_var() && bound_depth[static_cast<size_t>(t.var)] < 0) {
          bound_depth[static_cast<size_t>(t.var)] = static_cast<int>(d);
        }
      }
    }
    const size_t nc = cq_.comparisons.size();
    std::vector<uint32_t> depth_of(nc, 0);
    for (size_t c = 0; c < nc; ++c) {
      int depth = 0;
      for (const Term* t :
           {&cq_.comparisons[c].lhs, &cq_.comparisons[c].rhs}) {
        if (t->is_var()) {
          depth = std::max(depth, bound_depth[static_cast<size_t>(t->var)]);
        }
      }
      depth_of[c] = static_cast<uint32_t>(depth);
      ++comp_offsets_[static_cast<size_t>(depth) + 1];
    }
    for (size_t d = 1; d < comp_offsets_.size(); ++d) {
      comp_offsets_[d] += comp_offsets_[d - 1];
    }
    comp_sched_.resize(nc);
    std::vector<uint32_t> cursor(comp_offsets_.begin(), comp_offsets_.end() - 1);
    for (size_t c = 0; c < nc; ++c) {
      comp_sched_[cursor[depth_of[c]]++] = static_cast<uint32_t>(c);
    }
  }

  /// Resolves a term under the current binding; constant terms go through
  /// the execution's slot vector (the term's `constant` field is a slot id).
  bool TermValue(const ExecContext& ctx, const Term& t, Value* out) const {
    if (!t.is_var()) {
      *out = ctx.slots[static_cast<size_t>(t.constant)];
      return true;
    }
    const EvalScratch& st = *ctx.scratch;
    if (st.bound[static_cast<size_t>(t.var)]) {
      *out = st.binding[static_cast<size_t>(t.var)];
      return true;
    }
    return false;
  }

  bool ComparisonsHoldAt(const ExecContext& ctx, size_t depth) const {
    for (size_t k = comp_offsets_[depth]; k < comp_offsets_[depth + 1]; ++k) {
      const Comparison& cmp = cq_.comparisons[comp_sched_[k]];
      Value a = 0, b = 0;
      const bool ba = TermValue(ctx, cmp.lhs, &a);
      const bool bb = TermValue(ctx, cmp.rhs, &b);
      MVDB_DCHECK(ba && bb);  // the schedule binds both sides by this depth
      (void)ba;
      (void)bb;
      if (!Comparison::Apply(cmp.op, a, b)) return false;
    }
    return true;
  }

  void TryRow(const ExecContext& ctx, size_t depth, RowId r) const {
    EvalScratch* st = ctx.scratch;
    const Atom& atom = cq_.atoms[order_[depth]];
    const Table* table = tables_[order_[depth]];
    const auto row = table->Row(r);
    // Match and bind, recording newly bound variables on the shared undo
    // stack. Repeated variables within the atom: subsequent occurrences go
    // through the TermValue branch.
    const size_t undo_mark = st->newly_bound.size();
    bool ok = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      Value expect;
      if (TermValue(ctx, t, &expect)) {
        if (row[i] != expect) { ok = false; break; }
      } else {
        st->binding[static_cast<size_t>(t.var)] = row[i];
        st->bound[static_cast<size_t>(t.var)] = 1;
        st->newly_bound.push_back(t.var);
      }
    }
    if (ok && ComparisonsHoldAt(ctx, depth)) {
      const VarId var = table->var(r);
      const bool pushed = (var != kNoVar);
      if (pushed) st->clause_vars.push_back(var);
      if (depth + 1 == order_.size()) {
        Emit(ctx);
      } else {
        Join(ctx, depth + 1);
      }
      if (pushed) st->clause_vars.pop_back();
    }
    for (size_t k = undo_mark; k < st->newly_bound.size(); ++k) {
      st->bound[static_cast<size_t>(st->newly_bound[k])] = 0;
    }
    st->newly_bound.resize(undo_mark);
  }

  void Join(const ExecContext& ctx, size_t depth) const {
    const Atom& atom = cq_.atoms[order_[depth]];
    const Table* table = tables_[order_[depth]];

    int probe_col = probe_cols_[depth];
    if (opts_.strategy == EvalStrategy::kLegacyScan) {
      // Legacy behaviour: first argument with an available value (which can
      // include same-atom repeated variables the static plan cannot use).
      probe_col = -1;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        Value v;
        if (TermValue(ctx, atom.args[i], &v)) {
          probe_col = static_cast<int>(i);
          break;
        }
      }
    }
    if (probe_col >= 0) {
      Value probe_val = 0;
      MVDB_CHECK(TermValue(ctx, atom.args[static_cast<size_t>(probe_col)],
                           &probe_val));
      for (RowId r : table->Probe(static_cast<size_t>(probe_col), probe_val)) {
        TryRow(ctx, depth, r);
      }
    } else {
      const size_t n = table->size();
      for (size_t r = 0; r < n; ++r) TryRow(ctx, depth, static_cast<RowId>(r));
    }
  }

  void Emit(const ExecContext& ctx) const {
    EvalScratch* st = ctx.scratch;
    // Safe negation: all variables of negated atoms are bound here. A
    // negated *deterministic* atom whose tuple exists kills the binding; a
    // negated *probabilistic* atom whose tuple is possible contributes a
    // negated literal (Section 2.5's extension).
    Clause neg_vars;
    for (size_t i : negatives_) {
      const Atom& atom = cq_.atoms[i];
      const Table* table = tables_[i];
      st->row_buf.clear();
      for (const Term& t : atom.args) {
        Value v;
        MVDB_CHECK(TermValue(ctx, t, &v));
        st->row_buf.push_back(v);
      }
      RowId r;
      if (!table->FindRow(st->row_buf, &r)) continue;  // impossible: not holds
      const VarId var = table->var(r);
      if (var == kNoVar) return;  // deterministic tuple present: binding dies
      neg_vars.push_back(var);
    }
    if (ctx.bool_out != nullptr) {
      // Boolean fast path: the single (empty) head group is the lineage
      // itself — same AddSignedClause sequence the map path would perform.
      ctx.bool_out->AddSignedClause(st->clause_vars, std::move(neg_vars));
      return;
    }
    std::vector<Value> head;
    head.reserve(q_.head_vars.size());
    for (int hv : q_.head_vars) {
      MVDB_DCHECK(st->bound[static_cast<size_t>(hv)]);
      head.push_back(st->binding[static_cast<size_t>(hv)]);
    }
    AnswerInfo& info = (*ctx.out)[std::move(head)];
    info.lineage.AddSignedClause(st->clause_vars, std::move(neg_vars));
    if (opts_.count_var >= 0 &&
        st->bound[static_cast<size_t>(opts_.count_var)]) {
      info.count_values.insert(st->binding[static_cast<size_t>(opts_.count_var)]);
    }
  }

  const Database& db_;
  const Ucq& q_;                  // the template's abstracted query
  const ConjunctiveQuery& cq_;
  const EvalOptions& opts_;
  std::vector<const Table*> tables_;      // parallel to cq_.atoms
  std::vector<size_t> positives_;
  std::vector<size_t> negatives_;
  std::vector<size_t> order_;             // positive atoms, execution order
  std::vector<int> probe_cols_;           // parallel to order_; -1 = scan
  std::vector<uint32_t> comp_sched_;      // comparison ids grouped by depth
  std::vector<uint32_t> comp_offsets_;    // per-depth ranges in comp_sched_
  bool driver_is_probe_ = false;
};

namespace {

/// Folds `src` into `dst`. Clause order across workers is scheduling-
/// dependent, but the final Normalize() canonicalizes each answer, so the
/// merged result is bit-identical for every thread count and schedule.
void MergeAnswers(AnswerMap&& src, AnswerMap* dst) {
  for (auto& [head, info] : src) {
    auto [it, inserted] = dst->try_emplace(head, std::move(info));
    if (!inserted) {
      it->second.lineage.Union(info.lineage);
      it->second.count_values.merge(info.count_values);
    }
  }
}

}  // namespace

PlanTemplate::PlanTemplate() = default;
PlanTemplate::~PlanTemplate() = default;

StatusOr<std::unique_ptr<PlanTemplate>> PlanTemplate::PlanImpl(
    const Database& db, Ucq q_abstracted, const EvalOptions& opts) {
  std::unique_ptr<PlanTemplate> tmpl(new PlanTemplate());
  tmpl->q_ = std::move(q_abstracted);
  tmpl->opts_ = opts;
  tmpl->plans_.reserve(tmpl->q_.disjuncts.size());
  for (const ConjunctiveQuery& cq : tmpl->q_.disjuncts) {
    if (cq.atoms.empty()) {
      return Status::InvalidArgument("disjunct with no atoms");
    }
    tmpl->plans_.push_back(
        std::make_unique<CqPlan>(db, tmpl->q_, cq, tmpl->opts_));
    MVDB_RETURN_NOT_OK(tmpl->plans_.back()->Prepare());
  }
  return tmpl;
}

StatusOr<std::unique_ptr<const PlanTemplate>> PlanTemplate::Plan(
    const Database& db, const Ucq& q, const EvalOptions& opts) {
  Ucq abstracted = q;
  std::vector<Value> slots = AbstractUcqConstants(&abstracted);
  MVDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanTemplate> tmpl,
                        PlanImpl(db, std::move(abstracted), opts));
  tmpl->exemplar_slots_ = std::move(slots);
  return std::unique_ptr<const PlanTemplate>(std::move(tmpl));
}

StatusOr<std::unique_ptr<const PlanTemplate>> PlanTemplate::PlanAbstracted(
    const Database& db, Ucq q_abstracted, const EvalOptions& opts) {
  MVDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanTemplate> tmpl,
                        PlanImpl(db, std::move(q_abstracted), opts));
  return std::unique_ptr<const PlanTemplate>(std::move(tmpl));
}

void PlanTemplate::WarmIndexes() const {
  for (const auto& plan : plans_) plan->WarmPlanIndexes();
}

Status PlanTemplate::Execute(std::span<const Value> slots, EvalScratch* scratch,
                             AnswerMap* out) const {
  for (const auto& plan : plans_) {
    const size_t rows = plan->NumDriverRows(slots.data());
    int shards = 1;
    if (opts_.strategy == EvalStrategy::kPlanned && opts_.num_threads != 1) {
      shards = EffectiveThreads(opts_.num_threads, rows / kMinRowsPerWorker);
    }
    if (shards <= 1) {
      ExecContext ctx;
      ctx.scratch = scratch;
      ctx.slots = slots.data();
      ctx.out = out;
      plan->Execute(0, rows, ctx);
      continue;
    }
    // Shard the driver rows: workers pull chunks dynamically and fill
    // per-worker maps; the merge below plus the final Normalize make the
    // output independent of the schedule.
    plan->WarmPlanIndexes();
    std::vector<AnswerMap> worker_maps(static_cast<size_t>(shards));
    std::vector<EvalScratch> worker_scratch(static_cast<size_t>(shards));
    const size_t num_chunks =
        std::min(rows, static_cast<size_t>(shards) * 8);
    const size_t chunk = (rows + num_chunks - 1) / num_chunks;
    ParallelFor(shards, num_chunks, [&](int w, size_t c) {
      const size_t begin = c * chunk;
      const size_t end = std::min(rows, begin + chunk);
      ExecContext ctx;
      ctx.scratch = &worker_scratch[static_cast<size_t>(w)];
      ctx.slots = slots.data();
      ctx.out = &worker_maps[static_cast<size_t>(w)];
      plan->Execute(begin, end, ctx);
    });
    for (AnswerMap& m : worker_maps) MergeAnswers(std::move(m), out);
  }
  // Normalize lineages (sorting, dedup, absorption) so downstream consumers
  // see canonical DNFs — this is also what makes the planned, legacy and
  // sharded evaluations bit-identical. Independent per answer, so it fans
  // out over the same thread budget.
  std::vector<AnswerInfo*> infos;
  infos.reserve(out->size());
  for (auto& [head, info] : *out) infos.push_back(&info);
  ParallelForChunked(opts_.num_threads, infos.size(), 256,
                     [&](size_t i) { infos[i]->lineage.Normalize(); });
  return Status::OK();
}

Status PlanTemplate::ExecuteBoolean(std::span<const Value> slots,
                                    EvalScratch* scratch, Lineage* out) const {
  MVDB_DCHECK(q_.IsBoolean());
  MVDB_DCHECK(opts_.count_var < 0);
  *out = Lineage();
  ExecContext ctx;
  ctx.scratch = scratch;
  ctx.slots = slots.data();
  ctx.bool_out = out;
  for (const auto& plan : plans_) {
    plan->Execute(0, plan->NumDriverRows(slots.data()), ctx);
  }
  out->Normalize();
  return Status::OK();
}

Status Eval(const Database& db, const Ucq& q, const EvalOptions& opts,
            AnswerMap* out) {
  MVDB_ASSIGN_OR_RETURN(std::unique_ptr<const PlanTemplate> tmpl,
                        PlanTemplate::Plan(db, q, opts));
  EvalScratch scratch;
  return tmpl->Execute(tmpl->exemplar_slots(), &scratch, out);
}

StatusOr<Lineage> EvalBoolean(const Database& db, const Ucq& q) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("EvalBoolean requires a Boolean query");
  }
  AnswerMap answers;
  MVDB_RETURN_NOT_OK(Eval(db, q, EvalOptions{}, &answers));
  if (answers.empty()) return Lineage();
  MVDB_CHECK_EQ(answers.size(), 1u);
  return answers.begin()->second.lineage;
}

}  // namespace mvdb
