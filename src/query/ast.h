// Copyright 2026 The MarkoView Authors.
//
// Abstract syntax for Unions of Conjunctive Queries (UCQ), the query class
// the whole paper is built on (Section 2.1): MarkoView definitions, user
// queries, and the translated constraint query W are all UCQs. Conjunctive
// queries consist of positive relational atoms plus inequality predicates;
// negation/aggregation are confined to deterministic tables and handled
// outside the AST (Section 2.1, footnote 3).

#ifndef MVDB_QUERY_AST_H_
#define MVDB_QUERY_AST_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "relational/types.h"

namespace mvdb {

/// A term is either a query variable (id into Ucq::var_names) or a constant.
struct Term {
  enum class Kind { kVar, kConst };
  Kind kind = Kind::kVar;
  int var = -1;       ///< valid iff kind == kVar
  Value constant = 0; ///< valid iff kind == kConst

  static Term Var(int v) { return Term{Kind::kVar, v, 0}; }
  static Term Const(Value c) { return Term{Kind::kConst, -1, c}; }
  bool is_var() const { return kind == Kind::kVar; }
  bool operator==(const Term& o) const {
    return kind == o.kind && var == o.var && constant == o.constant;
  }
};

/// A relational atom R(t1, ..., tk), or its negation `not R(t1, ..., tk)`
/// (Section 2.5's extension; safe negation: every variable of a negated
/// atom must be bound by positive atoms).
struct Atom {
  std::string relation;
  std::vector<Term> args;
  bool negated = false;
};

/// Comparison operators allowed in inequality predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A predicate `lhs op rhs`, e.g. `aid2 <> aid3`, `year > 2004`.
struct Comparison {
  Term lhs;
  CmpOp op = CmpOp::kEq;
  Term rhs;

  /// Evaluates the comparison on bound values.
  static bool Apply(CmpOp op, Value a, Value b) {
    switch (op) {
      case CmpOp::kEq: return a == b;
      case CmpOp::kNe: return a != b;
      case CmpOp::kLt: return a < b;
      case CmpOp::kLe: return a <= b;
      case CmpOp::kGt: return a > b;
      case CmpOp::kGe: return a >= b;
    }
    return false;
  }
};

/// One conjunctive query: exists (non-head vars) . atoms ^ comparisons.
struct ConjunctiveQuery {
  std::vector<Atom> atoms;
  std::vector<Comparison> comparisons;
};

/// A Union of Conjunctive Queries with shared head variables. Boolean
/// queries have an empty head. Variable ids index var_names; head variables
/// have the same ids in every disjunct.
struct Ucq {
  std::string name;                     ///< head predicate name (optional)
  std::vector<int> head_vars;           ///< ids of head variables
  std::vector<std::string> var_names;   ///< id -> source-level name
  std::vector<ConjunctiveQuery> disjuncts;
  std::optional<double> weight;         ///< [w] annotation on a view rule

  bool IsBoolean() const { return head_vars.empty(); }
  int num_vars() const { return static_cast<int>(var_names.size()); }

  /// Allocates a fresh variable with the given name; returns its id.
  int AddVar(std::string name) {
    var_names.push_back(std::move(name));
    return num_vars() - 1;
  }
};

/// Substitutes variable `var` by constant `value` in every disjunct,
/// producing a UCQ with one fewer free variable logically (the variable id
/// stays allocated but no longer occurs).
Ucq Substitute(const Ucq& q, int var, Value value);

/// Substitutes `var` by `value` within a single disjunct only (used when
/// different disjuncts decompose on different separator variables).
void SubstituteInDisjunct(Ucq* q, size_t disjunct, int var, Value value);

/// Grounds all head variables with the given tuple, yielding a Boolean UCQ.
Ucq GroundHead(const Ucq& q, std::span<const Value> head_values);

/// Appends the disjuncts of the Boolean UCQ `src` to `dst`, renaming
/// variables apart (prefixing their names for readability). Used to form
/// Q v W queries for Eq. 5.
void AppendDisjunctsRenamed(Ucq* dst, const Ucq& src, const std::string& prefix);

/// Pretty-prints a UCQ in datalog syntax (constants shown as raw ints).
std::string ToString(const Ucq& q);

}  // namespace mvdb

#endif  // MVDB_QUERY_AST_H_
