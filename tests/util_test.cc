// Unit tests for src/util: Status/StatusOr, Rng, Interner, weight math.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "relational/types.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace mvdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arity");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, DistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::UnsafeQuery("x").code(), StatusCode::kUnsafeQuery);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> so(42);
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(so.value(), 42);
  EXPECT_EQ(*so, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> so(Status::NotFound("missing"));
  ASSERT_FALSE(so.ok());
  EXPECT_EQ(so.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  MVDB_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = UseAssignOrReturn(7, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) differing += (a.Next() != b.Next());
  EXPECT_GT(differing, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(InternerTest, RoundTrip) {
  Interner dict;
  const int64_t a = dict.Intern("alpha");
  const int64_t b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Lookup(a), "alpha");
  EXPECT_EQ(dict.Lookup(b), "beta");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(InternerTest, FindWithoutInsert) {
  Interner dict;
  EXPECT_EQ(dict.Find("nope"), -1);
  dict.Intern("yes");
  EXPECT_EQ(dict.Find("yes"), 0);
}

TEST(WeightMathTest, WeightToProb) {
  EXPECT_DOUBLE_EQ(WeightToProb(0.0), 0.0);
  EXPECT_DOUBLE_EQ(WeightToProb(1.0), 0.5);
  EXPECT_DOUBLE_EQ(WeightToProb(kCertainWeight), 1.0);
  EXPECT_NEAR(WeightToProb(3.0), 0.75, 1e-12);
}

TEST(WeightMathTest, NegativeTranslatedWeights) {
  // A MarkoView weight w = 2.5 translates to w0 = (1-w)/w = -0.6 and a
  // probability p0 = w0/(1+w0) = -1.5 (Section 3.3).
  const double w0 = (1.0 - 2.5) / 2.5;
  EXPECT_NEAR(w0, -0.6, 1e-12);
  EXPECT_NEAR(WeightToProb(w0), -1.5, 1e-9);
}

TEST(WeightMathTest, RoundTrip) {
  for (double p : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(WeightToProb(ProbToWeight(p)), p, 1e-12);
  }
  EXPECT_EQ(ProbToWeight(1.0), kCertainWeight);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds());  // ms numerically >= s for same span
}

}  // namespace
}  // namespace mvdb
