// Concurrency battery for the serving layer, extending the golden-hash
// discipline of pipeline_golden_test to the READ path: N client threads
// hammer Eval + CC-MVIntersect on one shared index through a Server, across
// worker counts {1, 2, 8, 0}, with the plan cache on and off and batching
// on and off — and every single result must be bit-identical to the serial
// first-principles evaluation (Eval + fresh-manager synthesis + solo CC
// sweep). The serial reference itself is pinned by a golden hash, so a
// change that silently moves answer bits fails even with the concurrency
// machinery agreeing with itself. Runs under the TSan CI job.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mvindex/mv_index.h"
#include "query/eval.h"
#include "serve/server.h"
#include "test_util.h"

namespace mvdb {
namespace {

/// Same clamp rule as the engine/server (noise at the [0,1] borders).
double ClampProb(double p) {
  if (p < 0.0 && p > -1e-9) return 0.0;
  if (p > 1.0 && p < 1.0 + 1e-9) return 1.0;
  return p;
}

void FnvMix(uint64_t v, uint64_t* h) { *h = (*h ^ v) * 1099511628211ULL; }

uint64_t HashAnswers(const std::vector<std::vector<AnswerProb>>& per_query) {
  uint64_t h = 1469598103934665603ULL;
  FnvMix(per_query.size(), &h);
  for (const auto& answers : per_query) {
    FnvMix(answers.size(), &h);
    for (const AnswerProb& a : answers) {
      for (const Value v : a.head) {
        FnvMix(static_cast<uint64_t>(static_cast<int64_t>(v)), &h);
      }
      uint64_t bits;
      std::memcpy(&bits, &a.prob, sizeof(bits));
      FnvMix(bits, &h);
    }
  }
  return h;
}

bool BitEqual(const std::vector<AnswerProb>& a,
              const std::vector<AnswerProb>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].head != b[i].head) return false;
    if (std::memcmp(&a[i].prob, &b[i].prob, sizeof(double)) != 0) return false;
  }
  return true;
}

/// The DBLP-400 workload (affiliation views on — same instance the
/// template golden test pins), compiled once and shared: the serving layer
/// treats it as immutable, which is exactly what this suite stresses.
struct SharedWorkload {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
  std::vector<Ucq> queries;
  std::vector<std::vector<AnswerProb>> reference;  // serial answers, in order
};

SharedWorkload& Shared() {
  static SharedWorkload* shared = [] {
    auto* s = new SharedWorkload();
    dblp::DblpConfig cfg;
    cfg.num_authors = 400;
    cfg.include_affiliation = true;
    auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
    MVDB_CHECK(mvdb.ok());
    s->mvdb = std::move(mvdb).value();
    s->engine = std::make_unique<QueryEngine>(s->mvdb.get());
    MVDB_CHECK(s->engine->Compile().ok());

    // The Fig. 10/11 mix: students-of-advisor and affiliation-of-author
    // queries (repeated shapes, different constants), plus an empty-answer
    // query — all pre-parsed, since parsing interns into the shared dict.
    const Table* advisor = s->mvdb->db().Find("Advisor");
    MVDB_CHECK(advisor != nullptr && advisor->size() >= 6);
    const size_t stride = advisor->size() / 6;
    for (size_t i = 0; i < 6; ++i) {
      const Value senior = advisor->At(static_cast<RowId>(i * stride), 1);
      s->queries.push_back(dblp::StudentsOfAdvisorQuery(
          s->mvdb.get(), dblp::AuthorName(static_cast<int>(senior))));
    }
    const Table* aff = s->mvdb->db().Find("Affiliation");
    MVDB_CHECK(aff != nullptr && aff->size() >= 3);
    for (size_t i = 0; i < 3; ++i) {
      const Value aid = aff->At(static_cast<RowId>(i), 0);
      s->queries.push_back(dblp::AffiliationOfAuthorQuery(
          s->mvdb.get(), dblp::AuthorName(static_cast<int>(aid))));
    }
    s->queries.push_back(
        dblp::StudentsOfAdvisorQuery(s->mvdb.get(), "no-such-author"));

    // Serial first-principles reference: Eval, synthesize each answer's
    // lineage into a FRESH manager (the serving bit-identity invariant),
    // one SOLO CC sweep per root. No Server code involved.
    const MvIndex& index = s->engine->index();
    const ScaledDouble denom = index.ProbNotWScaled();
    CcSweepScratch scratch;
    for (const Ucq& q : s->queries) {
      AnswerMap answers;
      MVDB_CHECK(Eval(s->mvdb->db(), q, EvalOptions{}, &answers).ok());
      BddManager qmgr(index.manager().order());
      std::vector<AnswerProb> out;
      for (const auto& [head, info] : answers) {
        const NodeId root = qmgr.FromLineageSynthesis(info.lineage);
        const ScaledDouble num =
            index.CCMVIntersectScaled(CcQuery{&qmgr, root}, &scratch);
        out.push_back(AnswerProb{head, ClampProb((num / denom).ToDouble())});
      }
      s->reference.push_back(std::move(out));
    }
    return s;
  }();
  return *shared;
}

// Golden hash of the serial reference answers on DBLP-400. If an
// intentional pipeline change moves this value, re-pin it together with
// the pipeline_golden_test / mvindex_template_test hashes.
constexpr uint64_t kGoldenAnswers = 9734561884288702949ULL;

TEST(ServeConcurrencyTest, SerialReferenceMatchesGoldenHash) {
  SharedWorkload& s = Shared();
  size_t nonempty = 0, total_answers = 0;
  for (const auto& answers : s.reference) {
    if (!answers.empty()) ++nonempty;
    total_answers += answers.size();
  }
  EXPECT_EQ(nonempty, 9u);  // every query but the no-such-author one
  EXPECT_TRUE(s.reference.back().empty());
  EXPECT_GT(total_answers, 9u);
  EXPECT_EQ(HashAnswers(s.reference), kGoldenAnswers);
}

TEST(ServeConcurrencyTest, SynchronousExecuteMatchesReferenceBitwise) {
  SharedWorkload& s = Shared();
  ServeOptions opts;
  opts.start_workers = false;  // Execute() needs no workers
  auto server = s.engine->Serve(opts);
  ASSERT_TRUE(server.ok());
  for (size_t i = 0; i < s.queries.size(); ++i) {
    ServeRequest req;
    req.query = s.queries[i];
    const ServeResult res = (*server)->Execute(req);
    ASSERT_TRUE(res.status.ok()) << res.status.ToString();
    EXPECT_TRUE(BitEqual(res.answers, s.reference[i])) << "query " << i;
  }
}

/// Hammers one server config from `clients` threads, `reps` passes over the
/// full query mix each, and verifies EVERY result bit-identical to the
/// serial reference. Returns the number of verified results.
size_t Hammer(Server* server, int clients, int reps) {
  SharedWorkload& s = Shared();
  const size_t nq = s.queries.size();
  struct Slot {
    size_t query = 0;
    ServeResult result;
  };
  std::vector<std::vector<Slot>> per_client(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& slots = per_client[static_cast<size_t>(c)];
      // Stagger each client's starting offset so concurrent batches mix
      // different query shapes.
      for (int r = 0; r < reps; ++r) {
        for (size_t k = 0; k < nq; ++k) {
          const size_t qi = (k + static_cast<size_t>(c)) % nq;
          ServeRequest req;
          req.query = s.queries[qi];
          auto fut = server->Submit(req);
          slots.push_back(Slot{qi, fut.get()});
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  size_t verified = 0;
  for (const auto& slots : per_client) {
    for (const Slot& slot : slots) {
      EXPECT_TRUE(slot.result.status.ok()) << slot.result.status.ToString();
      EXPECT_TRUE(BitEqual(slot.result.answers, s.reference[slot.query]))
          << "query " << slot.query;
      ++verified;
    }
  }
  return verified;
}

TEST(ServeConcurrencyTest, BitIdenticalAcrossWorkerThreadCounts) {
  SharedWorkload& s = Shared();
  for (const int workers : {1, 2, 8, 0}) {  // 0 = one per hardware thread
    ServeOptions opts;
    opts.num_threads = workers;
    opts.max_batch = 4;
    auto server = s.engine->Serve(opts);
    ASSERT_TRUE(server.ok());
    const size_t verified = Hammer(server->get(), /*clients=*/4, /*reps=*/3);
    EXPECT_EQ(verified, 4u * 3u * s.queries.size()) << "workers=" << workers;
    (*server)->Shutdown();
    const ServerStats stats = (*server)->stats();
    EXPECT_EQ(stats.completed, verified) << "workers=" << workers;
    EXPECT_EQ(stats.failed, 0u);
    // The repeated shapes actually hit the cache under concurrency.
    const PlanCacheStats cache = (*server)->plan_cache_stats();
    EXPECT_GT(cache.hits, 0u);
    EXPECT_GE(cache.misses, 2u);  // two distinct shapes in the mix
  }
}

TEST(ServeConcurrencyTest, BitIdenticalWithCacheOffAndWithBatchingOff) {
  SharedWorkload& s = Shared();
  {
    ServeOptions opts;
    opts.num_threads = 8;
    opts.use_plan_cache = false;  // the escape hatch: re-plan every request
    auto server = s.engine->Serve(opts);
    ASSERT_TRUE(server.ok());
    Hammer(server->get(), 4, 2);
    EXPECT_EQ((*server)->plan_cache_stats().misses, 0u);
  }
  {
    ServeOptions opts;
    opts.num_threads = 8;
    opts.max_batch = 1;  // no cross-request batching
    auto server = s.engine->Serve(opts);
    ASSERT_TRUE(server.ok());
    Hammer(server->get(), 4, 2);
    (*server)->Shutdown();
    EXPECT_EQ((*server)->stats().batched_requests, 0u);
  }
}

TEST(ServeConcurrencyTest, BatchedSweepMatchesSoloSweepPerRoot) {
  // Direct MvIndex-level check, independent of the Server: a batch of all
  // reference roots in one pass must reproduce each solo sweep bit for bit
  // (the batching invariant the serving layer is built on).
  SharedWorkload& s = Shared();
  const MvIndex& index = s.engine->index();
  BddManager qmgr(index.manager().order());
  std::vector<CcQuery> roots;
  for (const Ucq& q : s.queries) {
    AnswerMap answers;
    MVDB_CHECK(Eval(s.mvdb->db(), q, EvalOptions{}, &answers).ok());
    for (const auto& [head, info] : answers) {
      roots.push_back(CcQuery{&qmgr, qmgr.FromLineageSynthesis(info.lineage)});
    }
  }
  ASSERT_GT(roots.size(), 10u);

  CcSweepScratch scratch;
  std::vector<ScaledDouble> batched;
  index.CCMVIntersectBatchScaled(roots, &scratch, &batched);
  ASSERT_EQ(batched.size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    const ScaledDouble solo = index.CCMVIntersectScaled(roots[i], &scratch);
    const double a = batched[i].ToDouble();
    const double b = solo.ToDouble();
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << "root " << i;
  }
}

TEST(ServeConcurrencyTest, EngineQueryAgreesWithServingWithinTolerance) {
  // The engine's own Query() path synthesizes into the big shared manager,
  // whose NodeIds (and so accumulation orders) differ from the fresh
  // per-request managers — agreement is to floating-point accuracy, not
  // bitwise; both are pinned against the same mathematical value.
  SharedWorkload& s = Shared();
  for (size_t i = 0; i < s.queries.size(); ++i) {
    auto engine_answers = s.engine->Query(s.queries[i], Backend::kMvIndexCC);
    ASSERT_TRUE(engine_answers.ok());
    ASSERT_EQ(engine_answers->size(), s.reference[i].size());
    for (size_t j = 0; j < s.reference[i].size(); ++j) {
      EXPECT_EQ((*engine_answers)[j].head, s.reference[i][j].head);
      EXPECT_NEAR((*engine_answers)[j].prob, s.reference[i][j].prob, 1e-9);
    }
  }
}

}  // namespace
}  // namespace mvdb
