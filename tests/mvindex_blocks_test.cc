// Tests for MV-index block metadata (the Inter/Intra index structures) and
// the ConOBDD construction counters that Figure 8 and Ablation A report.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mvindex/mv_index.h"
#include "obdd/order.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

TEST(MvBlockTest, BlocksAreLevelOrderedAndDisjoint) {
  auto mvdb = dblp::BuildDblpMvdb(dblp::DblpConfig{.num_authors = 200}, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  const auto& blocks = engine.index().blocks();
  ASSERT_GT(blocks.size(), 1u);
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_LE(blocks[i].first_level, blocks[i].last_level) << i;
    if (i > 0) {
      // Strictly increasing, non-overlapping level ranges: the chain
      // invariant that makes fast-forward skipping sound.
      EXPECT_GT(blocks[i].first_level, blocks[i - 1].last_level) << i;
    }
  }
  // The chain entry of the first block is the root of the whole index.
  EXPECT_EQ(blocks[0].chain_root, engine.index().flat().root());
}

TEST(MvBlockTest, BlockProbProductIsProbNotW) {
  auto mvdb = dblp::BuildDblpMvdb(dblp::DblpConfig{.num_authors = 150}, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  // ProbNotWScaled is defined as the left-to-right prefix product over the
  // block probabilities, and this loop multiplies in the same order, so
  // the identity holds bitwise — not just to tolerance.
  ScaledDouble product = ScaledDouble::One();
  for (const MvBlock& b : engine.index().blocks()) product *= b.prob;
  const ScaledDouble total = engine.index().ProbNotWScaled();
  EXPECT_TRUE(product == total)
      << product.ToString() << " vs " << total.ToString();
}

TEST(MvBlockTest, ChainRootProbUnderIsBlockProb) {
  auto mvdb = dblp::BuildDblpMvdb(dblp::DblpConfig{.num_authors = 120}, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  const auto& index = engine.index();
  const auto& blocks = index.blocks();
  ASSERT_GT(blocks.size(), 2u);
  // Annotations are block-local: the value at block i's chain entry is the
  // standalone P(NOT W_i) — the same recurrence FinishBlock ran on the
  // standalone piece — NOT a suffix product over the rest of the chain.
  // Bitwise, because the weight-delta repair's O(1) block reprobe reads
  // exactly this identity.
  for (size_t i = 0; i < blocks.size(); ++i) {
    const ScaledDouble got =
        index.flat().prob_under_scaled(blocks[i].chain_root);
    EXPECT_TRUE(got == blocks[i].prob)
        << "block " << i << ": " << got.ToString() << " vs "
        << blocks[i].prob.ToString();
  }
}

TEST(FlatObddIndexTest, NodesAtLevelIsContiguousAndComplete) {
  auto db = testing_util::Fig3Database();
  BddManager mgr(BuildDefaultOrder(*db));
  ConObddBuilder builder(*db, &mgr);
  Ucq q = MustParse("Q :- R(x), S(x,y).", &db->dict());
  const NodeId f = std::move(builder.Build(q)).value();
  FlatObdd flat(mgr, f, db->VarProbs());
  size_t covered = 0;
  for (size_t l = 0; l < mgr.num_levels(); ++l) {
    const auto [b, e] = flat.NodesAtLevel(static_cast<int32_t>(l));
    for (FlatId u = b; u < e; ++u) {
      EXPECT_EQ(flat.level(u), static_cast<int32_t>(l));
      ++covered;
    }
  }
  EXPECT_EQ(covered, flat.size());
}

TEST(ConObddCountersTest, SeparatorQueryOnlyConcatenates) {
  auto db = testing_util::Fig3Database();
  BddManager mgr(BuildDefaultOrder(*db));
  ConObddBuilder builder(*db, &mgr);
  Ucq q = MustParse("Q :- R(x), S(x,y).", &db->dict());
  ASSERT_TRUE(builder.Build(q).ok());
  EXPECT_GT(builder.concat_count(), 0u);
  EXPECT_EQ(builder.synthesis_count(), 0u);
}

TEST(ConObddCountersTest, InversionForcesSynthesis) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"a", "b"}, true).ok());
  ASSERT_TRUE(db.CreateTable("T", {"b"}, true).ok());
  for (int x = 1; x <= 3; ++x) {
    db.InsertProbabilistic("R", {x}, 1.0);
    db.InsertProbabilistic("T", {10 + x}, 1.0);
    for (int y = 1; y <= 3; ++y) {
      db.InsertProbabilistic("S", {x, 10 + y}, 1.0);
    }
  }
  BddManager mgr(BuildDefaultOrder(db));
  ConObddBuilder builder(db, &mgr);
  // H0 has no separator: the residual conjunction must synthesize.
  Ucq q = MustParse("Q :- R(x), S(x,y), T(y).", &db.dict());
  ASSERT_TRUE(builder.Build(q).ok());
  EXPECT_GT(builder.synthesis_count(), 0u);
}

TEST(OrderSpecTest, SeparatorFirstKeepsBlocksContiguous) {
  // With pi placing the separator attribute first, each separator value's
  // variables occupy one contiguous level range (the property concat needs).
  Database db;
  ASSERT_TRUE(db.CreateTable("S", {"a", "b"}, true).ok());
  for (int a = 1; a <= 4; ++a) {
    for (int b = 1; b <= 3; ++b) {
      db.InsertProbabilistic("S", {a, 100 + b}, 1.0);
    }
  }
  OrderSpec spec;
  spec.pi["S"] = {0, 1};
  const auto order = BuildVariableOrder(db, spec);
  const Table* s = db.Find("S");
  // Walk the order: the first-column value must be non-decreasing.
  Value prev = -1;
  for (VarId v : order) {
    const TupleRef& ref = db.var_tuple(v);
    const Value a = s->At(ref.row, 0);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

}  // namespace
}  // namespace mvdb
