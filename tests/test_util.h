// Copyright 2026 The MarkoView Authors.
//
// Shared helpers for the test suite: tiny databases, random lineages, and
// random MVDB instances for the property tests.

#ifndef MVDB_TESTS_TEST_UTIL_H_
#define MVDB_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "core/mvdb.h"
#include "prob/lineage.h"
#include "query/parser.h"
#include "relational/database.h"
#include "util/logging.h"
#include "util/rng.h"

namespace mvdb {
namespace testing_util {

/// Parses a UCQ or CHECK-fails (tests only).
inline Ucq MustParse(const std::string& text, Interner* dict) {
  auto result = ParseUcq(text, dict);
  MVDB_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// The running-example database of Fig. 3: R = {a1, a2} and
/// S = {(a1,b1), (a1,b2), (a2,b3), (a2,b4)}, all probabilistic.
/// Domain encoding: a1=1, a2=2, b1=11, b2=12, b3=13, b4=14.
inline std::unique_ptr<Database> Fig3Database(double weight = 1.0) {
  auto db = std::make_unique<Database>();
  MVDB_CHECK(db->CreateTable("R", {"a"}, true).ok());
  MVDB_CHECK(db->CreateTable("S", {"a", "b"}, true).ok());
  db->InsertProbabilistic("R", {1}, weight);
  db->InsertProbabilistic("R", {2}, weight);
  db->InsertProbabilistic("S", {1, 11}, weight);
  db->InsertProbabilistic("S", {1, 12}, weight);
  db->InsertProbabilistic("S", {2, 13}, weight);
  db->InsertProbabilistic("S", {2, 14}, weight);
  return db;
}

/// Random positive DNF over `num_vars` variables.
inline Lineage RandomLineage(Rng* rng, int num_vars, int num_clauses,
                             int max_clause_len) {
  Lineage lineage;
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    const int len = 1 + static_cast<int>(rng->Below(
                            static_cast<uint64_t>(max_clause_len)));
    for (int i = 0; i < len; ++i) {
      clause.push_back(static_cast<VarId>(rng->Below(
          static_cast<uint64_t>(num_vars))));
    }
    lineage.AddClause(clause);
  }
  lineage.Normalize();
  return lineage;
}

/// Random marginal probabilities; with `allow_negative`, a fraction lie
/// outside [0,1] to exercise Section 3.3.
inline std::vector<double> RandomProbs(Rng* rng, int num_vars,
                                       bool allow_negative = false) {
  std::vector<double> probs(static_cast<size_t>(num_vars));
  for (double& p : probs) {
    p = rng->Uniform();
    if (allow_negative && rng->Chance(0.3)) p = -rng->Uniform() * 2.0;
  }
  return probs;
}

/// A small random MVDB for the Theorem 1 property test: two probabilistic
/// relations R(x), S(x,y) over a tiny domain plus 1-2 MarkoViews with
/// weights drawn from {0, 0.4, 1, 2.5, 7}.
struct RandomMvdbSpec {
  int domain = 3;
  double denial_chance = 0.25;
  bool with_binary_view = true;
};

inline std::unique_ptr<Mvdb> RandomMvdb(Rng* rng, const RandomMvdbSpec& spec) {
  auto mvdb = std::make_unique<Mvdb>();
  Database& db = mvdb->db();
  MVDB_CHECK(db.CreateTable("R", {"x"}, true).ok());
  MVDB_CHECK(db.CreateTable("S", {"x", "y"}, true).ok());
  auto rand_weight = [&]() { return 0.2 + rng->Uniform() * 3.0; };
  for (int x = 1; x <= spec.domain; ++x) {
    if (rng->Chance(0.8)) db.InsertProbabilistic("R", {x}, rand_weight());
    for (int y = 1; y <= spec.domain; ++y) {
      if (rng->Chance(0.5)) db.InsertProbabilistic("S", {x, y}, rand_weight());
    }
  }
  auto view_weight = [&]() -> double {
    const double choices[] = {0.0, 0.4, 1.0, 2.5, 7.0};
    if (rng->Chance(spec.denial_chance)) return 0.0;
    return choices[1 + rng->Below(4)];
  };
  Ucq v1 = MustParse("V1(x) :- R(x), S(x,y).", &db.dict());
  MVDB_CHECK(mvdb->AddView(MarkoView::Constant("V1", std::move(v1),
                                               view_weight())).ok());
  if (spec.with_binary_view) {
    Ucq v2 = MustParse("V2(x,y) :- S(x,y), R(y).", &db.dict());
    MVDB_CHECK(mvdb->AddView(MarkoView::Constant("V2", std::move(v2),
                                                 view_weight())).ok());
  }
  return mvdb;
}

}  // namespace testing_util
}  // namespace mvdb

#endif  // MVDB_TESTS_TEST_UTIL_H_
