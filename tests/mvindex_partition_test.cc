// Determinism of the parallel partition stage (mvindex/partition.h): the
// sharded separator-domain substitution must yield exactly the ordered
// block-task list the serial loop produces — same keys, same per-task
// subqueries — on random MVDBs and on the DBLP workload. The task list
// fixes block identity for every later build stage, so any divergence here
// would silently re-key the whole index.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/mvdb.h"
#include "dblp/dblp.h"
#include "mvindex/partition.h"
#include "query/ast.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::RandomMvdb;
using testing_util::RandomMvdbSpec;

IsProbFn IsProbOf(const Database& db) {
  return [&db](const std::string& rel) {
    const Table* t = db.Find(rel);
    return t != nullptr && t->probabilistic();
  };
}

/// Task lists must agree exactly: count, keys, and the (pretty-printed)
/// grounded subqueries the tasks materialize to.
void ExpectIdenticalTasks(const PartitionResult& a, const PartitionResult& b) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].key, b.tasks[i].key) << "task " << i;
    EXPECT_EQ(ToString(MaterializeTaskQuery(a, a.tasks[i])),
              ToString(MaterializeTaskQuery(b, b.tasks[i])))
        << "task " << i;
  }
}

/// The fast-path signature computed from (shape, binding) must agree with
/// the signature of the materialized grounded query — the template store
/// keys on the former, so any drift would silently mis-share plans.
void ExpectGroundedSignaturesMatch(const PartitionResult& p) {
  for (const BlockTask& task : p.tasks) {
    if (task.shape < 0) continue;
    const BlockShape& shape = p.shapes[static_cast<size_t>(task.shape)];
    const UcqSignature fast = ComputeGroundedSignature(
        shape.query, shape.sep_var_of_disjunct, task.binding);
    const UcqSignature full =
        ComputeUcqSignature(MaterializeTaskQuery(p, task));
    EXPECT_EQ(fast.key, full.key) << "task " << task.key;
    EXPECT_EQ(fast.slots, full.slots) << "task " << task.key;
  }
}

class PartitionParityTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionParityTest, ParallelPartitionMatchesSerialOnRandomMvdbs) {
  Rng rng(9100 + static_cast<uint64_t>(GetParam()));
  RandomMvdbSpec spec;
  spec.domain = 3 + static_cast<int>(rng.Below(4));
  spec.with_binary_view = rng.Chance(0.7);
  auto mvdb = RandomMvdb(&rng, spec);
  ASSERT_TRUE(mvdb->Translate().ok());
  const Database& db = mvdb->db();
  const auto is_prob = IsProbOf(db);

  const auto serial = PartitionBlocks(db, mvdb->W(), is_prob, 1);
  for (int threads : {2, 8}) {
    ExpectIdenticalTasks(serial,
                         PartitionBlocks(db, mvdb->W(), is_prob, threads));
  }
  ExpectGroundedSignaturesMatch(serial);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PartitionParityTest,
                         ::testing::Range(0, 12));

TEST(PartitionTest, ParallelPartitionMatchesSerialOnDblp) {
  dblp::DblpConfig cfg;
  cfg.num_authors = 200;
  cfg.include_affiliation = true;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(mvdb.ok());
  ASSERT_TRUE((*mvdb)->Translate().ok());
  const Database& db = (*mvdb)->db();
  const auto is_prob = IsProbOf(db);

  const auto serial = PartitionBlocks(db, (*mvdb)->W(), is_prob, 1);
  ASSERT_GT(serial.tasks.size(), 1u);  // DBLP decomposes on the aid separator
  ASSERT_GT(serial.shapes.size(), 0u);
  for (int threads : {2, 8, 0}) {  // 0 = one per hardware thread
    ExpectIdenticalTasks(serial,
                         PartitionBlocks(db, (*mvdb)->W(), is_prob, threads));
  }
  ExpectGroundedSignaturesMatch(serial);
}

TEST(PartitionTest, EmptyAndUndecomposableQueries) {
  auto db = testing_util::Fig3Database();
  const auto is_prob = IsProbOf(*db);
  // Empty W: no tasks.
  Ucq empty;
  EXPECT_TRUE(PartitionBlocks(*db, empty, is_prob, 4).tasks.empty());
  // A query with no separator still yields its per-group tasks, identically
  // at any thread count.
  Ucq q = testing_util::MustParse("Q :- R(x), S(y,x).", &db->dict());
  const auto serial = PartitionBlocks(*db, q, is_prob, 1);
  ExpectIdenticalTasks(serial, PartitionBlocks(*db, q, is_prob, 8));
}

}  // namespace
}  // namespace mvdb
