// Plan-template parity and error-propagation tests for the MV-index
// compile stage. The template path (plan each block-query *shape* once,
// execute per separator value — MvIndexBuildOptions::use_plan_templates)
// must produce a bit-identical index to the classic per-block path on every
// workload: same flat topology, same block metadata, same extended-range
// probabilities. A DBLP-400 golden hash pins the output of both paths, and
// the injected-failure tests pin the deterministic error contract: when
// several blocks fail, the build reports the first failing block in
// canonical task order — whether the failure surfaces at template planning
// or during a worker's block execution, and regardless of thread count.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mvindex/mv_index.h"
#include "obdd/order.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;
using testing_util::RandomMvdb;
using testing_util::RandomMvdbSpec;

void FnvMix(uint64_t v, uint64_t* h) { *h = (*h ^ v) * 1099511628211ULL; }

/// Hashes the full compiled index: flat topology (levels, edges, root),
/// per-block metadata (keys, chain roots, level ranges, probability bits),
/// and P0(NOT W) — any divergence between the template and classic compile
/// paths shows up here.
uint64_t HashIndex(const MvIndex& index) {
  uint64_t h = 1469598103934665603ULL;
  const FlatObdd& flat = index.flat();
  FnvMix(static_cast<uint64_t>(static_cast<int64_t>(flat.root())), &h);
  FnvMix(flat.size(), &h);
  for (FlatId u = 0; u < static_cast<FlatId>(flat.size()); ++u) {
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.level(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.lo(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.hi(u))), &h);
  }
  FnvMix(index.blocks().size(), &h);
  for (const MvBlock& b : index.blocks()) {
    for (char c : b.key) FnvMix(static_cast<uint64_t>(c), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.chain_root)), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.first_level)), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.last_level)), &h);
    const double p = b.prob.ToDouble();
    uint64_t bits;
    std::memcpy(&bits, &p, sizeof(bits));
    FnvMix(bits, &h);
  }
  const double not_w = index.ProbNotW();
  uint64_t bits;
  std::memcpy(&bits, &not_w, sizeof(bits));
  FnvMix(bits, &h);
  return h;
}

struct BuildOutcome {
  uint64_t hash = 0;
  MvIndexBuildStats stats;
};

BuildOutcome CompileMvdb(Mvdb* mvdb, bool use_templates, int threads) {
  QueryEngine engine(mvdb);
  CompileOptions opts;
  opts.num_threads = threads;
  opts.use_plan_templates = use_templates;
  const Status s = engine.Compile(opts);
  EXPECT_TRUE(s.ok()) << s.ToString();
  BuildOutcome out;
  out.hash = HashIndex(engine.index());
  out.stats = engine.index().build_stats();
  return out;
}

class TemplateParityTest : public ::testing::TestWithParam<int> {};

TEST_P(TemplateParityTest, TemplateAndClassicPathsAgreeOnRandomMvdbs) {
  // Draw the identical random instance twice (Compile mutates the Mvdb, so
  // the two paths need separate copies).
  auto make = [&]() {
    Rng rng(7300 + static_cast<uint64_t>(GetParam()));
    RandomMvdbSpec spec;
    spec.domain = 3 + static_cast<int>(rng.Below(4));
    spec.with_binary_view = rng.Chance(0.7);
    return RandomMvdb(&rng, spec);
  };
  auto with = make();
  auto without = make();

  const BuildOutcome a = CompileMvdb(with.get(), /*use_templates=*/true, 1);
  const BuildOutcome b = CompileMvdb(without.get(), /*use_templates=*/false, 1);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.stats.blocks, b.stats.blocks);
  EXPECT_EQ(a.stats.merged, b.stats.merged);
  EXPECT_EQ(a.stats.flat_nodes, b.stats.flat_nodes);
  // The escape hatch really does disable the template stage.
  EXPECT_EQ(b.stats.plan_templates, 0u);
  EXPECT_EQ(b.stats.template_blocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TemplateParityTest,
                         ::testing::Range(0, 12));

std::unique_ptr<Mvdb> Dblp400() {
  dblp::DblpConfig cfg;
  cfg.num_authors = 400;
  cfg.include_affiliation = true;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  MVDB_CHECK(mvdb.ok());
  return std::move(mvdb).value();
}

TEST(TemplateGoldenTest, Dblp400BitIdenticalForEveryPathAndThreadCount) {
  // Golden flat-index hash of the DBLP-400 build. If an intentional
  // pipeline change moves this value, re-pin it together with the
  // pipeline_golden_test hash.
  constexpr uint64_t kGolden = 6680169412690263446ULL;
  const BuildOutcome ref = CompileMvdb(Dblp400().get(), true, 1);
  EXPECT_EQ(ref.hash, kGolden);
  EXPECT_GT(ref.stats.plan_templates, 0u);
  EXPECT_GT(ref.stats.template_blocks, 0u);
  // DBLP's ~hundreds of blocks per group collapse onto a handful of
  // distinct shapes.
  EXPECT_LT(ref.stats.plan_templates, 10u);

  auto classic = Dblp400();
  EXPECT_EQ(CompileMvdb(classic.get(), false, 1).hash, kGolden);
  for (int threads : {2, 8, 0}) {  // 0 = one per hardware thread
    auto mvdb = Dblp400();
    EXPECT_EQ(CompileMvdb(mvdb.get(), true, threads).hash, kGolden)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Deterministic error propagation (injected failing blocks).
// ---------------------------------------------------------------------------

/// W whose first group fails at *template-planning* time (the leaf join
/// plan references the missing table Bad1) and whose second group fails at
/// *execution* time (the separator residual recursion hits Bad2). Several
/// hundred block tasks fail; the build must always report the first one in
/// canonical task order — a g0 block, hence Bad1 — not whichever worker or
/// failure stage surfaced first.
class ErrorPropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("R", {"a"}, true).ok());
    ASSERT_TRUE(db_->CreateTable("S", {"a", "b"}, true).ok());
    ASSERT_TRUE(db_->CreateTable("T", {"c"}, true).ok());
    ASSERT_TRUE(db_->CreateTable("U", {"c", "d"}, true).ok());
    for (int x = 1; x <= 40; ++x) {
      db_->InsertProbabilistic("R", {x}, 1.0);
      db_->InsertProbabilistic("S", {x, 100 + x}, 1.0);
      db_->InsertProbabilistic("T", {200 + x}, 1.0);
      db_->InsertProbabilistic("U", {200 + x, 300 + x}, 1.0);
    }
    // g0 (R/S, separator x): the two disjuncts kill the in-block
    // separator, so the template plans a leaf over both — and fails on
    // Bad1 while *planning*. g1 (T/U, separator z): after grounding z the
    // U/Bad2 join component still has separator w, so the template defers
    // that residual to the classic recursion, which fails on Bad2 only
    // when a worker *executes* the block.
    w_ = MustParse(
        "W :- R(x), Bad1(x). W :- R(x), S(x,y). W :- T(z), U(z,w), Bad2(w).",
        &db_->dict());
  }

  Status BuildWith(bool use_templates, int threads) {
    BddManager mgr(BuildDefaultOrder(*db_));
    MvIndexBuildOptions opts;
    opts.num_threads = threads;
    opts.use_plan_templates = use_templates;
    return MvIndex::Build(*db_, w_, &mgr, db_->VarProbs(), opts).status();
  }

  std::unique_ptr<Database> db_;
  Ucq w_;
};

TEST_F(ErrorPropagationTest, FirstFailingBlockInTaskOrderWinsOnEveryPath) {
  for (const bool use_templates : {true, false}) {
    for (const int threads : {1, 2, 8}) {
      const Status s = BuildWith(use_templates, threads);
      ASSERT_FALSE(s.ok()) << "templates=" << use_templates
                           << " threads=" << threads;
      // Always the g0 failure (Bad1), never g1's Bad2, and the message is
      // identical across thread counts and compile paths.
      EXPECT_NE(s.ToString().find("Bad1"), std::string::npos)
          << "templates=" << use_templates << " threads=" << threads << ": "
          << s.ToString();
      EXPECT_EQ(s.ToString().find("Bad2"), std::string::npos)
          << "templates=" << use_templates << " threads=" << threads << ": "
          << s.ToString();
    }
  }
}

TEST_F(ErrorPropagationTest, ExecutionTimeFailuresAloneAlsoErrorOut) {
  // Drop the plan-time failure: only g1's execution-time injection remains,
  // and the build must still fail deterministically (regression guard for
  // the skip-path audit: a failed block must never be silently treated as
  // a present=false skip).
  w_ = MustParse("W :- R(x), S(x,y). W :- T(z), U(z,w), Bad2(w).",
                 &db_->dict());
  for (const bool use_templates : {true, false}) {
    for (const int threads : {1, 8}) {
      const Status s = BuildWith(use_templates, threads);
      ASSERT_FALSE(s.ok());
      EXPECT_NE(s.ToString().find("Bad2"), std::string::npos) << s.ToString();
    }
  }
}

TEST(TemplateParityCornerTest, SeparatorValueCollidingWithQueryConstant) {
  // The separator domain contains the value 3, which also appears as a
  // comparison constant in W: block x=3 has a different constant-equality
  // pattern (both constants collapse onto one slot), hence its own
  // signature and template. The collision branch must still produce the
  // classic path's output bit for bit.
  auto make = []() {
    auto db = std::make_unique<Database>();
    MVDB_CHECK(db->CreateTable("P", {"x", "y"}, true).ok());
    Rng rng(41);
    for (int x = 1; x <= 6; ++x) {
      for (int y = 1; y <= 6; ++y) {
        if (rng.Chance(0.6)) {
          db->InsertProbabilistic("P", {x, y}, 0.3 + rng.Uniform());
        }
      }
    }
    return db;
  };
  auto build = [](Database* db, bool use_templates) {
    Ucq w = MustParse("W :- P(x,y), y > 3.", &db->dict());
    BddManager mgr(BuildDefaultOrder(*db));
    MvIndexBuildOptions opts;
    opts.use_plan_templates = use_templates;
    auto index = MvIndex::Build(*db, w, &mgr, db->VarProbs(), opts);
    MVDB_CHECK(index.ok()) << index.status().ToString();
    return HashIndex(**index);
  };
  auto db_a = make();
  auto db_b = make();
  EXPECT_EQ(build(db_a.get(), true), build(db_b.get(), false));
}

TEST(TemplateStatsTest, TemplateCountersPopulatedOnDblp) {
  auto mvdb = Dblp400();
  const BuildOutcome r = CompileMvdb(mvdb.get(), true, 1);
  // Every decomposed block executes through a shared template on DBLP.
  EXPECT_GT(r.stats.template_blocks, r.stats.block_tasks / 2);
  EXPECT_LE(r.stats.template_blocks, r.stats.block_tasks);
  EXPECT_GE(r.stats.template_plan_seconds, 0.0);
  EXPECT_LE(r.stats.template_plan_seconds, r.stats.compile_seconds);
}

}  // namespace
}  // namespace mvdb
