// The central property test of this repository: Theorem 1.
//
// For random small MVDBs (random relations, random weights including w < 1,
// w > 1, w = 0 denial views and w = 1 independence) and random Boolean UCQs
// Q, the probability computed by the ground MLN semantics (Definition 4,
// exact world enumeration) must equal
//
//     (P0(Q v W) - P0(W)) / (1 - P0(W))  =  P0(Q ^ NOT W) / P0(NOT W)
//
// on the translated tuple-independent database (Definition 5) — evaluated
// through every backend: brute force, reused W OBDD, MV-index (both
// intersection algorithms), and lifted safe plans.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;
using testing_util::RandomMvdb;
using testing_util::RandomMvdbSpec;

class Theorem1Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Test, MlnSemanticsEqualsTranslation) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  RandomMvdbSpec spec;
  spec.domain = 2 + static_cast<int>(rng.Below(2));  // keep MLN enumerable
  spec.with_binary_view = rng.Chance(0.7);
  auto mvdb = RandomMvdb(&rng, spec);
  if (mvdb->db().num_vars() == 0) GTEST_SKIP() << "empty random instance";

  QueryEngine engine(mvdb.get());
  auto st = engine.Compile();
  ASSERT_TRUE(st.ok()) << st.ToString();

  auto mln = mvdb->ToGroundMln();
  ASSERT_TRUE(mln.ok());

  const char* queries[] = {
      "Q :- R(x).",
      "Q :- S(x,y).",
      "Q :- R(x), S(x,y).",
      "Q :- R(1).",
      "Q :- S(2,y).",
      "Q :- R(x), S(x,y). Q :- R(2).",
      "Q :- S(x,y), R(y).",
  };
  for (const char* qs : queries) {
    Ucq q = MustParse(qs, &mvdb->db().dict());
    const Lineage q_lineage = *EvalBoolean(mvdb->db(), q);
    auto exact = mln->ExactQueryProb(q_lineage);
    if (!exact.ok()) continue;  // no possible world (over-constrained)

    for (Backend b : {Backend::kBruteForce, Backend::kObddReuse,
                      Backend::kMvIndex, Backend::kMvIndexCC}) {
      auto p = engine.QueryBoolean(q, b);
      ASSERT_TRUE(p.ok()) << qs << ": " << p.status().ToString();
      EXPECT_NEAR(*p, *exact, 1e-9)
          << "query " << qs << " backend " << static_cast<int>(b)
          << " seed " << GetParam();
    }
    // The safe-plan backend applies only when Q v W and W are safe.
    auto sp = engine.QueryBoolean(q, Backend::kSafePlan);
    if (sp.ok()) {
      EXPECT_NEAR(*sp, *exact, 1e-9) << "safeplan " << qs;
    } else {
      EXPECT_EQ(sp.status().code(), StatusCode::kUnsafeQuery) << qs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem1Test,
                         ::testing::Range(0, 25));

TEST(Theorem1EdgeCases, AnswerTupleProbabilities) {
  // Non-Boolean queries: per-answer probabilities match per-answer MLN
  // queries.
  Rng rng(77);
  RandomMvdbSpec spec;
  spec.domain = 3;
  auto mvdb = RandomMvdb(&rng, spec);
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  auto mln = mvdb->ToGroundMln();
  ASSERT_TRUE(mln.ok());

  Ucq q = MustParse("Q(x) :- R(x), S(x,y).", &mvdb->db().dict());
  auto answers = engine.Query(q, Backend::kMvIndexCC);
  ASSERT_TRUE(answers.ok());
  for (const auto& [head, prob] : *answers) {
    Ucq grounded = GroundHead(q, head);
    const Lineage lin = *EvalBoolean(mvdb->db(), grounded);
    auto exact = mln->ExactQueryProb(lin);
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(prob, *exact, 1e-9) << "head " << head[0];
    EXPECT_GE(prob, 0.0);
    EXPECT_LE(prob, 1.0);
  }
}

TEST(Theorem1EdgeCases, ResultAlwaysInUnitInterval) {
  // Even with strongly positive correlations (very negative NV
  // probabilities), final answers are valid probabilities.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"x"}, true).ok());
  db.InsertProbabilistic("R", {1}, 0.5);
  db.InsertProbabilistic("S", {1}, 0.5);
  Ucq def = MustParse("V(x) :- R(x), S(x).", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V", std::move(def), 50.0)).ok());
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  auto mln = mvdb.ToGroundMln();
  Ucq q = MustParse("Q :- R(x).", &mvdb.db().dict());
  auto p = engine.QueryBoolean(q);
  ASSERT_TRUE(p.ok());
  EXPECT_GE(*p, 0.0);
  EXPECT_LE(*p, 1.0);
  const Lineage lin = *EvalBoolean(mvdb.db(), q);
  EXPECT_NEAR(*p, *mln->ExactQueryProb(lin), 1e-9);
}

TEST(Theorem1EdgeCases, DenialViewMatchesHardConstraintSemantics) {
  // V2-style denial: one advisor per person.
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("A", {"x", "y"}, true).ok());
  db.InsertProbabilistic("A", {1, 2}, 1.0);
  db.InsertProbabilistic("A", {1, 3}, 2.0);
  db.InsertProbabilistic("A", {2, 3}, 1.0);
  Ucq def = MustParse("V(x,y,z) :- A(x,y), A(x,z), y != z.", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V", std::move(def), 0.0)).ok());
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  auto mln = mvdb.ToGroundMln();
  ASSERT_TRUE(mln.ok());
  for (const char* qs :
       {"Q :- A(1,2).", "Q :- A(1,3).", "Q :- A(x,y).", "Q :- A(1,y)."}) {
    Ucq q = MustParse(qs, &mvdb.db().dict());
    const Lineage lin = *EvalBoolean(mvdb.db(), q);
    auto exact = mln->ExactQueryProb(lin);
    ASSERT_TRUE(exact.ok());
    for (Backend b : {Backend::kBruteForce, Backend::kObddReuse,
                      Backend::kMvIndex, Backend::kMvIndexCC}) {
      auto p = engine.QueryBoolean(q, b);
      ASSERT_TRUE(p.ok()) << qs;
      EXPECT_NEAR(*p, *exact, 1e-9) << qs;
    }
  }
  // Joint violation is impossible.
  Ucq viol = MustParse("Q :- A(1,2), A(1,3).", &mvdb.db().dict());
  auto p = engine.QueryBoolean(viol);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.0, 1e-12);
}

TEST(Theorem1EdgeCases, MultipleViewsOnSharedRelations) {
  // Two views over the same relations (like V1 and V2 sharing Advisor).
  Mvdb mvdb;
  Database& db = mvdb.db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"x", "y"}, true).ok());
  db.InsertProbabilistic("R", {1}, 1.5);
  db.InsertProbabilistic("R", {2}, 0.5);
  db.InsertProbabilistic("S", {1, 1}, 1.0);
  db.InsertProbabilistic("S", {1, 2}, 2.0);
  db.InsertProbabilistic("S", {2, 1}, 1.0);
  Ucq v1 = MustParse("V1(x) :- R(x), S(x,y).", &db.dict());
  Ucq v2 = MustParse("V2(x,y,z) :- S(x,y), S(x,z), y != z.", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V1", std::move(v1), 3.0)).ok());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V2", std::move(v2), 0.0)).ok());
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  auto mln = mvdb.ToGroundMln();
  ASSERT_TRUE(mln.ok());
  for (const char* qs : {"Q :- R(x), S(x,y).", "Q :- S(1,1).", "Q :- S(x,2)."}) {
    Ucq q = MustParse(qs, &mvdb.db().dict());
    const Lineage lin = *EvalBoolean(mvdb.db(), q);
    auto exact = mln->ExactQueryProb(lin);
    ASSERT_TRUE(exact.ok());
    auto p = engine.QueryBoolean(q, Backend::kMvIndexCC);
    ASSERT_TRUE(p.ok()) << qs;
    EXPECT_NEAR(*p, *exact, 1e-9) << qs;
  }
}

}  // namespace
}  // namespace mvdb
