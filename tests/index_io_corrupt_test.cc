// Corrupt-input hardening for the persistent MV-index loaders: truncation
// at (and around) every section boundary, bit flips across the header,
// payload corruption, and section tables that lie about offsets/lengths
// with every checksum dutifully recomputed — every case must come back as a
// typed Status from both Load and LoadMapped, with no crash, no abort, and
// no sanitizer finding (this test runs under the ASan/UBSan CI job). The
// loaders' contract: bounds are proven against the real file size before
// the first payload byte is dereferenced.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "mvindex/index_io.h"
#include "mvindex/mv_index.h"
#include "test_util.h"
#include "util/hash64.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

/// A small but non-degenerate index: the Fig. 3 relations with two views,
/// a handful of blocks, a few dozen flat nodes. Small enough to rewrite
/// hundreds of corrupted variants per test.
struct SmallIndex {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
  std::string path;
  std::vector<uint8_t> bytes;  // pristine file image
};

SmallIndex& Small() {
  static SmallIndex* shared = [] {
    auto* s = new SmallIndex();
    s->mvdb = std::make_unique<Mvdb>();
    Database& db = s->mvdb->db();
    MVDB_CHECK(db.CreateTable("R", {"x"}, true).ok());
    MVDB_CHECK(db.CreateTable("S", {"x", "y"}, true).ok());
    for (int x = 1; x <= 4; ++x) {
      db.InsertProbabilistic("R", {x}, 0.5 + 0.1 * x);
      for (int y = 1; y <= 3; ++y) {
        db.InsertProbabilistic("S", {x, y}, 0.3 + 0.05 * y);
      }
    }
    Ucq v1 = MustParse("V1(x) :- R(x), S(x,y).", &db.dict());
    MVDB_CHECK(s->mvdb->AddView(
        MarkoView::Constant("V1", std::move(v1), 2.0)).ok());
    s->engine = std::make_unique<QueryEngine>(s->mvdb.get());
    MVDB_CHECK(s->engine->Compile().ok());
    s->path = ::testing::TempDir() + "/small.mvidx";
    MVDB_CHECK(s->engine->SaveIndex(s->path).ok());
    std::ifstream in(s->path, std::ios::binary | std::ios::ate);
    MVDB_CHECK(in.good());
    s->bytes.resize(static_cast<size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(s->bytes.data()),
            static_cast<std::streamsize>(s->bytes.size()));
    MVDB_CHECK(in.good());
    return s;
  }();
  return *shared;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MVDB_CHECK(out.good());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  MVDB_CHECK(out.good());
}

/// Both loaders (owned verifies checksums, mapped skips them) plus the
/// explicit verify pass must reject the file at `path` with a typed Status.
/// Returns the owned loader's status for message assertions.
Status ExpectRejected(const std::string& path) {
  SmallIndex& s = Small();
  BddManager mgr(s.engine->manager().order());
  auto owned = MvIndex::Load(path, &mgr);
  EXPECT_FALSE(owned.ok()) << "owned load accepted a corrupt file";
  auto mapped_reader = IndexFileReader::OpenMapped(path);
  if (mapped_reader.ok()) {
    // Structure happened to validate (e.g. a payload-only flip that mapped
    // loads deliberately don't checksum); the full pass must still catch it.
    EXPECT_FALSE(mapped_reader->VerifyChecksums().ok())
        << "corruption escaped both structural checks and checksums";
  }
  return owned.ok() ? Status::OK() : owned.status();
}

/// Patches a SectionEntry field in a pristine image copy and recomputes the
/// section-table and header checksums, so ONLY the structural validation
/// can catch the lie.
std::vector<uint8_t> WithPatchedTable(
    uint32_t section, uint64_t new_offset, uint64_t new_length) {
  std::vector<uint8_t> bytes = Small().bytes;
  const size_t entry_at =
      sizeof(IndexFileHeader) + section * sizeof(SectionEntry);
  std::memcpy(bytes.data() + entry_at, &new_offset, sizeof(new_offset));
  std::memcpy(bytes.data() + entry_at + 8, &new_length, sizeof(new_length));
  // Recompute the table checksum...
  const uint64_t table_sum =
      Hash64(bytes.data() + sizeof(IndexFileHeader),
             kNumIndexSections * sizeof(SectionEntry));
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, section_table_checksum),
              &table_sum, sizeof(table_sum));
  // ...and the header checksum over the patched header.
  IndexFileHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  h.header_checksum = 0;
  const uint64_t header_sum = Hash64(&h, sizeof(h));
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, header_checksum),
              &header_sum, sizeof(header_sum));
  return bytes;
}

TEST(IndexIoCorruptTest, TruncationAtEverySectionBoundaryIsRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/trunc.mvidx";

  // Collect every interesting cut point: 0, mid-header, each section's
  // start, one byte into it, and one byte short of its end.
  IndexFileHeader h;
  std::memcpy(&h, s.bytes.data(), sizeof(h));
  std::vector<size_t> cuts = {0, 1, sizeof(IndexFileHeader) / 2,
                              sizeof(IndexFileHeader),
                              sizeof(IndexFileHeader) + 8};
  for (uint32_t sec = 0; sec < kNumIndexSections; ++sec) {
    SectionEntry e;
    std::memcpy(&e, s.bytes.data() + sizeof(IndexFileHeader) +
                        sec * sizeof(SectionEntry),
                sizeof(e));
    cuts.push_back(static_cast<size_t>(e.offset));
    if (e.length > 0) {
      cuts.push_back(static_cast<size_t>(e.offset) + 1);
      cuts.push_back(static_cast<size_t>(e.offset + e.length) - 1);
    }
  }
  cuts.push_back(s.bytes.size() - 1);

  for (const size_t cut : cuts) {
    ASSERT_LT(cut, s.bytes.size());
    if (cut == 0) {
      // MmapFile refuses empty files outright; cover it via the zero-byte
      // write then skip the slicing below.
      WriteFile(path, {});
      SmallIndex& w = Small();
      BddManager mgr(w.engine->manager().order());
      EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());
      EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
      continue;
    }
    WriteFile(path, std::vector<uint8_t>(s.bytes.begin(),
                                         s.bytes.begin() +
                                             static_cast<ptrdiff_t>(cut)));
    const Status st = ExpectRejected(path);
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
    // Mapped open must also refuse structurally (file_bytes mismatch at
    // minimum) — truncation must never survive to a fault at query time.
    EXPECT_FALSE(IndexFileReader::OpenMapped(path).ok()) << "cut at " << cut;
  }
}

TEST(IndexIoCorruptTest, EveryHeaderByteFlipIsRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/hdrflip.mvidx";
  for (size_t i = 0; i < sizeof(IndexFileHeader); ++i) {
    for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> bytes = s.bytes;
      bytes[i] ^= mask;
      WriteFile(path, bytes);
      BddManager mgr(s.engine->manager().order());
      EXPECT_FALSE(MvIndex::Load(path, &mgr).ok())
          << "header byte " << i << " mask " << int{mask};
      EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok())
          << "header byte " << i << " mask " << int{mask};
    }
  }
}

TEST(IndexIoCorruptTest, SectionTableFlipsAreRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/tableflip.mvidx";
  const size_t table_at = sizeof(IndexFileHeader);
  const size_t table_len = kNumIndexSections * sizeof(SectionEntry);
  for (size_t i = 0; i < table_len; i += 3) {  // stride keeps runtime sane
    std::vector<uint8_t> bytes = s.bytes;
    bytes[table_at + i] ^= 0x40;
    WriteFile(path, bytes);
    BddManager mgr(s.engine->manager().order());
    EXPECT_FALSE(MvIndex::Load(path, &mgr).ok()) << "table byte " << i;
    EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok()) << "table byte " << i;
  }
}

TEST(IndexIoCorruptTest, PayloadFlipsAreCaughtByChecksums) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/payloadflip.mvidx";
  // One flip inside each section's payload (skipping empty sections).
  for (uint32_t sec = 0; sec < kNumIndexSections; ++sec) {
    SectionEntry e;
    std::memcpy(&e, s.bytes.data() + sizeof(IndexFileHeader) +
                        sec * sizeof(SectionEntry),
                sizeof(e));
    if (e.length == 0) continue;
    std::vector<uint8_t> bytes = s.bytes;
    bytes[static_cast<size_t>(e.offset + e.length / 2)] ^= 0x10;
    WriteFile(path, bytes);
    ExpectRejected(path);
  }
}

TEST(IndexIoCorruptTest, LyingSectionTablesAreRejectedStructurally) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/liar.mvidx";
  SectionEntry levels;
  std::memcpy(&levels, s.bytes.data() + sizeof(IndexFileHeader) +
                           kSecLevels * sizeof(SectionEntry),
              sizeof(levels));

  struct Lie {
    const char* what;
    uint64_t offset;
    uint64_t length;
  };
  const Lie lies[] = {
      {"offset past EOF", s.bytes.size() + 4096, levels.length},
      {"length past EOF", levels.offset, s.bytes.size()},
      {"offset+length overflow", levels.offset, ~uint64_t{0} - 32},
      {"unaligned offset", levels.offset + 4, levels.length},
      {"length disagrees with node count", levels.offset, levels.length + 64},
      {"length not elem multiple", levels.offset, levels.length + 1},
  };
  for (const Lie& lie : lies) {
    WriteFile(path, WithPatchedTable(kSecLevels, lie.offset, lie.length));
    BddManager mgr(s.engine->manager().order());
    auto owned = MvIndex::Load(path, &mgr);
    EXPECT_FALSE(owned.ok()) << lie.what;
    EXPECT_EQ(owned.status().code(), StatusCode::kInvalidArgument) << lie.what;
    EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok()) << lie.what;
  }
}

TEST(IndexIoCorruptTest, LyingHeaderCountsAreRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/counts.mvidx";
  auto with_header = [&](auto&& mutate) {
    std::vector<uint8_t> bytes = s.bytes;
    IndexFileHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    mutate(&h);
    h.header_checksum = 0;
    h.header_checksum = Hash64(&h, sizeof(h));
    std::memcpy(bytes.data(), &h, sizeof(h));
    return bytes;
  };

  // Each lie keeps a valid header checksum; structural checks must object.
  WriteFile(path, with_header([](IndexFileHeader* h) { h->num_nodes *= 2; }));
  EXPECT_EQ(ExpectRejected(path).code(), StatusCode::kInvalidArgument);

  WriteFile(path, with_header([](IndexFileHeader* h) {
    h->root = static_cast<int64_t>(h->num_nodes) + 7;
  }));
  EXPECT_EQ(ExpectRejected(path).code(), StatusCode::kInvalidArgument);

  WriteFile(path, with_header([](IndexFileHeader* h) { h->root = -3; }));
  EXPECT_EQ(ExpectRejected(path).code(), StatusCode::kInvalidArgument);

  WriteFile(path, with_header([](IndexFileHeader* h) { h->file_bytes += 1; }));
  EXPECT_EQ(ExpectRejected(path).code(), StatusCode::kInvalidArgument);

  WriteFile(path, with_header([](IndexFileHeader* h) {
    h->format_version = kIndexFormatVersion + 1;
  }));
  {
    const Status st = ExpectRejected(path);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.ToString().find("version"), std::string::npos);
  }
}

TEST(IndexIoCorruptTest, ForeignEndianFileIsRejectedWithClearMessage) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/bigendian.mvidx";
  // Simulate a big-endian writer: its header words land byte-swapped on a
  // little-endian reader. Swapping magic + endian_tag is enough to hit the
  // detection path (the rest of the file is never consulted).
  std::vector<uint8_t> bytes = s.bytes;
  uint64_t magic;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  magic = __builtin_bswap64(magic);
  std::memcpy(bytes.data(), &magic, sizeof(magic));
  uint32_t tag;
  std::memcpy(&tag, bytes.data() + offsetof(IndexFileHeader, endian_tag),
              sizeof(tag));
  tag = __builtin_bswap32(tag);
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, endian_tag), &tag,
              sizeof(tag));
  WriteFile(path, bytes);
  const Status st = ExpectRejected(path);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("endian"), std::string::npos);
}

TEST(IndexIoCorruptTest, CorruptBlockDirectoryIsRejectedEvenWhenMapped) {
  SmallIndex& s = Small();
  ASSERT_GT(s.engine->index().blocks().size(), 0u);
  const std::string path = ::testing::TempDir() + "/blockdir.mvidx";
  const size_t dir_at = [&] {
    SectionEntry e;
    std::memcpy(&e, s.bytes.data() + sizeof(IndexFileHeader) +
                        kSecBlockDir * sizeof(SectionEntry),
                sizeof(e));
    return static_cast<size_t>(e.offset);
  }();

  auto with_record = [&](auto&& mutate) {
    std::vector<uint8_t> bytes = s.bytes;
    IndexBlockRecord rec;
    std::memcpy(&rec, bytes.data() + dir_at, sizeof(rec));
    mutate(&rec);
    std::memcpy(bytes.data() + dir_at, &rec, sizeof(rec));
    // Recompute the block-dir section checksum + table + header sums so the
    // record lie is the only thing left to catch.
    SectionEntry e;
    const size_t entry_at =
        sizeof(IndexFileHeader) + kSecBlockDir * sizeof(SectionEntry);
    std::memcpy(&e, bytes.data() + entry_at, sizeof(e));
    e.checksum = Hash64(bytes.data() + e.offset, e.length);
    std::memcpy(bytes.data() + entry_at, &e, sizeof(e));
    const uint64_t table_sum =
        Hash64(bytes.data() + sizeof(IndexFileHeader),
               kNumIndexSections * sizeof(SectionEntry));
    std::memcpy(bytes.data() +
                    offsetof(IndexFileHeader, section_table_checksum),
                &table_sum, sizeof(table_sum));
    IndexFileHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    h.header_checksum = 0;
    const uint64_t header_sum = Hash64(&h, sizeof(h));
    std::memcpy(bytes.data() + offsetof(IndexFileHeader, header_checksum),
                &header_sum, sizeof(header_sum));
    return bytes;
  };

  BddManager mgr(s.engine->manager().order());
  WriteFile(path, with_record([&](IndexBlockRecord* r) {
    r->chain_root = static_cast<int32_t>(s.engine->index().flat().size()) + 5;
  }));
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());

  WriteFile(path, with_record([](IndexBlockRecord* r) {
    r->key_offset = ~uint64_t{0} - 8;
    r->key_len = 16;
  }));
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());

  WriteFile(path, with_record([](IndexBlockRecord* r) {
    r->first_level = 5;
    r->last_level = 2;
  }));
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());
}

TEST(IndexIoCorruptTest, GarbageFilesAreRejected) {
  SmallIndex& s = Small();
  BddManager mgr(s.engine->manager().order());
  const std::string path = ::testing::TempDir() + "/garbage.mvidx";

  WriteFile(path, {0xde, 0xad, 0xbe, 0xef});
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());

  std::vector<uint8_t> noise(8192);
  uint64_t x = 0x243F6A8885A308D3ULL;  // deterministic pseudo-noise
  for (auto& b : noise) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    b = static_cast<uint8_t>(x);
  }
  WriteFile(path, noise);
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
}

TEST(IndexIoCorruptTest, EngineOpenIndexSurfacesTypedErrors) {
  // The engine wrapper must pass loader failures through, not abort, and a
  // database whose variables disagree with the file must be refused.
  SmallIndex& s = Small();
  auto fresh = std::make_unique<Mvdb>();
  Database& db = fresh->db();
  MVDB_CHECK(db.CreateTable("R", {"x"}, true).ok());
  MVDB_CHECK(db.CreateTable("S", {"x", "y"}, true).ok());
  // Half the tuples of the saved instance: fewer variables.
  for (int x = 1; x <= 2; ++x) {
    db.InsertProbabilistic("R", {x}, 0.5);
    db.InsertProbabilistic("S", {x, 1}, 0.4);
  }
  Ucq v1 = MustParse("V1(x) :- R(x), S(x,y).", &db.dict());
  MVDB_CHECK(fresh->AddView(MarkoView::Constant("V1", std::move(v1), 2.0)).ok());
  QueryEngine engine(fresh.get());
  const Status st = engine.OpenIndex(s.path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.compiled());
}

}  // namespace
}  // namespace mvdb
