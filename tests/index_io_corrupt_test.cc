// Corrupt-input hardening for the persistent MV-index loaders: truncation
// at (and around) every section boundary, bit flips across the header,
// payload corruption, and section tables that lie about offsets/lengths
// with every checksum dutifully recomputed — every case must come back as a
// typed Status from both Load and LoadMapped, with no crash, no abort, and
// no sanitizer finding (this test runs under the ASan/UBSan CI job). The
// loaders' contract: bounds are proven against the real file size before
// the first payload byte is dereferenced.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "mvindex/index_io.h"
#include "mvindex/mv_index.h"
#include "test_util.h"
#include "util/hash64.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

/// A small but non-degenerate index: the Fig. 3 relations with two views,
/// a handful of blocks, a few dozen flat nodes. Small enough to rewrite
/// hundreds of corrupted variants per test.
struct SmallIndex {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
  std::string path;
  std::vector<uint8_t> bytes;  // pristine file image
};

SmallIndex& Small() {
  static SmallIndex* shared = [] {
    auto* s = new SmallIndex();
    s->mvdb = std::make_unique<Mvdb>();
    Database& db = s->mvdb->db();
    MVDB_CHECK(db.CreateTable("R", {"x"}, true).ok());
    MVDB_CHECK(db.CreateTable("S", {"x", "y"}, true).ok());
    for (int x = 1; x <= 4; ++x) {
      db.InsertProbabilistic("R", {x}, 0.5 + 0.1 * x);
      for (int y = 1; y <= 3; ++y) {
        db.InsertProbabilistic("S", {x, y}, 0.3 + 0.05 * y);
      }
    }
    Ucq v1 = MustParse("V1(x) :- R(x), S(x,y).", &db.dict());
    MVDB_CHECK(s->mvdb->AddView(
        MarkoView::Constant("V1", std::move(v1), 2.0)).ok());
    s->engine = std::make_unique<QueryEngine>(s->mvdb.get());
    MVDB_CHECK(s->engine->Compile().ok());
    s->path = ::testing::TempDir() + "/small.mvidx";
    MVDB_CHECK(s->engine->SaveIndex(s->path).ok());
    std::ifstream in(s->path, std::ios::binary | std::ios::ate);
    MVDB_CHECK(in.good());
    s->bytes.resize(static_cast<size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(s->bytes.data()),
            static_cast<std::streamsize>(s->bytes.size()));
    MVDB_CHECK(in.good());
    return s;
  }();
  return *shared;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MVDB_CHECK(out.good());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  MVDB_CHECK(out.good());
}

/// Both loaders (owned verifies checksums, mapped skips them) plus the
/// explicit verify pass must reject the file at `path` with a typed Status.
/// Returns the owned loader's status for message assertions.
Status ExpectRejected(const std::string& path) {
  SmallIndex& s = Small();
  BddManager mgr(s.engine->manager().order());
  auto owned = MvIndex::Load(path, &mgr);
  EXPECT_FALSE(owned.ok()) << "owned load accepted a corrupt file";
  auto mapped_reader = IndexFileReader::OpenMapped(path);
  if (mapped_reader.ok()) {
    // Structure happened to validate (e.g. a payload-only flip that mapped
    // loads deliberately don't checksum); the full pass must still catch it.
    EXPECT_FALSE(mapped_reader->VerifyChecksums().ok())
        << "corruption escaped both structural checks and checksums";
  }
  return owned.ok() ? Status::OK() : owned.status();
}

/// Patches a SectionEntry field in a pristine image copy and recomputes the
/// section-table and header checksums, so ONLY the structural validation
/// can catch the lie.
std::vector<uint8_t> WithPatchedTable(
    uint32_t section, uint64_t new_offset, uint64_t new_length) {
  std::vector<uint8_t> bytes = Small().bytes;
  const size_t entry_at =
      sizeof(IndexFileHeader) + section * sizeof(SectionEntry);
  std::memcpy(bytes.data() + entry_at, &new_offset, sizeof(new_offset));
  std::memcpy(bytes.data() + entry_at + 8, &new_length, sizeof(new_length));
  // Recompute the table checksum...
  const uint64_t table_sum =
      Hash64(bytes.data() + sizeof(IndexFileHeader),
             kNumIndexSections * sizeof(SectionEntry));
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, section_table_checksum),
              &table_sum, sizeof(table_sum));
  // ...and the header checksum over the patched header.
  IndexFileHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  h.header_checksum = 0;
  const uint64_t header_sum = Hash64(&h, sizeof(h));
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, header_checksum),
              &header_sum, sizeof(header_sum));
  return bytes;
}

TEST(IndexIoCorruptTest, TruncationAtEverySectionBoundaryIsRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/trunc.mvidx";

  // Collect every interesting cut point: 0, mid-header, each section's
  // start, one byte into it, and one byte short of its end.
  IndexFileHeader h;
  std::memcpy(&h, s.bytes.data(), sizeof(h));
  std::vector<size_t> cuts = {0, 1, sizeof(IndexFileHeader) / 2,
                              sizeof(IndexFileHeader),
                              sizeof(IndexFileHeader) + 8};
  for (uint32_t sec = 0; sec < kNumIndexSections; ++sec) {
    SectionEntry e;
    std::memcpy(&e, s.bytes.data() + sizeof(IndexFileHeader) +
                        sec * sizeof(SectionEntry),
                sizeof(e));
    cuts.push_back(static_cast<size_t>(e.offset));
    if (e.length > 0) {
      cuts.push_back(static_cast<size_t>(e.offset) + 1);
      cuts.push_back(static_cast<size_t>(e.offset + e.length) - 1);
    }
  }
  cuts.push_back(s.bytes.size() - 1);

  for (const size_t cut : cuts) {
    ASSERT_LT(cut, s.bytes.size());
    if (cut == 0) {
      // MmapFile refuses empty files outright; cover it via the zero-byte
      // write then skip the slicing below.
      WriteFile(path, {});
      SmallIndex& w = Small();
      BddManager mgr(w.engine->manager().order());
      EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());
      EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
      continue;
    }
    WriteFile(path, std::vector<uint8_t>(s.bytes.begin(),
                                         s.bytes.begin() +
                                             static_cast<ptrdiff_t>(cut)));
    const Status st = ExpectRejected(path);
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
    // Mapped open must also refuse structurally (file_bytes mismatch at
    // minimum) — truncation must never survive to a fault at query time.
    EXPECT_FALSE(IndexFileReader::OpenMapped(path).ok()) << "cut at " << cut;
  }
}

TEST(IndexIoCorruptTest, EveryHeaderByteFlipIsRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/hdrflip.mvidx";
  for (size_t i = 0; i < sizeof(IndexFileHeader); ++i) {
    for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> bytes = s.bytes;
      bytes[i] ^= mask;
      WriteFile(path, bytes);
      BddManager mgr(s.engine->manager().order());
      EXPECT_FALSE(MvIndex::Load(path, &mgr).ok())
          << "header byte " << i << " mask " << int{mask};
      EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok())
          << "header byte " << i << " mask " << int{mask};
    }
  }
}

TEST(IndexIoCorruptTest, SectionTableFlipsAreRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/tableflip.mvidx";
  const size_t table_at = sizeof(IndexFileHeader);
  const size_t table_len = kNumIndexSections * sizeof(SectionEntry);
  for (size_t i = 0; i < table_len; i += 3) {  // stride keeps runtime sane
    std::vector<uint8_t> bytes = s.bytes;
    bytes[table_at + i] ^= 0x40;
    WriteFile(path, bytes);
    BddManager mgr(s.engine->manager().order());
    EXPECT_FALSE(MvIndex::Load(path, &mgr).ok()) << "table byte " << i;
    EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok()) << "table byte " << i;
  }
}

TEST(IndexIoCorruptTest, PayloadFlipsAreCaughtByChecksums) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/payloadflip.mvidx";
  // One flip inside each section's payload (skipping empty sections).
  for (uint32_t sec = 0; sec < kNumIndexSections; ++sec) {
    SectionEntry e;
    std::memcpy(&e, s.bytes.data() + sizeof(IndexFileHeader) +
                        sec * sizeof(SectionEntry),
                sizeof(e));
    if (e.length == 0) continue;
    std::vector<uint8_t> bytes = s.bytes;
    bytes[static_cast<size_t>(e.offset + e.length / 2)] ^= 0x10;
    WriteFile(path, bytes);
    ExpectRejected(path);
  }
}

TEST(IndexIoCorruptTest, LyingSectionTablesAreRejectedStructurally) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/liar.mvidx";
  SectionEntry levels;
  std::memcpy(&levels, s.bytes.data() + sizeof(IndexFileHeader) +
                           kSecLevels * sizeof(SectionEntry),
              sizeof(levels));

  struct Lie {
    const char* what;
    uint64_t offset;
    uint64_t length;
  };
  const Lie lies[] = {
      {"offset past EOF", s.bytes.size() + 4096, levels.length},
      {"length past EOF", levels.offset, s.bytes.size()},
      {"offset+length overflow", levels.offset, ~uint64_t{0} - 32},
      {"unaligned offset", levels.offset + 4, levels.length},
      {"length disagrees with node count", levels.offset, levels.length + 64},
      {"length not elem multiple", levels.offset, levels.length + 1},
  };
  for (const Lie& lie : lies) {
    WriteFile(path, WithPatchedTable(kSecLevels, lie.offset, lie.length));
    BddManager mgr(s.engine->manager().order());
    auto owned = MvIndex::Load(path, &mgr);
    EXPECT_FALSE(owned.ok()) << lie.what;
    EXPECT_EQ(owned.status().code(), StatusCode::kInvalidArgument) << lie.what;
    EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok()) << lie.what;
  }
}

TEST(IndexIoCorruptTest, LyingHeaderCountsAreRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/counts.mvidx";
  auto with_header = [&](auto&& mutate) {
    std::vector<uint8_t> bytes = s.bytes;
    IndexFileHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    mutate(&h);
    h.header_checksum = 0;
    h.header_checksum = Hash64(&h, sizeof(h));
    std::memcpy(bytes.data(), &h, sizeof(h));
    return bytes;
  };

  // Each lie keeps a valid header checksum; structural checks must object.
  WriteFile(path, with_header([](IndexFileHeader* h) { h->num_nodes *= 2; }));
  EXPECT_EQ(ExpectRejected(path).code(), StatusCode::kInvalidArgument);

  WriteFile(path, with_header([](IndexFileHeader* h) {
    h->root = static_cast<int64_t>(h->num_nodes) + 7;
  }));
  EXPECT_EQ(ExpectRejected(path).code(), StatusCode::kInvalidArgument);

  WriteFile(path, with_header([](IndexFileHeader* h) { h->root = -3; }));
  EXPECT_EQ(ExpectRejected(path).code(), StatusCode::kInvalidArgument);

  WriteFile(path, with_header([](IndexFileHeader* h) { h->file_bytes += 1; }));
  EXPECT_EQ(ExpectRejected(path).code(), StatusCode::kInvalidArgument);

  WriteFile(path, with_header([](IndexFileHeader* h) {
    h->format_version = kIndexFormatVersion + 1;
  }));
  {
    const Status st = ExpectRejected(path);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.ToString().find("version"), std::string::npos);
  }
}

TEST(IndexIoCorruptTest, ForeignEndianFileIsRejectedWithClearMessage) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/bigendian.mvidx";
  // Simulate a big-endian writer: its header words land byte-swapped on a
  // little-endian reader. Swapping magic + endian_tag is enough to hit the
  // detection path (the rest of the file is never consulted).
  std::vector<uint8_t> bytes = s.bytes;
  uint64_t magic;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  magic = __builtin_bswap64(magic);
  std::memcpy(bytes.data(), &magic, sizeof(magic));
  uint32_t tag;
  std::memcpy(&tag, bytes.data() + offsetof(IndexFileHeader, endian_tag),
              sizeof(tag));
  tag = __builtin_bswap32(tag);
  std::memcpy(bytes.data() + offsetof(IndexFileHeader, endian_tag), &tag,
              sizeof(tag));
  WriteFile(path, bytes);
  const Status st = ExpectRejected(path);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("endian"), std::string::npos);
}

TEST(IndexIoCorruptTest, CorruptBlockDirectoryIsRejectedEvenWhenMapped) {
  SmallIndex& s = Small();
  ASSERT_GT(s.engine->index().blocks().size(), 0u);
  const std::string path = ::testing::TempDir() + "/blockdir.mvidx";
  const size_t dir_at = [&] {
    SectionEntry e;
    std::memcpy(&e, s.bytes.data() + sizeof(IndexFileHeader) +
                        kSecBlockDir * sizeof(SectionEntry),
                sizeof(e));
    return static_cast<size_t>(e.offset);
  }();

  auto with_record = [&](auto&& mutate) {
    std::vector<uint8_t> bytes = s.bytes;
    IndexBlockRecord rec;
    std::memcpy(&rec, bytes.data() + dir_at, sizeof(rec));
    mutate(&rec);
    std::memcpy(bytes.data() + dir_at, &rec, sizeof(rec));
    // Recompute the block-dir section checksum + table + header sums so the
    // record lie is the only thing left to catch.
    SectionEntry e;
    const size_t entry_at =
        sizeof(IndexFileHeader) + kSecBlockDir * sizeof(SectionEntry);
    std::memcpy(&e, bytes.data() + entry_at, sizeof(e));
    e.checksum = Hash64(bytes.data() + e.offset, e.length);
    std::memcpy(bytes.data() + entry_at, &e, sizeof(e));
    const uint64_t table_sum =
        Hash64(bytes.data() + sizeof(IndexFileHeader),
               kNumIndexSections * sizeof(SectionEntry));
    std::memcpy(bytes.data() +
                    offsetof(IndexFileHeader, section_table_checksum),
                &table_sum, sizeof(table_sum));
    IndexFileHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    h.header_checksum = 0;
    const uint64_t header_sum = Hash64(&h, sizeof(h));
    std::memcpy(bytes.data() + offsetof(IndexFileHeader, header_checksum),
                &header_sum, sizeof(header_sum));
    return bytes;
  };

  BddManager mgr(s.engine->manager().order());
  WriteFile(path, with_record([&](IndexBlockRecord* r) {
    r->chain_root = static_cast<int32_t>(s.engine->index().flat().size()) + 5;
  }));
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());

  WriteFile(path, with_record([](IndexBlockRecord* r) {
    r->key_offset = ~uint64_t{0} - 8;
    r->key_len = 16;
  }));
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());

  WriteFile(path, with_record([](IndexBlockRecord* r) {
    r->first_level = 5;
    r->last_level = 2;
  }));
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());
}

TEST(IndexIoCorruptTest, GarbageFilesAreRejected) {
  SmallIndex& s = Small();
  BddManager mgr(s.engine->manager().order());
  const std::string path = ::testing::TempDir() + "/garbage.mvidx";

  WriteFile(path, {0xde, 0xad, 0xbe, 0xef});
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());

  std::vector<uint8_t> noise(8192);
  uint64_t x = 0x243F6A8885A308D3ULL;  // deterministic pseudo-noise
  for (auto& b : noise) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    b = static_cast<uint8_t>(x);
  }
  WriteFile(path, noise);
  EXPECT_FALSE(MvIndex::Load(path, &mgr).ok());
  EXPECT_FALSE(MvIndex::LoadMapped(path, &mgr).ok());
}

/// Rewrites the pristine v3 image as a well-formed v2 file: the 88-byte v2
/// header (no annotation-scheme tag) with the section table immediately
/// after it, the gap up to the first payload zeroed, and every payload byte
/// left at its v3 offset (v2 only requires 64-byte alignment, which the v3
/// packing already satisfies). Checksums are recomputed v2-style, so the
/// result is exactly what a v2 writer would have produced for this index —
/// modulo the probUnder section still holding block-local values, which
/// migration ignores and recomputes anyway.
std::vector<uint8_t> MakeV2Image() {
  SmallIndex& s = Small();
  std::vector<uint8_t> bytes = s.bytes;
  IndexFileHeader v3;
  std::memcpy(&v3, bytes.data(), sizeof(v3));

  // v2 header layout: identical through `flags`, then the two checksums
  // (no annotation_scheme / header_reserved words).
  struct V2Header {
    uint64_t magic;
    uint32_t format_version;
    uint32_t endian_tag;
    uint64_t num_nodes, num_levels, num_blocks;
    int64_t root;
    uint64_t var_order_digest, file_bytes, flags;
    uint64_t section_table_checksum, header_checksum;
  };
  static_assert(sizeof(V2Header) == 88);
  V2Header v2{};
  v2.magic = v3.magic;
  v2.format_version = 2;
  v2.endian_tag = v3.endian_tag;
  v2.num_nodes = v3.num_nodes;
  v2.num_levels = v3.num_levels;
  v2.num_blocks = v3.num_blocks;
  v2.root = v3.root;
  v2.var_order_digest = v3.var_order_digest;
  v2.file_bytes = bytes.size();
  v2.flags = 0;

  constexpr size_t kTableBytes = kNumIndexSections * sizeof(SectionEntry);
  // Slide the (content-identical) section table from offset 96 to 88, then
  // zero the vacated span up to the first payload at AlignUp(96 + table).
  std::memmove(bytes.data() + sizeof(V2Header),
               bytes.data() + sizeof(IndexFileHeader), kTableBytes);
  const size_t first_payload =
      (sizeof(IndexFileHeader) + kTableBytes + kIndexSectionAlign - 1) /
      kIndexSectionAlign * kIndexSectionAlign;
  std::memset(bytes.data() + sizeof(V2Header) + kTableBytes, 0,
              first_payload - sizeof(V2Header) - kTableBytes);

  v2.section_table_checksum =
      Hash64(bytes.data() + sizeof(V2Header), kTableBytes);
  v2.header_checksum = 0;
  v2.header_checksum = Hash64(&v2, sizeof(v2));
  std::memcpy(bytes.data(), &v2, sizeof(v2));
  return bytes;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  MVDB_CHECK(in.good()) << path;
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  MVDB_CHECK(in.good()) << path;
  return bytes;
}

TEST(IndexIoCorruptTest, V2FileIsRejectedWithTypedMigrateMessage) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/v2reject.mvidx";
  WriteFile(path, MakeV2Image());
  BddManager mgr(s.engine->manager().order());
  const auto owned = MvIndex::Load(path, &mgr);
  ASSERT_FALSE(owned.ok());
  EXPECT_EQ(owned.status().code(), StatusCode::kInvalidArgument);
  // The rejection must be actionable: name the offline upgrade path, not
  // just "wrong version".
  EXPECT_NE(owned.status().ToString().find("--migrate"), std::string::npos)
      << owned.status().ToString();
  EXPECT_NE(owned.status().ToString().find("version 2"), std::string::npos)
      << owned.status().ToString();
  const auto mapped = MvIndex::LoadMapped(path, &mgr);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().ToString().find("--migrate"), std::string::npos);
}

TEST(IndexIoCorruptTest, MigrateRewritesV2ToV3Losslessly) {
  SmallIndex& s = Small();
  const std::string in = ::testing::TempDir() + "/v2in.mvidx";
  const std::string out = ::testing::TempDir() + "/v2out.mvidx";
  WriteFile(in, MakeV2Image());
  ASSERT_TRUE(MigrateIndexFile(in, out).ok());
  // The synthetic v2 carries this exact index, and migration recomputes the
  // annotations with the same block-local recurrence Save used — so the
  // output must be byte-for-byte the pristine v3 image, not merely loadable.
  EXPECT_EQ(ReadFileBytes(out), s.bytes);
  BddManager mgr(s.engine->manager().order());
  auto loaded = MvIndex::Load(out, &mgr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->blocks().size(), s.engine->index().blocks().size());
}

TEST(IndexIoCorruptTest, MigrateV3PassthroughIsByteIdentical) {
  SmallIndex& s = Small();
  const std::string out = ::testing::TempDir() + "/v3copy.mvidx";
  // Migrating an already-current file is validate + copy (idempotent).
  ASSERT_TRUE(MigrateIndexFile(s.path, out).ok());
  EXPECT_EQ(ReadFileBytes(out), s.bytes);
  // But a corrupt v3 input must NOT be laundered into a fresh-looking copy.
  const std::string bad = ::testing::TempDir() + "/v3bad.mvidx";
  std::vector<uint8_t> bytes = s.bytes;
  SectionEntry e;
  std::memcpy(&e, bytes.data() + sizeof(IndexFileHeader) +
                      kSecProbUnder * sizeof(SectionEntry),
              sizeof(e));
  ASSERT_GT(e.length, 0u);
  bytes[static_cast<size_t>(e.offset + e.length / 2)] ^= 0x01;  // stale sums
  WriteFile(bad, bytes);
  EXPECT_FALSE(MigrateIndexFile(bad, out).ok());
}

TEST(IndexIoCorruptTest, CorruptedAnnotationSchemeTagIsRejected) {
  SmallIndex& s = Small();
  const std::string path = ::testing::TempDir() + "/scheme.mvidx";
  auto with_scheme = [&](uint32_t scheme) {
    std::vector<uint8_t> bytes = s.bytes;
    IndexFileHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    h.annotation_scheme = scheme;
    h.header_checksum = 0;
    h.header_checksum = Hash64(&h, sizeof(h));
    std::memcpy(bytes.data(), &h, sizeof(h));
    return bytes;
  };
  // A v3 file claiming the v2 (global-suffix) scheme, a zero tag, and an
  // unknown future tag: all must be refused by name, because serving
  // global-suffix annotations through block-local consumers would silently
  // double-count every suffix product.
  for (const uint32_t scheme : {kAnnotationSchemeGlobalSuffix, 0u, 7u}) {
    WriteFile(path, with_scheme(scheme));
    const Status st = ExpectRejected(path);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << scheme;
    EXPECT_NE(st.ToString().find("annotation scheme"), std::string::npos)
        << st.ToString();
  }
}

TEST(IndexIoCorruptTest, CrashMidPatchFileMatrixRecovers) {
  // The v3 partial-patch path (per-level doubles + dirty-block probUnder
  // slices) under the same crash matrix the v2 whole-section path survived:
  // a crash after the dirty mark, and a crash after the payload pwrites,
  // must each leave a file that loaders refuse as kFailedPrecondition, and
  // a re-patch must land the file byte-identical to a fresh Save. A fresh
  // engine (not the shared fixture) so the mutation stays local.
  auto mvdb = std::make_unique<Mvdb>();
  Database& db = mvdb->db();
  ASSERT_TRUE(db.CreateTable("R", {"x"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"x", "y"}, true).ok());
  for (int x = 1; x <= 4; ++x) {
    db.InsertProbabilistic("R", {x}, 0.5 + 0.1 * x);
    for (int y = 1; y <= 3; ++y) {
      db.InsertProbabilistic("S", {x, y}, 0.3 + 0.05 * y);
    }
  }
  Ucq v1 = MustParse("V1(x) :- R(x), S(x,y).", &db.dict());
  ASSERT_TRUE(mvdb->AddView(MarkoView::Constant("V1", std::move(v1), 2.0)).ok());
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  const std::string path = ::testing::TempDir() + "/crashpatch.mvidx";
  ASSERT_TRUE(engine.SaveIndex(path).ok());

  DeltaOp op;
  op.kind = DeltaOp::Kind::kUpdateWeight;
  op.table = "R";
  op.values = {2};
  op.weight = 0.9;
  ASSERT_TRUE(engine.ApplyDelta({op}).ok());

  BddManager probe(engine.manager().order());
  for (const bool after_payload : {false, true}) {
    IndexPatchOptions crash;
    crash.crash_after_dirty_mark = !after_payload;
    crash.crash_after_payload = after_payload;
    ASSERT_TRUE(engine.index().PatchFile(path, crash).ok());
    auto owned = MvIndex::Load(path, &probe);
    ASSERT_FALSE(owned.ok()) << "after_payload=" << after_payload;
    EXPECT_EQ(owned.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(MvIndex::LoadMapped(path, &probe).status().code(),
              StatusCode::kFailedPrecondition);
    // Recovery: the pending dirty set is still armed, so a plain re-patch
    // rewrites the slices and clears the flag.
    ASSERT_TRUE(engine.index().PatchFile(path).ok());
    ASSERT_TRUE(MvIndex::Load(path, &probe).ok());
  }

  // The partially-patched file must equal a from-scratch Save of the same
  // in-memory index: the slice writes may not leave even one stale byte.
  const std::string fresh = ::testing::TempDir() + "/crashfresh.mvidx";
  ASSERT_TRUE(engine.SaveIndex(fresh).ok());
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(fresh));
}

TEST(IndexIoCorruptTest, EngineOpenIndexSurfacesTypedErrors) {
  // The engine wrapper must pass loader failures through, not abort, and a
  // database whose variables disagree with the file must be refused.
  SmallIndex& s = Small();
  auto fresh = std::make_unique<Mvdb>();
  Database& db = fresh->db();
  MVDB_CHECK(db.CreateTable("R", {"x"}, true).ok());
  MVDB_CHECK(db.CreateTable("S", {"x", "y"}, true).ok());
  // Half the tuples of the saved instance: fewer variables.
  for (int x = 1; x <= 2; ++x) {
    db.InsertProbabilistic("R", {x}, 0.5);
    db.InsertProbabilistic("S", {x, 1}, 0.4);
  }
  Ucq v1 = MustParse("V1(x) :- R(x), S(x,y).", &db.dict());
  MVDB_CHECK(fresh->AddView(MarkoView::Constant("V1", std::move(v1), 2.0)).ok());
  QueryEngine engine(fresh.get());
  const Status st = engine.OpenIndex(s.path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.compiled());
}

}  // namespace
}  // namespace mvdb
