// Unit tests for src/relational: tables, indexes, the variable registry.

#include <gtest/gtest.h>

#include "relational/database.h"

namespace mvdb {
namespace {

TEST(TableTest, AppendAndRead) {
  Table t("R", {"a", "b"}, false);
  EXPECT_EQ(t.arity(), 2u);
  const RowId r0 = t.AppendRow(std::vector<Value>{1, 2}, kCertainWeight, kNoVar);
  const RowId r1 = t.AppendRow(std::vector<Value>{3, 4}, kCertainWeight, kNoVar);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.At(r0, 0), 1);
  EXPECT_EQ(t.At(r0, 1), 2);
  EXPECT_EQ(t.At(r1, 0), 3);
  auto row = t.Row(r1);
  EXPECT_EQ(row[1], 4);
}

TEST(TableTest, ProbeIndex) {
  Table t("R", {"a", "b"}, false);
  t.AppendRow(std::vector<Value>{1, 10}, kCertainWeight, kNoVar);
  t.AppendRow(std::vector<Value>{1, 11}, kCertainWeight, kNoVar);
  t.AppendRow(std::vector<Value>{2, 12}, kCertainWeight, kNoVar);
  EXPECT_EQ(t.Probe(0, 1).size(), 2u);
  EXPECT_EQ(t.Probe(0, 2).size(), 1u);
  EXPECT_TRUE(t.Probe(0, 99).empty());
  EXPECT_EQ(t.Probe(1, 11).size(), 1u);
}

TEST(TableTest, IndexInvalidatedByAppend) {
  Table t("R", {"a"}, false);
  t.AppendRow(std::vector<Value>{1}, kCertainWeight, kNoVar);
  EXPECT_EQ(t.Probe(0, 1).size(), 1u);
  t.AppendRow(std::vector<Value>{1}, kCertainWeight, kNoVar);
  EXPECT_EQ(t.Probe(0, 1).size(), 2u);
}

TEST(TableTest, DistinctValues) {
  Table t("R", {"a"}, false);
  for (Value v : {5, 3, 5, 1, 3}) {
    t.AppendRow(std::vector<Value>{v}, kCertainWeight, kNoVar);
  }
  EXPECT_EQ(t.DistinctValues(0), (std::vector<Value>{1, 3, 5}));
}

TEST(TableTest, FindRow) {
  Table t("R", {"a", "b"}, false);
  t.AppendRow(std::vector<Value>{1, 2}, kCertainWeight, kNoVar);
  RowId r;
  EXPECT_TRUE(t.FindRow(std::vector<Value>{1, 2}, &r));
  EXPECT_EQ(r, 0u);
  EXPECT_FALSE(t.FindRow(std::vector<Value>{1, 3}, &r));
  EXPECT_FALSE(t.FindRow(std::vector<Value>{9, 2}, &r));
}

TEST(DatabaseTest, CreateAndFind) {
  Database db;
  auto r = db.CreateTable("R", {"a"}, false);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(db.Find("R"), nullptr);
  EXPECT_EQ(db.Find("nope"), nullptr);
  EXPECT_EQ(db.CreateTable("R", {"a"}, false).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, VariableRegistry) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
  const VarId v0 = db.InsertProbabilistic("R", {1}, 2.0);
  const VarId v1 = db.InsertProbabilistic("R", {2}, 0.5);
  EXPECT_EQ(v0, 0);
  EXPECT_EQ(v1, 1);
  EXPECT_EQ(db.num_vars(), 2u);
  EXPECT_DOUBLE_EQ(db.var_weight(v0), 2.0);
  EXPECT_NEAR(db.var_prob(v0), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(db.var_tuple(v1).row, 1u);
  EXPECT_EQ(db.var_tuple(v1).table->name(), "R");
}

TEST(DatabaseTest, VarProbsVector) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
  db.InsertProbabilistic("R", {1}, 1.0);   // p = 0.5
  db.InsertProbabilistic("R", {2}, -0.6);  // negative weight: p = -1.5
  const auto probs = db.VarProbs();
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0], 0.5, 1e-12);
  EXPECT_NEAR(probs[1], -1.5, 1e-9);
}

TEST(DatabaseTest, SetVarWeight) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
  const VarId v = db.InsertProbabilistic("R", {1}, 1.0);
  db.set_var_weight(v, 3.0);
  EXPECT_DOUBLE_EQ(db.var_weight(v), 3.0);
}

TEST(DatabaseTest, StringInterning) {
  Database db;
  const Value a = db.Str("hello");
  EXPECT_EQ(db.Str("hello"), a);
  EXPECT_EQ(db.dict().Lookup(a), "hello");
}

}  // namespace
}  // namespace mvdb
