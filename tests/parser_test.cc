// Unit tests for the datalog-style UCQ parser.

#include <gtest/gtest.h>

#include "query/parser.h"

namespace mvdb {
namespace {

TEST(ParserTest, SimpleCq) {
  Interner dict;
  auto q = ParseUcq("Q(x) :- R(x,y), S(y).", &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->name, "Q");
  ASSERT_EQ(q->head_vars.size(), 1u);
  ASSERT_EQ(q->disjuncts.size(), 1u);
  const auto& cq = q->disjuncts[0];
  ASSERT_EQ(cq.atoms.size(), 2u);
  EXPECT_EQ(cq.atoms[0].relation, "R");
  EXPECT_EQ(cq.atoms[1].relation, "S");
  // x is shared between head and R's first arg.
  EXPECT_EQ(cq.atoms[0].args[0].var, q->head_vars[0]);
  // y is shared between R and S.
  EXPECT_EQ(cq.atoms[0].args[1].var, cq.atoms[1].args[0].var);
}

TEST(ParserTest, BooleanQuery) {
  Interner dict;
  auto q = ParseUcq("W :- R(x), S(x,y).", &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsBoolean());
}

TEST(ParserTest, UnionSharesHeadVars) {
  Interner dict;
  auto q = ParseUcq("Q(x) :- R(x). Q(x) :- T(x,z).", &dict);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->disjuncts.size(), 2u);
  EXPECT_EQ(q->disjuncts[0].atoms[0].args[0].var, q->head_vars[0]);
  EXPECT_EQ(q->disjuncts[1].atoms[0].args[0].var, q->head_vars[0]);
}

TEST(ParserTest, NumericAndStringConstants) {
  Interner dict;
  auto q = ParseUcq("Q(x) :- Pub(x, t, 2004), Author(x, \"Sam Madden\").", &dict);
  ASSERT_TRUE(q.ok());
  const auto& cq = q->disjuncts[0];
  EXPECT_FALSE(cq.atoms[0].args[2].is_var());
  EXPECT_EQ(cq.atoms[0].args[2].constant, 2004);
  EXPECT_FALSE(cq.atoms[1].args[1].is_var());
  EXPECT_EQ(cq.atoms[1].args[1].constant, dict.Find("Sam Madden"));
}

TEST(ParserTest, Comparisons) {
  Interner dict;
  auto q = ParseUcq(
      "Q(x) :- R(x,y,z), y != z, x > 2004, y <= 7, z < 9, x >= 1, y = 3.",
      &dict);
  ASSERT_TRUE(q.ok());
  const auto& cmps = q->disjuncts[0].comparisons;
  ASSERT_EQ(cmps.size(), 6u);
  EXPECT_EQ(cmps[0].op, CmpOp::kNe);
  EXPECT_EQ(cmps[1].op, CmpOp::kGt);
  EXPECT_EQ(cmps[2].op, CmpOp::kLe);
  EXPECT_EQ(cmps[3].op, CmpOp::kLt);
  EXPECT_EQ(cmps[4].op, CmpOp::kGe);
  EXPECT_EQ(cmps[5].op, CmpOp::kEq);
}

TEST(ParserTest, DiamondNotEquals) {
  Interner dict;
  auto q = ParseUcq("Q(x) :- R(x,y), x <> y.", &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->disjuncts[0].comparisons[0].op, CmpOp::kNe);
}

TEST(ParserTest, WeightAnnotation) {
  Interner dict;
  auto q = ParseUcq("V(x,y)[0.5] :- R(x), S(x,y).", &dict);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->weight.has_value());
  EXPECT_DOUBLE_EQ(*q->weight, 0.5);
}

TEST(ParserTest, ZeroWeightDenial) {
  Interner dict;
  auto q = ParseUcq("V2(a,b,c)[0] :- Advisor(a,b), Advisor(a,c), b != c.", &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(*q->weight, 0.0);
}

TEST(ParserTest, Comments) {
  Interner dict;
  auto q = ParseUcq("% the paper's Fig. 2 query\nQ(x) :- R(x). % trailing", &dict);
  ASSERT_TRUE(q.ok());
}

TEST(ParserTest, ProgramGroupsByHead) {
  Interner dict;
  auto p = ParseProgram("A(x) :- R(x). B(x) :- S(x,y). A(x) :- T(x,y).", &dict);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->size(), 2u);
  EXPECT_EQ((*p)[0].name, "A");
  EXPECT_EQ((*p)[0].disjuncts.size(), 2u);
  EXPECT_EQ((*p)[1].name, "B");
}

TEST(ParserTest, Errors) {
  Interner dict;
  EXPECT_EQ(ParseUcq("", &dict).status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseUcq("Q(x) :- ", &dict).status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseUcq("Q(x) R(x).", &dict).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseUcq("Q(x) :- R(x", &dict).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseUcq("Q(x) :- \"unterminated", &dict).status().code(),
            StatusCode::kParseError);
  // Head arity mismatch between rules of the same UCQ.
  EXPECT_EQ(ParseUcq("Q(x) :- R(x). Q(x,y) :- S(x,y).", &dict).status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, VariablesAreRuleLocal) {
  Interner dict;
  auto q = ParseUcq("Q(x) :- R(x,y). Q(x) :- S(x,y).", &dict);
  ASSERT_TRUE(q.ok());
  // The two `y`s are distinct variables (renamed apart across disjuncts).
  EXPECT_NE(q->disjuncts[0].atoms[0].args[1].var,
            q->disjuncts[1].atoms[0].args[1].var);
}

TEST(ParserTest, RoundTripToString) {
  Interner dict;
  auto q = ParseUcq("Q(x) :- R(x,y), S(y), x != y.", &dict);
  ASSERT_TRUE(q.ok());
  const std::string s = ToString(*q);
  EXPECT_NE(s.find("R(x,y)"), std::string::npos);
  EXPECT_NE(s.find("x != y"), std::string::npos);
}

}  // namespace
}  // namespace mvdb
