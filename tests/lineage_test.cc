// Unit tests for src/prob/lineage: DNF normalization, evaluation, stats.

#include <gtest/gtest.h>

#include "prob/lineage.h"

namespace mvdb {
namespace {

TEST(LineageTest, EmptyIsFalse) {
  Lineage l;
  EXPECT_TRUE(l.IsFalse());
  EXPECT_FALSE(l.IsTrue());
  EXPECT_EQ(l.size(), 0u);
}

TEST(LineageTest, EmptyClauseIsTrue) {
  Lineage l;
  l.AddClause({});
  EXPECT_TRUE(l.IsTrue());
  EXPECT_FALSE(l.IsFalse());
}

TEST(LineageTest, ClauseSortedAndDeduped) {
  Lineage l;
  l.AddClause({3, 1, 3, 2});
  EXPECT_EQ(l.clauses()[0], (Clause{1, 2, 3}));
}

TEST(LineageTest, NormalizeRemovesDuplicateClauses) {
  Lineage l;
  l.AddClause({1, 2});
  l.AddClause({2, 1});
  l.Normalize();
  EXPECT_EQ(l.size(), 1u);
}

TEST(LineageTest, NormalizeAbsorption) {
  Lineage l;
  l.AddClause({1});
  l.AddClause({1, 2});  // absorbed by {1}
  l.AddClause({3, 4});
  l.Normalize();
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.clauses()[0], (Clause{1}));
  EXPECT_EQ(l.clauses()[1], (Clause{3, 4}));
}

TEST(LineageTest, UnionIsClauseUnion) {
  Lineage a, b;
  a.AddClause({1});
  b.AddClause({2});
  a.Union(b);
  a.Normalize();
  EXPECT_EQ(a.size(), 2u);
}

TEST(LineageTest, Vars) {
  Lineage l;
  l.AddClause({5, 1});
  l.AddClause({3, 5});
  EXPECT_EQ(l.Vars(), (std::vector<VarId>{1, 3, 5}));
  EXPECT_EQ(l.NumDistinctVars(), 3u);
  EXPECT_EQ(l.NumLiterals(), 4u);
}

TEST(LineageTest, Eval) {
  Lineage l;  // x0 x1 | x2
  l.AddClause({0, 1});
  l.AddClause({2});
  EXPECT_TRUE(l.Eval({true, true, false}));
  EXPECT_TRUE(l.Eval({false, false, true}));
  EXPECT_FALSE(l.Eval({true, false, false}));
  EXPECT_FALSE(l.Eval({false, true, false}));
}

TEST(LineageTest, ToString) {
  Lineage l;
  EXPECT_EQ(l.ToString(), "false");
  l.AddClause({1, 2});
  EXPECT_EQ(l.ToString(), "x1 x2");
  l.AddClause({3});
  EXPECT_EQ(l.ToString(), "x1 x2 | x3");
}

TEST(LineageTest, Fig3Lineage) {
  // Phi_Q = X1Y1 v X1Y2 v X2Y3 v X2Y4 with vars 0..5 =
  // X1,X2,Y1,Y2,Y3,Y4.
  Lineage l;
  l.AddClause({0, 2});
  l.AddClause({0, 3});
  l.AddClause({1, 4});
  l.AddClause({1, 5});
  l.Normalize();
  EXPECT_EQ(l.size(), 4u);
  EXPECT_EQ(l.NumDistinctVars(), 6u);
  EXPECT_TRUE(l.Eval({true, false, false, true, false, false}));
  EXPECT_FALSE(l.Eval({true, true, false, false, false, false}));
}

}  // namespace
}  // namespace mvdb
