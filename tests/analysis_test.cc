// Unit tests for query analysis: root variables, separators, independence,
// inversion-freeness (Section 4.2).

#include <gtest/gtest.h>

#include <set>

#include "query/analysis.h"
#include "query/parser.h"

namespace mvdb {
namespace {

IsProbFn AllProb() {
  return [](const std::string&) { return true; };
}

IsProbFn ProbOnly(std::set<std::string> names) {
  return [names = std::move(names)](const std::string& r) {
    return names.count(r) > 0;
  };
}

Ucq Parse(const std::string& s) {
  Interner dict;
  auto q = ParseUcq(s, &dict);
  MVDB_CHECK(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(AnalysisTest, AtomAndCqVars) {
  Ucq q = Parse("Q :- R(x,y), S(y,z).");
  const auto& cq = q.disjuncts[0];
  EXPECT_EQ(AtomVars(cq.atoms[0]).size(), 2u);
  EXPECT_EQ(CqVars(cq).size(), 3u);
}

TEST(AnalysisTest, RootVars) {
  Ucq q = Parse("Q :- R(x), S(x,y).");
  EXPECT_EQ(RootVars(q.disjuncts[0], AllProb()).size(), 1u);

  Ucq h0 = Parse("Q :- R(x), S(x,y), T(y).");
  EXPECT_TRUE(RootVars(h0.disjuncts[0], AllProb()).empty());
}

TEST(AnalysisTest, RootVarsIgnoreDeterministicAtoms) {
  // Wrote is deterministic: x need not occur in it.
  Ucq q = Parse("Q :- R(x), S(x,y), Wrote(y,p).");
  const auto roots = RootVars(q.disjuncts[0], ProbOnly({"R", "S"}));
  EXPECT_EQ(roots.size(), 1u);
}

TEST(AnalysisTest, SeparatorSimple) {
  Ucq q = Parse("Q :- R(x), S(x,y).");
  auto sep = FindSeparator(q, AllProb());
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->position.at("R"), 0u);
  EXPECT_EQ(sep->position.at("S"), 0u);
}

TEST(AnalysisTest, SeparatorAcrossUnion) {
  // The paper's example: R(x1),S(x1,y1) v T(x2),S(x2,y2) — z is a separator
  // because S atoms agree on position 0.
  Ucq q = Parse("Q :- R(x1), S(x1,y1). Q :- T(x2), S(x2,y2).");
  auto sep = FindSeparator(q, AllProb());
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->position.at("S"), 0u);
}

TEST(AnalysisTest, NoSeparatorWithInversion) {
  // R(x1),S(x1,y1) v S(x2,y2),T(y2): S would need the separator on position
  // 0 in the first disjunct but position 1 in the second.
  Ucq q = Parse("Q :- R(x1), S(x1,y1). Q :- S(x2,y2), T(y2).");
  EXPECT_FALSE(FindSeparator(q, AllProb()).has_value());
}

TEST(AnalysisTest, SeparatorSelfJoinConsistency) {
  // Advisor appears twice; aid1 occurs at position 0 in both.
  Ucq q = Parse("Q :- Advisor(a,b), Advisor(a,c), b != c.");
  auto sep = FindSeparator(q, AllProb());
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->position.at("Advisor"), 0u);
}

TEST(AnalysisTest, IndependentUnionComponents) {
  Ucq q = Parse("Q :- R(x), S(x,y). Q :- T(z). Q :- S(u,v).");
  const auto groups = IndependentUnionComponents(q, AllProb());
  // Disjuncts 0 and 2 share S; disjunct 1 is independent.
  ASSERT_EQ(groups.size(), 2u);
  std::set<size_t> g0(groups[0].begin(), groups[0].end());
  std::set<size_t> g1(groups[1].begin(), groups[1].end());
  EXPECT_TRUE((g0 == std::set<size_t>{0, 2} && g1 == std::set<size_t>{1}) ||
              (g1 == std::set<size_t>{0, 2} && g0 == std::set<size_t>{1}));
}

TEST(AnalysisTest, ConnectedComponentsByVariable) {
  Ucq q = Parse("Q :- R(x), S(x,y), T(z), U(z,w).");
  auto comps = ConnectedComponents(q.disjuncts[0], AllProb());
  EXPECT_EQ(comps.size(), 2u);
}

TEST(AnalysisTest, ConnectedComponentsBySymbol) {
  // Same symbol R in both "halves": potential tuple sharing merges them.
  Ucq q = Parse("Q :- R(x), R(y).");
  auto comps = ConnectedComponents(q.disjuncts[0], AllProb());
  EXPECT_EQ(comps.size(), 1u);
}

TEST(AnalysisTest, ComparisonLinksComponents) {
  Ucq q = Parse("Q :- R(x), T(z), x != z.");
  auto comps = ConnectedComponents(q.disjuncts[0], AllProb());
  EXPECT_EQ(comps.size(), 1u);
}

TEST(AnalysisTest, ComparisonsFollowTheirComponent) {
  Ucq q = Parse("Q :- R(x), T(z), z > 5.");
  auto comps = ConnectedComponents(q.disjuncts[0], AllProb());
  ASSERT_EQ(comps.size(), 2u);
  // The comparison z > 5 must be in T's component.
  for (const auto& comp : comps) {
    if (comp.atoms[0].relation == "T") {
      EXPECT_EQ(comp.comparisons.size(), 1u);
    } else {
      EXPECT_TRUE(comp.comparisons.empty());
    }
  }
}

TEST(AnalysisTest, InversionFreePositive) {
  std::unordered_map<std::string, size_t> arity = {{"R", 1}, {"S", 2}};
  Ucq q = Parse("Q :- R(x), S(x,y).");
  auto pi = FindInversionFreePi(q, AllProb(), arity);
  ASSERT_TRUE(pi.has_value());
  EXPECT_EQ(pi->at("S"), (std::vector<size_t>{0, 1}));
}

TEST(AnalysisTest, InversionFreeNeedsPermutation) {
  // Separator sits on S's *second* attribute: pi must reorder S.
  std::unordered_map<std::string, size_t> arity = {{"R", 1}, {"S", 2}};
  Ucq q = Parse("Q :- R(x), S(y,x).");
  auto pi = FindInversionFreePi(q, AllProb(), arity);
  ASSERT_TRUE(pi.has_value());
  EXPECT_EQ(pi->at("S"), (std::vector<size_t>{1, 0}));
}

TEST(AnalysisTest, InversionDetected) {
  // The classic inversion: R(x1),S(x1,y1) v S(x2,y2),T(y2).
  std::unordered_map<std::string, size_t> arity = {
      {"R", 1}, {"S", 2}, {"T", 1}};
  Ucq q = Parse("Q :- R(x1), S(x1,y1). Q :- S(x2,y2), T(y2).");
  EXPECT_FALSE(FindInversionFreePi(q, AllProb(), arity).has_value());
}

TEST(AnalysisTest, H0HasNoSeparatorButIsNotInversionFree) {
  std::unordered_map<std::string, size_t> arity = {
      {"R", 1}, {"S", 2}, {"T", 1}};
  Ucq q = Parse("Q :- R(x), S(x,y), T(y).");
  EXPECT_FALSE(FindInversionFreePi(q, AllProb(), arity).has_value());
}

TEST(AnalysisTest, UnionOfIndependentPartsIsInversionFree) {
  std::unordered_map<std::string, size_t> arity = {
      {"R", 1}, {"S", 2}, {"T", 1}, {"U", 2}};
  Ucq q = Parse("Q :- R(x), S(x,y). Q :- T(z), U(z,w).");
  EXPECT_TRUE(FindInversionFreePi(q, AllProb(), arity).has_value());
}

TEST(AnalysisTest, V2ShapeIsInversionFree) {
  // V2's body Advisor(a,b), Advisor(a,c): separator a (position 0), then the
  // residual per-a blocks are synthesized — but the *query-level* check
  // requires only that the separator chain grounds all variables of every
  // probabilistic atom. After grounding a, atoms Advisor(a,b), Advisor(a,c)
  // still have root variables? No — b and c each occur in only one atom
  // each, and the two atoms share the symbol, so there is no further
  // separator and the residue is not ground: not inversion-free.
  std::unordered_map<std::string, size_t> arity = {{"Advisor", 2}};
  Ucq q = Parse("Q :- Advisor(a,b), Advisor(a,c), b != c.");
  EXPECT_FALSE(FindInversionFreePi(q, AllProb(), arity).has_value());
}

}  // namespace
}  // namespace mvdb
