// Scheduler-contract battery for the serving layer: expired deadlines
// complete with kDeadlineExceeded WITHOUT executing (the plan cache's miss
// counter proves no evaluation ran), the queue/inflight admission limits
// shed with typed kUnavailable instead of blocking, and shutdown drains
// cleanly — started workers finish every admitted request, unstarted
// servers fail queued requests instead of hanging them. Runs under the
// ASan/UBSan CI job; every path must also be leak- and hang-free.
//
// Determinism: tests that need a full queue construct the server with
// start_workers=false, so nothing dequeues until Start() — admission
// decisions then depend only on the submit sequence, never on timing. The
// only sleep is to let an already-admitted request's deadline expire
// before workers start, which is racefree by construction.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "serve/server.h"
#include "test_util.h"

namespace mvdb {
namespace {

/// One compiled DBLP workload shared by every test (compiling per test
/// would dominate the suite; the serving layer never mutates it).
struct SharedEngine {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
  Ucq query;  // a students-of-advisor query with a nonempty answer set
};

SharedEngine& Shared() {
  static SharedEngine* shared = [] {
    auto* s = new SharedEngine();
    dblp::DblpConfig cfg;
    cfg.num_authors = 150;
    auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
    MVDB_CHECK(mvdb.ok());
    s->mvdb = std::move(mvdb).value();
    s->engine = std::make_unique<QueryEngine>(s->mvdb.get());
    MVDB_CHECK(s->engine->Compile().ok());
    const Table* advisor = s->mvdb->db().Find("Advisor");
    MVDB_CHECK(advisor != nullptr && advisor->size() > 0);
    const Value senior = advisor->At(0, 1);
    s->query = dblp::StudentsOfAdvisorQuery(
        s->mvdb.get(), dblp::AuthorName(static_cast<int>(senior)));
    return s;
  }();
  return *shared;
}

std::unique_ptr<Server> MakeServer(ServeOptions opts) {
  auto server = Shared().engine->Serve(opts);
  MVDB_CHECK(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

ServeRequest Req(double deadline_ms = -1.0) {
  ServeRequest req;
  req.query = Shared().query;
  req.deadline_ms = deadline_ms;
  return req;
}

TEST(ServeDeadlineTest, ExpiredDeadlineCompletesWithoutExecuting) {
  ServeOptions opts;
  opts.num_threads = 1;
  opts.start_workers = false;
  auto server = MakeServer(opts);

  auto fut = server->Submit(Req(/*deadline_ms=*/1.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Start();  // worker dequeues an already-expired request
  const ServeResult res = fut.get();
  EXPECT_EQ(res.status.code(), StatusCode::kDeadlineExceeded)
      << res.status.ToString();
  EXPECT_TRUE(res.answers.empty());

  server->Shutdown();
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  // The request never reached evaluation: the plan cache was never consulted.
  EXPECT_EQ(server->plan_cache_stats().misses, 0u);
  EXPECT_EQ(server->plan_cache_stats().hits, 0u);
}

TEST(ServeDeadlineTest, DefaultDeadlineFromOptionsApplies) {
  ServeOptions opts;
  opts.num_threads = 1;
  opts.start_workers = false;
  opts.default_deadline_ms = 1.0;
  auto server = MakeServer(opts);

  auto expired = server->Submit(Req());  // deadline_ms < 0: inherit default
  auto unbounded = server->Submit(Req(/*deadline_ms=*/0.0));  // 0: none
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Start();
  EXPECT_EQ(expired.get().status.code(), StatusCode::kDeadlineExceeded);
  const ServeResult ok = unbounded.get();
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_GT(ok.answers.size(), 0u);
}

TEST(ServeDeadlineTest, QueueFullShedsWithTypedUnavailable) {
  ServeOptions opts;
  opts.num_threads = 1;
  opts.start_workers = false;  // nothing dequeues: the queue fills exactly
  opts.queue_capacity = 2;
  auto server = MakeServer(opts);

  auto f1 = server->Submit(Req());
  auto f2 = server->Submit(Req());
  auto f3 = server->Submit(Req());  // over capacity: shed, not blocked
  const ServeResult shed = f3.get();
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable)
      << shed.status.ToString();
  EXPECT_EQ(server->stats().shed_queue_full, 1u);

  // The admitted requests still complete once workers start.
  server->Start();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  EXPECT_EQ(server->stats().completed, 2u);
}

TEST(ServeDeadlineTest, InflightLimiterShedsAtCapacity) {
  ServeOptions opts;
  opts.num_threads = 1;
  opts.start_workers = false;
  opts.queue_capacity = 100;
  opts.max_inflight = 2;  // bites before the queue bound
  auto server = MakeServer(opts);

  auto f1 = server->Submit(Req());
  auto f2 = server->Submit(Req());
  auto f3 = server->Submit(Req());
  EXPECT_EQ(f3.get().status.code(), StatusCode::kUnavailable);
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.shed_inflight, 1u);
  EXPECT_EQ(stats.shed_queue_full, 0u);

  server->Start();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  // Completion released the inflight slots: admission works again.
  auto f4 = server->Submit(Req());
  EXPECT_TRUE(f4.get().status.ok());
}

TEST(ServeDeadlineTest, ShutdownDrainsAdmittedRequests) {
  ServeOptions opts;
  opts.num_threads = 2;
  opts.max_batch = 4;
  auto server = MakeServer(opts);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 24; ++i) futures.push_back(server->Submit(Req()));
  server->Shutdown();  // must drain every admitted request, then join

  size_t ok = 0;
  for (auto& f : futures) {
    const ServeResult res = f.get();  // completes — no hangs
    if (res.status.ok()) {
      ++ok;
      EXPECT_GT(res.answers.size(), 0u);
    } else {
      // Anything not drained must carry the typed shutdown error.
      EXPECT_EQ(res.status.code(), StatusCode::kUnavailable);
    }
  }
  EXPECT_EQ(ok, 24u);  // started workers drain the whole queue
  EXPECT_EQ(server->stats().completed, 24u);
}

TEST(ServeDeadlineTest, ShutdownWithoutWorkersFailsQueuedRequestsCleanly) {
  ServeOptions opts;
  opts.num_threads = 1;
  opts.start_workers = false;
  auto server = MakeServer(opts);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(server->Submit(Req()));
  server->Shutdown();  // no workers ever started: queued requests must fail
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(server->stats().rejected_shutdown, 3u);
}

TEST(ServeDeadlineTest, SubmitAfterShutdownIsRejected) {
  auto server = MakeServer(ServeOptions{});
  server->Shutdown();
  auto fut = server->Submit(Req());
  EXPECT_EQ(fut.get().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server->stats().rejected_shutdown, 1u);
  server->Shutdown();  // idempotent
}

TEST(ServeDeadlineTest, CacheOffServerServesIdenticalAnswers) {
  // The ServeOptions::use_plan_cache escape hatch: answers must not depend
  // on the cache (bit-identity is pinned harder in serve_concurrency_test;
  // here we check the hatch plumbs through and stats reflect it).
  ServeOptions on, off;
  off.use_plan_cache = false;
  auto s_on = MakeServer(on);
  auto s_off = MakeServer(off);
  const ServeResult r_on = s_on->Execute(Req());
  const ServeResult r_off = s_off->Execute(Req());
  ASSERT_TRUE(r_on.status.ok());
  ASSERT_TRUE(r_off.status.ok());
  ASSERT_EQ(r_on.answers.size(), r_off.answers.size());
  for (size_t i = 0; i < r_on.answers.size(); ++i) {
    EXPECT_EQ(r_on.answers[i].head, r_off.answers[i].head);
    EXPECT_EQ(r_on.answers[i].prob, r_off.answers[i].prob);
  }
  EXPECT_EQ(s_on->plan_cache_stats().misses, 1u);
  EXPECT_EQ(s_off->plan_cache_stats().misses, 0u);  // cache disabled
}

}  // namespace
}  // namespace mvdb
