// Round-trip battery for the persistent MV-index format (mvindex/index_io):
// Save -> Load and Save -> LoadMapped must reproduce the compiled index BIT
// FOR BIT — flat topology, block directory, every extended-range
// probability — and an engine stood up from the file (OpenIndex) must serve
// the exact answer bits of the engine that built the index, at any worker
// count. Two golden hashes pin this against the rest of the suite: the
// DBLP-400 serving reference (serve_concurrency_test) and the 2K-author
// pipeline hash (pipeline_golden_test). A fork-based test proves two
// processes can map one index file simultaneously and answer identically.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dblp/dblp.h"
#include "mvindex/index_io.h"
#include "mvindex/mv_index.h"
#include "query/eval.h"
#include "serve/server.h"
#include "util/scaled_double.h"

namespace mvdb {
namespace {

double ClampProb(double p) {
  if (p < 0.0 && p > -1e-9) return 0.0;
  if (p > 1.0 && p < 1.0 + 1e-9) return 1.0;
  return p;
}

void FnvMix(uint64_t v, uint64_t* h) { *h = (*h ^ v) * 1099511628211ULL; }

/// Same digest as pipeline_golden_test::HashIndex — the full compiled
/// image: flat topology, block directory, P0(NOT W).
uint64_t HashIndex(const MvIndex& index) {
  uint64_t h = 1469598103934665603ULL;
  const FlatObdd& flat = index.flat();
  FnvMix(static_cast<uint64_t>(static_cast<int64_t>(flat.root())), &h);
  FnvMix(flat.size(), &h);
  for (FlatId u = 0; u < static_cast<FlatId>(flat.size()); ++u) {
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.level(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.lo(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.hi(u))), &h);
  }
  FnvMix(index.blocks().size(), &h);
  for (const MvBlock& b : index.blocks()) {
    for (char c : b.key) FnvMix(static_cast<uint64_t>(c), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.chain_root)), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.first_level)), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.last_level)), &h);
    const double p = b.prob.ToDouble();
    uint64_t bits;
    std::memcpy(&bits, &p, sizeof(bits));
    FnvMix(bits, &h);
  }
  const double not_w = index.ProbNotW();
  uint64_t bits;
  std::memcpy(&bits, &not_w, sizeof(bits));
  FnvMix(bits, &h);
  return h;
}

/// Raw-bits digest of every ScaledDouble the index holds (annotations +
/// block probabilities) — the satellite pin for the bit-exact serialize/
/// deserialize path: no double<->text conversion can survive this.
uint64_t HashScaledBits(const MvIndex& index) {
  uint64_t h = 1469598103934665603ULL;
  const FlatObdd& flat = index.flat();
  for (size_t i = 0; i < flat.size(); ++i) {
    const ScaledDouble pu = flat.prob_under_data()[i];
    FnvMix(pu.mantissa_bits(), &h);
    FnvMix(static_cast<uint64_t>(pu.exponent_word()), &h);
  }
  for (const MvBlock& b : index.blocks()) {
    FnvMix(b.prob.mantissa_bits(), &h);
    FnvMix(static_cast<uint64_t>(b.prob.exponent_word()), &h);
  }
  return h;
}

uint64_t HashAnswers(const std::vector<std::vector<AnswerProb>>& per_query) {
  uint64_t h = 1469598103934665603ULL;
  FnvMix(per_query.size(), &h);
  for (const auto& answers : per_query) {
    FnvMix(answers.size(), &h);
    for (const AnswerProb& a : answers) {
      for (const Value v : a.head) {
        FnvMix(static_cast<uint64_t>(static_cast<int64_t>(v)), &h);
      }
      uint64_t bits;
      std::memcpy(&bits, &a.prob, sizeof(bits));
      FnvMix(bits, &h);
    }
  }
  return h;
}

/// Golden hash of the DBLP-400 serial reference answers — the same value
/// serve_concurrency_test pins for the engine that BUILT its index. The
/// loaded index must reproduce it exactly.
constexpr uint64_t kGoldenAnswers = 9734561884288702949ULL;

std::unique_ptr<Mvdb> BuildDblp400() {
  dblp::DblpConfig cfg;
  cfg.num_authors = 400;
  cfg.include_affiliation = true;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  MVDB_CHECK(mvdb.ok());
  return std::move(mvdb).value();
}

/// The serve_concurrency_test query mix against a given (translated) MVDB.
std::vector<Ucq> BuildQueries(Mvdb* mvdb) {
  std::vector<Ucq> queries;
  const Table* advisor = mvdb->db().Find("Advisor");
  MVDB_CHECK(advisor != nullptr && advisor->size() >= 6);
  const size_t stride = advisor->size() / 6;
  for (size_t i = 0; i < 6; ++i) {
    const Value senior = advisor->At(static_cast<RowId>(i * stride), 1);
    queries.push_back(dblp::StudentsOfAdvisorQuery(
        mvdb, dblp::AuthorName(static_cast<int>(senior))));
  }
  const Table* aff = mvdb->db().Find("Affiliation");
  MVDB_CHECK(aff != nullptr && aff->size() >= 3);
  for (size_t i = 0; i < 3; ++i) {
    const Value aid = aff->At(static_cast<RowId>(i), 0);
    queries.push_back(dblp::AffiliationOfAuthorQuery(
        mvdb, dblp::AuthorName(static_cast<int>(aid))));
  }
  queries.push_back(dblp::StudentsOfAdvisorQuery(mvdb, "no-such-author"));
  return queries;
}

/// Serial first-principles answers (Eval + fresh-manager synthesis + solo
/// CC sweep) over whichever index `engine` holds — built or loaded.
std::vector<std::vector<AnswerProb>> SerialReference(
    Mvdb* mvdb, QueryEngine* engine, const std::vector<Ucq>& queries) {
  std::vector<std::vector<AnswerProb>> reference;
  const MvIndex& index = engine->index();
  const ScaledDouble denom = index.ProbNotWScaled();
  CcSweepScratch scratch;
  for (const Ucq& q : queries) {
    AnswerMap answers;
    MVDB_CHECK(Eval(mvdb->db(), q, EvalOptions{}, &answers).ok());
    BddManager qmgr(index.manager().order());
    std::vector<AnswerProb> out;
    for (const auto& [head, info] : answers) {
      const NodeId root = qmgr.FromLineageSynthesis(info.lineage);
      const ScaledDouble num =
          index.CCMVIntersectScaled(CcQuery{&qmgr, root}, &scratch);
      out.push_back(AnswerProb{head, ClampProb((num / denom).ToDouble())});
    }
    reference.push_back(std::move(out));
  }
  return reference;
}

/// Builds DBLP-400, compiles, saves — once for the whole suite.
struct SavedWorkload {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
  std::string path;
  uint64_t built_index_hash = 0;
  uint64_t built_scaled_hash = 0;
};

SavedWorkload& Saved() {
  static SavedWorkload* shared = [] {
    auto* s = new SavedWorkload();
    s->mvdb = BuildDblp400();
    s->engine = std::make_unique<QueryEngine>(s->mvdb.get());
    MVDB_CHECK(s->engine->Compile().ok());
    s->path = ::testing::TempDir() + "/dblp400.mvidx";
    MVDB_CHECK(s->engine->SaveIndex(s->path).ok());
    s->built_index_hash = HashIndex(s->engine->index());
    s->built_scaled_hash = HashScaledBits(s->engine->index());
    return s;
  }();
  return *shared;
}

TEST(IndexIoTest, FormatVersionIsPinned) {
  // A bump invalidates every saved index; CI's golden-artifact cache keys
  // on this value. Bump deliberately, never accidentally. v3: probUnder
  // became block-local and the header grew the annotation-scheme tag;
  // older files upgrade offline via `dump_index --migrate`.
  EXPECT_EQ(kIndexFormatVersion, 3u);
}

TEST(IndexIoTest, RoundTripReproducesIndexBitsOwnedAndMapped) {
  SavedWorkload& s = Saved();
  BddManager mgr(s.engine->manager().order());

  auto owned = MvIndex::Load(s.path, &mgr);
  ASSERT_TRUE(owned.ok()) << owned.status().ToString();
  EXPECT_FALSE((*owned)->flat().mapped());
  EXPECT_EQ(HashIndex(**owned), s.built_index_hash);
  EXPECT_EQ(HashScaledBits(**owned), s.built_scaled_hash);

  auto mapped = MvIndex::LoadMapped(s.path, &mgr);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE((*mapped)->flat().mapped());
  EXPECT_EQ(HashIndex(**mapped), s.built_index_hash);
  EXPECT_EQ(HashScaledBits(**mapped), s.built_scaled_hash);

  // The full integrity pass holds for a freshly written file.
  auto reader = IndexFileReader::OpenMapped(s.path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->VerifyChecksums().ok());
  EXPECT_EQ(reader->header().num_nodes, s.engine->index().flat().size());
  EXPECT_EQ(reader->header().num_blocks, s.engine->index().blocks().size());
}

TEST(IndexIoTest, OpenIndexServesGoldenAnswerBits) {
  SavedWorkload& s = Saved();
  // A fresh process's view: new MVDB instance (same deterministic
  // generator), engine stood up from the file alone.
  for (const bool mapped : {true, false}) {
    auto mvdb = BuildDblp400();
    QueryEngine engine(mvdb.get());
    QueryEngine::OpenIndexOptions opts;
    opts.mapped = mapped;
    ASSERT_TRUE(engine.OpenIndex(s.path, opts).ok()) << "mapped=" << mapped;
    ASSERT_TRUE(engine.compiled());
    const std::vector<Ucq> queries = BuildQueries(mvdb.get());
    const auto reference = SerialReference(mvdb.get(), &engine, queries);
    EXPECT_EQ(HashAnswers(reference), kGoldenAnswers) << "mapped=" << mapped;
  }
}

TEST(IndexIoTest, LoadedIndexServesBitIdenticallyAtEveryWorkerCount) {
  SavedWorkload& s = Saved();
  auto mvdb = BuildDblp400();
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.OpenIndex(s.path).ok());
  const std::vector<Ucq> queries = BuildQueries(mvdb.get());
  const auto reference = SerialReference(mvdb.get(), &engine, queries);
  ASSERT_EQ(HashAnswers(reference), kGoldenAnswers);

  for (const int workers : {1, 2, 8}) {
    ServeOptions opts;
    opts.num_threads = workers;
    auto server = engine.Serve(opts);
    ASSERT_TRUE(server.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      ServeRequest req;
      req.query = queries[i];
      const ServeResult res = (*server)->Submit(req).get();
      ASSERT_TRUE(res.status.ok()) << res.status.ToString();
      ASSERT_EQ(res.answers.size(), reference[i].size());
      for (size_t j = 0; j < res.answers.size(); ++j) {
        EXPECT_EQ(res.answers[j].head, reference[i][j].head);
        EXPECT_EQ(std::memcmp(&res.answers[j].prob, &reference[i][j].prob,
                              sizeof(double)),
                  0)
            << "workers=" << workers << " query=" << i;
      }
    }
    (*server)->Shutdown();
  }
}

TEST(IndexIoTest, ObddReuseBackendWorksViaLazyChainImport) {
  SavedWorkload& s = Saved();
  auto mvdb = BuildDblp400();
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.OpenIndex(s.path).ok());
  EXPECT_FALSE(engine.index().chain_imported());
  const std::vector<Ucq> queries = BuildQueries(mvdb.get());
  // kObddReuse needs the manager-side chain; the engine must import it on
  // first use and then agree with the CC backend.
  auto reuse = engine.Query(queries[0], Backend::kObddReuse);
  ASSERT_TRUE(reuse.ok()) << reuse.status().ToString();
  EXPECT_TRUE(engine.index().chain_imported());
  auto cc = engine.Query(queries[0], Backend::kMvIndexCC);
  ASSERT_TRUE(cc.ok());
  ASSERT_EQ(reuse->size(), cc->size());
  for (size_t j = 0; j < reuse->size(); ++j) {
    EXPECT_EQ((*reuse)[j].head, (*cc)[j].head);
    EXPECT_NEAR((*reuse)[j].prob, (*cc)[j].prob, 1e-9);
  }
}

TEST(IndexIoTest, TwoProcessesShareOneMappedIndexAndAnswerIdentically) {
  SavedWorkload& s = Saved();
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: map the same file (MAP_SHARED pages come from the same page
    // cache as the parent's), serve, ship the answer hash back.
    close(fds[0]);
    uint64_t hash = 0;
    {
      auto mvdb = BuildDblp400();
      QueryEngine engine(mvdb.get());
      if (engine.OpenIndex(s.path).ok()) {
        const std::vector<Ucq> queries = BuildQueries(mvdb.get());
        hash = HashAnswers(SerialReference(mvdb.get(), &engine, queries));
      }
    }
    ssize_t written = write(fds[1], &hash, sizeof(hash));
    close(fds[1]);
    _exit(written == sizeof(hash) ? 0 : 1);
  }
  close(fds[1]);
  // Parent: map concurrently (both mappings alive at once), then compare.
  auto mvdb = BuildDblp400();
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.OpenIndex(s.path).ok());
  const std::vector<Ucq> queries = BuildQueries(mvdb.get());
  const uint64_t parent_hash =
      HashAnswers(SerialReference(mvdb.get(), &engine, queries));

  uint64_t child_hash = 0;
  ASSERT_EQ(read(fds[0], &child_hash, sizeof(child_hash)),
            static_cast<ssize_t>(sizeof(child_hash)));
  close(fds[0]);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(parent_hash, kGoldenAnswers);
  EXPECT_EQ(child_hash, kGoldenAnswers);
}

TEST(IndexIoTest, WrongOrderManagerIsRejected) {
  SavedWorkload& s = Saved();
  // A manager over the same variables in a different permutation: digest
  // check must refuse (the flat ids would be meaningless against it).
  std::vector<VarId> reversed(s.engine->manager().order()->vars());
  std::reverse(reversed.begin(), reversed.end());
  BddManager wrong(std::move(reversed));
  auto loaded = MvIndex::LoadMapped(s.path, &wrong);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(IndexIoTest, MissingFileIsNotFound) {
  SavedWorkload& s = Saved();
  BddManager mgr(s.engine->manager().order());
  const std::string missing = ::testing::TempDir() + "/no-such-index.mvidx";
  auto owned = MvIndex::Load(missing, &mgr);
  ASSERT_FALSE(owned.ok());
  EXPECT_EQ(owned.status().code(), StatusCode::kNotFound);
  auto mapped = MvIndex::LoadMapped(missing, &mgr);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound);
}

TEST(IndexIoTest, ScaledDoubleRawWordsRoundTripExactly) {
  // The serialization primitive itself, on values double IO would mangle:
  // extreme exponents (outside double range), negatives (Section 3.3
  // weights), zero, and values with full mantissa entropy.
  const ScaledDouble cases[] = {
      ScaledDouble::Zero(),
      ScaledDouble::One(),
      ScaledDouble(0.1) * ScaledDouble(1e300) * ScaledDouble(1e300),
      ScaledDouble(-0.7) / (ScaledDouble(1e308) * ScaledDouble(1e308)),
      ScaledDouble(1.0) - ScaledDouble(1e-17),
      ScaledDouble(-3.14159265358979312),
  };
  for (const ScaledDouble& v : cases) {
    const ScaledDouble back = ScaledDouble::FromRaw(v.mantissa_bits(),
                                                    v.exponent_word());
    EXPECT_EQ(back.mantissa_bits(), v.mantissa_bits());
    EXPECT_EQ(back.exponent_word(), v.exponent_word());
    EXPECT_TRUE(back == v);
  }
}

TEST(IndexIoTest, PipelineGoldenSurvivesRoundTrip) {
  // The 2K-author pipeline hash (pipeline_golden_test) must come out of a
  // save/load cycle unchanged — the strongest whole-image pin we have.
  constexpr uint64_t kPipelineGolden = 5664119462779828691ULL;
  dblp::DblpConfig cfg;
  cfg.num_authors = 2000;
  cfg.include_affiliation = true;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  ASSERT_TRUE(mvdb.ok());
  QueryEngine engine(mvdb->get());
  ASSERT_TRUE(engine.Compile().ok());
  ASSERT_EQ(HashIndex(engine.index()), kPipelineGolden);

  const std::string path = ::testing::TempDir() + "/dblp2k.mvidx";
  ASSERT_TRUE(engine.SaveIndex(path).ok());
  BddManager mgr(engine.manager().order());
  auto owned = MvIndex::Load(path, &mgr);
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(HashIndex(**owned), kPipelineGolden);
  auto mapped = MvIndex::LoadMapped(path, &mgr);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(HashIndex(**mapped), kPipelineGolden);
}

}  // namespace
}  // namespace mvdb
