// Regression for the EnsureChainImported data race (ISSUE 9 satellite):
// on a loaded index the manager-side chain import is lazy, and before the
// fix two serving workers hitting the kObddReuse backend right after
// OpenIndex raced on chain_imported_/not_w_root_ (and on the manager's
// unique table underneath ImportInto). The import is now serialized by a
// mutex; this test hammers it from many threads so the TSan CI job catches
// any regression, and asserts the functional contract — every caller sees
// the same root, and the imported chain answers like the CC sweep.
//
// Also exercises Server::Pause/Resume around a live ApplyDelta: requests
// submitted while a delta applies must complete against a consistent
// snapshot (old or new, never torn), and requests after Resume must see
// the post-delta denominator.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/mvdb.h"
#include "dblp/dblp.h"
#include "mvindex/mv_index.h"
#include "serve/server.h"

namespace mvdb {
namespace {

std::unique_ptr<Mvdb> BuildDblp(int authors) {
  dblp::DblpConfig cfg;
  cfg.num_authors = authors;
  cfg.include_affiliation = true;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  MVDB_CHECK(mvdb.ok());
  return std::move(mvdb).value();
}

TEST(TsanChainImportTest, ConcurrentEnsureChainImportedIsSerialized) {
  const std::string path = ::testing::TempDir() + "/chain_import.mvidx";
  auto mvdb = BuildDblp(150);
  {
    QueryEngine builder(mvdb.get());
    ASSERT_TRUE(builder.SaveIndex(path).ok());
  }
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.OpenIndex(path).ok());
  MvIndex& index = engine.mutable_index();
  ASSERT_FALSE(index.chain_imported());

  constexpr int kThreads = 8;
  std::vector<NodeId> roots(kThreads);
  std::atomic<int> gate{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      // Rendezvous so the first imports genuinely overlap.
      gate.fetch_add(1);
      while (gate.load() < kThreads) {
      }
      roots[static_cast<size_t>(i)] = index.EnsureChainImported();
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_TRUE(index.chain_imported());
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(roots[0], roots[static_cast<size_t>(i)]);
  }

  // The imported chain must be the real NOT-W root: the reuse backend and
  // the CC sweep agree bit for bit on a live query.
  const Ucq q = dblp::StudentsOfAdvisorQuery(
      mvdb.get(), dblp::AuthorName(static_cast<int>(
                      mvdb->db().Find("Advisor")->At(0, 1))));
  auto reuse = engine.Query(q, Backend::kObddReuse);
  auto cc = engine.Query(q, Backend::kMvIndexCC);
  ASSERT_TRUE(reuse.ok() && cc.ok());
  ASSERT_EQ(reuse->size(), cc->size());
  for (size_t i = 0; i < reuse->size(); ++i) {
    EXPECT_NEAR((*reuse)[i].prob, (*cc)[i].prob, 1e-9);
  }
}

TEST(TsanChainImportTest, ApplyDeltaPausesAndResumesLiveServer) {
  auto mvdb = BuildDblp(150);
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());

  ServeOptions sopts;
  sopts.num_threads = 4;
  auto server = engine.Serve(sopts);
  ASSERT_TRUE(server.ok());

  const Table* student = mvdb->db().Find("Student");
  ASSERT_NE(student, nullptr);
  auto row_of = [&](size_t r) {
    std::vector<Value> v;
    for (size_t c = 0; c < student->arity(); ++c) {
      v.push_back(student->At(static_cast<RowId>(r), c));
    }
    return v;
  };
  const Ucq q = dblp::StudentsOfAdvisorQuery(
      mvdb.get(), dblp::AuthorName(static_cast<int>(
                      mvdb->db().Find("Advisor")->At(0, 1))));

  // Interleave serving with weight deltas applied through the pause path.
  // Every future must complete OK (a paused server queues, never sheds on
  // pause alone) and the post-delta serial reference must match a direct
  // engine query — i.e. the refreshed snapshot is consistent.
  std::vector<std::future<ServeResult>> futures;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      futures.push_back((*server)->Submit(ServeRequest{q, /*deadline_ms=*/0}));
    }
    DeltaOp op;
    op.kind = DeltaOp::Kind::kUpdateWeight;
    op.table = "Student";
    op.values = row_of(static_cast<size_t>(round));
    op.weight = 1.0 + 0.5 * static_cast<double>(round);
    ASSERT_TRUE(engine.ApplyDelta({op}, server->get()).ok());
  }
  for (auto& f : futures) {
    const ServeResult r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }

  // After the last Resume, the server's snapshot equals the engine's.
  const ServeResult served = (*server)->Execute(ServeRequest{q, 0});
  ASSERT_TRUE(served.status.ok());
  auto direct = engine.Query(q, Backend::kMvIndexCC);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(served.answers.size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(served.answers[i].prob, (*direct)[i].prob);
  }
  (*server)->Shutdown();
}

}  // namespace
}  // namespace mvdb
