// Unit tests for UCQ evaluation with lineage (the Postgres stand-in).

#include <gtest/gtest.h>

#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::Fig3Database;
using testing_util::MustParse;

TEST(EvalTest, Fig3Lineage) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- R(x), S(x,y).", &db->dict());
  auto lin = EvalBoolean(*db, q);
  ASSERT_TRUE(lin.ok());
  // Phi_Q = X1Y1 v X1Y2 v X2Y3 v X2Y4: 4 clauses of 2 literals each.
  EXPECT_EQ(lin->size(), 4u);
  EXPECT_EQ(lin->NumLiterals(), 8u);
  EXPECT_EQ(lin->NumDistinctVars(), 6u);
}

TEST(EvalTest, NonBooleanAnswers) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q(x) :- R(x), S(x,y).", &db->dict());
  AnswerMap answers;
  ASSERT_TRUE(Eval(*db, q, EvalOptions{}, &answers).ok());
  ASSERT_EQ(answers.size(), 2u);  // x = 1 and x = 2
  const auto& a1 = answers.at({1});
  EXPECT_EQ(a1.lineage.size(), 2u);  // X1Y1 v X1Y2
}

TEST(EvalTest, ConstantsFilter) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- S(1, y).", &db->dict());
  auto lin = EvalBoolean(*db, q);
  ASSERT_TRUE(lin.ok());
  EXPECT_EQ(lin->size(), 2u);  // Y1, Y2
  EXPECT_EQ(lin->NumLiterals(), 2u);
}

TEST(EvalTest, EmptyResultIsFalse) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- S(99, y).", &db->dict());
  auto lin = EvalBoolean(*db, q);
  ASSERT_TRUE(lin.ok());
  EXPECT_TRUE(lin->IsFalse());
}

TEST(EvalTest, DeterministicTablesYieldNoVars) {
  Database db;
  ASSERT_TRUE(db.CreateTable("D", {"a"}, false).ok());
  ASSERT_TRUE(db.CreateTable("P", {"a"}, true).ok());
  db.InsertDeterministic("D", {1});
  db.InsertProbabilistic("P", {1}, 1.0);
  Ucq q = MustParse("Q :- D(x), P(x).", &db.dict());
  auto lin = EvalBoolean(db, q);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->size(), 1u);
  EXPECT_EQ(lin->clauses()[0].size(), 1u);  // only P's variable
}

TEST(EvalTest, PurelyDeterministicTrueLineage) {
  Database db;
  ASSERT_TRUE(db.CreateTable("D", {"a"}, false).ok());
  db.InsertDeterministic("D", {1});
  Ucq q = MustParse("Q :- D(x).", &db.dict());
  auto lin = EvalBoolean(db, q);
  ASSERT_TRUE(lin.ok());
  EXPECT_TRUE(lin->IsTrue());
}

TEST(EvalTest, Comparisons) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q(y) :- S(x,y), y > 12.", &db->dict());
  AnswerMap answers;
  ASSERT_TRUE(Eval(*db, q, EvalOptions{}, &answers).ok());
  EXPECT_EQ(answers.size(), 2u);  // y = 13, 14
}

TEST(EvalTest, NotEqualsJoin) {
  auto db = Fig3Database();
  // Pairs of S-tuples with the same x and different y: self-join.
  Ucq q = MustParse("Q :- S(x,y1), S(x,y2), y1 != y2.", &db->dict());
  auto lin = EvalBoolean(*db, q);
  ASSERT_TRUE(lin.ok());
  // (Y1,Y2), (Y2,Y1), (Y3,Y4), (Y4,Y3) -> normalized to 2 clauses.
  EXPECT_EQ(lin->size(), 2u);
}

TEST(EvalTest, SelfJoinSameTupleDedupes) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- S(x,y), S(x,y).", &db->dict());
  auto lin = EvalBoolean(*db, q);
  ASSERT_TRUE(lin.ok());
  for (const Clause& c : lin->clauses()) {
    EXPECT_EQ(c.size(), 1u);  // both atoms match the same tuple
  }
}

TEST(EvalTest, UnionLineageIsClauseUnion) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- R(x). Q :- S(u,v).", &db->dict());
  auto lin = EvalBoolean(*db, q);
  ASSERT_TRUE(lin.ok());
  EXPECT_EQ(lin->size(), 6u);  // 2 R-tuples + 4 S-tuples
}

TEST(EvalTest, RepeatedVariableInAtom) {
  Database db;
  ASSERT_TRUE(db.CreateTable("E", {"a", "b"}, true).ok());
  db.InsertProbabilistic("E", {1, 1}, 1.0);
  db.InsertProbabilistic("E", {1, 2}, 1.0);
  Ucq q = MustParse("Q(x) :- E(x,x).", &db.dict());
  AnswerMap answers;
  ASSERT_TRUE(Eval(db, q, EvalOptions{}, &answers).ok());
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers.begin()->first[0], 1);
}

TEST(EvalTest, CountDistinct) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q(x) :- R(x), S(x,y).", &db->dict());
  EvalOptions opts;
  // count distinct y per x.
  int y_var = -1;
  for (int i = 0; i < q.num_vars(); ++i) {
    if (q.var_names[static_cast<size_t>(i)] == "y") y_var = i;
  }
  ASSERT_GE(y_var, 0);
  opts.count_var = y_var;
  AnswerMap answers;
  ASSERT_TRUE(Eval(*db, q, opts, &answers).ok());
  EXPECT_EQ(answers.at({1}).count_values.size(), 2u);
  EXPECT_EQ(answers.at({2}).count_values.size(), 2u);
}

TEST(EvalTest, MissingTableError) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- Nope(x).", &db->dict());
  EXPECT_EQ(EvalBoolean(*db, q).status().code(), StatusCode::kNotFound);
}

TEST(EvalTest, ArityMismatchError) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- R(x,y).", &db->dict());
  EXPECT_EQ(EvalBoolean(*db, q).status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalTest, UnboundHeadVariableError) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q(z) :- R(x).", &db->dict());
  AnswerMap answers;
  EXPECT_EQ(Eval(*db, q, EvalOptions{}, &answers).code(),
            StatusCode::kInvalidArgument);
}

TEST(EvalTest, UnboundComparisonVariableError) {
  auto db = Fig3Database();
  Ucq q = MustParse("Q :- R(x), z > 5.", &db->dict());
  EXPECT_EQ(EvalBoolean(*db, q).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mvdb
