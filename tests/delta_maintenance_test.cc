// Differential battery for incremental MV-index maintenance (ISSUE 9).
//
// The non-negotiable invariant: QueryEngine::ApplyDelta over a compiled
// index must leave the engine BIT-IDENTICAL to a from-scratch Compile over
// the identically mutated MVDB — same variable order, same flat chain
// annotations, same block directory, same answer bits — at every compile
// thread count. Weight-only deltas (updates / tombstone deletes) exercise
// the in-place annotation repair (MvIndex::ApplyWeightDelta); inserts
// exercise the structural path (order splice + dirty-block recompile +
// re-stitch, MvIndex::ApplyStructuralDelta). A golden hash pins the
// post-delta index against silent drift, and a Save -> ApplyDelta ->
// PatchFile -> OpenIndex(mapped) round trip proves the persisted image
// follows the in-memory index bit for bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/mvdb.h"
#include "dblp/dblp.h"
#include "mvindex/mv_index.h"
#include "query/eval.h"
#include "relational/database.h"
#include "util/scaled_double.h"

namespace mvdb {
namespace {

void FnvMix(uint64_t v, uint64_t* h) { *h = (*h ^ v) * 1099511628211ULL; }

/// Same digest as pipeline_golden_test / index_io_test: flat topology,
/// block directory, P0(NOT W).
uint64_t HashIndex(const MvIndex& index) {
  uint64_t h = 1469598103934665603ULL;
  const FlatObdd& flat = index.flat();
  FnvMix(static_cast<uint64_t>(static_cast<int64_t>(flat.root())), &h);
  FnvMix(flat.size(), &h);
  for (FlatId u = 0; u < static_cast<FlatId>(flat.size()); ++u) {
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.level(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.lo(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.hi(u))), &h);
  }
  FnvMix(index.blocks().size(), &h);
  for (const MvBlock& b : index.blocks()) {
    for (char c : b.key) FnvMix(static_cast<uint64_t>(c), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.chain_root)), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.first_level)), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.last_level)), &h);
    const double p = b.prob.ToDouble();
    uint64_t bits;
    std::memcpy(&bits, &p, sizeof(bits));
    FnvMix(bits, &h);
  }
  const double not_w = index.ProbNotW();
  uint64_t bits;
  std::memcpy(&bits, &not_w, sizeof(bits));
  FnvMix(bits, &h);
  return h;
}

/// Raw-bits digest of every ScaledDouble annotation — the repair pass must
/// replay the exact build recurrences, so not a single mantissa bit may
/// drift.
uint64_t HashScaledBits(const MvIndex& index) {
  uint64_t h = 1469598103934665603ULL;
  const FlatObdd& flat = index.flat();
  for (size_t i = 0; i < flat.size(); ++i) {
    const ScaledDouble pu = flat.prob_under_data()[i];
    FnvMix(pu.mantissa_bits(), &h);
    FnvMix(static_cast<uint64_t>(pu.exponent_word()), &h);
  }
  for (const MvBlock& b : index.blocks()) {
    FnvMix(b.prob.mantissa_bits(), &h);
    FnvMix(static_cast<uint64_t>(b.prob.exponent_word()), &h);
  }
  return h;
}

uint64_t HashAnswers(const std::vector<std::vector<AnswerProb>>& per_query) {
  uint64_t h = 1469598103934665603ULL;
  FnvMix(per_query.size(), &h);
  for (const auto& answers : per_query) {
    FnvMix(answers.size(), &h);
    for (const AnswerProb& a : answers) {
      for (const Value v : a.head) {
        FnvMix(static_cast<uint64_t>(static_cast<int64_t>(v)), &h);
      }
      uint64_t bits;
      std::memcpy(&bits, &a.prob, sizeof(bits));
      FnvMix(bits, &h);
    }
  }
  return h;
}

std::unique_ptr<Mvdb> BuildDblp(int authors) {
  dblp::DblpConfig cfg;
  cfg.num_authors = authors;
  cfg.include_affiliation = true;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  MVDB_CHECK(mvdb.ok());
  return std::move(mvdb).value();
}

/// The delta workload, phrased as plain values so the identical op list
/// applies to independently built MVDB instances (the generator is
/// deterministic, so both sides hold the same rows and dictionary ids).
struct DeltaWorkload {
  std::vector<DeltaOp> weight_ops;      ///< updates + tombstone deletes
  std::vector<DeltaOp> structural_ops;  ///< base-tuple inserts
};

DeltaOp Op(DeltaOp::Kind kind, const std::string& table,
           std::vector<Value> values, double weight = 1.0) {
  DeltaOp op;
  op.kind = kind;
  op.table = table;
  op.values = std::move(values);
  op.weight = weight;
  return op;
}

/// Deterministic mixed workload over an (untranslated is fine) DBLP MVDB:
/// strided weight moves and tombstones across all three probabilistic
/// relations, then inserts that hit both structural flavors — a brand-new
/// separator value (fresh block) and new tuples under existing separator
/// values (dirty-block recompiles, including new V2 denial heads through
/// the view-maintenance path).
DeltaWorkload BuildWorkload(const Database& db) {
  DeltaWorkload wl;
  const Table* student = db.Find("Student");
  const Table* advisor = db.Find("Advisor");
  const Table* affiliation = db.Find("Affiliation");
  MVDB_CHECK(student != nullptr && student->size() >= 8);
  MVDB_CHECK(advisor != nullptr && advisor->size() >= 8);
  MVDB_CHECK(affiliation != nullptr && affiliation->size() >= 4);

  auto row_of = [](const Table* t, size_t r) {
    std::vector<Value> v;
    for (size_t c = 0; c < t->arity(); ++c) {
      v.push_back(t->At(static_cast<RowId>(r), c));
    }
    return v;
  };

  // Weight moves: three strided Student rows, two Advisor rows, one
  // Affiliation row, with distinct new weights.
  const size_t s_stride = student->size() / 4;
  for (size_t i = 0; i < 3; ++i) {
    wl.weight_ops.push_back(Op(DeltaOp::Kind::kUpdateWeight, "Student",
                               row_of(student, i * s_stride),
                               0.5 + 0.75 * static_cast<double>(i)));
  }
  const size_t a_stride = advisor->size() / 3;
  for (size_t i = 0; i < 2; ++i) {
    wl.weight_ops.push_back(Op(DeltaOp::Kind::kUpdateWeight, "Advisor",
                               row_of(advisor, i * a_stride),
                               3.25 - static_cast<double>(i)));
  }
  wl.weight_ops.push_back(Op(DeltaOp::Kind::kUpdateWeight, "Affiliation",
                             row_of(affiliation, 1), 1.75));
  // Tombstones: delete one Student and one Advisor tuple (weight -> 0; the
  // tuples stay in I_poss, so view weights and W's shape are untouched).
  wl.weight_ops.push_back(
      Op(DeltaOp::Kind::kDelete, "Student", row_of(student, s_stride + 1)));
  wl.weight_ops.push_back(
      Op(DeltaOp::Kind::kDelete, "Advisor", row_of(advisor, a_stride + 1)));

  // Inserts. A Student under an aid no probabilistic relation has seen
  // forces a brand-new separator value; a second advisor for an existing
  // advisee creates new V2 denial heads (weight-0 view tuples, no NV rows)
  // inside existing blocks.
  Value fresh_aid = 0;
  for (size_t r = 0; r < student->size(); ++r) {
    fresh_aid = std::max(fresh_aid, student->At(static_cast<RowId>(r), 0));
  }
  for (size_t r = 0; r < advisor->size(); ++r) {
    fresh_aid = std::max(fresh_aid, advisor->At(static_cast<RowId>(r), 0));
    fresh_aid = std::max(fresh_aid, advisor->At(static_cast<RowId>(r), 1));
  }
  fresh_aid += 1000;
  wl.structural_ops.push_back(
      Op(DeltaOp::Kind::kInsert, "Student", {fresh_aid, 2001}, 0.8));

  const Value advisee = advisor->At(0, 0);
  const Value old_advisor = advisor->At(0, 1);
  Value second_advisor = old_advisor;
  for (size_t r = 0; r < advisor->size() && second_advisor == old_advisor;
       ++r) {
    const Value cand = advisor->At(static_cast<RowId>(r), 1);
    if (cand != old_advisor) second_advisor = cand;
  }
  MVDB_CHECK(second_advisor != old_advisor);
  wl.structural_ops.push_back(Op(DeltaOp::Kind::kInsert, "Advisor",
                                 {advisee, second_advisor}, 1.4));
  // And one more weight move in the same structural batch, so the batch
  // exercises the mixed path (recompile covers the moved weights too).
  wl.structural_ops.push_back(Op(DeltaOp::Kind::kUpdateWeight, "Student",
                                 row_of(student, 2 * s_stride + 1), 2.5));
  return wl;
}

std::vector<Ucq> BuildQueries(Mvdb* mvdb) {
  std::vector<Ucq> queries;
  const Table* advisor = mvdb->db().Find("Advisor");
  MVDB_CHECK(advisor != nullptr && advisor->size() >= 4);
  const size_t stride = advisor->size() / 4;
  for (size_t i = 0; i < 4; ++i) {
    const Value senior = advisor->At(static_cast<RowId>(i * stride), 1);
    queries.push_back(dblp::StudentsOfAdvisorQuery(
        mvdb, dblp::AuthorName(static_cast<int>(senior))));
  }
  const Table* aff = mvdb->db().Find("Affiliation");
  MVDB_CHECK(aff != nullptr && aff->size() >= 2);
  queries.push_back(dblp::AffiliationOfAuthorQuery(
      mvdb, dblp::AuthorName(static_cast<int>(aff->At(0, 0)))));
  return queries;
}

std::vector<std::vector<AnswerProb>> Answers(QueryEngine* engine,
                                             const std::vector<Ucq>& queries) {
  std::vector<std::vector<AnswerProb>> out;
  for (const Ucq& q : queries) {
    auto a = engine->Query(q, Backend::kMvIndexCC);
    MVDB_CHECK(a.ok()) << a.status().ToString();
    out.push_back(std::move(a).value());
  }
  return out;
}

/// Translate exactly the way QueryEngine::Compile(opts) would, so the
/// reference rebuild shares every front-end bit with the incremental side.
void TranslateLikeCompile(Mvdb* mvdb) {
  TranslateOptions topts;
  const CompileOptions copts;
  topts.num_threads = copts.num_threads;
  topts.fused_weights = copts.use_fused_translate;
  MVDB_CHECK(mvdb->Translate(topts).ok());
}

/// From-scratch reference: fresh MVDB, same deltas applied through the same
/// Mvdb maintenance path, then a cold Compile at `num_threads`.
struct Reference {
  std::unique_ptr<Mvdb> mvdb;
  std::unique_ptr<QueryEngine> engine;
};

Reference BuildReference(int authors, const std::vector<DeltaOp>& ops,
                         int num_threads) {
  Reference ref;
  ref.mvdb = BuildDblp(authors);
  TranslateLikeCompile(ref.mvdb.get());
  DeltaEffects effects;
  MVDB_CHECK(ref.mvdb->ApplyBaseDelta(ops, &effects).ok());
  ref.engine = std::make_unique<QueryEngine>(ref.mvdb.get());
  CompileOptions copts;
  copts.num_threads = num_threads;
  MVDB_CHECK(ref.engine->Compile(copts).ok());
  return ref;
}

constexpr int kAuthors = 300;

/// Golden post-delta digests: the full workload (weight batch + structural
/// batch) applied incrementally to the compiled DBLP-300 index. Pins the
/// maintenance output against silent drift; the differential assertions
/// below prove it equals a from-scratch rebuild.
constexpr uint64_t kGoldenIndexHash = 10882744800569622648ULL;
constexpr uint64_t kGoldenAnswerHash = 3048997045620430114ULL;

TEST(DeltaMaintenanceTest, IncrementalEqualsRebuildBitIdentically) {
  auto mvdb = BuildDblp(kAuthors);
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  const DeltaWorkload wl = BuildWorkload(mvdb->db());

  // Weight-only batch: in-place annotation repair.
  ASSERT_TRUE(engine.ApplyDelta(wl.weight_ops).ok());
  {
    Reference ref = BuildReference(kAuthors, wl.weight_ops, 1);
    EXPECT_EQ(HashIndex(engine.index()), HashIndex(ref.engine->index()));
    EXPECT_EQ(HashScaledBits(engine.index()),
              HashScaledBits(ref.engine->index()));
  }

  // Structural batch on top: order splice + dirty-block recompile.
  ASSERT_TRUE(engine.ApplyDelta(wl.structural_ops).ok());

  std::vector<DeltaOp> all_ops = wl.weight_ops;
  all_ops.insert(all_ops.end(), wl.structural_ops.begin(),
                 wl.structural_ops.end());
  const uint64_t index_hash = HashIndex(engine.index());
  const uint64_t scaled_hash = HashScaledBits(engine.index());
  const auto queries = BuildQueries(mvdb.get());
  const uint64_t answer_hash = HashAnswers(Answers(&engine, queries));

  // The incremental result must match a cold rebuild at EVERY thread count
  // (builds are thread-count-invariant; the splice must preserve that).
  for (const int threads : {1, 2, 8, 0}) {
    Reference ref = BuildReference(kAuthors, all_ops, threads);
    EXPECT_EQ(engine.manager().order()->vars(),
              ref.engine->manager().order()->vars())
        << "spliced variable order diverges at num_threads=" << threads;
    EXPECT_EQ(index_hash, HashIndex(ref.engine->index()))
        << "flat chain diverges at num_threads=" << threads;
    EXPECT_EQ(scaled_hash, HashScaledBits(ref.engine->index()))
        << "annotations diverge at num_threads=" << threads;
    EXPECT_EQ(answer_hash, HashAnswers(Answers(ref.engine.get(), queries)))
        << "answer bits diverge at num_threads=" << threads;
  }

  EXPECT_EQ(index_hash, kGoldenIndexHash);
  EXPECT_EQ(answer_hash, kGoldenAnswerHash);
}

TEST(DeltaMaintenanceTest, WeightDeltaSurvivesPatchFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/delta_patch.mvidx";
  auto mvdb = BuildDblp(kAuthors);
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  ASSERT_TRUE(engine.SaveIndex(path).ok());

  const DeltaWorkload wl = BuildWorkload(mvdb->db());
  ASSERT_TRUE(engine.ApplyDelta(wl.weight_ops).ok());
  ASSERT_TRUE(engine.index().PatchFile(path).ok());

  // A second MVDB with the same deltas opens the patched file mapped: the
  // marginal binding gate passes only because the patch moved the level
  // probabilities, and the served image must match the in-memory index bit
  // for bit.
  auto mvdb2 = BuildDblp(kAuthors);
  TranslateLikeCompile(mvdb2.get());
  DeltaEffects effects;
  ASSERT_TRUE(mvdb2->ApplyBaseDelta(wl.weight_ops, &effects).ok());
  QueryEngine loaded(mvdb2.get());
  ASSERT_TRUE(loaded.OpenIndex(path).ok());
  EXPECT_EQ(HashIndex(engine.index()), HashIndex(loaded.index()));
  EXPECT_EQ(HashScaledBits(engine.index()), HashScaledBits(loaded.index()));

  const auto queries = BuildQueries(mvdb.get());
  EXPECT_EQ(HashAnswers(Answers(&engine, queries)),
            HashAnswers(Answers(&loaded, queries)));

  // A STALE database (no deltas applied) must be rejected by the marginal
  // binding gate — the patched file no longer describes it.
  auto mvdb3 = BuildDblp(kAuthors);
  QueryEngine stale(mvdb3.get());
  const Status st = stale.OpenIndex(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(DeltaMaintenanceTest, CrashedPatchIsRejectedUntilRepatched) {
  const std::string path = ::testing::TempDir() + "/delta_crash.mvidx";
  auto mvdb = BuildDblp(120);
  QueryEngine engine(mvdb.get());
  ASSERT_TRUE(engine.Compile().ok());
  ASSERT_TRUE(engine.SaveIndex(path).ok());
  const DeltaWorkload wl = BuildWorkload(mvdb->db());
  ASSERT_TRUE(engine.ApplyDelta(wl.weight_ops).ok());

  BddManager probe(engine.manager().order()->vars());

  // Crash right after the durable dirty mark: payloads are the OLD bits,
  // but the dirty flag makes both loaders refuse — never torn data.
  IndexPatchOptions crash1;
  crash1.crash_after_dirty_mark = true;
  ASSERT_TRUE(engine.index().PatchFile(path, crash1).ok());
  EXPECT_EQ(MvIndex::Load(path, &probe).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(MvIndex::LoadMapped(path, &probe).status().code(),
            StatusCode::kFailedPrecondition);

  // Crash after the payload rewrite but before the clean header: the
  // payloads are complete, yet the file still reads as dirty.
  IndexPatchOptions crash2;
  crash2.crash_after_payload = true;
  ASSERT_TRUE(engine.index().PatchFile(path, crash2).ok());
  EXPECT_EQ(MvIndex::Load(path, &probe).status().code(),
            StatusCode::kFailedPrecondition);

  // Re-running the full patch over the crashed file recovers it, and the
  // recovered image equals the in-memory post-delta index bit for bit.
  ASSERT_TRUE(engine.index().PatchFile(path).ok());
  auto recovered = MvIndex::Load(path, &probe);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(HashIndex(engine.index()), HashIndex(**recovered));
  EXPECT_EQ(HashScaledBits(engine.index()), HashScaledBits(**recovered));
}

}  // namespace
}  // namespace mvdb
