// Tests for the Section 2.5 negation extension: MarkoViews whose bodies
// contain `not R(...)` atoms. The paper's flagship example is the
// "transitively closed" feature:
//
//   MLN:        (R(x,y) ^ R(y,z) => R(x,z), w)   — rewards every grounding
//   MarkoView:  V(x,y,z)[1/w] :- R(x,y), R(y,z), not R(x,z)
//                                                 — penalizes every violation
//
// "the two features are equivalent": both scale Phi identically up to a
// constant factor, hence induce the same distribution. The tests check that
// equivalence end to end, plus the signed-lineage plumbing underneath.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "prob/brute_force.h"
#include "query/eval.h"
#include "test_util.h"

namespace mvdb {
namespace {

using testing_util::MustParse;

TEST(SignedLineageTest, EvalRespectsNegation) {
  Lineage l;  // x0 ^ !x1
  l.AddSignedClause({0}, {1});
  EXPECT_TRUE(l.Eval({true, false}));
  EXPECT_FALSE(l.Eval({true, true}));
  EXPECT_FALSE(l.Eval({false, false}));
}

TEST(SignedLineageTest, ContradictoryClauseDropped) {
  Lineage l;
  l.AddSignedClause({0}, {0});
  EXPECT_TRUE(l.IsFalse());
}

TEST(SignedLineageTest, NormalizeAbsorbsSignedClauses) {
  Lineage l;
  l.AddSignedClause({0}, {1});
  l.AddSignedClause({0, 2}, {1});  // absorbed by the first
  l.AddSignedClause({0}, {1});     // duplicate
  l.Normalize();
  EXPECT_EQ(l.size(), 1u);
  EXPECT_TRUE(l.HasNegation());
}

TEST(SignedLineageTest, VarsIncludeNegated) {
  Lineage l;
  l.AddSignedClause({0}, {3});
  EXPECT_EQ(l.Vars(), (std::vector<VarId>{0, 3}));
  EXPECT_EQ(l.NumLiterals(), 2u);
  EXPECT_EQ(l.ToString(), "x0 !x3");
}

TEST(SignedLineageTest, BruteForceWithNegation) {
  // P(x0 ^ !x1) = p0 (1 - p1)
  Lineage l;
  l.AddSignedClause({0}, {1});
  EXPECT_NEAR(BruteForceProb(l, {0.3, 0.4}), 0.3 * 0.6, 1e-12);
}

TEST(SignedLineageTest, ObddFromSignedClause) {
  std::vector<VarId> order = {0, 1, 2};
  BddManager mgr(order);
  Lineage l;
  l.AddSignedClause({0}, {1});
  l.AddSignedClause({2}, {});
  const NodeId f = mgr.FromLineageSynthesis(l);
  const std::vector<double> probs = {0.3, 0.4, 0.5};
  EXPECT_NEAR(mgr.Prob(f, probs), BruteForceProb(l, probs), 1e-12);
}

TEST(NegationParserTest, ParsesNotAtoms) {
  Interner dict;
  auto q = ParseUcq("V(x,y,z) :- R(x,y), R(y,z), not R(x,z).", &dict);
  ASSERT_TRUE(q.ok());
  const auto& atoms = q->disjuncts[0].atoms;
  ASSERT_EQ(atoms.size(), 3u);
  EXPECT_FALSE(atoms[0].negated);
  EXPECT_FALSE(atoms[1].negated);
  EXPECT_TRUE(atoms[2].negated);
  EXPECT_NE(ToString(*q).find("not R"), std::string::npos);
}

TEST(NegationParserTest, NotAsRelationNameStillWorks) {
  // 'not' followed by a comparison is a variable named "not"? We keep it
  // simple: 'not' only negates when followed by IDENT '('.
  Interner dict;
  auto q = ParseUcq("Q(x) :- R(x, not), not > 5.", &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->disjuncts[0].comparisons.size(), 1u);
}

TEST(NegationEvalTest, NegatedProbAtomYieldsNegLiteral) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a", "b"}, true).ok());
  db.InsertProbabilistic("R", {1, 2}, 1.0);  // var 0
  db.InsertProbabilistic("R", {2, 3}, 1.0);  // var 1
  db.InsertProbabilistic("R", {1, 3}, 1.0);  // var 2
  Ucq q = MustParse("Q :- R(x,y), R(y,z), not R(x,z).", &db.dict());
  auto lin = EvalBoolean(db, q);
  ASSERT_TRUE(lin.ok());
  // Derivation x=1,y=2,z=3: R(1,2) ^ R(2,3) ^ !R(1,3). (Degenerate cycles
  // like x=y are absent in this data.)
  ASSERT_EQ(lin->size(), 1u);
  EXPECT_TRUE(lin->HasNegation());
  EXPECT_NEAR(BruteForceProb(*lin, db.VarProbs()), 0.5 * 0.5 * 0.5, 1e-12);
}

TEST(NegationEvalTest, MissingNegatedTupleIsVacuous) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a", "b"}, true).ok());
  db.InsertProbabilistic("R", {1, 2}, 1.0);
  db.InsertProbabilistic("R", {2, 3}, 1.0);
  // R(1,3) is not even possible: "not R(1,3)" always holds.
  Ucq q = MustParse("Q :- R(x,y), R(y,z), not R(x,z).", &db.dict());
  auto lin = EvalBoolean(db, q);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->size(), 1u);
  EXPECT_FALSE(lin->HasNegation());  // pure positive clause
}

TEST(NegationEvalTest, NegatedDeterministicAtomFilters) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
  ASSERT_TRUE(db.CreateTable("Blocked", {"a"}, false).ok());
  db.InsertProbabilistic("R", {1}, 1.0);
  db.InsertProbabilistic("R", {2}, 1.0);
  db.InsertDeterministic("Blocked", {1});
  Ucq q = MustParse("Q(x) :- R(x), not Blocked(x).", &db.dict());
  AnswerMap answers;
  ASSERT_TRUE(Eval(db, q, EvalOptions{}, &answers).ok());
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers.begin()->first[0], 2);
}

TEST(NegationEvalTest, UnsafeNegationRejected) {
  Database db;
  ASSERT_TRUE(db.CreateTable("R", {"a"}, true).ok());
  ASSERT_TRUE(db.CreateTable("S", {"a"}, true).ok());
  db.InsertProbabilistic("R", {1}, 1.0);
  Ucq q = MustParse("Q :- R(x), not S(y).", &db.dict());
  EXPECT_EQ(EvalBoolean(db, q).status().code(), StatusCode::kInvalidArgument);
}

/// The Section 2.5 equivalence, end to end: an MLN with implication
/// features (R(x,y) ^ R(y,z) => R(x,z), w) vs an MVDB with the negated
/// penalty view V(x,y,z)[1/w].
TEST(NegationEndToEnd, TransitiveClosureFeatureEquivalence) {
  const double w = 4.0;
  // Possible edges over nodes {1,2,3}: a small graph.
  const std::vector<std::pair<Value, Value>> edges = {
      {1, 2}, {2, 3}, {1, 3}, {3, 1}};

  // --- MVDB with the penalty view -------------------------------------
  Mvdb mvdb;
  Database& db = mvdb.db();
  MVDB_CHECK(db.CreateTable("R", {"x", "y"}, true).ok());
  for (const auto& [a, b] : edges) db.InsertProbabilistic("R", {a, b}, 1.0);
  Ucq def = MustParse("V(x,y,z) :- R(x,y), R(y,z), not R(x,z).", &db.dict());
  ASSERT_TRUE(
      mvdb.AddView(MarkoView::Constant("V", std::move(def), 1.0 / w)).ok());
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());

  // --- Reference MLN with implication features ------------------------
  // One feature per grounding (x,y,z) over possible edges: the implication
  // !Rxy v !Ryz v Rxz as a signed DNF, weight w.
  GroundMln ref(edges.size(), std::vector<double>(edges.size(), 1.0));
  auto edge_var = [&](Value a, Value b) -> VarId {
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].first == a && edges[i].second == b) {
        return static_cast<VarId>(i);
      }
    }
    return kNoVar;
  };
  for (const auto& [x, y1] : edges) {
    for (const auto& [y2, z] : edges) {
      if (y1 != y2) continue;
      const VarId rxy = edge_var(x, y1);
      const VarId ryz = edge_var(y1, z);
      if (rxy == ryz) continue;  // degenerate self-grounding
      Lineage implication;
      implication.AddSignedClause({}, {rxy});
      implication.AddSignedClause({}, {ryz});
      const VarId rxz = edge_var(x, z);
      if (rxz != kNoVar) {
        implication.AddSignedClause({rxz}, {});
      }
      ref.AddFeature(std::move(implication), w);
    }
  }

  // Both semantics agree on every edge marginal and on path queries.
  for (size_t i = 0; i < edges.size(); ++i) {
    Lineage edge;
    edge.AddClause({static_cast<VarId>(i)});
    auto expected = ref.ExactQueryProb(edge);
    ASSERT_TRUE(expected.ok());
    char text[64];
    std::snprintf(text, sizeof(text), "Q :- R(%lld,%lld).",
                  static_cast<long long>(edges[i].first),
                  static_cast<long long>(edges[i].second));
    Ucq q = MustParse(text, &mvdb.db().dict());
    auto p = engine.QueryBoolean(q);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_NEAR(*p, *expected, 1e-9) << text;
  }
  // Transitivity is rewarded *conditionally*: given the premises R(1,2) and
  // R(2,3), the conclusion R(1,3) becomes more likely than its
  // unconditional marginal. (The marginal itself can drop below the prior:
  // R(1,3) is also a premise of other penalized groundings.)
  Ucq q13 = MustParse("Q :- R(1,3).", &mvdb.db().dict());
  Ucq premises = MustParse("Q :- R(1,2), R(2,3).", &mvdb.db().dict());
  Ucq joint = MustParse("Q :- R(1,3), R(1,2), R(2,3).", &mvdb.db().dict());
  const double p13 = std::move(engine.QueryBoolean(q13)).value();
  const double p_premises = std::move(engine.QueryBoolean(premises)).value();
  const double p_joint = std::move(engine.QueryBoolean(joint)).value();
  EXPECT_GT(p_joint / p_premises, p13);
}

TEST(NegationEndToEnd, MlnBruteForceMatchesEngineOnNegatedView) {
  // Theorem 1 holds verbatim for negated views: the feature is still a
  // Boolean formula, the translation machinery is untouched.
  Mvdb mvdb;
  Database& db = mvdb.db();
  MVDB_CHECK(db.CreateTable("R", {"x", "y"}, true).ok());
  Rng rng(41);
  for (Value a = 1; a <= 3; ++a) {
    for (Value b = 1; b <= 3; ++b) {
      if (a != b && rng.Chance(0.8)) {
        db.InsertProbabilistic("R", {a, b}, 0.5 + rng.Uniform());
      }
    }
  }
  Ucq def = MustParse("V(x,y,z) :- R(x,y), R(y,z), not R(x,z).", &db.dict());
  ASSERT_TRUE(mvdb.AddView(MarkoView::Constant("V", std::move(def), 0.3)).ok());
  QueryEngine engine(&mvdb);
  ASSERT_TRUE(engine.Compile().ok());
  auto mln = mvdb.ToGroundMln();
  ASSERT_TRUE(mln.ok());
  for (const char* qs : {"Q :- R(1,2).", "Q :- R(x,y), R(y,x).", "Q :- R(x,3)."}) {
    Ucq q = MustParse(qs, &mvdb.db().dict());
    const Lineage lin = *EvalBoolean(mvdb.db(), q);
    if (lin.IsFalse()) continue;
    auto exact = mln->ExactQueryProb(lin);
    ASSERT_TRUE(exact.ok());
    for (Backend b : {Backend::kBruteForce, Backend::kObddReuse,
                      Backend::kMvIndex, Backend::kMvIndexCC}) {
      auto p = engine.QueryBoolean(q, b);
      ASSERT_TRUE(p.ok()) << qs << ": " << p.status().ToString();
      EXPECT_NEAR(*p, *exact, 1e-9) << qs << " backend " << static_cast<int>(b);
    }
  }
}

}  // namespace
}  // namespace mvdb
