// Property tests for the open-addressed OBDD node store (util/flat_hash.h +
// BddManager): the flat unique table must hash-cons exactly like the old
// chaining map — same node for the same (level, lo, hi) triple, no
// duplicates, stable across grow-and-rehash and reserve hints — and the
// lossy direct-mapped op cache must never affect *what* is computed, only
// how often (an evicted entry recomputes to the identical node id).

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "obdd/manager.h"
#include "util/flat_hash.h"
#include "util/rng.h"

namespace mvdb {
namespace {

/// A random Apply/Not workload over `num_vars` variables. Every operation's
/// result id is appended to `trace`, so two managers fed the same script
/// can be compared id-for-id.
void RunWorkload(BddManager* mgr, uint64_t seed, int num_vars, int num_ops,
                 std::vector<NodeId>* trace) {
  Rng rng(seed);
  std::vector<NodeId> pool;
  for (VarId v = 0; v < num_vars; ++v) pool.push_back(mgr->MkVar(v));
  for (int i = 0; i < num_ops; ++i) {
    const NodeId f = pool[rng.Below(pool.size())];
    const NodeId g = pool[rng.Below(pool.size())];
    NodeId r;
    switch (rng.Below(4)) {
      case 0: r = mgr->And(f, g); break;
      case 1: r = mgr->Or(f, g); break;
      case 2: r = mgr->Not(f); break;
      default: {
        Clause pos, neg;
        for (VarId v = 0; v < num_vars; ++v) {
          const uint64_t roll = rng.Below(6);
          if (roll == 0) pos.push_back(v);
          if (roll == 1) neg.push_back(v);
        }
        r = mgr->FromSignedClause(pos, neg);
        break;
      }
    }
    trace->push_back(r);
    pool.push_back(r);
    if (pool.size() > 64) pool.erase(pool.begin());
  }
}

std::vector<VarId> Identity(int num_vars) {
  std::vector<VarId> order;
  for (VarId v = 0; v < num_vars; ++v) order.push_back(v);
  return order;
}

/// The old map's defining property: every internal node's triple is unique
/// and reduced. Scans the whole node table.
void ExpectCanonicalNodeTable(const BddManager& mgr) {
  std::set<std::tuple<int32_t, NodeId, NodeId>> seen;
  const NodeId end = static_cast<NodeId>(mgr.num_created()) + 2;
  for (NodeId id = 2; id < end; ++id) {
    const BddNode& n = mgr.node(id);
    EXPECT_NE(n.lo, n.hi) << "redundant node " << id;
    EXPECT_LT(n.level, mgr.node(n.lo).level) << "unordered node " << id;
    EXPECT_LT(n.level, mgr.node(n.hi).level) << "unordered node " << id;
    EXPECT_TRUE(seen.insert({n.level, n.lo, n.hi}).second)
        << "duplicate triple at node " << id;
  }
}

TEST(UniqueTableTest, RandomWorkloadsHashConsCanonically) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    BddManager mgr(Identity(12));
    std::vector<NodeId> trace;
    RunWorkload(&mgr, 1000 + seed, 12, 400, &trace);
    ExpectCanonicalNodeTable(mgr);
  }
}

TEST(UniqueTableTest, ReserveHintsDoNotChangeNodeIds) {
  // Same op script against three growth regimes: organic growth from the
  // 16-slot minimum (many rehashes), a generous up-front reservation (no
  // rehash), and an absurdly small hint. The old chaining map allocated
  // node ids purely in creation order; the flat table must do the same, so
  // all three managers agree id-for-id.
  std::vector<NodeId> organic_trace, reserved_trace, tiny_trace;
  BddManager organic(Identity(14));
  RunWorkload(&organic, 99, 14, 800, &organic_trace);

  BddManager reserved(Identity(14));
  reserved.ReserveNodes(1 << 16);
  reserved.ReserveCaches(1 << 16);
  RunWorkload(&reserved, 99, 14, 800, &reserved_trace);

  BddManager tiny(Identity(14));
  tiny.ReserveNodes(4);
  RunWorkload(&tiny, 99, 14, 800, &tiny_trace);

  EXPECT_EQ(organic_trace, reserved_trace);
  EXPECT_EQ(organic_trace, tiny_trace);
  ASSERT_EQ(organic.num_created(), reserved.num_created());
  ASSERT_EQ(organic.num_created(), tiny.num_created());
  const NodeId end = static_cast<NodeId>(organic.num_created()) + 2;
  for (NodeId id = 2; id < end; ++id) {
    const BddNode& a = organic.node(id);
    const BddNode& b = reserved.node(id);
    ASSERT_TRUE(a.level == b.level && a.lo == b.lo && a.hi == b.hi)
        << "node " << id;
  }
}

TEST(UniqueTableTest, GrowAndRehashKeepsEveryNodeFindable) {
  // Drive the table through multiple rehash generations, then re-request
  // every interned triple: each must come back as the original id, and no
  // new node may be created.
  BddManager mgr(Identity(18));
  std::vector<NodeId> trace;
  RunWorkload(&mgr, 7, 18, 3000, &trace);
  const size_t created = mgr.num_created();
  const NodeId end = static_cast<NodeId>(created) + 2;
  for (NodeId id = 2; id < end; ++id) {
    const BddNode n = mgr.node(id);  // copy: Mk may touch the vector
    EXPECT_EQ(mgr.Mk(n.level, n.lo, n.hi), id);
  }
  EXPECT_EQ(mgr.num_created(), created);
}

TEST(DirectMappedCacheTest, EvictionNeverChangesResults) {
  // The op cache is direct-mapped and lossy: a long workload evicts most
  // early entries. Re-issuing the recorded operations must return the
  // identical node ids (hash-consing canonicity), and — because every
  // intermediate node already exists — must not create a single new node.
  BddManager mgr(Identity(12));
  Rng rng(1234);
  std::vector<NodeId> vars;
  for (VarId v = 0; v < 12; ++v) vars.push_back(mgr.MkVar(v));
  struct Op {
    int kind;  // 0 = And, 1 = Or, 2 = Not
    NodeId f, g, result;
  };
  std::vector<Op> ops;
  std::vector<NodeId> pool = vars;
  for (int i = 0; i < 5000; ++i) {
    const NodeId f = pool[rng.Below(pool.size())];
    const NodeId g = pool[rng.Below(pool.size())];
    const int kind = static_cast<int>(rng.Below(3));
    const NodeId r = kind == 0   ? mgr.And(f, g)
                     : kind == 1 ? mgr.Or(f, g)
                                 : mgr.Not(f);
    ops.push_back(Op{kind, f, g, r});
    pool.push_back(r);
    if (pool.size() > 48) pool.erase(pool.begin());
  }
  const size_t created = mgr.num_created();
  for (const Op& op : ops) {
    const NodeId again = op.kind == 0   ? mgr.And(op.f, op.g)
                         : op.kind == 1 ? mgr.Or(op.f, op.g)
                                        : mgr.Not(op.f);
    ASSERT_EQ(again, op.result);
  }
  EXPECT_EQ(mgr.num_created(), created);
}

TEST(DirectMappedCacheTest, StandaloneLookupInsertOverwrite) {
  DirectMappedCache cache;
  int32_t out = -1;
  EXPECT_FALSE(cache.Lookup(42, &out));
  cache.Insert(42, 7);
  ASSERT_TRUE(cache.Lookup(42, &out));
  EXPECT_EQ(out, 7);
  // A colliding key (same slot, different key) evicts; the old key misses
  // and the new one hits. Any key differing by a multiple of the table size
  // in mixed space collides; brute-force one.
  cache.Insert(42, 9);  // same-key overwrite
  ASSERT_TRUE(cache.Lookup(42, &out));
  EXPECT_EQ(out, 9);
}

TEST(ClearOpCachesTest, ShrinksCapacityAndReportsFreedBytes) {
  BddManager mgr(Identity(10));
  const size_t resting = mgr.MemoryBytes();
  mgr.ReserveCaches(size_t{1} << 18);
  EXPECT_GT(mgr.MemoryBytes(), resting);

  const NodeId a = mgr.MkVar(0);
  const NodeId b = mgr.MkVar(1);
  const NodeId conj = mgr.And(a, b);
  const NodeId neg = mgr.Not(conj);

  const size_t freed = mgr.ClearOpCaches();
  EXPECT_GT(freed, 0u);  // the grown cache really returned its memory
  EXPECT_EQ(mgr.cache_bytes_freed(), freed);
  // Memo gone, unique table intact: recomputation yields identical nodes.
  EXPECT_EQ(mgr.And(a, b), conj);
  EXPECT_EQ(mgr.Not(conj), neg);
  // A second clear at the default footprint frees nothing further.
  EXPECT_EQ(mgr.ClearOpCaches(), 0u);
  EXPECT_EQ(mgr.cache_bytes_freed(), freed);
}

TEST(FlatIdTableTest, FindOrInsertAndRehash) {
  // Standalone exercise of the probing/rehash paths with external keys.
  std::vector<uint64_t> keys;
  FlatIdTable table;
  auto hash_of = [&keys](uint32_t id) { return Mix64(keys[id]); };
  auto matches_key = [&keys](uint64_t key) {
    return [&keys, key](uint32_t id) { return keys[id] == key; };
  };
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    // Adversarially clustered keys: low entropy in the low bits.
    const uint64_t key = rng.Below(2000) << 7;
    const uint32_t fresh = static_cast<uint32_t>(keys.size());
    const uint32_t got =
        table.FindOrInsert(Mix64(key), fresh, matches_key(key), hash_of);
    if (got == fresh) keys.push_back(key);
    EXPECT_EQ(keys[got], key);
    EXPECT_EQ(table.Find(Mix64(key), matches_key(key)), got);
  }
  EXPECT_EQ(table.size(), keys.size());
  EXPECT_LE(table.size() * 4, table.capacity() * 3);  // load cap held
  // Every key stays findable after all the rehashes.
  for (uint32_t id = 0; id < keys.size(); ++id) {
    EXPECT_EQ(table.Find(Mix64(keys[id]), matches_key(keys[id])), id);
  }
  const size_t size_before = table.size();
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(Mix64(keys[0]), matches_key(keys[0])),
            FlatIdTable::kEmpty);
  EXPECT_GT(size_before, 0u);
}

}  // namespace
}  // namespace mvdb
