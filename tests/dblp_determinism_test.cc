// Determinism of the parallel DBLP generator: the plan/emit pipeline draws
// every random decision from per-entity RNG streams, so the generated MVDB
// must be *bit-identical* for any DblpConfig::num_threads. A golden hash
// additionally pins the default-config dataset, so a refactor that silently
// shifts the workload (different draws, different emission order) fails
// loudly instead of skewing every benchmark built on the generator.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>

#include "core/mvdb.h"
#include "dblp/dblp.h"
#include "relational/database.h"

namespace mvdb {
namespace {

void FnvMix(uint64_t v, uint64_t* h) {
  *h = (*h ^ v) * 1099511628211ULL;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// FNV-1a over everything the generator emits: every table's rows in
/// insertion order, per-tuple weights and variable ids, and the global
/// variable-weight registry. Bit-identical databases — and only those —
/// hash equal.
uint64_t HashDatabase(const Database& db) {
  uint64_t h = 1469598103934665603ULL;
  for (const std::string& name : db.table_names()) {
    const Table* t = db.Find(name);
    for (char c : name) FnvMix(static_cast<uint64_t>(c), &h);
    FnvMix(t->arity(), &h);
    FnvMix(t->size(), &h);
    for (RowId r = 0; r < t->size(); ++r) {
      for (Value v : t->Row(r)) FnvMix(static_cast<uint64_t>(v), &h);
      if (t->probabilistic()) {
        FnvMix(DoubleBits(t->weight(r)), &h);
        FnvMix(static_cast<uint64_t>(t->var(r)), &h);
      }
    }
  }
  FnvMix(db.num_vars(), &h);
  for (size_t v = 0; v < db.num_vars(); ++v) {
    FnvMix(DoubleBits(db.var_weight(static_cast<VarId>(v))), &h);
  }
  return h;
}

dblp::DblpConfig MidConfig(int threads) {
  dblp::DblpConfig cfg;
  cfg.num_authors = 400;
  cfg.include_affiliation = true;
  cfg.num_threads = threads;
  return cfg;
}

TEST(DblpDeterminismTest, ThreadCountsAreBitIdentical) {
  dblp::DblpStats s1, s2, s8;
  auto m1 = dblp::BuildDblpMvdb(MidConfig(1), &s1);
  auto m2 = dblp::BuildDblpMvdb(MidConfig(2), &s2);
  auto m8 = dblp::BuildDblpMvdb(MidConfig(8), &s8);
  ASSERT_TRUE(m1.ok() && m2.ok() && m8.ok());

  // Row-level comparison for 1 vs 2 (pinpoints the first divergence)...
  const Database& d1 = (*m1)->db();
  const Database& d2 = (*m2)->db();
  ASSERT_EQ(d1.table_names(), d2.table_names());
  for (const std::string& name : d1.table_names()) {
    const Table* t1 = d1.Find(name);
    const Table* t2 = d2.Find(name);
    ASSERT_EQ(t1->size(), t2->size()) << name;
    for (RowId r = 0; r < t1->size(); ++r) {
      for (size_t c = 0; c < t1->arity(); ++c) {
        ASSERT_EQ(t1->At(r, c), t2->At(r, c)) << name << " row " << r;
      }
      ASSERT_EQ(t1->weight(r), t2->weight(r)) << name << " row " << r;
      ASSERT_EQ(t1->var(r), t2->var(r)) << name << " row " << r;
    }
  }
  // ... and the full-fidelity hash for all three thread counts.
  const uint64_t h1 = HashDatabase(d1);
  EXPECT_EQ(h1, HashDatabase(d2));
  EXPECT_EQ(h1, HashDatabase((*m8)->db()));

  EXPECT_EQ(s1.pubs, s8.pubs);
  EXPECT_EQ(s1.wrote, s8.wrote);
  EXPECT_EQ(s1.advisor, s8.advisor);
  EXPECT_EQ(s1.affiliation, s8.affiliation);
}

TEST(DblpDeterminismTest, HardwareThreadsOptionIsBitIdentical) {
  // num_threads <= 0 resolves to hardware concurrency — still pinned.
  auto serial = dblp::BuildDblpMvdb(MidConfig(1), nullptr);
  auto hw = dblp::BuildDblpMvdb(MidConfig(0), nullptr);
  ASSERT_TRUE(serial.ok() && hw.ok());
  EXPECT_EQ(HashDatabase((*serial)->db()), HashDatabase((*hw)->db()));
}

TEST(DblpDeterminismTest, GoldenHashPinsDefaultConfigDataset) {
  // Default config: 1000 authors, affiliation machinery on, seed 7. If an
  // intentional generator change moves this value, re-pin it *and* expect
  // every DBLP-derived benchmark number to shift with it.
  auto mvdb = dblp::BuildDblpMvdb(dblp::DblpConfig{}, nullptr);
  ASSERT_TRUE(mvdb.ok());
  EXPECT_EQ(HashDatabase((*mvdb)->db()), 11514991765092611145ULL);
}

TEST(DblpDeterminismTest, TranslationOnTopStaysDeterministic) {
  // The downstream consumer: translated views over a threads=8 build match
  // the serial build tuple-for-tuple (weights included).
  auto a = dblp::BuildDblpMvdb(MidConfig(1), nullptr);
  auto b = dblp::BuildDblpMvdb(MidConfig(8), nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Translate().ok());
  ASSERT_TRUE((*b)->Translate().ok());
  EXPECT_EQ(HashDatabase((*a)->db()), HashDatabase((*b)->db()));
  ASSERT_EQ((*a)->view_tuples().size(), (*b)->view_tuples().size());
  for (size_t i = 0; i < (*a)->view_tuples().size(); ++i) {
    ASSERT_EQ((*a)->view_tuples()[i].size(), (*b)->view_tuples()[i].size());
    for (size_t j = 0; j < (*a)->view_tuples()[i].size(); ++j) {
      EXPECT_EQ((*a)->view_tuples()[i][j].weight,
                (*b)->view_tuples()[i][j].weight);
    }
  }
}

}  // namespace
}  // namespace mvdb
