// Tests for the ground-MLN engine: exact semantics (Definitions 1/4),
// MC-SAT and Gibbs convergence on small networks.

#include <gtest/gtest.h>

#include <cmath>

#include "mln/mln.h"

namespace mvdb {
namespace {

Lineage Single(VarId v) {
  Lineage l;
  l.AddClause({v});
  return l;
}

Lineage Conj(std::initializer_list<VarId> vars) {
  Lineage l;
  l.AddClause(Clause(vars));
  return l;
}

TEST(GroundMlnTest, TupleIndependentSpecialCase) {
  // Section 2.3's "Tuple-Independent Databases Revisited": two tuples with
  // weights w1, w2 and no features yield Z = (1+w1)(1+w2) and marginal
  // probabilities w/(1+w).
  GroundMln mln(2, {2.0, 0.5});
  EXPECT_NEAR(mln.ExactPartition(), 3.0 * 1.5, 1e-12);
  auto p0 = mln.ExactQueryProb(Single(0));
  ASSERT_TRUE(p0.ok());
  EXPECT_NEAR(*p0, 2.0 / 3.0, 1e-12);
  auto p1 = mln.ExactQueryProb(Single(1));
  EXPECT_NEAR(*p1, 0.5 / 1.5, 1e-12);
}

TEST(GroundMlnTest, Example1Worlds) {
  // Example 1: R(a), S(a) with weights w1, w2 and feature (R ^ S, w).
  // Worlds have weights 1, w1, w2, w w1 w2.
  const double w1 = 2.0, w2 = 3.0, w = 0.25;
  GroundMln mln(2, {w1, w2});
  mln.AddFeature(Conj({0, 1}), w);
  EXPECT_NEAR(mln.ExactPartition(), 1 + w1 + w2 + w * w1 * w2, 1e-12);
  auto p = mln.ExactQueryProb(Conj({0, 1}));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, w * w1 * w2 / (1 + w1 + w2 + w * w1 * w2), 1e-12);
}

TEST(GroundMlnTest, WeightOneFeatureIsIndependence) {
  GroundMln with(2, {2.0, 3.0});
  with.AddFeature(Conj({0, 1}), 1.0);
  GroundMln without(2, {2.0, 3.0});
  auto a = with.ExactQueryProb(Single(0));
  auto b = without.ExactQueryProb(Single(0));
  EXPECT_NEAR(*a, *b, 1e-12);
}

TEST(GroundMlnTest, ZeroWeightFeatureIsExclusion) {
  // w = 0 makes R(a) ^ S(a) impossible: exclusive events.
  GroundMln mln(2, {1.0, 1.0});
  mln.AddFeature(Conj({0, 1}), 0.0);
  auto p = mln.ExactQueryProb(Conj({0, 1}));
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
  // Marginals renormalize: P(R) = w1(1+0... worlds: {},{R},{S}: weights
  // 1,1,1 -> P(R) = 1/3.
  auto pr = mln.ExactQueryProb(Single(0));
  EXPECT_NEAR(*pr, 1.0 / 3.0, 1e-12);
}

TEST(GroundMlnTest, HardTupleWeights) {
  GroundMln mln(2, {kCertainWeight, 0.0});
  auto p0 = mln.ExactQueryProb(Single(0));
  EXPECT_DOUBLE_EQ(*p0, 1.0);
  auto p1 = mln.ExactQueryProb(Single(1));
  EXPECT_DOUBLE_EQ(*p1, 0.0);
}

TEST(GroundMlnTest, InfiniteFeatureForcesSatisfaction) {
  // Hard feature (R ^ S) with weight infinity: only worlds containing both
  // survive.
  GroundMln mln(2, {1.0, 1.0});
  mln.AddFeature(Conj({0, 1}), kCertainWeight);
  auto p = mln.ExactQueryProb(Single(0));
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);
}

TEST(GroundMlnTest, ContradictoryHardConstraints) {
  GroundMln mln(1, {kCertainWeight});
  mln.AddFeature(Single(0), 0.0);  // var must be 1 and formula must not hold
  EXPECT_EQ(mln.ExactQueryProb(Single(0)).status().code(),
            StatusCode::kInternal);
}

TEST(McSatTest, MatchesExactOnSoftNetwork) {
  GroundMln mln(3, {2.0, 0.5, 1.0});
  mln.AddFeature(Conj({0, 1}), 3.0);
  mln.AddFeature(Conj({1, 2}), 0.3);
  SamplerOptions opts;
  opts.num_samples = 20000;
  opts.burn_in = 500;
  McSat sampler(mln, opts);
  for (VarId v = 0; v < 3; ++v) {
    auto exact = mln.ExactQueryProb(Single(v));
    auto est = sampler.EstimateQueryProb(Single(v));
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(*est, *exact, 0.05) << "var " << v;
  }
}

TEST(McSatTest, RespectsHardDenial) {
  GroundMln mln(2, {2.0, 2.0});
  mln.AddFeature(Conj({0, 1}), 0.0);
  SamplerOptions opts;
  opts.num_samples = 8000;
  McSat sampler(mln, opts);
  auto joint = sampler.EstimateQueryProb(Conj({0, 1}));
  ASSERT_TRUE(joint.ok());
  EXPECT_DOUBLE_EQ(*joint, 0.0);
  auto exact = mln.ExactQueryProb(Single(0));
  auto est = sampler.EstimateQueryProb(Single(0));
  EXPECT_NEAR(*est, *exact, 0.05);
}

TEST(McSatTest, RespectsHardRequirement) {
  GroundMln mln(2, {1.0, 1.0});
  mln.AddFeature(Conj({0, 1}), kCertainWeight);
  SamplerOptions opts;
  opts.num_samples = 2000;
  McSat sampler(mln, opts);
  auto est = sampler.EstimateQueryProb(Conj({0, 1}));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 1.0);
}

TEST(McSatTest, MarginalsVector) {
  GroundMln mln(2, {3.0, 1.0 / 3.0});
  SamplerOptions opts;
  opts.num_samples = 20000;
  McSat sampler(mln, opts);
  auto marginals = sampler.EstimateMarginals();
  ASSERT_TRUE(marginals.ok());
  EXPECT_NEAR((*marginals)[0], 0.75, 0.05);
  EXPECT_NEAR((*marginals)[1], 0.25, 0.05);
}

TEST(GibbsTest, MatchesExactOnSoftNetwork) {
  GroundMln mln(3, {2.0, 0.5, 1.5});
  mln.AddFeature(Conj({0, 1}), 2.0);
  mln.AddFeature(Conj({0, 2}), 0.5);
  SamplerOptions opts;
  opts.num_samples = 20000;
  opts.burn_in = 1000;
  GibbsSampler sampler(mln, opts);
  for (VarId v = 0; v < 3; ++v) {
    auto exact = mln.ExactQueryProb(Single(v));
    auto est = sampler.EstimateQueryProb(Single(v));
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(*est, *exact, 0.05) << "var " << v;
  }
}

TEST(GibbsTest, RejectsHardConstraints) {
  GroundMln mln(2, {1.0, 1.0});
  mln.AddFeature(Conj({0, 1}), 0.0);
  SamplerOptions opts;
  GibbsSampler sampler(mln, opts);
  EXPECT_EQ(sampler.EstimateQueryProb(Single(0)).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mvdb
