// End-to-end golden test for the offline pipeline: a 2K-author DBLP build
// (generate -> translate -> order -> partition -> compile -> stitch ->
// import) pins an FNV hash of the compiled flat MV-index — node-by-node
// topology, block layout, and the extended-range P0(NOT W) — so any
// front-end refactor that silently changes the output fails tier-1 instead
// of skewing every benchmark. The same hash must come out of every thread
// count: the whole pipeline is required to be bit-identical under
// parallelism.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/engine.h"
#include "dblp/dblp.h"

namespace mvdb {
namespace {

void FnvMix(uint64_t v, uint64_t* h) { *h = (*h ^ v) * 1099511628211ULL; }

/// Hashes the full compiled index: flat topology (levels, edges, root),
/// per-block metadata (chain roots, level ranges, probability bits), and
/// P0(NOT W).
uint64_t HashIndex(const MvIndex& index) {
  uint64_t h = 1469598103934665603ULL;
  const FlatObdd& flat = index.flat();
  FnvMix(static_cast<uint64_t>(static_cast<int64_t>(flat.root())), &h);
  FnvMix(flat.size(), &h);
  for (FlatId u = 0; u < static_cast<FlatId>(flat.size()); ++u) {
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.level(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.lo(u))), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(flat.hi(u))), &h);
  }
  FnvMix(index.blocks().size(), &h);
  for (const MvBlock& b : index.blocks()) {
    for (char c : b.key) FnvMix(static_cast<uint64_t>(c), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.chain_root)), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.first_level)), &h);
    FnvMix(static_cast<uint64_t>(static_cast<uint32_t>(b.last_level)), &h);
    const double p = b.prob.ToDouble();
    uint64_t bits;
    std::memcpy(&bits, &p, sizeof(bits));
    FnvMix(bits, &h);
  }
  const double not_w = index.ProbNotW();
  uint64_t bits;
  std::memcpy(&bits, &not_w, sizeof(bits));
  FnvMix(bits, &h);
  return h;
}

uint64_t BuildAndHash(int threads) {
  dblp::DblpConfig cfg;
  cfg.num_authors = 2000;
  cfg.include_affiliation = true;
  cfg.num_threads = threads;
  auto mvdb = dblp::BuildDblpMvdb(cfg, nullptr);
  MVDB_CHECK(mvdb.ok());
  QueryEngine engine(mvdb->get());
  CompileOptions opts;
  opts.num_threads = threads;
  MVDB_CHECK(engine.Compile(opts).ok());
  return HashIndex(engine.index());
}

TEST(PipelineGoldenTest, TwoKAuthorBuildMatchesGoldenForEveryThreadCount) {
  // If an intentional pipeline change moves this value, re-pin it and
  // expect every DBLP-derived benchmark and the 1M-author trajectory
  // numbers to shift with it.
  constexpr uint64_t kGolden = 5664119462779828691ULL;
  EXPECT_EQ(BuildAndHash(1), kGolden);
  EXPECT_EQ(BuildAndHash(2), kGolden);
  EXPECT_EQ(BuildAndHash(8), kGolden);
}

}  // namespace
}  // namespace mvdb
